GO ?= go

.PHONY: ci fmt-check vet build test race bench

# ci is the gate: formatting, static checks, build, tests, and the
# race-detector pass over the concurrent experiment runner.
ci: fmt-check vet build test race

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment runner is the concurrent surface; run it (and the
# packages it drives) under the race detector.
race:
	$(GO) test -race ./internal/bench/... ./internal/sim/... ./internal/core/... .

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
