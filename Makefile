GO ?= go

# staticcheck is pinned so every machine runs the same analysis.
STATICCHECK_VERSION ?= 2025.1.1

# The benchmark gate covers the observability substrate, the VM hot
# paths (per-element and page-run), the storage backends' fault-free
# service cycle, the end-to-end kernel host-time figures (static and
# profile-guided), the multi-tenant scheduler's steady-state step, and
# the profile recorder's observation step (the latter two must stay
# zero-alloc) — regressions here mean the tracer/registry layer, a
# device engine, the executor fast path, the tenant scheduler, or the
# pass-1 recorder leaked cost into every simulated event.
BENCH_PKGS = ./internal/obs ./internal/vm ./internal/disk ./internal/bench ./internal/tenant ./internal/profile
# -count 3 with benchdiff keeping each benchmark's fastest run damps
# allocator and scheduler noise enough for a 15% gate.
BENCH_FLAGS = -bench=. -benchmem -benchtime 200ms -count 3 -run '^$$'

.PHONY: ci fmt-check vet staticcheck build test race fuzz test-faults test-fastpath test-hotpath test-backends test-tenants test-profile bench bench-check bench-baseline

# ci is the gate: formatting, static checks, build, tests, the
# race-detector pass over the concurrent experiment runner, a
# short-budget fuzz of the fault plane, and the storage-backend
# conformance and cross-tier equivalence suite.
ci: fmt-check vet staticcheck build test race fuzz test-backends

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The pinned tool is fetched on demand with `go run`. In a sandbox with
# no network the fetch fails with a resolver/dial error; that (and only
# that) is detected and skipped, so the target still gates real findings
# wherever the tool is fetchable — CI always runs it for real.
staticcheck:
	@out=$$($(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./... 2>&1); status=$$?; \
	if [ $$status -ne 0 ] && echo "$$out" | grep -qE 'dial tcp|no such host|connection refused|i/o timeout|proxyconnect'; then \
		echo "staticcheck: skipped (no network to fetch the pinned tool)"; \
	else \
		if [ -n "$$out" ]; then echo "$$out"; fi; exit $$status; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment runner and the metrics registry are the concurrent
# surfaces; run them (and the packages they drive) under the race
# detector.
race:
	$(GO) test -race ./internal/bench/... ./internal/sim/... ./internal/core/... ./internal/obs/... .

# fuzz runs the fault-schedule fuzzer briefly: arbitrary fault profiles
# through a small kernel, asserting termination and byte-identical
# results (FUZZTIME=5m for a real session).
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/fault/ -run '^$$' -fuzz FuzzFaultSchedule -fuzztime $(FUZZTIME)

# test-faults runs the fault-injection property matrix: the harness
# (NAS proxies × profiles, example kernels, byte-identical output) plus
# every layer's fault-path tests.
test-faults:
	$(GO) test ./internal/fault/... ./internal/disk ./internal/stripefs ./internal/vm ./internal/rt

# test-backends runs the storage-backend suite: the per-tier conformance
# contract (delivery, faults, stats, zero-alloc fast path), the tier
# parameter/spec plumbing, and the cross-tier property that every NAS
# proxy fingerprints identically on disks, NVMe, and far memory.
test-backends:
	$(GO) test ./internal/disk -run 'TestConformance|TestNVMe|TestFarMemory|TestNewBackend'
	$(GO) test ./internal/hw ./internal/core -run 'Tier|Backend'
	$(GO) test ./internal/fault/harness/ -run 'TestNASBackendsByteIdentical|TestBackendsFaultedByteIdentical'

# test-tenants runs the multi-tenant service gate: scheduler determinism
# (same mix and seed, byte-identical output), tenant isolation (a
# tenant's final memory image is identical solo and contended), QoS
# class ordering, quota fair-share reclaim, admission control, and the
# solo-server tick-for-tick equivalence with a directly driven VM.
test-tenants:
	$(GO) test ./internal/tenant/ -count 1
	$(GO) test ./internal/vm/ -run 'TestReclaim|TestQuota|TestPool'
	$(GO) test ./cmd/benchdiff/

# test-profile runs the two-pass profile-guided gate: the artifact
# round trip and typed error surface, recorder accounting, site-key
# alignment with the locality analysis, the compiler's profile
# decisions and cross-kernel mismatch degradation, and the harness
# property matrix (recording is tick-identical to the original run;
# static/record/use all fingerprint identically across storage tiers;
# profile-guided coverage strictly above static on the indirect
# kernels and never a regression on the dense ones).
test-profile:
	$(GO) test ./internal/profile/ -count 1
	$(GO) test ./internal/compiler/ -run TestProfile
	$(GO) test ./internal/fault/harness/ -run 'TestProfileModesByteIdentical|TestProfileCoverageDifferential'

# test-fastpath runs the executor fast-path differential property: every
# NAS proxy and example kernel must be tick-identical with page-run
# specialization on and off, fault-free and under fault profiles, plus
# the exec-level unit differentials.
test-fastpath:
	$(GO) test ./internal/fault/harness/ -run TestFastPathEquivalence
	$(GO) test ./internal/exec/ -run TestFastPath

# test-hotpath runs the host-time hot-path gate (DESIGN.md §14): exact
# hint lowering (differential tests on unsafe hint shapes, plus the
# structural property that no NAS hint site emits a closure call), the
# compile-once plan cache (hit/miss/cold tick-identical across NAS ×
# tiers × fault profiles, invalidation by key), and the benchdiff
# allocs/op gate that holds the zero-alloc write-back path.
test-hotpath:
	$(GO) test ./internal/exec/ -run 'TestHint|TestFastPath|TestNest'
	$(GO) test ./internal/nas/ -run TestNASHintSitesEmitNoClosureCalls -count 1
	$(GO) test ./internal/core/ -run TestPlanCache -count 1
	$(GO) test ./cmd/benchdiff/

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# bench-check records the benchmark gate's current figures and fails on
# any >15% ns/op regression against the committed baseline (exit 1), a
# zero-alloc benchmark that now allocates (exit 1), or a baseline
# benchmark missing from the run (exit 3 — refresh the baseline). The
# Markdown summary feeds the CI job summary and artifact.
bench-check:
	$(GO) test $(BENCH_FLAGS) $(BENCH_PKGS) | $(GO) run ./cmd/benchdiff -record BENCH_ci.json
	$(GO) run ./cmd/benchdiff -baseline BENCH_baseline.json -current BENCH_ci.json -threshold 15 -summary BENCH_summary.md

# bench-baseline refreshes the committed baseline; run it on the
# reference machine after an intentional performance change and commit
# the result.
bench-baseline:
	$(GO) test $(BENCH_FLAGS) $(BENCH_PKGS) | $(GO) run ./cmd/benchdiff -record BENCH_baseline.json
