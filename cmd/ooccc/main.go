// Command ooccc is the compiler driver: it parses a program in the
// front-end loop language (from a file, or a built-in NAS kernel by
// name), runs the prefetching pass, and prints the compiler's plan plus
// the transformed program with its inserted prefetch_block /
// prefetch_release_block calls — the paper's Figure 2, regenerated for
// any input.
//
// Usage:
//
//	ooccc [-mem MB] [-pages N] [-tv] [-no-releases] <file.loop | APP-NAME>
package main

import (
	"flag"
	"fmt"
	"os"

	oocp "repro"
)

func main() {
	memMB := flag.Float64("mem", 8, "memory size the compiler targets, MB")
	pages := flag.Int64("pages", 4, "pages per block prefetch")
	tv := flag.Bool("tv", false, "enable two-version loops (§4.1.1 extension)")
	noRel := flag.Bool("no-releases", false, "disable release-hint insertion")
	scale := flag.Float64("scale", 0.25, "problem scale for built-in NAS kernels")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ooccc [flags] <file.loop | BUK|CGM|EMBAR|FFT|MGRID|APPLU|APPSP|APPBT>")
		os.Exit(2)
	}
	arg := flag.Arg(0)

	var prog *oocp.Program
	if app := oocp.AppByName(arg); app != nil {
		prog = app.Build(*scale)
	} else {
		src, err := os.ReadFile(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ooccc:", err)
			os.Exit(1)
		}
		prog, err = oocp.ParseProgram(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ooccc:", err)
			os.Exit(1)
		}
	}

	machine := oocp.DefaultMachine()
	machine.MemoryBytes = int64(*memMB * (1 << 20))
	opts := oocp.DefaultCompilerOptions()
	opts.PagesPerFetch = *pages
	opts.TwoVersionLoops = *tv
	opts.Releases = !*noRel

	res, err := oocp.Compile(prog, machine, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ooccc:", err)
		os.Exit(1)
	}
	fmt.Println("/* ---- compiler plan ---- */")
	fmt.Print(res.PlanString())
	fmt.Println()
	fmt.Println("/* ---- original program ---- */")
	fmt.Print(oocp.PrintProgram(prog))
	fmt.Println()
	fmt.Println("/* ---- with compiler-inserted prefetching ---- */")
	fmt.Print(oocp.PrintProgram(res.Prog))
}
