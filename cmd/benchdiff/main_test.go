package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchKeepsFastestRun(t *testing.T) {
	out := `goos: linux
BenchmarkFoo-8   	1000	       250.0 ns/op	      16 B/op	       2 allocs/op
BenchmarkFoo-8   	1000	       200.0 ns/op	      16 B/op	       2 allocs/op
BenchmarkFoo-8   	1000	       230.0 ns/op	      16 B/op	       2 allocs/op
BenchmarkBar-8   	1000	         3.0 ns/op	       0 B/op	       0 allocs/op
PASS
`
	rs, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got := rs["BenchmarkFoo"]; got.NsOp != 200 || got.AllocsOp != 2 {
		t.Fatalf("BenchmarkFoo = %+v, want fastest run 200 ns/op, 2 allocs/op", got)
	}
	if got := rs["BenchmarkBar"]; got.NsOp != 3 || got.AllocsOp != 0 {
		t.Fatalf("BenchmarkBar = %+v", got)
	}
}

func TestCompareNsOpThreshold(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", `{"BenchmarkFoo": {"ns_op": 100, "allocs_op": 0}}`)
	cur := writeJSON(t, dir, "cur.json", `{"BenchmarkFoo": {"ns_op": 120, "allocs_op": 0}}`)
	regs, _, err := compare(base, cur, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "threshold") {
		t.Fatalf("regressions = %v, want one ns/op regression", regs)
	}
	regs, _, err = compare(base, cur, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regressions = %v, want none at 25%% threshold", regs)
	}
}

func TestCompareZeroAllocIsHard(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", `{"BenchmarkFoo": {"ns_op": 100, "allocs_op": 0}}`)
	// Faster, but no longer allocation-free: still a failure.
	cur := writeJSON(t, dir, "cur.json", `{"BenchmarkFoo": {"ns_op": 90, "allocs_op": 1}}`)
	regs, _, err := compare(base, cur, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "zero-alloc") {
		t.Fatalf("regressions = %v, want one zero-alloc regression", regs)
	}
}

func TestCompareAllocGrowthAllowedWhenNonzero(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", `{"BenchmarkFoo": {"ns_op": 100, "allocs_op": 5}}`)
	cur := writeJSON(t, dir, "cur.json", `{"BenchmarkFoo": {"ns_op": 100, "allocs_op": 7}}`)
	regs, _, err := compare(base, cur, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("regressions = %v, want none (benchmark was never zero-alloc)", regs)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", `{"BenchmarkFoo": {"ns_op": 100, "allocs_op": 0}}`)
	cur := writeJSON(t, dir, "cur.json", `{}`)
	regs, _, err := compare(base, cur, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Fatalf("regressions = %v, want one missing-benchmark failure", regs)
	}
}

func TestCompareWorstRegressorsSummary(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", `{
		"BenchmarkA": {"ns_op": 100, "allocs_op": 0},
		"BenchmarkB": {"ns_op": 100, "allocs_op": 0},
		"BenchmarkC": {"ns_op": 100, "allocs_op": 0},
		"BenchmarkD": {"ns_op": 100, "allocs_op": 0},
		"BenchmarkOK": {"ns_op": 100, "allocs_op": 0}}`)
	cur := writeJSON(t, dir, "cur.json", `{
		"BenchmarkA": {"ns_op": 130, "allocs_op": 0},
		"BenchmarkB": {"ns_op": 180, "allocs_op": 0},
		"BenchmarkC": {"ns_op": 150, "allocs_op": 0},
		"BenchmarkD": {"ns_op": 120, "allocs_op": 0},
		"BenchmarkOK": {"ns_op": 101, "allocs_op": 0}}`)
	regs, worst, err := compare(base, cur, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 4 {
		t.Fatalf("regressions = %v, want 4", regs)
	}
	// Worst first, capped at three, with the sub-threshold benchmark and
	// the fourth-worst regressor absent.
	want := "BenchmarkB (+80.0%), BenchmarkC (+50.0%), BenchmarkA (+30.0%)"
	if worst != want {
		t.Fatalf("worst = %q, want %q", worst, want)
	}

	// No regressions: no summary.
	_, worst, err = compare(base, base, 15)
	if err != nil {
		t.Fatal(err)
	}
	if worst != "" {
		t.Fatalf("worst = %q, want empty", worst)
	}
}
