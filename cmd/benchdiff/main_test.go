package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchKeepsFastestRun(t *testing.T) {
	out := `goos: linux
BenchmarkFoo-8   	1000	       250.0 ns/op	      16 B/op	       2 allocs/op
BenchmarkFoo-8   	1000	       200.0 ns/op	      16 B/op	       2 allocs/op
BenchmarkFoo-8   	1000	       230.0 ns/op	      16 B/op	       2 allocs/op
BenchmarkBar-8   	1000	         3.0 ns/op	       0 B/op	       0 allocs/op
PASS
`
	rs, err := parseBench(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got := rs["BenchmarkFoo"]; got.NsOp != 200 || got.AllocsOp != 2 {
		t.Fatalf("BenchmarkFoo = %+v, want fastest run 200 ns/op, 2 allocs/op", got)
	}
	if got := rs["BenchmarkBar"]; got.NsOp != 3 || got.AllocsOp != 0 {
		t.Fatalf("BenchmarkBar = %+v", got)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := writeJSON(t, dir, "base.json", `{"BenchmarkFoo": {"ns_op": 100, "allocs_op": 2}}`)
	m, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := m["BenchmarkFoo"]; got.NsOp != 100 || got.AllocsOp != 2 {
		t.Fatalf("loaded %+v", got)
	}
	if _, err := load(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("load of a missing file succeeded")
	}
}

func TestCompareNsOpThreshold(t *testing.T) {
	base := map[string]Result{"BenchmarkFoo": {NsOp: 100, AllocsOp: 0}}
	cur := map[string]Result{"BenchmarkFoo": {NsOp: 120, AllocsOp: 0}}
	cmp := compare(base, cur, 15)
	if len(cmp.regressions) != 1 || !strings.Contains(cmp.regressions[0], "threshold") {
		t.Fatalf("regressions = %v, want one ns/op regression", cmp.regressions)
	}
	if got := cmp.exitCode(); got != 1 {
		t.Fatalf("exitCode = %d, want 1 for a performance regression", got)
	}
	cmp = compare(base, cur, 25)
	if len(cmp.regressions) != 0 || cmp.exitCode() != 0 {
		t.Fatalf("regressions = %v exit = %d, want clean at 25%% threshold", cmp.regressions, cmp.exitCode())
	}
}

func TestCompareZeroAllocIsHard(t *testing.T) {
	base := map[string]Result{"BenchmarkFoo": {NsOp: 100, AllocsOp: 0}}
	// Faster, but no longer allocation-free: still a failure.
	cur := map[string]Result{"BenchmarkFoo": {NsOp: 90, AllocsOp: 1}}
	cmp := compare(base, cur, 15)
	if len(cmp.regressions) != 1 || !strings.Contains(cmp.regressions[0], "zero-alloc") {
		t.Fatalf("regressions = %v, want one zero-alloc regression", cmp.regressions)
	}
	if got := cmp.exitCode(); got != 1 {
		t.Fatalf("exitCode = %d, want 1", got)
	}
}

func TestCompareAllocGrowthGate(t *testing.T) {
	// Allocating benchmarks get a proportional allocs/op gate at the
	// ns/op threshold: +40% allocs fails at 15% even with flat wall time.
	base := map[string]Result{"BenchmarkFoo": {NsOp: 100, AllocsOp: 5}}
	cur := map[string]Result{"BenchmarkFoo": {NsOp: 100, AllocsOp: 7}}
	cmp := compare(base, cur, 15)
	if len(cmp.regressions) != 1 || !strings.Contains(cmp.regressions[0], "allocs/op") {
		t.Fatalf("regressions = %v, want one allocs/op regression", cmp.regressions)
	}
	if got := cmp.exitCode(); got != 1 {
		t.Fatalf("exitCode = %d, want 1", got)
	}
	if got := cmp.rows[0].status; got != "ALLOC-REGRESSION" {
		t.Fatalf("row status = %q, want ALLOC-REGRESSION", got)
	}

	// Growth within the threshold passes, as does any shrink.
	for _, c := range []float64{5, 5.5, 1} {
		cur["BenchmarkFoo"] = Result{NsOp: 100, AllocsOp: c}
		if cmp := compare(base, cur, 15); len(cmp.regressions) != 0 || cmp.exitCode() != 0 {
			t.Fatalf("allocs 5 -> %v: regressions = %v, want none", c, cmp.regressions)
		}
	}

	// A current recording without -benchmem makes no allocation claim.
	cur["BenchmarkFoo"] = Result{NsOp: 100, AllocsOp: -1}
	if cmp := compare(base, cur, 15); len(cmp.regressions) != 0 {
		t.Fatalf("regressions = %v, want none without -benchmem figures", cmp.regressions)
	}
}

func TestCompareMissingBenchmarkExitsThree(t *testing.T) {
	base := map[string]Result{
		"BenchmarkFoo": {NsOp: 100, AllocsOp: 0},
		"BenchmarkBar": {NsOp: 50, AllocsOp: 0},
	}
	cur := map[string]Result{"BenchmarkBar": {NsOp: 50, AllocsOp: 0}}
	cmp := compare(base, cur, 15)
	if len(cmp.missing) != 1 || cmp.missing[0] != "BenchmarkFoo" {
		t.Fatalf("missing = %v, want the vanished baseline key BenchmarkFoo", cmp.missing)
	}
	if len(cmp.regressions) != 0 {
		t.Fatalf("regressions = %v, want the vanished key reported separately", cmp.regressions)
	}
	if got := cmp.exitCode(); got != 3 {
		t.Fatalf("exitCode = %d, want the distinct missing-benchmark code 3", got)
	}
}

func TestCompareMissingWinsOverRegression(t *testing.T) {
	// A vanished benchmark and a slow one together: the missing key's
	// exit code wins, because the run no longer covers the baseline.
	base := map[string]Result{
		"BenchmarkGone": {NsOp: 100, AllocsOp: 0},
		"BenchmarkSlow": {NsOp: 100, AllocsOp: 0},
	}
	cur := map[string]Result{"BenchmarkSlow": {NsOp: 200, AllocsOp: 0}}
	cmp := compare(base, cur, 15)
	if len(cmp.missing) != 1 || len(cmp.regressions) != 1 {
		t.Fatalf("missing = %v regressions = %v, want one of each", cmp.missing, cmp.regressions)
	}
	if got := cmp.exitCode(); got != 3 {
		t.Fatalf("exitCode = %d, want 3", got)
	}
}

func TestCompareWorstRegressorsSummary(t *testing.T) {
	base := map[string]Result{
		"BenchmarkA":  {NsOp: 100},
		"BenchmarkB":  {NsOp: 100},
		"BenchmarkC":  {NsOp: 100},
		"BenchmarkD":  {NsOp: 100},
		"BenchmarkOK": {NsOp: 100},
	}
	cur := map[string]Result{
		"BenchmarkA":  {NsOp: 130},
		"BenchmarkB":  {NsOp: 180},
		"BenchmarkC":  {NsOp: 150},
		"BenchmarkD":  {NsOp: 120},
		"BenchmarkOK": {NsOp: 101},
	}
	cmp := compare(base, cur, 15)
	if len(cmp.regressions) != 4 {
		t.Fatalf("regressions = %v, want 4", cmp.regressions)
	}
	// Worst first, capped at three, with the sub-threshold benchmark and
	// the fourth-worst regressor absent.
	want := "BenchmarkB (+80.0%), BenchmarkC (+50.0%), BenchmarkA (+30.0%)"
	if got := cmp.worstSummary(3); got != want {
		t.Fatalf("worst = %q, want %q", got, want)
	}

	// No regressions: no summary.
	if got := compare(base, base, 15).worstSummary(3); got != "" {
		t.Fatalf("worst = %q, want empty", got)
	}
}

func TestMarkdownSummary(t *testing.T) {
	base := map[string]Result{
		"BenchmarkGone": {NsOp: 100, AllocsOp: 0},
		"BenchmarkSlow": {NsOp: 100, AllocsOp: 0},
	}
	cur := map[string]Result{"BenchmarkSlow": {NsOp: 200, AllocsOp: 0}}
	md := compare(base, cur, 15).markdown(15)
	for _, want := range []string{
		"| benchmark |",
		"| allocs/op |",
		"| BenchmarkSlow | 100.0 | 200.0 | +100.0% | 0 -> 0 | REGRESSION |",
		"**Worst regressors:** BenchmarkSlow (+100.0%)",
		"**Missing from current run:** `BenchmarkGone`",
	} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	clean := compare(base, base, 15).markdown(15)
	if !strings.Contains(clean, "No regressions.") {
		t.Fatalf("clean markdown missing all-clear line:\n%s", clean)
	}
}
