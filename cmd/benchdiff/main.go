// Command benchdiff records and compares Go benchmark results, gating
// CI on performance regressions.
//
// Record mode parses `go test -bench` output on stdin into a JSON file
// mapping benchmark name to ns/op and allocs/op:
//
//	go test -bench=. -benchmem -run '^$' ./... | benchdiff -record BENCH_ci.json
//
// Compare mode diffs a current recording against a committed baseline
// and exits non-zero when any benchmark's ns/op regressed by more than
// the threshold (percent), when a benchmark that was allocation-free in
// the baseline now allocates (zero-alloc hot paths are a hard property,
// not a sliding scale), or when a baseline benchmark disappeared:
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_ci.json -threshold 15
//
// Exit codes distinguish the failure: 1 means a performance or
// allocation regression, 2 a usage error, and 3 that a baseline
// benchmark is missing from the current run — a renamed or deleted
// benchmark silently shrinking the gate, which needs a baseline refresh
// rather than a performance fix. Each missing benchmark's key is printed
// so the offender is identifiable from the CI log alone.
//
// -summary FILE additionally writes the comparison as a Markdown table
// with a worst-regressors line, sized for a CI job summary.
//
// Benchmark names are recorded without the -GOMAXPROCS suffix so a
// recording made on one machine compares against another's.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's recorded figures.
type Result struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
}

func main() {
	record := flag.String("record", "", "parse `go test -bench` output on stdin and write JSON to this file")
	baseline := flag.String("baseline", "", "committed baseline JSON to compare against")
	current := flag.String("current", "", "freshly recorded JSON to compare")
	threshold := flag.Float64("threshold", 15, "maximum tolerated ns/op regression, percent")
	summary := flag.String("summary", "", "also write the comparison as a Markdown job summary to this file")
	flag.Parse()

	switch {
	case *record != "":
		if err := doRecord(os.Stdin, *record); err != nil {
			fatal(err)
		}
	case *baseline != "" && *current != "":
		base, err := load(*baseline)
		if err != nil {
			fatal(err)
		}
		cur, err := load(*current)
		if err != nil {
			fatal(err)
		}
		cmp := compare(base, cur, *threshold)
		fmt.Print(cmp.table())
		if *summary != "" {
			if err := os.WriteFile(*summary, []byte(cmp.markdown(*threshold)), 0o644); err != nil {
				fatal(err)
			}
		}
		for _, m := range cmp.missing {
			fmt.Fprintf(os.Stderr, "benchdiff: baseline benchmark missing from current run: %s\n", m)
		}
		for _, r := range cmp.regressions {
			fmt.Fprintln(os.Stderr, "benchdiff:", r)
		}
		if worst := cmp.worstSummary(3); worst != "" {
			fmt.Fprintln(os.Stderr, "benchdiff: worst regressions:", worst)
		}
		os.Exit(cmp.exitCode())
	default:
		fmt.Fprintln(os.Stderr, "benchdiff: need -record FILE, or -baseline FILE -current FILE")
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

// doRecord parses benchmark output from r and writes the recording.
func doRecord(r io.Reader, path string) error {
	results, err := parseBench(r)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results found on stdin")
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// parseBench extracts (name, ns/op, allocs/op) from `go test -bench`
// output. Repeated runs of one benchmark (-count > 1) keep the fastest,
// which is the least noisy summary of a machine's capability.
func parseBench(r io.Reader) (map[string]Result, error) {
	results := make(map[string]Result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcSuffix(fields[0])
		res := Result{NsOp: -1, AllocsOp: -1}
		for i := 2; i < len(fields)-1; i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsOp = v
			case "allocs/op":
				res.AllocsOp = v
			}
		}
		if res.NsOp < 0 {
			continue // a benchmark line without ns/op is not a result
		}
		if prev, ok := results[name]; ok && prev.NsOp <= res.NsOp {
			continue
		}
		results[name] = res
	}
	return results, sc.Err()
}

// stripProcSuffix removes the trailing -GOMAXPROCS from a benchmark
// name, so recordings made at different parallelism still line up.
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// row is one benchmark's comparison line. Alloc figures are carried
// only when both recordings ran with -benchmem (hasAllocs); allocChange
// is meaningful only when the baseline allocates at all.
type row struct {
	name                  string
	base, cur             float64
	change                float64
	baseAllocs, curAllocs float64
	allocChange           float64
	hasAllocs             bool
	status                string
}

// comparison is the full outcome of diffing a current recording against
// a baseline: per-benchmark rows, regression messages, and the baseline
// keys that vanished from the current run.
type comparison struct {
	rows        []row
	regressions []string // threshold and zero-alloc violations
	missing     []string // baseline keys absent from the current run
	slowdowns   []slowdown
}

// compare diffs cur against base: baseline benchmarks that slowed by
// more than thresholdPct or that were allocation-free and now allocate
// become regressions; baseline benchmarks absent from cur are collected
// in missing (a shrunken gate, reported with its own exit code).
func compare(base, cur map[string]Result, thresholdPct float64) *comparison {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	cmp := &comparison{}
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			cmp.missing = append(cmp.missing, name)
			continue
		}
		if b.NsOp <= 0 {
			continue
		}
		change := 100 * (c.NsOp - b.NsOp) / b.NsOp
		status := "ok"
		if change > thresholdPct {
			status = "REGRESSION"
			cmp.regressions = append(cmp.regressions,
				fmt.Sprintf("%s: %.1f ns/op -> %.1f ns/op (%+.1f%% > %.0f%% threshold)",
					name, b.NsOp, c.NsOp, change, thresholdPct))
			cmp.slowdowns = append(cmp.slowdowns, slowdown{name, change})
		}
		// A benchmark recorded at zero allocs/op is a zero-allocation
		// guarantee: any new allocation fails regardless of the ns/op
		// threshold. (AllocsOp < 0 means -benchmem was off; no claim.)
		if b.AllocsOp == 0 && c.AllocsOp > 0 {
			status = "ALLOC-REGRESSION"
			cmp.regressions = append(cmp.regressions,
				fmt.Sprintf("%s: was zero-alloc, now %.0f allocs/op", name, c.AllocsOp))
		}
		r := row{name: name, base: b.NsOp, cur: c.NsOp, change: change,
			baseAllocs: b.AllocsOp, curAllocs: c.AllocsOp,
			hasAllocs: b.AllocsOp >= 0 && c.AllocsOp >= 0, status: status}
		// Allocating benchmarks get a proportional allocs/op gate at the
		// same threshold: allocation counts are nearly noise-free, so a
		// hot path that starts allocating more per op fails here even
		// when machine noise hides the wall-time cost.
		if b.AllocsOp > 0 && c.AllocsOp >= 0 {
			r.allocChange = 100 * (c.AllocsOp - b.AllocsOp) / b.AllocsOp
			if r.allocChange > thresholdPct {
				r.status = "ALLOC-REGRESSION"
				cmp.regressions = append(cmp.regressions,
					fmt.Sprintf("%s: %.0f allocs/op -> %.0f allocs/op (%+.1f%% > %.0f%% threshold)",
						name, b.AllocsOp, c.AllocsOp, r.allocChange, thresholdPct))
			}
		}
		cmp.rows = append(cmp.rows, r)
	}
	return cmp
}

// exitCode maps the comparison to the process exit code: 3 when any
// baseline benchmark vanished (the gate shrank — refresh the baseline or
// restore the benchmark), 1 for performance or allocation regressions,
// 0 when clean. A vanished benchmark wins over a regression because it
// means the remaining figures do not cover what the baseline promises.
func (c *comparison) exitCode() int {
	switch {
	case len(c.missing) > 0:
		return 3
	case len(c.regressions) > 0:
		return 1
	default:
		return 0
	}
}

// table renders the plain-text comparison for the CI log.
func (c *comparison) table() string {
	var b strings.Builder
	for _, r := range c.rows {
		fmt.Fprintf(&b, "%-40s %12.1f %12.1f %+8.1f%%  %-16s %s\n",
			r.name, r.base, r.cur, r.change, r.allocsCell(), r.status)
	}
	return b.String()
}

// allocsCell formats the allocs/op column ("1009 -> 1009" or "-" when
// either recording ran without -benchmem).
func (r row) allocsCell() string {
	if !r.hasAllocs {
		return "-"
	}
	return fmt.Sprintf("%.0f -> %.0f", r.baseAllocs, r.curAllocs)
}

// markdown renders the comparison as a job-summary document: the full
// table, the worst ns/op regressors, and any vanished baseline keys.
func (c *comparison) markdown(thresholdPct float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Benchmark gate (threshold %.0f%%)\n\n", thresholdPct)
	b.WriteString("| benchmark | baseline ns/op | current ns/op | change | allocs/op | status |\n")
	b.WriteString("|---|---:|---:|---:|---:|---|\n")
	for _, r := range c.rows {
		fmt.Fprintf(&b, "| %s | %.1f | %.1f | %+.1f%% | %s | %s |\n",
			r.name, r.base, r.cur, r.change, r.allocsCell(), r.status)
	}
	if worst := c.worstSummary(3); worst != "" {
		fmt.Fprintf(&b, "\n**Worst regressors:** %s\n", worst)
	}
	for _, m := range c.missing {
		fmt.Fprintf(&b, "\n**Missing from current run:** `%s`\n", m)
	}
	if len(c.regressions) == 0 && len(c.missing) == 0 {
		b.WriteString("\nNo regressions.\n")
	}
	return b.String()
}

// slowdown is one benchmark's ns/op regression, for the summary line.
type slowdown struct {
	name   string
	change float64
}

// worstSummary names the n worst ns/op regressors, worst first
// ("BenchmarkFoo (+42.0%), BenchmarkBar (+17.3%)").
func (c *comparison) worstSummary(n int) string {
	slowdowns := append([]slowdown(nil), c.slowdowns...)
	sort.Slice(slowdowns, func(i, j int) bool { return slowdowns[i].change > slowdowns[j].change })
	if len(slowdowns) > n {
		slowdowns = slowdowns[:n]
	}
	parts := make([]string, len(slowdowns))
	for i, s := range slowdowns {
		parts[i] = fmt.Sprintf("%s (%+.1f%%)", s.name, s.change)
	}
	return strings.Join(parts, ", ")
}

func load(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]Result
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}
