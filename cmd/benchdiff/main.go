// Command benchdiff records and compares Go benchmark results, gating
// CI on performance regressions.
//
// Record mode parses `go test -bench` output on stdin into a JSON file
// mapping benchmark name to ns/op and allocs/op:
//
//	go test -bench=. -benchmem -run '^$' ./... | benchdiff -record BENCH_ci.json
//
// Compare mode diffs a current recording against a committed baseline
// and exits non-zero when any benchmark's ns/op regressed by more than
// the threshold (percent), when a benchmark that was allocation-free in
// the baseline now allocates (zero-alloc hot paths are a hard property,
// not a sliding scale), or when a baseline benchmark disappeared:
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_ci.json -threshold 15
//
// Benchmark names are recorded without the -GOMAXPROCS suffix so a
// recording made on one machine compares against another's.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's recorded figures.
type Result struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
}

func main() {
	record := flag.String("record", "", "parse `go test -bench` output on stdin and write JSON to this file")
	baseline := flag.String("baseline", "", "committed baseline JSON to compare against")
	current := flag.String("current", "", "freshly recorded JSON to compare")
	threshold := flag.Float64("threshold", 15, "maximum tolerated ns/op regression, percent")
	flag.Parse()

	switch {
	case *record != "":
		if err := doRecord(os.Stdin, *record); err != nil {
			fatal(err)
		}
	case *baseline != "" && *current != "":
		regressions, worst, err := compare(*baseline, *current, *threshold)
		if err != nil {
			fatal(err)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "benchdiff:", r)
			}
			if worst != "" {
				fmt.Fprintln(os.Stderr, "benchdiff: worst regressions:", worst)
			}
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "benchdiff: need -record FILE, or -baseline FILE -current FILE")
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

// doRecord parses benchmark output from r and writes the recording.
func doRecord(r io.Reader, path string) error {
	results, err := parseBench(r)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results found on stdin")
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// parseBench extracts (name, ns/op, allocs/op) from `go test -bench`
// output. Repeated runs of one benchmark (-count > 1) keep the fastest,
// which is the least noisy summary of a machine's capability.
func parseBench(r io.Reader) (map[string]Result, error) {
	results := make(map[string]Result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcSuffix(fields[0])
		res := Result{NsOp: -1, AllocsOp: -1}
		for i := 2; i < len(fields)-1; i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsOp = v
			case "allocs/op":
				res.AllocsOp = v
			}
		}
		if res.NsOp < 0 {
			continue // a benchmark line without ns/op is not a result
		}
		if prev, ok := results[name]; ok && prev.NsOp <= res.NsOp {
			continue
		}
		results[name] = res
	}
	return results, sc.Err()
}

// stripProcSuffix removes the trailing -GOMAXPROCS from a benchmark
// name, so recordings made at different parallelism still line up.
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// compare returns one message per regression — baseline benchmarks that
// slowed by more than thresholdPct, that were allocation-free and now
// allocate, or that vanished from the current recording — plus a
// worst-first summary of the ns/op regressors ("BenchmarkFoo (+42.0%),
// BenchmarkBar (+17.3%)") for the failure message.
func compare(basePath, curPath string, thresholdPct float64) ([]string, string, error) {
	base, err := load(basePath)
	if err != nil {
		return nil, "", err
	}
	cur, err := load(curPath)
	if err != nil {
		return nil, "", err
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var regressions []string
	var slowdowns []slowdown
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			regressions = append(regressions,
				fmt.Sprintf("%s: in baseline but missing from current run", name))
			continue
		}
		if b.NsOp <= 0 {
			continue
		}
		change := 100 * (c.NsOp - b.NsOp) / b.NsOp
		status := "ok"
		if change > thresholdPct {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f ns/op -> %.1f ns/op (%+.1f%% > %.0f%% threshold)",
					name, b.NsOp, c.NsOp, change, thresholdPct))
			slowdowns = append(slowdowns, slowdown{name, change})
		}
		// A benchmark recorded at zero allocs/op is a zero-allocation
		// guarantee: any new allocation fails regardless of the ns/op
		// threshold. (AllocsOp < 0 means -benchmem was off; no claim.)
		if b.AllocsOp == 0 && c.AllocsOp > 0 {
			status = "ALLOC-REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: was zero-alloc, now %.0f allocs/op", name, c.AllocsOp))
		}
		fmt.Printf("%-40s %12.1f %12.1f %+8.1f%%  %s\n", name, b.NsOp, c.NsOp, change, status)
	}
	return regressions, worstSummary(slowdowns, 3), nil
}

// slowdown is one benchmark's ns/op regression, for the summary line.
type slowdown struct {
	name   string
	change float64
}

// worstSummary names the n worst ns/op regressors, worst first.
func worstSummary(slowdowns []slowdown, n int) string {
	sort.Slice(slowdowns, func(i, j int) bool { return slowdowns[i].change > slowdowns[j].change })
	if len(slowdowns) > n {
		slowdowns = slowdowns[:n]
	}
	parts := make([]string, len(slowdowns))
	for i, s := range slowdowns {
		parts[i] = fmt.Sprintf("%s (%+.1f%%)", s.name, s.change)
	}
	return strings.Join(parts, ", ")
}

func load(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]Result
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}
