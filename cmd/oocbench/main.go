// Command oocbench regenerates the paper's tables and figures.
//
// Usage:
//
//	oocbench [-exp all|table1|table2|fig3|fig4|fig5|table3|fig6|fig7|fig8|ablate]
//	         [-scale F] [-ratio F] [-mem MB]
//
// -scale multiplies every application's problem size (1 = standard);
// -ratio overrides the data:memory ratio (0 = each app's standard);
// -mem sets the Figure 8 machine memory in MB.
package main

import (
	"flag"
	"fmt"
	"os"

	oocp "repro"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, table2, fig3, fig4, fig5, table3, fig6, fig7, fig8, ablate)")
	scale := flag.Float64("scale", 1.0, "problem-size multiplier")
	ratio := flag.Float64("ratio", 0, "data:memory ratio (0 = per-app standard)")
	memMB := flag.Float64("mem", 6, "Figure 8 machine memory, MB")
	flag.Parse()

	w := os.Stdout
	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "oocbench:", err)
			os.Exit(1)
		}
	}

	needSuite := func() bool {
		switch *exp {
		case "all", "fig3", "fig4", "fig5", "table3":
			return true
		}
		return false
	}

	if *exp == "all" || *exp == "table1" {
		oocp.Table1(w)
		fmt.Fprintln(w)
	}
	if *exp == "all" || *exp == "table2" {
		oocp.Table2(w, *scale)
		fmt.Fprintln(w)
	}
	if needSuite() {
		fmt.Fprintln(w, "running the NAS suite (original, prefetching, and no-run-time-layer)...")
		rs, err := oocp.RunSuite(*scale, *ratio, true)
		fail(err)
		fmt.Fprintln(w)
		if *exp == "all" || *exp == "fig3" {
			oocp.Fig3(w, rs)
			fmt.Fprintln(w)
		}
		if *exp == "all" || *exp == "fig4" {
			oocp.Fig4(w, rs)
			fmt.Fprintln(w)
		}
		if *exp == "all" || *exp == "fig5" {
			oocp.Fig5(w, rs)
			fmt.Fprintln(w)
		}
		if *exp == "all" || *exp == "table3" {
			oocp.Table3(w, rs)
			fmt.Fprintln(w)
		}
	}
	if *exp == "all" || *exp == "fig6" {
		fail(oocp.Fig6(w, *scale))
		fmt.Fprintln(w)
	}
	if *exp == "all" || *exp == "fig7" {
		fail(oocp.Fig7(w, *scale))
		fmt.Fprintln(w)
	}
	if *exp == "all" || *exp == "fig8" {
		fail(oocp.Fig8(w, int64(*memMB*(1<<20))))
		fmt.Fprintln(w)
	}
	if *exp == "all" || *exp == "ablate" {
		fail(oocp.AblateAll(w, *scale))
	}
}
