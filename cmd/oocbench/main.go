// Command oocbench regenerates the paper's tables and figures.
//
// Usage:
//
//	oocbench [-exp all|table1|table2|fig3|fig4|fig5|table3|fig6|fig7|fig8|ablate]
//	         [-scale F] [-ratio F] [-mem MB]
//	         [-parallel N] [-timeout D] [-progress]
//	         [-backend SPEC] [-faults SPEC] [-trace FILE] [-metrics FILE]
//	         [-profile-record FILE | -profile-use FILE]
//	         [-tenants N] [-qos CLASSES] [-seed N]
//	         [-explain-fastpath] [-cpuprofile FILE] [-memprofile FILE]
//
// -scale multiplies every application's problem size (1 = standard);
// -ratio overrides the data:memory ratio (0 = each app's standard);
// -mem sets the Figure 8 machine memory in MB.
//
// Experiment runs fan out across a worker pool: -parallel sets its size
// (0 = GOMAXPROCS), -timeout bounds each simulated run's wall-clock
// time, and -progress reports per-run completions on stderr. Results
// are collected by index, so parallel output is byte-identical to a
// serial run; Ctrl-C cancels in-flight runs cleanly. Sub-figure names
// (fig3a, fig4b, ...) are accepted as aliases for their figure.
//
// -backend runs every NAS suite run on the named storage tier instead
// of the paper's striped-disk array. The spec is a tier name ("nvme",
// "farmem") or "key=value" pairs ("tier=farmem,rtt=40us,batch=32",
// "disk,disks=4,sched=elevator"). Hints are non-binding and backends
// only change timing, so the figures' results are identical — the
// speedups are not. Like -faults, combining -backend with an experiment
// that runs no suite is a usage error.
//
// -faults injects a deterministic fault profile into every NAS suite
// run (the fig3/fig4/fig5/table3 experiments): transient disk errors,
// latency spikes, brownouts, and pressure-dropped prefetches. The spec
// is a profile name ("brownout") or "key=value" pairs
// ("profile=chaos,seed=7"); hints are non-binding, so results are
// unchanged — only timing and the fault.* / disk.*.retries counters
// move. Combining -faults with an experiment that runs no suite is a
// usage error rather than a silent no-op.
//
// -profile-record and -profile-use are the two passes of profile-guided
// prefetch insertion. -profile-record runs every NAS app once in its
// original configuration at -scale/-ratio with observation-only
// instrumentation (tick-identical to a plain run), writes the recorded
// per-reference profiles to FILE as a versioned artifact, and exits —
// it composes with -backend and -faults (record under the configuration
// you intend to run) but not with -exp. -profile-use FILE feeds the
// artifact back into every suite prefetching run, replacing the
// compiler's static distance model with observed miss latencies and
// hinting references static analysis skips; like -backend it requires a
// suite experiment. The two flags are mutually exclusive. Results are
// identical either way — profiles move hints, never data.
//
// -trace writes a Chrome trace-event JSON timeline of every simulated
// run (load it in Perfetto or chrome://tracing); -metrics writes a flat
// JSON snapshot of every run's counters keyed "<app>/<variant>/name".
//
// -tenants N runs the multi-tenant service benchmark instead of the
// paper experiments: N tenant kernels share one frame pool and one
// storage array under residency quotas, prefetch-priority classes, and
// admission control. -qos assigns classes per tenant as a comma list
// ("gold,silver,be"), cycled when shorter than N; -seed picks the
// deterministic scheduling seed (same mix and seed, byte-identical
// output). -scale, -backend, -faults, -trace, and -metrics compose with
// -tenants; the experiment-selection and worker-pool flags (-exp,
// -ratio, -mem, -parallel, -timeout, -progress, -explain-fastpath) do
// not — the service is one deterministic simulation, not a run matrix —
// and combining them is a usage error.
//
// -explain-fastpath runs every NAS proxy once at -scale and prints, per
// loop, which compiled driver ran it (page-run span driver, linearized
// kernel bytecode, or the closure oracle) and the fallback reason when a
// loop missed the page-run path; it ignores -exp and exits afterwards.
//
// -cpuprofile and -memprofile write pprof profiles of the harness itself
// (host time, not simulated time) for diagnosing executor overhead; see
// EXPERIMENTS.md for the profiling workflow.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	oocp "repro"
)

// expAlias maps sub-figure names (as DESIGN.md's experiment index uses)
// to the experiment that regenerates them.
var expAlias = map[string]string{
	"fig3a": "fig3", "fig3b": "fig3",
	"fig4a": "fig4", "fig4b": "fig4", "fig4c": "fig4",
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1, table2, fig3, fig4, fig5, table3, fig6, fig7, fig8, ablate)")
	scale := flag.Float64("scale", 1.0, "problem-size multiplier")
	ratio := flag.Float64("ratio", 0, "data:memory ratio (0 = per-app standard)")
	memMB := flag.Float64("mem", 6, "Figure 8 machine memory, MB")
	parallel := flag.Int("parallel", 0, "experiment worker-pool size (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-run wall-clock timeout (0 = none)")
	progress := flag.Bool("progress", false, "report per-run progress on stderr")
	backendSpec := flag.String("backend", "", `storage backend for suite runs ("nvme", "tier=farmem,rtt=40us", ...)`)
	faultSpec := flag.String("faults", "", `fault profile for suite runs ("brownout", "profile=chaos,seed=7", ...)`)
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this file")
	metricsPath := flag.String("metrics", "", "write a flat JSON metrics snapshot to this file")
	profileRecord := flag.String("profile-record", "", "record NAS execution profiles (pass 1) into FILE, then exit")
	profileUse := flag.String("profile-use", "", "guide suite prefetching runs with a recorded profile artifact (pass 2)")
	tenants := flag.Int("tenants", 0, "run the multi-tenant service benchmark with N tenants sharing one pool")
	qosSpec := flag.String("qos", "", `per-tenant QoS classes for -tenants ("gold,silver,be", cycled)`)
	seed := flag.Uint64("seed", 1, "deterministic scheduling seed for -tenants")
	explain := flag.Bool("explain-fastpath", false, "print each NAS loop's compiled driver and fallback reason, then exit")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	usage := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "oocbench: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	// The zero defaults mean "pick for me" (GOMAXPROCS workers, no
	// timeout); an explicit non-positive pool or negative timeout is a
	// mistake and must not silently run nothing.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) {
		set[f.Name] = true
		switch f.Name {
		case "parallel":
			if *parallel <= 0 {
				usage("-parallel must be positive, got %d", *parallel)
			}
		case "timeout":
			if *timeout < 0 {
				usage("-timeout must not be negative, got %v", *timeout)
			}
		case "scale":
			if *scale <= 0 {
				usage("-scale must be positive, got %g", *scale)
			}
		case "tenants":
			if *tenants <= 0 {
				usage("-tenants must be positive, got %d", *tenants)
			}
		}
	})
	if *profileRecord != "" && *profileUse != "" {
		usage("-profile-record and -profile-use are mutually exclusive: record pass 1, then run pass 2")
	}
	if *profileRecord != "" {
		// The record pass is its own run matrix; the experiment
		// selection has nothing to select.
		for _, name := range []string{"exp", "mem", "explain-fastpath"} {
			if set[name] {
				usage("-%s does not apply to -profile-record", name)
			}
		}
	}
	if set["tenants"] {
		// The tenant service is one deterministic simulation; the run
		// matrix and experiment-selection flags have nothing to select.
		for _, name := range []string{"exp", "ratio", "mem", "parallel", "timeout", "progress", "explain-fastpath", "profile-record", "profile-use"} {
			if set[name] {
				usage("-%s does not apply to the -tenants service benchmark", name)
			}
		}
	} else {
		for _, name := range []string{"qos", "seed"} {
			if set[name] {
				usage("-%s requires -tenants", name)
			}
		}
	}

	if alias, ok := expAlias[*exp]; ok {
		*exp = alias
	}
	switch *exp {
	case "all", "table1", "table2", "fig3", "fig4", "fig5", "table3", "fig6", "fig7", "fig8", "ablate":
	default:
		usage("unknown experiment %q (want all, table1, table2, fig3[a|b], fig4[a|b|c], fig5, table3, fig6, fig7, fig8, or ablate)", *exp)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "oocbench:", err)
			os.Exit(1)
		}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		fail(err)
		fail(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			fail(f.Close())
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			fail(err)
			runtime.GC() // flush recently-freed objects out of the profile
			fail(pprof.WriteHeapProfile(f))
			fail(f.Close())
		}()
	}

	if *explain {
		fail(oocp.ExplainFastPath(os.Stdout, *scale))
		return
	}

	if *tenants > 0 {
		opts := oocp.TenantOptions{Tenants: *tenants, Scale: *scale, Seed: *seed}
		if *qosSpec != "" {
			classes, err := oocp.ParseQoSClasses(*qosSpec)
			if err != nil {
				usage("%v", err)
			}
			opts.Classes = classes
		}
		if *backendSpec != "" {
			spec, err := oocp.ParseBackendSpec(*backendSpec)
			if err != nil {
				usage("%v", err)
			}
			opts.Backend = &spec
		}
		if *faultSpec != "" {
			prof, err := oocp.ParseFaultSpec(*faultSpec)
			if err != nil {
				usage("%v", err)
			}
			opts.Faults = &prof
		}
		if *tracePath != "" {
			opts.Trace = oocp.NewTrace()
		}
		if *metricsPath != "" {
			opts.Metrics = oocp.NewMetrics()
		}
		fail(oocp.Tenants(os.Stdout, opts))
		if opts.Trace != nil {
			fail(writeFile(*tracePath, opts.Trace.WriteJSON))
		}
		if opts.Metrics != nil {
			fail(writeFile(*metricsPath, opts.Metrics.WriteJSON))
		}
		return
	}

	var progressFn oocp.ProgressFunc
	if *progress {
		progressFn = func(p oocp.Progress) {
			status := "ok"
			switch {
			case p.Job.TimedOut:
				status = "TIMEOUT"
			case p.Job.Err != nil:
				status = "ERROR"
			}
			fmt.Fprintf(os.Stderr, "oocbench: [%3d/%3d] %-16s %8.2fs  %s\n",
				p.Done, p.Total, p.Job.Label, p.Job.Wall.Seconds(), status)
		}
	}
	var trace *oocp.Trace
	if *tracePath != "" {
		trace = oocp.NewTrace()
	}
	var metrics *oocp.Metrics
	if *metricsPath != "" {
		metrics = oocp.NewMetrics()
	}
	runner := oocp.Runner{Parallelism: *parallel, Timeout: *timeout, Progress: progressFn,
		Trace: trace, Metrics: metrics}

	w := os.Stdout

	needSuite := func() bool {
		if *profileRecord != "" {
			return true // the record pass is a suite run matrix
		}
		switch *exp {
		case "all", "fig3", "fig4", "fig5", "table3":
			return true
		}
		return false
	}

	var backend *oocp.BackendSpec
	if *backendSpec != "" {
		spec, err := oocp.ParseBackendSpec(*backendSpec)
		if err != nil {
			usage("%v", err)
		}
		if !needSuite() {
			usage("-backend applies to the NAS suite experiments (all, fig3, fig4, fig5, table3), not -exp %s", *exp)
		}
		backend = &spec
	}

	var faults *oocp.FaultProfile
	if *faultSpec != "" {
		prof, err := oocp.ParseFaultSpec(*faultSpec)
		if err != nil {
			usage("%v", err)
		}
		if !needSuite() {
			usage("-faults applies to the NAS suite experiments (all, fig3, fig4, fig5, table3), not -exp %s", *exp)
		}
		faults = &prof
	}

	if *profileRecord != "" {
		fmt.Fprintln(w, "recording NAS execution profiles (pass 1, original configuration)...")
		profs, err := oocp.RecordProfiles(ctx, oocp.SuiteOptions{
			Scale:       *scale,
			Ratio:       *ratio,
			Parallelism: *parallel,
			Timeout:     *timeout,
			Progress:    progressFn,
			Trace:       trace,
			Metrics:     metrics,
			Faults:      faults,
			Backend:     backend,
		})
		fail(err)
		data, err := oocp.MarshalProfiles(profs)
		fail(err)
		fail(os.WriteFile(*profileRecord, data, 0o644))
		fmt.Fprintf(w, "wrote %d kernel profiles to %s\n", len(profs.Kernels), *profileRecord)
		if trace != nil {
			fail(writeFile(*tracePath, trace.WriteJSON))
		}
		if metrics != nil {
			fail(writeFile(*metricsPath, metrics.WriteJSON))
		}
		return
	}

	var profiles *oocp.ProfileSet
	if *profileUse != "" {
		if !needSuite() {
			usage("-profile-use applies to the NAS suite experiments (all, fig3, fig4, fig5, table3), not -exp %s", *exp)
		}
		data, err := os.ReadFile(*profileUse)
		fail(err)
		profiles, err = oocp.UnmarshalProfiles(data)
		fail(err)
	}

	if *exp == "all" || *exp == "table1" {
		oocp.Table1(w)
		fmt.Fprintln(w)
	}
	if *exp == "all" || *exp == "table2" {
		oocp.Table2(w, *scale)
		fmt.Fprintln(w)
	}
	if needSuite() {
		fmt.Fprintln(w, "running the NAS suite (original, prefetching, and no-run-time-layer)...")
		rs, err := oocp.RunSuiteContext(ctx, oocp.SuiteOptions{
			Scale:       *scale,
			Ratio:       *ratio,
			WithNoRT:    true,
			Parallelism: *parallel,
			Timeout:     *timeout,
			Progress:    progressFn,
			Trace:       trace,
			Metrics:     metrics,
			Faults:      faults,
			Backend:     backend,
			ProfileUse:  profiles,
		})
		fail(err)
		fmt.Fprintln(w)
		if *exp == "all" || *exp == "fig3" {
			oocp.Fig3(w, rs)
			fmt.Fprintln(w)
		}
		if *exp == "all" || *exp == "fig4" {
			oocp.Fig4(w, rs)
			fmt.Fprintln(w)
		}
		if *exp == "all" || *exp == "fig5" {
			oocp.Fig5(w, rs)
			fmt.Fprintln(w)
		}
		if *exp == "all" || *exp == "table3" {
			oocp.Table3(w, rs)
			fmt.Fprintln(w)
		}
	}
	if *exp == "all" || *exp == "fig6" {
		fail(oocp.Fig6Context(ctx, w, *scale, runner))
		fmt.Fprintln(w)
	}
	if *exp == "all" || *exp == "fig7" {
		fail(oocp.Fig7Context(ctx, w, *scale, runner))
		fmt.Fprintln(w)
	}
	if *exp == "all" || *exp == "fig8" {
		fail(oocp.Fig8Context(ctx, w, int64(*memMB*(1<<20)), runner))
		fmt.Fprintln(w)
	}
	if *exp == "all" || *exp == "ablate" {
		fail(oocp.AblateAllContext(ctx, w, *scale, runner))
	}

	if trace != nil {
		fail(writeFile(*tracePath, trace.WriteJSON))
	}
	if metrics != nil {
		fail(writeFile(*metricsPath, metrics.WriteJSON))
	}
}

// writeFile creates path and streams write into it, reporting the first
// error of create/write/close.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
