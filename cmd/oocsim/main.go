// Command oocsim runs one application (a built-in NAS kernel or a source
// file) on the simulated system and reports the full statistics of the
// run, in any of the paper's configurations.
//
// Usage:
//
//	oocsim [-ratio F] [-scale F] [-original] [-no-rt] [-warm] <file.loop | APP-NAME>
package main

import (
	"flag"
	"fmt"
	"os"

	oocp "repro"
)

func main() {
	ratio := flag.Float64("ratio", 0, "data:memory ratio (0 = app standard, e.g. 2)")
	scale := flag.Float64("scale", 1.0, "problem-size multiplier")
	original := flag.Bool("original", false, "run without prefetching (the O configuration)")
	noRT := flag.Bool("no-rt", false, "disable the run-time filtering layer")
	warm := flag.Bool("warm", false, "warm-start: preload the data set before timing")
	timeline := flag.Bool("timeline", false, "print an ASCII timeline of free memory and faults")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: oocsim [flags] <file.loop | APP-NAME>")
		os.Exit(2)
	}
	arg := flag.Arg(0)

	var prog *oocp.Program
	var cfgSeed func(cfg *oocp.Config)
	app := oocp.AppByName(arg)
	if app != nil {
		prog = app.Build(*scale)
		cfgSeed = func(cfg *oocp.Config) { cfg.Seed = app.Seed }
		if *ratio <= 0 {
			*ratio = app.Ratio()
		}
	} else {
		src, err := os.ReadFile(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oocsim:", err)
			os.Exit(1)
		}
		prog, err = oocp.ParseProgram(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "oocsim:", err)
			os.Exit(1)
		}
		cfgSeed = func(cfg *oocp.Config) {}
		if *ratio <= 0 {
			*ratio = 2
		}
	}

	machine := oocp.DefaultMachine()
	if err := prog.Resolve(machine.PageSize); err != nil {
		fmt.Fprintln(os.Stderr, "oocsim:", err)
		os.Exit(1)
	}
	data := oocp.DataBytes(prog, machine.PageSize)
	cfg := oocp.DefaultConfig(oocp.MachineFor(data, *ratio))
	cfg.Prefetch = !*original
	cfg.RuntimeFilter = !*noRT
	cfg.WarmStart = *warm
	if *timeline {
		cfg.SamplePeriod = 20 * 1000 * 1000 // 20ms of simulated time
	}
	cfgSeed(&cfg)

	res, err := oocp.Run(prog, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oocsim:", err)
		os.Exit(1)
	}
	if app != nil {
		if err := app.Check(prog, res.VM, res.Env); err != nil {
			fmt.Fprintln(os.Stderr, "oocsim: VALIDATION FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("validation: ok")
	}

	fmt.Printf("program          %s\n", prog.Name)
	fmt.Printf("data             %.2f MB (%.2fx memory)\n",
		float64(data)/(1<<20), float64(data)/float64(cfg.Machine.MemoryBytes))
	fmt.Printf("execution time   %v\n", res.Elapsed)
	t := res.Times
	fmt.Printf("  user           %v\n", t.User)
	fmt.Printf("  sys (faults)   %v\n", t.SysFault)
	fmt.Printf("  sys (prefetch) %v\n", t.SysPrefetch)
	fmt.Printf("  idle (stall)   %v\n", t.Idle)
	m := res.Mem
	fmt.Printf("faults           %d major, %d minor\n", m.MajorFaults, m.MinorFaults)
	fmt.Printf("fault classes    %d prefetched-hit, %d prefetched-fault, %d non-prefetched (coverage %.1f%%)\n",
		m.PrefetchedHits, m.PrefetchedFaults, m.NonPrefetchedFault, m.CoverageFactor()*100)
	fmt.Printf("prefetch calls   %d syscalls, %d pages issued, %d unnecessary at OS, %d dropped\n",
		m.PrefetchCalls, m.PrefetchIssued, m.PrefetchUnneeded, m.PrefetchDropped)
	fmt.Printf("run-time layer   %d inserted pages, %.1f%% filtered\n",
		res.RT.InsertedPages, res.RT.UnnecessaryInsertedFrac()*100)
	fmt.Printf("releases         %d pages; avg memory free %.1f%%\n", m.ReleasedPages, res.AvgFree*100)
	fmt.Printf("disk utilization %.1f%%\n", res.DiskUtil*100)
	if *timeline {
		fmt.Println()
		fmt.Print(oocp.RenderTimeline(res, 72))
	}
	if len(res.Plan) > 0 {
		fmt.Println("\ncompiler plan:")
		for _, e := range res.Plan {
			status := "covered at " + e.Pipeline
			if !e.Covered {
				status = "MISSED"
			}
			fmt.Printf("  %-10s %-9s %s (strip %d, %d pages, distance %d, release %v)\n",
				e.Array, e.Kind, status, e.StripLen, e.Pages, e.Dist, e.Release)
		}
	}
}
