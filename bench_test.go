// Benchmarks regenerating every table and figure of the paper's
// evaluation section. Each benchmark runs the corresponding experiment
// end-to-end on the simulated system and reports the headline metric as a
// custom benchmark unit, so `go test -bench=. -benchmem` reproduces the
// whole evaluation. Run a single one with e.g. `go test -bench=Fig3`.
package oocp_test

import (
	"io"
	"testing"

	oocp "repro"
)

// benchScale trades fidelity for benchmark wall-clock; 1.0 is the paper's
// standard size and is what EXPERIMENTS.md records.
const benchScale = 0.5

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		oocp.Table1(io.Discard)
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		oocp.Table2(io.Discard, benchScale)
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := oocp.RunSuite(benchScale, 0, false)
		if err != nil {
			b.Fatal(err)
		}
		oocp.Fig3(io.Discard, rs)
		var geo float64 = 1
		for _, r := range rs {
			geo *= r.Speedup()
		}
		b.ReportMetric(geo, "product-speedup")
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := oocp.RunSuite(benchScale, 0, true)
		if err != nil {
			b.Fatal(err)
		}
		oocp.Fig4(io.Discard, rs)
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := oocp.RunSuite(benchScale, 0, false)
		if err != nil {
			b.Fatal(err)
		}
		oocp.Fig5(io.Discard, rs)
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := oocp.RunSuite(benchScale, 0, false)
		if err != nil {
			b.Fatal(err)
		}
		oocp.Table3(io.Discard, rs)
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := oocp.Fig6(io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := oocp.Fig7(io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := oocp.Fig8(io.Discard, 4<<20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := oocp.AblateAll(io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// Per-application benchmarks: the O and P configurations of each NAS
// kernel, reporting the speedup as a metric.
func BenchmarkApps(b *testing.B) {
	for _, app := range oocp.Suite() {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := oocp.RunAppPair(app, benchScale, 0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Speedup(), "speedup")
				b.ReportMetric(r.P.Mem.CoverageFactor()*100, "coverage%")
			}
		})
	}
}
