// Compiler-explorer: reproduces the paper's Figure 2 — feed the compiler
// the motivating loop nest (dense b[i], two-dimensional c[i][j], and the
// indirect a[b[i]]) and print the transformed code with its strip-mined
// loops, prolog block prefetches, per-iteration indirect prefetches, and
// bundled prefetch_release_block calls.
package main

import (
	"fmt"
	"log"

	oocp "repro"
)

const figure2 = `
program figure2
param rows = 100000
param N = 64            // one row of c is 512 B — less than a page
array double a[1 << 17]
array long b[rows]
array double c[rows][N]
scalar double t

for i = 0 .. rows {
    for j = 0 .. N {
        t = t + c[i][j]
    }
    a[b[i]] = a[b[i]] + 1.0
}
`

func main() {
	prog, err := oocp.ParseProgram(figure2)
	if err != nil {
		log.Fatal(err)
	}
	machine := oocp.DefaultMachine()
	machine.MemoryBytes = 8 << 20

	res, err := oocp.Compile(prog, machine, oocp.DefaultCompilerOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("/* ---- input (the paper's Figure 2(a)) ---- */")
	fmt.Print(oocp.PrintProgram(prog))
	fmt.Println()
	fmt.Println("/* ---- compiler plan ---- */")
	fmt.Print(res.PlanString())
	fmt.Println()
	fmt.Println("/* ---- output (the paper's Figure 2(b)) ---- */")
	fmt.Print(oocp.PrintProgram(res.Prog))
	fmt.Println()
	fmt.Println("/* note the two strip levels (i0, i1): c[i][j] consumes data faster")
	fmt.Println("   than b[i], so it is prefetched at a faster rate, exactly as in the")
	fmt.Println("   paper; a[b[i]] gets a one-page prefetch through the index array. */")
}
