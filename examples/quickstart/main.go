// Quickstart: write an ordinary in-core kernel, run it on an out-of-core
// problem, and let compiler-inserted I/O prefetching recover the
// performance — no explicit I/O, no code changes.
package main

import (
	"fmt"
	"log"

	oocp "repro"
)

const src = `
program quickstart
param n = 1 << 21        // 16 MB of float64: twice the memory we'll give it
array double a[n]
scalar double mean

// An ordinary reduction, written as if memory were unlimited.
for i = 0 .. n {
    mean = mean + a[i]
}
mean = mean / float(n)
`

func run(prefetch bool) *oocp.Result {
	prog, err := oocp.ParseProgram(src)
	if err != nil {
		log.Fatal(err)
	}
	machine := oocp.DefaultMachine()
	if err := prog.Resolve(machine.PageSize); err != nil {
		log.Fatal(err)
	}
	cfg := oocp.DefaultConfig(oocp.MachineFor(oocp.DataBytes(prog, machine.PageSize), 2))
	cfg.Prefetch = prefetch
	// The input is pre-initialized on disk, as the paper's benchmarks are.
	cfg.Seed = oocp.Seeder(map[string]func(int64) float64{
		"a": func(i int64) float64 { return float64(i % 10) },
	}, nil)
	res, err := oocp.Run(prog, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	original := run(false)  // the paper's O bars: plain paged VM
	prefetched := run(true) // the P bars: compiler-inserted prefetching

	stall := func(r *oocp.Result) float64 {
		return 100 * float64(r.Times.Idle) / float64(r.Times.Total())
	}
	fmt.Printf("mean computed:        %.3f (both runs agree: %v)\n",
		prefetched.Env.Floats[0],
		original.Env.Floats[0] == prefetched.Env.Floats[0])
	fmt.Printf("original (paged VM):  %v  (%.0f%% stalled on I/O)\n", original.Elapsed, stall(original))
	fmt.Printf("with prefetching:     %v  (%.0f%% stalled on I/O)\n", prefetched.Elapsed, stall(prefetched))
	fmt.Printf("speedup:              %.2fx\n", prefetched.Speedup(original))
	fmt.Printf("fault coverage:       %.1f%%\n", prefetched.Mem.CoverageFactor()*100)
}
