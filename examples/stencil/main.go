// Stencil: a 2-D heat-diffusion kernel with group locality — the
// u[i±1][j±1] cluster of references shares pages, so the compiler
// prefetches only the leading reference of each plane group. The example
// shows the compiler's plan, the transformed code, and the out-of-core
// win.
package main

import (
	"fmt"
	"log"

	oocp "repro"
)

const src = `
program heat
param n = 1024          // 1024x1024 grid: 8 MB per array
param steps = 3
array double u[n][n]
array double w[n][n]
scalar double corner

for t = 0 .. steps {
    // w = relax(u)
    for i = 1 .. n - 1 {
        for j = 1 .. n - 1 {
            w[i][j] = 0.25 * (u[i - 1][j] + u[i + 1][j] + u[i][j - 1] + u[i][j + 1])
        }
    }
    // u = relax(w)
    for i = 1 .. n - 1 {
        for j = 1 .. n - 1 {
            u[i][j] = 0.25 * (w[i - 1][j] + w[i + 1][j] + w[i][j - 1] + w[i][j + 1])
        }
    }
}
corner = u[1][1]
`

func main() {
	prog, err := oocp.ParseProgram(src)
	if err != nil {
		log.Fatal(err)
	}
	machine := oocp.DefaultMachine()
	if err := prog.Resolve(machine.PageSize); err != nil {
		log.Fatal(err)
	}
	data := oocp.DataBytes(prog, machine.PageSize)
	machine = oocp.MachineFor(data, 2)

	// Show what the compiler decides: one prefetch stream per locality
	// group leader, pipelined along the row loop.
	cres, err := oocp.Compile(prog, machine, oocp.DefaultCompilerOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiler plan (one line per locality group):")
	fmt.Print(cres.PlanString())
	fmt.Println()

	seed := oocp.Seeder(map[string]func(int64) float64{
		"u": func(i int64) float64 { return float64(i%97) / 97 },
	}, nil)

	run := func(prefetch bool) *oocp.Result {
		p, _ := oocp.ParseProgram(src)
		cfg := oocp.DefaultConfig(machine)
		cfg.Prefetch = prefetch
		cfg.Seed = seed
		r, err := oocp.Run(p, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	o := run(false)
	p := run(true)
	if o.Env.Floats[0] != p.Env.Floats[0] {
		log.Fatalf("results diverge: %v vs %v", o.Env.Floats[0], p.Env.Floats[0])
	}
	fmt.Printf("grid:       %.0f MB on a %.0f MB machine\n",
		float64(data)/(1<<20), float64(machine.MemoryBytes)/(1<<20))
	fmt.Printf("original:   %v\n", o.Elapsed)
	fmt.Printf("prefetched: %v  (speedup %.2fx, coverage %.1f%%)\n",
		p.Elapsed, p.Speedup(o), p.Mem.CoverageFactor()*100)
}
