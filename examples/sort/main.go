// Sort: an out-of-core key-ranking kernel (a miniature of the NAS BUK
// benchmark) demonstrating the three-way comparison of Figure 4(c):
// paged VM, prefetching with the run-time layer, and prefetching without
// it — the configuration the paper shows is worse than no prefetching at
// all, because every unnecessary prefetch pays a full system call.
package main

import (
	"fmt"
	"log"

	oocp "repro"
)

const src = `
program extsort
param n = 1 << 20       // 8 MB of keys
param buckets = 1 << 14
array long key[n]
array long count[buckets]
array long rank[n]

for i = 0 .. n {
    count[key[i]] = count[key[i]] + 1
}
for b = 1 .. buckets {
    count[b] = count[b] + count[b - 1]
}
for i = 0 .. n {
    rank[i] = count[key[i]] - 1
}
`

func main() {
	parse := func() *oocp.Program {
		p, err := oocp.ParseProgram(src)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	machine := oocp.DefaultMachine()
	prog := parse()
	if err := prog.Resolve(machine.PageSize); err != nil {
		log.Fatal(err)
	}
	machine = oocp.MachineFor(oocp.DataBytes(prog, machine.PageSize), 2)
	seed := oocp.Seeder(nil, map[string]func(int64) int64{
		"key": func(i int64) int64 { return (i*2654435761 + 12345) % (1 << 14) },
	})

	run := func(label string, adjust func(*oocp.Config)) *oocp.Result {
		cfg := oocp.DefaultConfig(machine)
		cfg.Seed = seed
		adjust(&cfg)
		r, err := oocp.Run(parse(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %10v  (user %v, stall %v)\n", label, r.Elapsed, r.Times.User, r.Times.Idle)
		return r
	}

	fmt.Println("out-of-core key ranking, 16 MB of key+rank data on an 8 MB machine:")
	o := run("paged VM (original)", func(c *oocp.Config) { c.Prefetch = false })
	p := run("prefetching + run-time layer", func(c *oocp.Config) {})
	n := run("prefetching, NO run-time layer", func(c *oocp.Config) { c.RuntimeFilter = false })

	fmt.Printf("\nspeedup with the run-time layer:    %.2fx\n", p.Speedup(o))
	fmt.Printf("\"speedup\" without it:               %.2fx  (slower than not prefetching!)\n", n.Speedup(o))
	fmt.Printf("prefetches filtered at user level:  %.1f%% of %d inserted\n",
		p.RT.UnnecessaryInsertedFrac()*100, p.RT.InsertedPages)
	fmt.Printf("memory kept free by releases:       %.0f%%\n", p.AvgFree*100)
}
