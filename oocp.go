// Package oocp is the public API of this reproduction of "Automatic
// Compiler-Inserted I/O Prefetching for Out-of-Core Applications"
// (Mowry, Demke & Krieger, OSDI '96).
//
// The system keeps the programmer on the unlimited-virtual-memory
// abstraction: you write a plain loop-nest kernel in the small source
// language (or build IR directly), and the compiler inserts non-binding
// prefetch and release hints that the simulated operating system and a
// user-level run-time layer turn into overlapped disk I/O.
//
// Typical use:
//
//	prog, err := oocp.ParseProgram(src)        // front end
//	cfg := oocp.DefaultConfig(oocp.MachineFor(dataBytes, 2)) // data = 2× memory
//	res, err := oocp.Run(prog, cfg)            // prefetching run
//	cfg.Prefetch = false
//	base, err := oocp.Run(prog, cfg)           // original paged-VM run
//	fmt.Println(res.Speedup(base))
//
// The eight out-of-core NAS Parallel benchmark kernels the paper
// evaluates are available through Suite and AppByName, and the experiment
// harness that regenerates the paper's tables and figures is exposed as
// the Table*/Fig* functions.
package oocp

import (
	"context"
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/nas"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/stripefs"
)

// Program is a loop-nest program: the compiler's input and the executor's
// unit of execution.
type Program = ir.Program

// Machine describes the simulated platform (Table 1).
type Machine = hw.Params

// Config selects a run configuration (original vs prefetching, warm vs
// cold start, run-time layer on or off).
type Config = core.Config

// Result carries a run's timing breakdown and every statistic the
// paper's evaluation reports.
type Result = core.Result

// CompilerOptions configure the prefetching pass.
type CompilerOptions = compiler.Options

// CompileResult is the transformed program plus the per-reference plan.
type CompileResult = compiler.Result

// App is one benchmark of the NAS suite.
type App = nas.App

// AppResult bundles one application's runs (original, prefetching, and
// optionally no-run-time-layer) under one problem size.
type AppResult = bench.AppResult

// RunOptions configure a single-application harness run.
type RunOptions = bench.RunOptions

// SuiteOptions configure a whole-suite harness run: problem scale,
// data:memory ratio, configuration variants, worker-pool parallelism,
// per-run timeout, and an optional progress callback.
type SuiteOptions = bench.SuiteOptions

// Runner is the experiment worker pool: it executes independent
// simulated runs concurrently, preserves deterministic result ordering
// (results are collected by index, never by completion order), and
// threads cancellation and per-job timeouts into each run's event loop.
type Runner = bench.Runner

// Progress is one progress-callback update of a Runner.
type Progress = bench.Progress

// ProgressFunc observes job completions during a harness run.
type ProgressFunc = bench.ProgressFunc

// JobMetric records one experiment job's wall-clock cost, attempts, and
// outcome.
type JobMetric = bench.JobMetric

// Trace collects a Chrome-trace-event timeline of simulated runs: one
// process per run with tracks for the VM core, each disk, and
// fault-classification instants, plus one process for the worker pool.
// Attach one via Config.Trace, RunOptions.Trace, or SuiteOptions.Trace
// and export it with WriteJSON; the file loads in Perfetto or
// chrome://tracing. A nil *Trace disables tracing at the cost of one nil
// check per event.
type Trace = obs.Trace

// Metrics is the typed metrics registry every layer's counters and
// gauges register in. Attach one via Config.Metrics, RunOptions.Metrics,
// or SuiteOptions.Metrics to collect several runs side by side
// (per-run names gain "<label>/" prefixes), and export a flat JSON
// snapshot with WriteJSON. The per-run statistics structs (vm, disk,
// run-time layer) are views assembled from this registry.
type Metrics = obs.Registry

// FaultProfile describes one deterministic fault workload: per-disk
// transient read/write error rates, latency-spike rate and factor,
// prefetch-drop rate under synthetic memory pressure, whole-disk
// brownout windows, and the disks' retry policy. Attach one via
// Config.Faults, RunOptions.Faults, or SuiteOptions.Faults. The paper's
// hints are non-binding, so any profile changes only a run's timing and
// fault counters — never its results.
type FaultProfile = fault.Profile

// FaultCounts tallies what a run's fault plane actually injected
// (Result.Faults).
type FaultCounts = fault.Counts

// Tier selects the storage model backing the striped file system: the
// paper's rotating-disk array (the zero value), an NVMe-like
// flat-latency device, or a far-memory tier reached over a network. The
// compiler's prefetch distance follows the tier automatically.
type Tier = hw.Tier

// The storage tiers.
const (
	TierDisk      = hw.TierDisk
	TierNVMe      = hw.TierNVMe
	TierFarMemory = hw.TierFarMemory
)

// BackendSpec selects and parameterizes a run's storage backend. Attach
// one via Config.Backend, RunOptions.Backend, or SuiteOptions.Backend;
// results are identical across tiers by construction — only timing and
// device statistics change.
type BackendSpec = core.BackendSpec

// TierFor maps a tier name ("disk", "nvme"/"flash",
// "farmem"/"far-memory") to its Tier.
func TierFor(name string) (Tier, error) { return core.TierFor(name) }

// TierNames returns the canonical storage-tier names, sorted.
func TierNames() []string { return hw.TierNames() }

// ParseBackendSpec parses a CLI-style backend specification such as
// "nvme" or "tier=farmem,rtt=40us,batch=32" (see core.ParseBackendSpec
// for the full key set).
func ParseBackendSpec(spec string) (BackendSpec, error) { return core.ParseBackendSpec(spec) }

// MachineForTier is MachineFor on the given storage tier.
func MachineForTier(t Tier, dataBytes int64, ratio float64) Machine {
	return core.MachineForTier(t, dataBytes, ratio)
}

// FaultProfileByName returns a named fault profile (none, flaky, slow,
// pressure, brownout, chaos).
func FaultProfileByName(name string) (FaultProfile, bool) { return fault.ProfileByName(name) }

// FaultProfileNames returns the available fault-profile names, sorted.
func FaultProfileNames() []string { return fault.ProfileNames() }

// ParseFaultSpec parses a CLI-style fault specification such as
// "brownout" or "profile=chaos,seed=7".
func ParseFaultSpec(spec string) (FaultProfile, error) { return fault.ParseSpec(spec) }

// NewTrace returns an empty trace collector.
func NewTrace() *Trace { return obs.NewTrace() }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// ParseProgram compiles source text in the front-end loop language into a
// Program.
func ParseProgram(src string) (*Program, error) { return lang.Parse(src) }

// PrintProgram renders a program as C-like source, including any
// compiler-inserted prefetch and release calls (the paper's Figure 2
// style).
func PrintProgram(p *Program) string { return ir.Print(p) }

// DefaultMachine returns the reconstructed Table 1 platform.
func DefaultMachine() Machine { return hw.Default() }

// MachineFor sizes the platform so dataBytes stands in the given ratio to
// memory (2 = the paper's standard out-of-core setting).
func MachineFor(dataBytes int64, ratio float64) Machine {
	return core.MachineFor(dataBytes, ratio)
}

// DefaultConfig returns the standard prefetching configuration on the
// given machine.
func DefaultConfig(m Machine) Config { return core.DefaultConfig(m) }

// DefaultCompilerOptions mirror the paper's compiler configuration
// (4-page block prefetches, releases on, no two-version loops).
func DefaultCompilerOptions() CompilerOptions { return compiler.DefaultOptions() }

// Compile runs the prefetching compiler alone, returning the transformed
// program and the plan; useful for inspecting the inserted hints.
func Compile(p *Program, m Machine, opts CompilerOptions) (*CompileResult, error) {
	return compiler.Compile(p, m, opts)
}

// Run executes a program on a fresh simulated system. It is RunContext
// with a background context.
func Run(p *Program, cfg Config) (*Result, error) { return RunContext(context.Background(), p, cfg) }

// RunContext executes a program on a fresh simulated system, honoring
// ctx: cancellation or a deadline aborts the run's event loop within
// one simulated event and returns ctx's error.
func RunContext(ctx context.Context, p *Program, cfg Config) (*Result, error) {
	return core.RunContext(ctx, p, cfg)
}

// Seeder pre-initializes named arrays in the backing file before a run
// ("the data now comes from disk"). Map keys are array names; values
// generate the element at a linear index.
func Seeder(f64 map[string]func(i int64) float64, i64 map[string]func(i int64) int64) func(*Program, *stripefs.File, int64) {
	return func(prog *Program, file *stripefs.File, pageSize int64) {
		for name, gen := range f64 {
			if a := prog.ArrayByName(name); a != nil {
				exec.SeedF64(file, pageSize, a, gen)
			}
		}
		for name, gen := range i64 {
			if a := prog.ArrayByName(name); a != nil {
				exec.SeedI64(file, pageSize, a, gen)
			}
		}
	}
}

// Peek reads a float64 array element of a finished run with no simulated
// cost (for validating results). It panics if the program has no array
// of that name or the index is out of range; use PeekE to get an error
// instead.
func Peek(res *Result, array string, i int64) float64 {
	v, err := PeekE(res, array, i)
	if err != nil {
		panic(err)
	}
	return v
}

// PeekE reads a float64 array element of a finished run with no
// simulated cost, returning an error if the program has no array of
// that name or the index is out of range.
func PeekE(res *Result, array string, i int64) (float64, error) {
	a := res.Prog.ArrayByName(array)
	if a == nil {
		return 0, fmt.Errorf("oocp: program %s has no array %q", res.Prog.Name, array)
	}
	if i < 0 || i >= a.Elems {
		return 0, fmt.Errorf("oocp: index %d out of range for array %q [0,%d)", i, array, a.Elems)
	}
	return res.VM.PeekF64(a.Base + i*8), nil
}

// RenderTimeline draws an ASCII chart of a sampled run's free memory and
// fault activity (set Config.SamplePeriod to collect samples).
func RenderTimeline(res *Result, width int) string {
	return core.RenderTimeline(res.Timeline, res.VM.Params().Frames(), width)
}

// Suite returns the eight NAS kernels in the paper's order.
func Suite() []*App { return nas.Apps() }

// AppByName returns one NAS kernel by its paper name (BUK, CGM, EMBAR,
// FFT, MGRID, APPLU, APPSP, APPBT), or nil.
func AppByName(name string) *App { return nas.ByName(name) }

// DataBytes reports the resolved data-set footprint of a program.
func DataBytes(p *Program, pageSize int64) int64 { return nas.DataBytes(p, pageSize) }

// RunAppPair runs one NAS app at a problem scale and data:memory ratio in
// both the original and prefetching configurations (ratio ≤ 0 selects the
// app's standard ratio). Results are validated against the kernel's
// independent reference implementation.
func RunAppPair(app *App, scale, ratio float64) (*AppResult, error) {
	return bench.RunAppContext(context.Background(), app, RunOptions{Scale: scale, Ratio: ratio})
}

// RunAppContext runs one NAS app's configuration variants per opts,
// each on a private simulated system, honoring ctx.
func RunAppContext(ctx context.Context, app *App, opts RunOptions) (*AppResult, error) {
	return bench.RunAppContext(ctx, app, opts)
}

// The experiment harness: each function regenerates one table or figure
// of the paper onto w. See EXPERIMENTS.md for the recorded outputs.

// Table1 prints the platform characteristics.
func Table1(w io.Writer) { bench.Table1(w, hw.Default()) }

// Table2 prints the application descriptions and data-set sizes.
func Table2(w io.Writer, scale float64) { bench.Table2(w, scale) }

// RunSuite runs the whole suite at the given scale; ratio ≤ 0 uses each
// app's standard out-of-core ratio.
//
// Deprecated: use RunSuiteContext with SuiteOptions.
func RunSuite(scale, ratio float64, withNoRT bool) ([]*AppResult, error) {
	return RunSuiteContext(context.Background(), SuiteOptions{Scale: scale, Ratio: ratio, WithNoRT: withNoRT})
}

// RunSuiteContext runs the whole NAS suite on a worker pool, treating
// every (app, config-variant) tuple as an independent simulated run.
// Results come back in the paper's presentation order regardless of
// completion order — a parallel suite is byte-identical to a serial
// one. Cancelling ctx aborts in-flight runs within one simulated event.
func RunSuiteContext(ctx context.Context, opts SuiteOptions) ([]*AppResult, error) {
	return bench.RunSuiteContext(ctx, opts)
}

// Fig3 prints the overall-performance figure from suite results.
func Fig3(w io.Writer, rs []*bench.AppResult) { bench.Fig3(w, rs) }

// Fig4 prints the compiler/run-time effectiveness figures.
func Fig4(w io.Writer, rs []*bench.AppResult) { bench.Fig4(w, rs) }

// Fig5 prints the disk activity figure.
func Fig5(w io.Writer, rs []*bench.AppResult) { bench.Fig5(w, rs) }

// Table3 prints the memory activity table.
func Table3(w io.Writer, rs []*bench.AppResult) { bench.Table3(w, rs) }

// Fig6 runs and prints the in-core experiments.
func Fig6(w io.Writer, scale float64) error { return bench.Fig6(w, scale) }

// Fig6Context is Fig6 with cancellation and a configurable worker pool.
func Fig6Context(ctx context.Context, w io.Writer, scale float64, r Runner) error {
	return bench.Fig6Context(ctx, w, scale, r)
}

// Fig7 runs and prints the larger out-of-core experiments.
func Fig7(w io.Writer, scale float64) error { return bench.Fig7(w, scale) }

// Fig7Context is Fig7 with cancellation and a configurable worker pool.
func Fig7Context(ctx context.Context, w io.Writer, scale float64, r Runner) error {
	return bench.Fig7Context(ctx, w, scale, r)
}

// Fig8 runs and prints the BUK case study on a machine with the given
// memory size.
func Fig8(w io.Writer, memBytes int64) error { return bench.Fig8(w, memBytes) }

// Fig8Context is Fig8 with cancellation and a configurable worker pool.
func Fig8Context(ctx context.Context, w io.Writer, memBytes int64, r Runner) error {
	return bench.Fig8Context(ctx, w, memBytes, r)
}

// AblateAll runs the design-choice ablations DESIGN.md calls out: the
// two-version-loop extension, the pages-per-block-prefetch parameter,
// release hints, and disk scheduling.
func AblateAll(w io.Writer, scale float64) error { return bench.AblateAll(w, scale) }

// AblateAllContext is AblateAll with cancellation and a configurable
// worker pool.
func AblateAllContext(ctx context.Context, w io.Writer, scale float64, r Runner) error {
	return bench.AblateAllContext(ctx, w, scale, r)
}

// ExplainFastPath runs every NAS proxy once at the given scale and
// prints, per loop, which compiled driver ran it (page-run span driver,
// linearized kernel bytecode, or the closure oracle) and why the
// compiler fell back when it did.
func ExplainFastPath(w io.Writer, scale float64) error {
	return bench.ExplainFastPath(w, scale)
}

// ExecutionProfile is one kernel's recorded execution profile: per-
// reference-site fault, stall, inter-access, and stride histograms from
// a pass-1 recording run (not to be confused with FaultProfile, the
// fault-injection workload).
type ExecutionProfile = profile.Profile

// ProfileSet is a versioned artifact of execution profiles keyed by
// kernel name — what RecordProfiles returns and SuiteOptions.ProfileUse
// consumes.
type ProfileSet = profile.Set

// ProfileSpec selects one pass of the two-pass profile-guided prefetch
// mode for a single run (Config.Profile): Record observes, Use guides.
type ProfileSpec = core.ProfileSpec

// RecordProfiles runs pass 1 of the two-pass mode over the whole NAS
// suite: each app executes once in its original configuration with
// observation-only instrumentation (tick-identical to a plain run) and
// the recordings come back as one ProfileSet. Feed it back through
// SuiteOptions.ProfileUse for the profile-guided pass 2.
func RecordProfiles(ctx context.Context, opts SuiteOptions) (*ProfileSet, error) {
	return bench.RecordProfiles(ctx, opts)
}

// MarshalProfiles serializes a ProfileSet into its versioned artifact
// form (deterministic JSON, byte-stable across round trips).
func MarshalProfiles(s *ProfileSet) ([]byte, error) { return profile.Marshal(s) }

// UnmarshalProfiles parses and validates a ProfileSet artifact. Version
// skew returns a *profile.VersionError; anything structurally wrong
// returns a *profile.CorruptError.
func UnmarshalProfiles(data []byte) (*ProfileSet, error) { return profile.Unmarshal(data) }

// TenantOptions configures the multi-tenant service benchmark: N tenant
// kernels sharing one frame pool and disk array under residency quotas,
// prefetch-priority classes, and admission control.
type TenantOptions = bench.TenantOptions

// QoSClass is a tenant's prefetch-priority class (gold, silver,
// best-effort).
type QoSClass = disk.Class

// ParseQoSClasses parses a comma-separated class list such as
// "gold,silver,be" into a per-tenant assignment.
func ParseQoSClasses(spec string) ([]QoSClass, error) { return bench.ParseClasses(spec) }

// Tenants runs the multi-tenant service benchmark and prints per-tenant
// completion, stall, fault, and QoS statistics. Same options and seed,
// byte-identical output.
func Tenants(w io.Writer, opts TenantOptions) error { return bench.Tenants(w, opts) }
