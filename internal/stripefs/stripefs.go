// Package stripefs implements the file-system layer of the platform: files
// whose pages are striped round-robin across all disks, with extent-based
// placement (contiguous file blocks on a disk occupy contiguous disk
// blocks, so sequential access needs no seeks). This mirrors the Hurricane
// File System configuration used in the paper.
package stripefs

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sim"
)

// FS is a striped file system over a fixed array of disks.
type FS struct {
	clock *sim.Clock
	p     hw.Params
	disks []*disk.Disk
	// next free disk-local block on each disk (bump allocation: extents).
	nextBlock []int64
	files     []*File

	// flt gates the degradation closures: without an injector the disks
	// can never fail a request, so Read/Write skip building Failed
	// handlers and the fault-free hot path allocates exactly what it did
	// before fault injection existed.
	flt *fault.Injector

	// Degradation accounting under fault injection. Cold path: these only
	// move when a disk request exhausts its retry policy.
	requeuedReads  *obs.Counter // demand reads resubmitted with a fresh retry budget
	requeuedWrites *obs.Counter // write-backs resubmitted with a fresh retry budget
	abandonedPages *obs.Counter // prefetched pages abandoned to a later demand fault
}

// New creates a file system over p.NumDisks fresh disks. If sched is nil
// each disk uses FCFS, matching the paper ("the disk scheduler treats
// prefetches the same as normal disk read requests").
func New(clock *sim.Clock, p hw.Params, mkSched func() disk.Scheduler) *FS {
	return NewObserved(clock, p, mkSched, nil)
}

// NewObserved is New with the run's observability sinks attached: every
// disk's counters register in o's registry and each disk gets its own
// trace track ("disk 0" ... "disk N-1") on o's trace process.
func NewObserved(clock *sim.Clock, p hw.Params, mkSched func() disk.Scheduler, o *obs.RunObs) *FS {
	fs := &FS{clock: clock, p: p, nextBlock: make([]int64, p.NumDisks)}
	reg := o.Registry()
	fs.requeuedReads = reg.Counter("stripefs.requeued_reads")
	fs.requeuedWrites = reg.Counter("stripefs.requeued_writes")
	fs.abandonedPages = reg.Counter("stripefs.abandoned_prefetch_pages")
	for i := 0; i < p.NumDisks; i++ {
		var s disk.Scheduler
		if mkSched != nil {
			s = mkSched()
		}
		track := o.Thread(fmt.Sprintf("disk %d", i))
		fs.disks = append(fs.disks, disk.NewObserved(clock, p, i, s, reg, track))
	}
	return fs
}

// SetFaults attaches a fault injector to every disk (nil detaches). The
// file system's own degradation policy — what a *permanent* per-request
// failure means — is always in place; without an injector the disks
// never fail, so it simply never runs.
func (fs *FS) SetFaults(inj *fault.Injector) {
	fs.flt = inj
	for _, d := range fs.disks {
		d.SetFaults(inj)
	}
}

// Disks exposes the underlying disks (for statistics).
func (fs *FS) Disks() []*disk.Disk { return fs.disks }

// Params returns the hardware parameters the file system was built with.
func (fs *FS) Params() hw.Params { return fs.p }

// A File is a striped, extent-allocated file. Page p of the file lives on
// disk p mod D at disk-local block base[p mod D] + p div D.
type File struct {
	fs    *FS
	name  string
	pages int64
	base  []int64 // starting block on each disk

	// Backing contents, one slice per file page; nil means all-zero.
	// This is the "data on disk": reads copy out of it, writes copy in.
	store [][]byte
}

// Create allocates a file of the given number of pages, laid out in one
// extent per disk.
func (fs *FS) Create(name string, pages int64) (*File, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("stripefs: file %q needs a positive size, got %d pages", name, pages)
	}
	d := int64(fs.p.NumDisks)
	perDisk := (pages + d - 1) / d
	f := &File{fs: fs, name: name, pages: pages, base: make([]int64, d), store: make([][]byte, pages)}
	for i := int64(0); i < d; i++ {
		f.base[i] = fs.nextBlock[i]
		fs.nextBlock[i] += perDisk
	}
	fs.files = append(fs.files, f)
	return f, nil
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Pages returns the file's length in pages.
func (f *File) Pages() int64 { return f.pages }

// locate maps a file page to (disk, disk-local block).
func (f *File) locate(page int64) (diskID int, block int64) {
	d := int64(f.fs.p.NumDisks)
	diskID = int(page % d)
	block = f.base[diskID] + page/d
	return
}

// DiskOf returns the disk a file page is striped onto.
func (f *File) DiskOf(page int64) int {
	d, _ := f.locate(page)
	return d
}

// QueueLenOf returns the current request-queue depth of the disk a page
// is striped onto. The OS consults it to drop prefetches when the disk
// subsystem is overloaded.
func (f *File) QueueLenOf(page int64) int {
	d, _ := f.locate(page)
	return f.fs.disks[d].QueueLen()
}

// SetPage installs the backing contents of a page without simulated I/O.
// It is how experiments pre-initialize input files ("the data now comes
// from disk"). The slice is copied.
func (f *File) SetPage(page int64, data []byte) {
	f.check(page, 1)
	ps := int(f.fs.p.PageSize)
	if len(data) > ps {
		panic(fmt.Sprintf("stripefs: page data %d B exceeds page size %d", len(data), ps))
	}
	buf := make([]byte, ps)
	copy(buf, data)
	f.store[page] = buf
}

// PeekPage returns the current backing contents of a page (nil means
// all-zero). The caller must not mutate the result.
func (f *File) PeekPage(page int64) []byte {
	f.check(page, 1)
	return f.store[page]
}

func (f *File) check(page, n int64) {
	if page < 0 || n < 0 || page+n > f.pages {
		panic(fmt.Sprintf("stripefs: access [%d,%d) outside file %q of %d pages", page, page+n, f.name, f.pages))
	}
}

// Read issues asynchronous reads of file pages [page, page+n). When a
// page's disk transfer completes its data is copied into the buffer
// returned by dst(page) and then arrived(page), if non-nil, is invoked.
// Contiguous pages that land on the same disk are coalesced into a
// single request so a block prefetch of k pages costs one positional
// delay per disk, not per page.
//
// done, if non-nil, runs exactly once, when every page has *resolved* —
// arrived, or (prefetch reads only) been permanently abandoned. That
// "exactly once" holds across fault injection: transient per-attempt
// errors are retried inside the disk and are invisible here, and a
// sub-request that exhausts its retry policy resolves through exactly
// one of Done or Failed, never both. The per-kind degradation policy:
//
//   - FaultRead (demand): must not fail — the faulting CPU is stalled on
//     the data. A permanently failed sub-request is resubmitted with a
//     fresh retry budget ("stripefs.requeued_reads") until it succeeds;
//     done still fires exactly once, after the retried data arrives.
//   - PrefetchRead: hints are non-binding, so a permanently failed
//     sub-request is abandoned: failed(p), if non-nil, is invoked for
//     each lost page ("stripefs.abandoned_prefetch_pages"), no data is
//     copied, and the pages count as resolved so done still fires. The
//     caller recovers later through the normal demand-fault path.
func (f *File) Read(page, n int64, kind disk.Kind, dst func(page int64) []byte, arrived func(page int64), failed func(page int64), done func()) {
	f.check(page, n)
	if n == 0 {
		if done != nil {
			done()
		}
		return
	}
	d := int64(f.fs.p.NumDisks)
	remaining := 0
	complete := func() {
		// remaining doubles as the exactly-once guard: every sub-request
		// resolves through exactly one of Done/Failed, so a negative count
		// can only mean a double resolution. Reusing the counter keeps the
		// guard off the heap — a separate captured bool would cost an
		// allocation on every fault-free read.
		remaining--
		if remaining > 0 || done == nil {
			return
		}
		if remaining < 0 {
			panic("stripefs: read done callback fired twice")
		}
		done()
	}
	// Per disk, the file pages in [page, page+n) form one contiguous run
	// of disk-local blocks, so each disk gets at most one request.
	for dd := int64(0); dd < d; dd++ {
		first := page + ((dd-page%d)%d+d)%d // first page ≥ page on disk dd
		if first >= page+n {
			continue
		}
		count := (page + n - first + d - 1) / d
		_, startBlock := f.locate(first)
		remaining++
		deliver := func() {
			for i := int64(0); i < count; i++ {
				p := first + i*d
				buf := dst(p)
				if src := f.store[p]; src != nil {
					copy(buf, src)
				} else {
					for j := range buf {
						buf[j] = 0
					}
				}
				if arrived != nil {
					arrived(p)
				}
			}
			complete()
		}
		req := disk.Request{Block: startBlock, Pages: count, Kind: kind, Done: deliver}
		// Degradation handlers exist only under fault injection: a
		// fault-free disk never fails a request. The resubmit closure
		// rebuilds the request from its parts rather than capturing req —
		// a self-capture would force req onto the heap on every read,
		// faulted or not (escape analysis is static).
		if f.fs.flt != nil {
			if kind == disk.PrefetchRead {
				req.Failed = func() {
					f.fs.abandonedPages.Add(count)
					for i := int64(0); i < count; i++ {
						if failed != nil {
							failed(first + i*d)
						}
					}
					complete()
				}
			} else {
				var resubmit func()
				resubmit = func() {
					f.fs.requeuedReads.Inc()
					f.fs.disks[dd].Submit(disk.Request{
						Block: startBlock, Pages: count, Kind: kind,
						Done: deliver, Failed: resubmit,
					})
				}
				req.Failed = resubmit
			}
		}
		f.fs.disks[dd].Submit(req)
	}
}

// Write issues an asynchronous write-back of one page. The source buffer
// is captured immediately (the frame may be reused right away); done runs
// at transfer completion. Dirty data must reach the platter, so a
// write-back that exhausts its retry policy is resubmitted with a fresh
// budget ("stripefs.requeued_writes") until it succeeds; the backing
// store only ever changes on success.
func (f *File) Write(page int64, src []byte, done func()) {
	f.check(page, 1)
	buf := make([]byte, f.fs.p.PageSize)
	copy(buf, src)
	diskID, block := f.locate(page)
	deliver := func() {
		f.store[page] = buf
		if done != nil {
			done()
		}
	}
	req := disk.Request{Block: block, Pages: 1, Kind: disk.Write, Done: deliver}
	// As in Read: built only under fault injection, and rebuilt from
	// parts so req itself never escapes.
	if f.fs.flt != nil {
		var resubmit func()
		resubmit = func() {
			f.fs.requeuedWrites.Inc()
			f.fs.disks[diskID].Submit(disk.Request{
				Block: block, Pages: 1, Kind: disk.Write,
				Done: deliver, Failed: resubmit,
			})
		}
		req.Failed = resubmit
	}
	f.fs.disks[diskID].Submit(req)
}
