// Package stripefs implements the file-system layer of the platform: files
// whose pages are striped round-robin across all storage devices, with
// extent-based placement (contiguous file blocks on a device occupy
// contiguous device blocks, so sequential access needs no seeks). This
// mirrors the Hurricane File System configuration used in the paper.
//
// The devices are disk.Backends built for the machine's storage tier
// (hw.Params.Tier): the paper's striped disks, NVMe-like flat-latency
// devices, or a far-memory tier. The layer is tier-oblivious — batching
// and coalescing live here: Read merges the contiguous pages landing on
// one device into a single request, so a block prefetch costs one
// positional delay (or one wire request) per device, and the far-memory
// backend further batches outstanding requests per network round trip.
//
// Page contents move through the layer as []uint64 words — the VM's
// native frame format — so a transfer is one word-slice copy with no
// byte-level encoding anywhere on the I/O path.
package stripefs

import (
	"fmt"
	"sync"

	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sim"
)

// FS is a striped file system over a fixed array of storage devices.
type FS struct {
	clock *sim.Clock
	p     hw.Params
	devs  []disk.Backend
	// next free device-local block on each device (bump allocation:
	// extents).
	nextBlock []int64
	files     []*File

	// flt gates the degradation handlers: without an injector the disks
	// can never fail a request, so Read/Write skip attaching Failed
	// handlers and the fault-free hot path does no failure bookkeeping.
	flt *fault.Injector

	// Free lists of request-state objects and page buffers. Every I/O
	// used to allocate its completion closures and (for writes) a page
	// copy; recycling them makes the steady-state read and write paths
	// allocation-free. Single-threaded like everything else here: the
	// run's one simulator goroutine is the only pusher and popper.
	freeReadOps  *readOp
	freeSubReqs  *subReq
	freeWriteOps *writeOp
	freePageBufs [][]uint64

	// Degradation accounting under fault injection. Cold path: these only
	// move when a disk request exhausts its retry policy.
	requeuedReads  *obs.Counter // demand reads resubmitted with a fresh retry budget
	requeuedWrites *obs.Counter // write-backs resubmitted with a fresh retry budget
	abandonedPages *obs.Counter // prefetched pages abandoned to a later demand fault
}

// New creates a file system over p.NumDisks fresh devices of p's
// storage tier. sched applies to the disk tier only; nil means FCFS,
// matching the paper ("the disk scheduler treats prefetches the same as
// normal disk read requests").
func New(clock *sim.Clock, p hw.Params, mkSched func() disk.Scheduler) *FS {
	return NewObserved(clock, p, mkSched, nil)
}

// NewObserved is New with the run's observability sinks attached: every
// device's counters register in o's registry and each device gets its
// own trace track ("disk 0" ... "disk N-1") on o's trace process.
func NewObserved(clock *sim.Clock, p hw.Params, mkSched func() disk.Scheduler, o *obs.RunObs) *FS {
	fs := &FS{clock: clock, p: p, nextBlock: make([]int64, p.NumDisks)}
	reg := o.Registry()
	fs.requeuedReads = reg.Counter("stripefs.requeued_reads")
	fs.requeuedWrites = reg.Counter("stripefs.requeued_writes")
	fs.abandonedPages = reg.Counter("stripefs.abandoned_prefetch_pages")
	for i := 0; i < p.NumDisks; i++ {
		var s disk.Scheduler
		if mkSched != nil {
			s = mkSched()
		}
		track := o.Thread(fmt.Sprintf("disk %d", i))
		fs.devs = append(fs.devs, disk.NewBackend(clock, p, i, s, reg, track))
	}
	fs.adopt()
	return fs
}

// SetFaults attaches a fault injector to every device (nil detaches).
// The file system's own degradation policy — what a *permanent*
// per-request failure means — is always in place; without an injector
// the devices never fail, so it simply never runs.
func (fs *FS) SetFaults(inj *fault.Injector) {
	fs.flt = inj
	for _, d := range fs.devs {
		d.SetFaults(inj)
	}
}

// Backends exposes the underlying storage devices (for statistics).
func (fs *FS) Backends() []disk.Backend { return fs.devs }

// Disks exposes the underlying devices as concrete disks. It panics off
// the disk tier.
//
// Deprecated: use Backends, which works on every storage tier.
func (fs *FS) Disks() []*disk.Disk {
	out := make([]*disk.Disk, len(fs.devs))
	for i, d := range fs.devs {
		out[i] = d.(*disk.Disk)
	}
	return out
}

// Params returns the hardware parameters the file system was built with.
func (fs *FS) Params() hw.Params { return fs.p }

// ---- request-state pools ------------------------------------------------

// The pools are per-FS free lists: single-threaded push/pop with no
// locking on the I/O path. Each run builds a fresh FS, so without help
// every run would re-allocate its peak working set of request objects
// from scratch; the package-level recycler below carries retired free
// lists across FS instances. Donation (Recycle) and adoption (adopt,
// at construction) each take one mutex operation per run — the per-I/O
// path stays lock-free. Pooled objects bake an fs pointer into their
// bound callbacks' receiver, so every get rebinds .fs before use.
var recycleMu sync.Mutex

var recycled struct {
	subReqs   *subReq
	readOps   *readOp
	writeOps  *writeOp
	pageBufs  [][]uint64
	pageWords int64 // element count of the recycled page buffers
}

// adopt moves everything in the recycler into this FS's free lists.
// Page buffers are size-specific: a stash recorded for another page
// size is left for an FS it fits.
func (fs *FS) adopt() {
	pw := fs.p.PageSize / 8
	recycleMu.Lock()
	fs.freeSubReqs, recycled.subReqs = recycled.subReqs, nil
	fs.freeReadOps, recycled.readOps = recycled.readOps, nil
	fs.freeWriteOps, recycled.writeOps = recycled.writeOps, nil
	if recycled.pageWords == pw {
		fs.freePageBufs, recycled.pageBufs = recycled.pageBufs, nil
	}
	recycleMu.Unlock()
}

// Recycle donates the file system's request-object free lists to a
// package-level stash for the next FS to adopt. Call it when a run is
// over and all I/O has drained; the FS remains usable afterwards (its
// pools are simply empty). Live requests are never on a free list, so
// nothing shared escapes.
func (fs *FS) Recycle() {
	recycleMu.Lock()
	if fs.freeSubReqs != nil {
		tail := fs.freeSubReqs
		for tail.next != nil {
			tail = tail.next
		}
		tail.next = recycled.subReqs
		recycled.subReqs, fs.freeSubReqs = fs.freeSubReqs, nil
	}
	if fs.freeReadOps != nil {
		tail := fs.freeReadOps
		for tail.next != nil {
			tail = tail.next
		}
		tail.next = recycled.readOps
		recycled.readOps, fs.freeReadOps = fs.freeReadOps, nil
	}
	if fs.freeWriteOps != nil {
		tail := fs.freeWriteOps
		for tail.next != nil {
			tail = tail.next
		}
		tail.next = recycled.writeOps
		recycled.writeOps, fs.freeWriteOps = fs.freeWriteOps, nil
	}
	if len(fs.freePageBufs) > 0 {
		pw := fs.p.PageSize / 8
		if recycled.pageWords != pw {
			recycled.pageBufs, recycled.pageWords = nil, pw
		}
		recycled.pageBufs = append(recycled.pageBufs, fs.freePageBufs...)
		fs.freePageBufs = nil
	}
	recycleMu.Unlock()
}

func (fs *FS) getReadOp() *readOp {
	op := fs.freeReadOps
	if op == nil {
		return &readOp{fs: fs}
	}
	fs.freeReadOps = op.next
	op.next = nil
	op.fs = fs
	return op
}

func (fs *FS) putReadOp(op *readOp) {
	op.file, op.dst, op.arrived, op.failed, op.done = nil, nil, nil, nil, nil
	op.next = fs.freeReadOps
	fs.freeReadOps = op
}

// getSubReq returns a sub-request with its completion callbacks already
// bound: the method values are created once per pooled object, not once
// per I/O.
func (fs *FS) getSubReq() *subReq {
	s := fs.freeSubReqs
	if s == nil {
		s = &subReq{fs: fs}
		s.deliverFn = s.deliver
		s.failedFn = s.failed
		return s
	}
	fs.freeSubReqs = s.next
	s.next = nil
	s.fs = fs
	return s
}

func (fs *FS) putSubReq(s *subReq) {
	s.op = nil // a stale disk callback now faults loudly instead of corrupting a recycled op
	s.next = fs.freeSubReqs
	fs.freeSubReqs = s
}

func (fs *FS) getWriteOp() *writeOp {
	w := fs.freeWriteOps
	if w == nil {
		w = &writeOp{fs: fs}
		w.deliverFn = w.deliver
		w.failedFn = w.failed
		return w
	}
	fs.freeWriteOps = w.next
	w.next = nil
	w.fs = fs
	return w
}

func (fs *FS) putWriteOp(w *writeOp) {
	w.file, w.buf, w.done = nil, nil, nil
	w.next = fs.freeWriteOps
	fs.freeWriteOps = w
}

func (fs *FS) getPageBuf() []uint64 {
	if n := len(fs.freePageBufs); n > 0 {
		buf := fs.freePageBufs[n-1]
		fs.freePageBufs = fs.freePageBufs[:n-1]
		return buf
	}
	return make([]uint64, fs.p.PageSize/8)
}

func (fs *FS) putPageBuf(buf []uint64) {
	fs.freePageBufs = append(fs.freePageBufs, buf)
}

// A File is a striped, extent-allocated file. Page p of the file lives on
// disk p mod D at disk-local block base[p mod D] + p div D.
type File struct {
	fs    *FS
	name  string
	pages int64
	base  []int64 // starting block on each disk

	// Backing contents, one word slice per file page; nil means all-zero.
	// This is the "data on disk": reads copy out of it, writes copy in.
	store [][]uint64

	// Request tags for multi-tenant QoS: the issuing tenant and its
	// prefetch-priority class, stamped onto every request for this file.
	// Zero values (tenant 0, Gold) are what single-tenant runs use and
	// change nothing.
	tenant int32
	class  disk.Class
}

// Create allocates a file of the given number of pages, laid out in one
// extent per disk.
func (fs *FS) Create(name string, pages int64) (*File, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("stripefs: file %q needs a positive size, got %d pages", name, pages)
	}
	d := int64(fs.p.NumDisks)
	perDisk := (pages + d - 1) / d
	f := &File{fs: fs, name: name, pages: pages, base: make([]int64, d), store: make([][]uint64, pages)}
	for i := int64(0); i < d; i++ {
		f.base[i] = fs.nextBlock[i]
		fs.nextBlock[i] += perDisk
	}
	fs.files = append(fs.files, f)
	return f, nil
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// SetTag stamps every subsequent request issued for this file with the
// issuing tenant and that tenant's prefetch-priority class, so a QoS
// disk scheduler can order prefetches by class and per-tenant
// attribution survives down to the device queues.
func (f *File) SetTag(tenant int32, class disk.Class) { f.tenant, f.class = tenant, class }

// Pages returns the file's length in pages.
func (f *File) Pages() int64 { return f.pages }

// locate maps a file page to (disk, disk-local block).
func (f *File) locate(page int64) (diskID int, block int64) {
	d := int64(f.fs.p.NumDisks)
	diskID = int(page % d)
	block = f.base[diskID] + page/d
	return
}

// DiskOf returns the disk a file page is striped onto.
func (f *File) DiskOf(page int64) int {
	d, _ := f.locate(page)
	return d
}

// QueueLenOf returns the current request-queue depth of the disk a page
// is striped onto. The OS consults it to drop prefetches when the disk
// subsystem is overloaded.
func (f *File) QueueLenOf(page int64) int {
	d, _ := f.locate(page)
	return f.fs.devs[d].QueueLen()
}

// storeBufFor returns a zeroed page buffer installed as the backing
// contents of page, reusing the existing one when present.
func (f *File) storeBufFor(page int64) []uint64 {
	buf := f.store[page]
	if buf == nil {
		buf = f.fs.getPageBuf()
		f.store[page] = buf
	}
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// SetPage installs the backing contents of a page from raw bytes
// (little-endian words) without simulated I/O. It is how experiments
// pre-initialize input files ("the data now comes from disk"); data may
// be shorter than a page, the rest is zero. The slice is copied.
func (f *File) SetPage(page int64, data []byte) {
	f.check(page, 1)
	if int64(len(data)) > f.fs.p.PageSize {
		panic(fmt.Sprintf("stripefs: page data %d B exceeds page size %d", len(data), f.fs.p.PageSize))
	}
	buf := f.storeBufFor(page)
	for i, c := range data {
		buf[i>>3] |= uint64(c) << uint(8*(i&7))
	}
}

// SetPageWords is SetPage for word-formatted data, the layer's native
// page format. The slice is copied.
func (f *File) SetPageWords(page int64, data []uint64) {
	f.check(page, 1)
	if int64(len(data)) > f.fs.p.PageSize/8 {
		panic(fmt.Sprintf("stripefs: page data %d words exceeds page size %d", len(data), f.fs.p.PageSize))
	}
	buf := f.storeBufFor(page)
	copy(buf, data)
}

// PeekPage returns the current backing contents of a page as words (nil
// means all-zero). The caller must not mutate or retain the result: the
// buffer is recycled when the page is next written.
func (f *File) PeekPage(page int64) []uint64 {
	f.check(page, 1)
	return f.store[page]
}

func (f *File) check(page, n int64) {
	if page < 0 || n < 0 || page+n > f.pages {
		panic(fmt.Sprintf("stripefs: access [%d,%d) outside file %q of %d pages", page, page+n, f.name, f.pages))
	}
}

// readOp is the shared state of one File.Read call: the callbacks and
// the count of unresolved sub-requests. Pooled on the FS free list.
type readOp struct {
	fs        *FS
	file      *File
	dst       func(page int64) []uint64
	arrived   func(page int64)
	failed    func(page int64)
	done      func()
	remaining int
	next      *readOp
}

// complete resolves one sub-request; the last one fires done and recycles
// the op. Each sub-request resolves through exactly one of Done/Failed
// (the disk's contract), so remaining reaches zero exactly once.
func (op *readOp) complete() {
	op.remaining--
	if op.remaining > 0 {
		return
	}
	done := op.done
	op.fs.putReadOp(op)
	if done != nil {
		done()
	}
}

// subReq is one disk's share of a striped read: count pages starting at
// file page first, every step-th page. Pooled, with its disk callbacks
// bound once at allocation.
type subReq struct {
	fs    *FS
	op    *readOp
	first int64
	count int64
	step  int64 // page stride on one disk = number of disks
	disk  int
	block int64
	kind  disk.Kind

	deliverFn func()
	failedFn  func()
	next      *subReq
}

// deliver copies the transferred pages out of the backing store into the
// caller's buffers and resolves the sub-request.
func (s *subReq) deliver() {
	op := s.op
	if op == nil {
		panic("stripefs: read sub-request resolved twice")
	}
	f := op.file
	for i := int64(0); i < s.count; i++ {
		p := s.first + i*s.step
		buf := op.dst(p)
		if src := f.store[p]; src != nil {
			copy(buf, src)
		} else {
			for j := range buf {
				buf[j] = 0
			}
		}
		if op.arrived != nil {
			op.arrived(p)
		}
	}
	s.fs.putSubReq(s)
	op.complete()
}

// failed handles a sub-request whose retry policy is exhausted, per the
// Read degradation contract: prefetches are abandoned page by page,
// demand reads are resubmitted with a fresh retry budget.
func (s *subReq) failed() {
	op := s.op
	if op == nil {
		panic("stripefs: read sub-request resolved twice")
	}
	fs := s.fs
	if s.kind == disk.PrefetchRead {
		fs.abandonedPages.Add(s.count)
		for i := int64(0); i < s.count; i++ {
			if op.failed != nil {
				op.failed(s.first + i*s.step)
			}
		}
		fs.putSubReq(s)
		op.complete()
		return
	}
	fs.requeuedReads.Inc()
	fs.devs[s.disk].Submit(disk.Request{
		Block: s.block, Pages: s.count, Kind: s.kind,
		Done: s.deliverFn, Failed: s.failedFn,
	})
}

// Read issues asynchronous reads of file pages [page, page+n). When a
// page's disk transfer completes its words are copied into the buffer
// returned by dst(page) and then arrived(page), if non-nil, is invoked.
// Contiguous pages that land on the same disk are coalesced into a
// single request so a block prefetch of k pages costs one positional
// delay per disk, not per page.
//
// done, if non-nil, runs exactly once, when every page has *resolved* —
// arrived, or (prefetch reads only) been permanently abandoned. That
// "exactly once" holds across fault injection: transient per-attempt
// errors are retried inside the disk and are invisible here, and a
// sub-request that exhausts its retry policy resolves through exactly
// one of Done or Failed, never both. The per-kind degradation policy:
//
//   - FaultRead (demand): must not fail — the faulting CPU is stalled on
//     the data. A permanently failed sub-request is resubmitted with a
//     fresh retry budget ("stripefs.requeued_reads") until it succeeds;
//     done still fires exactly once, after the retried data arrives.
//   - PrefetchRead: hints are non-binding, so a permanently failed
//     sub-request is abandoned: failed(p), if non-nil, is invoked for
//     each lost page ("stripefs.abandoned_prefetch_pages"), no data is
//     copied, and the pages count as resolved so done still fires. The
//     caller recovers later through the normal demand-fault path.
//
// All request state comes from the FS pools, so a steady-state read —
// faulted or not — allocates nothing.
func (f *File) Read(page, n int64, kind disk.Kind, dst func(page int64) []uint64, arrived func(page int64), failed func(page int64), done func()) {
	f.check(page, n)
	if n == 0 {
		if done != nil {
			done()
		}
		return
	}
	fs := f.fs
	op := fs.getReadOp()
	op.file, op.dst, op.arrived, op.failed, op.done = f, dst, arrived, failed, done
	// Per disk, the file pages in [page, page+n) form one contiguous run
	// of disk-local blocks, so each disk gets at most one request. No
	// completion can run before the loop finishes (the disks signal
	// through the simulated clock), so remaining is fully accumulated
	// before the first decrement.
	d := int64(fs.p.NumDisks)
	for dd := int64(0); dd < d; dd++ {
		first := page + ((dd-page%d)%d+d)%d // first page ≥ page on disk dd
		if first >= page+n {
			continue
		}
		count := (page + n - first + d - 1) / d
		_, startBlock := f.locate(first)
		op.remaining++
		s := fs.getSubReq()
		s.op, s.first, s.count, s.step = op, first, count, d
		s.disk, s.block, s.kind = int(dd), startBlock, kind
		req := disk.Request{Block: startBlock, Pages: count, Kind: kind, Done: s.deliverFn,
			Tenant: f.tenant, Class: f.class}
		// The degradation handler is attached only under fault injection:
		// a fault-free disk never fails a request.
		if fs.flt != nil {
			req.Failed = s.failedFn
		}
		fs.devs[dd].Submit(req)
	}
}

// writeOp is the state of one in-flight page write-back: the captured
// page contents plus the resubmission coordinates. Pooled, with its disk
// callbacks bound once at allocation. The completion callback receives
// the page number, so one bound-once method value per caller serves
// every write-back (the VM's zero-alloc clean path depends on this).
type writeOp struct {
	fs    *FS
	file  *File
	page  int64
	buf   []uint64
	done  func(page int64)
	disk  int
	block int64

	deliverFn func()
	failedFn  func()
	next      *writeOp
}

// deliver installs the captured contents as the page's backing store,
// recycling the displaced buffer, and fires done.
func (w *writeOp) deliver() {
	f := w.file
	if f == nil {
		panic("stripefs: write resolved twice")
	}
	fs := w.fs
	if old := f.store[w.page]; old != nil {
		fs.putPageBuf(old)
	}
	f.store[w.page] = w.buf
	w.buf = nil
	done, page := w.done, w.page
	fs.putWriteOp(w)
	if done != nil {
		done(page)
	}
}

// failed resubmits a write-back whose retry policy is exhausted: dirty
// data must reach the platter.
func (w *writeOp) failed() {
	w.fs.requeuedWrites.Inc()
	w.fs.devs[w.disk].Submit(disk.Request{
		Block: w.block, Pages: 1, Kind: disk.Write,
		Done: w.deliverFn, Failed: w.failedFn,
	})
}

// Write issues an asynchronous write-back of one page of words. The
// source buffer is captured immediately (the frame may be reused right
// away); done runs at transfer completion with the page that finished,
// so callers can share one completion function across every write-back
// instead of closing over the page. Dirty data must reach the platter,
// so a write-back that exhausts its retry policy is resubmitted with a
// fresh budget ("stripefs.requeued_writes") until it succeeds; the
// backing store only ever changes on success.
func (f *File) Write(page int64, src []uint64, done func(page int64)) {
	f.check(page, 1)
	fs := f.fs
	w := fs.getWriteOp()
	buf := fs.getPageBuf()
	n := copy(buf, src)
	for i := n; i < len(buf); i++ {
		buf[i] = 0
	}
	w.file, w.page, w.buf, w.done = f, page, buf, done
	w.disk, w.block = f.locate(page)
	req := disk.Request{Block: w.block, Pages: 1, Kind: disk.Write, Done: w.deliverFn,
		Tenant: f.tenant, Class: f.class}
	if fs.flt != nil {
		req.Failed = w.failedFn
	}
	fs.devs[w.disk].Submit(req)
}
