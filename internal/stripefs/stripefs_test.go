package stripefs

import (
	"slices"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/hw"
	"repro/internal/sim"
)

func newFS() (*sim.Clock, *FS) {
	c := sim.NewClock()
	return c, New(c, hw.Scaled(8<<20), nil)
}

// fillWords returns n words, each set to w.
func fillWords(n int64, w uint64) []uint64 {
	b := make([]uint64, n)
	for i := range b {
		b[i] = w
	}
	return b
}

func TestCreateValidatesSize(t *testing.T) {
	_, fs := newFS()
	if _, err := fs.Create("bad", 0); err == nil {
		t.Fatal("Create with 0 pages succeeded")
	}
	if _, err := fs.Create("bad", -3); err == nil {
		t.Fatal("Create with negative pages succeeded")
	}
	f, err := fs.Create("ok", 10)
	if err != nil || f.Pages() != 10 || f.Name() != "ok" {
		t.Fatalf("Create(ok,10) = %v, %v", f, err)
	}
}

func TestRoundRobinStriping(t *testing.T) {
	_, fs := newFS()
	f, _ := fs.Create("f", 100)
	d := fs.Params().NumDisks
	for p := int64(0); p < 100; p++ {
		if got := f.DiskOf(p); got != int(p)%d {
			t.Fatalf("page %d on disk %d, want %d", p, got, int(p)%d)
		}
	}
}

func TestExtentsAreContiguousPerDisk(t *testing.T) {
	_, fs := newFS()
	f, _ := fs.Create("f", 70)
	d := int64(fs.Params().NumDisks)
	for dd := int64(0); dd < d; dd++ {
		var prev int64 = -1
		for p := dd; p < 70; p += d {
			_, block := f.locate(p)
			if prev >= 0 && block != prev+1 {
				t.Fatalf("disk %d: page %d at block %d, previous page's block %d (not contiguous)", dd, p, block, prev)
			}
			prev = block
		}
	}
}

func TestTwoFilesDoNotOverlap(t *testing.T) {
	_, fs := newFS()
	a, _ := fs.Create("a", 21)
	b, _ := fs.Create("b", 21)
	type loc struct {
		d int
		b int64
	}
	seen := map[loc]string{}
	for p := int64(0); p < 21; p++ {
		for _, f := range []*File{a, b} {
			d, blk := f.locate(p)
			l := loc{d, blk}
			if prev, ok := seen[l]; ok {
				t.Fatalf("disk %d block %d used by both %s and %s", d, blk, prev, f.Name())
			}
			seen[l] = f.Name()
		}
	}
}

func TestReadDeliversStoredData(t *testing.T) {
	c, fs := newFS()
	f, _ := fs.Create("f", 8)
	pw := fs.Params().PageSize / 8
	want := make(map[int64][]uint64)
	for p := int64(0); p < 8; p++ {
		data := fillWords(pw, uint64(p+1))
		f.SetPageWords(p, data)
		want[p] = data
	}
	got := map[int64][]uint64{}
	buf := func(p int64) []uint64 {
		b := make([]uint64, pw)
		got[p] = b
		return b
	}
	doneAt := sim.Time(-1)
	f.Read(0, 8, disk.FaultRead, buf, nil, nil, func() { doneAt = c.Now() })
	c.Drain()
	if doneAt < 0 {
		t.Fatal("Read never completed")
	}
	for p := int64(0); p < 8; p++ {
		if !slices.Equal(got[p], want[p]) {
			t.Fatalf("page %d content mismatch", p)
		}
	}
}

// SetPage takes raw bytes and must lay them out as little-endian words,
// zero-filling the rest of the page — the byte-level view tests and
// experiment seeding rely on.
func TestSetPageBytesAreLittleEndianWords(t *testing.T) {
	_, fs := newFS()
	f, _ := fs.Create("f", 2)
	f.SetPage(1, []byte{0x01, 0x02, 0x03, 0, 0, 0, 0, 0, 0xFF})
	got := f.PeekPage(1)
	if got[0] != 0x030201 {
		t.Fatalf("word 0 = %#x, want 0x030201", got[0])
	}
	if got[1] != 0xFF {
		t.Fatalf("word 1 = %#x, want 0xff (partial trailing bytes)", got[1])
	}
	for i := 2; i < len(got); i++ {
		if got[i] != 0 {
			t.Fatalf("word %d = %#x, want zero fill", i, got[i])
		}
	}
	// Overwriting with fewer bytes must clear what was there before.
	f.SetPage(1, []byte{0x07})
	got = f.PeekPage(1)
	if got[0] != 0x07 || got[1] != 0 {
		t.Fatalf("after overwrite: words %#x %#x, want 0x07 0", got[0], got[1])
	}
}

func TestReadZeroFillsUnwrittenPages(t *testing.T) {
	c, fs := newFS()
	f, _ := fs.Create("f", 2)
	buf := fillWords(fs.Params().PageSize/8, ^uint64(0))
	f.Read(1, 1, disk.FaultRead, func(int64) []uint64 { return buf }, nil, nil, nil)
	c.Drain()
	for _, w := range buf {
		if w != 0 {
			t.Fatal("unwritten page not zero-filled")
		}
	}
}

func TestReadZeroPagesCompletesImmediately(t *testing.T) {
	_, fs := newFS()
	f, _ := fs.Create("f", 4)
	done := false
	f.Read(2, 0, disk.FaultRead, nil, nil, nil, func() { done = true })
	if !done {
		t.Fatal("zero-length read did not complete synchronously")
	}
}

func TestBlockReadCoalescesPerDisk(t *testing.T) {
	c, fs := newFS()
	f, _ := fs.Create("f", 64)
	nd := fs.Params().NumDisks
	buf := make([]uint64, fs.Params().PageSize/8)
	// Read 2×NumDisks contiguous pages: each disk should see exactly one
	// request of two pages.
	f.Read(0, int64(2*nd), disk.PrefetchRead, func(int64) []uint64 { return buf }, nil, nil, nil)
	c.Drain()
	for i, d := range fs.Backends() {
		s := d.Stats()
		if s.Requests[disk.PrefetchRead] != 1 {
			t.Fatalf("disk %d saw %d requests, want 1 (coalescing)", i, s.Requests[disk.PrefetchRead])
		}
		if s.Pages[disk.PrefetchRead] != 2 {
			t.Fatalf("disk %d moved %d pages, want 2", i, s.Pages[disk.PrefetchRead])
		}
	}
}

func TestStripingParallelism(t *testing.T) {
	// Reading NumDisks pages striped across all disks should take about
	// as long as reading one page, not NumDisks times as long.
	p := hw.Scaled(8 << 20)
	oneDisk := p
	oneDisk.NumDisks = 1

	elapsed := func(pp hw.Params, n int64) sim.Time {
		c := sim.NewClock()
		fs := New(c, pp, nil)
		f, _ := fs.Create("f", 64)
		buf := make([]uint64, pp.PageSize/8)
		// n independent one-page reads, as a stream of prefetches would be.
		for i := int64(0); i < n; i++ {
			f.Read(i, 1, disk.FaultRead, func(int64) []uint64 { return buf }, nil, nil, nil)
		}
		c.Drain()
		return c.Now()
	}
	striped := elapsed(p, int64(p.NumDisks))
	serial := elapsed(oneDisk, int64(p.NumDisks))
	if striped*2 >= serial {
		t.Fatalf("striped read %v not substantially faster than single-disk %v", striped, serial)
	}
}

func TestWritePersists(t *testing.T) {
	c, fs := newFS()
	f, _ := fs.Create("f", 4)
	src := fillWords(fs.Params().PageSize/8, 0xAB)
	done := false
	f.Write(3, src, func(int64) { done = true })
	// Source can be reused immediately: the write captured a copy.
	for i := range src {
		src[i] = 0
	}
	c.Drain()
	if !done {
		t.Fatal("write never completed")
	}
	got := f.PeekPage(3)
	if got == nil || got[0] != 0xAB {
		t.Fatal("write did not persist captured data")
	}
	if fs.Backends()[f.DiskOf(3)].Stats().Requests[disk.Write] != 1 {
		t.Fatal("write request not accounted on the right disk")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	_, fs := newFS()
	f, _ := fs.Create("f", 4)
	for _, fn := range []func(){
		func() { f.SetPage(4, nil) },
		func() { f.SetPage(-1, nil) },
		func() { f.Read(3, 2, disk.FaultRead, nil, nil, nil, nil) },
		func() { f.Write(99, make([]uint64, fs.Params().PageSize/8), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
}

// Property: a write followed by a read of the same page returns exactly
// the written words, for arbitrary page indices and contents.
func TestWriteReadRoundTripProperty(t *testing.T) {
	p := hw.Scaled(8 << 20)
	f := func(pageSel uint8, fill uint64) bool {
		c := sim.NewClock()
		fs := New(c, p, nil)
		file, _ := fs.Create("f", 32)
		page := int64(pageSel % 32)
		src := fillWords(p.PageSize/8, fill)
		file.Write(page, src, nil)
		c.Drain()
		got := make([]uint64, p.PageSize/8)
		file.Read(page, 1, disk.FaultRead, func(int64) []uint64 { return got }, nil, nil, nil)
		c.Drain()
		return slices.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
