package stripefs

import (
	"slices"
	"testing"

	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sim"
)

// faultyFS returns a file system with an injector attached and the
// registry its degradation counters land in.
func faultyFS(t *testing.T, prof fault.Profile) (*sim.Clock, *FS, *obs.Registry) {
	t.Helper()
	c := sim.NewClock()
	reg := obs.NewRegistry()
	fs := NewObserved(c, hw.Scaled(8<<20), nil, &obs.RunObs{Reg: reg})
	fs.SetFaults(fault.NewInjector(prof, reg, nil))
	return c, fs, reg
}

// harsh is a profile whose 2-attempt budget at a high error rate makes
// permanent sub-request failures frequent.
func harsh(seed uint64) fault.Profile {
	return fault.Profile{
		Name:           "harsh",
		Seed:           seed,
		ReadErrorRate:  0.6,
		WriteErrorRate: 0.6,
		Retry:          fault.RetryPolicy{MaxAttempts: 2, Timeout: 3600 * sim.Second},
	}
}

// done fires exactly once per Read even when pages error, are retried,
// and some sub-requests fail permanently — the documented contract.
// (The complete() path panics on a second firing, so this test also
// guards the exactly-once property structurally.)
func TestReadDoneFiresExactlyOnceUnderFaults(t *testing.T) {
	for _, kind := range []disk.Kind{disk.FaultRead, disk.PrefetchRead} {
		c, fs, _ := faultyFS(t, harsh(11))
		f, _ := fs.Create("f", 64)
		buf := make([]uint64, fs.Params().PageSize/8)
		for r := 0; r < 8; r++ {
			doneCount := 0
			var resolved int64
			var n int64 = 8
			f.Read(int64(r*8), n, kind,
				func(int64) []uint64 { return buf },
				func(int64) { resolved++ },
				func(int64) { resolved++ },
				func() { doneCount++ })
			c.Drain()
			if doneCount != 1 {
				t.Fatalf("kind %v read %d: done fired %d times", kind, r, doneCount)
			}
			if resolved != n {
				t.Fatalf("kind %v read %d: %d of %d pages resolved", kind, r, resolved, n)
			}
		}
	}
}

// Demand reads must deliver data no matter how often the disks give up:
// permanently failed sub-requests are requeued until they succeed.
func TestDemandReadsRequeueUntilDataArrives(t *testing.T) {
	c, fs, reg := faultyFS(t, harsh(23))
	f, _ := fs.Create("f", 64)
	pw := fs.Params().PageSize / 8
	want := map[int64][]uint64{}
	for p := int64(0); p < 64; p++ {
		data := fillWords(pw, uint64(p+1))
		f.SetPageWords(p, data)
		want[p] = data
	}
	got := map[int64][]uint64{}
	buf := func(p int64) []uint64 {
		b := make([]uint64, pw)
		got[p] = b
		return b
	}
	done := 0
	for p := int64(0); p < 64; p += 8 {
		f.Read(p, 8, disk.FaultRead, buf, nil, nil, func() { done++ })
	}
	c.Drain()
	if done != 8 {
		t.Fatalf("%d of 8 reads completed", done)
	}
	for p := int64(0); p < 64; p++ {
		if !slices.Equal(got[p], want[p]) {
			t.Fatalf("page %d content mismatch after faulted read", p)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["stripefs.requeued_reads"] == 0 {
		t.Fatal("harsh profile produced no requeued demand reads")
	}
	if snap.Counters["stripefs.abandoned_prefetch_pages"] != 0 {
		t.Fatal("demand reads were abandoned")
	}
}

// Prefetch reads are abandoned on permanent failure: failed(p) runs for
// each lost page, arrived does not, and no data is copied.
func TestPrefetchReadsAbandonOnPermanentFailure(t *testing.T) {
	c, fs, reg := faultyFS(t, harsh(37))
	f, _ := fs.Create("f", 64)
	arrived := map[int64]bool{}
	abandoned := map[int64]bool{}
	buf := make([]uint64, fs.Params().PageSize/8)
	for p := int64(0); p < 64; p += 8 {
		f.Read(p, 8, disk.PrefetchRead,
			func(int64) []uint64 { return buf },
			func(p int64) { arrived[p] = true },
			func(p int64) { abandoned[p] = true },
			nil)
	}
	c.Drain()
	if len(abandoned) == 0 {
		t.Fatal("harsh profile abandoned no prefetch pages")
	}
	for p := range abandoned {
		if arrived[p] {
			t.Fatalf("page %d both arrived and was abandoned", p)
		}
	}
	if int64(len(arrived)+len(abandoned)) != 64 {
		t.Fatalf("%d arrived + %d abandoned != 64 pages", len(arrived), len(abandoned))
	}
	snap := reg.Snapshot()
	if snap.Counters["stripefs.abandoned_prefetch_pages"] != int64(len(abandoned)) {
		t.Fatalf("counter %d != abandoned %d",
			snap.Counters["stripefs.abandoned_prefetch_pages"], len(abandoned))
	}
	if snap.Counters["stripefs.requeued_reads"] != 0 {
		t.Fatal("prefetch reads were requeued")
	}
}

// Write-backs requeue until the data is durably on the platter, and the
// backing store only ever changes on success.
func TestWritesRequeueUntilDurable(t *testing.T) {
	c, fs, reg := faultyFS(t, harsh(53))
	f, _ := fs.Create("f", 32)
	pw := fs.Params().PageSize / 8
	done := 0
	for p := int64(0); p < 32; p++ {
		f.Write(p, fillWords(pw, uint64(p+1)), func(int64) { done++ })
	}
	c.Drain()
	if done != 32 {
		t.Fatalf("%d of 32 writes completed", done)
	}
	for p := int64(0); p < 32; p++ {
		if got := f.PeekPage(p); got == nil || got[0] != uint64(p+1) {
			t.Fatalf("page %d not durably written", p)
		}
	}
	if reg.Snapshot().Counters["stripefs.requeued_writes"] == 0 {
		t.Fatal("harsh profile produced no requeued writes")
	}
}

// Whole-run determinism: identical (profile, seed) gives identical
// elapsed time and identical per-disk statistics.
func TestFaultedFSDeterministic(t *testing.T) {
	run := func() (sim.Time, []disk.Stats) {
		c, fs, _ := faultyFS(t, harsh(71))
		f, _ := fs.Create("f", 64)
		buf := make([]uint64, fs.Params().PageSize/8)
		for p := int64(0); p < 64; p += 4 {
			f.Read(p, 4, disk.FaultRead, func(int64) []uint64 { return buf }, nil, nil, nil)
			f.Write(p, buf, nil)
		}
		c.Drain()
		var out []disk.Stats
		for _, d := range fs.Backends() {
			out = append(out, d.Stats())
		}
		return c.Now(), out
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 {
		t.Fatalf("elapsed diverged: %v vs %v", t1, t2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("disk %d stats diverged: %+v vs %+v", i, s1[i], s2[i])
		}
	}
}
