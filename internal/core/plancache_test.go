package core

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/nas"
)

// planCacheCfg builds the standard prefetching configuration for one
// NAS proxy on one storage tier.
func planCacheCfg(t *testing.T, app *nas.App, tier hw.Tier, scale float64) Config {
	t.Helper()
	prog := app.Build(scale)
	ps := hw.DefaultTier(tier).PageSize
	if err := prog.Resolve(ps); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(MachineForTier(tier, nas.DataBytes(prog, ps), app.Ratio()))
	cfg.Seed = app.Seed
	return cfg
}

// TestPlanCacheHitTickIdentical is the property the compile-once cache
// stands on: a run that reuses a cached plan is indistinguishable —
// same scalars, same simulated time breakdown, same memory-manager
// event counts — from a cold compile of the same configuration. The
// matrix crosses the NAS proxies with the three storage tiers and
// rotates a fault profile through the cells; every cell is
// vacuity-guarded through Result.PlanCacheHit.
func TestPlanCacheHitTickIdentical(t *testing.T) {
	tiers := []hw.Tier{hw.TierDisk, hw.TierNVMe, hw.TierFarMemory}
	faultNames := []string{"", "flaky", "pressure"}
	for ai, app := range nas.Apps() {
		for ti, tier := range tiers {
			app, tier := app, tier
			// Rotate the fault profile so every profile meets every tier
			// across the matrix without tripling the run count.
			var prof *fault.Profile
			if name := faultNames[(ai+ti)%len(faultNames)]; name != "" {
				p, ok := fault.ProfileByName(name)
				if !ok {
					t.Fatalf("unknown fault profile %q", name)
				}
				prof = &p
			}
			t.Run(app.Name+"/"+tier.String(), func(t *testing.T) {
				cfg := planCacheCfg(t, app, tier, 0.05)
				cfg.Faults = prof

				ResetPlanCache()
				coldCfg := cfg
				coldCfg.NoPlanCache = true
				cold, err := Run(app.Build(0.05), coldCfg)
				if err != nil {
					t.Fatal(err)
				}
				if cold.PlanCacheHit {
					t.Fatal("NoPlanCache run reports a cache hit")
				}
				miss, err := Run(app.Build(0.05), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if miss.PlanCacheHit {
					t.Fatal("first cached run reports a hit — vacuous")
				}
				hit, err := Run(app.Build(0.05), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !hit.PlanCacheHit {
					t.Fatal("second cached run missed — vacuous")
				}

				// Rebuilding the app at the same scale must fingerprint
				// identically, or the cache could never have hit.
				fa, fb := app.Build(0.05), app.Build(0.05)
				if fa.Fingerprint() != fb.Fingerprint() {
					t.Fatal("same-scale rebuilds fingerprint differently")
				}

				for _, pair := range []struct {
					name string
					a, b *Result
				}{
					{"hit vs miss", hit, miss},
					{"hit vs cold", hit, cold},
				} {
					a, b := pair.a, pair.b
					if a.Elapsed != b.Elapsed {
						t.Errorf("%s: elapsed %d vs %d", pair.name, a.Elapsed, b.Elapsed)
					}
					if a.Times != b.Times {
						t.Errorf("%s: time breakdown diverged:\n%+v\n%+v", pair.name, a.Times, b.Times)
					}
					if a.Mem != b.Mem {
						t.Errorf("%s: vm stats diverged:\n%+v\n%+v", pair.name, a.Mem, b.Mem)
					}
					if a.Faults != b.Faults {
						t.Errorf("%s: fault counts diverged:\n%+v\n%+v", pair.name, a.Faults, b.Faults)
					}
					for i, x := range a.Env.Ints {
						if b.Env.Ints[i] != x {
							t.Errorf("%s: int slot %d: %d vs %d", pair.name, i, x, b.Env.Ints[i])
						}
					}
					for i, f := range a.Env.Floats {
						if b.Env.Floats[i] != f {
							t.Errorf("%s: float slot %d: %v vs %v", pair.name, i, f, b.Env.Floats[i])
						}
					}
				}
			})
		}
	}
}

// TestPlanCacheInvalidation: everything that can influence compilation
// must key a separate entry — a changed scale, tier, fast-path switch,
// compiler option, or profile guide misses instead of reusing a stale
// plan — while a same-key rerun hits.
func TestPlanCacheInvalidation(t *testing.T) {
	app := nas.Apps()[0]
	ResetPlanCache()

	base := planCacheCfg(t, app, hw.TierDisk, 0.05)
	run := func(cfg Config, scale float64) *Result {
		t.Helper()
		res, err := Run(app.Build(scale), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	if res := run(base, 0.05); res.PlanCacheHit {
		t.Fatal("empty cache hit")
	}
	if res := run(base, 0.05); !res.PlanCacheHit {
		t.Fatal("identical rerun missed")
	}

	// A different problem size changes the program fingerprint.
	scaled := planCacheCfg(t, app, hw.TierDisk, 0.06)
	if res := run(scaled, 0.06); res.PlanCacheHit {
		t.Error("changed scale hit a stale plan")
	}
	// A different storage tier changes the machine key.
	if res := run(planCacheCfg(t, app, hw.TierNVMe, 0.05), 0.05); res.PlanCacheHit {
		t.Error("changed tier hit a stale plan")
	}
	// The executor switch compiles different code.
	noFast := base
	noFast.NoFastPath = true
	if res := run(noFast, 0.05); res.PlanCacheHit {
		t.Error("NoFastPath toggle hit a stale plan")
	}
	// A plan-affecting compiler option.
	opts := compiler.DefaultOptions()
	opts.PagesPerFetch = 8
	tuned := base
	tuned.Options = &opts
	if res := run(tuned, 0.05); res.PlanCacheHit {
		t.Error("changed compiler options hit a stale plan")
	}

	// Profile-guided compiles key on the guide's content fingerprint,
	// and recording runs bypass the cache outright.
	hits, misses, entries := PlanCacheStats()
	recCfg := base
	recCfg.Prefetch = false
	recCfg.Profile = &ProfileSpec{Record: true}
	rec := run(recCfg, 0.05)
	if rec.PlanCacheHit {
		t.Error("recording run reports a cache hit")
	}
	if rec.Profile == nil {
		t.Fatal("recording run produced no profile")
	}
	if h2, m2, e2 := PlanCacheStats(); h2 != hits || m2 != misses || e2 != entries {
		t.Errorf("recording run touched the cache: %d/%d/%d -> %d/%d/%d",
			hits, misses, entries, h2, m2, e2)
	}
	guided := base
	guided.Profile = &ProfileSpec{Use: rec.Profile}
	if res := run(guided, 0.05); res.PlanCacheHit {
		t.Error("profile-guided compile hit the unguided plan")
	}
	if res := run(guided, 0.05); !res.PlanCacheHit {
		t.Error("identical profile-guided rerun missed")
	}

	// The counters and entry count reflect exactly the story above.
	hits, misses, entries = PlanCacheStats()
	if hits != 2 || misses != 6 || entries != 6 {
		t.Errorf("PlanCacheStats = %d hits, %d misses, %d entries; want 2/6/6", hits, misses, entries)
	}
	ResetPlanCache()
	if h, m, e := PlanCacheStats(); h != 0 || m != 0 || e != 0 {
		t.Errorf("ResetPlanCache left %d/%d/%d", h, m, e)
	}
}
