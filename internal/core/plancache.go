package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/compiler"
	"repro/internal/exec"
	"repro/internal/hw"
	"repro/internal/ir"
)

// The plan cache makes Run's front half — parse-independent compilation:
// locality analysis, prefetch planning, program transformation, and
// bytecode assembly — a once-per-configuration cost instead of a
// per-run cost. Everything behind it (VM, file system, scheduler,
// metrics) is still built fresh per run; only the immutable compiled
// artifact is shared. Two runs hit the same entry exactly when nothing
// that can influence compilation differs:
//
//   - the machine (hw.Params is a flat comparable struct; page size,
//     memory size, and tier all shape the plan),
//   - the program's structural fingerprint (ir.Program.Fingerprint —
//     covers parameter values and their compile-time visibility),
//   - whether the prefetching compiler runs at all (Config.Prefetch),
//   - every plan-affecting compiler option, with a profile guide
//     reduced to its content fingerprint,
//   - the executor's NoFastPath switch.
//
// Invalidation is purely by key: programs and machines are never
// mutated in place by the cache (each entry compiles a private
// ir.Program.Clone), so a changed scale, tier, or profile simply misses
// to a new entry. Profile-recording runs bypass the cache entirely —
// their instrumented closures capture the recorder and are one-shot.
type planKey struct {
	machine  hw.Params
	progFP   uint64
	prefetch bool
	noFast   bool

	// compiler.Options, flattened; zero when prefetch is false.
	pagesPerFetch    int64
	releases         bool
	twoVersionLoops  bool
	defaultEstTrip   int64
	maxDistancePages int64
	profileFP        uint64
}

// planEntry is one cached compilation. The once gate means concurrent
// first users of a key compile exactly once and everyone waits for the
// result; a failed compile is cached too (the same inputs would fail
// the same way).
type planEntry struct {
	once sync.Once
	err  error

	execProg   *ir.Program
	plan       []compiler.PlanEntry
	mismatches int64
	art        *exec.Artifact
}

var (
	planMu    sync.Mutex
	planTable = map[planKey]*planEntry{}

	planHits   atomic.Uint64
	planMisses atomic.Uint64
)

// PlanCacheStats reports cumulative plan-cache hits and misses and the
// current number of cached entries, for tests and tooling.
func PlanCacheStats() (hits, misses uint64, entries int) {
	planMu.Lock()
	entries = len(planTable)
	planMu.Unlock()
	return planHits.Load(), planMisses.Load(), entries
}

// ResetPlanCache drops every cached plan and zeroes the counters. Tests
// use it to get deterministic hit/miss accounting.
func ResetPlanCache() {
	planMu.Lock()
	planTable = map[planKey]*planEntry{}
	planMu.Unlock()
	planHits.Store(0)
	planMisses.Store(0)
}

func newPlanKey(prog *ir.Program, machine hw.Params, prefetch, noFast bool, copts compiler.Options) planKey {
	k := planKey{
		machine:  machine,
		progFP:   prog.Fingerprint(),
		prefetch: prefetch,
		noFast:   noFast,
	}
	if prefetch {
		k.pagesPerFetch = copts.PagesPerFetch
		k.releases = copts.Releases
		k.twoVersionLoops = copts.TwoVersionLoops
		k.defaultEstTrip = copts.DefaultEstTrip
		k.maxDistancePages = copts.MaxDistancePages
		if copts.Profile != nil {
			k.profileFP = copts.Profile.Fingerprint()
		}
	}
	return k
}

// cachedPlan returns the compiled plan for (prog, machine, options),
// compiling at most once per key. hit reports whether a previously
// compiled entry was reused. The compile runs on a private clone of
// prog, so the caller's program remains free to be re-parameterized.
func cachedPlan(prog *ir.Program, machine hw.Params, prefetch, noFast bool, copts compiler.Options) (*planEntry, bool) {
	key := newPlanKey(prog, machine, prefetch, noFast, copts)
	planMu.Lock()
	ent, found := planTable[key]
	if !found {
		ent = &planEntry{}
		planTable[key] = ent
	}
	planMu.Unlock()
	hit := true
	ent.once.Do(func() {
		hit = false
		compilePlan(ent, prog, machine, prefetch, noFast, copts)
	})
	if hit {
		planHits.Add(1)
	} else {
		planMisses.Add(1)
	}
	return ent, hit
}

func compilePlan(ent *planEntry, prog *ir.Program, machine hw.Params, prefetch, noFast bool, copts compiler.Options) {
	ent.execProg = prog.Clone()
	if prefetch {
		res, err := compiler.Compile(ent.execProg, machine, copts)
		if err != nil {
			ent.err = err
			return
		}
		ent.execProg = res.Prog
		ent.plan = res.Plan
		ent.mismatches = res.ProfileMismatches
	}
	art, err := exec.Compile(ent.execProg, machine.PageSize, exec.Options{NoFastPath: noFast})
	if err != nil {
		ent.err = err
		return
	}
	ent.art = art
}
