package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/compiler"
	"repro/internal/hw"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/sim"
	"repro/internal/stripefs"
)

const streamSrc = `
program stream
param n = 1 << 17
array double a[n]
scalar double s
for i = 0 .. n {
    s = s + a[i]
}
`

func seedOnes(prog *ir.Program, file *stripefs.File, pageSize int64) {
	a := prog.ArrayByName("a")
	// Seed page by page with 1.0 bit patterns.
	buf := make([]byte, pageSize)
	one := uint64(0x3FF0000000000000)
	for off := int64(0); off < pageSize; off += 8 {
		for b := 0; b < 8; b++ {
			buf[off+int64(b)] = byte(one >> (8 * uint(b)))
		}
	}
	pages := (a.Elems*8 + pageSize - 1) / pageSize
	for p := int64(0); p < pages; p++ {
		file.SetPage(a.Base/pageSize+p, buf)
	}
}

func mustProg(t *testing.T) *ir.Program {
	t.Helper()
	p, err := lang.Parse(streamSrc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMachineFor(t *testing.T) {
	m := MachineFor(16<<20, 2)
	if m.MemoryBytes != 8<<20 {
		t.Fatalf("memory = %d, want 8 MB", m.MemoryBytes)
	}
	// Tiny data still gets a floor.
	m = MachineFor(1024, 2)
	if m.MemoryBytes < 16*m.PageSize {
		t.Fatalf("memory floor violated: %d", m.MemoryBytes)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunOriginalVsPrefetch(t *testing.T) {
	data := int64(1<<17) * 8
	cfg := DefaultConfig(MachineFor(data, 2))
	cfg.Seed = seedOnes

	oCfg := cfg
	oCfg.Prefetch = false
	o, err := Run(mustProg(t), oCfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Run(mustProg(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.Env.Floats[0] != p.Env.Floats[0] || o.Env.Floats[0] != float64(1<<17) {
		t.Fatalf("results: O=%v P=%v", o.Env.Floats[0], p.Env.Floats[0])
	}
	if p.Speedup(o) <= 1.2 {
		t.Fatalf("speedup %.2f too small for a pure stream", p.Speedup(o))
	}
	if len(p.Plan) == 0 {
		t.Fatal("prefetch run has no plan")
	}
	if len(o.Plan) != 0 {
		t.Fatal("original run has a plan")
	}
	if len(p.DiskStats) != cfg.Machine.NumDisks {
		t.Fatalf("disk stats for %d disks, want %d", len(p.DiskStats), cfg.Machine.NumDisks)
	}
}

func TestRunWarmStart(t *testing.T) {
	data := int64(1<<17) * 8
	cfg := DefaultConfig(MachineFor(data, 0.25)) // in-core
	cfg.Seed = seedOnes
	cfg.WarmStart = true
	r, err := Run(mustProg(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mem.MajorFaults != 0 {
		t.Fatalf("warm in-core run took %d major faults", r.Mem.MajorFaults)
	}
	if r.Env.Floats[0] != float64(1<<17) {
		t.Fatalf("warm result wrong: %v", r.Env.Floats[0])
	}
}

func TestRunNoRuntimeFilter(t *testing.T) {
	data := int64(1<<17) * 8
	cfg := DefaultConfig(MachineFor(data, 2))
	cfg.Seed = seedOnes
	cfg.RuntimeFilter = false
	r, err := Run(mustProg(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.RT.FilteredPages != 0 {
		t.Fatal("disabled layer filtered pages")
	}
	if r.Env.Floats[0] != float64(1<<17) {
		t.Fatal("result wrong without filter")
	}
}

func TestRunElevator(t *testing.T) {
	data := int64(1<<17) * 8
	cfg := DefaultConfig(MachineFor(data, 2))
	cfg.Seed = seedOnes
	cfg.Elevator = true
	r, err := Run(mustProg(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Env.Floats[0] != float64(1<<17) {
		t.Fatal("result wrong under elevator scheduling")
	}
}

func TestRunCustomCompilerOptions(t *testing.T) {
	data := int64(1<<17) * 8
	cfg := DefaultConfig(MachineFor(data, 2))
	cfg.Seed = seedOnes
	opts := compiler.DefaultOptions()
	opts.Releases = false
	cfg.Options = &opts
	r, err := Run(mustProg(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mem.ReleasedPages != 0 {
		t.Fatal("releases issued despite Releases=false")
	}
}

func TestRunRejectsBadMachine(t *testing.T) {
	bad := hw.Default()
	bad.PageSize = 3000
	cfg := DefaultConfig(bad)
	if _, err := Run(mustProg(t), cfg); err == nil {
		t.Fatal("Run accepted invalid machine")
	}
}

func TestSpeedupZeroSafe(t *testing.T) {
	r := &Result{}
	if r.Speedup(&Result{Elapsed: 100}) != 0 {
		t.Fatal("zero-elapsed speedup should be 0")
	}
}

func TestTimelineSampling(t *testing.T) {
	data := int64(1<<17) * 8
	cfg := DefaultConfig(MachineFor(data, 2))
	cfg.Seed = seedOnes
	cfg.SamplePeriod = 50 * sim.Millisecond
	r, err := Run(mustProg(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Timeline) < 5 {
		t.Fatalf("timeline has %d samples, want several", len(r.Timeline))
	}
	for i := 1; i < len(r.Timeline); i++ {
		if r.Timeline[i].At < r.Timeline[i-1].At {
			t.Fatal("timeline not monotonic")
		}
		if r.Timeline[i].Faults < r.Timeline[i-1].Faults {
			t.Fatal("cumulative faults decreased")
		}
	}
	out := RenderTimeline(r.Timeline, cfg.Machine.Frames(), 40)
	if !strings.Contains(out, "free memory over time") || !strings.Contains(out, "faults per interval") {
		t.Fatalf("timeline render malformed:\n%s", out)
	}
	if RenderTimeline(nil, 10, 40) != "(no samples)\n" {
		t.Fatal("empty timeline render")
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	data := int64(1<<17) * 8
	cfg := DefaultConfig(MachineFor(data, 2))
	cfg.Seed = seedOnes
	if _, err := RunContext(ctx, mustProg(t), cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A deadline expiring mid-run must abort the event loop cleanly and
// return the context's error instead of wedging or finishing the run.
func TestRunContextDeadlineAbortsEventLoop(t *testing.T) {
	data := int64(1<<19) * 8
	cfg := DefaultConfig(MachineFor(data, 2))
	cfg.Seed = seedOnes
	prog, err := lang.Parse(`
program stream
param n = 1 << 19
array double a[n]
scalar double s
for r = 0 .. 8 {
    for i = 0 .. n {
        s = s + a[i]
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := RunContext(ctx, prog, cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res != nil {
		t.Fatal("aborted run returned a result")
	}
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("abort took %v — interrupt not reaching the event loop", wall)
	}
	// The same run must complete and validate without the deadline.
	if _, err := RunContext(context.Background(), mustProg(t), DefaultConfigSeeded(t)); err != nil {
		t.Fatal(err)
	}
}

// DefaultConfigSeeded builds the standard test configuration for the
// small stream program.
func DefaultConfigSeeded(t *testing.T) Config {
	t.Helper()
	cfg := DefaultConfig(MachineFor(int64(1<<17)*8, 2))
	cfg.Seed = seedOnes
	return cfg
}
