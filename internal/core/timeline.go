package core

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/vm"
)

// Sample is one point of a run's timeline.
type Sample struct {
	At         sim.Time
	FreeFrames int64
	Faults     int64 // cumulative major faults
	Prefetches int64 // cumulative prefetch pages issued
}

// sampler periodically records memory-manager state on the simulated
// clock. Sampling happens in simulated time, so it costs the application
// nothing and is fully deterministic.
type sampler struct {
	v       *vm.VM
	period  sim.Time
	samples []Sample
	stopped bool
}

func startSampler(v *vm.VM, period sim.Time) *sampler {
	s := &sampler{v: v, period: period}
	s.arm()
	return s
}

func (s *sampler) arm() {
	s.v.Clock().Schedule(s.period, func() {
		// The cap keeps a wedged run from sampling forever (the clock's
		// deadlock detection relies on the event queue draining).
		if s.stopped || len(s.samples) > 100000 {
			return
		}
		s.record()
		s.arm()
	})
}

func (s *sampler) record() {
	st := s.v.Stats()
	s.samples = append(s.samples, Sample{
		At:         s.v.Clock().Now(),
		FreeFrames: s.v.FreeFrames(),
		Faults:     st.MajorFaults,
		Prefetches: st.PrefetchIssued,
	})
}

func (s *sampler) stop() []Sample {
	s.stopped = true
	s.record()
	return s.samples
}

// RenderTimeline draws an ASCII chart of free memory over the run, with
// fault activity per interval underneath — a quick visual of how the
// pageout daemon, releases, and prefetch streams interact.
func RenderTimeline(samples []Sample, totalFrames int64, width int) string {
	if len(samples) == 0 || totalFrames <= 0 {
		return "(no samples)\n"
	}
	if width <= 0 {
		width = 60
	}
	// Downsample to width columns.
	cols := make([]Sample, 0, width)
	for i := 0; i < width; i++ {
		idx := i * len(samples) / width
		cols = append(cols, samples[idx])
	}
	const rows = 8
	var b strings.Builder
	b.WriteString("free memory over time (each column = ")
	b.WriteString((samples[len(samples)-1].At / sim.Time(width)).String())
	b.WriteString("):\n")
	for r := rows; r >= 1; r-- {
		thresh := float64(r) / float64(rows)
		if r == rows {
			fmt.Fprintf(&b, "%4d |", totalFrames)
		} else if r == 1 {
			b.WriteString("   0 |")
		} else {
			b.WriteString("     |")
		}
		for _, s := range cols {
			frac := float64(s.FreeFrames) / float64(totalFrames)
			if frac >= thresh-0.5/float64(rows) {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	b.WriteString("     +")
	b.WriteString(strings.Repeat("-", len(cols)))
	b.WriteString("\nfaults per interval:\n      ")
	var maxD int64 = 1
	prev := int64(0)
	deltas := make([]int64, len(cols))
	for i, s := range cols {
		deltas[i] = s.Faults - prev
		prev = s.Faults
		if deltas[i] > maxD {
			maxD = deltas[i]
		}
	}
	marks := []byte(" .:-=+*#")
	for _, d := range deltas {
		lvl := int(int64(len(marks)-1) * d / maxD)
		b.WriteByte(marks[lvl])
	}
	b.WriteByte('\n')
	return b.String()
}
