package core

import (
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

func TestParseBackendSpec(t *testing.T) {
	cases := []struct {
		spec string
		want BackendSpec
	}{
		{"", BackendSpec{}},
		{"disk", BackendSpec{Tier: hw.TierDisk}},
		{"nvme", BackendSpec{Tier: hw.TierNVMe}},
		{"flash", BackendSpec{Tier: hw.TierNVMe}},
		{"farmem", BackendSpec{Tier: hw.TierFarMemory}},
		{"tier=far-memory", BackendSpec{Tier: hw.TierFarMemory}},
		{"disk,disks=4,sched=elevator", BackendSpec{Tier: hw.TierDisk, Disks: 4, Sched: "elevator"}},
		{"nvme, latency=90us, parallelism=16", BackendSpec{Tier: hw.TierNVMe, Latency: 90 * sim.Microsecond, Parallelism: 16}},
		{"tier=farmem,rtt=40us,batch=32,transfer=1500ns", BackendSpec{
			Tier: hw.TierFarMemory, RTT: 40 * sim.Microsecond, Batch: 32, Transfer: 1500 * sim.Nanosecond}},
	}
	for _, c := range cases {
		got, err := ParseBackendSpec(c.spec)
		if err != nil {
			t.Errorf("ParseBackendSpec(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBackendSpec(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
}

func TestParseBackendSpecErrors(t *testing.T) {
	bad := []string{
		"tape",
		"tier=tape",
		"disks=0",
		"disks=-3",
		"sched=lifo",
		"nvme,sched=elevator", // no arm to schedule off the disk tier
		"latency=fast",
		"latency=-4us",
		"rtt=0s",
		"parallelism=0",
		"batch=none",
		"color=red",
	}
	for _, spec := range bad {
		if _, err := ParseBackendSpec(spec); err == nil {
			t.Errorf("ParseBackendSpec(%q) accepted an invalid spec", spec)
		}
	}
	if _, err := ParseBackendSpec("tier=tape"); err == nil || !strings.Contains(err.Error(), "disk, farmem, nvme") {
		t.Errorf("unknown-tier error does not list the tiers: %v", err)
	}
}

func TestBackendSpecApply(t *testing.T) {
	base := hw.Scaled(8 << 20)

	// Nil spec: untouched.
	var nilSpec *BackendSpec
	if p, err := nilSpec.Apply(base); err != nil || p != base {
		t.Fatalf("nil spec changed the machine: %v, %v", p, err)
	}

	// NVMe spec keeps the memory system, swaps the storage subsystem,
	// and layers overrides over the tier defaults.
	spec := BackendSpec{Tier: hw.TierNVMe, Latency: 50 * sim.Microsecond, Disks: 2}
	p, err := spec.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if p.MemoryBytes != base.MemoryBytes || p.PageSize != base.PageSize || p.OpTime != base.OpTime {
		t.Fatal("Apply touched the memory system or CPU model")
	}
	if p.Tier != hw.TierNVMe || p.NVMeLatency != 50*sim.Microsecond || p.NumDisks != 2 {
		t.Fatalf("overrides not applied: %+v", p)
	}
	if p.NVMeParallelism != hw.DefaultTier(hw.TierNVMe).NVMeParallelism {
		t.Fatal("unset fields did not fall back to tier defaults")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("applied machine invalid: %v", err)
	}
}

func TestMachineForTier(t *testing.T) {
	for _, tier := range []hw.Tier{hw.TierDisk, hw.TierNVMe, hw.TierFarMemory} {
		p := MachineForTier(tier, 64<<20, 2)
		if err := p.Validate(); err != nil {
			t.Fatalf("MachineForTier(%v) invalid: %v", tier, err)
		}
		if p.Tier != tier {
			t.Fatalf("MachineForTier(%v).Tier = %v", tier, p.Tier)
		}
		if p.MemoryBytes != 32<<20 {
			t.Fatalf("MachineForTier(%v) memory = %d, want data/2", tier, p.MemoryBytes)
		}
	}
}

func TestTierFor(t *testing.T) {
	if tier, err := TierFor("nvme"); err != nil || tier != hw.TierNVMe {
		t.Fatalf("TierFor(nvme) = %v, %v", tier, err)
	}
	if _, err := TierFor("tape"); err == nil {
		t.Fatal("TierFor accepted an unknown tier")
	}
}
