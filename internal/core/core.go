// Package core assembles the complete system of the paper: the
// prefetching compiler, the striped multi-disk file system, the paged
// virtual memory with non-binding prefetch/release hints, the user-level
// run-time filtering layer, and the executor. One call runs a program in
// any of the paper's configurations — original paged VM (the "O" bars),
// compiler-inserted prefetching (the "P" bars), prefetching without the
// run-time layer (Figure 4(c)), warm- or cold-started (Figure 6) — and
// returns every statistic the evaluation section reports.
package core

import (
	"context"
	"fmt"

	"repro/internal/compiler"
	"repro/internal/disk"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

// Config selects a run configuration.
type Config struct {
	// Machine is the simulated platform. Use hw.Default() or size memory
	// with MachineFor.
	Machine hw.Params

	// Prefetch compiles the program with the prefetching pass (the "P"
	// configuration); false runs the original program on plain paged
	// virtual memory (the "O" configuration).
	Prefetch bool

	// Options are the compiler options; nil means
	// compiler.DefaultOptions().
	Options *compiler.Options

	// RuntimeFilter enables the user-level run-time layer. Disabling it
	// with Prefetch on reproduces Figure 4(c). It is forced on for
	// non-prefetching runs (it is never consulted).
	RuntimeFilter bool

	// WarmStart preloads the data set into memory (up to the pageout
	// daemon's high watermark) before the timed region, as in the
	// warm-started bars of Figure 6.
	WarmStart bool

	// NoFastPath disables the executor's page-run loop specialization,
	// forcing every array access through the per-element VM path. The two
	// paths produce identical results, simulated times, and statistics —
	// the fast path only removes host-side interpretation overhead — so
	// this is a differential-testing and debugging switch, not a modeling
	// choice.
	NoFastPath bool

	// NoPlanCache disables the process-wide compile-once plan cache,
	// forcing this run to analyze, plan, and assemble bytecode from
	// scratch. Cached and cold compiles are equivalence-tested to be
	// tick-identical, so this is an escape hatch for differential
	// testing and for callers that mutate programs between runs in ways
	// the structural fingerprint should catch but they want to prove.
	NoPlanCache bool

	// Seed pre-initializes input files; nil if the program needs none.
	Seed func(prog *ir.Program, file *stripefs.File, pageSize int64)

	// Backend, if non-nil, selects the storage backend: it rebuilds
	// Machine's storage subsystem for the spec's tier (striped disks,
	// NVMe, far memory) with the spec's overrides, keeping Machine's
	// memory system and CPU model. Use ParseBackendSpec for the CLI
	// syntax. Nil runs on Machine's own tier (the paper's disks for
	// hw.Default()).
	Backend *BackendSpec

	// Elevator selects SCAN disk scheduling instead of the default FCFS
	// (the paper's disk scheduler treats prefetches like demand reads
	// under FCFS; the elevator is available for ablations).
	//
	// Deprecated: set Backend with Sched: "elevator" instead. Elevator is
	// honored only when Backend is nil or leaves Sched empty.
	Elevator bool

	// SamplePeriod, if positive, records a timeline of memory-manager
	// state every period of simulated time (Result.Timeline).
	SamplePeriod sim.Time

	// Trace, if non-nil, collects a Chrome-trace timeline of the run: one
	// process per run, with tracks for the VM core ("cpu", "faults"), each
	// disk, and classification instants for every fault. Nil costs one
	// nil-check per event.
	Trace *obs.Trace

	// TraceName names the run's process in the trace; empty defaults to
	// the program name.
	TraceName string

	// Metrics, if non-nil, is the registry every layer's counters register
	// in, so one run's metrics land beside others'. Nil gives the run a
	// private registry, returned in Result.Metrics either way.
	Metrics *obs.Registry

	// QoSClass sets the run's prefetch-priority class: every request the
	// run issues is tagged with it, the VM's prefetch drop thresholds
	// tighten for lower classes, and a "qos" disk scheduler orders
	// prefetches by it. The zero value (Gold) is exactly the
	// single-tenant default and changes nothing.
	QoSClass disk.Class

	// Faults, if non-nil and enabled, injects deterministic faults into
	// the run: per-disk transient read/write errors and latency spikes,
	// whole-disk brownouts, and synthetic memory-pressure spikes that drop
	// prefetch hints. Results are unaffected by construction — hints are
	// non-binding and demand I/O retries until it succeeds — only timing
	// and the fault/degradation counters change. The profile must
	// Validate; use fault.ProfileByName or fault.ParseSpec.
	Faults *fault.Profile

	// Profile, if non-nil, selects one pass of the two-pass
	// profile-guided prefetch mode (record or use).
	Profile *ProfileSpec
}

// ProfileSpec configures the two-pass profile-guided mode for one run.
// Exactly one of Record and Use may be set.
type ProfileSpec struct {
	// Record runs pass 1: the ORIGINAL program executes (Prefetch is
	// ignored) with observation-only instrumentation, and the recorded
	// profile is returned in Result.Profile. Recording charges no
	// simulated operations, so results, times, and statistics are
	// identical to a plain original run.
	Record bool

	// Use runs pass 2: the profile is fed to the prefetching compiler
	// (compiler.Options.Profile), which replaces its static distance
	// formula with observed latencies and hints references static
	// analysis skips. Requires Prefetch. Sites that do not match the
	// profile keep their static plan; the mismatch count lands in
	// Result.ProfileMismatches and the "profile.mismatch" metric.
	Use *profile.Profile
}

// DefaultConfig returns the standard prefetching configuration.
func DefaultConfig(machine hw.Params) Config {
	return Config{
		Machine:       machine,
		Prefetch:      true,
		RuntimeFilter: true,
	}
}

// MachineFor sizes the default platform so that dataBytes stands in the
// given ratio to available memory (ratio 2 = data twice as large as
// memory, the paper's standard out-of-core setting).
func MachineFor(dataBytes int64, ratio float64) hw.Params {
	p := hw.Default()
	mem := int64(float64(dataBytes) / ratio)
	// Round to whole pages with a sane floor.
	mem = mem / p.PageSize * p.PageSize
	if mem < 16*p.PageSize {
		mem = 16 * p.PageSize
	}
	p.MemoryBytes = mem
	return p
}

// Result carries everything the experiments report about one run.
type Result struct {
	Prog    *ir.Program // the program that actually executed
	Plan    []compiler.PlanEntry
	Env     *exec.Env
	VM      *vm.VM
	Elapsed sim.Time

	Times   vm.TimeStats
	Mem     vm.Stats
	RT      rt.Stats
	AvgFree float64

	// Timeline holds periodic samples when Config.SamplePeriod was set.
	Timeline []Sample

	DiskStats []disk.Stats
	DiskUtil  float64 // mean utilization across disks

	// Metrics is the registry the run's counters live in (Config.Metrics,
	// or the run's private registry). Times/Mem/RT/DiskStats above are
	// views assembled from it.
	Metrics *obs.Registry

	// Faults tallies what the fault plane injected (all zero when
	// Config.Faults was nil or disabled).
	Faults fault.Counts

	// FastPath reports, per loop, which compiled driver ran it and why
	// the compiler fell back when it did (empty under NoFastPath).
	FastPath []exec.LoopReport

	// Profile is the recording from a ProfileSpec.Record run; nil
	// otherwise.
	Profile *profile.Profile

	// ProfileMismatches counts profile/program site mismatches from a
	// ProfileSpec.Use compile (also published as "profile.mismatch").
	ProfileMismatches int64

	// PlanCacheHit reports whether this run reused a previously compiled
	// plan from the process-wide cache (always false with
	// Config.NoPlanCache set or in profile-recording runs).
	PlanCacheHit bool
}

// Speedup returns how much faster this run is than base:
// base.Elapsed / r.Elapsed.
func (r *Result) Speedup(base *Result) float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(base.Elapsed) / float64(r.Elapsed)
}

// Run executes one program under one configuration on a fresh simulated
// system. It is RunContext with a background context.
func Run(prog *ir.Program, cfg Config) (*Result, error) {
	return RunContext(context.Background(), prog, cfg)
}

// RunContext executes one program under one configuration on a fresh
// simulated system, honoring ctx: cancellation (or a deadline, e.g. a
// per-run timeout) aborts the run's event loop within one simulated
// event and returns ctx's error. A context that can never be cancelled
// costs nothing extra.
func RunContext(ctx context.Context, prog *ir.Program, cfg Config) (res *Result, err error) {
	if e := ctx.Err(); e != nil {
		return nil, e
	}
	machine := cfg.Machine
	if machine.PageSize == 0 {
		machine = hw.Default()
	}
	if cfg.Backend != nil {
		m, err := cfg.Backend.Apply(machine)
		if err != nil {
			return nil, err
		}
		machine = m
	}
	if err := machine.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Resolve(machine.PageSize); err != nil {
		return nil, err
	}

	recording := false
	if cfg.Profile != nil {
		if cfg.Profile.Record && cfg.Profile.Use != nil {
			return nil, fmt.Errorf("core: ProfileSpec sets both Record and Use")
		}
		if cfg.Profile.Use != nil && !cfg.Prefetch {
			return nil, fmt.Errorf("core: ProfileSpec.Use requires Prefetch")
		}
		recording = cfg.Profile.Record
	}

	execProg := prog
	var plan []compiler.PlanEntry
	var mismatches int64
	var art *exec.Artifact
	planCacheHit := false
	copts := compiler.DefaultOptions()
	if cfg.Options != nil {
		copts = *cfg.Options
	}
	if cfg.Profile != nil && cfg.Profile.Use != nil {
		copts.Profile = cfg.Profile.Use
	}
	doPrefetch := cfg.Prefetch && !recording
	if !recording && !cfg.NoPlanCache {
		// Compile-once path: analysis, planning, and bytecode assembly
		// are shared across runs with identical (machine, program,
		// options) keys; only VM binding happens per run. Recording runs
		// bypass the cache — their instrumented closures capture the
		// recorder and must be rebuilt every time.
		ent, hit := cachedPlan(prog, machine, doPrefetch, cfg.NoFastPath, copts)
		if ent.err != nil {
			return nil, fmt.Errorf("core: compile %s: %w", prog.Name, ent.err)
		}
		execProg = ent.execProg
		plan = ent.plan
		mismatches = ent.mismatches
		art = ent.art
		planCacheHit = hit
	} else if doPrefetch {
		res, err := compiler.Compile(prog, machine, copts)
		if err != nil {
			return nil, fmt.Errorf("core: compile %s: %w", prog.Name, err)
		}
		execProg = res.Prog
		plan = res.Plan
		mismatches = res.ProfileMismatches
	}

	clock := sim.NewClock()
	if ctx.Done() != nil {
		clock.SetInterrupt(ctx.Err)
		defer func() {
			if r := recover(); r != nil {
				in, ok := r.(sim.Interrupted)
				if !ok {
					panic(r)
				}
				res, err = nil, in.Err
			}
		}()
	}
	elevator := cfg.Elevator && (cfg.Backend == nil || cfg.Backend.Sched == "")
	if cfg.Backend.Elevator() {
		elevator = true
	}
	var mkSched func() disk.Scheduler
	if elevator {
		mkSched = func() disk.Scheduler { return &disk.Elevator{} }
	}
	if cfg.Backend.QoS() {
		mkSched = func() disk.Scheduler { return disk.QoS{} }
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	o := &obs.RunObs{Reg: reg}
	if cfg.Trace != nil {
		name := cfg.TraceName
		if name == "" {
			name = prog.Name
		}
		o.Proc = cfg.Trace.NewProcess(name)
	}
	fs := stripefs.NewObserved(clock, machine, mkSched, o)
	pages := prog.TotalBytes(machine.PageSize) / machine.PageSize
	if pages == 0 {
		pages = 1
	}
	file, err := fs.Create(prog.Name, pages)
	if err != nil {
		return nil, err
	}
	v := vm.NewObserved(clock, machine, file, o)
	if cfg.QoSClass != disk.Gold {
		v.SetClass(cfg.QoSClass)
	}
	var inj *fault.Injector
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
		// The injector's trace track exists only when faults are on, so
		// fault-free traces keep their exact golden shape.
		inj = fault.NewInjector(*cfg.Faults, reg, o.Thread("fault-injector"))
		fs.SetFaults(inj)
		v.SetFaults(inj)
	}
	layer := rt.RegisterObserved(v, cfg.RuntimeFilter || !cfg.Prefetch, reg)
	var rec *profile.Recorder
	if recording {
		rec = profile.NewRecorder(execProg, machine.PageSize)
	}
	var m *exec.Machine
	if art != nil {
		m, err = art.Bind(v, layer)
	} else {
		m, err = exec.NewWith(execProg, v, layer, exec.Options{NoFastPath: cfg.NoFastPath, Profile: rec})
	}
	if err != nil {
		return nil, err
	}
	if cfg.Seed != nil {
		cfg.Seed(prog, file, machine.PageSize)
	}
	if cfg.WarmStart {
		v.Preload(0, v.AllocatedPages())
		v.ResetAccounting()
	}

	clock.DeadlockInfo = func() string {
		out := ""
		for i, d := range fs.Backends() {
			out += fmt.Sprintf("disk %d: busy=%v queue=%d\n", i, d.Busy(), d.QueueLen())
		}
		return out
	}
	var smp *sampler
	if cfg.SamplePeriod > 0 {
		smp = startSampler(v, cfg.SamplePeriod)
	}
	start := clock.Now()
	env := m.Run()
	v.Finish()
	elapsed := clock.Now() - start
	// All I/O has drained: hand the run's request-object pools to the
	// next run's file system.
	fs.Recycle()

	r := &Result{
		Prog:    execProg,
		Plan:    plan,
		Env:     env,
		VM:      v,
		Elapsed: elapsed,
		Times:   v.Times(),
		Mem:     v.Stats(),
		RT:      layer.Stats(),
		AvgFree: v.AvgFreeFrac(),
		Metrics: reg,
		Faults:  inj.Counts(),

		FastPath: m.Reports(),

		ProfileMismatches: mismatches,
		PlanCacheHit:      planCacheHit,
	}
	if rec != nil {
		r.Profile = rec.Profile()
	}
	if cfg.Profile != nil && cfg.Profile.Use != nil {
		reg.Counter("profile.mismatch").Store(mismatches)
	}
	if smp != nil {
		r.Timeline = smp.stop()
	}
	var util float64
	for _, d := range fs.Backends() {
		r.DiskStats = append(r.DiskStats, d.Stats())
		util += d.Utilization(elapsed)
	}
	r.DiskUtil = util / float64(len(fs.Backends()))

	// End-of-run summary metrics: derived values the counters alone do
	// not carry.
	reg.Counter("run.elapsed_ns").Store(int64(elapsed))
	reg.Counter("sim.events_scheduled").Store(clock.EventsScheduled())
	reg.Counter("sim.events_dispatched").Store(clock.EventsDispatched())
	reg.Gauge("run.avg_free_frac").Set(r.AvgFree)
	reg.Gauge("disk.util_mean").Set(r.DiskUtil)
	return r, nil
}
