package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/lang"
	"repro/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// goldenSrc is a small fixed workload: big enough to fault, prefetch,
// and write back through every traced layer, small enough that the
// golden trace stays reviewable.
const goldenSrc = `
program stream
param n = 1 << 13
array double a[n]
scalar double s
for i = 0 .. n {
    s = s + a[i]
}
`

// TestTraceGolden locks down the Chrome trace exporter end to end: a
// deterministic run must serialize to exactly the committed golden
// trace. The comparison is over parsed JSON, so it is insensitive to
// field ordering; regenerate with `go test ./internal/core -run
// TraceGolden -update` after an intentional format change.
func TestTraceGolden(t *testing.T) {
	prog, err := lang.Parse(goldenSrc)
	if err != nil {
		t.Fatal(err)
	}
	trace := obs.NewTrace()
	data := int64(8 << 13) // n doubles
	cfg := DefaultConfig(MachineFor(data, 2))
	cfg.Seed = seedOnes
	cfg.Trace = trace
	cfg.TraceName = "stream/P"
	if _, err := Run(prog, cfg); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_stream.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}

	var gotV, wantV any
	if err := json.Unmarshal(buf.Bytes(), &gotV); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if err := json.Unmarshal(want, &wantV); err != nil {
		t.Fatalf("golden file is not valid JSON: %v", err)
	}
	if !reflect.DeepEqual(gotV, wantV) {
		t.Fatalf("trace diverged from %s (%d bytes now vs %d golden); run with -update if intentional",
			golden, buf.Len(), len(want))
	}

	// Sanity beyond byte equality: the golden itself must have the track
	// structure the exporter promises.
	events := trace.Events()
	tracks := map[string]bool{}
	classes := map[string]bool{}
	for _, e := range events {
		switch e.Phase {
		case 'M':
			if e.Name == "thread_name" {
				tracks[e.Label] = true
			}
		case 'i':
			if e.Cat == "fault-class" {
				classes[e.Name] = true
			}
		}
	}
	for _, want := range []string{"cpu", "faults", "disk 0"} {
		if !tracks[want] {
			t.Errorf("trace lacks a %q track (have %v)", want, tracks)
		}
	}
	if len(classes) == 0 {
		t.Error("trace has no fault-classification instants")
	}
}
