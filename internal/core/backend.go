// Storage backend selection. A BackendSpec names the storage tier a run
// executes on and optionally overrides the tier's device parameters; it
// is the configuration-side face of the disk.Backend API, mirroring how
// fault.Profile fronts the fault plane. ParseBackendSpec gives the CLI
// the same comma-separated key=value syntax as fault.ParseSpec.
package core

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
)

// BackendSpec selects and parameterizes the storage backend of a run.
// The zero value means "leave Config.Machine alone" (the paper's
// striped-disk array when the machine is hw.Default()). Non-zero fields
// override the corresponding tier defaults; fields of other tiers are
// ignored.
type BackendSpec struct {
	// Tier selects the storage model (disk, nvme, farmem).
	Tier hw.Tier

	// Disks, if positive, sets the number of devices in the array.
	Disks int

	// Sched selects the disk tier's scheduler: "" or "fcfs" for FCFS,
	// "elevator" for SCAN, "qos" for class-aware QoS ordering (demand
	// faults first, then writes, then prefetches by tenant class).
	// Anything but ""/"fcfs"/"qos" is an error off the disk tier, which
	// has no positional state to schedule around; "qos" orders by request
	// kind and class only, so it is meaningful on every tier.
	Sched string

	// Latency overrides the NVMe tier's command latency.
	Latency sim.Time
	// Parallelism overrides the NVMe tier's internal channel count.
	Parallelism int

	// RTT overrides the far-memory tier's network round-trip time.
	RTT sim.Time
	// Batch overrides the far-memory tier's maximum requests per round
	// trip.
	Batch int

	// Transfer overrides the selected tier's per-page transfer time
	// (media transfer on disk and NVMe, wire transfer on far memory).
	Transfer sim.Time
}

// Elevator reports whether the spec selects SCAN disk scheduling.
func (s *BackendSpec) Elevator() bool { return s != nil && s.Sched == "elevator" }

// QoS reports whether the spec selects class-aware QoS scheduling.
func (s *BackendSpec) QoS() bool { return s != nil && s.Sched == "qos" }

// Validate checks the spec's internal consistency (tier known, scheduler
// meaningful on the tier, overrides positive where set).
func (s *BackendSpec) Validate() error {
	if s == nil {
		return nil
	}
	if s.Tier < hw.TierDisk || s.Tier > hw.TierFarMemory {
		return fmt.Errorf("core: unknown storage tier %d (want one of %s)",
			int(s.Tier), strings.Join(hw.TierNames(), ", "))
	}
	switch s.Sched {
	case "", "fcfs", "qos":
	case "elevator":
		if s.Tier != hw.TierDisk {
			return fmt.Errorf("core: scheduler %q is meaningless on tier %s (only the disk tier has an arm to schedule)",
				s.Sched, s.Tier)
		}
	default:
		return fmt.Errorf("core: unknown scheduler %q (want fcfs, elevator, or qos)", s.Sched)
	}
	if s.Disks < 0 {
		return fmt.Errorf("core: negative device count %d", s.Disks)
	}
	if s.Latency < 0 || s.RTT < 0 || s.Transfer < 0 {
		return fmt.Errorf("core: negative backend timing override")
	}
	if s.Parallelism < 0 || s.Batch < 0 {
		return fmt.Errorf("core: negative backend sizing override")
	}
	return nil
}

// Apply rebuilds p's storage subsystem for the spec's tier, keeping p's
// memory system, OS costs, and CPU model: the tier defaults come from
// hw.DefaultTier and the spec's non-zero overrides are layered on top.
// A nil spec returns p unchanged.
func (s *BackendSpec) Apply(p hw.Params) (hw.Params, error) {
	if s == nil {
		return p, nil
	}
	if err := s.Validate(); err != nil {
		return hw.Params{}, err
	}
	td := hw.DefaultTier(s.Tier)
	out := p
	out.Tier = s.Tier
	out.NumDisks = td.NumDisks
	out.NVMeLatency = td.NVMeLatency
	out.NVMeTransferPerPage = td.NVMeTransferPerPage
	out.NVMeParallelism = td.NVMeParallelism
	out.NetRTT = td.NetRTT
	out.NetTransferPerPage = td.NetTransferPerPage
	out.NetPerRequest = td.NetPerRequest
	out.NetBatchRequests = td.NetBatchRequests
	if s.Disks > 0 {
		out.NumDisks = s.Disks
	}
	switch s.Tier {
	case hw.TierNVMe:
		if s.Latency > 0 {
			out.NVMeLatency = s.Latency
		}
		if s.Parallelism > 0 {
			out.NVMeParallelism = s.Parallelism
		}
		if s.Transfer > 0 {
			out.NVMeTransferPerPage = s.Transfer
		}
	case hw.TierFarMemory:
		if s.RTT > 0 {
			out.NetRTT = s.RTT
		}
		if s.Batch > 0 {
			out.NetBatchRequests = s.Batch
		}
		if s.Transfer > 0 {
			out.NetTransferPerPage = s.Transfer
		}
	case hw.TierDisk:
		if s.Transfer > 0 {
			out.TransferPerPage = s.Transfer
		}
	}
	if err := out.Validate(); err != nil {
		return hw.Params{}, err
	}
	return out, nil
}

// TierFor maps a tier name ("disk", "nvme"/"flash",
// "farmem"/"far-memory") to its hw.Tier.
func TierFor(name string) (hw.Tier, error) {
	t, ok := hw.TierByName(name)
	if !ok {
		return 0, fmt.Errorf("core: unknown storage tier %q (want one of %s)",
			name, strings.Join(hw.TierNames(), ", "))
	}
	return t, nil
}

// MachineForTier is MachineFor on the given storage tier: the tier's
// default platform with memory sized so dataBytes stands in the given
// ratio to it.
func MachineForTier(t hw.Tier, dataBytes int64, ratio float64) hw.Params {
	p := hw.DefaultTier(t)
	mem := int64(float64(dataBytes) / ratio)
	mem = mem / p.PageSize * p.PageSize
	if mem < 16*p.PageSize {
		mem = 16 * p.PageSize
	}
	p.MemoryBytes = mem
	return p
}

// ParseBackendSpec parses a CLI backend specification: comma-separated
// key=value pairs among tier, disks, sched, latency, parallelism, rtt,
// batch, and transfer, with a bare name accepted as shorthand for
// tier=<name> ("nvme", "tier=farmem,rtt=40us,batch=32",
// "disk,disks=4,sched=elevator"). Durations use Go syntax ("90us",
// "1.5ms").
func ParseBackendSpec(spec string) (BackendSpec, error) {
	var s BackendSpec
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, found := strings.Cut(part, "=")
		if !found {
			key, val = "tier", key
		}
		switch key {
		case "tier":
			t, err := TierFor(val)
			if err != nil {
				return BackendSpec{}, err
			}
			s.Tier = t
		case "disks":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return BackendSpec{}, fmt.Errorf("core: bad device count %q", val)
			}
			s.Disks = n
		case "sched":
			switch val {
			case "fcfs", "elevator":
				s.Sched = val
			default:
				return BackendSpec{}, fmt.Errorf("core: unknown scheduler %q (want fcfs or elevator)", val)
			}
		case "latency":
			t, err := parseSimDuration(val)
			if err != nil {
				return BackendSpec{}, fmt.Errorf("core: bad latency %q: %v", val, err)
			}
			s.Latency = t
		case "rtt":
			t, err := parseSimDuration(val)
			if err != nil {
				return BackendSpec{}, fmt.Errorf("core: bad rtt %q: %v", val, err)
			}
			s.RTT = t
		case "transfer":
			t, err := parseSimDuration(val)
			if err != nil {
				return BackendSpec{}, fmt.Errorf("core: bad transfer %q: %v", val, err)
			}
			s.Transfer = t
		case "parallelism":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return BackendSpec{}, fmt.Errorf("core: bad parallelism %q", val)
			}
			s.Parallelism = n
		case "batch":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return BackendSpec{}, fmt.Errorf("core: bad batch size %q", val)
			}
			s.Batch = n
		default:
			return BackendSpec{}, fmt.Errorf("core: unknown spec key %q (want tier, disks, sched, latency, parallelism, rtt, batch, or transfer)", key)
		}
	}
	if err := s.Validate(); err != nil {
		return BackendSpec{}, err
	}
	return s, nil
}

// parseSimDuration parses a Go duration ("90us") into simulated time.
func parseSimDuration(val string) (sim.Time, error) {
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, err
	}
	if d <= 0 {
		return 0, fmt.Errorf("duration must be positive")
	}
	return sim.Time(d.Nanoseconds()), nil
}
