// Package hw reconstructs Table 1 of the paper: the characteristics of the
// experimental platform (Hector multiprocessor, Hurricane OS, seven
// striped disks). The HTML capture of the paper omits the table body, so
// the constants here are rebuilt from the prose (64 MB of memory of which
// ~48 MB is available to the application, 4 KB pages, seven disks,
// extent-based placement) and from period-typical disk and CPU figures.
// Every value can be overridden, and the experiment harness scales memory
// and data sizes down coherently so the suite runs in seconds.
package hw

import (
	"fmt"

	"repro/internal/sim"
)

// Params describes the simulated machine. All times are simulated
// nanoseconds (sim.Time). The storage subsystem is selected by Tier: the
// disk-geometry fields apply to TierDisk, the NVMe* fields to TierNVMe,
// and the Net* fields to TierFarMemory; Validate checks only the
// selected tier's fields, so an NVMe or far-memory machine with zero
// cylinders is legal.
type Params struct {
	// Memory system.
	PageSize    int64 // bytes per page (4 KB in the paper)
	MemoryBytes int64 // physical memory available to the application

	// Pageout daemon watermarks, in frames. When the free list drops
	// below LowWater the daemon reclaims until HighWater frames are free.
	LowWaterFrac  float64
	HighWaterFrac float64

	// Storage subsystem. Tier selects the device model (the zero value
	// is the paper's striped-disk array); NumDisks is the number of
	// devices the file system stripes across whatever the tier.
	Tier     Tier
	NumDisks int // seven in the paper

	// Disk tier (TierDisk): the positional service-time model.
	SeekMin         sim.Time // single-track seek
	SeekMax         sim.Time // full-stroke seek
	RotationTime    sim.Time // full platter rotation (5400 RPM -> 11.1 ms)
	TransferPerPage sim.Time // media transfer time for one page
	DiskCylinders   int64    // cylinder count used by the seek model
	PagesPerCyl     int64    // pages per cylinder (locality of extents)

	// NVMe tier (TierNVMe): a flat-latency device with no positional
	// state. The command latency amortizes across the device's internal
	// parallelism as the queue deepens (deep queues are how flash earns
	// its throughput), plus a per-page media transfer.
	NVMeLatency         sim.Time // uncontended one-command latency
	NVMeTransferPerPage sim.Time // media transfer time for one page
	NVMeParallelism     int      // internal channels the latency amortizes over

	// Far-memory tier (TierFarMemory): remote memory reached over a
	// network. Each fetch batch is one round trip; queued requests are
	// coalesced into batches of up to NetBatchRequests, each contiguous
	// run inside a batch costing NetPerRequest of header overhead, with
	// pages moving at NetTransferPerPage on the wire.
	NetRTT             sim.Time // network round trip per batched fetch
	NetTransferPerPage sim.Time // wire transfer time for one page
	NetPerRequest      sim.Time // per wire-request overhead inside a batch
	NetBatchRequests   int      // max requests coalesced per round trip

	// Operating system costs (Hurricane was instrumented, so the paper
	// calls these inflated; they are what the shape of the results needs).
	FaultServiceTime    sim.Time // CPU time in the kernel per major fault
	MinorFaultTime      sim.Time // reclaim of a page still on the free list
	PrefetchSyscallTime sim.Time // one prefetch/release system call
	ReleasePerPageTime  sim.Time // marginal kernel cost per released page

	// Run-time layer costs.
	FilterCheckTime sim.Time // user-level bit-vector check per page
	// ("roughly 1% as expensive as issuing it")

	// CPU model used by the executor to charge compute time.
	OpTime sim.Time // cost of one arithmetic op / load / store
}

// Default returns the full-size reconstructed platform of Table 1.
func Default() Params {
	return Params{
		PageSize:            4096,
		MemoryBytes:         48 << 20, // of the 64 MB machine, ~48 MB usable
		LowWaterFrac:        1.0 / 64,
		HighWaterFrac:       1.0 / 16,
		NumDisks:            7,
		SeekMin:             2 * sim.Millisecond,
		SeekMax:             20 * sim.Millisecond,
		RotationTime:        sim.Time(11.1 * float64(sim.Millisecond)),
		TransferPerPage:     800 * sim.Microsecond, // ~5 MB/s media rate
		DiskCylinders:       2000,
		PagesPerCyl:         64,
		FaultServiceTime:    500 * sim.Microsecond,
		MinorFaultTime:      60 * sim.Microsecond,
		PrefetchSyscallTime: 160 * sim.Microsecond,
		ReleasePerPageTime:  15 * sim.Microsecond,
		FilterCheckTime:     sim.Time(1600), // 1.6 µs ≈ 1% of a syscall
		OpTime:              200,            // ~5 MIPS: Hector-era CPU with instrumentation enabled
	}
}

// Scaled returns the default platform with physical memory reduced to
// memBytes. Workload generators size their data sets relative to memory,
// so scaling memory scales the whole experiment; latencies and CPU speed
// are left untouched, which preserves the latency-to-compute ratios the
// paper's results depend on.
func Scaled(memBytes int64) Params {
	p := Default()
	p.MemoryBytes = memBytes
	return p
}

// Frames returns the number of physical page frames.
func (p Params) Frames() int64 { return p.MemoryBytes / p.PageSize }

// LowWater returns the pageout daemon's low watermark in frames (at least 4).
func (p Params) LowWater() int64 {
	n := int64(float64(p.Frames()) * p.LowWaterFrac)
	if n < 4 {
		n = 4
	}
	return n
}

// HighWater returns the daemon's refill target in frames.
func (p Params) HighWater() int64 {
	n := int64(float64(p.Frames()) * p.HighWaterFrac)
	if n <= p.LowWater() {
		n = p.LowWater() + 4
	}
	return n
}

// AvgPageRead returns the expected uncontended latency of a one-page
// read on p's storage tier: average seek plus half a rotation plus the
// transfer on the disk tier, the command latency plus transfer on the
// NVMe tier, and one round trip plus header and transfer on the
// far-memory tier. The compiler derives its prefetch distance from this
// figure, so each tier gets distances matched to its own latency.
func (p Params) AvgPageRead() sim.Time {
	switch p.Tier {
	case TierNVMe:
		return p.NVMeLatency + p.NVMeTransferPerPage
	case TierFarMemory:
		return p.NetRTT + p.NetPerRequest + p.NetTransferPerPage
	}
	avgSeek := (p.SeekMin + p.SeekMax) / 2
	return avgSeek + p.RotationTime/2 + p.TransferPerPage
}

// Validate checks the parameters for internal consistency. The storage
// checks are tier-aware: only the fields of p's own tier must be
// meaningful, so an NVMe or far-memory machine with zero disk geometry
// is legal while a disk machine with zero cylinders still fails.
func (p Params) Validate() error {
	switch {
	case p.PageSize <= 0 || p.PageSize&(p.PageSize-1) != 0:
		return fmt.Errorf("hw: page size %d is not a positive power of two", p.PageSize)
	case p.MemoryBytes < 8*p.PageSize:
		return fmt.Errorf("hw: memory %d B is under 8 pages", p.MemoryBytes)
	case p.NumDisks < 1:
		return fmt.Errorf("hw: need at least one storage device, have %d", p.NumDisks)
	}
	if err := p.validateTier(); err != nil {
		return err
	}
	switch {
	case p.FaultServiceTime <= 0 || p.PrefetchSyscallTime <= 0:
		return fmt.Errorf("hw: kernel costs must be positive")
	case p.FilterCheckTime <= 0 || p.FilterCheckTime >= p.PrefetchSyscallTime:
		return fmt.Errorf("hw: filter check %v must be positive and below syscall cost %v",
			p.FilterCheckTime, p.PrefetchSyscallTime)
	case p.OpTime <= 0:
		return fmt.Errorf("hw: op time must be positive")
	case p.LowWaterFrac <= 0 || p.HighWaterFrac <= p.LowWaterFrac || p.HighWaterFrac >= 1:
		return fmt.Errorf("hw: watermark fractions (%g, %g) invalid", p.LowWaterFrac, p.HighWaterFrac)
	}
	return nil
}

// PagesOf returns how many pages are needed to hold n bytes.
func (p Params) PagesOf(bytes int64) int64 {
	return (bytes + p.PageSize - 1) / p.PageSize
}
