package hw

import (
	"testing"

	"repro/internal/sim"
)

func TestTierNamesRoundTrip(t *testing.T) {
	for _, tier := range []Tier{TierDisk, TierNVMe, TierFarMemory} {
		got, ok := TierByName(tier.String())
		if !ok || got != tier {
			t.Fatalf("TierByName(%q) = %v, %v", tier.String(), got, ok)
		}
	}
	for name, want := range map[string]Tier{"flash": TierNVMe, "far-memory": TierFarMemory, "farmemory": TierFarMemory} {
		if got, ok := TierByName(name); !ok || got != want {
			t.Fatalf("alias %q = %v, %v, want %v", name, got, ok, want)
		}
	}
	if _, ok := TierByName("tape"); ok {
		t.Fatal("TierByName accepted an unknown tier")
	}
	if got := TierNames(); len(got) != 3 {
		t.Fatalf("TierNames() = %v, want 3 canonical names", got)
	}
}

func TestDefaultTierValid(t *testing.T) {
	for _, tier := range []Tier{TierDisk, TierNVMe, TierFarMemory} {
		p := DefaultTier(tier)
		if err := p.Validate(); err != nil {
			t.Fatalf("DefaultTier(%v) invalid: %v", tier, err)
		}
		if p.Tier != tier {
			t.Fatalf("DefaultTier(%v).Tier = %v", tier, p.Tier)
		}
		if err := ScaledTier(tier, 8<<20).Validate(); err != nil {
			t.Fatalf("ScaledTier(%v) invalid: %v", tier, err)
		}
	}
}

// The bugfix this PR carries: Validate must check only the selected
// tier's device parameters. An NVMe or far-memory machine legitimately
// has zero disk geometry (there is no arm), while a disk machine with
// zero cylinders must still fail.
func TestValidateIsTierAware(t *testing.T) {
	nvme := DefaultTier(TierNVMe)
	nvme.DiskCylinders, nvme.PagesPerCyl = 0, 0
	nvme.RotationTime, nvme.TransferPerPage = 0, 0
	nvme.SeekMin, nvme.SeekMax = 0, 0
	if err := nvme.Validate(); err != nil {
		t.Fatalf("nvme machine with zero disk geometry rejected: %v", err)
	}

	far := DefaultTier(TierFarMemory)
	far.DiskCylinders, far.RotationTime, far.TransferPerPage = 0, 0, 0
	far.NVMeLatency = 0
	if err := far.Validate(); err != nil {
		t.Fatalf("far-memory machine with zero disk/nvme params rejected: %v", err)
	}

	disk := Default()
	disk.DiskCylinders = 0
	if err := disk.Validate(); err == nil {
		t.Fatal("disk machine with zero cylinders accepted")
	}
}

func TestValidateRejectsBadTierParams(t *testing.T) {
	mut := []func(*Params){
		func(p *Params) { p.Tier = TierNVMe; p.NVMeLatency = 0 },
		func(p *Params) { p.Tier = TierNVMe; p.NVMeTransferPerPage = 0 },
		func(p *Params) { p.Tier = TierNVMe; p.NVMeParallelism = 0 },
		func(p *Params) { p.Tier = TierFarMemory; p.NetRTT = 0 },
		func(p *Params) { p.Tier = TierFarMemory; p.NetTransferPerPage = 0 },
		func(p *Params) { p.Tier = TierFarMemory; p.NetPerRequest = -1 },
		func(p *Params) { p.Tier = TierFarMemory; p.NetBatchRequests = 0 },
		func(p *Params) { p.Tier = Tier(7) },
	}
	for i, m := range mut {
		p := Default()
		base := func() {
			// Give the mutated tier plausible values first so each case
			// isolates exactly one invalid field.
			q := DefaultTier(TierNVMe)
			p.NVMeLatency, p.NVMeTransferPerPage, p.NVMeParallelism = q.NVMeLatency, q.NVMeTransferPerPage, q.NVMeParallelism
			q = DefaultTier(TierFarMemory)
			p.NetRTT, p.NetTransferPerPage, p.NetPerRequest, p.NetBatchRequests = q.NetRTT, q.NetTransferPerPage, q.NetPerRequest, q.NetBatchRequests
		}
		base()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("tier mutation %d: Validate accepted an invalid config", i)
		}
	}
}

// The compiler derives prefetch distances from AvgPageRead, so each
// tier's average uncontended page read must reflect its own model and
// order the tiers disk > nvme > farmem.
func TestAvgPageReadPerTier(t *testing.T) {
	d := DefaultTier(TierDisk).AvgPageRead()
	n := DefaultTier(TierNVMe).AvgPageRead()
	f := DefaultTier(TierFarMemory).AvgPageRead()
	if !(d > n && n > f) {
		t.Fatalf("tier page reads not ordered: disk %v, nvme %v, farmem %v", d, n, f)
	}
	if n > sim.Millisecond || f > sim.Millisecond {
		t.Fatalf("fast tiers in the millisecond range: nvme %v, farmem %v", n, f)
	}
}
