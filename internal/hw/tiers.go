// Storage tiers. The paper derives its prefetch-distance and release
// policies for exactly one hardware point — seven striped local disks
// with the Table 1 seek/rotation constants. Faster and farther storage
// (flash with deep internal queues, far memory reached over a network)
// changes the latency-to-compute ratio those policies were tuned for, so
// the platform description carries a Tier selecting which storage model
// backs the striped file system, plus a per-tier parameter set. The
// compiler's prefetch distance follows automatically: it is derived from
// AvgPageRead, which is tier-aware.
package hw

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Tier selects the storage model backing the striped file system. The
// zero value is the paper's striped-disk array, so existing
// configurations are unchanged.
type Tier int

const (
	// TierDisk is the paper's platform: an array of rotating disks with
	// a positional (seek + rotation + transfer) service-time model.
	TierDisk Tier = iota
	// TierNVMe is a flat-latency flash device: no positional state, a
	// fixed command latency amortized across the device's internal
	// parallelism as the queue deepens, plus a per-page transfer.
	TierNVMe
	// TierFarMemory is a remote-memory tier reached over a network: each
	// fetch is a round trip, and the device coalesces queued requests
	// into asynchronously submitted batches so the round-trip latency
	// amortizes across many pages (3PO-style far-memory prefetching).
	TierFarMemory
	numTiers
)

func (t Tier) String() string {
	switch t {
	case TierDisk:
		return "disk"
	case TierNVMe:
		return "nvme"
	case TierFarMemory:
		return "farmem"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// tierNames maps every accepted spelling to its tier; the canonical
// name of each tier is its String().
var tierNames = map[string]Tier{
	"disk":       TierDisk,
	"nvme":       TierNVMe,
	"flash":      TierNVMe,
	"farmem":     TierFarMemory,
	"far-memory": TierFarMemory,
	"farmemory":  TierFarMemory,
}

// TierByName maps a tier name ("disk", "nvme"/"flash",
// "farmem"/"far-memory") to its Tier.
func TierByName(name string) (Tier, bool) {
	t, ok := tierNames[name]
	return t, ok
}

// TierNames returns the canonical tier names, sorted.
func TierNames() []string {
	names := make([]string, 0, numTiers)
	for t := Tier(0); t < numTiers; t++ {
		names = append(names, t.String())
	}
	sort.Strings(names)
	return names
}

// DefaultTier returns the reconstructed platform with its storage
// subsystem replaced by the given tier's default device set. The memory
// system, OS costs, and CPU model are the Table 1 values for every tier,
// so cross-tier comparisons isolate the storage model.
func DefaultTier(t Tier) Params {
	p := Default()
	p.Tier = t
	switch t {
	case TierDisk:
		// Default() is the disk tier.
	case TierNVMe:
		// One flash device replaces the seven-disk array: a flat 90 µs
		// command latency that amortizes across 8 internal channels as
		// the queue deepens, and a media rate far above the disks'.
		p.NumDisks = 1
		p.NVMeLatency = 90 * sim.Microsecond
		p.NVMeTransferPerPage = 10 * sim.Microsecond
		p.NVMeParallelism = 8
	case TierFarMemory:
		// One network link to a far-memory node: a 25 µs round trip per
		// batched fetch, a small per-request header cost inside a batch,
		// wire transfer near memory bandwidth, and up to 16 requests
		// coalesced per round trip.
		p.NumDisks = 1
		p.NetRTT = 25 * sim.Microsecond
		p.NetTransferPerPage = 2 * sim.Microsecond
		p.NetPerRequest = 1 * sim.Microsecond
		p.NetBatchRequests = 16
	default:
		panic(fmt.Sprintf("hw: unknown tier %v", t))
	}
	return p
}

// ScaledTier is DefaultTier with physical memory reduced to memBytes,
// the tier analogue of Scaled.
func ScaledTier(t Tier, memBytes int64) Params {
	p := DefaultTier(t)
	p.MemoryBytes = memBytes
	return p
}

// validateTier checks the parameters of p's storage tier; the shared
// (memory system, OS cost, CPU) checks live in Validate.
func (p Params) validateTier() error {
	switch p.Tier {
	case TierDisk:
		switch {
		case p.SeekMin < 0 || p.SeekMax < p.SeekMin:
			return fmt.Errorf("hw: invalid seek range [%v, %v]", p.SeekMin, p.SeekMax)
		case p.RotationTime <= 0 || p.TransferPerPage <= 0:
			return fmt.Errorf("hw: rotation %v and transfer %v must be positive", p.RotationTime, p.TransferPerPage)
		case p.DiskCylinders <= 0 || p.PagesPerCyl <= 0:
			return fmt.Errorf("hw: disk geometry %d cyl × %d pages invalid", p.DiskCylinders, p.PagesPerCyl)
		}
	case TierNVMe:
		switch {
		case p.NVMeLatency <= 0 || p.NVMeTransferPerPage <= 0:
			return fmt.Errorf("hw: nvme latency %v and transfer %v must be positive",
				p.NVMeLatency, p.NVMeTransferPerPage)
		case p.NVMeParallelism < 1:
			return fmt.Errorf("hw: nvme parallelism %d must be at least 1", p.NVMeParallelism)
		}
	case TierFarMemory:
		switch {
		case p.NetRTT <= 0 || p.NetTransferPerPage <= 0:
			return fmt.Errorf("hw: far-memory rtt %v and transfer %v must be positive",
				p.NetRTT, p.NetTransferPerPage)
		case p.NetPerRequest < 0:
			return fmt.Errorf("hw: far-memory per-request cost %v must not be negative", p.NetPerRequest)
		case p.NetBatchRequests < 1:
			return fmt.Errorf("hw: far-memory batch size %d must be at least 1", p.NetBatchRequests)
		}
	default:
		return fmt.Errorf("hw: unknown storage tier %d", int(p.Tier))
	}
	return nil
}
