package hw

import (
	"testing"

	"repro/internal/sim"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestScaledValid(t *testing.T) {
	for _, mb := range []int64{1, 4, 8, 48, 256} {
		p := Scaled(mb << 20)
		if err := p.Validate(); err != nil {
			t.Fatalf("Scaled(%d MB) invalid: %v", mb, err)
		}
		if p.MemoryBytes != mb<<20 {
			t.Fatalf("Scaled(%d MB) has memory %d", mb, p.MemoryBytes)
		}
	}
}

func TestFrames(t *testing.T) {
	p := Scaled(8 << 20)
	if got := p.Frames(); got != 2048 {
		t.Fatalf("8 MB / 4 KB = %d frames, want 2048", got)
	}
}

func TestWatermarks(t *testing.T) {
	p := Scaled(8 << 20)
	lo, hi := p.LowWater(), p.HighWater()
	if lo < 4 {
		t.Fatalf("low water %d below floor", lo)
	}
	if hi <= lo {
		t.Fatalf("high water %d not above low water %d", hi, lo)
	}
	if hi >= p.Frames() {
		t.Fatalf("high water %d not below total frames %d", hi, p.Frames())
	}
}

func TestWatermarksTinyMemory(t *testing.T) {
	p := Scaled(8 * 4096) // 8 frames, the minimum
	if err := p.Validate(); err != nil {
		t.Fatalf("8-frame config invalid: %v", err)
	}
	if p.HighWater() <= p.LowWater() {
		t.Fatalf("watermarks collapsed: lo=%d hi=%d", p.LowWater(), p.HighWater())
	}
}

func TestAvgPageReadPlausible(t *testing.T) {
	rt := Default().AvgPageRead()
	if rt < 5*sim.Millisecond || rt > 50*sim.Millisecond {
		t.Fatalf("average page read %v outside plausible 1996 disk range", rt)
	}
}

func TestFilterCheckMuchCheaperThanSyscall(t *testing.T) {
	p := Default()
	ratio := float64(p.FilterCheckTime) / float64(p.PrefetchSyscallTime)
	// The paper: dropping in the run-time layer is "roughly 1% as
	// expensive as issuing it to the OS".
	if ratio < 0.002 || ratio > 0.05 {
		t.Fatalf("filter/syscall cost ratio %.4f not ~1%%", ratio)
	}
}

func TestPagesOf(t *testing.T) {
	p := Default()
	cases := []struct{ bytes, want int64 }{
		{0, 0}, {1, 1}, {4095, 1}, {4096, 1}, {4097, 2}, {8192, 2},
	}
	for _, c := range cases {
		if got := p.PagesOf(c.bytes); got != c.want {
			t.Errorf("PagesOf(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mut := []func(*Params){
		func(p *Params) { p.PageSize = 3000 },
		func(p *Params) { p.PageSize = 0 },
		func(p *Params) { p.MemoryBytes = 4096 },
		func(p *Params) { p.NumDisks = 0 },
		func(p *Params) { p.SeekMax = p.SeekMin - 1 },
		func(p *Params) { p.RotationTime = 0 },
		func(p *Params) { p.TransferPerPage = 0 },
		func(p *Params) { p.DiskCylinders = 0 },
		func(p *Params) { p.FaultServiceTime = 0 },
		func(p *Params) { p.FilterCheckTime = p.PrefetchSyscallTime },
		func(p *Params) { p.OpTime = 0 },
		func(p *Params) { p.HighWaterFrac = p.LowWaterFrac },
	}
	for i, m := range mut {
		p := Default()
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: Validate accepted an invalid config", i)
		}
	}
}
