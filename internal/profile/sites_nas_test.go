package profile_test

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/locality"
	"repro/internal/nas"
	"repro/internal/profile"
)

// TestSitesAlignWithLocality is the invariant the whole mode stands on:
// the canonical enumeration walks the IR in the exact order of the
// locality analysis's collect pass, so site i corresponds to Refs[i].
func TestSitesAlignWithLocality(t *testing.T) {
	ps := hw.Default().PageSize
	for _, app := range nas.Apps() {
		t.Run(app.Name, func(t *testing.T) {
			prog := app.Build(0.05)
			if err := prog.Resolve(ps); err != nil {
				t.Fatal(err)
			}
			sites := profile.SitesOf(prog)
			an := locality.Analyze(prog, ps, 0)
			if len(sites) != len(an.Refs) {
				t.Fatalf("%d sites vs %d locality refs", len(sites), len(an.Refs))
			}
			seen := map[string]bool{}
			for i, s := range sites {
				r := an.Refs[i]
				if s.Arr != r.Arr || s.Write != r.IsWrite || len(s.Idx) != len(r.Idx) {
					t.Fatalf("site %d (%s) does not match ref %d (%s)", i, s.Key, i, r.Arr.Name)
				}
				if len(s.Idx) > 0 && &s.Idx[0] != &r.Idx[0] {
					t.Fatalf("site %d (%s): subscript identity mismatch", i, s.Key)
				}
				if s.ID != i {
					t.Fatalf("site %d carries ID %d", i, s.ID)
				}
				if seen[s.Key] {
					t.Fatalf("duplicate site key %q", s.Key)
				}
				seen[s.Key] = true
			}
		})
	}
}

// TestSiteKeysScaleIndependent: the same app built at different scales
// must produce identical keys, or a profile recorded at one problem size
// could not guide a compile at another.
func TestSiteKeysScaleIndependent(t *testing.T) {
	ps := hw.Default().PageSize
	for _, app := range nas.Apps() {
		small, big := app.Build(0.05), app.Build(0.2)
		if err := small.Resolve(ps); err != nil {
			t.Fatal(err)
		}
		if err := big.Resolve(ps); err != nil {
			t.Fatal(err)
		}
		a, b := profile.SitesOf(small), profile.SitesOf(big)
		if len(a) != len(b) {
			t.Fatalf("%s: %d sites at 0.05 vs %d at 0.2", app.Name, len(a), len(b))
		}
		for i := range a {
			if a[i].Key != b[i].Key {
				t.Fatalf("%s site %d: key %q at 0.05 vs %q at 0.2", app.Name, i, a[i].Key, b[i].Key)
			}
		}
	}
}
