package profile

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/ir"
)

// sumProg builds a two-array streaming sum: three reference sites
// (write a[i], read a[i], read b[i]) in canonical order.
func sumProg() *ir.Program {
	p := ir.NewProgram("sum")
	n := p.NewParam("n", 1<<12, true)
	a := p.NewArrayF("a", n)
	b := p.NewArrayF("b", n)
	i := p.NewLoopVar("i")
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), n, 1,
			ir.StoreF(a, []ir.IExpr{i}, ir.AddF(ir.LoadF(a, i), ir.LoadF(b, i))),
		),
	}
	return p
}

// sampleSet builds a representative artifact exercising every field.
func sampleSet() *Set {
	s := NewSet()
	s.Add(&Profile{
		Kernel:   "buk",
		PageSize: 4096,
		Sites: []SiteProfile{
			{
				Key: "r|i|count[key[i]]", Count: 100, Faults: 64, MinorFaults: 3, Hits: 7,
				StallTicks: 438400000, InterTicks: 1673700, InterN: 100,
				Strides: []StridePair{{Stride: 17, Count: 60}, {Stride: -3, Count: 9}}, StrideOther: 31,
			},
			{Key: "w|i|count[key[i]]", Count: 100},
			{Key: "r|i|key[i]"}, // never executed: zero-count sites are kept
		},
	})
	s.Add(&Profile{
		Kernel:   "cgm",
		PageSize: 4096,
		Sites:    []SiteProfile{{Key: "r|i.k|x[col[((i*32)+k)]]", Count: 5, Faults: 3, StallTicks: 3}},
	})
	return s
}

func TestRoundTripLossless(t *testing.T) {
	want := sampleSet()
	data, err := Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip not lossless:\n got %+v\nwant %+v", got, want)
	}
	// A second trip through the wire must be byte-stable.
	data2, err := Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("re-marshal not byte-identical")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	mutate := func(f func(*Set)) string {
		s := sampleSet()
		f(s)
		data, err := Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	cases := []struct {
		name        string
		data        string
		wantVersion int  // expect *VersionError with this Got
		wantCorrupt bool // expect *CorruptError
	}{
		{name: "not json", data: "not an artifact", wantCorrupt: true},
		{name: "missing version", data: `{"kernels":{}}`, wantCorrupt: true},
		{name: "future version", data: `{"version":2,"kernels":{}}`, wantVersion: 2},
		{name: "ancient version", data: `{"version":0,"kernels":{}}`, wantVersion: 0},
		{name: "malformed body", data: `{"version":1,"kernels":37}`, wantCorrupt: true},
		{name: "null profile", data: `{"version":1,"kernels":{"buk":null}}`, wantCorrupt: true},
		{name: "kernel name mismatch", data: mutate(func(s *Set) {
			s.Kernels["buk"].Kernel = "not-buk"
		}), wantCorrupt: true},
		{name: "bad page size", data: mutate(func(s *Set) {
			s.Kernels["buk"].PageSize = 0
		}), wantCorrupt: true},
		{name: "empty site key", data: mutate(func(s *Set) {
			s.Kernels["buk"].Sites[0].Key = ""
		}), wantCorrupt: true},
		{name: "duplicate site key", data: mutate(func(s *Set) {
			s.Kernels["buk"].Sites[1].Key = s.Kernels["buk"].Sites[0].Key
		}), wantCorrupt: true},
		{name: "negative counts", data: mutate(func(s *Set) {
			s.Kernels["buk"].Sites[0].Faults = -1
		}), wantCorrupt: true},
		{name: "non-positive stride count", data: mutate(func(s *Set) {
			s.Kernels["buk"].Sites[0].Strides[0].Count = 0
		}), wantCorrupt: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Unmarshal([]byte(tc.data))
			if err == nil {
				t.Fatal("Unmarshal accepted a bad artifact")
			}
			var ve *VersionError
			var ce *CorruptError
			switch {
			case tc.wantCorrupt:
				if !errors.As(err, &ce) {
					t.Fatalf("want *CorruptError, got %T: %v", err, err)
				}
				if errors.As(err, &ve) {
					t.Fatalf("error is both corrupt and version: %v", err)
				}
			default:
				if !errors.As(err, &ve) {
					t.Fatalf("want *VersionError, got %T: %v", err, err)
				}
				if ve.Got != tc.wantVersion {
					t.Fatalf("VersionError.Got = %d, want %d", ve.Got, tc.wantVersion)
				}
			}
		})
	}
}

func TestRecorderAccounting(t *testing.T) {
	ps := hw.Default().PageSize
	prog := sumProg()
	if err := prog.Resolve(ps); err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(prog, ps)
	sites := rec.Sites()
	if len(sites) == 0 {
		t.Fatal("no sites")
	}

	// Site 0: a faulting access, then two clean strided ones, then a hit.
	rec.Access(0, 0, 1000, 6000, 1, 0, 0)  // fault: stall 5000, no stride yet
	rec.Access(0, 8, 6100, 6200, 0, 0, 0)  // clean gap 200, stride +8
	rec.Access(0, 16, 6300, 6400, 0, 0, 0) // clean gap 200, stride +8
	rec.Access(0, 40, 6500, 6600, 0, 0, 1) // hit: gap excluded, stride +24

	p := rec.Profile()
	if len(p.Sites) != len(sites) {
		t.Fatalf("profile has %d sites, recorder %d", len(p.Sites), len(sites))
	}
	s := p.Site(sites[0].Key)
	if s == nil {
		t.Fatalf("site key %q missing from profile", sites[0].Key)
	}
	if s.Count != 4 || s.Faults != 1 || s.Hits != 1 || s.MinorFaults != 0 {
		t.Fatalf("counts: %+v", s)
	}
	if s.StallTicks != 5000 || s.AvgStallTicks() != 5000 {
		t.Fatalf("stall: %+v", s)
	}
	if s.InterTicks != 400 || s.InterN != 2 || s.AvgInterTicks() != 200 {
		t.Fatalf("inter: %+v", s)
	}
	if stride, frac := s.DominantStride(); stride != 8 || frac != 2.0/3.0 {
		t.Fatalf("dominant stride %d (%.2f)", stride, frac)
	}
	// Untouched sites still appear, with zero counts.
	z := p.Site(sites[1].Key)
	if z == nil || z.Count != 0 {
		t.Fatalf("zero-count site: %+v", z)
	}

	// More distinct strides than buckets spill into StrideOther.
	rec2 := NewRecorder(prog, ps)
	elem := int64(0)
	// The first access seeds lastElem without a stride, so n+1 accesses
	// record n deltas: buckets fill, the rest spill.
	for i := int64(1); i <= strideBuckets+4; i++ {
		elem += i * 100 // a fresh stride every access
		rec2.Access(0, elem, i*10, i*10+1, 0, 0, 0)
	}
	s2 := rec2.Profile().Site(sites[0].Key)
	if s2.StrideOther != 3 || len(s2.Strides) != strideBuckets {
		t.Fatalf("overflow: %d buckets, other=%d", len(s2.Strides), s2.StrideOther)
	}
}

// TestCrossKernelLookup: applying one kernel's artifact to another
// kernel's name yields nothing — the per-kernel keying that makes the
// compile-side mismatch degradation possible.
func TestCrossKernelLookup(t *testing.T) {
	s := sampleSet()
	if s.For("buk") == nil || s.For("cgm") == nil {
		t.Fatal("recorded kernels missing")
	}
	if s.For("embar") != nil {
		t.Fatal("lookup invented a profile")
	}
	var nilSet *Set
	if nilSet.For("buk") != nil {
		t.Fatal("nil set lookup")
	}
	if !strings.Contains((&VersionError{Got: 9}).Error(), "version 9") {
		t.Fatal("VersionError message")
	}
}

// BenchmarkRecorderAccess gates the pass-1 hot path: observation must
// not allocate, or profiling runs would diverge from the differential
// contract's cost model on the host.
func BenchmarkRecorderAccess(b *testing.B) {
	ps := hw.Default().PageSize
	prog := sumProg()
	if err := prog.Resolve(ps); err != nil {
		b.Fatal(err)
	}
	rec := NewRecorder(prog, ps)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := int64(i) * 100
		rec.Access(0, int64(i)*8, t, t+10, 0, 0, 0)
	}
}
