// Package profile implements the two-pass profile-guided prefetch mode:
// pass 1 runs a kernel with observation-only instrumentation, recording a
// per-reference histogram of run-time strides, fault classes, and stall
// times; pass 2 feeds the serialized profile back into the prefetching
// compiler, which replaces the static latency formula with observed miss
// latencies and inserts hints for indirect and opaque references that
// static analysis skips ("Semantic prefetching using forecast slices" and
// CAPre, PAPERS.md; ROADMAP item 3).
//
// Profiles are keyed by stable reference sites: a canonical enumeration
// of the program's array references that both passes derive independently
// from the same IR, so a profile written by one process can guide a
// compile in another.
package profile

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// Site is one static array-reference site of a program.
type Site struct {
	// ID is the site's index in the canonical enumeration.
	ID int
	// Key identifies the site across passes (and processes): access kind,
	// enclosing loop variables, array, and printed subscripts, with an
	// ordinal suffix for textual duplicates. It is stable as long as the
	// program shape is — scale parameters do not enter it.
	Key string

	Arr   *ir.Array
	Idx   []ir.IExpr
	Write bool
	Path  []*ir.Loop // enclosing loops, outermost first
}

// SitesOf enumerates a program's array-reference sites in canonical
// order. The walk mirrors the locality analysis's collect pass exactly —
// including its blind spots — so site i corresponds 1:1 to the i-th Ref
// of locality.Analyze on the same program.
func SitesOf(p *ir.Program) []Site {
	e := &siteEnum{keys: map[string]int{}}
	e.stmts(p.Body, nil)
	return e.sites
}

type siteEnum struct {
	sites []Site
	keys  map[string]int // base key → occurrences so far
}

func (e *siteEnum) stmts(stmts []ir.Stmt, path []*ir.Loop) {
	for _, s := range stmts {
		switch x := s.(type) {
		case *ir.Loop:
			sub := append(append([]*ir.Loop{}, path...), x)
			e.stmts(x.Body, sub)
		case ir.AssignF:
			e.add(x.Arr, x.Idx, true, path)
			e.fexpr(x.RHS, path)
			e.idx(x.Idx, path)
		case ir.AssignI:
			e.add(x.Arr, x.Idx, true, path)
			e.iexpr(x.RHS, path)
			e.idx(x.Idx, path)
		case ir.SetScalarF:
			e.fexpr(x.RHS, path)
		case ir.SetScalarI:
			e.iexpr(x.RHS, path)
		case ir.If:
			e.bexpr(x.Cond, path)
			e.stmts(x.Then, path)
			e.stmts(x.Else, path)
		}
		// Prefetch/Release statements are compiler output, never input.
	}
}

func (e *siteEnum) idx(idx []ir.IExpr, path []*ir.Loop) {
	for _, ix := range idx {
		e.iexpr(ix, path)
	}
}

func (e *siteEnum) fexpr(x ir.FExpr, path []*ir.Loop) {
	switch f := x.(type) {
	case ir.FLoad:
		e.add(f.Arr, f.Idx, false, path)
		e.idx(f.Idx, path)
	case ir.FBin:
		e.fexpr(f.A, path)
		e.fexpr(f.B, path)
	case ir.FNeg:
		e.fexpr(f.X, path)
	case ir.FromInt:
		e.iexpr(f.X, path)
	case ir.FCall:
		for _, arg := range f.Args {
			e.fexpr(arg, path)
		}
	}
}

func (e *siteEnum) iexpr(x ir.IExpr, path []*ir.Loop) {
	switch i := x.(type) {
	case ir.ILoad:
		e.add(i.Arr, i.Idx, false, path)
		e.idx(i.Idx, path)
	case ir.IBin:
		e.iexpr(i.A, path)
		e.iexpr(i.B, path)
	}
}

func (e *siteEnum) bexpr(x ir.BExpr, path []*ir.Loop) {
	switch b := x.(type) {
	case ir.CmpI:
		e.iexpr(b.A, path)
		e.iexpr(b.B, path)
	case ir.CmpF:
		e.fexpr(b.A, path)
		e.fexpr(b.B, path)
	case ir.And:
		e.bexpr(b.A, path)
		e.bexpr(b.B, path)
	case ir.Or:
		e.bexpr(b.A, path)
		e.bexpr(b.B, path)
	case ir.Not:
		e.bexpr(b.X, path)
	}
}

func (e *siteEnum) add(arr *ir.Array, idx []ir.IExpr, write bool, path []*ir.Loop) {
	var b strings.Builder
	if write {
		b.WriteByte('w')
	} else {
		b.WriteByte('r')
	}
	b.WriteByte('|')
	for i, l := range path {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(l.Var)
	}
	b.WriteByte('|')
	b.WriteString(arr.Name)
	b.WriteByte('[')
	for i, ix := range idx {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%v", ix)
	}
	b.WriteByte(']')
	key := b.String()
	if n := e.keys[key]; n > 0 {
		e.keys[key] = n + 1
		key = fmt.Sprintf("%s#%d", key, n)
	} else {
		e.keys[key] = 1
	}
	e.sites = append(e.sites, Site{
		ID:    len(e.sites),
		Key:   key,
		Arr:   arr,
		Idx:   idx,
		Write: write,
		Path:  append([]*ir.Loop{}, path...),
	})
}
