package profile

import (
	"sort"

	"repro/internal/ir"
)

// strideBuckets is the number of distinct strides tracked per site. The
// array is fixed-size so Access stays allocation-free; codes with more
// distinct strides spill into StrideOther, which only ever makes the
// compiler more conservative.
const strideBuckets = 8

type siteState struct {
	sp       SiteProfile
	strides  [strideBuckets]StridePair
	lastElem int64
	lastEnd  int64
	seen     bool
}

// Recorder accumulates a profile during pass 1. It is pure observation:
// the executor calls Access around each instrumented array access with
// simulated-time and fault-counter snapshots it already has, and the
// recorder never touches the simulation, so a profiling run is
// tick-identical and byte-identical to an uninstrumented one.
type Recorder struct {
	kernel   string
	pageSize int64
	sites    []Site
	st       []siteState
}

// NewRecorder prepares a recorder for one program (which must be the
// exact *ir.Program the executor will run). pageSize is stamped into the
// resulting artifact.
func NewRecorder(p *ir.Program, pageSize int64) *Recorder {
	sites := SitesOf(p)
	r := &Recorder{
		kernel:   p.Name,
		pageSize: pageSize,
		sites:    sites,
		st:       make([]siteState, len(sites)),
	}
	for i := range r.st {
		r.st[i].sp.Key = sites[i].Key
	}
	return r
}

// Sites exposes the canonical site enumeration the recorder was built
// over; the executor uses it to map its compiled access sites to IDs.
func (r *Recorder) Sites() []Site { return r.sites }

// Access records one execution of site id touching linear element elem.
// beginTicks/endTicks are the simulated user-time clock immediately
// before and after the access; faults/minor/hits are the VM's
// fault-class counter deltas across it. Access is on the instrumented
// hot path and must not allocate.
func (r *Recorder) Access(id int, elem int64, beginTicks, endTicks int64, faults, minor, hits int64) {
	s := &r.st[id]
	s.sp.Count++
	s.sp.Faults += faults
	s.sp.MinorFaults += minor
	s.sp.Hits += hits
	if faults > 0 {
		s.sp.StallTicks += endTicks - beginTicks
	}
	if s.seen {
		if faults == 0 && hits == 0 {
			// Fault-free gap: the per-iteration work signal. Stalled gaps
			// would double-count the latency the distance must hide.
			s.sp.InterTicks += endTicks - s.lastEnd
			s.sp.InterN++
		}
		s.noteStride(elem - s.lastElem)
	}
	s.seen = true
	s.lastElem = elem
	s.lastEnd = endTicks
}

func (s *siteState) noteStride(d int64) {
	for i := range s.strides {
		b := &s.strides[i]
		if b.Count == 0 {
			b.Stride, b.Count = d, 1
			return
		}
		if b.Stride == d {
			b.Count++
			return
		}
	}
	s.sp.StrideOther++
}

// Profile finalizes the recording. Every site appears in the artifact —
// a zero-count site records that the reference never executed, which is
// itself signal — with stride buckets sorted by descending count (ties
// by stride) for determinism.
func (r *Recorder) Profile() *Profile {
	p := &Profile{Kernel: r.kernel, PageSize: r.pageSize}
	for i := range r.st {
		s := &r.st[i]
		sp := s.sp
		for _, b := range s.strides {
			if b.Count > 0 {
				sp.Strides = append(sp.Strides, b)
			}
		}
		sort.Slice(sp.Strides, func(a, b int) bool {
			if sp.Strides[a].Count != sp.Strides[b].Count {
				return sp.Strides[a].Count > sp.Strides[b].Count
			}
			return sp.Strides[a].Stride < sp.Strides[b].Stride
		})
		p.Sites = append(p.Sites, sp)
	}
	return p
}

// ElemOf converts an element address within arr to the linear element
// index recorders key strides on.
func ElemOf(arr *ir.Array, addr int64) int64 {
	return (addr - arr.Base) / ir.ElemSize
}
