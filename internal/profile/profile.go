package profile

import (
	"encoding/json"
	"fmt"
)

// Version is the profile artifact format version. Readers reject any
// other version with a *VersionError: profiles are compiler input, and a
// silently misread artifact would turn into silently wrong plans.
const Version = 1

// StridePair is one observed inter-access stride (in elements) and how
// often it occurred.
type StridePair struct {
	Stride int64 `json:"stride"`
	Count  int64 `json:"count"`
}

// SiteProfile is the recorded behavior of one reference site.
type SiteProfile struct {
	Key string `json:"key"`

	// Count is how many times the site executed; Faults / MinorFaults /
	// Hits split the accesses that touched non-resident or freshly
	// arrived pages into the VM's fault classes (major faults, minor
	// faults, prefetched hits).
	Count       int64 `json:"count"`
	Faults      int64 `json:"faults"`
	MinorFaults int64 `json:"minor_faults"`
	Hits        int64 `json:"hits"`

	// StallTicks sums the simulated time the site spent stalled in major
	// faults; StallTicks/Faults is the observed miss latency the compiler
	// uses in place of the static hw.AvgPageRead formula.
	StallTicks int64 `json:"stall_ticks"`

	// InterTicks/InterN average the fault-free simulated time between
	// consecutive executions of the site: the per-iteration work a
	// prefetch distance has to divide the latency by.
	InterTicks int64 `json:"inter_ticks"`
	InterN     int64 `json:"inter_n"`

	// Strides is the inter-access stride histogram (top buckets by
	// count, deterministic order); StrideOther counts deltas that fell
	// outside the tracked buckets.
	Strides     []StridePair `json:"strides,omitempty"`
	StrideOther int64        `json:"stride_other,omitempty"`
}

// AvgStallTicks returns the observed mean major-fault latency, or 0 when
// the site never faulted.
func (s *SiteProfile) AvgStallTicks() int64 {
	if s.Faults <= 0 {
		return 0
	}
	return s.StallTicks / s.Faults
}

// AvgInterTicks returns the observed mean time between consecutive
// executions, or 0 when the site ran at most once.
func (s *SiteProfile) AvgInterTicks() int64 {
	if s.InterN <= 0 {
		return 0
	}
	return s.InterTicks / s.InterN
}

// DominantStride returns the most frequent observed stride and the
// fraction of all recorded deltas it accounts for.
func (s *SiteProfile) DominantStride() (stride int64, frac float64) {
	var total, best int64
	for _, p := range s.Strides {
		total += p.Count
		if p.Count > best {
			best, stride = p.Count, p.Stride
		}
	}
	total += s.StrideOther
	if total == 0 || best == 0 {
		return 0, 0
	}
	return stride, float64(best) / float64(total)
}

// Profile is one kernel's recorded execution profile.
type Profile struct {
	Kernel   string        `json:"kernel"`
	PageSize int64         `json:"page_size"`
	Sites    []SiteProfile `json:"sites"`
}

// Site returns the record for a site key, or nil.
func (p *Profile) Site(key string) *SiteProfile {
	for i := range p.Sites {
		if p.Sites[i].Key == key {
			return &p.Sites[i]
		}
	}
	return nil
}

// Set is the serialized artifact: profiles for any number of kernels,
// keyed by kernel (program) name.
type Set struct {
	Kernels map[string]*Profile
}

// NewSet returns an empty profile set.
func NewSet() *Set { return &Set{Kernels: map[string]*Profile{}} }

// Add inserts (or replaces) a kernel's profile.
func (s *Set) Add(p *Profile) {
	if s.Kernels == nil {
		s.Kernels = map[string]*Profile{}
	}
	s.Kernels[p.Kernel] = p
}

// For returns the profile recorded for a kernel name, or nil.
func (s *Set) For(kernel string) *Profile {
	if s == nil {
		return nil
	}
	return s.Kernels[kernel]
}

// VersionError reports an artifact written in an unsupported format
// version.
type VersionError struct{ Got int }

func (e *VersionError) Error() string {
	return fmt.Sprintf("profile: artifact version %d, this reader supports version %d", e.Got, Version)
}

// CorruptError reports an artifact that does not parse or fails
// validation.
type CorruptError struct {
	Reason string
	Err    error
}

func (e *CorruptError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("profile: corrupt artifact: %s: %v", e.Reason, e.Err)
	}
	return fmt.Sprintf("profile: corrupt artifact: %s", e.Reason)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// envelope is the on-disk shape.
type envelope struct {
	Version int                 `json:"version"`
	Kernels map[string]*Profile `json:"kernels"`
}

// Marshal serializes a set as a versioned artifact.
func Marshal(s *Set) ([]byte, error) {
	return json.MarshalIndent(envelope{Version: Version, Kernels: s.Kernels}, "", "  ")
}

// Unmarshal parses a versioned artifact. Unsupported versions fail with
// *VersionError; malformed or inconsistent data fails with
// *CorruptError.
func Unmarshal(data []byte) (*Set, error) {
	var head struct {
		Version *int `json:"version"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return nil, &CorruptError{Reason: "not a profile artifact", Err: err}
	}
	if head.Version == nil {
		return nil, &CorruptError{Reason: "missing version field"}
	}
	if *head.Version != Version {
		return nil, &VersionError{Got: *head.Version}
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, &CorruptError{Reason: "malformed body", Err: err}
	}
	s := &Set{Kernels: env.Kernels}
	if s.Kernels == nil {
		s.Kernels = map[string]*Profile{}
	}
	for name, p := range s.Kernels {
		if p == nil {
			return nil, &CorruptError{Reason: fmt.Sprintf("kernel %q: null profile", name)}
		}
		if p.Kernel != name {
			return nil, &CorruptError{Reason: fmt.Sprintf("kernel %q: profile names itself %q", name, p.Kernel)}
		}
		if p.PageSize <= 0 {
			return nil, &CorruptError{Reason: fmt.Sprintf("kernel %q: page size %d", name, p.PageSize)}
		}
		seen := map[string]bool{}
		for i := range p.Sites {
			sp := &p.Sites[i]
			if sp.Key == "" {
				return nil, &CorruptError{Reason: fmt.Sprintf("kernel %q: site %d has no key", name, i)}
			}
			if seen[sp.Key] {
				return nil, &CorruptError{Reason: fmt.Sprintf("kernel %q: duplicate site key %q", name, sp.Key)}
			}
			seen[sp.Key] = true
			if sp.Count < 0 || sp.Faults < 0 || sp.MinorFaults < 0 || sp.Hits < 0 ||
				sp.StallTicks < 0 || sp.InterTicks < 0 || sp.InterN < 0 || sp.StrideOther < 0 {
				return nil, &CorruptError{Reason: fmt.Sprintf("kernel %q: site %q has negative counts", name, sp.Key)}
			}
			for _, pr := range sp.Strides {
				if pr.Count <= 0 {
					return nil, &CorruptError{Reason: fmt.Sprintf("kernel %q: site %q has a non-positive stride count", name, sp.Key)}
				}
			}
		}
	}
	return s, nil
}

// Fingerprint hashes the profile's full content (kernel, page size, and
// every site record including stride histograms) into a 64-bit FNV-style
// value. A compile cache keys on it so that plans guided by different
// recorded profiles never alias, without holding the profile itself in
// the key. Sites are hashed in slice order, which the recorder emits
// deterministically.
func (p *Profile) Fingerprint() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	word := func(v uint64) { h = (h ^ v) * prime }
	str := func(s string) {
		word(uint64(len(s)))
		for i := 0; i < len(s); i++ {
			word(uint64(s[i]))
		}
	}
	str(p.Kernel)
	word(uint64(p.PageSize))
	word(uint64(len(p.Sites)))
	for i := range p.Sites {
		s := &p.Sites[i]
		str(s.Key)
		word(uint64(s.Count))
		word(uint64(s.Faults))
		word(uint64(s.MinorFaults))
		word(uint64(s.Hits))
		word(uint64(s.StallTicks))
		word(uint64(s.InterTicks))
		word(uint64(s.InterN))
		word(uint64(len(s.Strides)))
		for _, sp := range s.Strides {
			word(uint64(sp.Stride))
			word(uint64(sp.Count))
		}
		word(uint64(s.StrideOther))
	}
	return h
}
