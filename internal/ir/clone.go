package ir

// Clone returns a deep copy of the program: fresh Param and Array
// structs, and a body rebuilt so every array reference points at the
// copies. A clone is what a compile cache must own — the caller's
// program instance can be re-parameterized and re-resolved at will
// (SetParam, Resolve with another page size) without mutating the array
// geometry a cached compilation baked into its closures.
//
// Resolution state is carried over: if the receiver is resolved, the
// clone is too, with the same Dims/Strides/Base.
func (p *Program) Clone() *Program {
	q := &Program{
		Name:     p.Name,
		NInt:     p.NInt,
		NFloat:   p.NFloat,
		ScalarsI: make(map[string]int, len(p.ScalarsI)),
		ScalarsF: make(map[string]int, len(p.ScalarsF)),
		Seed:     p.Seed,
		resolved: p.resolved,
	}
	for k, v := range p.ScalarsI {
		q.ScalarsI[k] = v
	}
	for k, v := range p.ScalarsF {
		q.ScalarsF[k] = v
	}
	q.Params = make([]*Param, len(p.Params))
	for i, prm := range p.Params {
		cp := *prm
		q.Params[i] = &cp
	}
	amap := make(map[*Array]*Array, len(p.Arrays))
	q.Arrays = make([]*Array, len(p.Arrays))
	for i, a := range p.Arrays {
		ca := &Array{
			Name:  a.Name,
			Kind:  a.Kind,
			Base:  a.Base,
			Elems: a.Elems,
		}
		ca.DimExprs = append([]IExpr(nil), a.DimExprs...)
		ca.Dims = append([]int64(nil), a.Dims...)
		ca.Strides = append([]int64(nil), a.Strides...)
		q.Arrays[i] = ca
		amap[a] = ca
	}
	q.Body = cloneStmts(p.Body, amap)
	return q
}

func cloneStmts(body []Stmt, am map[*Array]*Array) []Stmt {
	if body == nil {
		return nil
	}
	out := make([]Stmt, len(body))
	for i, s := range body {
		out[i] = cloneStmt(s, am)
	}
	return out
}

func cloneStmt(s Stmt, am map[*Array]*Array) Stmt {
	switch x := s.(type) {
	case *Loop:
		cl := *x
		cl.Lo = cloneIExpr(x.Lo, am)
		cl.Hi = cloneIExpr(x.Hi, am)
		cl.Body = cloneStmts(x.Body, am)
		return &cl
	case AssignF:
		return AssignF{Arr: am[x.Arr], Idx: cloneIdx(x.Idx, am), RHS: cloneFExpr(x.RHS, am)}
	case AssignI:
		return AssignI{Arr: am[x.Arr], Idx: cloneIdx(x.Idx, am), RHS: cloneIExpr(x.RHS, am)}
	case SetScalarF:
		x.RHS = cloneFExpr(x.RHS, am)
		return x
	case SetScalarI:
		x.RHS = cloneIExpr(x.RHS, am)
		return x
	case If:
		return If{
			Cond: cloneBExpr(x.Cond, am),
			Then: cloneStmts(x.Then, am),
			Else: cloneStmts(x.Else, am),
		}
	case Prefetch:
		return Prefetch{Arr: am[x.Arr], Idx: cloneIdx(x.Idx, am), Pages: cloneIExpr(x.Pages, am)}
	case Release:
		return Release{Arr: am[x.Arr], Idx: cloneIdx(x.Idx, am), Pages: cloneIExpr(x.Pages, am)}
	case PrefetchRelease:
		return PrefetchRelease{
			PfArr: am[x.PfArr], PfIdx: cloneIdx(x.PfIdx, am), PfPages: cloneIExpr(x.PfPages, am),
			RelArr: am[x.RelArr], RelIdx: cloneIdx(x.RelIdx, am), RelPages: cloneIExpr(x.RelPages, am),
		}
	default:
		// Unknown statement kinds pass through by reference; the compiler
		// will reject them with its own diagnostic.
		return s
	}
}

func cloneIdx(idx []IExpr, am map[*Array]*Array) []IExpr {
	if idx == nil {
		return nil
	}
	out := make([]IExpr, len(idx))
	for i, e := range idx {
		out[i] = cloneIExpr(e, am)
	}
	return out
}

func cloneIExpr(e IExpr, am map[*Array]*Array) IExpr {
	switch x := e.(type) {
	case IBin:
		x.A = cloneIExpr(x.A, am)
		x.B = cloneIExpr(x.B, am)
		return x
	case ILoad:
		return ILoad{Arr: am[x.Arr], Idx: cloneIdx(x.Idx, am)}
	case IFromF:
		return IFromF{X: cloneFExpr(x.X, am)}
	default: // IConst, ISlot: pure values
		return e
	}
}

func cloneFExpr(e FExpr, am map[*Array]*Array) FExpr {
	switch x := e.(type) {
	case FLoad:
		return FLoad{Arr: am[x.Arr], Idx: cloneIdx(x.Idx, am)}
	case FBin:
		x.A = cloneFExpr(x.A, am)
		x.B = cloneFExpr(x.B, am)
		return x
	case FNeg:
		return FNeg{X: cloneFExpr(x.X, am)}
	case FromInt:
		return FromInt{X: cloneIExpr(x.X, am)}
	case FCall:
		args := make([]FExpr, len(x.Args))
		for i, a := range x.Args {
			args[i] = cloneFExpr(a, am)
		}
		return FCall{Fn: x.Fn, Args: args}
	default: // FConst, FScalar
		return e
	}
}

func cloneBExpr(e BExpr, am map[*Array]*Array) BExpr {
	switch x := e.(type) {
	case CmpI:
		x.A = cloneIExpr(x.A, am)
		x.B = cloneIExpr(x.B, am)
		return x
	case CmpF:
		x.A = cloneFExpr(x.A, am)
		x.B = cloneFExpr(x.B, am)
		return x
	case And:
		return And{A: cloneBExpr(x.A, am), B: cloneBExpr(x.B, am)}
	case Or:
		return Or{A: cloneBExpr(x.A, am), B: cloneBExpr(x.B, am)}
	case Not:
		return Not{X: cloneBExpr(x.X, am)}
	default:
		return e
	}
}
