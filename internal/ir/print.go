package ir

import (
	"fmt"
	"strings"
)

// Print renders a program as C-like source, in the style of the paper's
// Figure 2: loops, assignments, and the inserted prefetch/release calls.
func Print(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "/* program %s */\n", p.Name)
	for _, prm := range p.Params {
		known := ""
		if !prm.Known {
			known = " /* unknown at compile time */"
		}
		fmt.Fprintf(&b, "param %s = %d;%s\n", prm.Name, prm.Val, known)
	}
	for _, a := range p.Arrays {
		kind := "double"
		if a.Kind == I64 {
			kind = "long"
		}
		fmt.Fprintf(&b, "%s %s", kind, a.Name)
		for _, d := range a.DimExprs {
			fmt.Fprintf(&b, "[%s]", d)
		}
		b.WriteString(";\n")
	}
	b.WriteString("\n")
	printStmts(&b, p.Body, 0)
	return b.String()
}

// PrintStmts renders a statement list (used in tests and error messages).
func PrintStmts(stmts []Stmt) string {
	var b strings.Builder
	printStmts(&b, stmts, 0)
	return b.String()
}

func printStmts(b *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("    ", depth)
	for _, s := range stmts {
		switch x := s.(type) {
		case *Loop:
			fmt.Fprintf(b, "%sfor (%s = %s; %s < %s; %s += %d) {\n",
				ind, x.Var, x.Lo, x.Var, x.Hi, x.Var, x.Step)
			printStmts(b, x.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case AssignF:
			fmt.Fprintf(b, "%s%s = %s;\n", ind, refString(x.Arr, x.Idx), x.RHS)
		case AssignI:
			fmt.Fprintf(b, "%s%s = %s;\n", ind, refString(x.Arr, x.Idx), x.RHS)
		case SetScalarF:
			fmt.Fprintf(b, "%s%s = %s;\n", ind, x.Name, x.RHS)
		case SetScalarI:
			fmt.Fprintf(b, "%s%s = %s;\n", ind, x.Name, x.RHS)
		case If:
			fmt.Fprintf(b, "%sif %s {\n", ind, x.Cond)
			printStmts(b, x.Then, depth+1)
			if len(x.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", ind)
				printStmts(b, x.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case Prefetch:
			fmt.Fprintf(b, "%sprefetch_block(&%s, %s);\n", ind, refString(x.Arr, x.Idx), x.Pages)
		case Release:
			fmt.Fprintf(b, "%srelease_block(&%s, %s);\n", ind, refString(x.Arr, x.Idx), x.Pages)
		case PrefetchRelease:
			fmt.Fprintf(b, "%sprefetch_release_block(&%s, &%s, %s, %s);\n",
				ind, refString(x.PfArr, x.PfIdx), refString(x.RelArr, x.RelIdx), x.PfPages, x.RelPages)
		default:
			fmt.Fprintf(b, "%s/* unknown stmt %T */\n", ind, s)
		}
	}
}

// CountStmts returns the number of statements in a tree (tests use it to
// check transformation growth).
func CountStmts(stmts []Stmt) int {
	n := 0
	for _, s := range stmts {
		n++
		switch x := s.(type) {
		case *Loop:
			n += CountStmts(x.Body)
		case If:
			n += CountStmts(x.Then) + CountStmts(x.Else)
		}
	}
	return n
}

// WalkStmts calls fn for every statement in the tree, parents before
// children.
func WalkStmts(stmts []Stmt, fn func(Stmt)) {
	for _, s := range stmts {
		fn(s)
		switch x := s.(type) {
		case *Loop:
			WalkStmts(x.Body, fn)
		case If:
			WalkStmts(x.Then, fn)
			WalkStmts(x.Else, fn)
		}
	}
}
