package ir

// Stmt is a statement.
type Stmt interface{ isStmt() }

// Loop is a counted for-loop: for Var = Lo; Var < Hi; Var += Step. The
// body may contain nested loops. EstTrip is the compiler's trip-count
// estimate when the bounds are not known at compile time (the paper's
// compiler "assumes large"); zero means use the analyzer's default.
type Loop struct {
	Var     string
	Slot    int
	Lo, Hi  IExpr
	Step    int64
	Body    []Stmt
	EstTrip int64
}

// AssignF stores a float expression to a float64 array element.
type AssignF struct {
	Arr *Array
	Idx []IExpr
	RHS FExpr
}

// AssignI stores an integer expression to an int64 array element.
type AssignI struct {
	Arr *Array
	Idx []IExpr
	RHS IExpr
}

// SetScalarF assigns a float scalar variable.
type SetScalarF struct {
	Slot int
	Name string
	RHS  FExpr
}

// SetScalarI assigns an integer scalar variable.
type SetScalarI struct {
	Slot int
	Name string
	RHS  IExpr
}

// If executes Then or Else depending on Cond.
type If struct {
	Cond BExpr
	Then []Stmt
	Else []Stmt
}

// Prefetch is a compiler-inserted non-binding prefetch hint: fetch Pages
// pages starting at the page containing &Arr[Idx...]. It is routed through
// the run-time layer at execution.
type Prefetch struct {
	Arr   *Array
	Idx   []IExpr
	Pages IExpr
}

// Release is a compiler-inserted release hint: Pages pages starting at the
// page containing &Arr[Idx...] will not be needed soon.
type Release struct {
	Arr   *Array
	Idx   []IExpr
	Pages IExpr
}

// PrefetchRelease is the bundled form (prefetch_release_block in
// Figure 2): one run-time call, at most one system call.
type PrefetchRelease struct {
	PfArr    *Array
	PfIdx    []IExpr
	PfPages  IExpr
	RelArr   *Array
	RelIdx   []IExpr
	RelPages IExpr
}

func (*Loop) isStmt()           {}
func (AssignF) isStmt()         {}
func (AssignI) isStmt()         {}
func (SetScalarF) isStmt()      {}
func (SetScalarI) isStmt()      {}
func (If) isStmt()              {}
func (Prefetch) isStmt()        {}
func (Release) isStmt()         {}
func (PrefetchRelease) isStmt() {}
