package ir

import "math"

// Structural fingerprinting: a 64-bit hash over everything about a
// program that can influence compilation — name, slot layout, parameter
// bindings and their compile-time visibility, array declarations, and
// the full statement tree. Two programs with equal fingerprints are
// structurally identical for the compiler's purposes (up to hash
// collision), so a compile-once cache can key on the fingerprint plus
// machine geometry instead of re-deriving the plan. The walk allocates
// nothing: it is run on every execution of a cached kernel, where the
// whole point is to stop paying per-run compile garbage.

const (
	fpOffset uint64 = 14695981039346656037
	fpPrime  uint64 = 1099511628211
)

type fp uint64

func (h *fp) word(v uint64) {
	*h = fp((uint64(*h) ^ v) * fpPrime)
}

func (h *fp) str(s string) {
	h.word(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.word(uint64(s[i]))
	}
}

func (h *fp) tag(t uint64) { h.word(t<<56 | 0x5a) }

// Fingerprint hashes the program's compile-relevant structure. Call it
// on the program exactly as it will be handed to the compiler (same
// parameter bindings); resolution state does not need to match, since
// array layout is a deterministic function of the hashed declarations,
// parameters, and the page size the cache keys on separately.
func (p *Program) Fingerprint() uint64 {
	h := fp(fpOffset)
	h.str(p.Name)
	h.word(uint64(p.Seed))
	h.word(uint64(p.NInt))
	h.word(uint64(p.NFloat))
	h.word(uint64(len(p.Params)))
	for _, prm := range p.Params {
		h.str(prm.Name)
		h.word(uint64(prm.Slot))
		h.word(uint64(prm.Val))
		if prm.Known {
			h.word(1)
		} else {
			h.word(0)
		}
	}
	h.word(uint64(len(p.Arrays)))
	for _, a := range p.Arrays {
		h.str(a.Name)
		h.word(uint64(a.Kind))
		h.word(uint64(len(a.DimExprs)))
		for _, de := range a.DimExprs {
			h.iexpr(de)
		}
	}
	h.stmts(p.Body)
	return uint64(h)
}

func (h *fp) stmts(body []Stmt) {
	h.word(uint64(len(body)))
	for _, s := range body {
		h.stmt(s)
	}
}

func (h *fp) stmt(s Stmt) {
	switch x := s.(type) {
	case *Loop:
		h.tag(1)
		h.word(uint64(x.Slot))
		h.iexpr(x.Lo)
		h.iexpr(x.Hi)
		h.word(uint64(x.Step))
		h.word(uint64(x.EstTrip))
		h.stmts(x.Body)
	case AssignF:
		h.tag(2)
		h.ref(x.Arr, x.Idx)
		h.fexpr(x.RHS)
	case AssignI:
		h.tag(3)
		h.ref(x.Arr, x.Idx)
		h.iexpr(x.RHS)
	case SetScalarF:
		h.tag(4)
		h.word(uint64(x.Slot))
		h.fexpr(x.RHS)
	case SetScalarI:
		h.tag(5)
		h.word(uint64(x.Slot))
		h.iexpr(x.RHS)
	case If:
		h.tag(6)
		h.bexpr(x.Cond)
		h.stmts(x.Then)
		h.stmts(x.Else)
	case Prefetch:
		h.tag(7)
		h.ref(x.Arr, x.Idx)
		h.iexpr(x.Pages)
	case Release:
		h.tag(8)
		h.ref(x.Arr, x.Idx)
		h.iexpr(x.Pages)
	case PrefetchRelease:
		h.tag(9)
		h.ref(x.PfArr, x.PfIdx)
		h.iexpr(x.PfPages)
		h.ref(x.RelArr, x.RelIdx)
		h.iexpr(x.RelPages)
	default:
		h.tag(63) // future statement kinds still perturb the hash
	}
}

func (h *fp) ref(a *Array, idx []IExpr) {
	h.str(a.Name)
	h.word(uint64(len(idx)))
	for _, ix := range idx {
		h.iexpr(ix)
	}
}

func (h *fp) iexpr(e IExpr) {
	switch x := e.(type) {
	case IConst:
		h.tag(10)
		h.word(uint64(x.Val))
	case ISlot:
		h.tag(11)
		h.word(uint64(x.Slot))
		h.word(uint64(x.Kind))
	case IBin:
		h.tag(12)
		h.word(uint64(x.Op))
		h.iexpr(x.A)
		h.iexpr(x.B)
	case ILoad:
		h.tag(13)
		h.ref(x.Arr, x.Idx)
	case IFromF:
		h.tag(14)
		h.fexpr(x.X)
	default:
		h.tag(62)
	}
}

func (h *fp) fexpr(e FExpr) {
	switch x := e.(type) {
	case FConst:
		h.tag(20)
		h.word(math.Float64bits(x.Val))
	case FScalar:
		h.tag(21)
		h.word(uint64(x.Slot))
	case FLoad:
		h.tag(22)
		h.ref(x.Arr, x.Idx)
	case FBin:
		h.tag(23)
		h.word(uint64(x.Op))
		h.fexpr(x.A)
		h.fexpr(x.B)
	case FNeg:
		h.tag(24)
		h.fexpr(x.X)
	case FromInt:
		h.tag(25)
		h.iexpr(x.X)
	case FCall:
		h.tag(26)
		h.word(uint64(x.Fn))
		h.word(uint64(len(x.Args)))
		for _, a := range x.Args {
			h.fexpr(a)
		}
	default:
		h.tag(61)
	}
}

func (h *fp) bexpr(e BExpr) {
	switch x := e.(type) {
	case CmpI:
		h.tag(30)
		h.word(uint64(x.Op))
		h.iexpr(x.A)
		h.iexpr(x.B)
	case CmpF:
		h.tag(31)
		h.word(uint64(x.Op))
		h.fexpr(x.A)
		h.fexpr(x.B)
	case And:
		h.tag(32)
		h.bexpr(x.A)
		h.bexpr(x.B)
	case Or:
		h.tag(33)
		h.bexpr(x.A)
		h.bexpr(x.B)
	case Not:
		h.tag(34)
		h.bexpr(x.X)
	default:
		h.tag(60)
	}
}
