// Affine-nest analysis: the shared vocabulary between the prefetching
// compiler and the executor's nest compiler. A loop nest is summarized
// by which integer slots its body writes, which expressions are pure
// (evaluable without touching simulated memory), and which subscripts
// are affine in an induction variable with a loop-invariant remainder.
// The executor uses these answers to decide, per loop and per access
// site, whether a specialized driver is exact — and when it is not, to
// say why.
package ir

// WrittenSlots adds every integer slot the statement list assigns to
// dst: scalar assignments and the induction variables of nested loops.
// (Float scalars live in a different slot space and are irrelevant to
// subscript analysis.) A nil dst allocates a fresh map.
func WrittenSlots(body []Stmt, dst map[int]bool) map[int]bool {
	if dst == nil {
		dst = make(map[int]bool)
	}
	for _, s := range body {
		switch x := s.(type) {
		case *Loop:
			dst[x.Slot] = true
			WrittenSlots(x.Body, dst)
		case SetScalarI:
			dst[x.Slot] = true
		case If:
			WrittenSlots(x.Then, dst)
			WrittenSlots(x.Else, dst)
		}
	}
	return dst
}

// PureIExpr reports whether x can be evaluated without any simulated
// memory access or float conversion: only constants, slot reads, and
// integer arithmetic. Pure expressions may be re-evaluated or reordered
// freely between kernel crossings — their value depends only on the
// integer slot state.
func PureIExpr(x IExpr) bool {
	switch e := x.(type) {
	case IConst, ISlot:
		return true
	case IBin:
		return PureIExpr(e.A) && PureIExpr(e.B)
	}
	return false
}

// MayTrapIExpr reports whether evaluating x can panic on its own
// (division or modulus by zero). Pure, trap-free expressions are the
// ones an optimizer may hoist to a place the original program would
// not have evaluated them.
func MayTrapIExpr(x IExpr) bool {
	if e, ok := x.(IBin); ok {
		if e.Op == IDiv || e.Op == IMod {
			return true
		}
		return MayTrapIExpr(e.A) || MayTrapIExpr(e.B)
	}
	return false
}

// IExprSlots calls f for every integer slot x reads (with repetition).
func IExprSlots(x IExpr, f func(slot int)) {
	switch e := x.(type) {
	case ISlot:
		f(e.Slot)
	case IBin:
		IExprSlots(e.A, f)
		IExprSlots(e.B, f)
	case ILoad:
		for _, ix := range e.Idx {
			IExprSlots(ix, f)
		}
	case IFromF:
		// Float expressions read float slots, not integer slots; the
		// integer subscripts inside any FLoad still matter.
		fexprISlots(e.X, f)
	}
}

func fexprISlots(x FExpr, f func(slot int)) {
	switch e := x.(type) {
	case FLoad:
		for _, ix := range e.Idx {
			IExprSlots(ix, f)
		}
	case FBin:
		fexprISlots(e.A, f)
		fexprISlots(e.B, f)
	case FNeg:
		fexprISlots(e.X, f)
	case FromInt:
		IExprSlots(e.X, f)
	case FCall:
		for _, a := range e.Args {
			fexprISlots(a, f)
		}
	}
}

// ConstFold evaluates x when it is a compile-time integer constant
// (literals combined with +, -, ×).
func ConstFold(x IExpr) (int64, bool) {
	switch e := x.(type) {
	case IConst:
		return e.Val, true
	case IBin:
		va, oka := ConstFold(e.A)
		vb, okb := ConstFold(e.B)
		if !oka || !okb {
			return 0, false
		}
		switch e.Op {
		case IAdd:
			return va + vb, true
		case ISub:
			return va - vb, true
		case IMul:
			return va * vb, true
		}
	}
	return 0, false
}

// AffineCoeff reports whether x = coeff·slot + rest, with rest invariant
// under the given predicate (invariant(s) answers "is slot s unchanged
// across the loop?"), and returns the compile-time coefficient. Indirect
// (ILoad) and float-derived (IFromF) subscripts are never affine.
// Division, modulus, shifts, and min/max preserve affine form only when
// both operands are invariant (coefficient zero).
func AffineCoeff(x IExpr, slot int, invariant func(int) bool) (int64, bool) {
	switch e := x.(type) {
	case IConst:
		return 0, true
	case ISlot:
		if e.Slot == slot {
			return 1, true
		}
		if invariant != nil && !invariant(e.Slot) {
			return 0, false
		}
		return 0, true
	case IBin:
		ca, oka := AffineCoeff(e.A, slot, invariant)
		cb, okb := AffineCoeff(e.B, slot, invariant)
		if !oka || !okb {
			return 0, false
		}
		switch e.Op {
		case IAdd:
			return ca + cb, true
		case ISub:
			return ca - cb, true
		case IMul:
			if va, ok := ConstFold(e.A); ok {
				return va * cb, true
			}
			if vb, ok := ConstFold(e.B); ok {
				return ca * vb, true
			}
			return 0, ca == 0 && cb == 0
		default:
			return 0, ca == 0 && cb == 0
		}
	}
	return 0, false
}

// LoopSummary is the nest-level shape of one loop, as the executor's
// specializer needs it.
type LoopSummary struct {
	// Innermost is true when the body contains no nested loop.
	Innermost bool
	// HasIf is true when the body contains control flow.
	HasIf bool
	// HasHint is true when the body contains a prefetch or release hint
	// (a potential kernel crossing inside the iteration).
	HasHint bool
	// WritesInductionVar is true when the body assigns the loop's own
	// slot.
	WritesInductionVar bool
	// Written holds every integer slot the body writes, including
	// nested induction variables.
	Written map[int]bool
}

// Summarize computes the LoopSummary of l's body.
func Summarize(l *Loop) LoopSummary {
	s := LoopSummary{Innermost: true, Written: WrittenSlots(l.Body, nil)}
	var walk func(body []Stmt)
	walk = func(body []Stmt) {
		for _, st := range body {
			switch x := st.(type) {
			case *Loop:
				s.Innermost = false
				walk(x.Body)
			case If:
				s.HasIf = true
				walk(x.Then)
				walk(x.Else)
			case Prefetch, Release, PrefetchRelease:
				s.HasHint = true
			}
		}
	}
	walk(l.Body)
	s.WritesInductionVar = func() bool {
		var scan func(body []Stmt) bool
		scan = func(body []Stmt) bool {
			for _, st := range body {
				switch x := st.(type) {
				case SetScalarI:
					if x.Slot == l.Slot {
						return true
					}
				case *Loop:
					if x.Slot == l.Slot || scan(x.Body) {
						return true
					}
				case If:
					if scan(x.Then) || scan(x.Else) {
						return true
					}
				}
			}
			return false
		}
		return scan(l.Body)
	}()
	return s
}
