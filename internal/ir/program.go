package ir

import "fmt"

// ElemKind is an array's element type. Both kinds are 8 bytes wide.
type ElemKind uint8

const (
	// F64 is a float64 array.
	F64 ElemKind = iota
	// I64 is an int64 array.
	I64
)

// ElemSize is the size in bytes of every array element.
const ElemSize = 8

// Array is a (possibly multi-dimensional) array in the program's virtual
// address space. Extents may depend on parameters; Resolve computes the
// concrete layout.
type Array struct {
	Name     string
	Kind     ElemKind
	DimExprs []IExpr

	// Resolved by Program.Resolve:
	Dims    []int64
	Strides []int64 // row-major, in elements
	Base    int64   // byte address, page-aligned
	Elems   int64
}

// Bytes returns the array's resolved size in bytes.
func (a *Array) Bytes() int64 { return a.Elems * ElemSize }

// Param is a program parameter: an integer bound before compilation and
// execution. Known reports whether the compiler may see its value; the
// paper's problematic loops have bounds whose values are only known at
// run time, which is modeled by Known == false.
type Param struct {
	Name  string
	Slot  int
	Val   int64
	Known bool
}

// Program is one kernel: parameters, arrays, scalars, and a statement
// body. Integer slots (parameters, loop variables, integer scalars) and
// float slots (float scalars) are numbered densely for fast execution.
type Program struct {
	Name   string
	Params []*Param
	Arrays []*Array
	Body   []Stmt

	NInt   int // integer slots allocated
	NFloat int // float slots allocated

	// Scalar name → slot registries (parameters live in ScalarsI too).
	ScalarsI map[string]int
	ScalarsF map[string]int

	Seed int64 // seed for the Randlc intrinsic stream

	resolved bool
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program {
	return &Program{
		Name:     name,
		Seed:     314159265,
		ScalarsI: map[string]int{},
		ScalarsF: map[string]int{},
	}
}

// NewParam declares a parameter with its value. known controls whether
// the compiler's analyzer may use the value.
func (p *Program) NewParam(name string, val int64, known bool) ISlot {
	prm := &Param{Name: name, Slot: p.NInt, Val: val, Known: known}
	p.NInt++
	p.Params = append(p.Params, prm)
	return ISlot{Slot: prm.Slot, Name: name, Kind: SlotParam}
}

// SetParam rebinds a parameter's value (e.g. to sweep problem sizes).
func (p *Program) SetParam(name string, val int64) error {
	for _, prm := range p.Params {
		if prm.Name == name {
			prm.Val = val
			p.resolved = false
			return nil
		}
	}
	return fmt.Errorf("ir: program %s has no parameter %q", p.Name, name)
}

// ParamValue returns a parameter's current value.
func (p *Program) ParamValue(name string) (int64, bool) {
	for _, prm := range p.Params {
		if prm.Name == name {
			return prm.Val, true
		}
	}
	return 0, false
}

// NewLoopVar allocates a loop-variable slot.
func (p *Program) NewLoopVar(name string) ISlot {
	s := ISlot{Slot: p.NInt, Name: name, Kind: SlotLoopVar}
	p.NInt++
	return s
}

// NewScalarI allocates an integer scalar.
func (p *Program) NewScalarI(name string) ISlot {
	s := ISlot{Slot: p.NInt, Name: name, Kind: SlotScalarI}
	p.NInt++
	p.ScalarsI[name] = s.Slot
	return s
}

// NewScalarF allocates a float scalar.
func (p *Program) NewScalarF(name string) FScalar {
	s := FScalar{Slot: p.NFloat, Name: name}
	p.NFloat++
	p.ScalarsF[name] = s.Slot
	return s
}

// NewArrayF declares a float64 array with the given extents.
func (p *Program) NewArrayF(name string, dims ...IExpr) *Array {
	a := &Array{Name: name, Kind: F64, DimExprs: dims}
	p.Arrays = append(p.Arrays, a)
	return a
}

// NewArrayI declares an int64 array with the given extents.
func (p *Program) NewArrayI(name string, dims ...IExpr) *Array {
	a := &Array{Name: name, Kind: I64, DimExprs: dims}
	p.Arrays = append(p.Arrays, a)
	return a
}

// ArrayByName returns the named array, or nil.
func (p *Program) ArrayByName(name string) *Array {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// paramEnv returns a slot→value map of the current parameter bindings.
func (p *Program) paramEnv() map[int]int64 {
	m := make(map[int]int64, len(p.Params))
	for _, prm := range p.Params {
		m[prm.Slot] = prm.Val
	}
	return m
}

// knownParamEnv returns only compile-time-known bindings (the analyzer's
// view).
func (p *Program) knownParamEnv() map[int]int64 {
	m := make(map[int]int64, len(p.Params))
	for _, prm := range p.Params {
		if prm.Known {
			m[prm.Slot] = prm.Val
		}
	}
	return m
}

// Resolve computes every array's concrete layout under the current
// parameter bindings, assigning page-aligned base addresses in
// declaration order. It must be called (directly or via the executor)
// before running or analyzing the program.
func (p *Program) Resolve(pageSize int64) error {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return fmt.Errorf("ir: bad page size %d", pageSize)
	}
	env := p.paramEnv()
	var next int64
	for _, a := range p.Arrays {
		a.Dims = a.Dims[:0]
		a.Elems = 1
		for _, de := range a.DimExprs {
			v, ok := ConstEval(de, env)
			if !ok {
				return fmt.Errorf("ir: array %s: extent %s not evaluable from parameters", a.Name, de)
			}
			if v <= 0 {
				return fmt.Errorf("ir: array %s: extent %s = %d not positive", a.Name, de, v)
			}
			a.Dims = append(a.Dims, v)
			a.Elems *= v
		}
		a.Strides = make([]int64, len(a.Dims))
		s := int64(1)
		for d := len(a.Dims) - 1; d >= 0; d-- {
			a.Strides[d] = s
			s *= a.Dims[d]
		}
		a.Base = next
		bytes := a.Elems * ElemSize
		next += (bytes + pageSize - 1) / pageSize * pageSize
	}
	p.resolved = true
	return nil
}

// Resolved reports whether Resolve has run under the current bindings.
func (p *Program) Resolved() bool { return p.resolved }

// TotalBytes returns the resolved address-space footprint of all arrays.
func (p *Program) TotalBytes(pageSize int64) int64 {
	var total int64
	for _, a := range p.Arrays {
		bytes := a.Elems * ElemSize
		total += (bytes + pageSize - 1) / pageSize * pageSize
	}
	return total
}

// ConstEval evaluates an integer expression using only the given slot
// bindings. It reports false if the expression references an unbound slot
// or an array load.
func ConstEval(e IExpr, env map[int]int64) (int64, bool) {
	switch x := e.(type) {
	case IConst:
		return x.Val, true
	case ISlot:
		v, ok := env[x.Slot]
		return v, ok
	case IBin:
		a, ok := ConstEval(x.A, env)
		if !ok {
			return 0, false
		}
		b, ok := ConstEval(x.B, env)
		if !ok {
			return 0, false
		}
		return applyIBin(x.Op, a, b), true
	default:
		return 0, false
	}
}

func applyIBin(op IBinOp, a, b int64) int64 {
	switch op {
	case IAdd:
		return a + b
	case ISub:
		return a - b
	case IMul:
		return a * b
	case IDiv:
		if b == 0 {
			panic("ir: division by zero")
		}
		return a / b
	case IMod:
		if b == 0 {
			panic("ir: modulo by zero")
		}
		return a % b
	case IShl:
		return a << uint(b)
	case IShr:
		return a >> uint(b)
	case IMin:
		if a < b {
			return a
		}
		return b
	case IMax:
		if a > b {
			return a
		}
		return b
	}
	panic(fmt.Sprintf("ir: unknown int op %d", op))
}

// ---- expression construction helpers ------------------------------------

// Int returns an integer literal.
func Int(v int64) IExpr { return IConst{Val: v} }

// Flt returns a float literal.
func Flt(v float64) FExpr { return FConst{Val: v} }

// AddI returns a+b.
func AddI(a, b IExpr) IExpr { return IBin{Op: IAdd, A: a, B: b} }

// SubI returns a−b.
func SubI(a, b IExpr) IExpr { return IBin{Op: ISub, A: a, B: b} }

// MulI returns a·b.
func MulI(a, b IExpr) IExpr { return IBin{Op: IMul, A: a, B: b} }

// DivI returns a/b (truncating).
func DivI(a, b IExpr) IExpr { return IBin{Op: IDiv, A: a, B: b} }

// ModI returns a mod b.
func ModI(a, b IExpr) IExpr { return IBin{Op: IMod, A: a, B: b} }

// ShlI returns a<<b.
func ShlI(a, b IExpr) IExpr { return IBin{Op: IShl, A: a, B: b} }

// ShrI returns a>>b.
func ShrI(a, b IExpr) IExpr { return IBin{Op: IShr, A: a, B: b} }

// MinI returns min(a,b).
func MinI(a, b IExpr) IExpr { return IBin{Op: IMin, A: a, B: b} }

// MaxI returns max(a,b).
func MaxI(a, b IExpr) IExpr { return IBin{Op: IMax, A: a, B: b} }

// LoadI reads an int64 array element.
func LoadI(arr *Array, idx ...IExpr) IExpr { return ILoad{Arr: arr, Idx: idx} }

// AddF returns a+b.
func AddF(a, b FExpr) FExpr { return FBin{Op: FAdd, A: a, B: b} }

// SubF returns a−b.
func SubF(a, b FExpr) FExpr { return FBin{Op: FSub, A: a, B: b} }

// MulF returns a·b.
func MulF(a, b FExpr) FExpr { return FBin{Op: FMul, A: a, B: b} }

// DivF returns a/b.
func DivF(a, b FExpr) FExpr { return FBin{Op: FDiv, A: a, B: b} }

// LoadF reads a float64 array element.
func LoadF(arr *Array, idx ...IExpr) FExpr { return FLoad{Arr: arr, Idx: idx} }

// Call invokes an intrinsic.
func Call(fn Intrinsic, args ...FExpr) FExpr { return FCall{Fn: fn, Args: args} }

// For builds a loop statement: for v = lo; v < hi; v += step.
func For(v ISlot, lo, hi IExpr, step int64, body ...Stmt) *Loop {
	if step == 0 {
		panic("ir: zero loop step")
	}
	return &Loop{Var: v.Name, Slot: v.Slot, Lo: lo, Hi: hi, Step: step, Body: body}
}

// StoreF builds a float array assignment.
func StoreF(arr *Array, idx []IExpr, rhs FExpr) Stmt { return AssignF{Arr: arr, Idx: idx, RHS: rhs} }

// StoreI builds an int array assignment.
func StoreI(arr *Array, idx []IExpr, rhs IExpr) Stmt { return AssignI{Arr: arr, Idx: idx, RHS: rhs} }

// SetF builds a float scalar assignment.
func SetF(s FScalar, rhs FExpr) Stmt { return SetScalarF{Slot: s.Slot, Name: s.Name, RHS: rhs} }

// SetI builds an int scalar assignment.
func SetI(s ISlot, rhs IExpr) Stmt { return SetScalarI{Slot: s.Slot, Name: s.Name, RHS: rhs} }
