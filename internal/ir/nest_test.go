package ir

import "testing"

func nestProgram() (*Program, ISlot, ISlot, ISlot, *Array, *Array) {
	p := NewProgram("nest")
	i := p.NewLoopVar("i")
	j := p.NewLoopVar("j")
	s := p.NewScalarI("s")
	a := p.NewArrayF("a", Int(64))
	col := p.NewArrayI("col", Int(64))
	return p, i, j, s, a, col
}

func TestWrittenSlots(t *testing.T) {
	_, i, j, s, a, _ := nestProgram()
	body := []Stmt{
		For(j, Int(0), Int(4), 1,
			StoreF(a, []IExpr{j}, Flt(0)),
		),
		If{
			Cond: CmpI{Op: Lt, A: i, B: Int(2)},
			Then: []Stmt{SetI(s, Int(1))},
		},
	}
	w := WrittenSlots(body, nil)
	if !w[j.Slot] || !w[s.Slot] {
		t.Fatalf("expected slots %d and %d written, got %v", j.Slot, s.Slot, w)
	}
	if w[i.Slot] {
		t.Fatalf("slot %d (i) is only read, got %v", i.Slot, w)
	}
}

func TestPureAndTrap(t *testing.T) {
	_, i, _, _, _, col := nestProgram()
	pure := AddI(MulI(i, Int(3)), Int(7))
	if !PureIExpr(pure) {
		t.Fatalf("arith over slots/consts must be pure: %s", pure)
	}
	if PureIExpr(LoadI(col, i)) {
		t.Fatal("ILoad touches simulated memory; not pure")
	}
	if MayTrapIExpr(pure) {
		t.Fatalf("no division: must not trap: %s", pure)
	}
	if !MayTrapIExpr(AddI(Int(1), DivI(i, Int(0)))) {
		t.Fatal("division may trap")
	}
	if !MayTrapIExpr(ModI(i, i)) {
		t.Fatal("modulus may trap")
	}
}

func TestIExprSlots(t *testing.T) {
	_, i, j, _, a, col := nestProgram()
	var got []int
	IExprSlots(AddI(LoadI(col, MulI(i, Int(2))), IFromF{X: LoadF(a, j)}), func(s int) {
		got = append(got, s)
	})
	want := map[int]bool{i.Slot: true, j.Slot: true}
	if len(got) != 2 {
		t.Fatalf("want 2 slot reads, got %v", got)
	}
	for _, s := range got {
		if !want[s] {
			t.Fatalf("unexpected slot %d in %v", s, got)
		}
	}
}

func TestConstFold(t *testing.T) {
	_, i, _, _, _, _ := nestProgram()
	if v, ok := ConstFold(MulI(AddI(Int(2), Int(3)), SubI(Int(10), Int(4)))); !ok || v != 30 {
		t.Fatalf("got %d,%v want 30,true", v, ok)
	}
	if _, ok := ConstFold(AddI(i, Int(1))); ok {
		t.Fatal("slot read is not a constant")
	}
	if _, ok := ConstFold(DivI(Int(6), Int(2))); ok {
		t.Fatal("division is never folded (trap semantics)")
	}
}

func TestAffineCoeff(t *testing.T) {
	_, i, j, _, _, col := nestProgram()
	inv := func(s int) bool { return s != j.Slot } // j varies, everything else fixed

	cases := []struct {
		name  string
		x     IExpr
		coeff int64
		ok    bool
	}{
		{"i itself", i, 1, true},
		{"i*32+k-form", AddI(MulI(i, Int(32)), Int(5)), 32, true},
		{"const*i", MulI(Int(-4), i), -4, true},
		{"i-i cancels", SubI(i, i), 0, true},
		{"invariant j-free", AddI(Int(3), Int(9)), 0, true},
		{"varying other slot", AddI(i, j), 0, false},
		{"i*i nonlinear", MulI(i, i), 0, false},
		{"indirect", LoadI(col, i), 0, false},
		{"min of varying", MinI(AddI(i, Int(2)), Int(31)), 0, false},
		{"min of invariants", MinI(Int(7), Int(31)), 0, true},
		{"div of invariants", DivI(Int(8), Int(2)), 0, true},
		{"div by i", DivI(Int(8), i), 0, false},
	}
	for _, c := range cases {
		coeff, ok := AffineCoeff(c.x, i.Slot, inv)
		if ok != c.ok || (ok && coeff != c.coeff) {
			t.Errorf("%s: AffineCoeff(%s) = %d,%v want %d,%v", c.name, c.x, coeff, ok, c.coeff, c.ok)
		}
	}
}

func TestSummarize(t *testing.T) {
	_, i, j, s, a, _ := nestProgram()

	flat := For(i, Int(0), Int(8), 1, StoreF(a, []IExpr{i}, Flt(1)))
	sum := Summarize(flat)
	if !sum.Innermost || sum.HasIf || sum.HasHint || sum.WritesInductionVar {
		t.Fatalf("flat loop summary wrong: %+v", sum)
	}

	nested := For(i, Int(0), Int(8), 1,
		For(j, Int(0), Int(4), 1,
			Prefetch{Arr: a, Idx: []IExpr{j}, Pages: Int(1)},
			StoreF(a, []IExpr{j}, Flt(1)),
		),
		If{Cond: CmpI{Op: Lt, A: i, B: Int(2)}, Then: []Stmt{SetI(s, i)}},
	)
	sum = Summarize(nested)
	if sum.Innermost || !sum.HasIf || !sum.HasHint {
		t.Fatalf("nested loop summary wrong: %+v", sum)
	}
	if !sum.Written[j.Slot] || !sum.Written[s.Slot] {
		t.Fatalf("written set wrong: %+v", sum.Written)
	}
	if sum.WritesInductionVar {
		t.Fatal("i is not written by the nested body")
	}

	selfMod := For(i, Int(0), Int(8), 1, SetI(i, Int(0)))
	if !Summarize(selfMod).WritesInductionVar {
		t.Fatal("direct induction-variable store missed")
	}
}
