// Package ir defines the loop-nest intermediate representation the
// prefetching compiler operates on: counted loops over arrays of float64
// or int64 elements, with affine and indirect subscripts, conditionals,
// scalar accumulators, and math intrinsics. It is the moral equivalent of
// the SUIF representation the paper's pass worked on, restricted to the
// numeric loop nests that matter for I/O prefetching.
//
// Expressions are split into two domains: IExpr produces int64 (loop
// bounds, subscripts), FExpr produces float64 (computation). The split
// keeps subscript analysis exact.
package ir

import "fmt"

// SlotKind says what an integer slot holds, for printing and analysis.
type SlotKind uint8

const (
	// SlotLoopVar is a loop induction variable.
	SlotLoopVar SlotKind = iota
	// SlotParam is a program parameter, bound before execution. Params
	// may be marked unknown at compile time (symbolic), which is what
	// defeats the compiler's pipelining-level choice in APPBT.
	SlotParam
	// SlotScalarI is an integer scalar variable.
	SlotScalarI
)

// IExpr is an integer-valued expression.
type IExpr interface {
	isIExpr()
	String() string
}

// IConst is an integer literal.
type IConst struct{ Val int64 }

// ISlot reads an integer slot (loop variable, parameter, or scalar).
type ISlot struct {
	Slot int
	Name string
	Kind SlotKind
}

// IBinOp is the operator of an IBin node.
type IBinOp uint8

// Integer binary operators.
const (
	IAdd IBinOp = iota
	ISub
	IMul
	IDiv // truncating, like Go
	IMod
	IShl
	IShr
	IMin
	IMax
)

var iopNames = [...]string{"+", "-", "*", "/", "%", "<<", ">>", "min", "max"}

// IBin applies an integer binary operator.
type IBin struct {
	Op   IBinOp
	A, B IExpr
}

// ILoad reads an element of an int64 array (e.g. the b[i] of a[b[i]]).
type ILoad struct {
	Arr *Array
	Idx []IExpr // one per dimension
}

// IFromF truncates a float expression toward zero (C's (long) cast).
type IFromF struct{ X FExpr }

func (IConst) isIExpr() {}
func (ISlot) isIExpr()  {}
func (IBin) isIExpr()   {}
func (ILoad) isIExpr()  {}
func (IFromF) isIExpr() {}

func (e IConst) String() string { return fmt.Sprintf("%d", e.Val) }
func (e ISlot) String() string  { return e.Name }
func (e IBin) String() string {
	if e.Op == IMin || e.Op == IMax {
		return fmt.Sprintf("%s(%s, %s)", iopNames[e.Op], e.A, e.B)
	}
	return fmt.Sprintf("(%s %s %s)", e.A, iopNames[e.Op], e.B)
}
func (e ILoad) String() string  { return refString(e.Arr, e.Idx) }
func (e IFromF) String() string { return fmt.Sprintf("(long)%s", e.X) }

// FExpr is a float64-valued expression.
type FExpr interface {
	isFExpr()
	String() string
}

// FConst is a float literal.
type FConst struct{ Val float64 }

// FScalar reads a float scalar variable.
type FScalar struct {
	Slot int
	Name string
}

// FLoad reads an element of a float64 array.
type FLoad struct {
	Arr *Array
	Idx []IExpr
}

// FBinOp is the operator of an FBin node.
type FBinOp uint8

// Float binary operators.
const (
	FAdd FBinOp = iota
	FSub
	FMul
	FDiv
	FMinOp
	FMaxOp
)

var fopNames = [...]string{"+", "-", "*", "/", "fmin", "fmax"}

// FBin applies a float binary operator.
type FBin struct {
	Op   FBinOp
	A, B FExpr
}

// FNeg negates.
type FNeg struct{ X FExpr }

// FromInt converts an integer expression to float.
type FromInt struct{ X IExpr }

// Intrinsic identifies a math intrinsic.
type Intrinsic uint8

// Intrinsics available to kernels. Randlc is the NAS linear congruential
// generator (returns a uniform deviate in (0,1) and advances the stream).
const (
	Sqrt Intrinsic = iota
	Abs
	Log
	Exp
	Sin
	Cos
	Pow // two arguments
	Randlc
)

var intrinsicNames = [...]string{"sqrt", "fabs", "log", "exp", "sin", "cos", "pow", "randlc"}

// Name returns the intrinsic's C-style name.
func (i Intrinsic) Name() string { return intrinsicNames[i] }

// FCall invokes a math intrinsic.
type FCall struct {
	Fn   Intrinsic
	Args []FExpr
}

func (FConst) isFExpr()  {}
func (FScalar) isFExpr() {}
func (FLoad) isFExpr()   {}
func (FBin) isFExpr()    {}
func (FNeg) isFExpr()    {}
func (FromInt) isFExpr() {}
func (FCall) isFExpr()   {}

func (e FConst) String() string  { return fmt.Sprintf("%g", e.Val) }
func (e FScalar) String() string { return e.Name }
func (e FLoad) String() string   { return refString(e.Arr, e.Idx) }
func (e FBin) String() string {
	if e.Op == FMinOp || e.Op == FMaxOp {
		return fmt.Sprintf("%s(%s, %s)", fopNames[e.Op], e.A, e.B)
	}
	return fmt.Sprintf("(%s %s %s)", e.A, fopNames[e.Op], e.B)
}
func (e FNeg) String() string    { return fmt.Sprintf("(-%s)", e.X) }
func (e FromInt) String() string { return fmt.Sprintf("(double)%s", e.X) }
func (e FCall) String() string {
	s := e.Fn.Name() + "("
	for i, a := range e.Args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}

// BExpr is a boolean expression.
type BExpr interface {
	isBExpr()
	String() string
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	Lt CmpOp = iota
	Le
	Gt
	Ge
	Eq
	Ne
)

var cmpNames = [...]string{"<", "<=", ">", ">=", "==", "!="}

// CmpI compares two integer expressions.
type CmpI struct {
	Op   CmpOp
	A, B IExpr
}

// CmpF compares two float expressions.
type CmpF struct {
	Op   CmpOp
	A, B FExpr
}

// And is logical conjunction; Or disjunction; Not negation.
type And struct{ A, B BExpr }

// Or is logical disjunction.
type Or struct{ A, B BExpr }

// Not is logical negation.
type Not struct{ X BExpr }

func (CmpI) isBExpr() {}
func (CmpF) isBExpr() {}
func (And) isBExpr()  {}
func (Or) isBExpr()   {}
func (Not) isBExpr()  {}

func (e CmpI) String() string { return fmt.Sprintf("(%s %s %s)", e.A, cmpNames[e.Op], e.B) }
func (e CmpF) String() string { return fmt.Sprintf("(%s %s %s)", e.A, cmpNames[e.Op], e.B) }
func (e And) String() string  { return fmt.Sprintf("(%s && %s)", e.A, e.B) }
func (e Or) String() string   { return fmt.Sprintf("(%s || %s)", e.A, e.B) }
func (e Not) String() string  { return fmt.Sprintf("(!%s)", e.X) }

func refString(a *Array, idx []IExpr) string {
	s := a.Name
	for _, ix := range idx {
		s += "[" + ix.String() + "]"
	}
	return s
}
