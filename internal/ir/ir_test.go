package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestConstEval(t *testing.T) {
	env := map[int]int64{0: 10, 1: 3}
	s0 := ISlot{Slot: 0, Name: "n"}
	s1 := ISlot{Slot: 1, Name: "m"}
	cases := []struct {
		e    IExpr
		want int64
	}{
		{Int(7), 7},
		{s0, 10},
		{AddI(s0, s1), 13},
		{SubI(s0, s1), 7},
		{MulI(s0, s1), 30},
		{DivI(s0, s1), 3},
		{ModI(s0, s1), 1},
		{ShlI(Int(1), s1), 8},
		{ShrI(s0, Int(1)), 5},
		{MinI(s0, s1), 3},
		{MaxI(s0, s1), 10},
	}
	for _, c := range cases {
		got, ok := ConstEval(c.e, env)
		if !ok || got != c.want {
			t.Errorf("ConstEval(%s) = %d,%v, want %d", c.e, got, ok, c.want)
		}
	}
	if _, ok := ConstEval(ISlot{Slot: 9}, env); ok {
		t.Error("ConstEval succeeded on unbound slot")
	}
	if _, ok := ConstEval(LoadI(&Array{Name: "b"}, Int(0)), env); ok {
		t.Error("ConstEval succeeded on array load")
	}
}

func TestResolveLayout(t *testing.T) {
	p := NewProgram("layout")
	n := p.NewParam("n", 100, true)
	a := p.NewArrayF("a", n)          // 800 B → 1 page
	b := p.NewArrayF("b", n, Int(10)) // 8000 B → 2 pages
	c := p.NewArrayI("c", Int(512))   // 4096 B → 1 page
	if err := p.Resolve(4096); err != nil {
		t.Fatal(err)
	}
	if a.Base != 0 || a.Elems != 100 {
		t.Fatalf("a: base %d elems %d", a.Base, a.Elems)
	}
	if b.Base != 4096 || b.Elems != 1000 {
		t.Fatalf("b: base %d elems %d, want page-aligned after a", b.Base, b.Elems)
	}
	if b.Strides[0] != 10 || b.Strides[1] != 1 {
		t.Fatalf("b strides %v, want [10 1] (row-major)", b.Strides)
	}
	if c.Base != 4096+2*4096 {
		t.Fatalf("c base %d", c.Base)
	}
	if got := p.TotalBytes(4096); got != 4*4096 {
		t.Fatalf("TotalBytes = %d, want %d", got, 4*4096)
	}
}

func TestResolveRejectsBadExtent(t *testing.T) {
	p := NewProgram("bad")
	n := p.NewParam("n", -5, true)
	p.NewArrayF("a", n)
	if err := p.Resolve(4096); err == nil {
		t.Fatal("Resolve accepted negative extent")
	}
	p2 := NewProgram("bad2")
	i := p2.NewLoopVar("i")
	p2.NewArrayF("a", i) // loop var in extent: not evaluable
	if err := p2.Resolve(4096); err == nil {
		t.Fatal("Resolve accepted loop-var extent")
	}
}

func TestSetParamInvalidatesResolution(t *testing.T) {
	p := NewProgram("re")
	n := p.NewParam("n", 100, true)
	a := p.NewArrayF("a", n)
	if err := p.Resolve(4096); err != nil {
		t.Fatal(err)
	}
	if err := p.SetParam("n", 1000); err != nil {
		t.Fatal(err)
	}
	if p.Resolved() {
		t.Fatal("program still resolved after SetParam")
	}
	if err := p.Resolve(4096); err != nil {
		t.Fatal(err)
	}
	if a.Elems != 1000 {
		t.Fatalf("a.Elems = %d after rebind, want 1000", a.Elems)
	}
	if err := p.SetParam("zzz", 1); err == nil {
		t.Fatal("SetParam accepted unknown name")
	}
}

func TestPrintFigureTwoShape(t *testing.T) {
	// A nest like Figure 2(a) should print recognizably, and inserted
	// hints should print as prefetch/release calls.
	p := NewProgram("fig2")
	n := p.NewParam("N", 64, true)
	a := p.NewArrayF("a", Int(100000))
	b := p.NewArrayI("b", Int(100000))
	cc := p.NewArrayF("c", Int(1000), n)
	i := p.NewLoopVar("i")
	j := p.NewLoopVar("j")
	s := p.NewScalarF("t")
	p.Body = []Stmt{
		Prefetch{Arr: b, Idx: []IExpr{Int(0)}, Pages: Int(4)},
		For(i, Int(0), Int(1000), 1,
			For(j, Int(0), n, 1,
				SetF(s, AddF(FScalar{Slot: s.Slot, Name: "t"}, LoadF(cc, i, j))),
			),
			StoreF(a, []IExpr{LoadI(b, i)}, AddF(LoadF(a, LoadI(b, i)), Flt(1))),
			PrefetchRelease{
				PfArr: b, PfIdx: []IExpr{AddI(i, Int(512))}, PfPages: Int(4),
				RelArr: b, RelIdx: []IExpr{SubI(i, Int(512))}, RelPages: Int(4),
			},
		),
	}
	out := Print(p)
	for _, want := range []string{
		"for (i = 0; i < 1000; i += 1)",
		"for (j = 0; j < N; j += 1)",
		"a[b[i]]",
		"c[i][j]",
		"prefetch_block(&b[0], 4);",
		"prefetch_release_block(&b[(i + 512)], &b[(i - 512)], 4, 4);",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
}

func TestCountAndWalk(t *testing.T) {
	p := NewProgram("w")
	n := p.NewParam("n", 10, true)
	a := p.NewArrayF("a", n)
	i := p.NewLoopVar("i")
	p.Body = []Stmt{
		For(i, Int(0), n, 1,
			StoreF(a, []IExpr{i}, Flt(1)),
			If{Cond: CmpI{Op: Lt, A: i, B: Int(5)},
				Then: []Stmt{StoreF(a, []IExpr{i}, Flt(2))}},
		),
	}
	if got := CountStmts(p.Body); got != 4 {
		t.Fatalf("CountStmts = %d, want 4", got)
	}
	var loops, assigns int
	WalkStmts(p.Body, func(s Stmt) {
		switch s.(type) {
		case *Loop:
			loops++
		case AssignF:
			assigns++
		}
	})
	if loops != 1 || assigns != 2 {
		t.Fatalf("walk saw %d loops, %d assigns", loops, assigns)
	}
}

func TestForRejectsBadStep(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("For with zero step did not panic")
		}
	}()
	For(ISlot{}, Int(0), Int(1), 0)
}

// Property: ConstEval is consistent with itself under add/mul composition.
func TestConstEvalAlgebraProperty(t *testing.T) {
	f := func(a, b, c int16) bool {
		env := map[int]int64{}
		ea := Int(int64(a))
		eb := Int(int64(b))
		ec := Int(int64(c))
		// (a+b)*c == a*c + b*c
		l, _ := ConstEval(MulI(AddI(ea, eb), ec), env)
		r, _ := ConstEval(AddI(MulI(ea, ec), MulI(eb, ec)), env)
		return l == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
