package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil trace is not empty")
	}
	p := tr.NewProcess("run")
	if p != nil {
		t.Fatal("nil trace must yield a nil proc")
	}
	track := p.Thread("cpu")
	if track != nil {
		t.Fatal("nil proc must yield a nil track")
	}
	track.Span("a", "b", 0, 1)
	track.Instant("a", "b", 0)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("traceEvents")) {
		t.Fatalf("nil trace export malformed: %s", buf.String())
	}
}

func TestTraceExportShape(t *testing.T) {
	tr := NewTrace()
	proc := tr.NewProcess("BUK/P")
	cpu := proc.Thread("cpu")
	faults := proc.Thread("faults")
	cpu.Span("fault-service", "fault", 1000, 500)
	cpu.SpanArg("user", "user", 1500, 2500, "ops", 12)
	faults.InstantArg("late", "fault-class", 1700, "page", 42)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	// 2 metadata thread names + 1 process name + 3 events.
	if len(out.TraceEvents) != 6 {
		t.Fatalf("exported %d events, want 6", len(out.TraceEvents))
	}
	byName := map[string]map[string]any{}
	for _, e := range out.TraceEvents {
		byName[e["name"].(string)] = e
	}
	span := byName["fault-service"]
	if span["ph"] != "X" || span["ts"] != 1.0 || span["dur"] != 0.5 {
		t.Fatalf("span mis-exported: %v", span)
	}
	inst := byName["late"]
	if inst["ph"] != "i" || inst["s"] != "t" || inst["cat"] != "fault-class" {
		t.Fatalf("instant mis-exported: %v", inst)
	}
	if args, ok := inst["args"].(map[string]any); !ok || args["page"] != float64(42) {
		t.Fatalf("instant args mis-exported: %v", inst)
	}
	meta := byName["process_name"]
	if meta["ph"] != "M" {
		t.Fatalf("metadata mis-exported: %v", meta)
	}
	if args, ok := meta["args"].(map[string]any); !ok || args["name"] != "BUK/P" {
		t.Fatalf("process name lost: %v", meta)
	}
	// Both tracks share the process pid; distinct tids.
	if byName["fault-service"]["pid"] != byName["late"]["pid"] {
		t.Fatal("tracks of one process exported with different pids")
	}
	if byName["fault-service"]["tid"] == byName["late"]["tid"] {
		t.Fatal("distinct tracks share a tid")
	}
}

func TestTracePidsAreUnique(t *testing.T) {
	tr := NewTrace()
	a := tr.NewProcess("a")
	b := tr.NewProcess("b")
	at := a.Thread("t")
	bt := b.Thread("t")
	at.Span("x", "", 0, 1)
	bt.Span("y", "", 0, 1)
	evs := tr.Events()
	var apid, bpid int64 = -1, -1
	for _, e := range evs {
		switch e.Name {
		case "x":
			apid = e.Pid
		case "y":
			bpid = e.Pid
		}
	}
	if apid == bpid {
		t.Fatalf("two processes share pid %d", apid)
	}
}
