package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestCounterAndGaugeNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	c.Store(7)
	if c.Value() != 0 {
		t.Fatal("nil counter reported a value")
	}
	var g *Gauge
	g.Set(1.5)
	if g.Value() != 0 {
		t.Fatal("nil gauge reported a value")
	}
}

func TestRegistryHandlesAreStable(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Fatal("same name resolved to different counters")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatal("handle does not see shared count")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same name resolved to different gauges")
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines — the
// bench Runner's workers write runner.* counters into a shared registry —
// mixing resolution, increments, snapshots, and merges. Run under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := r.Counter(fmt.Sprintf("worker.%d", w))
			shared := r.Counter("shared")
			for i := 0; i < perWorker; i++ {
				own.Inc()
				shared.Inc()
				r.Gauge("load").Set(float64(i))
				if i%512 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	// A merging reader runs concurrently with the writers.
	other := NewRegistry()
	other.Counter("vm.faults.major").Add(11)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Merge("run/", other)
		}
	}()
	wg.Wait()
	<-done

	s := r.Snapshot()
	if got := s.Counters["shared"]; got != workers*perWorker {
		t.Fatalf("shared counter = %d, want %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if got := s.Counters[fmt.Sprintf("worker.%d", w)]; got != perWorker {
			t.Fatalf("worker %d counter = %d, want %d", w, got, perWorker)
		}
	}
	if got := s.Counters["run/vm.faults.major"]; got != 50*11 {
		t.Fatalf("merged counter = %d, want %d", got, 50*11)
	}
}

func TestMergePrefixes(t *testing.T) {
	src := NewRegistry()
	src.Counter("vm.faults.major").Add(7)
	src.Gauge("run.avg_free_frac").Set(0.25)
	dst := NewRegistry()
	dst.Merge("BUK/P/", src)
	s := dst.Snapshot()
	if s.Counters["BUK/P/vm.faults.major"] != 7 {
		t.Fatalf("merge lost counter: %+v", s.Counters)
	}
	if s.Gauges["BUK/P/run.avg_free_frac"] != 0.25 {
		t.Fatalf("merge lost gauge: %+v", s.Gauges)
	}
	dst.Merge("x/", nil) // nil source is a no-op
}

func TestRegistryWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("vm.faults.major").Add(3)
	r.Gauge("disk.util_mean").Set(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var flat map[string]any
	if err := json.Unmarshal(buf.Bytes(), &flat); err != nil {
		t.Fatalf("metrics JSON does not parse: %v\n%s", err, buf.String())
	}
	if flat["vm.faults.major"] != float64(3) || flat["disk.util_mean"] != 0.5 {
		t.Fatalf("unexpected snapshot: %v", flat)
	}
}

func TestRunObsNilSafety(t *testing.T) {
	var o *RunObs
	if o.Registry() == nil {
		t.Fatal("nil RunObs must still yield a registry")
	}
	if o.Thread("cpu") != nil {
		t.Fatal("nil RunObs must yield a nil track")
	}
	o = &RunObs{} // no trace proc
	if o.Thread("cpu") != nil {
		t.Fatal("RunObs without a proc must yield a nil track")
	}
	o.Thread("cpu").Span("user", "user", 0, 10) // must not panic
}

// Substrate micro-benchmarks: the per-event cost of the observability
// layer, on (enabled) and off (nil handles).

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkTrackSpan(b *testing.B) {
	tr := NewTrace().NewProcess("bench").Thread("cpu")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span("user", "user", 0, 10)
	}
}

func BenchmarkTrackSpanDisabled(b *testing.B) {
	var tr *Track
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span("user", "user", 0, 10)
	}
}
