package obs

import (
	"encoding/json"
	"io"
	"sync"

	"repro/internal/sim"
)

// Trace collects structured events from every layer of a run — complete
// spans ("this stretch of simulated time was a fault service"), instants
// ("this fault was classified late"), and track metadata — and exports
// them in the Chrome trace-event format, loadable in Perfetto or
// chrome://tracing.
//
// A Trace is safe for concurrent use: suite runs append from many worker
// goroutines into one collector. A nil *Trace is valid and means tracing
// is off; every derived Proc and Track is then nil and each emission
// costs one nil check.
type Trace struct {
	mu      sync.Mutex
	events  []Event
	nextPid int64
}

// Event is one collected trace record. Timestamps and durations are in
// simulated nanoseconds for simulator tracks and wall-clock nanoseconds
// for harness (runner) tracks; the exporter converts to the microseconds
// the trace-event format specifies.
type Event struct {
	Name    string
	Cat     string
	Phase   byte // 'X' complete span, 'i' instant, 'M' metadata
	TS      int64
	Dur     int64
	Pid     int64
	Tid     int64
	ArgName string // optional single numeric argument; "" = none
	Arg     int64
	Label   string // string argument of metadata events
}

// NewTrace returns an empty collector.
func NewTrace() *Trace { return &Trace{} }

func (t *Trace) add(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Len reports the number of collected events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the collected events (for tests and custom
// exporters).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// NewProcess allocates a process-level track group — one per simulated
// run (pid = run) plus one for the harness itself — and names it in the
// exported trace. Nil-safe: a nil Trace returns a nil Proc.
func (t *Trace) NewProcess(name string) *Proc {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextPid++
	pid := t.nextPid
	t.events = append(t.events, Event{
		Name: "process_name", Phase: 'M', Pid: pid, Label: name,
	})
	t.mu.Unlock()
	return &Proc{t: t, pid: pid}
}

// Proc is one process track group of a trace.
type Proc struct {
	t       *Trace
	pid     int64
	mu      sync.Mutex
	nextTid int64
}

// Thread allocates a named track within the process: one per disk, per
// VM core, per runner worker. Nil-safe: a nil Proc returns a nil Track.
func (p *Proc) Thread(name string) *Track {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	p.nextTid++
	tid := p.nextTid
	p.mu.Unlock()
	p.t.add(Event{
		Name: "thread_name", Phase: 'M', Pid: p.pid, Tid: tid, Label: name,
	})
	return &Track{t: p.t, pid: p.pid, tid: tid}
}

// Track is one horizontal timeline in the exported trace. Emitting
// through a nil Track is a no-op costing one nil check — this is how
// disabled tracing stays off the hot path.
type Track struct {
	t        *Trace
	pid, tid int64
}

// The exported emitters are thin wrappers around out-of-line slow paths
// so that the nil check inlines at every call site: with tracing off the
// whole call reduces to one compare-and-branch, no function call.

// Span records a complete span of duration dur starting at start.
func (tr *Track) Span(name, cat string, start, dur sim.Time) {
	if tr == nil {
		return
	}
	tr.span(name, cat, start, dur)
}

//go:noinline
func (tr *Track) span(name, cat string, start, dur sim.Time) {
	tr.t.add(Event{Name: name, Cat: cat, Phase: 'X',
		TS: int64(start), Dur: int64(dur), Pid: tr.pid, Tid: tr.tid})
}

// SpanArg is Span with one numeric argument attached.
func (tr *Track) SpanArg(name, cat string, start, dur sim.Time, argName string, arg int64) {
	if tr == nil {
		return
	}
	tr.spanArg(name, cat, start, dur, argName, arg)
}

//go:noinline
func (tr *Track) spanArg(name, cat string, start, dur sim.Time, argName string, arg int64) {
	tr.t.add(Event{Name: name, Cat: cat, Phase: 'X',
		TS: int64(start), Dur: int64(dur), Pid: tr.pid, Tid: tr.tid,
		ArgName: argName, Arg: arg})
}

// Instant records a zero-duration marker at ts.
func (tr *Track) Instant(name, cat string, ts sim.Time) {
	if tr == nil {
		return
	}
	tr.instant(name, cat, ts)
}

//go:noinline
func (tr *Track) instant(name, cat string, ts sim.Time) {
	tr.t.add(Event{Name: name, Cat: cat, Phase: 'i',
		TS: int64(ts), Pid: tr.pid, Tid: tr.tid})
}

// InstantArg is Instant with one numeric argument attached.
func (tr *Track) InstantArg(name, cat string, ts sim.Time, argName string, arg int64) {
	if tr == nil {
		return
	}
	tr.instantArg(name, cat, ts, argName, arg)
}

//go:noinline
func (tr *Track) instantArg(name, cat string, ts sim.Time, argName string, arg int64) {
	tr.t.add(Event{Name: name, Cat: cat, Phase: 'i',
		TS: int64(ts), Pid: tr.pid, Tid: tr.tid,
		ArgName: argName, Arg: arg})
}

// jsonEvent is the trace-event wire format. ts and dur are microseconds
// (fractional values are allowed and preserve the nanosecond grain).
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON writes the collected events as Chrome trace-event JSON
// (object form, with a traceEvents array), loadable in Perfetto.
func (t *Trace) WriteJSON(w io.Writer) error {
	var events []Event
	if t != nil {
		events = t.Events()
	}
	out := struct {
		TraceEvents     []jsonEvent `json:"traceEvents"`
		DisplayTimeUnit string      `json:"displayTimeUnit"`
	}{
		TraceEvents:     make([]jsonEvent, 0, len(events)),
		DisplayTimeUnit: "ms",
	}
	for _, e := range events {
		je := jsonEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ph:   string(rune(e.Phase)),
			TS:   float64(e.TS) / 1e3,
			Pid:  e.Pid,
			Tid:  e.Tid,
		}
		switch e.Phase {
		case 'X':
			dur := float64(e.Dur) / 1e3
			je.Dur = &dur
		case 'i':
			je.S = "t" // thread-scoped instant
		case 'M':
			je.TS = 0
			je.Args = map[string]any{"name": e.Label}
		}
		if e.ArgName != "" {
			if je.Args == nil {
				je.Args = map[string]any{}
			}
			je.Args[e.ArgName] = e.Arg
		}
		out.TraceEvents = append(out.TraceEvents, je)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
