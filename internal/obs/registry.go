// Package obs is the unified observability layer shared by every part of
// the simulated system: a typed metrics registry and a structured event
// tracer with a Chrome trace-event exporter.
//
// The design goal is that observability is free when it is off and cheap
// when it is on. Metric counters are pre-resolved handles (one atomic add
// per event); trace emission through a nil Track costs exactly one nil
// check per event; and the hot emission path allocates nothing beyond the
// amortized growth of the event buffer.
//
// The registry is the system's single source of truth for event counts:
// the per-package statistics types (vm.Stats, disk.Stats, rt.Stats) are
// views assembled from registry counters, not parallel accounting.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use and safe on a nil receiver (a nil counter
// silently discards, so optional metrics cost one nil check).
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Store overwrites the count. It exists for end-of-run absolutes and for
// accounting resets; steady-state accounting should only Add.
func (c *Counter) Store(n int64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float-valued metric for fractions and utilizations. Like
// Counter it is concurrency- and nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set overwrites the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a concurrency-safe collection of named metrics. Lookup
// creates on first use and returns a stable handle, so hot paths resolve
// their counters once and then pay only an atomic add per event.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot is a point-in-time copy of a registry's values.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]float64
}

// Snapshot copies the current value of every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]float64, len(r.gauges)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	return s
}

// Merge adds a snapshot of src into r with every metric name prefixed —
// how a suite-level registry absorbs the private registry of one finished
// run ("BUK/P/" + "vm.faults.major", ...).
func (r *Registry) Merge(prefix string, src *Registry) {
	if src == nil {
		return
	}
	s := src.Snapshot()
	for name, v := range s.Counters {
		r.Counter(prefix + name).Add(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(prefix + name).Set(v)
	}
}

// WriteJSON writes the registry as one flat JSON object, keys sorted,
// counters as integers and gauges as floats — the machine-readable
// metrics snapshot experiments diff against each other.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	flat := make(map[string]any, len(s.Counters)+len(s.Gauges))
	for name, v := range s.Counters {
		flat[name] = v
	}
	for name, v := range s.Gauges {
		flat[name] = v
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(flat)
}

// RunObs bundles the observability sinks of one simulated run: the
// metrics registry every layer registers its counters in, and the trace
// process the run's tracks hang off. A nil *RunObs (or nil fields) is
// valid and means "not observed": counters still count (package stats
// are views over them) in a private registry, and tracing is disabled.
type RunObs struct {
	Reg  *Registry
	Proc *Proc
}

// Registry returns the bundle's registry, creating a fresh private one
// when the bundle (or its registry) is nil. Callers should resolve once
// and keep the result.
func (o *RunObs) Registry() *Registry {
	if o == nil || o.Reg == nil {
		return NewRegistry()
	}
	return o.Reg
}

// Thread returns a new named track on the bundle's trace process, or nil
// when tracing is disabled.
func (o *RunObs) Thread(name string) *Track {
	if o == nil {
		return nil
	}
	return o.Proc.Thread(name)
}
