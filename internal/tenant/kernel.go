package tenant

import "fmt"

// KernelSpec describes one tenant's synthetic out-of-core workload: a
// deterministic stream of read-modify-write accesses over a private
// data region, with the prefetch/release hints a compiled program would
// carry. Every quantity is derived from the spec and the job's seed, so
// the access at any index is a pure function — the scheduler can slice,
// park, and resume the stream at will without recording it.
type KernelSpec struct {
	// Kind selects the access pattern: "scan" (sequential passes with
	// block prefetch-release hints), "stride" (a coprime stride walk
	// with single-page lookahead hints), or "zipf" (a skewed random
	// mix with single-page lookahead hints).
	Kind string

	// Pages is the size of the tenant's data region.
	Pages int64

	// Passes is the number of full traversals for scan and stride
	// kernels; 0 means 1.
	Passes int64

	// Stride is the stride kernel's step in pages; 0 picks a default.
	// It is adjusted upward to the nearest value coprime with Pages so
	// every pass visits every page.
	Stride int64

	// Accesses is the zipf kernel's total access count; 0 means
	// 4×Pages.
	Accesses int64

	// Lookahead is the hint distance in accesses; 0 picks a default
	// per kind.
	Lookahead int64

	// ReadOnly makes every access a plain load. The job's fingerprint
	// is then the (unchanged) zero image; useful for workloads whose
	// residency should not include a dirty write-back pipeline.
	ReadOnly bool
}

// scanBlock is the scan kernel's hint granularity: pages prefetched (and
// released) per bundled call, the shape of the paper's
// prefetch_release_block.
const scanBlock = 8

// opsPerAccess is the user compute charged per kernel access, standing
// in for the arithmetic between memory references.
const opsPerAccess = 64

func (k *KernelSpec) validate() error {
	switch k.Kind {
	case "scan", "stride", "zipf":
	default:
		return fmt.Errorf("tenant: unknown kernel kind %q (want scan, stride, or zipf)", k.Kind)
	}
	if k.Pages <= 0 {
		return fmt.Errorf("tenant: kernel needs a positive page count, got %d", k.Pages)
	}
	if k.Passes < 0 || k.Stride < 0 || k.Accesses < 0 || k.Lookahead < 0 {
		return fmt.Errorf("tenant: negative kernel parameter")
	}
	return nil
}

// kernel is a resolved KernelSpec: defaults filled, ready to be indexed.
type kernel struct {
	spec      KernelSpec
	seed      uint64
	total     int64 // total accesses in the stream
	stride    int64 // resolved coprime stride
	lookahead int64
	pageWords int64
}

func newKernel(spec KernelSpec, seed uint64, pageSize int64) kernel {
	k := kernel{spec: spec, seed: seed, pageWords: pageSize / 8}
	passes := spec.Passes
	if passes == 0 {
		passes = 1
	}
	switch spec.Kind {
	case "scan", "stride":
		k.total = spec.Pages * passes
	case "zipf":
		k.total = spec.Accesses
		if k.total == 0 {
			k.total = 4 * spec.Pages
		}
	}
	k.stride = spec.Stride
	if k.stride == 0 {
		k.stride = 17
	}
	for gcd(k.stride, spec.Pages) != 1 {
		k.stride++
	}
	k.lookahead = spec.Lookahead
	if k.lookahead == 0 {
		if spec.Kind == "scan" {
			k.lookahead = 2 * scanBlock
		} else {
			k.lookahead = 8
		}
	}
	return k
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// pageAt returns the page the idx-th access touches.
func (k *kernel) pageAt(idx int64) int64 {
	pos := idx % k.spec.Pages
	switch k.spec.Kind {
	case "scan":
		return pos
	case "stride":
		return pos * k.stride % k.spec.Pages
	default: // zipf
		// A skewed draw without math/rand: a uniform 53-bit fraction
		// cubed concentrates ~50% of accesses on ~21% of pages, hot
		// pages at low indexes. math.Pow-free so the mapping is exact
		// integer/float arithmetic, identical on every run.
		u := float64(splitmix(k.seed^uint64(idx)) >> 11)
		u /= float64(1 << 53)
		return int64(u * u * u * float64(k.spec.Pages))
	}
}

// wordAt returns the word within the page the idx-th access hits.
func (k *kernel) wordAt(idx int64) int64 {
	return int64(splitmix(k.seed+0xa5a5a5a5+uint64(idx)) % uint64(k.pageWords))
}

// hints returns the prefetch/release hint the compiler would have placed
// before the idx-th access; pfN == 0 and relN == 0 mean no hint.
func (k *kernel) hints(idx int64) (pfPage, pfN, relPage, relN int64) {
	switch k.spec.Kind {
	case "scan":
		pos := idx % k.spec.Pages
		if pos%scanBlock != 0 {
			return 0, 0, 0, 0
		}
		// Prefetch the block lookahead pages ahead; release the block
		// the same distance behind (clamped to this pass's range).
		pf := pos + k.lookahead
		if pf < k.spec.Pages {
			pfPage, pfN = pf, min64(scanBlock, k.spec.Pages-pf)
		}
		rel := pos - k.lookahead - scanBlock
		if rel >= 0 {
			relPage, relN = rel, scanBlock
		}
		return pfPage, pfN, relPage, relN
	default: // stride, zipf: one page of lookahead per access
		ahead := idx + k.lookahead
		if ahead >= k.total {
			return 0, 0, 0, 0
		}
		return k.pageAt(ahead), 1, 0, 0
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// splitmix is the splitmix64 output function: a bijective mixer whose
// output on sequential inputs is statistically random. All kernel
// randomness derives from it, so streams are pure functions of
// (seed, index).
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// mixValue chains the idx-th access's write value from the word's
// previous value. Because pages start zero and only the owning tenant
// writes its region, the final memory image is a pure function of the
// access stream — independent of scheduling, contention, and I/O timing.
// The isolation tests rely on exactly this.
func mixValue(old, seed uint64, idx int64) uint64 {
	return splitmix(old ^ (seed + uint64(idx)*0x2545f4914f6cdd1d))
}

// fnv64 accumulates FNV-1a over one 64-bit word.
func fnv64(h, w uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h ^= (w >> i) & 0xff
		h *= 0x100000001b3
	}
	return h
}

const fnvOffset = 0xcbf29ce484222325
