package tenant

import (
	"fmt"
	"testing"

	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

// testMachine returns a small shared machine: frames physical frames of
// the default 4 KiB pages on the default 7-disk array.
func testMachine(frames int64) hw.Params {
	p := hw.Default()
	p.MemoryBytes = frames * p.PageSize
	return p
}

func mustSubmit(t *testing.T, s *Server, spec JobSpec) *Tenant {
	t.Helper()
	tn, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit %q: %v", spec.Name, err)
	}
	return tn
}

// runServer builds a server, submits the jobs, runs to completion, and
// returns the server and its reports.
func runServer(t *testing.T, cfg Config, jobs []JobSpec) (*Server, []Report) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		mustSubmit(t, s, j)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return s, s.Reports()
}

// TestDeterminism: the same job mix and seed produce byte-identical runs
// — same final clock, same per-tenant fingerprints, finish times, stall
// times, and the same full metrics snapshot. This is the CI determinism
// gate.
func TestDeterminism(t *testing.T) {
	mix := []JobSpec{
		{Name: "scan", Kernel: KernelSpec{Kind: "scan", Pages: 256, Passes: 2}, QuotaFrames: 40},
		{Name: "zipf", Kernel: KernelSpec{Kind: "zipf", Pages: 200, Accesses: 600}, Class: 1, QuotaFrames: 40, Seed: 7},
		{Name: "stride", Kernel: KernelSpec{Kind: "stride", Pages: 128}, Class: 2, HintBudget: 16, Seed: 9},
	}
	run := func() (sim.Time, []Report, obs.Snapshot) {
		cfg := Config{Machine: testMachine(96), Seed: 42, Sched: "qos"}
		s, reports := runServer(t, cfg, mix)
		return s.Clock().Now(), reports, s.Metrics().Snapshot()
	}
	end1, rep1, snap1 := run()
	end2, rep2, snap2 := run()
	if end1 != end2 {
		t.Fatalf("final clock differs across identical runs: %v vs %v", end1, end2)
	}
	for i := range rep1 {
		if rep1[i] != rep2[i] {
			t.Errorf("tenant %d report differs:\n  %+v\n  %+v", i, rep1[i], rep2[i])
		}
	}
	if len(snap1.Counters) != len(snap2.Counters) {
		t.Fatalf("metric snapshots differ in size: %d vs %d", len(snap1.Counters), len(snap2.Counters))
	}
	for name, v1 := range snap1.Counters {
		if v2, ok := snap2.Counters[name]; !ok || v1 != v2 {
			t.Errorf("metric %q = %d vs %d", name, v1, v2)
		}
	}
}

// TestIsolationSoloVsContended: a tenant's final memory image is a pure
// function of its own access stream, so its fingerprint must be
// identical whether it runs alone or against two noisy neighbors
// fighting it for frames and disk bandwidth. This is the CI isolation
// gate.
func TestIsolationSoloVsContended(t *testing.T) {
	victim := JobSpec{Name: "victim", Kernel: KernelSpec{Kind: "zipf", Pages: 220, Accesses: 800}, QuotaFrames: 40, Seed: 3}
	noisy := []JobSpec{
		{Name: "noise-scan", Kernel: KernelSpec{Kind: "scan", Pages: 300, Passes: 3}, Class: 2, QuotaFrames: 30, Seed: 5},
		{Name: "noise-stride", Kernel: KernelSpec{Kind: "stride", Pages: 256, Passes: 2}, Class: 1, QuotaFrames: 30, Seed: 6},
	}
	cfg := Config{Machine: testMachine(96), Seed: 11, Sched: "qos"}

	_, solo := runServer(t, cfg, []JobSpec{victim})
	_, mixed := runServer(t, cfg, append([]JobSpec{victim}, noisy...))

	if solo[0].Fingerprint != mixed[0].Fingerprint {
		t.Fatalf("contention changed the victim's memory image: solo %#x, contended %#x",
			solo[0].Fingerprint, mixed[0].Fingerprint)
	}
	if mixed[0].Finished < solo[0].Finished {
		t.Errorf("contended run finished earlier (%v) than solo (%v)?", mixed[0].Finished, solo[0].Finished)
	}
}

// TestSoloMatchesDirectDrive: a server with exactly one tenant must
// replay the single-run access path tick for tick — same final clock,
// same fault classification, same result — versus hand-driving the same
// kernel on a private VM through the blocking Load/Store path.
func TestSoloMatchesDirectDrive(t *testing.T) {
	spec := JobSpec{Name: "solo", Kernel: KernelSpec{Kind: "scan", Pages: 200, Passes: 2}, Seed: 21}
	cfg := Config{Machine: testMachine(64), Seed: 21}
	s, reports := runServer(t, cfg, []JobSpec{spec})

	// Direct drive: the same kernel stream through vm.Load/Store and the
	// rt layer, no scheduler, on an identical machine.
	p := testMachine(64)
	clock := sim.NewClock()
	fs := stripefs.New(clock, p, nil)
	file, err := fs.Create("0-solo", spec.Kernel.Pages)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(clock, p, file)
	layer := rt.Register(v, true)
	if _, err := v.Alloc("data", spec.Kernel.Pages*p.PageSize); err != nil {
		t.Fatal(err)
	}
	k := newKernel(spec.Kernel, cfg.Seed^splitmix(spec.Seed+0), p.PageSize)
	h := uint64(fnvOffset)
	for idx := int64(0); idx < k.total; idx++ {
		if pfPage, pfN, relPage, relN := k.hints(idx); pfN > 0 || relN > 0 {
			if pfN == 1 && relN == 0 {
				layer.Prefetch1(pfPage)
			} else {
				layer.PrefetchRelease(pfPage, pfN, relPage, relN)
			}
		}
		addr := k.pageAt(idx)*p.PageSize + k.wordAt(idx)*8
		v.Store(addr, mixValue(v.Load(addr), k.seed, idx))
		v.AddUserOps(opsPerAccess)
	}
	v.Finish()
	v.Release(0, v.AllocatedPages())
	v.FlushUser()
	directEnd := clock.Now()
	for pg := int64(0); pg < v.AllocatedPages(); pg++ {
		for w := int64(0); w < p.PageSize/8; w++ {
			h = fnv64(h, v.Peek(pg*p.PageSize+w*8))
		}
	}
	clock.Drain()

	if reports[0].Fingerprint != h {
		t.Errorf("fingerprint: server %#x, direct %#x", reports[0].Fingerprint, h)
	}
	if reports[0].Finished != directEnd {
		t.Errorf("finish tick: server %v, direct %v", reports[0].Finished, directEnd)
	}
	sm, dm := reports[0].Mem, v.Stats()
	// DaemonScans is pool-global bookkeeping sampled at different
	// instants; every per-tenant counter must match exactly.
	sm.DaemonScans, dm.DaemonScans = 0, 0
	if sm != dm {
		t.Errorf("memory stats diverge:\n  server %+v\n  direct %+v", sm, dm)
	}
	st, dt := s.all[0].vm.Times(), v.Times()
	if st.User != dt.User || st.SysFault != dt.SysFault || st.SysPrefetch != dt.SysPrefetch {
		t.Errorf("time breakdown diverges:\n  server %+v\n  direct %+v", st, dt)
	}
}

// TestAdmissionControl: jobs that can never fit are rejected; jobs that
// do not currently fit queue FIFO and start only when a finishing
// tenant returns its reservation.
func TestAdmissionControl(t *testing.T) {
	s, err := NewServer(Config{Machine: testMachine(64), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(JobSpec{Name: "whale", Kernel: KernelSpec{Kind: "scan", Pages: 64}, MinFrames: s.Capacity() + 1}); err == nil {
		t.Fatal("a job larger than the admissible pool was admitted")
	}
	a := mustSubmit(t, s, JobSpec{Name: "a", Kernel: KernelSpec{Kind: "scan", Pages: 128}, MinFrames: 40})
	b := mustSubmit(t, s, JobSpec{Name: "b", Kernel: KernelSpec{Kind: "scan", Pages: 128}, MinFrames: 40})
	if a.Queued() {
		t.Fatal("first job should be admitted immediately")
	}
	if !b.Queued() {
		t.Fatal("second job should queue: 40+40 frames exceed capacity")
	}
	// A third small job must NOT jump the FIFO queue even though it fits.
	c := mustSubmit(t, s, JobSpec{Name: "c", Kernel: KernelSpec{Kind: "scan", Pages: 16}, MinFrames: 4})
	if !c.Queued() {
		t.Fatal("third job jumped the admission queue")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	rep := s.Reports()
	if rep[1].Admitted < rep[0].Finished {
		t.Errorf("queued job admitted at %v, before the running job finished at %v", rep[1].Admitted, rep[0].Finished)
	}
	for i, r := range rep {
		if r.Finished == 0 {
			t.Errorf("job %d (%s) never finished", i, r.Name)
		}
	}
	m := s.Metrics()
	if got := m.Counter("admission.admitted").Value(); got != 3 {
		t.Errorf("admitted = %d, want 3", got)
	}
	if got := m.Counter("admission.queued").Value(); got != 2 {
		t.Errorf("queued = %d, want 2", got)
	}
	if got := m.Counter("admission.rejected").Value(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

// TestQuotaFairShare: under steady contention an over-quota tenant is
// reclaimed back toward its quota while an under-quota tenant's
// residency is protected.
func TestQuotaFairShare(t *testing.T) {
	s, err := NewServer(Config{Machine: testMachine(96), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Both walk far more pages than their share. Read-only, so
	// residency reflects reclaim policy alone, not a dirty write-back
	// pipeline the daemon cannot evict. Stride kernels issue no release
	// hints, leaving the pageout daemon as the only source of free
	// frames — exactly the fair-share path under test.
	work := KernelSpec{Kind: "stride", Pages: 400, Passes: 4, ReadOnly: true}
	capped := mustSubmit(t, s, JobSpec{Name: "capped", Kernel: work, QuotaFrames: 24})
	free := mustSubmit(t, s, JobSpec{Name: "free", Kernel: work, Seed: 1})
	maxCapped := int64(0)
	for i := 0; i < 200000 && len(s.running) == 2; i++ {
		if !s.Step() {
			break
		}
		// Sample after the system has warmed into contention.
		if capped.idx > 400 && capped.vm.ResidentFrames() > maxCapped {
			maxCapped = capped.vm.ResidentFrames()
		}
	}
	if capped.idx <= 400 {
		t.Fatal("test never reached steady state")
	}
	// The daemon reclaims asynchronously, so allow transient overshoot of
	// a prefetch batch above quota, but the cap must clearly bind.
	if slack := maxCapped - capped.Spec.QuotaFrames; slack > scanBlock*2 {
		t.Errorf("capped tenant held %d frames against a quota of %d", maxCapped, capped.Spec.QuotaFrames)
	}
	if err := s.Pool().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_ = free
	for s.Step() {
	}
	s.Clock().Drain()
}

// TestQoSClasses: with the qos disk scheduler, a best-effort tenant's
// prefetches are sacrificed first under pressure, and an identical gold
// job never finishes after its best-effort twin.
func TestQoSClasses(t *testing.T) {
	work := KernelSpec{Kind: "scan", Pages: 300, Passes: 3}
	cfg := Config{Machine: testMachine(72), Seed: 8, Sched: "qos"}
	s, reports := runServer(t, cfg, []JobSpec{
		{Name: "gold", Kernel: work, Class: 0, QuotaFrames: 30},
		{Name: "be", Kernel: work, Class: 2, QuotaFrames: 30, Seed: 1},
	})
	gold, be := reports[0], reports[1]
	if gold.Finished > be.Finished {
		t.Errorf("gold finished at %v, after best-effort at %v", gold.Finished, be.Finished)
	}
	goldDrop := gold.Mem.PrefetchDropped
	beDrop := be.Mem.PrefetchDropped
	if beDrop < goldDrop {
		t.Errorf("best-effort dropped %d prefetches, gold %d: pressure should fall on best-effort first", beDrop, goldDrop)
	}
	if beDrop == 0 {
		t.Log("note: no prefetches were dropped at all; pressure may be too low for the class gate to bite")
	}
	// Per-tenant counters are live in the shared registry.
	for id := range reports {
		if got := s.Metrics().Counter(fmt.Sprintf("tenant.%d.faults", id)).Value(); got != reports[id].Mem.MajorFaults {
			t.Errorf("tenant.%d.faults = %d, want %d", id, got, reports[id].Mem.MajorFaults)
		}
		if s.Metrics().Counter(fmt.Sprintf("tenant.%d.stall_ticks", id)).Value() != int64(reports[id].Stall) {
			t.Errorf("tenant.%d.stall_ticks out of date", id)
		}
	}
}

// TestHintBudget: a tenant with a tiny per-quantum hint budget drops
// prefetch pages at user level and still completes correctly.
func TestHintBudget(t *testing.T) {
	spec := JobSpec{Name: "thrifty", Kernel: KernelSpec{Kind: "stride", Pages: 128, Passes: 2}, HintBudget: 2, Seed: 4}
	cfg := Config{Machine: testMachine(64), Seed: 2}
	_, reports := runServer(t, cfg, []JobSpec{spec})
	if reports[0].RT.BudgetDropped == 0 {
		t.Error("a 2-page quantum budget on a hint-per-access kernel never dropped a hint")
	}
	free := JobSpec{Name: "free", Kernel: spec.Kernel, Seed: 4}
	_, unlimited := runServer(t, cfg, []JobSpec{free})
	if reports[0].Fingerprint != unlimited[0].Fingerprint {
		t.Error("hint budget changed the computed result; hints must stay non-binding")
	}
}

// TestServerInvariants runs a contended mix and checks pool invariants
// at every scheduling step — the multi-tenant analog of the vm package's
// randomized invariant tests.
func TestServerInvariants(t *testing.T) {
	s, err := NewServer(Config{Machine: testMachine(72), Seed: 13, Sched: "qos"})
	if err != nil {
		t.Fatal(err)
	}
	mustSubmit(t, s, JobSpec{Name: "a", Kernel: KernelSpec{Kind: "zipf", Pages: 150, Accesses: 500}, QuotaFrames: 24})
	mustSubmit(t, s, JobSpec{Name: "b", Kernel: KernelSpec{Kind: "scan", Pages: 200}, Class: 2, QuotaFrames: 24})
	steps := 0
	for s.Step() {
		steps++
		if steps%16 == 0 {
			if err := s.Pool().CheckInvariants(); err != nil {
				t.Fatalf("after %d steps: %v", steps, err)
			}
		}
	}
	s.Clock().Drain()
	if err := s.Pool().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkTenantSteadyState measures the scheduler's hot path — slice
// dispatch, pool-contended touches, reclaim decisions — with three
// tenants in steady state. The CI bench gate keeps it allocation-free:
// the reclaim decision must not allocate per step.
func BenchmarkTenantSteadyState(b *testing.B) {
	s, err := NewServer(Config{Machine: testMachine(96), Seed: 3, Sched: "qos"})
	if err != nil {
		b.Fatal(err)
	}
	// Effectively endless jobs so the set stays at three tenants.
	huge := int64(1 << 40)
	for i, k := range []KernelSpec{
		{Kind: "scan", Pages: 300, Passes: huge},
		{Kind: "stride", Pages: 256, Passes: huge},
		{Kind: "zipf", Pages: 220, Accesses: huge},
	} {
		if _, err := s.Submit(JobSpec{Name: fmt.Sprintf("t%d", i), Kernel: k,
			Class: Class(i), QuotaFrames: 28, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	// Warm into steady state: all tenants faulting against a full pool.
	for i := 0; i < 4096; i++ {
		s.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
