// Package tenant turns the single-run simulator into a long-lived
// multi-job out-of-core service: N concurrent tenant kernels share one
// frame pool (vm.Pool) and one disk array (stripefs over disk.Backend),
// under per-tenant residency quotas with fair-share reclaim,
// prefetch-priority classes (gold / silver / best-effort), and admission
// control that rejects or queues jobs whose minimum working set the pool
// cannot cover.
//
// Scheduling is a deterministic seeded round-robin over runnable
// tenants on the shared sim.Clock: each quantum runs one tenant for a
// bounded slice of accesses, parking it (without blocking the shared
// CPU) when it faults on an in-flight page. The same job mix and seed
// therefore produce byte-identical runs, and — because every write a
// tenant makes is chained only from its own previous values — a
// tenant's final memory image is identical solo or contended. Both
// properties are gated in CI.
package tenant

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

// Class re-exports disk.Class so callers configuring jobs need not
// import the disk package.
type Class = disk.Class

// Config describes the shared machine the server multiplexes.
type Config struct {
	// Machine is the simulated platform every tenant shares; the zero
	// value means hw.Default().
	Machine hw.Params

	// Seed drives the scheduler's rotor and, combined with each job's
	// own seed, the kernels' access streams.
	Seed uint64

	// SliceOps is the scheduling quantum in kernel accesses; 0 means 64.
	SliceOps int

	// Sched selects the shared array's request scheduler: "" or "fcfs",
	// "elevator", or "qos" (class-aware: demand faults first, then
	// writes, then prefetches by tenant class).
	Sched string

	// Metrics, if non-nil, receives the shared counters — per-tenant
	// tenant.<id>.{faults,residency,prefetch_dropped,stall_ticks},
	// admission admission.{admitted,queued,rejected}, and the disk
	// array's counters. Nil gives the server a private registry.
	Metrics *obs.Registry

	// Trace, if non-nil, collects a Chrome-trace timeline: one process
	// per tenant (its VM core and fault tracks) plus one for the shared
	// array.
	Trace *obs.Trace

	// Faults, if non-nil and enabled, injects deterministic faults into
	// the shared array and every tenant's hint plane, exactly as in
	// core.Config.
	Faults *fault.Profile
}

// JobSpec describes one tenant job.
type JobSpec struct {
	// Name labels the job's file, trace process, and report.
	Name string

	// Kernel is the job's access pattern.
	Kernel KernelSpec

	// Class is the job's prefetch-priority class (Gold zero value).
	Class disk.Class

	// QuotaFrames is the job's residency quota; 0 means unlimited.
	// Over-quota tenants are reclaimed first; under-quota tenants are
	// protected while any tenant is over.
	QuotaFrames int64

	// MinFrames is the minimum working set admission control must
	// reserve before the job may run. Jobs whose MinFrames exceeds the
	// pool's admissible capacity are rejected outright; jobs that do
	// not currently fit wait in FIFO order. 0 means min(16, Pages).
	MinFrames int64

	// HintBudget, if positive, caps the prefetch pages the job's
	// run-time layer may issue per scheduling quantum (the budget is
	// reset, not accumulated, at each slice). 0 means unlimited.
	HintBudget int64

	// Seed perturbs the job's access stream; combined with the server
	// seed so two jobs with the same spec still write distinct values.
	Seed uint64
}

type tenantState uint8

const (
	stateQueued tenantState = iota
	stateRunnable
	stateBlocked
	stateFinished
)

// Tenant is one admitted job's live state.
type Tenant struct {
	ID   int
	Spec JobSpec

	srv   *Server
	vm    *vm.VM
	layer *rt.Layer
	kern  kernel
	reg   *obs.Registry // private: the tenant's vm.* / rt.* counters

	state      tenantState
	idx        int64 // next access index in the kernel stream
	resuming   bool  // the current access already charged its fault
	waitPage   int64
	blockStart sim.Time
	stall      sim.Time

	admitted    sim.Time
	finished    sim.Time
	fingerprint uint64

	// Shared-registry handles (tenant.<id>.*).
	cFaults, cResidency, cDropped, cStall *obs.Counter
}

// Report is one job's final accounting.
type Report struct {
	ID          int
	Name        string
	Class       disk.Class
	Fingerprint uint64
	Admitted    sim.Time
	Finished    sim.Time
	Stall       sim.Time
	Mem         vm.Stats
	RT          rt.Stats
}

// Server is the multi-tenant out-of-core service.
type Server struct {
	clock *sim.Clock
	p     hw.Params
	fs    *stripefs.FS
	pool  *vm.Pool
	reg   *obs.Registry
	trace *obs.Trace
	inj   *fault.Injector

	seed     uint64
	sliceOps int
	capacity int64 // admissible frames: pool size minus daemon headroom

	all      []*Tenant // submission order, including queued and finished
	running  []*Tenant // admitted, unfinished, in admission order
	waitQ    []*Tenant // FIFO admission queue
	reserved int64     // sum of running tenants' MinFrames
	rotor    int
	started  bool

	cAdmitted, cQueued, cRejected *obs.Counter

	// unblockFn is the bound WaitFor condition, allocated once so the
	// all-blocked path stays allocation-free in steady state.
	unblockFn func() bool
}

// NewServer builds a server over a fresh simulated machine.
func NewServer(cfg Config) (*Server, error) {
	machine := cfg.Machine
	if machine.PageSize == 0 {
		machine = hw.Default()
	}
	if err := machine.Validate(); err != nil {
		return nil, err
	}
	var mkSched func() disk.Scheduler
	switch cfg.Sched {
	case "", "fcfs":
	case "elevator":
		mkSched = func() disk.Scheduler { return &disk.Elevator{} }
	case "qos":
		mkSched = func() disk.Scheduler { return disk.QoS{} }
	default:
		return nil, fmt.Errorf("tenant: unknown scheduler %q (want fcfs, elevator, or qos)", cfg.Sched)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	clock := sim.NewClock()
	o := &obs.RunObs{Reg: reg}
	if cfg.Trace != nil {
		o.Proc = cfg.Trace.NewProcess("array")
	}
	fs := stripefs.NewObserved(clock, machine, mkSched, o)
	s := &Server{
		clock:     clock,
		p:         machine,
		fs:        fs,
		pool:      vm.NewPool(clock, machine),
		reg:       reg,
		trace:     cfg.Trace,
		seed:      cfg.Seed,
		sliceOps:  cfg.SliceOps,
		capacity:  machine.Frames() - machine.LowWater(),
		cAdmitted: reg.Counter("admission.admitted"),
		cQueued:   reg.Counter("admission.queued"),
		cRejected: reg.Counter("admission.rejected"),
	}
	if s.sliceOps <= 0 {
		s.sliceOps = 64
	}
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
		s.inj = fault.NewInjector(*cfg.Faults, reg, o.Thread("fault-injector"))
		fs.SetFaults(s.inj)
	}
	s.unblockFn = func() bool {
		for _, t := range s.running {
			if t.state == stateBlocked && !t.vm.InTransit(t.waitPage) {
				return true
			}
		}
		return false
	}
	clock.DeadlockInfo = s.deadlockInfo
	return s, nil
}

// Clock returns the shared simulated clock.
func (s *Server) Clock() *sim.Clock { return s.clock }

// Pool returns the shared frame pool.
func (s *Server) Pool() *vm.Pool { return s.pool }

// Metrics returns the shared registry.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Capacity returns the admissible frame capacity (pool size minus the
// pageout daemon's low-water headroom).
func (s *Server) Capacity() int64 { return s.capacity }

// Faults returns the injected-fault tallies (zero when the server was
// built without a fault profile), publishing them into the metrics
// registry as a side effect.
func (s *Server) Faults() fault.Counts { return s.inj.Counts() }

func (s *Server) deadlockInfo() string {
	out := ""
	for i, d := range s.fs.Backends() {
		out += fmt.Sprintf("disk %d: busy=%v queue=%d\n", i, d.Busy(), d.QueueLen())
	}
	for _, t := range s.running {
		out += fmt.Sprintf("tenant %d (%s): state=%d idx=%d/%d waitPage=%d\n",
			t.ID, t.Spec.Name, t.state, t.idx, t.kern.total, t.waitPage)
	}
	return out
}

// Submit offers a job to the server. It returns an error if the job can
// never run (its minimum working set exceeds the admissible capacity, or
// the spec is invalid); otherwise the job is admitted immediately when
// its reservation fits, and queued FIFO when it does not. Submissions
// are part of the deterministic input: same order, same run.
func (s *Server) Submit(spec JobSpec) (*Tenant, error) {
	if err := spec.Kernel.validate(); err != nil {
		return nil, err
	}
	if spec.MinFrames == 0 {
		spec.MinFrames = min64(16, spec.Kernel.Pages)
	}
	if spec.MinFrames < 0 || spec.QuotaFrames < 0 || spec.HintBudget < 0 {
		return nil, fmt.Errorf("tenant: negative resource bound in job %q", spec.Name)
	}
	if spec.Class > disk.BestEffort {
		return nil, fmt.Errorf("tenant: unknown class %d in job %q", spec.Class, spec.Name)
	}
	if spec.MinFrames > s.capacity {
		s.cRejected.Inc()
		return nil, fmt.Errorf("tenant: job %q needs %d frames but only %d are admissible",
			spec.Name, spec.MinFrames, s.capacity)
	}
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("job-%d", len(s.all))
	}
	t := &Tenant{ID: len(s.all), Spec: spec, srv: s, waitPage: -1}
	t.kern = newKernel(spec.Kernel, s.seed^splitmix(spec.Seed+uint64(t.ID)), s.p.PageSize)
	id := t.ID
	t.cFaults = s.reg.Counter(fmt.Sprintf("tenant.%d.faults", id))
	t.cResidency = s.reg.Counter(fmt.Sprintf("tenant.%d.residency", id))
	t.cDropped = s.reg.Counter(fmt.Sprintf("tenant.%d.prefetch_dropped", id))
	t.cStall = s.reg.Counter(fmt.Sprintf("tenant.%d.stall_ticks", id))
	s.all = append(s.all, t)
	if s.reserved+spec.MinFrames <= s.capacity && len(s.waitQ) == 0 {
		s.admit(t)
	} else {
		t.state = stateQueued
		s.waitQ = append(s.waitQ, t)
		s.cQueued.Inc()
	}
	return t, nil
}

// admit attaches the job to the shared pool and array and makes it
// runnable.
func (s *Server) admit(t *Tenant) {
	spec := &t.Spec
	file, err := s.fs.Create(fmt.Sprintf("%d-%s", t.ID, spec.Name), spec.Kernel.Pages)
	if err != nil {
		// Names are made unique above, and sizes were validated; a
		// create failure is a programming error, not load.
		panic(err)
	}
	t.reg = obs.NewRegistry()
	o := &obs.RunObs{Reg: t.reg}
	if s.trace != nil {
		o.Proc = s.trace.NewProcess(fmt.Sprintf("tenant-%d-%s", t.ID, spec.Name))
	}
	t.vm = s.pool.Attach(file, o)
	if spec.QuotaFrames > 0 {
		t.vm.SetQuota(spec.QuotaFrames)
	}
	t.vm.SetClass(spec.Class)
	if s.inj != nil {
		t.vm.SetFaults(s.inj)
	}
	t.layer = rt.RegisterObserved(t.vm, true, t.reg)
	if _, err := t.vm.Alloc("data", spec.Kernel.Pages*s.p.PageSize); err != nil {
		panic(err)
	}
	t.state = stateRunnable
	t.admitted = s.clock.Now()
	s.reserved += spec.MinFrames
	s.running = append(s.running, t)
	s.cAdmitted.Inc()
}

// admitQueued admits queued jobs, in strict FIFO order, while the head
// of the queue fits.
func (s *Server) admitQueued() {
	for len(s.waitQ) > 0 && s.reserved+s.waitQ[0].Spec.MinFrames <= s.capacity {
		t := s.waitQ[0]
		copy(s.waitQ, s.waitQ[1:])
		s.waitQ = s.waitQ[:len(s.waitQ)-1]
		s.admit(t)
	}
}

// pickNext returns the next runnable tenant under the seeded round-robin
// rotor, unparking blocked tenants whose awaited page has arrived. It
// returns nil when every running tenant is blocked (or none remain).
func (s *Server) pickNext() *Tenant {
	n := len(s.running)
	if n == 0 {
		return nil
	}
	if !s.started {
		s.started = true
		s.rotor = int(s.seed % uint64(n))
	}
	if s.rotor >= n {
		s.rotor = 0
	}
	for i := 0; i < n; i++ {
		t := s.running[(s.rotor+i)%n]
		if t.state == stateBlocked {
			if t.vm.InTransit(t.waitPage) {
				continue
			}
			t.unpark()
		}
		if t.state == stateRunnable {
			s.rotor = (s.rotor + i + 1) % n
			return t
		}
	}
	return nil
}

func (t *Tenant) unpark() {
	t.stall += t.srv.clock.Now() - t.blockStart
	t.cStall.Store(int64(t.stall))
	t.state = stateRunnable
}

// Step runs one scheduling decision: one tenant's slice, or — when all
// running tenants are parked on I/O — an idle wait until any of them can
// continue. It reports whether work remains.
func (s *Server) Step() bool {
	if len(s.running) == 0 {
		return false
	}
	t := s.pickNext()
	if t == nil {
		s.clock.WaitFor(s.unblockFn)
		return true
	}
	s.runSlice(t)
	return true
}

// Run drives the server until every submitted job has finished, then
// drains the event queue (trailing write-backs and daemon activity).
func (s *Server) Run() error {
	for s.Step() {
	}
	if len(s.waitQ) > 0 {
		// Unreachable by construction — the queue head always fits once
		// reserved returns to zero — but a stuck queue must be loud.
		return fmt.Errorf("tenant: %d jobs still queued with no tenants running", len(s.waitQ))
	}
	s.clock.Drain()
	s.inj.Counts() // publish final fault tallies into the registry
	return nil
}

// runSlice runs one tenant for up to SliceOps kernel accesses.
func (s *Server) runSlice(t *Tenant) {
	if t.Spec.HintBudget > 0 {
		// Reset, not top up: an idle quantum does not bank hint credit.
		t.layer.SetBudget(t.Spec.HintBudget)
	}
	for i := 0; i < s.sliceOps; i++ {
		if t.idx >= t.kern.total {
			s.finish(t)
			return
		}
		if !t.step() {
			t.state = stateBlocked
			t.blockStart = s.clock.Now()
			break
		}
	}
	// The tenant's pending compute lands on the shared clock before the
	// next tenant runs, so cross-tenant event order is well defined.
	t.vm.FlushUser()
	t.publish()
}

// step performs the tenant's next access: its hint (once per access),
// the touch, and — if the page is immediately usable — the
// read-modify-write itself. false parks the tenant on t.waitPage.
func (t *Tenant) step() bool {
	idx := t.idx
	if !t.resuming {
		if pfPage, pfN, relPage, relN := t.kern.hints(idx); pfN > 0 || relN > 0 {
			if pfN == 1 && relN == 0 {
				t.layer.Prefetch1(pfPage)
			} else {
				t.layer.PrefetchRelease(pfPage, pfN, relPage, relN)
			}
		}
	}
	page := t.kern.pageAt(idx)
	var ok bool
	if t.resuming {
		ok = t.vm.TouchResume(page)
	} else {
		ok = t.vm.TouchAsync(page)
	}
	if !ok {
		t.resuming = true
		t.waitPage = page
		return false
	}
	t.resuming = false
	addr := page*t.srv.p.PageSize + t.kern.wordAt(idx)*8
	old, _ := t.vm.LoadFast(addr)
	if !t.kern.spec.ReadOnly {
		t.vm.StoreFast(addr, mixValue(old, t.kern.seed, idx))
	}
	t.vm.AddUserOps(opsPerAccess)
	t.idx++
	return true
}

// publish refreshes the tenant's live shared-registry metrics.
func (t *Tenant) publish() {
	st := t.vm.Stats()
	t.cFaults.Store(st.MajorFaults)
	t.cResidency.Store(t.vm.ResidentFrames())
	t.cDropped.Store(st.PrefetchDropped + t.layer.Stats().BudgetDropped)
	t.cStall.Store(int64(t.stall))
}

// finish completes a job: final write-back, result fingerprint, frame
// release, metrics merge, and reservation return (which may admit queued
// jobs).
func (s *Server) finish(t *Tenant) {
	t.vm.Finish()
	t.fingerprint = t.Fingerprint()
	t.vm.Release(0, t.vm.AllocatedPages())
	t.vm.FlushUser()
	t.state = stateFinished
	t.finished = s.clock.Now()
	t.publish()
	s.reg.Merge(fmt.Sprintf("tenant.%d.", t.ID), t.reg)
	for i, r := range s.running {
		if r == t {
			copy(s.running[i:], s.running[i+1:])
			s.running = s.running[:len(s.running)-1]
			if s.rotor > i {
				s.rotor--
			}
			break
		}
	}
	s.reserved -= t.Spec.MinFrames
	s.admitQueued()
}

// Fingerprint hashes the tenant's entire data region (FNV-1a over every
// word, wherever it currently lives: frame memory or the backing file).
// After Finish it is the job's durable result; the isolation gate
// asserts it is identical solo and contended.
func (t *Tenant) Fingerprint() uint64 {
	h := uint64(fnvOffset)
	pageSize := t.srv.p.PageSize
	for p := int64(0); p < t.vm.AllocatedPages(); p++ {
		for w := int64(0); w < pageSize/8; w++ {
			h = fnv64(h, t.vm.Peek(p*pageSize+w*8))
		}
	}
	return h
}

// State accessors for tests and the bench surface.

// Done reports whether the job has finished.
func (t *Tenant) Done() bool { return t.state == stateFinished }

// Queued reports whether the job is still waiting for admission.
func (t *Tenant) Queued() bool { return t.state == stateQueued }

// VM returns the tenant's address space (nil until admitted).
func (t *Tenant) VM() *vm.VM { return t.vm }

// Report returns the job's accounting so far (final once Done).
func (t *Tenant) Report() Report {
	r := Report{
		ID:          t.ID,
		Name:        t.Spec.Name,
		Class:       t.Spec.Class,
		Fingerprint: t.fingerprint,
		Admitted:    t.admitted,
		Finished:    t.finished,
		Stall:       t.stall,
	}
	if t.vm != nil {
		r.Mem = t.vm.Stats()
		r.RT = t.layer.Stats()
	}
	return r
}

// Reports returns every submitted job's report in submission order.
func (s *Server) Reports() []Report {
	out := make([]Report, len(s.all))
	for i, t := range s.all {
		out[i] = t.Report()
	}
	return out
}
