package rt

import (
	"testing"

	"repro/internal/sim"
)

// TestPrefetch1Parity is the differential contract of the single-page
// fast path: two identical systems, one driven through Prefetch1 and
// one through the general PrefetchRelease(page, 1, 0, 0), must agree on
// every layer counter, every VM counter, and the simulated clock after
// each call — across filtered hits, issued misses, and the disabled
// pass-through configuration.
func TestPrefetch1Parity(t *testing.T) {
	for _, enabled := range []bool{true, false} {
		name := "enabled"
		if !enabled {
			name = "disabled"
		}
		t.Run(name, func(t *testing.T) {
			cA, vA := newSystem(t, 64, 64)
			cB, vB := newSystem(t, 64, 64)
			lA := Register(vA, enabled)
			lB := Register(vB, enabled)
			ps := vA.Params().PageSize
			baseA, _ := vA.Alloc("x", 8*ps)
			baseB, _ := vB.Alloc("x", 8*ps)
			if baseA != baseB {
				t.Fatal("allocations diverged")
			}
			p0 := vA.PageOf(baseA)

			step := func(what string, page int64) {
				lA.Prefetch1(page)
				lB.PrefetchRelease(page, 1, 0, 0)
				cA.Advance(10 * sim.Millisecond)
				cB.Advance(10 * sim.Millisecond)
				if sa, sb := lA.Stats(), lB.Stats(); sa != sb {
					t.Fatalf("%s: layer stats diverged: %+v vs %+v", what, sa, sb)
				}
				if sa, sb := vA.Stats(), vB.Stats(); sa != sb {
					t.Fatalf("%s: vm stats diverged: %+v vs %+v", what, sa, sb)
				}
				if ta, tb := vA.Times(), vB.Times(); ta != tb {
					t.Fatalf("%s: time split diverged: %+v vs %+v", what, ta, tb)
				}
				if cA.Now() != cB.Now() {
					t.Fatalf("%s: clocks diverged: %v vs %v", what, cA.Now(), cB.Now())
				}
			}

			step("cold miss", p0)        // bit clear: issue
			step("filtered hit", p0)     // bit set: filter (enabled) / issue again (disabled)
			step("second page", p0+1)    // independent cold miss
			step("repeat second", p0+1)  // filtered again
			step("far page", p0+6)       // miss beyond the earlier window
			step("far page again", p0+6) // and its filtered repeat
		})
	}
}
