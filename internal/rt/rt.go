// Package rt implements the run-time layer of the paper (§2.2.2, §2.4):
// a thin user-level library between the compiled application and the
// operating system. It registers with the OS to share the residency
// bit-vector page and uses it to filter the prefetches the compiler
// inserted: a prefetch whose pages are all believed resident is dropped
// without a system call, at roughly 1% of the cost. For block prefetches
// it checks pages until the first one not in memory and passes all
// remaining pages to the OS, so at most one system call is made per block.
//
// The layer can be disabled to reproduce Figure 4(c), in which case every
// compiler-inserted prefetch goes straight to the OS.
package rt

import (
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Stats counts run-time-layer activity. InsertedPages is the denominator
// of Figure 4(b)'s right-hand column: every page named by a
// compiler-inserted prefetch that reached the layer.
type Stats struct {
	InsertedCalls int64 // compiler-inserted prefetch/release call sites executed
	InsertedPages int64 // pages named by those prefetches
	FilteredPages int64 // pages dropped at user level (believed resident)
	IssuedCalls   int64 // system calls actually made
	IssuedPages   int64 // prefetch pages passed to the OS
	ReleasePages  int64 // release pages passed through (never filtered)
	BudgetDropped int64 // prefetch pages dropped at user level: hint budget exhausted
}

// UnnecessaryInsertedFrac returns the fraction of compiler-inserted
// prefetch pages that the layer filtered as unnecessary — the right-hand
// column of Figure 4(b).
func (s Stats) UnnecessaryInsertedFrac() float64 {
	if s.InsertedPages == 0 {
		return 0
	}
	return float64(s.FilteredPages) / float64(s.InsertedPages)
}

// counters holds the layer's metrics-registry handles ("rt.*"). The
// filter path increments the plain Stats fields directly (the layer runs
// on its run's single goroutine); Layer.Stats publishes them into these
// handles with absolute stores, the layer being their sole writer.
type counters struct {
	insertedCalls, insertedPages, filteredPages *obs.Counter
	issuedCalls, issuedPages, releasePages      *obs.Counter
	budgetDropped                               *obs.Counter
}

func (c *counters) publish(s *Stats) {
	c.insertedCalls.Store(s.InsertedCalls)
	c.insertedPages.Store(s.InsertedPages)
	c.filteredPages.Store(s.FilteredPages)
	c.issuedCalls.Store(s.IssuedCalls)
	c.issuedPages.Store(s.IssuedPages)
	c.releasePages.Store(s.ReleasePages)
	c.budgetDropped.Store(s.BudgetDropped)
}

// Layer is one application's run-time layer instance.
type Layer struct {
	vm      *vm.VM
	bv      *vm.BitVector
	enabled bool
	// filterCheck caches Params().FilterCheckTime so the single-page
	// fast path doesn't re-read the parameter struct per hint.
	filterCheck sim.Time
	// budget is the number of prefetch pages the layer may still pass to
	// the OS; -1 means unlimited (the single-tenant default). A
	// multi-tenant scheduler refills it per scheduling quantum so that no
	// tenant's hint stream can monopolize the shared disk queues: once
	// exhausted, prefetch hints are dropped at user level (counted in
	// BudgetDropped) while releases still pass through — releases free
	// shared memory and must never be throttled.
	budget int64
	n      Stats
	c      counters
}

// Register attaches a run-time layer to an address space, sharing the OS
// bit-vector page. If enabled is false the layer becomes a pass-through
// (the Figure 4(c) configuration). Accounting lands in a private metrics
// registry; RegisterObserved shares one with the rest of the system.
func Register(v *vm.VM, enabled bool) *Layer {
	return RegisterObserved(v, enabled, nil)
}

// RegisterObserved is Register with the layer's counters registered in
// reg ("rt.*"); nil gets a private registry.
func RegisterObserved(v *vm.VM, enabled bool, reg *obs.Registry) *Layer {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Layer{vm: v, bv: v.BitVector(), enabled: enabled,
		filterCheck: v.Params().FilterCheckTime, budget: -1, c: counters{
			insertedCalls: reg.Counter("rt.inserted_calls"),
			insertedPages: reg.Counter("rt.inserted_pages"),
			filteredPages: reg.Counter("rt.filtered_pages"),
			issuedCalls:   reg.Counter("rt.issued_calls"),
			issuedPages:   reg.Counter("rt.issued_pages"),
			releasePages:  reg.Counter("rt.release_pages"),
			budgetDropped: reg.Counter("rt.budget_dropped"),
		}}
}

// SetBudget sets the remaining prefetch-page budget; -1 (the default)
// disables budgeting entirely.
func (l *Layer) SetBudget(n int64) { l.budget = n }

// Budget returns the remaining prefetch-page budget (-1 if unlimited).
func (l *Layer) Budget() int64 { return l.budget }

// Refill adds n pages to the budget, as a scheduler does at the start of
// a tenant's quantum. It is a no-op on an unlimited layer.
func (l *Layer) Refill(n int64) {
	if l.budget >= 0 {
		l.budget += n
	}
}

// spend consumes budget for n prefetch pages about to be issued and
// reports whether the issue may proceed. A block spends as a unit: it
// proceeds if any budget remains (the balance may go briefly negative)
// so that hint coalescing is not defeated by an unlucky boundary.
func (l *Layer) spend(n int64) bool {
	if l.budget < 0 {
		return true
	}
	if l.budget == 0 {
		l.n.BudgetDropped += n
		return false
	}
	l.budget -= n
	if l.budget < 0 {
		l.budget = 0
	}
	return true
}

// Enabled reports whether filtering is active.
func (l *Layer) Enabled() bool { return l.enabled }

// Stats returns a snapshot of the layer's counters, publishing them into
// the metrics registry as a side effect.
func (l *Layer) Stats() Stats {
	l.c.publish(&l.n)
	return l.n
}

// Prefetch handles a compiler-inserted prefetch of n pages at page.
func (l *Layer) Prefetch(page, n int64) { l.PrefetchRelease(page, n, 0, 0) }

// Prefetch1 handles the single-page, no-release prefetch — the shape
// the executor's compiled kernels issue once per iteration in
// hint-dense inner loops. It is observably identical to
// PrefetchRelease(page, 1, 0, 0) — same counters, same filter charge,
// same syscall decision — with the general block-scan machinery
// specialized down to one bit test.
func (l *Layer) Prefetch1(page int64) {
	l.n.InsertedCalls++
	l.n.InsertedPages++
	if !l.enabled {
		if !l.spend(1) {
			return
		}
		l.n.IssuedCalls++
		l.n.IssuedPages++
		l.vm.PrefetchRelease(page, 1, 0, 0)
		return
	}
	l.vm.AddUserTimeN(l.filterCheck, 1)
	if l.bv.Get(page) {
		l.n.FilteredPages++
		return
	}
	if !l.spend(1) {
		return
	}
	l.n.IssuedCalls++
	l.n.IssuedPages++
	l.bv.Set(page)
	l.vm.PrefetchRelease(page, 1, 0, 0)
}

// Release handles a compiler-inserted release of n pages at page.
// Releases are never filtered: the layer cannot know better than the
// compiler that the data is dead, and the OS must clear the bits.
func (l *Layer) Release(page, n int64) { l.PrefetchRelease(0, 0, page, n) }

// PrefetchRelease handles a bundled compiler call (prefetch_release_block
// in Figure 2): prefetch [pfPage, pfPage+pfN), release [relPage,
// relPage+relN), with at most one system call.
func (l *Layer) PrefetchRelease(pfPage, pfN, relPage, relN int64) {
	l.n.InsertedCalls++
	l.n.InsertedPages += pfN

	if !l.enabled {
		if pfN > 0 && !l.spend(pfN) {
			pfPage, pfN = 0, 0
			if relN == 0 {
				return
			}
		}
		l.n.IssuedCalls++
		l.n.IssuedPages += pfN
		l.n.ReleasePages += relN
		l.vm.PrefetchRelease(pfPage, pfN, relPage, relN)
		return
	}

	// Check pages until one is found that is not in memory; everything
	// before it is filtered, everything from it on is passed through.
	// NextClear scans the vector a word at a time; the simulated cost is
	// still one FilterCheckTime per page the per-page loop would have
	// inspected — the filtered run plus the first absent page, if any —
	// batched into a single charge.
	p := pfPage
	end := pfPage + pfN
	if pfN > 0 {
		p = l.bv.NextClear(pfPage, end)
		checked := pfN
		if p < end {
			checked = p - pfPage + 1
		}
		l.vm.AddUserTimeN(l.vm.Params().FilterCheckTime, checked)
	}
	l.n.FilteredPages += p - pfPage

	if p == end && relN == 0 {
		return // entire prefetch filtered, nothing to release: no syscall
	}

	issueN := end - p
	if issueN > 0 && !l.spend(issueN) {
		p, issueN = 0, 0
		if relN == 0 {
			return
		}
	}
	l.n.IssuedCalls++
	l.n.IssuedPages += issueN
	l.n.ReleasePages += relN
	// Set the bits at issue time, as the paper specifies. If the OS drops
	// the prefetch the bit is merely stale: the page faults on use, which
	// is always safe, and the OS re-clears bits on reclaim.
	l.bv.SetRange(p, issueN)
	l.vm.PrefetchRelease(p, issueN, relPage, relN)
}
