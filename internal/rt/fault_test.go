package rt

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

// newFaultySystem is newSystem with a fault injector attached to the
// disks and the VM, as core wires it.
func newFaultySystem(t testing.TB, frames, spacePages int64, prof fault.Profile) (*sim.Clock, *vm.VM) {
	t.Helper()
	p := hw.Default()
	p.MemoryBytes = frames * p.PageSize
	c := sim.NewClock()
	fs := stripefs.New(c, p, nil)
	f, err := fs.Create("space", spacePages)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(c, p, f)
	inj := fault.NewInjector(prof, nil, nil)
	fs.SetFaults(inj)
	v.SetFaults(inj)
	return c, v
}

// The run-time layer sets residency bits at issue time; a prefetch the
// fault plane then drops or abandons leaves the bit stale. Stale bits
// must be harmless: a later filtered-away prefetch is just a lost
// optimization, and the touch itself demand-faults safely with the VM
// clearing the bit on drop/abandon so the window is small. This test
// drives the layer under an abandon-heavy profile and checks data
// correctness and the VM invariants.
func TestStaleBitsAfterDroppedAndAbandonedPrefetches(t *testing.T) {
	prof := fault.Profile{
		Name:          "abandoner",
		Seed:          31,
		ReadErrorRate: 0.6,
		DropRate:      0.3,
		Retry:         fault.RetryPolicy{MaxAttempts: 2, Timeout: 3600 * sim.Second},
	}
	c, v := newFaultySystem(t, 48, 96, prof)
	l := Register(v, true)
	base, _ := v.Alloc("x", 96*v.Params().PageSize)
	ps := v.Params().PageSize

	for round := 0; round < 3; round++ {
		for p := int64(0); p < 96; p += 8 {
			l.Prefetch(p, 8)
			c.Advance(3 * sim.Millisecond)
		}
		for p := int64(0); p < 96; p++ {
			v.Store(base+p*ps, uint64(round)<<32|uint64(p))
		}
		if err := v.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	s := v.Stats()
	if s.PrefetchAbandoned == 0 && s.PrefetchDropped == 0 {
		t.Fatalf("profile injected no drops or abandonments: %+v", s)
	}
	for p := int64(0); p < 96; p++ {
		if got, want := v.Load(base+p*ps), uint64(2)<<32|uint64(p); got != want {
			t.Fatalf("page %d = %#x, want %#x", p, got, want)
		}
	}
	if l.Stats().InsertedPages == 0 {
		t.Fatal("layer saw no prefetches")
	}
	v.Finish()
	c.Drain()
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
