package rt

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

func newSystem(t testing.TB, frames, spacePages int64) (*sim.Clock, *vm.VM) {
	t.Helper()
	p := hw.Default()
	p.MemoryBytes = frames * p.PageSize
	c := sim.NewClock()
	fs := stripefs.New(c, p, nil)
	f, err := fs.Create("space", spacePages)
	if err != nil {
		t.Fatal(err)
	}
	return c, vm.New(c, p, f)
}

func TestFilterDropsResidentPrefetch(t *testing.T) {
	c, v := newSystem(t, 64, 64)
	l := Register(v, true)
	base, _ := v.Alloc("x", 4*v.Params().PageSize)
	p0 := v.PageOf(base)

	l.Prefetch(p0, 2)
	c.Advance(sim.Second)
	callsAfterFirst := v.Stats().PrefetchCalls

	// Second identical prefetch: both pages are resident and the bits are
	// set, so no system call may happen.
	l.Prefetch(p0, 2)
	s := l.Stats()
	if v.Stats().PrefetchCalls != callsAfterFirst {
		t.Fatal("fully-filtered prefetch still made a system call")
	}
	if s.FilteredPages != 2 {
		t.Fatalf("FilteredPages = %d, want 2", s.FilteredPages)
	}
	if s.InsertedPages != 4 || s.InsertedCalls != 2 {
		t.Fatalf("inserted accounting wrong: %+v", s)
	}
}

func TestFilterCostIsTiny(t *testing.T) {
	c, v := newSystem(t, 64, 64)
	l := Register(v, true)
	base, _ := v.Alloc("x", 4*v.Params().PageSize)
	p0 := v.PageOf(base)
	l.Prefetch(p0, 1)
	c.Advance(sim.Second)

	// A filtered prefetch costs only the user-level check, ~1% of the
	// syscall; it must not add system time.
	sysBefore := v.Times().SysPrefetch
	userBefore := v.Times().User
	l.Prefetch(p0, 1)
	if v.Times().SysPrefetch != sysBefore {
		t.Fatal("filtered prefetch charged system time")
	}
	userCost := v.Times().User - userBefore
	if userCost <= 0 || userCost > v.Params().PrefetchSyscallTime/10 {
		t.Fatalf("filter cost %v, want small positive (≪ syscall %v)",
			userCost, v.Params().PrefetchSyscallTime)
	}
}

func TestBlockTrimsLeadingResidentPages(t *testing.T) {
	c, v := newSystem(t, 64, 64)
	l := Register(v, true)
	base, _ := v.Alloc("x", 8*v.Params().PageSize)
	p0 := v.PageOf(base)

	l.Prefetch(p0, 2) // pages 0,1 resident
	c.Advance(sim.Second)
	issuedBefore := l.Stats().IssuedPages

	// Block prefetch of pages 0..5: 0 and 1 trim, 2..5 pass in ONE call.
	callsBefore := v.Stats().PrefetchCalls
	l.Prefetch(p0, 6)
	s := l.Stats()
	if got := s.IssuedPages - issuedBefore; got != 4 {
		t.Fatalf("issued %d pages, want 4 (leading 2 trimmed)", got)
	}
	if v.Stats().PrefetchCalls != callsBefore+1 {
		t.Fatal("block prefetch made more than one system call")
	}
}

func TestInteriorResidentPagePassesThrough(t *testing.T) {
	// The paper passes "all remaining pages" after the first non-resident
	// one, so a resident page in the middle reaches the OS and is counted
	// unnecessary there — exactly the Figure 4(b) left-column effect.
	c, v := newSystem(t, 64, 64)
	l := Register(v, true)
	base, _ := v.Alloc("x", 8*v.Params().PageSize)
	p0 := v.PageOf(base)

	l.Prefetch(p0+2, 1) // make an interior page resident
	c.Advance(sim.Second)
	unneededBefore := v.Stats().PrefetchUnneeded

	l.Prefetch(p0, 6)
	if got := v.Stats().PrefetchUnneeded - unneededBefore; got != 1 {
		t.Fatalf("interior resident page: OS saw %d unnecessary, want 1", got)
	}
}

func TestDisabledLayerPassesEverything(t *testing.T) {
	c, v := newSystem(t, 64, 64)
	l := Register(v, false)
	base, _ := v.Alloc("x", 4*v.Params().PageSize)
	p0 := v.PageOf(base)

	l.Prefetch(p0, 2)
	c.Advance(sim.Second)
	l.Prefetch(p0, 2) // resident, but the layer is off: syscall anyway
	if got := v.Stats().PrefetchCalls; got != 2 {
		t.Fatalf("disabled layer made %d syscalls, want 2", got)
	}
	if got := v.Stats().PrefetchUnneeded; got != 2 {
		t.Fatalf("OS saw %d unnecessary pages, want 2", got)
	}
	if l.Stats().FilteredPages != 0 {
		t.Fatal("disabled layer filtered pages")
	}
}

func TestReleaseAlwaysReachesOS(t *testing.T) {
	c, v := newSystem(t, 64, 64)
	l := Register(v, true)
	base, _ := v.Alloc("x", 8*v.Params().PageSize)
	p0 := v.PageOf(base)
	l.Prefetch(p0, 4)
	c.Advance(sim.Second)

	// Bundled call whose prefetch part is fully resident: the release
	// still needs the kernel, so exactly one syscall happens.
	callsBefore := v.Stats().PrefetchCalls
	l.PrefetchRelease(p0, 4, p0, 2)
	if got := v.Stats().PrefetchCalls - callsBefore; got != 1 {
		t.Fatalf("bundled call with releases made %d syscalls, want 1", got)
	}
	if got := v.Stats().ReleasedPages; got != 2 {
		t.Fatalf("OS released %d pages, want 2", got)
	}
}

func TestFilteredFractionStat(t *testing.T) {
	s := Stats{InsertedPages: 100, FilteredPages: 96}
	if got := s.UnnecessaryInsertedFrac(); got != 0.96 {
		t.Fatalf("UnnecessaryInsertedFrac = %v, want 0.96", got)
	}
	if (Stats{}).UnnecessaryInsertedFrac() != 0 {
		t.Fatal("zero stats should give 0")
	}
}

func TestFilterMuchCheaperThanSyscallEndToEnd(t *testing.T) {
	// End-to-end version of the paper's claim: issuing N unnecessary
	// prefetches through the layer must be far cheaper than issuing them
	// to the OS directly.
	elapsed := func(enabled bool) sim.Time {
		c, v := newSystem(t, 64, 64)
		l := Register(v, enabled)
		base, _ := v.Alloc("x", 4*v.Params().PageSize)
		p0 := v.PageOf(base)
		l.Prefetch(p0, 1)
		c.Advance(sim.Second)
		start := c.Now()
		for i := 0; i < 1000; i++ {
			l.Prefetch(p0, 1)
		}
		v.Finish()
		return c.Now() - start
	}
	with, without := elapsed(true), elapsed(false)
	if with*20 > without {
		t.Fatalf("filtering saved too little: with=%v without=%v", with, without)
	}
}
