package bench

import (
	"fmt"
	"io"

	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/vm"
)

// normBar renders a stacked execution-time bar normalized to base.
func normBar(t vm.TimeStats, base sim.Time) string {
	f := func(x sim.Time) float64 { return 100 * float64(x) / float64(base) }
	return fmt.Sprintf("%6.1f = user %5.1f + sys-fault %5.1f + sys-pf %5.1f + idle %5.1f",
		f(t.Total()), f(t.User), f(t.SysFault), f(t.SysPrefetch), f(t.Idle))
}

// Fig3 prints the overall performance comparison: Figure 3(a)'s
// normalized execution-time bars with the user/system/idle breakdown, and
// Figure 3(b)'s page-fault and stall-time reductions.
func Fig3(w io.Writer, rs []*AppResult) {
	fmt.Fprintln(w, "Figure 3(a): Normalized execution time (O = original paged VM = 100, P = prefetching)")
	fmt.Fprintln(w, "--------------------------------------------------------------------------------------")
	for _, r := range rs {
		base := r.O.Times.Total()
		fmt.Fprintf(w, "  %-6s O: %s\n", r.Name, normBar(r.O.Times, base))
		fmt.Fprintf(w, "  %-6s P: %s   speedup %.2fx\n", "", normBar(r.P.Times, base), r.Speedup())
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 3(b): Page faults and I/O stall time")
	fmt.Fprintln(w, "-------------------------------------------")
	fmt.Fprintf(w, "  %-6s %12s %12s %12s %12s %10s\n",
		"app", "faults(O)", "faults(P)", "stall(O)", "stall(P)", "stall-elim")
	for _, r := range rs {
		fmt.Fprintf(w, "  %-6s %12d %12d %12v %12v %9.0f%%\n",
			r.Name, r.O.Mem.MajorFaults, r.P.Mem.MajorFaults,
			r.O.Times.Idle, r.P.Times.Idle, r.StallEliminated()*100)
	}
}

// Fig4 prints the compiler/run-time-layer effectiveness figures:
// Figure 4(a)'s fault-coverage breakdown, Figure 4(b)'s unnecessary
// prefetch fractions, and Figure 4(c)'s no-run-time-layer comparison.
func Fig4(w io.Writer, rs []*AppResult) {
	fmt.Fprintln(w, "Figure 4(a): Breakdown of original page faults (prefetching runs)")
	fmt.Fprintln(w, "------------------------------------------------------------------")
	fmt.Fprintf(w, "  %-6s %14s %16s %18s %9s\n",
		"app", "prefetched-hit", "prefetched-fault", "non-prefetched", "coverage")
	for _, r := range rs {
		m := r.P.Mem
		total := m.OriginalFaults()
		if total == 0 {
			total = 1
		}
		pct := func(v int64) float64 { return 100 * float64(v) / float64(total) }
		fmt.Fprintf(w, "  %-6s %13.1f%% %15.1f%% %17.1f%% %8.1f%%\n",
			r.Name, pct(m.PrefetchedHits), pct(m.PrefetchedFaults),
			pct(m.NonPrefetchedFault), m.CoverageFactor()*100)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 4(b): Unnecessary prefetches")
	fmt.Fprintln(w, "-----------------------------------")
	fmt.Fprintf(w, "  %-6s %26s %30s\n", "app", "unnecessary at OS (issued)", "inserted & filtered by run-time")
	for _, r := range rs {
		fmt.Fprintf(w, "  %-6s %25.1f%% %29.1f%%\n",
			r.Name, r.P.Mem.UnnecessaryAtOSFrac()*100, r.P.RT.UnnecessaryInsertedFrac()*100)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Figure 4(c): Performance without the run-time layer (normalized to original = 100)")
	fmt.Fprintln(w, "-----------------------------------------------------------------------------------")
	fmt.Fprintf(w, "  %-6s %10s %10s %12s\n", "app", "P", "P-no-rt", "rt-essential")
	for _, r := range rs {
		if r.NoRT == nil {
			continue
		}
		base := float64(r.O.Times.Total())
		p := 100 * float64(r.P.Times.Total()) / base
		n := 100 * float64(r.NoRT.Times.Total()) / base
		verdict := ""
		if n > 100 {
			verdict = "slower than original"
		}
		fmt.Fprintf(w, "  %-6s %9.1f%% %9.1f%% %12s\n", r.Name, p, n, verdict)
	}
}

// Fig5 prints the disk request breakdown and average disk utilization.
func Fig5(w io.Writer, rs []*AppResult) {
	fmt.Fprintln(w, "Figure 5: Disk requests and utilization (O = original, P = prefetching)")
	fmt.Fprintln(w, "------------------------------------------------------------------------")
	fmt.Fprintf(w, "  %-6s %-3s %12s %12s %12s %12s %6s\n",
		"app", "", "fault-reads", "pf-reads", "writes", "total", "util")
	sum := func(ds []disk.Stats, k disk.Kind) int64 {
		var n int64
		for _, d := range ds {
			n += d.Requests[k]
		}
		return n
	}
	for _, r := range rs {
		o, p := r.O, r.P
		fmt.Fprintf(w, "  %-6s %-3s %12d %12d %12d %12d %5.0f%%\n",
			r.Name, "O", sum(o.DiskStats, disk.FaultRead), sum(o.DiskStats, disk.PrefetchRead),
			sum(o.DiskStats, disk.Write),
			sum(o.DiskStats, disk.FaultRead)+sum(o.DiskStats, disk.PrefetchRead)+sum(o.DiskStats, disk.Write),
			o.DiskUtil*100)
		fmt.Fprintf(w, "  %-6s %-3s %12d %12d %12d %12d %5.0f%%\n",
			"", "P", sum(p.DiskStats, disk.FaultRead), sum(p.DiskStats, disk.PrefetchRead),
			sum(p.DiskStats, disk.Write),
			sum(p.DiskStats, disk.FaultRead)+sum(p.DiskStats, disk.PrefetchRead)+sum(p.DiskStats, disk.Write),
			p.DiskUtil*100)
	}
	fmt.Fprintln(w, "  (paper shape: totals do not increase with prefetching; utilization rises")
	fmt.Fprintln(w, "   because the same accesses happen over a shorter time)")
}
