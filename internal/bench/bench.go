// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section (§3–§4) from the simulated
// system, printing the same rows and series the paper reports. Absolute
// numbers differ (the substrate is a simulator, not the authors' Hector
// testbed); the shapes — who wins, by what factor, where the crossovers
// fall — are the reproduction targets recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/nas"
)

// AppResult bundles the runs of one application under one problem size.
type AppResult struct {
	Name      string
	DataBytes int64
	Machine   hw.Params
	O         *core.Result // original: plain paged virtual memory
	P         *core.Result // compiler-inserted prefetching + run-time layer
	NoRT      *core.Result // prefetching without the run-time layer (Fig 4(c)); may be nil
}

// Speedup returns O time / P time.
func (a *AppResult) Speedup() float64 { return a.P.Speedup(a.O) }

// StallEliminated returns the fraction of the original run's idle (I/O
// stall) time that prefetching removed.
func (a *AppResult) StallEliminated() float64 {
	if a.O.Times.Idle == 0 {
		return 0
	}
	saved := a.O.Times.Idle - a.P.Times.Idle
	return float64(saved) / float64(a.O.Times.Idle)
}

// RunApp runs one application at the given problem scale with the data
// set standing in the given ratio to memory. withNoRT additionally runs
// the no-run-time-layer configuration. Every run is validated against the
// kernel's independent reference implementation.
func RunApp(app *nas.App, scale, ratio float64, withNoRT bool, mutate func(*core.Config)) (*AppResult, error) {
	if ratio <= 0 {
		ratio = app.Ratio()
	}
	build := func() (*core.Config, int64, error) {
		prog := app.Build(scale)
		ps := hw.Default().PageSize
		if err := prog.Resolve(ps); err != nil {
			return nil, 0, err
		}
		data := nas.DataBytes(prog, ps)
		cfg := core.DefaultConfig(core.MachineFor(data, ratio))
		cfg.Seed = app.Seed
		if mutate != nil {
			mutate(&cfg)
		}
		return &cfg, data, nil
	}

	runOne := func(adjust func(*core.Config)) (*core.Result, error) {
		cfg, _, err := build()
		if err != nil {
			return nil, err
		}
		adjust(cfg)
		prog := app.Build(scale)
		res, err := core.Run(prog, *cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", app.Name, err)
		}
		if err := app.Check(prog, res.VM, res.Env); err != nil {
			return nil, fmt.Errorf("%s: %w", app.Name, err)
		}
		return res, nil
	}

	cfg, data, err := build()
	if err != nil {
		return nil, err
	}
	out := &AppResult{Name: app.Name, DataBytes: data, Machine: cfg.Machine}
	if out.O, err = runOne(func(c *core.Config) { c.Prefetch = false }); err != nil {
		return nil, err
	}
	if out.P, err = runOne(func(c *core.Config) {}); err != nil {
		return nil, err
	}
	if withNoRT {
		if out.NoRT, err = runOne(func(c *core.Config) { c.RuntimeFilter = false }); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RunSuite runs the whole NAS suite at the paper's standard out-of-core
// setting (scale 1, data ≈ 2× memory), including the no-run-time-layer
// configuration, reusing results across Figures 3–5 and Table 3.
func RunSuite(scale, ratio float64, withNoRT bool) ([]*AppResult, error) {
	var out []*AppResult
	for _, app := range nas.Apps() {
		r, err := RunApp(app, scale, ratio, withNoRT, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// TwoVersionOptions returns compiler options with the §4.1.1 two-version
// loop extension enabled (the APPBT ablation).
func TwoVersionOptions() *compiler.Options {
	o := compiler.DefaultOptions()
	o.TwoVersionLoops = true
	return &o
}
