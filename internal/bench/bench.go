// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section (§3–§4) from the simulated
// system, printing the same rows and series the paper reports. Absolute
// numbers differ (the substrate is a simulator, not the authors' Hector
// testbed); the shapes — who wins, by what factor, where the crossovers
// fall — are the reproduction targets recorded in EXPERIMENTS.md.
//
// Every (app, scale, ratio, config-variant) tuple is an independent
// simulated run, so the harness fans the experiment matrix out across a
// worker pool (Runner) and collects results by submission index —
// parallel output is byte-identical to a serial run.
package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/nas"
	"repro/internal/obs"
	"repro/internal/profile"
)

// AppResult bundles the runs of one application under one problem size.
type AppResult struct {
	Name      string
	DataBytes int64
	Machine   hw.Params
	O         *core.Result // original: plain paged virtual memory
	P         *core.Result // compiler-inserted prefetching + run-time layer
	NoRT      *core.Result // prefetching without the run-time layer (Fig 4(c)); may be nil
}

// Speedup returns O time / P time.
func (a *AppResult) Speedup() float64 { return a.P.Speedup(a.O) }

// StallEliminated returns the fraction of the original run's idle (I/O
// stall) time that prefetching removed.
func (a *AppResult) StallEliminated() float64 {
	if a.O.Times.Idle == 0 {
		return 0
	}
	saved := a.O.Times.Idle - a.P.Times.Idle
	return float64(saved) / float64(a.O.Times.Idle)
}

// RunOptions configure a single-application run.
type RunOptions struct {
	// Scale multiplies the problem size; <= 0 means 1 (the standard
	// size).
	Scale float64
	// Ratio is the data:memory ratio; <= 0 means the app's standard
	// out-of-core ratio.
	Ratio float64
	// WithNoRT additionally runs the no-run-time-layer configuration
	// (Figure 4(c)).
	WithNoRT bool
	// Parallelism is the worker-pool size for the app's configuration
	// variants; <= 0 means GOMAXPROCS.
	Parallelism int
	// Timeout, if positive, bounds each variant's wall-clock time.
	Timeout time.Duration
	// ConfigMutator, if set, adjusts the base configuration of every
	// variant (compiler options, scheduling, warm start, ...).
	ConfigMutator func(*core.Config)
	// Trace, if non-nil, collects a Chrome-trace timeline: one process
	// per variant run, named "<label>/<variant>".
	Trace *obs.Trace
	// Metrics, if non-nil, receives each variant run's counters merged
	// under a "<label>/<variant>/" prefix when the run completes.
	Metrics *obs.Registry
	// Label is the trace/metrics prefix for this app's runs; empty means
	// the app name.
	Label string
	// Faults, if non-nil and enabled, injects the deterministic fault
	// profile into every variant run (core.Config.Faults). Results are
	// unchanged by construction; timing and fault counters are not.
	Faults *fault.Profile
	// Backend, if non-nil, runs every variant on the spec's storage tier
	// (core.Config.Backend). Results are identical across tiers by
	// construction; timing is not.
	Backend *core.BackendSpec
	// ProfileUse, if non-nil, feeds each prefetching variant the matching
	// kernel's recorded execution profile (pass 2 of the two-pass mode;
	// see RecordProfiles). Kernels absent from the set compile statically.
	ProfileUse *profile.Set
}

// SuiteOptions configure a whole-suite run.
type SuiteOptions struct {
	// Scale multiplies every app's problem size; <= 0 means 1.
	Scale float64
	// Ratio overrides the data:memory ratio; <= 0 means each app's
	// standard out-of-core ratio.
	Ratio float64
	// WithNoRT additionally runs each app without the run-time layer.
	WithNoRT bool
	// Parallelism is the worker-pool size; <= 0 means GOMAXPROCS.
	Parallelism int
	// Timeout, if positive, bounds each run's wall-clock time.
	Timeout time.Duration
	// Progress, if set, observes each run's completion.
	Progress ProgressFunc
	// ConfigMutator, if set, adjusts every run's base configuration.
	ConfigMutator func(*core.Config)
	// Trace, if non-nil, collects a Chrome-trace timeline: one process
	// per run plus one for the worker pool.
	Trace *obs.Trace
	// Metrics, if non-nil, receives every run's counters merged under
	// "<app>/<variant>/" prefixes plus the pool's own runner.* counters.
	Metrics *obs.Registry
	// Faults, if non-nil and enabled, injects the deterministic fault
	// profile into every run of the suite.
	Faults *fault.Profile
	// Backend, if non-nil, runs the whole suite on the spec's storage
	// tier (core.Config.Backend).
	Backend *core.BackendSpec
	// ProfileUse, if non-nil, feeds every prefetching run the matching
	// kernel's recorded execution profile (pass 2 of the two-pass mode;
	// see RecordProfiles). Kernels absent from the set compile statically.
	ProfileUse *profile.Set
}

func (o SuiteOptions) runner() *Runner {
	return &Runner{Parallelism: o.Parallelism, Timeout: o.Timeout, Progress: o.Progress,
		Trace: o.Trace, Metrics: o.Metrics}
}

// sinks bundles the harness-level observability collectors threaded into
// every simulated run. The zero value means observability is off.
type sinks struct {
	trace   *obs.Trace
	metrics *obs.Registry
}

// withFaults composes a config mutator with a fault profile: the profile
// is applied after the caller's mutator, so a harness-level fault option
// wins over per-variant adjustments.
func withFaults(mutate func(*core.Config), prof *fault.Profile) func(*core.Config) {
	if prof == nil {
		return mutate
	}
	return func(c *core.Config) {
		if mutate != nil {
			mutate(c)
		}
		c.Faults = prof
	}
}

// withBackend composes a config mutator with a backend spec, applied
// after the caller's mutator like withFaults.
func withBackend(mutate func(*core.Config), spec *core.BackendSpec) func(*core.Config) {
	if spec == nil {
		return mutate
	}
	return func(c *core.Config) {
		if mutate != nil {
			mutate(c)
		}
		c.Backend = spec
	}
}

// appConfig resolves one app at (scale, ratio) into its base run
// configuration and data-set size. ratio must already be resolved
// (> 0).
func appConfig(app *nas.App, scale, ratio float64, mutate func(*core.Config)) (*core.Config, int64, error) {
	prog := app.Build(scale)
	ps := hw.Default().PageSize
	if err := prog.Resolve(ps); err != nil {
		return nil, 0, err
	}
	data := nas.DataBytes(prog, ps)
	cfg := core.DefaultConfig(core.MachineFor(data, ratio))
	cfg.Seed = app.Seed
	if mutate != nil {
		mutate(&cfg)
	}
	return &cfg, data, nil
}

// runVariant runs one (app, scale, ratio, config-variant) tuple on a
// fresh simulated system and validates the result against the kernel's
// independent reference implementation. The run traces into snk.trace as
// a process named label, and its counters (which land in a per-run
// private registry, so concurrent siblings never contend) merge into
// snk.metrics under "label/" once it completes.
func runVariant(ctx context.Context, app *nas.App, scale, ratio float64, mutate, adjust func(*core.Config), profiles *profile.Set, snk sinks, label string) (*core.Result, error) {
	cfg, _, err := appConfig(app, scale, ratio, mutate)
	if err != nil {
		return nil, err
	}
	if adjust != nil {
		adjust(cfg)
	}
	cfg.Trace = snk.trace
	cfg.TraceName = label
	prog := app.Build(scale)
	// Profiles guide only the prefetching variants (Use requires
	// Prefetch), and an explicit per-variant ProfileSpec wins.
	if cfg.Prefetch && cfg.Profile == nil {
		if p := profiles.For(prog.Name); p != nil {
			cfg.Profile = &core.ProfileSpec{Use: p}
		}
	}
	res, err := core.RunContext(ctx, prog, *cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", app.Name, err)
	}
	if err := app.Check(prog, res.VM, res.Env); err != nil {
		return nil, fmt.Errorf("%s: %w", app.Name, err)
	}
	if snk.metrics != nil {
		snk.metrics.Merge(label+"/", res.Metrics)
	}
	return res, nil
}

// appVariantJobs returns the runner jobs for one app's configuration
// variants, writing each result into its slot of out. ratio must
// already be resolved.
func appVariantJobs(app *nas.App, scale, ratio float64, mutate func(*core.Config), withNoRT bool, profiles *profile.Set, out *AppResult, snk sinks, base string) []Job {
	if base == "" {
		base = app.Name
	}
	mk := func(tag string, dst **core.Result, adjust func(*core.Config)) Job {
		label := base + "/" + tag
		return Job{
			Label: label,
			Run: func(ctx context.Context) error {
				r, err := runVariant(ctx, app, scale, ratio, mutate, adjust, profiles, snk, label)
				if err != nil {
					return err
				}
				*dst = r
				return nil
			},
		}
	}
	jobs := []Job{
		mk("O", &out.O, func(c *core.Config) { c.Prefetch = false }),
		mk("P", &out.P, nil),
	}
	if withNoRT {
		jobs = append(jobs, mk("no-rt", &out.NoRT, func(c *core.Config) { c.RuntimeFilter = false }))
	}
	return jobs
}

// RunAppContext runs one application's configuration variants (original,
// prefetching, and optionally no-run-time-layer), each on a private
// simulated system, in parallel. Cancelling ctx aborts in-flight runs
// within one simulated event.
func RunAppContext(ctx context.Context, app *nas.App, opts RunOptions) (*AppResult, error) {
	scale := opts.Scale
	if scale <= 0 {
		scale = 1
	}
	ratio := opts.Ratio
	if ratio <= 0 {
		ratio = app.Ratio()
	}
	mutate := withBackend(withFaults(opts.ConfigMutator, opts.Faults), opts.Backend)
	cfg, data, err := appConfig(app, scale, ratio, mutate)
	if err != nil {
		return nil, err
	}
	out := &AppResult{Name: app.Name, DataBytes: data, Machine: cfg.Machine}
	r := &Runner{Parallelism: opts.Parallelism, Timeout: opts.Timeout}
	snk := sinks{trace: opts.Trace, metrics: opts.Metrics}
	if _, err := r.Run(ctx, appVariantJobs(app, scale, ratio, mutate, opts.WithNoRT, opts.ProfileUse, out, snk, opts.Label)); err != nil {
		return nil, err
	}
	return out, nil
}

// RunApp runs one application at the given problem scale with the data
// set standing in the given ratio to memory. withNoRT additionally runs
// the no-run-time-layer configuration.
//
// Deprecated: use RunAppContext with RunOptions.
func RunApp(app *nas.App, scale, ratio float64, withNoRT bool, mutate func(*core.Config)) (*AppResult, error) {
	return RunAppContext(context.Background(), app, RunOptions{
		Scale:         scale,
		Ratio:         ratio,
		WithNoRT:      withNoRT,
		ConfigMutator: mutate,
	})
}

// RunSuiteContext runs the whole NAS suite, treating every (app,
// config-variant) tuple as an independent job on the worker pool.
// Results come back in the paper's presentation order whatever the
// completion order; cancelling ctx aborts in-flight runs within one
// simulated event and returns ctx.Err().
func RunSuiteContext(ctx context.Context, opts SuiteOptions) ([]*AppResult, error) {
	scale := opts.Scale
	if scale <= 0 {
		scale = 1
	}
	apps := nas.Apps()
	results := make([]*AppResult, len(apps))
	snk := sinks{trace: opts.Trace, metrics: opts.Metrics}
	mutate := withBackend(withFaults(opts.ConfigMutator, opts.Faults), opts.Backend)
	var jobs []Job
	for i, app := range apps {
		ratio := opts.Ratio
		if ratio <= 0 {
			ratio = app.Ratio()
		}
		cfg, data, err := appConfig(app, scale, ratio, mutate)
		if err != nil {
			return nil, err
		}
		results[i] = &AppResult{Name: app.Name, DataBytes: data, Machine: cfg.Machine}
		jobs = append(jobs, appVariantJobs(app, scale, ratio, mutate, opts.WithNoRT, opts.ProfileUse, results[i], snk, "")...)
	}
	if _, err := opts.runner().Run(ctx, jobs); err != nil {
		return nil, err
	}
	return results, nil
}

// RunSuite runs the whole NAS suite at the paper's standard out-of-core
// setting (scale 1, data ≈ 2× memory), including the no-run-time-layer
// configuration, reusing results across Figures 3–5 and Table 3.
//
// Deprecated: use RunSuiteContext with SuiteOptions.
func RunSuite(scale, ratio float64, withNoRT bool) ([]*AppResult, error) {
	return RunSuiteContext(context.Background(), SuiteOptions{
		Scale:    scale,
		Ratio:    ratio,
		WithNoRT: withNoRT,
	})
}

// RecordProfiles runs pass 1 of the two-pass profile-guided mode over
// the whole NAS suite: every app executes once in its original (no
// prefetching) configuration with observation-only instrumentation —
// tick-identical to a plain run — and the per-reference recordings come
// back as one artifact set keyed by kernel name. Feed the set back
// through SuiteOptions.ProfileUse (or oocbench -profile-use) for
// pass 2. Scale, ratio, backend, and fault options shape what the
// recording observes, so record under the configuration you intend to
// run; WithNoRT and ProfileUse are ignored.
func RecordProfiles(ctx context.Context, opts SuiteOptions) (*profile.Set, error) {
	scale := opts.Scale
	if scale <= 0 {
		scale = 1
	}
	apps := nas.Apps()
	profs := make([]*profile.Profile, len(apps))
	snk := sinks{trace: opts.Trace, metrics: opts.Metrics}
	mutate := withBackend(withFaults(opts.ConfigMutator, opts.Faults), opts.Backend)
	record := func(c *core.Config) {
		c.Prefetch = false
		c.Profile = &core.ProfileSpec{Record: true}
	}
	var jobs []Job
	for i, app := range apps {
		i, app := i, app
		ratio := opts.Ratio
		if ratio <= 0 {
			ratio = app.Ratio()
		}
		label := app.Name + "/record"
		jobs = append(jobs, Job{
			Label: label,
			Run: func(ctx context.Context) error {
				r, err := runVariant(ctx, app, scale, ratio, mutate, record, nil, snk, label)
				if err != nil {
					return err
				}
				profs[i] = r.Profile
				return nil
			},
		})
	}
	if _, err := opts.runner().Run(ctx, jobs); err != nil {
		return nil, err
	}
	set := profile.NewSet()
	for _, p := range profs {
		set.Add(p)
	}
	return set, nil
}

// TwoVersionOptions returns compiler options with the §4.1.1 two-version
// loop extension enabled (the APPBT ablation).
func TwoVersionOptions() *compiler.Options {
	o := compiler.DefaultOptions()
	o.TwoVersionLoops = true
	return &o
}
