package bench

import (
	"fmt"
	"io"

	"repro/internal/hw"
	"repro/internal/nas"
)

// Table1 prints the experimental platform characteristics (the paper's
// Table 1, reconstructed — see DESIGN.md §6).
func Table1(w io.Writer, p hw.Params) {
	fmt.Fprintln(w, "Table 1: Experimental platform characteristics (reconstructed)")
	fmt.Fprintln(w, "---------------------------------------------------------------")
	rows := []struct {
		k, v string
	}{
		{"page size", fmt.Sprintf("%d B", p.PageSize)},
		{"memory available to application", fmt.Sprintf("%.1f MB", float64(p.MemoryBytes)/(1<<20))},
		{"page frames", fmt.Sprintf("%d", p.Frames())},
		{"disks (round-robin page striping)", fmt.Sprintf("%d", p.NumDisks)},
		{"disk seek (min/max)", fmt.Sprintf("%v / %v", p.SeekMin, p.SeekMax)},
		{"disk rotation", p.RotationTime.String()},
		{"media transfer per page", p.TransferPerPage.String()},
		{"uncontended one-page read", p.AvgPageRead().String()},
		{"page-fault service (CPU)", p.FaultServiceTime.String()},
		{"reclaim (minor) fault", p.MinorFaultTime.String()},
		{"prefetch/release system call", p.PrefetchSyscallTime.String()},
		{"run-time layer check per page", p.FilterCheckTime.String()},
		{"machine operation", p.OpTime.String()},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-36s %s\n", r.k, r.v)
	}
}

// Table2 prints the application descriptions and standard out-of-core
// data-set sizes (the paper's Table 2).
func Table2(w io.Writer, scale float64) {
	fmt.Fprintln(w, "Table 2: Applications and data sets")
	fmt.Fprintln(w, "-----------------------------------")
	ps := hw.Default().PageSize
	for _, app := range nas.Apps() {
		prog := app.Build(scale)
		if err := prog.Resolve(ps); err != nil {
			fmt.Fprintf(w, "  %-6s <error: %v>\n", app.Name, err)
			continue
		}
		data := nas.DataBytes(prog, ps)
		mem := float64(data) / app.Ratio()
		fmt.Fprintf(w, "  %-6s %5.1f MB data, %4.1f MB memory (%.1fx)  %s\n",
			app.Name, float64(data)/(1<<20), mem/(1<<20), app.Ratio(), app.Desc)
	}
}

// Table3 prints memory sub-system activity and free memory (the paper's
// Table 3) from a completed suite run.
func Table3(w io.Writer, rs []*AppResult) {
	fmt.Fprintln(w, "Table 3: Memory sub-system activity and free memory (prefetching runs)")
	fmt.Fprintln(w, "------------------------------------------------------------------------")
	fmt.Fprintf(w, "  %-6s %10s %10s %10s %10s %9s\n",
		"app", "faults", "reclaims", "writebacks", "releases", "mem-free")
	for _, r := range rs {
		fmt.Fprintf(w, "  %-6s %10d %10d %10d %10d %8.0f%%\n",
			r.Name, r.P.Mem.MajorFaults, r.P.Mem.Reclaims, r.P.Mem.Writebacks,
			r.P.Mem.ReleasedPages, r.P.AvgFree*100)
	}
	fmt.Fprintln(w, "  (paper shape: only the streaming applications BUK and EMBAR issue")
	fmt.Fprintln(w, "   significant releases, and they keep a large fraction of memory free)")
}
