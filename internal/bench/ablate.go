package bench

import (
	"context"
	"fmt"
	"io"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/nas"
)

// ablatePair runs the two configurations of an A/B ablation as
// independent jobs and returns them in (a, b) order.
func ablatePair(ctx context.Context, r Runner, app *nas.App, scale float64,
	aLabel string, aMutate func(*core.Config),
	bLabel string, bMutate func(*core.Config)) (a, b *AppResult, err error) {

	jobs := []Job{
		{Label: app.Name + "/" + aLabel, Run: func(ctx context.Context) error {
			res, err := runAppJob(ctx, r, app.Name+"/"+aLabel, app, scale, 0, aMutate)
			a = res
			return err
		}},
		{Label: app.Name + "/" + bLabel, Run: func(ctx context.Context) error {
			res, err := runAppJob(ctx, r, app.Name+"/"+bLabel, app, scale, 0, bMutate)
			b = res
			return err
		}},
	}
	if _, err := r.Run(ctx, jobs); err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// AblateTwoVersion runs APPBT with and without the two-version-loop
// extension (§4.1.1's proposed fix for symbolic inner bounds) and prints
// the coverage and speedup recovery.
func AblateTwoVersion(w io.Writer, scale float64) error {
	return AblateTwoVersionContext(context.Background(), w, scale, Runner{})
}

// AblateTwoVersionContext is AblateTwoVersion with cancellation and a
// configurable worker pool.
func AblateTwoVersionContext(ctx context.Context, w io.Writer, scale float64, r Runner) error {
	plain, fixed, err := ablatePair(ctx, r, nas.ByName("APPBT"), scale,
		"plain", nil,
		"two-version", func(cfg *core.Config) { cfg.Options = TwoVersionOptions() })
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: two-version loops (the paper's proposed fix for APPBT)")
	fmt.Fprintln(w, "-----------------------------------------------------------------")
	fmt.Fprintf(w, "  %-22s %10s %10s\n", "", "coverage", "speedup")
	fmt.Fprintf(w, "  %-22s %9.1f%% %9.2fx\n", "APPBT (symbolic bm)",
		plain.P.Mem.CoverageFactor()*100, plain.Speedup())
	fmt.Fprintf(w, "  %-22s %9.1f%% %9.2fx\n", "APPBT (two-version)",
		fixed.P.Mem.CoverageFactor()*100, fixed.Speedup())
	return nil
}

// AblatePagesPerFetch sweeps the compiler's block-prefetch size on a
// streaming application (the paper chose 4 "arbitrarily"; this shows the
// tradeoff it embodies).
func AblatePagesPerFetch(w io.Writer, scale float64) error {
	return AblatePagesPerFetchContext(context.Background(), w, scale, Runner{})
}

// AblatePagesPerFetchContext is AblatePagesPerFetch with cancellation
// and a configurable worker pool: every swept value is an independent
// job.
func AblatePagesPerFetchContext(ctx context.Context, w io.Writer, scale float64, r Runner) error {
	app := nas.ByName("BUK")
	ppfs := []int64{1, 2, 4, 8, 16}
	out := make([]*AppResult, len(ppfs))
	var jobs []Job
	for i, ppf := range ppfs {
		label := fmt.Sprintf("BUK/ppf=%d", ppf)
		jobs = append(jobs, Job{
			Label: label,
			Run: func(ctx context.Context) error {
				opts := compiler.DefaultOptions()
				opts.PagesPerFetch = ppf
				res, err := runAppJob(ctx, r, label, app, scale, 0, func(cfg *core.Config) {
					cfg.Options = &opts
				})
				out[i] = res
				return err
			},
		})
	}
	if _, err := r.Run(ctx, jobs); err != nil {
		return err
	}

	fmt.Fprintln(w, "Ablation: pages per block prefetch (BUK)")
	fmt.Fprintln(w, "----------------------------------------")
	fmt.Fprintf(w, "  %-6s %10s %14s %12s\n", "pages", "speedup", "pf-syscalls", "stall-elim")
	for i, ppf := range ppfs {
		res := out[i]
		fmt.Fprintf(w, "  %-6d %9.2fx %14d %11.0f%%\n",
			ppf, res.Speedup(), res.P.Mem.PrefetchCalls, res.StallEliminated()*100)
	}
	return nil
}

// AblateReleases runs BUK with releases disabled, quantifying what the
// release hints buy (free memory and write-back avoidance).
func AblateReleases(w io.Writer, scale float64) error {
	return AblateReleasesContext(context.Background(), w, scale, Runner{})
}

// AblateReleasesContext is AblateReleases with cancellation and a
// configurable worker pool.
func AblateReleasesContext(ctx context.Context, w io.Writer, scale float64, r Runner) error {
	with, without, err := ablatePair(ctx, r, nas.ByName("BUK"), scale,
		"releases", nil,
		"no-releases", func(cfg *core.Config) {
			opts := compiler.DefaultOptions()
			opts.Releases = false
			cfg.Options = &opts
		})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: release hints (BUK)")
	fmt.Fprintln(w, "-----------------------------")
	fmt.Fprintf(w, "  %-18s %10s %12s %10s\n", "", "speedup", "mem-free", "releases")
	fmt.Fprintf(w, "  %-18s %9.2fx %11.0f%% %10d\n", "with releases",
		with.Speedup(), with.P.AvgFree*100, with.P.Mem.ReleasedPages)
	fmt.Fprintf(w, "  %-18s %9.2fx %11.0f%% %10d\n", "without releases",
		without.Speedup(), without.P.AvgFree*100, without.P.Mem.ReleasedPages)
	return nil
}

// AblateScheduler compares FCFS (the paper's configuration) with SCAN
// disk scheduling under prefetching.
func AblateScheduler(w io.Writer, scale float64) error {
	return AblateSchedulerContext(context.Background(), w, scale, Runner{})
}

// AblateSchedulerContext is AblateScheduler with cancellation and a
// configurable worker pool.
func AblateSchedulerContext(ctx context.Context, w io.Writer, scale float64, r Runner) error {
	fcfs, scan, err := ablatePair(ctx, r, nas.ByName("CGM"), scale,
		"fcfs", nil,
		"elevator", func(cfg *core.Config) { cfg.Elevator = true })
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation: disk scheduling under prefetching (CGM)")
	fmt.Fprintln(w, "-------------------------------------------------")
	fmt.Fprintf(w, "  %-10s P = %v\n", "FCFS", fcfs.P.Elapsed)
	fmt.Fprintf(w, "  %-10s P = %v\n", "elevator", scan.P.Elapsed)
	return nil
}

// AblateAll runs the four design-choice ablations DESIGN.md calls out:
// the two-version-loop extension, the pages-per-block-prefetch
// parameter, release hints, and disk scheduling.
func AblateAll(w io.Writer, scale float64) error {
	return AblateAllContext(context.Background(), w, scale, Runner{})
}

// AblateAllContext is AblateAll with cancellation and a configurable
// worker pool. The four ablations print in a fixed order; each fans its
// own runs out across the pool.
func AblateAllContext(ctx context.Context, w io.Writer, scale float64, r Runner) error {
	parts := []func(context.Context, io.Writer, float64, Runner) error{
		AblateTwoVersionContext,
		AblatePagesPerFetchContext,
		AblateReleasesContext,
		AblateSchedulerContext,
	}
	for i, part := range parts {
		if i > 0 {
			io.WriteString(w, "\n")
		}
		if err := part(ctx, w, scale, r); err != nil {
			return err
		}
	}
	return nil
}
