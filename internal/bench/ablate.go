package bench

import (
	"fmt"
	"io"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/nas"
)

// AblateTwoVersion runs APPBT with and without the two-version-loop
// extension (§4.1.1's proposed fix for symbolic inner bounds) and prints
// the coverage and speedup recovery.
func AblateTwoVersion(w io.Writer, scale float64) error {
	fmt.Fprintln(w, "Ablation: two-version loops (the paper's proposed fix for APPBT)")
	fmt.Fprintln(w, "-----------------------------------------------------------------")
	app := nas.ByName("APPBT")
	plain, err := RunApp(app, scale, 0, false, nil)
	if err != nil {
		return err
	}
	fixed, err := RunApp(app, scale, 0, false, func(cfg *core.Config) {
		cfg.Options = TwoVersionOptions()
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-22s %10s %10s\n", "", "coverage", "speedup")
	fmt.Fprintf(w, "  %-22s %9.1f%% %9.2fx\n", "APPBT (symbolic bm)",
		plain.P.Mem.CoverageFactor()*100, plain.Speedup())
	fmt.Fprintf(w, "  %-22s %9.1f%% %9.2fx\n", "APPBT (two-version)",
		fixed.P.Mem.CoverageFactor()*100, fixed.Speedup())
	return nil
}

// AblatePagesPerFetch sweeps the compiler's block-prefetch size on a
// streaming application (the paper chose 4 "arbitrarily"; this shows the
// tradeoff it embodies).
func AblatePagesPerFetch(w io.Writer, scale float64) error {
	fmt.Fprintln(w, "Ablation: pages per block prefetch (BUK)")
	fmt.Fprintln(w, "----------------------------------------")
	fmt.Fprintf(w, "  %-6s %10s %14s %12s\n", "pages", "speedup", "pf-syscalls", "stall-elim")
	app := nas.ByName("BUK")
	for _, ppf := range []int64{1, 2, 4, 8, 16} {
		opts := compiler.DefaultOptions()
		opts.PagesPerFetch = ppf
		r, err := RunApp(app, scale, 0, false, func(cfg *core.Config) {
			cfg.Options = &opts
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-6d %9.2fx %14d %11.0f%%\n",
			ppf, r.Speedup(), r.P.Mem.PrefetchCalls, r.StallEliminated()*100)
	}
	return nil
}

// AblateReleases runs BUK with releases disabled, quantifying what the
// release hints buy (free memory and write-back avoidance).
func AblateReleases(w io.Writer, scale float64) error {
	fmt.Fprintln(w, "Ablation: release hints (BUK)")
	fmt.Fprintln(w, "-----------------------------")
	app := nas.ByName("BUK")
	with, err := RunApp(app, scale, 0, false, nil)
	if err != nil {
		return err
	}
	opts := compiler.DefaultOptions()
	opts.Releases = false
	without, err := RunApp(app, scale, 0, false, func(cfg *core.Config) {
		cfg.Options = &opts
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-18s %10s %12s %10s\n", "", "speedup", "mem-free", "releases")
	fmt.Fprintf(w, "  %-18s %9.2fx %11.0f%% %10d\n", "with releases",
		with.Speedup(), with.P.AvgFree*100, with.P.Mem.ReleasedPages)
	fmt.Fprintf(w, "  %-18s %9.2fx %11.0f%% %10d\n", "without releases",
		without.Speedup(), without.P.AvgFree*100, without.P.Mem.ReleasedPages)
	return nil
}

// AblateScheduler compares FCFS (the paper's configuration) with SCAN
// disk scheduling under prefetching.
func AblateScheduler(w io.Writer, scale float64) error {
	fmt.Fprintln(w, "Ablation: disk scheduling under prefetching (CGM)")
	fmt.Fprintln(w, "-------------------------------------------------")
	app := nas.ByName("CGM")
	fcfs, err := RunApp(app, scale, 0, false, nil)
	if err != nil {
		return err
	}
	scan, err := RunApp(app, scale, 0, false, func(cfg *core.Config) {
		cfg.Elevator = true
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %-10s P = %v\n", "FCFS", fcfs.P.Elapsed)
	fmt.Fprintf(w, "  %-10s P = %v\n", "elevator", scan.P.Elapsed)
	return nil
}
