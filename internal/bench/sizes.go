package bench

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/nas"
	"repro/internal/sim"
)

// runAppJob is RunAppContext shaped for use inside a Runner job: the
// enclosing pool supplies the parallelism, so the app's own variants run
// serially. The pool's observability sinks flow into the runs, with
// label ("<app>/<case>") keeping each case's traces and metrics apart.
func runAppJob(ctx context.Context, r Runner, label string, app *nas.App, scale, ratio float64, mutate func(*core.Config)) (*AppResult, error) {
	return RunAppContext(ctx, app, RunOptions{
		Scale:         scale,
		Ratio:         ratio,
		Parallelism:   1,
		ConfigMutator: mutate,
		Trace:         r.Trace,
		Metrics:       r.Metrics,
		Label:         label,
	})
}

// Fig6 reproduces the in-core experiments: data sets a fraction of
// memory, cold- and warm-started, original vs prefetching, normalized to
// the original cold-started case.
func Fig6(w io.Writer, scale float64) error {
	return Fig6Context(context.Background(), w, scale, Runner{})
}

// Fig6Context is Fig6 with cancellation and a configurable worker pool:
// every (app, cold/warm) pair is an independent job; output is printed
// in app order after all jobs finish, so it is identical to a serial
// run.
func Fig6Context(ctx context.Context, w io.Writer, scale float64, r Runner) error {
	const ratio = 0.3
	apps := nas.Apps()
	type pair struct{ cold, warm *AppResult }
	out := make([]pair, len(apps))
	var jobs []Job
	for i, app := range apps {
		jobs = append(jobs,
			Job{Label: app.Name + "/cold", Run: func(ctx context.Context) error {
				res, err := runAppJob(ctx, r, app.Name+"/cold", app, scale, ratio, nil)
				out[i].cold = res
				return err
			}},
			Job{Label: app.Name + "/warm", Run: func(ctx context.Context) error {
				res, err := runAppJob(ctx, r, app.Name+"/warm", app, scale, ratio, func(cfg *core.Config) {
					cfg.WarmStart = true
				})
				out[i].warm = res
				return err
			}})
	}
	if _, err := r.Run(ctx, jobs); err != nil {
		return err
	}

	fmt.Fprintln(w, "Figure 6: In-core problem sizes (data ≈ 30% of memory; 100 = original cold)")
	fmt.Fprintln(w, "---------------------------------------------------------------------------")
	fmt.Fprintf(w, "  %-6s %10s %10s %10s %10s\n", "app", "O-cold", "P-cold", "O-warm", "P-warm")
	for i, app := range apps {
		cold, warm := out[i].cold, out[i].warm
		base := float64(cold.O.Times.Total())
		pct := func(t sim.Time) float64 { return 100 * float64(t) / base }
		fmt.Fprintf(w, "  %-6s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", app.Name,
			100.0, pct(cold.P.Times.Total()), pct(warm.O.Times.Total()), pct(warm.P.Times.Total()))
	}
	fmt.Fprintln(w, "  (paper shape: warm-started prefetching pays pure overhead; cold-started")
	fmt.Fprintln(w, "   prefetching can still win by hiding cold faults)")
	return nil
}

// Fig7 reproduces the larger out-of-core sizes: three applications at
// data ≈ 4–10× memory, where speedups grow slightly because there is more
// latency to hide.
func Fig7(w io.Writer, scale float64) error {
	return Fig7Context(context.Background(), w, scale, Runner{})
}

// Fig7Context is Fig7 with cancellation and a configurable worker pool:
// each case's standard-size and larger-size runs are independent jobs.
func Fig7Context(ctx context.Context, w io.Writer, scale float64, r Runner) error {
	cases := []struct {
		name  string
		ratio float64
	}{
		{"MGRID", 10}, {"BUK", 4}, {"EMBAR", 6},
	}
	type pair struct{ std, big *AppResult }
	out := make([]pair, len(cases))
	var jobs []Job
	for i, c := range cases {
		app := nas.ByName(c.name)
		jobs = append(jobs,
			Job{Label: c.name + "/std", Run: func(ctx context.Context) error {
				res, err := runAppJob(ctx, r, c.name+"/std", app, scale, 0, nil)
				out[i].std = res
				return err
			}},
			// The paper grows the problem on a fixed machine: scale the
			// data up by ratio/standard-ratio so memory stays at the
			// standard size.
			Job{Label: c.name + "/big", Run: func(ctx context.Context) error {
				res, err := runAppJob(ctx, r, c.name+"/big", app, scale*c.ratio/app.Ratio(), c.ratio, nil)
				out[i].big = res
				return err
			}})
	}
	if _, err := r.Run(ctx, jobs); err != nil {
		return err
	}

	fmt.Fprintln(w, "Figure 7: Larger out-of-core problem sizes")
	fmt.Fprintln(w, "------------------------------------------")
	fmt.Fprintf(w, "  %-6s %8s %12s %12s %9s\n", "app", "ratio", "O", "P", "speedup")
	for i, c := range cases {
		std, big := out[i].std, out[i].big
		fmt.Fprintf(w, "  %-6s %6.1fx data %5.1f MB %12v %12v %8.2fx   (standard %.1fx: %.2fx)\n",
			c.name, c.ratio, float64(big.DataBytes)/(1<<20), big.O.Elapsed, big.P.Elapsed, big.Speedup(),
			nas.ByName(c.name).Ratio(), std.Speedup())
	}
	fmt.Fprintln(w, "  (paper shape: the speedup at the larger size is at least as large as at")
	fmt.Fprintln(w, "   the standard size — there is more I/O latency to hide)")
	return nil
}

// Fig8Point is one problem size of the BUK case study.
type Fig8Point struct {
	DataBytes int64
	Ratio     float64 // data : memory
	O, P      sim.Time
}

// Fig8Sweep runs BUK across problem sizes around the memory cliff on a
// fixed-size machine (the case-study methodology of §4.3.3).
func Fig8Sweep(memBytes int64, scales []float64) ([]Fig8Point, error) {
	return Fig8SweepContext(context.Background(), memBytes, scales, Runner{})
}

// Fig8SweepContext is Fig8Sweep with cancellation and a configurable
// worker pool: every problem size is an independent job, and points come
// back in sweep order.
func Fig8SweepContext(ctx context.Context, memBytes int64, scales []float64, r Runner) ([]Fig8Point, error) {
	app := nas.ByName("BUK")
	out := make([]Fig8Point, len(scales))
	var jobs []Job
	for i, s := range scales {
		label := fmt.Sprintf("BUK/x%g", s)
		jobs = append(jobs, Job{
			Label: label,
			Run: func(ctx context.Context) error {
				prog := app.Build(s)
				ps := hw.Default().PageSize
				if err := prog.Resolve(ps); err != nil {
					return err
				}
				data := nas.DataBytes(prog, ps)
				machine := hw.Scaled(memBytes)

				run := func(prefetch bool) (sim.Time, error) {
					cfg := core.DefaultConfig(machine)
					cfg.Prefetch = prefetch
					cfg.Seed = app.Seed
					tag := label + "/O"
					if prefetch {
						tag = label + "/P"
					}
					cfg.Trace = r.Trace
					cfg.TraceName = tag
					p := app.Build(s)
					res, err := core.RunContext(ctx, p, cfg)
					if err != nil {
						return 0, err
					}
					if err := app.Check(p, res.VM, res.Env); err != nil {
						return 0, err
					}
					if r.Metrics != nil {
						r.Metrics.Merge(tag+"/", res.Metrics)
					}
					return res.Times.Total(), nil
				}
				o, err := run(false)
				if err != nil {
					return err
				}
				p, err := run(true)
				if err != nil {
					return err
				}
				out[i] = Fig8Point{
					DataBytes: data,
					Ratio:     float64(data) / float64(memBytes),
					O:         o,
					P:         p,
				}
				return nil
			},
		})
	}
	if _, err := r.Run(ctx, jobs); err != nil {
		return nil, err
	}
	return out, nil
}

// Fig8 prints the BUK case study: execution time across problem sizes on
// a fixed-memory machine. The original version shows a discontinuity at
// the memory size; the prefetching version keeps growing linearly.
func Fig8(w io.Writer, memBytes int64) error {
	return Fig8Context(context.Background(), w, memBytes, Runner{})
}

// Fig8Context is Fig8 with cancellation and a configurable worker pool.
func Fig8Context(ctx context.Context, w io.Writer, memBytes int64, r Runner) error {
	fmt.Fprintf(w, "Figure 8: BUK across problem sizes (machine memory fixed at %.1f MB)\n",
		float64(memBytes)/(1<<20))
	fmt.Fprintln(w, "----------------------------------------------------------------------")
	fmt.Fprintf(w, "  %10s %8s %12s %12s %9s\n", "data", "ratio", "O", "P", "speedup")
	pts, err := Fig8SweepContext(ctx, memBytes, []float64{0.125, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0}, r)
	if err != nil {
		return err
	}
	for _, pt := range pts {
		fmt.Fprintf(w, "  %7.1f MB %7.2fx %12v %12v %8.2fx\n",
			float64(pt.DataBytes)/(1<<20), pt.Ratio, pt.O, pt.P,
			float64(pt.O)/float64(pt.P))
	}
	fmt.Fprintln(w, "  (paper shape: O suffers a discontinuity once the problem no longer fits")
	fmt.Fprintln(w, "   in memory; P keeps growing roughly linearly and wins at every size)")
	return nil
}
