package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/nas"
	"repro/internal/sim"
)

// Fig6 reproduces the in-core experiments: data sets a fraction of
// memory, cold- and warm-started, original vs prefetching, normalized to
// the original cold-started case.
func Fig6(w io.Writer, scale float64) error {
	fmt.Fprintln(w, "Figure 6: In-core problem sizes (data ≈ 30% of memory; 100 = original cold)")
	fmt.Fprintln(w, "---------------------------------------------------------------------------")
	fmt.Fprintf(w, "  %-6s %10s %10s %10s %10s\n", "app", "O-cold", "P-cold", "O-warm", "P-warm")
	const ratio = 0.3
	for _, app := range nas.Apps() {
		cold, err := RunApp(app, scale, ratio, false, nil)
		if err != nil {
			return err
		}
		warm, err := RunApp(app, scale, ratio, false, func(cfg *core.Config) {
			cfg.WarmStart = true
		})
		if err != nil {
			return err
		}
		base := float64(cold.O.Times.Total())
		pct := func(t sim.Time) float64 { return 100 * float64(t) / base }
		fmt.Fprintf(w, "  %-6s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", app.Name,
			100.0, pct(cold.P.Times.Total()), pct(warm.O.Times.Total()), pct(warm.P.Times.Total()))
	}
	fmt.Fprintln(w, "  (paper shape: warm-started prefetching pays pure overhead; cold-started")
	fmt.Fprintln(w, "   prefetching can still win by hiding cold faults)")
	return nil
}

// Fig7 reproduces the larger out-of-core sizes: three applications at
// data ≈ 4–10× memory, where speedups grow slightly because there is more
// latency to hide.
func Fig7(w io.Writer, scale float64) error {
	fmt.Fprintln(w, "Figure 7: Larger out-of-core problem sizes")
	fmt.Fprintln(w, "------------------------------------------")
	fmt.Fprintf(w, "  %-6s %8s %12s %12s %9s\n", "app", "ratio", "O", "P", "speedup")
	cases := []struct {
		name  string
		ratio float64
	}{
		{"MGRID", 10}, {"BUK", 4}, {"EMBAR", 6},
	}
	for _, c := range cases {
		app := nas.ByName(c.name)
		std, err := RunApp(app, scale, 0, false, nil)
		if err != nil {
			return err
		}
		// The paper grows the problem on a fixed machine: scale the data
		// up by ratio/standard-ratio so memory stays at the standard size.
		big, err := RunApp(app, scale*c.ratio/app.Ratio(), c.ratio, false, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-6s %6.1fx data %5.1f MB %12v %12v %8.2fx   (standard %.1fx: %.2fx)\n",
			c.name, c.ratio, float64(big.DataBytes)/(1<<20), big.O.Elapsed, big.P.Elapsed, big.Speedup(),
			app.Ratio(), std.Speedup())
	}
	fmt.Fprintln(w, "  (paper shape: the speedup at the larger size is at least as large as at")
	fmt.Fprintln(w, "   the standard size — there is more I/O latency to hide)")
	return nil
}

// Fig8Point is one problem size of the BUK case study.
type Fig8Point struct {
	DataBytes int64
	Ratio     float64 // data : memory
	O, P      sim.Time
}

// Fig8Sweep runs BUK across problem sizes around the memory cliff on a
// fixed-size machine (the case-study methodology of §4.3.3).
func Fig8Sweep(memBytes int64, scales []float64) ([]Fig8Point, error) {
	app := nas.ByName("BUK")
	var out []Fig8Point
	for _, s := range scales {
		prog := app.Build(s)
		ps := hw.Default().PageSize
		if err := prog.Resolve(ps); err != nil {
			return nil, err
		}
		data := nas.DataBytes(prog, ps)
		machine := hw.Scaled(memBytes)

		run := func(prefetch bool) (sim.Time, error) {
			cfg := core.DefaultConfig(machine)
			cfg.Prefetch = prefetch
			cfg.Seed = app.Seed
			p := app.Build(s)
			res, err := core.Run(p, cfg)
			if err != nil {
				return 0, err
			}
			if err := app.Check(p, res.VM, res.Env); err != nil {
				return 0, err
			}
			return res.Times.Total(), nil
		}
		o, err := run(false)
		if err != nil {
			return nil, err
		}
		p, err := run(true)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig8Point{
			DataBytes: data,
			Ratio:     float64(data) / float64(memBytes),
			O:         o,
			P:         p,
		})
	}
	return out, nil
}

// Fig8 prints the BUK case study: execution time across problem sizes on
// a fixed-memory machine. The original version shows a discontinuity at
// the memory size; the prefetching version keeps growing linearly.
func Fig8(w io.Writer, memBytes int64) error {
	fmt.Fprintf(w, "Figure 8: BUK across problem sizes (machine memory fixed at %.1f MB)\n",
		float64(memBytes)/(1<<20))
	fmt.Fprintln(w, "----------------------------------------------------------------------")
	fmt.Fprintf(w, "  %10s %8s %12s %12s %9s\n", "data", "ratio", "O", "P", "speedup")
	pts, err := Fig8Sweep(memBytes, []float64{0.125, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0})
	if err != nil {
		return err
	}
	for _, pt := range pts {
		fmt.Fprintf(w, "  %7.1f MB %7.2fx %12v %12v %8.2fx\n",
			float64(pt.DataBytes)/(1<<20), pt.Ratio, pt.O, pt.P,
			float64(pt.O)/float64(pt.P))
	}
	fmt.Fprintln(w, "  (paper shape: O suffers a discontinuity once the problem no longer fits")
	fmt.Fprintln(w, "   in memory; P keeps growing roughly linearly and wins at every size)")
	return nil
}
