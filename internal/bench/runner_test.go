package bench

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/nas"
	"repro/internal/obs"
)

// renderAll renders every suite-derived table and figure to one string,
// so byte-identity of parallel vs serial output can be asserted.
func renderAll(rs []*AppResult) string {
	var b strings.Builder
	Fig3(&b, rs)
	Fig4(&b, rs)
	Fig5(&b, rs)
	Table3(&b, rs)
	return b.String()
}

// The tentpole guarantee: a parallel suite run is indistinguishable from
// a serial one — same values, same rendered bytes — because results are
// collected by submission index, never completion order, and every job
// owns a private deterministic simulator.
func TestSuiteParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the suite twice")
	}
	const scale = 0.15
	serial, err := RunSuiteContext(context.Background(),
		SuiteOptions{Scale: scale, WithNoRT: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSuiteContext(context.Background(),
		SuiteOptions{Scale: scale, WithNoRT: true, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result count: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Name != p.Name {
			t.Fatalf("order differs at %d: %s vs %s", i, s.Name, p.Name)
		}
		if s.O.Elapsed != p.O.Elapsed || s.P.Elapsed != p.P.Elapsed || s.NoRT.Elapsed != p.NoRT.Elapsed {
			t.Errorf("%s: elapsed differs (O %v/%v, P %v/%v, NoRT %v/%v)", s.Name,
				s.O.Elapsed, p.O.Elapsed, s.P.Elapsed, p.P.Elapsed, s.NoRT.Elapsed, p.NoRT.Elapsed)
		}
		if s.O.Mem.MajorFaults != p.O.Mem.MajorFaults || s.P.Mem.MajorFaults != p.P.Mem.MajorFaults {
			t.Errorf("%s: fault counts differ", s.Name)
		}
	}
	if sOut, pOut := renderAll(serial), renderAll(parallel); sOut != pOut {
		t.Errorf("rendered output differs between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s", sOut, pOut)
	}
}

// Cancelling mid-suite must abort in-flight simulated runs and return
// ctx.Err() instead of finishing the matrix.
func TestSuiteCancellationMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel as soon as the first job completes: the remaining jobs are
	// either in flight (aborted by the clock interrupt) or never start.
	completions := 0
	_, err := RunSuiteContext(ctx, SuiteOptions{
		Scale:       0.5,
		WithNoRT:    true,
		Parallelism: 2,
		Progress: func(Progress) {
			completions++
			cancel()
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if completions >= 24 {
		t.Fatal("suite ran to completion despite cancellation")
	}
}

// A pre-cancelled context returns immediately with ctx.Err() and runs
// nothing.
func TestSuitePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	started := 0
	_, err := RunSuiteContext(ctx, SuiteOptions{
		Scale:    0.1,
		Progress: func(Progress) { started++ },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if started != 0 {
		t.Fatalf("%d jobs ran under a pre-cancelled context", started)
	}
}

// A job that exceeds its own per-job timeout fails alone: siblings keep
// running to completion, and the runner reports the timeout.
func TestRunnerTimeoutDoesNotPoisonSiblings(t *testing.T) {
	// One worker: job c starts strictly after the hung job has already
	// timed out, so it proves the timeout cancelled nothing but its own
	// job.
	r := &Runner{Parallelism: 1, Timeout: 20 * time.Millisecond}
	ran := make([]bool, 3)
	jobs := []Job{
		{Label: "a", Run: func(ctx context.Context) error { ran[0] = true; return nil }},
		{Label: "hang", Run: func(ctx context.Context) error { <-ctx.Done(); return ctx.Err() }},
		{Label: "c", Run: func(ctx context.Context) error {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
			ran[2] = true
			return nil
		}},
	}
	metrics, err := r.Run(context.Background(), jobs)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the hung job's DeadlineExceeded", err)
	}
	if !ran[0] || !ran[2] {
		t.Fatalf("siblings were poisoned by the timeout: ran = %v", ran)
	}
	if !metrics[1].TimedOut {
		t.Fatal("hung job not marked TimedOut")
	}
	if metrics[0].Err != nil || metrics[2].Err != nil {
		t.Fatalf("sibling errors: %v / %v", metrics[0].Err, metrics[2].Err)
	}
	if metrics[1].Attempts != 1 || metrics[0].Attempts != 1 {
		t.Fatalf("attempts: %+v", metrics)
	}
}

// A per-run timeout on a real simulated run aborts that run with
// DeadlineExceeded threaded out of the event loop.
func TestRunAppTimeoutAborts(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	_, err := RunAppContext(context.Background(), nas.ByName("EMBAR"), RunOptions{
		Scale:   0.5,
		Timeout: time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// A real (non-timeout) job failure cancels outstanding jobs and is the
// error the runner reports, even when a cancelled sibling finishes
// first.
func TestRunnerFailFastReportsRealError(t *testing.T) {
	boom := errors.New("boom")
	r := &Runner{Parallelism: 2}
	jobs := []Job{
		{Label: "hang", Run: func(ctx context.Context) error { <-ctx.Done(); return ctx.Err() }},
		{Label: "fail", Run: func(ctx context.Context) error { return boom }},
	}
	metrics, err := r.Run(context.Background(), jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the real failure", err)
	}
	if !errors.Is(metrics[0].Err, context.Canceled) {
		t.Fatalf("hung job err = %v, want Canceled via fail-fast", metrics[0].Err)
	}
}

// Retries re-run only timeout failures, and the attempt count is
// recorded.
func TestRunnerRetries(t *testing.T) {
	r := &Runner{Parallelism: 1, Timeout: 10 * time.Millisecond, Retries: 2}
	calls := 0
	jobs := []Job{{Label: "flaky", Run: func(ctx context.Context) error {
		calls++
		if calls < 3 {
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	}}}
	metrics, err := r.Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("err = %v, want success on the third attempt", err)
	}
	if calls != 3 || metrics[0].Attempts != 3 || metrics[0].Err != nil {
		t.Fatalf("calls = %d, metrics = %+v", calls, metrics[0])
	}
}

// Progress reports every completion exactly once with a consistent
// total.
func TestRunnerProgressCounts(t *testing.T) {
	var got []Progress
	r := &Runner{Parallelism: 4, Progress: func(p Progress) { got = append(got, p) }}
	var jobs []Job
	for i := 0; i < 10; i++ {
		jobs = append(jobs, Job{Label: fmt.Sprintf("j%d", i), Run: func(ctx context.Context) error { return nil }})
	}
	if _, err := r.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("%d progress events, want 10", len(got))
	}
	for i, p := range got {
		if p.Done != i+1 || p.Total != 10 {
			t.Fatalf("progress %d = %+v", i, p)
		}
	}
}

// Concurrent suite runs under a fault profile (run under -race in CI):
// every job injects faults and merges its counters into one shared
// registry, and the per-run "<app>/<variant>/" metric prefixes must not
// interleave — each prefix carries exactly its own run's deterministic
// values, so two parallel runs snapshot identically (modulo the pool's
// wall-clock tally) and each prefix's fault counters match the result
// that run returned.
func TestRunnerFaultProfilesConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the suite twice")
	}
	prof, ok := fault.ProfileByName("chaos")
	if !ok {
		t.Fatal("chaos profile missing")
	}
	prof.Seed = 11
	run := func() (obs.Snapshot, []*AppResult) {
		reg := obs.NewRegistry()
		rs, err := RunSuiteContext(context.Background(), SuiteOptions{
			Scale:       0.15,
			Parallelism: 8,
			Metrics:     reg,
			Faults:      &prof,
		})
		if err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot(), rs
	}
	s1, r1 := run()
	s2, _ := run()

	// Determinism across parallel runs: identical counter sets and values
	// except the pool's wall-clock tally.
	if len(s1.Counters) != len(s2.Counters) {
		t.Fatalf("counter sets differ: %d vs %d", len(s1.Counters), len(s2.Counters))
	}
	for name, v1 := range s1.Counters {
		if name == "runner.wall_ns" {
			continue
		}
		if v2, ok := s2.Counters[name]; !ok || v1 != v2 {
			t.Errorf("%s: %d vs %d across identical parallel runs", name, v1, v2)
		}
	}

	// Prefix integrity: each run's fault counters landed under its own
	// prefix with exactly the values that run reported.
	for _, a := range r1 {
		if a.P.Faults.Total() == 0 {
			t.Errorf("%s/P: chaos profile injected nothing", a.Name)
		}
		for prefix, want := range map[string]fault.Counts{
			a.Name + "/O/": a.O.Faults,
			a.Name + "/P/": a.P.Faults,
		} {
			checks := map[string]int64{
				prefix + "fault.read_errors":       want.ReadErrors,
				prefix + "fault.write_errors":      want.WriteErrors,
				prefix + "fault.slowdowns":         want.Slowdowns,
				prefix + "fault.brownout_failures": want.BrownoutFailures,
				prefix + "fault.prefetch_drops":    want.PrefetchDrops,
			}
			for name, want := range checks {
				if got := s1.Counters[name]; got != want {
					t.Errorf("%s = %d, want %d (prefix interleaved?)", name, got, want)
				}
			}
		}
	}
}

// The runner's pool counters and trace are written by every worker
// concurrently; this test (run under -race in CI) pins both the totals
// and the data-race freedom of the shared registry.
func TestRunnerObservabilityConcurrent(t *testing.T) {
	trace := obs.NewTrace()
	reg := obs.NewRegistry()
	shared := reg.Counter("test.work")
	r := &Runner{Parallelism: 8, Trace: trace, Metrics: reg}
	const n = 64
	var jobs []Job
	for i := 0; i < n; i++ {
		jobs = append(jobs, Job{
			Label: fmt.Sprintf("j%d", i),
			Run: func(ctx context.Context) error {
				// Jobs also hammer the shared registry directly, like
				// concurrent suite runs merging their metrics do.
				for k := 0; k < 100; k++ {
					shared.Inc()
				}
				return nil
			},
		})
	}
	if _, err := r.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["runner.jobs"]; got != n {
		t.Fatalf("runner.jobs = %d, want %d", got, n)
	}
	if got := snap.Counters["runner.attempts"]; got != n {
		t.Fatalf("runner.attempts = %d, want %d", got, n)
	}
	if got := snap.Counters["test.work"]; got != n*100 {
		t.Fatalf("test.work = %d, want %d", got, n*100)
	}
	if got := snap.Counters["runner.jobs_failed"]; got != 0 {
		t.Fatalf("runner.jobs_failed = %d, want 0", got)
	}

	// One "runner" process, one span per job across the worker tracks.
	var spans, workers int
	for _, e := range trace.Events() {
		switch {
		case e.Phase == 'X' && e.Cat == "job":
			spans++
		case e.Phase == 'M' && e.Name == "thread_name":
			workers++
		}
	}
	if spans != n {
		t.Fatalf("%d job spans, want %d", spans, n)
	}
	if workers != 8 {
		t.Fatalf("%d worker tracks, want 8", workers)
	}
}
