package bench

import (
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/nas"
)

// testScale is used for the cheaper single-app tests; the full-suite
// shape tests run at the paper's standard scale, where its claims live.
const testScale = 0.35

// suiteScale is the problem scale for the cached full-suite run.
const suiteScale = 1.0

// suite runs the full suite once per test binary (it is the expensive
// part of this package's tests).
var suiteCache []*AppResult

func suite(t *testing.T) []*AppResult {
	t.Helper()
	if testing.Short() {
		t.Skip("suite shapes are not short")
	}
	if suiteCache == nil {
		rs, err := RunSuite(suiteScale, 0, true)
		if err != nil {
			t.Fatal(err)
		}
		suiteCache = rs
	}
	return suiteCache
}

// The headline claim: prefetching speeds up every application in the
// suite, and APPBT (the symbolic-bound victim) benefits least.
func TestPrefetchingWinsEverywhere(t *testing.T) {
	rs := suite(t)
	var worst string
	worstSpeedup := 1e9
	for _, r := range rs {
		s := r.Speedup()
		if s <= 1.0 {
			t.Errorf("%s: speedup %.2f, want > 1", r.Name, s)
		}
		if s < worstSpeedup {
			worstSpeedup, worst = s, r.Name
		}
	}
	if worst != "APPBT" {
		t.Errorf("smallest speedup is %s, want APPBT (the paper's laggard)", worst)
	}
}

// Figure 3(b): more than half the stall time eliminated for at least 7 of
// the 8 applications.
func TestStallElimination(t *testing.T) {
	rs := suite(t)
	over := 0
	for _, r := range rs {
		if r.StallEliminated() > 0.5 {
			over++
		}
	}
	if over < 7 {
		t.Errorf("only %d/8 apps eliminated >50%% of stall; the paper has 7", over)
	}
}

// Figure 4(a): coverage above 75% for every application except APPBT.
func TestCoverageShape(t *testing.T) {
	rs := suite(t)
	for _, r := range rs {
		cov := r.P.Mem.CoverageFactor()
		if r.Name == "APPBT" {
			if cov >= 0.75 {
				t.Errorf("APPBT coverage %.2f, want < 0.75 (symbolic bounds defeat the compiler)", cov)
			}
			continue
		}
		if cov < 0.75 {
			t.Errorf("%s coverage %.2f, want ≥ 0.75", r.Name, cov)
		}
	}
}

// Figure 4(b): EMBAR's analysis is perfect (≈0% unnecessary); the
// indirect-heavy applications insert mostly unnecessary prefetches that
// the run-time layer filters.
func TestUnnecessaryPrefetchShape(t *testing.T) {
	rs := suite(t)
	for _, r := range rs {
		frac := r.P.RT.UnnecessaryInsertedFrac()
		switch r.Name {
		case "EMBAR":
			if frac > 0.05 {
				t.Errorf("EMBAR unnecessary fraction %.3f, want ≈0", frac)
			}
		case "BUK", "CGM":
			if frac < 0.9 {
				t.Errorf("%s unnecessary fraction %.3f, want > 0.9", r.Name, frac)
			}
		}
	}
}

// Figure 4(c): without the run-time layer, the indirect-heavy
// applications are slower than not prefetching at all.
func TestRuntimeLayerIsEssential(t *testing.T) {
	rs := suite(t)
	for _, r := range rs {
		if r.Name == "BUK" || r.Name == "CGM" {
			if r.NoRT.Times.Total() <= r.O.Times.Total() {
				t.Errorf("%s without run-time layer (%v) should be slower than original (%v)",
					r.Name, r.NoRT.Times.Total(), r.O.Times.Total())
			}
		}
		// The layer never hurts materially, even where its filtering
		// benefit is small (EMBAR's prefetches are all necessary).
		if float64(r.P.Times.Total()) > 1.05*float64(r.NoRT.Times.Total()) {
			t.Errorf("%s: run-time layer hurt (%v vs %v)",
				r.Name, r.P.Times.Total(), r.NoRT.Times.Total())
		}
	}
}

// Figure 5: prefetching must not increase total disk requests (it only
// moves them earlier), and disk utilization must rise.
func TestDiskShape(t *testing.T) {
	rs := suite(t)
	for _, r := range rs {
		var oTotal, pTotal int64
		for _, d := range r.O.DiskStats {
			oTotal += d.RequestsTotal()
		}
		for _, d := range r.P.DiskStats {
			pTotal += d.RequestsTotal()
		}
		if float64(pTotal) > 1.15*float64(oTotal) {
			t.Errorf("%s: disk requests rose %d → %d (>15%%)", r.Name, oTotal, pTotal)
		}
		if r.P.DiskUtil <= r.O.DiskUtil {
			t.Errorf("%s: utilization did not rise (%.2f → %.2f)", r.Name, r.O.DiskUtil, r.P.DiskUtil)
		}
	}
}

// Table 3: the streaming applications (BUK, EMBAR) release pages and keep
// most of memory free; the solver applications do not.
func TestReleaseShape(t *testing.T) {
	rs := suite(t)
	for _, r := range rs {
		switch r.Name {
		case "BUK", "EMBAR":
			if r.P.Mem.ReleasedPages == 0 {
				t.Errorf("%s issued no releases", r.Name)
			}
			if r.P.AvgFree < 0.5 {
				t.Errorf("%s avg free %.2f, want > 0.5", r.Name, r.P.AvgFree)
			}
		case "APPBT", "APPLU", "CGM", "FFT":
			if r.P.AvgFree > 0.5 {
				t.Errorf("%s avg free %.2f, want < 0.5 (not a streaming app)", r.Name, r.P.AvgFree)
			}
		}
	}
}

// Renderers must produce their headers from real results.
func TestRenderers(t *testing.T) {
	rs := suite(t)
	var b strings.Builder
	Fig3(&b, rs)
	Fig4(&b, rs)
	Fig5(&b, rs)
	Table3(&b, rs)
	Table1(&b, hw.Default())
	Table2(&b, testScale)
	out := b.String()
	for _, want := range []string{
		"Figure 3(a)", "Figure 3(b)", "Figure 4(a)", "Figure 4(b)", "Figure 4(c)",
		"Figure 5", "Table 3", "Table 1", "Table 2", "speedup",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

// Figure 8: the original version hits a cliff when the problem stops
// fitting in memory; the prefetching version stays roughly linear and
// wins at every out-of-core size.
func TestFig8Cliff(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	const mem = 3 << 20
	pts, err := Fig8Sweep(mem, []float64{0.06, 0.125, 0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	// First two points are in-core, last two far out of core.
	inCore := pts[0]
	outCore := pts[len(pts)-1]
	if inCore.Ratio >= 1 || outCore.Ratio <= 1.5 {
		t.Fatalf("sweep did not straddle the memory size: %+v", pts)
	}
	// Per-byte cost of the original explodes across the cliff; the
	// prefetching version's stays within a modest factor.
	oSlope := float64(outCore.O) / float64(outCore.DataBytes) /
		(float64(inCore.O) / float64(inCore.DataBytes))
	pSlope := float64(outCore.P) / float64(outCore.DataBytes) /
		(float64(inCore.P) / float64(inCore.DataBytes))
	if oSlope < 1.3 {
		t.Errorf("original per-byte cost grew only %.2fx across the cliff, want ≥1.3x", oSlope)
	}
	if pSlope >= oSlope {
		t.Errorf("prefetching per-byte cost grew %.2fx, want below original's %.2fx", pSlope, oSlope)
	}
	if outCore.P >= outCore.O {
		t.Error("prefetching lost out of core")
	}
}

// Figure 6: warm-started in-core runs pay pure prefetch overhead; the
// result is a modest slowdown, not a win.
func TestInCoreWarmOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	app := nas.ByName("EMBAR")
	r, err := RunApp(app, testScale, 0.3, false, func(cfg *core.Config) {
		cfg.WarmStart = true
	})
	if err != nil {
		t.Fatal(err)
	}
	slowdown := float64(r.P.Times.Total()) / float64(r.O.Times.Total())
	if slowdown < 1.0 {
		t.Errorf("warm in-core prefetching run faster than original (%.3f)? overhead missing", slowdown)
	}
	if slowdown > 1.6 {
		t.Errorf("warm in-core overhead %.2fx is implausibly large", slowdown)
	}
}

// The two-version ablation must recover APPBT's coverage.
func TestTwoVersionAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	var b strings.Builder
	if err := AblateTwoVersion(&b, testScale); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "two-version") {
		t.Fatal("ablation output malformed")
	}
	app := nas.ByName("APPBT")
	plain, err := RunApp(app, testScale, 0, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := RunApp(app, testScale, 0, false, func(cfg *core.Config) {
		cfg.Options = TwoVersionOptions()
	})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.P.Mem.CoverageFactor() <= plain.P.Mem.CoverageFactor() {
		t.Errorf("two-version loops did not raise APPBT coverage (%.2f vs %.2f)",
			fixed.P.Mem.CoverageFactor(), plain.P.Mem.CoverageFactor())
	}
	if fixed.Speedup() <= plain.Speedup() {
		t.Errorf("two-version loops did not raise APPBT speedup (%.2f vs %.2f)",
			fixed.Speedup(), plain.Speedup())
	}
}

var _ = io.Discard
