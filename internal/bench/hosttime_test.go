package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/nas"
)

// BenchmarkKernelHostTime measures the host (wall-clock) cost of one
// complete end-to-end run — compile, simulate, validate nothing — of a
// small CG proxy in the standard prefetching configuration. This is the
// figure the executor's page-run fast path exists to improve; the other
// benchmarks in the gate isolate its per-word components.
func BenchmarkKernelHostTime(b *testing.B) {
	app := nas.CGM()
	const scale = 0.1
	prog0 := app.Build(scale)
	ps := hw.Default().PageSize
	if err := prog0.Resolve(ps); err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(core.MachineFor(nas.DataBytes(prog0, ps), 2))
	cfg.Seed = app.Seed
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := app.Build(scale)
		if _, err := core.Run(prog, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
