package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/nas"
)

// BenchmarkKernelHostTime measures the host (wall-clock) cost of one
// complete end-to-end run — compile, simulate, validate nothing — of a
// small CG proxy in the standard prefetching configuration. This is the
// figure the executor's page-run fast path exists to improve; the other
// benchmarks in the gate isolate its per-word components.
func BenchmarkKernelHostTime(b *testing.B) {
	benchHostTime(b, nas.CGM(), 0.1, 2)
}

// BenchmarkKernelHostTimeProfileUse is BenchmarkKernelHostTime in the
// two-pass mode: the profile is recorded once outside the timer, and
// every timed iteration compiles and runs with it. Guiding the compiler
// from a profile must cost no more on the host than the static
// distance model it replaces — the lookup is one map probe per
// reference site at compile time and nothing at run time.
func BenchmarkKernelHostTimeProfileUse(b *testing.B) {
	app := nas.CGM()
	const scale, ratio = 0.1, 2
	prog0 := app.Build(scale)
	ps := hw.Default().PageSize
	if err := prog0.Resolve(ps); err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(core.MachineFor(nas.DataBytes(prog0, ps), ratio))
	cfg.Seed = app.Seed

	rcfg := cfg
	rcfg.Prefetch = false
	rcfg.Profile = &core.ProfileSpec{Record: true}
	rec, err := core.Run(app.Build(scale), rcfg)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Profile = &core.ProfileSpec{Use: rec.Profile}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := app.Build(scale)
		if _, err := core.Run(prog, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostTimeNAS is the per-application host-time matrix: every
// NAS proxy end-to-end at a reduced scale, so a regression localized to
// one app's loop shapes (indirect gather, 2-D nests, branches, FFT's
// non-affine stages) shows up under its own name in the bench gate.
func BenchmarkHostTimeNAS(b *testing.B) {
	for _, app := range nas.Apps() {
		b.Run(app.Name, func(b *testing.B) {
			benchHostTime(b, app, 0.05, ratioFor(app))
		})
	}
}

func benchHostTime(b *testing.B, app *nas.App, scale, ratio float64) {
	prog0 := app.Build(scale)
	ps := hw.Default().PageSize
	if err := prog0.Resolve(ps); err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(core.MachineFor(nas.DataBytes(prog0, ps), ratio))
	cfg.Seed = app.Seed
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := app.Build(scale)
		if _, err := core.Run(prog, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
