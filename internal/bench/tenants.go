package bench

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/tenant"
)

// TenantOptions configures the multi-tenant service benchmark: N tenant
// kernels sharing one frame pool and one disk array under residency
// quotas, prefetch-priority classes, and admission control.
type TenantOptions struct {
	// Tenants is the number of jobs submitted (must be positive).
	Tenants int

	// Classes is the per-tenant class assignment, cycled when shorter
	// than Tenants; empty cycles gold, silver, best-effort.
	Classes []disk.Class

	// Scale multiplies every tenant's data-set size (1 = standard).
	Scale float64

	// Seed drives the deterministic scheduler and access streams: same
	// mix and seed, byte-identical output.
	Seed uint64

	// Sched selects the shared array's scheduler; empty takes the
	// Backend spec's scheduler if any, else "qos".
	Sched string

	// Backend, if non-nil, rebuilds the shared machine's storage
	// subsystem for the spec's tier (as in core.Config.Backend), so the
	// service can run on NVMe or far memory instead of the paper's
	// disks.
	Backend *core.BackendSpec

	// Faults, if non-nil and enabled, injects the profile into the
	// shared array (the brownout walkthrough in EXPERIMENTS.md).
	Faults *fault.Profile

	// Trace and Metrics collect the run's timeline and counters, as in
	// RunOptions.
	Trace   *obs.Trace
	Metrics *obs.Registry
}

// ParseClasses parses a comma-separated QoS class list ("gold,silver,be")
// into the per-tenant assignment TenantOptions.Classes expects.
func ParseClasses(spec string) ([]disk.Class, error) {
	var out []disk.Class
	for _, part := range strings.Split(spec, ",") {
		c, err := disk.ParseClass(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// tenantKernels is the kernel rotation the benchmark assigns: a
// streaming scan (release-behind hints), a skewed zipf mix, and a
// strided walk — the three access shapes the paper's suite spans.
func tenantKernels(i int, pages int64) tenant.KernelSpec {
	switch i % 3 {
	case 0:
		return tenant.KernelSpec{Kind: "scan", Pages: pages, Passes: 2}
	case 1:
		return tenant.KernelSpec{Kind: "zipf", Pages: pages, Accesses: 3 * pages}
	default:
		return tenant.KernelSpec{Kind: "stride", Pages: pages, Passes: 2}
	}
}

// Tenants runs the multi-tenant service benchmark and prints a
// per-tenant report: class, quota, completion and stall times, fault
// classification, and dropped prefetches, followed by pool-level
// admission and reclaim counters. The aggregate data set is sized at 3×
// the shared memory so tenants genuinely contend for frames.
func Tenants(w io.Writer, opts TenantOptions) error {
	if opts.Tenants <= 0 {
		return fmt.Errorf("bench: tenant count must be positive, got %d", opts.Tenants)
	}
	scale := opts.Scale
	if scale == 0 {
		scale = 1
	}
	classes := opts.Classes
	if len(classes) == 0 {
		classes = []disk.Class{disk.Gold, disk.Silver, disk.BestEffort}
	}
	sched := opts.Sched
	if sched == "" && opts.Backend != nil {
		sched = opts.Backend.Sched
	}
	if sched == "" {
		sched = "qos"
	}

	pages := int64(256 * scale)
	if pages < 16 {
		pages = 16
	}
	frames := int64(opts.Tenants) * pages / 3
	if frames < 64 {
		frames = 64
	}
	machine := hw.Default()
	machine.MemoryBytes = frames * machine.PageSize
	if opts.Backend != nil {
		m, err := opts.Backend.Apply(machine)
		if err != nil {
			return err
		}
		machine = m
	}

	srv, err := tenant.NewServer(tenant.Config{
		Machine: machine,
		Seed:    opts.Seed,
		Sched:   sched,
		Metrics: opts.Metrics,
		Trace:   opts.Trace,
		Faults:  opts.Faults,
	})
	if err != nil {
		return err
	}
	quota := srv.Capacity() / int64(opts.Tenants)
	for i := 0; i < opts.Tenants; i++ {
		class := classes[i%len(classes)]
		spec := tenant.JobSpec{
			Name:        fmt.Sprintf("t%d-%s", i, tenantKernels(i, pages).Kind),
			Kernel:      tenantKernels(i, pages),
			Class:       class,
			QuotaFrames: quota,
			Seed:        uint64(i),
		}
		if class == disk.BestEffort {
			// Best-effort jobs also get a per-quantum hint budget, so
			// the run exercises user-level hint throttling.
			spec.HintBudget = 16
		}
		if _, err := srv.Submit(spec); err != nil {
			return err
		}
	}
	if err := srv.Run(); err != nil {
		return err
	}

	fmt.Fprintf(w, "Multi-tenant service: %d tenants, %d shared frames (quota %d each), sched=%s, seed=%d\n",
		opts.Tenants, machine.Frames(), quota, sched, opts.Seed)
	fmt.Fprintln(w, "--------------------------------------------------------------------------------")
	fmt.Fprintf(w, "  %-12s %-11s %11s %11s %8s %8s %8s %8s\n",
		"tenant", "class", "finish", "stall", "faults", "hits", "dropped", "budget")
	for _, r := range srv.Reports() {
		fmt.Fprintf(w, "  %-12s %-11s %9.1fms %9.1fms %8d %8d %8d %8d\n",
			r.Name, r.Class, r.Finished.Millis(), r.Stall.Millis(),
			r.Mem.MajorFaults, r.Mem.PrefetchedHits, r.Mem.PrefetchDropped,
			r.RT.BudgetDropped)
	}
	m := srv.Metrics()
	fmt.Fprintf(w, "  admission: %d admitted, %d queued, %d rejected; final clock %v\n",
		m.Counter("admission.admitted").Value(),
		m.Counter("admission.queued").Value(),
		m.Counter("admission.rejected").Value(),
		srv.Clock().Now())
	if opts.Faults != nil {
		fmt.Fprintf(w, "  faults injected: %d read errors, %d slowdowns, %d brownout failures, %d dropped hints\n",
			m.Counter("fault.read_errors").Value(),
			m.Counter("fault.slowdowns").Value(),
			m.Counter("fault.brownout_failures").Value(),
			m.Counter("fault.prefetch_drops").Value())
	}
	return srv.Pool().CheckInvariants()
}
