package bench

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/nas"
)

func TestHostMatrixMeasure(t *testing.T) {
	if os.Getenv("HOSTMATRIX") == "" {
		t.Skip("measurement helper; set HOSTMATRIX=1")
	}
	tiers := []string{"", "nvme", "farmem"}
	for _, app := range nas.Apps() {
		const scale = 0.1
		prog0 := app.Build(scale)
		ps := hw.Default().PageSize
		if err := prog0.Resolve(ps); err != nil {
			t.Fatal(err)
		}
		cfg0 := core.DefaultConfig(core.MachineFor(nas.DataBytes(prog0, ps), ratioFor(app)))
		cfg0.Seed = app.Seed
		fmt.Printf("%-6s", app.Name)
		for _, tier := range tiers {
			cfg := cfg0
			if tier != "" {
				s, err := core.ParseBackendSpec(tier)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Backend = &s
			}
			for _, slow := range []bool{true, false} {
				c := cfg
				c.NoFastPath = slow
				best := time.Duration(1 << 62)
				for r := 0; r < 3; r++ {
					start := time.Now()
					if _, err := core.Run(app.Build(scale), c); err != nil {
						t.Fatal(err)
					}
					if d := time.Since(start); d < best {
						best = d
					}
				}
				fmt.Printf("  %8.2f", float64(best.Microseconds())/1000)
			}
		}
		fmt.Println()
	}
}
