package bench

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Job is one unit of work for a Runner — typically a single simulated
// run (one app in one configuration). Every job owns a private
// simulated system and shares no state with its siblings, so jobs are
// safe to execute concurrently; Run must honor ctx so cancellation and
// per-job timeouts reach the simulator's event loop.
type Job struct {
	// Label identifies the job in metrics and progress output,
	// e.g. "BUK/P" or "EMBAR/warm".
	Label string
	// Run does the work. The ctx it receives carries the runner's
	// cancellation and, when Runner.Timeout is set, this job's deadline.
	Run func(ctx context.Context) error
}

// JobMetric records how one job went: wall-clock cost, attempts, and
// outcome. The Runner returns one metric per submitted job, indexed in
// submission order regardless of completion order.
type JobMetric struct {
	Index    int
	Label    string
	Wall     time.Duration // total wall clock across attempts
	Attempts int           // executions of Job.Run (0 = never started)
	TimedOut bool          // failed by its own per-job deadline
	Err      error
}

// Progress is delivered to a Runner's Progress callback each time a job
// finishes. Done counts finished jobs; callbacks arrive in completion
// order, which is nondeterministic — progress is for humans, results
// are always collected by index.
type Progress struct {
	Done  int
	Total int
	Job   JobMetric
}

// ProgressFunc observes job completions. It is called from worker
// goroutines, serialized by the Runner.
type ProgressFunc func(Progress)

// Runner executes independent jobs on a worker pool. The zero value is
// ready to use: GOMAXPROCS workers, no timeout, no retries.
//
// Ordering and determinism: results are written by submission index,
// never by completion order, so a parallel run is byte-identical to a
// serial one (every simulated system is private and deterministic).
//
// Errors: a job failure cancels the jobs still outstanding (the serial
// harness also stopped at the first error) — except a job that failed
// by its own per-job timeout, which must not poison its siblings. Run
// reports the lowest-index real failure; if the caller's context was
// cancelled, it reports ctx.Err().
type Runner struct {
	// Parallelism is the worker-pool size; <= 0 means
	// runtime.GOMAXPROCS(0).
	Parallelism int
	// Timeout, if positive, bounds each job's wall-clock time. An
	// expired job aborts cleanly (the deadline is threaded down into
	// the simulator's event loop) without cancelling other jobs.
	Timeout time.Duration
	// Retries re-runs a job that failed by its own timeout up to this
	// many extra times. Simulated runs are deterministic, so this only
	// helps when the timeout loss was wall-clock noise (GC pause, noisy
	// neighbor), not when the run is genuinely oversized.
	Retries int
	// Progress, if set, observes each job completion.
	Progress ProgressFunc
	// Trace, if non-nil, gets a "runner" process with one track per
	// worker, spanning every job on the wall clock.
	Trace *obs.Trace
	// Metrics, if non-nil, receives the pool's own counters
	// (runner.jobs, runner.jobs_failed, runner.jobs_timed_out,
	// runner.attempts, runner.wall_ns), updated concurrently by the
	// workers.
	Metrics *obs.Registry
}

// poolObs is the runner's own observability state, resolved once per Run.
type poolObs struct {
	proc                                   *obs.Proc
	jobs, failed, timedOut, attempts, wall *obs.Counter
	epoch                                  time.Time
}

func (r *Runner) observe() poolObs {
	reg := r.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	var proc *obs.Proc
	if r.Trace != nil {
		proc = r.Trace.NewProcess("runner")
	}
	return poolObs{
		proc:     proc,
		jobs:     reg.Counter("runner.jobs"),
		failed:   reg.Counter("runner.jobs_failed"),
		timedOut: reg.Counter("runner.jobs_timed_out"),
		attempts: reg.Counter("runner.attempts"),
		wall:     reg.Counter("runner.wall_ns"),
		epoch:    time.Now(),
	}
}

// record accounts one finished job and, when tracing, spans it on the
// worker's track from its wall-clock start.
func (po *poolObs) record(track *obs.Track, label string, started time.Duration, m JobMetric) {
	po.jobs.Inc()
	po.attempts.Add(int64(m.Attempts))
	po.wall.Add(int64(m.Wall))
	if m.TimedOut {
		po.timedOut.Inc()
	}
	if m.Err != nil {
		po.failed.Inc()
	}
	track.Span(label, "job", sim.Time(started), sim.Time(m.Wall))
}

// Run executes jobs and returns one metric per job, in submission
// order. See the Runner doc comment for ordering and error semantics.
func (r *Runner) Run(ctx context.Context, jobs []Job) ([]JobMetric, error) {
	metrics := make([]JobMetric, len(jobs))
	for i := range metrics {
		metrics[i].Index = i
		metrics[i].Label = jobs[i].Label
	}
	if len(jobs) == 0 {
		return metrics, ctx.Err()
	}
	workers := r.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // guards done and serializes Progress
		done int
	)
	po := r.observe()
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		track := po.proc.Thread(fmt.Sprintf("worker %d", w))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				started := time.Since(po.epoch)
				m := r.runJob(runCtx, i, jobs[i])
				po.record(track, jobs[i].Label, started, m)
				metrics[i] = m
				if m.Err != nil && !m.TimedOut {
					cancel()
				}
				mu.Lock()
				done++
				p := Progress{Done: done, Total: len(jobs), Job: m}
				if r.Progress != nil {
					r.Progress(p)
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	return metrics, firstError(ctx, metrics)
}

// runJob executes one job, applying the per-job timeout and retries.
func (r *Runner) runJob(ctx context.Context, i int, job Job) JobMetric {
	m := JobMetric{Index: i, Label: job.Label}
	for attempt := 1; ; attempt++ {
		m.Attempts = attempt
		jctx, cancel := ctx, context.CancelFunc(func() {})
		if r.Timeout > 0 {
			jctx, cancel = context.WithTimeout(ctx, r.Timeout)
		}
		start := time.Now()
		err := job.Run(jctx)
		m.Wall += time.Since(start)
		cancel()
		if err == nil {
			m.Err, m.TimedOut = nil, false
			return m
		}
		// The job's own deadline expiring is a timeout; the parent
		// context going away is a cancellation.
		m.TimedOut = errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil
		if m.TimedOut {
			m.Err = fmt.Errorf("%s: run exceeded %v (attempt %d): %w",
				job.Label, r.Timeout, attempt, err)
			if attempt <= r.Retries {
				continue
			}
			return m
		}
		m.Err = err
		return m
	}
}

// firstError picks Run's overall error: the caller's own cancellation
// wins, then the lowest-index real failure. Jobs that died with
// context.Canceled only because a sibling's failure cancelled them are
// passed over when a real failure exists.
func firstError(ctx context.Context, metrics []JobMetric) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var cancelled error
	for i := range metrics {
		err := metrics[i].Err
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled):
			if cancelled == nil {
				cancelled = err
			}
		default:
			return err
		}
	}
	return cancelled
}
