// ExplainFastPath: a diagnostic report of how the executor compiled each
// NAS proxy's loop nest — which loops got the page-run span driver, which
// run as linearized kernel bytecode, and why a loop fell back when it
// did. `oocbench -explain-fastpath` prints it so a silently-missed
// specialization is visible instead of just slow.
package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/nas"
)

// ExplainFastPath runs every NAS proxy once at the given scale in the
// standard prefetching configuration and prints each loop's compiled
// driver and fallback reason.
func ExplainFastPath(w io.Writer, scale float64) error {
	ps := hw.Default().PageSize
	for _, app := range nas.Apps() {
		prog := app.Build(scale)
		if err := prog.Resolve(ps); err != nil {
			return fmt.Errorf("%s: %w", app.Name, err)
		}
		cfg := core.DefaultConfig(core.MachineFor(nas.DataBytes(prog, ps), ratioFor(app)))
		cfg.Seed = app.Seed
		res, err := core.Run(app.Build(scale), cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", app.Name, err)
		}
		fmt.Fprintf(w, "%s:\n", app.Name)
		if len(res.FastPath) == 0 {
			fmt.Fprintln(w, "  (no compiled loops)")
			continue
		}
		for _, r := range res.FastPath {
			fmt.Fprintf(w, "  %s\n", r)
		}
	}
	return nil
}

// ratioFor picks the app's standard data:memory ratio (2× unless the
// paper used something else).
func ratioFor(app *nas.App) float64 {
	if app.StdRatio != 0 {
		return app.StdRatio
	}
	return 2
}
