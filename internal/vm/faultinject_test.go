package vm

import (
	"math/rand"
	"testing"

	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stripefs"
)

// newFaultyVM builds a VM over a faulted file system: the injector is
// attached to both the disks (transient errors, slowdowns, brownouts)
// and the VM (pressure drops), as core does.
func newFaultyVM(t testing.TB, frames, spacePages int64, prof fault.Profile) (*sim.Clock, *VM) {
	t.Helper()
	p := hw.Default()
	p.MemoryBytes = frames * p.PageSize
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	c := sim.NewClock()
	fs := stripefs.New(c, p, nil)
	f, err := fs.Create("space", spacePages)
	if err != nil {
		t.Fatal(err)
	}
	v := New(c, p, f)
	inj := fault.NewInjector(prof, nil, nil)
	fs.SetFaults(inj)
	v.SetFaults(inj)
	return c, v
}

// Synthetic memory pressure drops prefetch hints through the normal
// non-binding-drop path; the pages still arrive correctly on demand.
func TestPressureDropsPrefetches(t *testing.T) {
	prof, _ := fault.ProfileByName("pressure")
	prof.Seed = 5
	c, v := newFaultyVM(t, 64, 128, prof)
	base, _ := v.Alloc("x", 128*v.Params().PageSize)
	ps := v.Params().PageSize

	for p := int64(0); p < 96; p += 8 {
		v.Prefetch(p, 8)
		c.Advance(2 * sim.Millisecond)
	}
	s := v.Stats()
	if s.PrefetchDropped == 0 {
		t.Fatalf("35%% drop rate dropped nothing: %+v", s)
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Dropped pages are merely unprefetched: loads still work.
	for p := int64(0); p < 96; p++ {
		if got := v.Load(base + p*ps); got != 0 {
			t.Fatalf("page %d read %#x, want zero-fill", p, got)
		}
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// An abandoned prefetch reverts its page to unmapped; the application's
// later touch takes a demand fault (classified as a late prefetched
// fault) and still observes the right data.
func TestAbandonedPrefetchRecoversViaDemandFault(t *testing.T) {
	prof := fault.Profile{
		Name:          "abandoner",
		Seed:          9,
		ReadErrorRate: 0.6,
		Retry:         fault.RetryPolicy{MaxAttempts: 2, Timeout: 3600 * sim.Second},
	}
	c, v := newFaultyVM(t, 64, 128, prof)
	base, _ := v.Alloc("x", 128*v.Params().PageSize)
	ps := v.Params().PageSize

	// Seed distinctive on-disk contents without simulated I/O.
	for p := int64(0); p < 128; p++ {
		v.file.SetPage(p, []byte{byte(p), byte(p >> 1)})
	}
	for p := int64(0); p < 96; p += 8 {
		v.Prefetch(p, 8)
		c.Advance(5 * sim.Millisecond)
	}
	s := v.Stats()
	if s.PrefetchAbandoned == 0 {
		t.Fatalf("harsh profile abandoned no prefetches: %+v", s)
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for p := int64(0); p < 96; p++ {
		want := uint64(byte(p)) | uint64(byte(p>>1))<<8
		if got := v.Load(base + p*ps); got != want {
			t.Fatalf("page %d read %#x, want %#x", p, got, want)
		}
	}
	s = v.Stats()
	// Every abandoned page that was touched became a fault, not a hit, and
	// it was classified as prefetched ("late"), not unprefetched.
	if s.PrefetchedFaults == 0 {
		t.Fatalf("abandoned prefetches produced no late prefetched faults: %+v", s)
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The randomized torture test of invariants_test.go, under the chaos
// profile: arbitrary interleavings of touches, stores, hints, and time,
// with every fault kind injected at once. Invariants must hold at every
// checkpoint and every written word must read back exactly.
func TestRandomOperationsUnderChaosFaults(t *testing.T) {
	iters := 6
	if testing.Short() {
		iters = 2
	}
	for trial := 0; trial < iters; trial++ {
		prof, _ := fault.ProfileByName("chaos")
		prof.Seed = uint64(1000 + trial)
		rng := rand.New(rand.NewSource(int64(5500 + trial)))
		frames := int64(8 + rng.Intn(56))
		pages := frames * int64(2+rng.Intn(4))
		c, v := newFaultyVM(t, frames, pages, prof)
		base, err := v.Alloc("x", pages*v.Params().PageSize)
		if err != nil {
			t.Fatal(err)
		}
		ps := v.Params().PageSize

		shadow := map[int64]uint64{}
		for s := 0; s < 400; s++ {
			p := rng.Int63n(pages)
			switch rng.Intn(6) {
			case 0:
				addr := base + p*ps + rng.Int63n(ps/8)*8
				if got, want := v.Load(addr), shadow[addr]; got != want {
					t.Fatalf("trial %d step %d: addr %#x = %#x, want %#x", trial, s, addr, got, want)
				}
			case 1:
				addr := base + p*ps + rng.Int63n(ps/8)*8
				val := uint64(s)<<8 | 1
				v.Store(addr, val)
				shadow[addr] = val
			case 2:
				n := 1 + rng.Int63n(8)
				if p+n > pages {
					n = pages - p
				}
				v.Prefetch(p, n)
			case 3:
				n := 1 + rng.Int63n(8)
				if p+n > pages {
					n = pages - p
				}
				v.Release(p, n)
			case 4:
				v.PrefetchRelease(p, 1, rng.Int63n(pages), 1)
			case 5:
				c.Advance(sim.Time(rng.Int63n(int64(40 * sim.Millisecond))))
			}
			if s%25 == 0 {
				if err := v.CheckInvariants(); err != nil {
					t.Fatalf("trial %d step %d: %v", trial, s, err)
				}
			}
		}
		v.Finish()
		c.Advance(sim.Second)
		if err := v.CheckInvariants(); err != nil {
			t.Fatalf("trial %d final: %v", trial, err)
		}
		for addr, want := range shadow {
			if got := v.Load(addr); got != want {
				t.Fatalf("trial %d final: addr %#x = %#x, want %#x", trial, addr, got, want)
			}
		}
	}
}
