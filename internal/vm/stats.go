package vm

import (
	"repro/internal/obs"
	"repro/internal/sim"
)

// TimeStats is the four-way execution-time breakdown of Figure 3(a):
// user-mode compute (including prefetch address generation and run-time
// layer filtering), system time spent servicing page faults, system time
// spent performing prefetch and release operations, and idle (I/O stall)
// time.
type TimeStats struct {
	User        sim.Time
	SysFault    sim.Time
	SysPrefetch sim.Time
	Idle        sim.Time
}

// Total returns the sum of all four buckets, i.e. the run's execution time.
func (t TimeStats) Total() sim.Time {
	return t.User + t.SysFault + t.SysPrefetch + t.Idle
}

// Stats counts virtual-memory events. Faults that stall on I/O are
// classified the way Figure 4(a) does: every "original" page fault either
// became a prefetched hit (latency fully hidden), remained a fault despite
// being prefetched (issued too late, dropped, or evicted before use), or
// was never prefetched at all.
type Stats struct {
	// Fault classification (Figure 4(a)). OriginalFaults() is their sum.
	PrefetchedHits     int64 // prefetched and the fault was eliminated
	PrefetchedFaults   int64 // prefetched but the application still stalled
	NonPrefetchedFault int64 // faulted without any prefetch having been issued

	MajorFaults int64 // faults that required disk I/O
	MinorFaults int64 // reclaim faults: page rescued from the free list

	// Prefetch activity at the OS interface.
	PrefetchCalls     int64 // prefetch/release system calls
	PrefetchPagesSeen int64 // pages named in those calls
	PrefetchIssued    int64 // pages for which a disk read was started
	PrefetchRescues   int64 // pages reclaimed from the free list (useful work)
	PrefetchUnneeded  int64 // pages already mapped (wasted syscall work)
	PrefetchDropped   int64 // pages dropped because no memory was free
	// PrefetchAbandoned counts issued prefetch reads the disk permanently
	// failed under fault injection; the pages reverted to unmapped and
	// were recovered by later demand faults. Always zero without faults.
	// (These pages are in PrefetchIssued, so they are not added to
	// PrefetchPagesSeen again.)
	PrefetchAbandoned int64

	// Release activity.
	ReleaseCalls  int64 // calls carrying at least one release
	ReleasedPages int64 // pages released
	Writebacks    int64 // dirty-page writes to disk (daemon, release, eviction)

	// Memory manager activity.
	Reclaims    int64 // frames taken from one page and given to another
	DaemonScans int64 // pageout daemon activations
}

// OriginalFaults returns the number of page faults the unmodified program
// would have taken, reconstructed from the classification counters.
func (s Stats) OriginalFaults() int64 {
	return s.PrefetchedHits + s.PrefetchedFaults + s.NonPrefetchedFault
}

// CoverageFactor returns the fraction of original faults that were
// prefetched (hit or not), Figure 4(a)'s coverage factor.
func (s Stats) CoverageFactor() float64 {
	total := s.OriginalFaults()
	if total == 0 {
		return 0
	}
	return float64(s.PrefetchedHits+s.PrefetchedFaults) / float64(total)
}

// UnnecessaryAtOSFrac returns the fraction of pages named in prefetch
// system calls that were already mapped — the left-hand column of
// Figure 4(b).
func (s Stats) UnnecessaryAtOSFrac() float64 {
	if s.PrefetchPagesSeen == 0 {
		return 0
	}
	return float64(s.PrefetchUnneeded) / float64(s.PrefetchPagesSeen)
}

// tally is the VM's hot-path accounting: plain fields incremented
// without synchronization, which is safe because a VM is driven by a
// single goroutine (each run owns a private simulator). The registry
// counters below are the export surface; every view read publishes the
// tally into them first, so registry snapshots taken after Stats() or
// Times() — which is how runs surface their metrics — are current.
type tally struct {
	// Time buckets, the four Figure 3(a) categories.
	user, sysFault, sysPrefetch, idle sim.Time

	// Fault classification and fault kinds. Major faults are not counted
	// separately: every classified fault required disk I/O, so the view
	// derives them as prefetched_fault + non_prefetched.
	prefetchedHits, prefetchedFaults, nonPrefetchedFault int64
	minorFaults                                          int64

	// Prefetch activity at the OS interface. Pages seen is likewise
	// derived: every page named in a hint lands in exactly one of
	// issued/rescues/unneeded/dropped.
	prefetchCalls, prefetchIssued                      int64
	prefetchRescues, prefetchUnneeded, prefetchDropped int64
	prefetchAbandoned                                  int64

	// Release and memory-manager activity.
	releaseCalls, releasedPages, writebacks int64
	reclaims, daemonScans                   int64
}

// counters is the VM's set of metrics-registry handles. The VM is the
// sole writer of these names in its run's registry, so publish may use
// absolute stores.
type counters struct {
	user, sysFault, sysPrefetch, idle *obs.Counter

	prefetchedHits, prefetchedFaults, nonPrefetchedFault *obs.Counter
	minorFaults                                          *obs.Counter

	prefetchCalls, prefetchIssued                      *obs.Counter
	prefetchRescues, prefetchUnneeded, prefetchDropped *obs.Counter
	prefetchAbandoned                                  *obs.Counter

	releaseCalls, releasedPages, writebacks *obs.Counter
	reclaims, daemonScans                   *obs.Counter
}

// newCounters resolves the VM's counter handles in reg once.
func newCounters(reg *obs.Registry) counters {
	return counters{
		user:        reg.Counter("vm.time.user_ns"),
		sysFault:    reg.Counter("vm.time.sys_fault_ns"),
		sysPrefetch: reg.Counter("vm.time.sys_prefetch_ns"),
		idle:        reg.Counter("vm.time.idle_ns"),

		prefetchedHits:     reg.Counter("vm.faults.prefetched_hit"),
		prefetchedFaults:   reg.Counter("vm.faults.prefetched_fault"),
		nonPrefetchedFault: reg.Counter("vm.faults.non_prefetched"),
		minorFaults:        reg.Counter("vm.faults.minor"),

		prefetchCalls:     reg.Counter("vm.prefetch.calls"),
		prefetchIssued:    reg.Counter("vm.prefetch.issued"),
		prefetchRescues:   reg.Counter("vm.prefetch.rescues"),
		prefetchUnneeded:  reg.Counter("vm.prefetch.unneeded"),
		prefetchDropped:   reg.Counter("vm.prefetch.dropped"),
		prefetchAbandoned: reg.Counter("vm.prefetch.abandoned"),

		releaseCalls:  reg.Counter("vm.release.calls"),
		releasedPages: reg.Counter("vm.release.pages"),
		writebacks:    reg.Counter("vm.writebacks"),
		reclaims:      reg.Counter("vm.reclaims"),
		daemonScans:   reg.Counter("vm.daemon_scans"),
	}
}

// publish stores the tally into the registry counters.
func (c *counters) publish(n *tally) {
	c.user.Store(int64(n.user))
	c.sysFault.Store(int64(n.sysFault))
	c.sysPrefetch.Store(int64(n.sysPrefetch))
	c.idle.Store(int64(n.idle))

	c.prefetchedHits.Store(n.prefetchedHits)
	c.prefetchedFaults.Store(n.prefetchedFaults)
	c.nonPrefetchedFault.Store(n.nonPrefetchedFault)
	c.minorFaults.Store(n.minorFaults)

	c.prefetchCalls.Store(n.prefetchCalls)
	c.prefetchIssued.Store(n.prefetchIssued)
	c.prefetchRescues.Store(n.prefetchRescues)
	c.prefetchUnneeded.Store(n.prefetchUnneeded)
	c.prefetchDropped.Store(n.prefetchDropped)
	c.prefetchAbandoned.Store(n.prefetchAbandoned)

	c.releaseCalls.Store(n.releaseCalls)
	c.releasedPages.Store(n.releasedPages)
	c.writebacks.Store(n.writebacks)
	c.reclaims.Store(n.reclaims)
	c.daemonScans.Store(n.daemonScans)
}

// stats assembles the Stats view. MajorFaults and PrefetchPagesSeen are
// derived sums (see the tally doc).
func (n *tally) stats() Stats {
	s := Stats{
		PrefetchedHits:     n.prefetchedHits,
		PrefetchedFaults:   n.prefetchedFaults,
		NonPrefetchedFault: n.nonPrefetchedFault,
		MinorFaults:        n.minorFaults,
		PrefetchCalls:      n.prefetchCalls,
		PrefetchIssued:     n.prefetchIssued,
		PrefetchRescues:    n.prefetchRescues,
		PrefetchUnneeded:   n.prefetchUnneeded,
		PrefetchDropped:    n.prefetchDropped,
		PrefetchAbandoned:  n.prefetchAbandoned,
		ReleaseCalls:       n.releaseCalls,
		ReleasedPages:      n.releasedPages,
		Writebacks:         n.writebacks,
		Reclaims:           n.reclaims,
		DaemonScans:        n.daemonScans,
	}
	s.MajorFaults = s.PrefetchedFaults + s.NonPrefetchedFault
	s.PrefetchPagesSeen = s.PrefetchIssued + s.PrefetchRescues + s.PrefetchUnneeded + s.PrefetchDropped
	return s
}

// times assembles the TimeStats view.
func (n *tally) times() TimeStats {
	return TimeStats{
		User:        n.user,
		SysFault:    n.sysFault,
		SysPrefetch: n.sysPrefetch,
		Idle:        n.idle,
	}
}
