package vm

import "repro/internal/sim"

// TimeStats is the four-way execution-time breakdown of Figure 3(a):
// user-mode compute (including prefetch address generation and run-time
// layer filtering), system time spent servicing page faults, system time
// spent performing prefetch and release operations, and idle (I/O stall)
// time.
type TimeStats struct {
	User        sim.Time
	SysFault    sim.Time
	SysPrefetch sim.Time
	Idle        sim.Time
}

// Total returns the sum of all four buckets, i.e. the run's execution time.
func (t TimeStats) Total() sim.Time {
	return t.User + t.SysFault + t.SysPrefetch + t.Idle
}

// Stats counts virtual-memory events. Faults that stall on I/O are
// classified the way Figure 4(a) does: every "original" page fault either
// became a prefetched hit (latency fully hidden), remained a fault despite
// being prefetched (issued too late, dropped, or evicted before use), or
// was never prefetched at all.
type Stats struct {
	// Fault classification (Figure 4(a)). OriginalFaults() is their sum.
	PrefetchedHits     int64 // prefetched and the fault was eliminated
	PrefetchedFaults   int64 // prefetched but the application still stalled
	NonPrefetchedFault int64 // faulted without any prefetch having been issued

	MajorFaults int64 // faults that required disk I/O
	MinorFaults int64 // reclaim faults: page rescued from the free list

	// Prefetch activity at the OS interface.
	PrefetchCalls     int64 // prefetch/release system calls
	PrefetchPagesSeen int64 // pages named in those calls
	PrefetchIssued    int64 // pages for which a disk read was started
	PrefetchRescues   int64 // pages reclaimed from the free list (useful work)
	PrefetchUnneeded  int64 // pages already mapped (wasted syscall work)
	PrefetchDropped   int64 // pages dropped because no memory was free

	// Release activity.
	ReleaseCalls  int64 // calls carrying at least one release
	ReleasedPages int64 // pages released
	Writebacks    int64 // dirty-page writes to disk (daemon, release, eviction)

	// Memory manager activity.
	Reclaims    int64 // frames taken from one page and given to another
	DaemonScans int64 // pageout daemon activations
}

// OriginalFaults returns the number of page faults the unmodified program
// would have taken, reconstructed from the classification counters.
func (s Stats) OriginalFaults() int64 {
	return s.PrefetchedHits + s.PrefetchedFaults + s.NonPrefetchedFault
}

// CoverageFactor returns the fraction of original faults that were
// prefetched (hit or not), Figure 4(a)'s coverage factor.
func (s Stats) CoverageFactor() float64 {
	total := s.OriginalFaults()
	if total == 0 {
		return 0
	}
	return float64(s.PrefetchedHits+s.PrefetchedFaults) / float64(total)
}

// UnnecessaryAtOSFrac returns the fraction of pages named in prefetch
// system calls that were already mapped — the left-hand column of
// Figure 4(b).
func (s Stats) UnnecessaryAtOSFrac() float64 {
	if s.PrefetchPagesSeen == 0 {
		return 0
	}
	return float64(s.PrefetchUnneeded) / float64(s.PrefetchPagesSeen)
}
