package vm

// BitVector is the single physical page the OS shares with a registered
// application (§2.4 of the paper). Each bit summarizes the residency of
// one or more contiguous virtual pages: set means "believed in memory".
// Bits are set by the run-time layer when it issues a prefetch and by the
// OS when a non-prefetched fault completes; the OS clears them on release
// and when the memory manager reclaims pages.
//
// When a bit covers more than one page (large address spaces) the vector
// is only a conservative hint, exactly as in the paper: the run-time layer
// may then filter a prefetch whose page is absent (a later fault corrects
// it) or pass through one whose page is resident (the OS drops it).
type BitVector struct {
	bits        []uint64
	pagesPerBit int64
}

// bitVectorBytes is the size of the shared page: one 4 KB physical page,
// i.e. 32768 bits.
const bitVectorBytes = 4096

// newBitVector sizes the vector for an address space of totalPages,
// choosing the smallest granularity (pages per bit) that fits the shared
// page, as the run-time layer does at registration.
func newBitVector(totalPages int64) *BitVector {
	maxBits := int64(bitVectorBytes * 8)
	ppb := (totalPages + maxBits - 1) / maxBits
	if ppb < 1 {
		ppb = 1
	}
	nbits := (totalPages + ppb - 1) / ppb
	return &BitVector{
		bits:        make([]uint64, (nbits+63)/64),
		pagesPerBit: ppb,
	}
}

// PagesPerBit returns the granularity chosen at registration.
func (b *BitVector) PagesPerBit() int64 { return b.pagesPerBit }

// Set marks the bit covering page as resident.
func (b *BitVector) Set(page int64) {
	i := page / b.pagesPerBit
	b.bits[i>>6] |= 1 << uint(i&63)
}

// Clear marks the bit covering page as not resident.
func (b *BitVector) Clear(page int64) {
	i := page / b.pagesPerBit
	b.bits[i>>6] &^= 1 << uint(i&63)
}

// Get reports whether the bit covering page is set.
func (b *BitVector) Get(page int64) bool {
	i := page / b.pagesPerBit
	return b.bits[i>>6]&(1<<uint(i&63)) != 0
}
