package vm

import "math/bits"

// BitVector is the single physical page the OS shares with a registered
// application (§2.4 of the paper). Each bit summarizes the residency of
// one or more contiguous virtual pages: set means "believed in memory".
// Bits are set by the run-time layer when it issues a prefetch and by the
// OS when a non-prefetched fault completes; the OS clears them on release
// and when the memory manager reclaims pages.
//
// When a bit covers more than one page (large address spaces) the vector
// is only a conservative hint, exactly as in the paper: the run-time layer
// may then filter a prefetch whose page is absent (a later fault corrects
// it) or pass through one whose page is resident (the OS drops it).
type BitVector struct {
	bits        []uint64
	pagesPerBit int64
}

// bitVectorBytes is the size of the shared page: one 4 KB physical page,
// i.e. 32768 bits.
const bitVectorBytes = 4096

// newBitVector sizes the vector for an address space of totalPages,
// choosing the smallest granularity (pages per bit) that fits the shared
// page, as the run-time layer does at registration.
func newBitVector(totalPages int64) *BitVector {
	maxBits := int64(bitVectorBytes * 8)
	ppb := (totalPages + maxBits - 1) / maxBits
	if ppb < 1 {
		ppb = 1
	}
	nbits := (totalPages + ppb - 1) / ppb
	return &BitVector{
		bits:        make([]uint64, (nbits+63)/64),
		pagesPerBit: ppb,
	}
}

// PagesPerBit returns the granularity chosen at registration.
func (b *BitVector) PagesPerBit() int64 { return b.pagesPerBit }

// Set marks the bit covering page as resident.
func (b *BitVector) Set(page int64) {
	i := page / b.pagesPerBit
	b.bits[i>>6] |= 1 << uint(i&63)
}

// Clear marks the bit covering page as not resident.
func (b *BitVector) Clear(page int64) {
	i := page / b.pagesPerBit
	b.bits[i>>6] &^= 1 << uint(i&63)
}

// Get reports whether the bit covering page is set.
func (b *BitVector) Get(page int64) bool {
	i := page / b.pagesPerBit
	return b.bits[i>>6]&(1<<uint(i&63)) != 0
}

// NextClear returns the first page in [page, end) whose covering bit is
// clear, or end if every bit covering the range is set. It scans a word
// of the vector at a time, so a filter over a long resident run costs
// one memory read per 64 bits instead of one Get per page. With more
// than one page per bit it returns the first page ≥ page covered by the
// clear bit, clamped into [page, end) — the same conservative answer a
// per-page Get loop would produce.
func (b *BitVector) NextClear(page, end int64) int64 {
	if page >= end {
		return end
	}
	i := page / b.pagesPerBit
	iEnd := (end-1)/b.pagesPerBit + 1 // first bit not covering the range
	w := i >> 6
	cur := ^b.bits[w] &^ (1<<uint(i&63) - 1) // clear bits at or above i
	for {
		if cur != 0 {
			bit := w<<6 + int64(bits.TrailingZeros64(cur))
			if bit >= iEnd {
				return end
			}
			p := bit * b.pagesPerBit
			if p < page {
				p = page
			}
			if p >= end {
				return end
			}
			return p
		}
		w++
		if w<<6 >= iEnd {
			return end
		}
		cur = ^b.bits[w]
	}
}

// SetRange sets the bits covering pages [page, page+n), whole words at a
// time. It matches a Set-per-page loop exactly, including the shared
// partial bits at either end when a bit covers several pages.
func (b *BitVector) SetRange(page, n int64) {
	if n <= 0 {
		return
	}
	i := page / b.pagesPerBit
	j := (page + n - 1) / b.pagesPerBit // last bit covering the range
	wi, wj := i>>6, j>>6
	lo := ^uint64(0) << uint(i&63)
	hi := ^uint64(0) >> uint(63-j&63)
	if wi == wj {
		b.bits[wi] |= lo & hi
		return
	}
	b.bits[wi] |= lo
	for w := wi + 1; w < wj; w++ {
		b.bits[w] = ^uint64(0)
	}
	b.bits[wj] |= hi
}
