// Package vm implements the operating-system half of the paper: a paged
// virtual memory system extended with non-binding prefetch and release
// hints. The application sees a flat virtual address space backed by a
// striped file ("mapped file I/O": the data comes from disk). Demand
// faults stall the application for the full disk latency; prefetch hints
// start asynchronous reads and are dropped when no memory is free; release
// hints unmap pages (writing them back if dirty) and put their frames at
// the head of the free list; a pageout daemon with a clock (second-chance)
// hand keeps the free list stocked; and a bit-vector page shared with the
// run-time layer tracks believed residency.
//
// Physical memory lives in a Pool that many address spaces can share
// (the multi-tenant server), with per-tenant residency quotas and
// fair-share reclaim; a single run owns a private pool and behaves
// exactly as the original single-tenant memory manager did.
package vm

import (
	"fmt"
	"math/bits"

	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stripefs"
)

// pageState is the residency state of one virtual page.
type pageState uint8

const (
	// unmapped: not in memory; a touch is a major fault.
	unmapped pageState = iota
	// inTransit: a disk read (fault or prefetch) is in flight.
	inTransit
	// resident: mapped to a frame holding valid data, but not yet
	// accessed this residency — the first touch still classifies the
	// page (prefetched hit or fault) before it becomes hot.
	resident
	// freeListed: still mapped and holding valid data, but on the free
	// list — reclaimable at any moment, rescuable by a touch or prefetch.
	freeListed
	// hot: resident and already touched. A separate state, redundant
	// with resident+touched, so that Load/Store decide "no kernel work
	// needed" with a single byte compare — the hottest branch in the
	// simulator. Invariant: state == hot ⇔ state ∈ {resident, hot} ∧
	// touched; everywhere outside Load/Store treats hot exactly like
	// resident.
	hot
)

// pte is a page-table entry. The classification flags implement the
// Figure 4(a) accounting described in stats.go.
type pte struct {
	state      pageState
	frame      int32
	dirty      bool
	referenced bool
	cleaning   bool // write-back in flight for this page's frame
	toFree     bool // after cleaning completes, move to the free list
	front      bool // ...at the head of the free list (release path)
	touched    bool // accessed since this residency began
	prefetched bool // a prefetch targeted the current/upcoming residency
}

// frameInfo describes one physical page frame.
type frameInfo struct {
	vpage  int64 // current mapping, -1 if none
	owner  *VM   // address space of the mapping, nil if never mapped
	onFree bool  // currently a member of the free queue
}

// VM is one simulated address space: a page table over a backing file,
// served by a frame Pool it may share with other address spaces.
type VM struct {
	clock *sim.Clock
	p     hw.Params
	file  *stripefs.File
	pool  *Pool
	tid   int32 // tenant id: index among the pool's address spaces

	pageShift uint
	pageMask  int64
	pageWords int64 // PageSize / 8
	wordShift uint  // pageShift - 3: frame index → word index

	pt    []pte
	words []uint64 // the pool's frame storage (aliased for the hot path)

	cleaningCount  int64 // this space's write-backs in flight
	inTransitCount int64 // this space's reads in flight

	// Lazy user-time accounting: the executor adds op counts; they are
	// converted to clock time at every kernel crossing.
	pendingUserOps int64

	bitvec *BitVector

	// Allocation bump pointer, in pages.
	allocPages int64
	regions    []Region

	// Residency quota (frames; 0 = unlimited) and current residency,
	// maintained by the pool at every frame transition.
	quota    int64
	resident int64

	// Prefetch-priority class and the drop thresholds derived from it.
	// The defaults are the Gold (paper-original) thresholds.
	class       disk.Class
	pfQueueMax  int
	pfFreeFloor int64

	// Fault plane (nil injects nothing): synthetic memory-pressure spikes
	// that drop otherwise-acceptable prefetch hints.
	flt *fault.Injector

	// I/O callbacks bound once at construction so the hint, fault, and
	// write-back paths hand stripefs the same method values on every
	// request — a fresh closure per request would allocate.
	dstFn     func(page int64) []uint64
	arrivedFn func(page int64)
	abandonFn func(page int64)
	cleanedFn func(page int64)

	// Hot-path accounting (plain fields; see tally in stats.go), the
	// registry handles it publishes to, and trace tracks. The tracks are
	// nil when tracing is off: each emission is then one nil check. Last
	// in the struct so the frequently-touched fields above keep small
	// offsets.
	n        tally
	c        counters
	trCPU    *obs.Track // kernel/user/idle spans, one per VM core
	trFaults *obs.Track // fault-classification instants
}

// Region records one named allocation in the address space.
type Region struct {
	Name  string
	Base  int64 // byte address of the first page
	Bytes int64
	Pages int64
}

// New creates a virtual memory system of p.Frames() frames over the given
// backing file. The virtual address space is the file: file page i is
// virtual page i. Accounting lands in a private metrics registry and
// tracing is off; NewObserved shares both with the rest of the system.
func New(clock *sim.Clock, p hw.Params, file *stripefs.File) *VM {
	return NewObserved(clock, p, file, nil)
}

// NewObserved is New with the run's observability sinks attached: the
// VM's counters register in o's registry and its spans and
// fault-classification instants go to tracks of o's trace process.
// The address space gets a private frame pool.
func NewObserved(clock *sim.Clock, p hw.Params, file *stripefs.File, o *obs.RunObs) *VM {
	return NewPool(clock, p).Attach(file, o)
}

// Attach creates an address space over file served by this pool. The
// tenant starts with no residency quota (unlimited) and the Gold
// prefetch class; set both before running it. Observability sinks work
// as in NewObserved; in multi-tenant servers each tenant usually gets
// its own registry and trace process so counter names do not collide.
func (pl *Pool) Attach(file *stripefs.File, o *obs.RunObs) *VM {
	p := pl.p
	v := &VM{
		clock:     pl.clock,
		p:         p,
		file:      file,
		pool:      pl,
		tid:       int32(len(pl.vms)),
		pageShift: uint(bits.TrailingZeros64(uint64(p.PageSize))),
		pageMask:  p.PageSize - 1,
		pageWords: p.PageSize / 8,
		wordShift: wordShiftOf(p.PageSize),
		pt:        make([]pte, file.Pages()),
		words:     pl.words,
	}
	v.dstFn = v.framePageWords
	v.arrivedFn = v.finishRead
	v.abandonFn = v.abandonPrefetch
	v.cleanedFn = v.cleaned
	v.pfQueueMax = maxPrefetchQueue
	v.pfFreeFloor = 2
	for i := range v.pt {
		v.pt[i].frame = -1
	}
	v.c = newCounters(o.Registry())
	v.trCPU = o.Thread("cpu")
	v.trFaults = o.Thread("faults")
	v.bitvec = newBitVector(file.Pages())
	pl.vms = append(pl.vms, v)
	return v
}

// SetFaults attaches a fault injector (nil detaches). The VM consults it
// for synthetic memory-pressure spikes that drop prefetch hints; hints
// are non-binding, so dropping them is always safe.
func (v *VM) SetFaults(inj *fault.Injector) { v.flt = inj }

// Params returns the hardware parameters.
func (v *VM) Params() hw.Params { return v.p }

// Clock returns the simulated clock.
func (v *VM) Clock() *sim.Clock { return v.clock }

// Pool returns the frame pool serving this address space.
func (v *VM) Pool() *Pool { return v.pool }

// TenantID returns this address space's index within its pool.
func (v *VM) TenantID() int32 { return v.tid }

// SetQuota sets this tenant's residency quota in frames; 0 means
// unlimited (the single-tenant default). A tenant holding more frames
// than its quota is reclaimed first by the pool's fair-share sweeps;
// tenants at or under quota are protected while any tenant is over.
func (v *VM) SetQuota(frames int64) { v.pool.setQuota(v, frames) }

// Quota returns the tenant's residency quota (0 = unlimited).
func (v *VM) Quota() int64 { return v.quota }

// ResidentFrames returns the number of pool frames this tenant currently
// holds (mapped and not on the free list; in-transit reads count, since
// their frames are committed).
func (v *VM) ResidentFrames() int64 { return v.resident }

// overQuota reports whether the tenant holds more frames than its quota
// allows (never true for quota 0 = unlimited).
func (v *VM) overQuota() bool { return v.quota > 0 && v.resident > v.quota }

// SetClass sets this tenant's prefetch-priority class, which picks the
// OS's prefetch drop thresholds — Gold keeps the paper's originals;
// Silver and BestEffort give up earlier under queue and memory pressure,
// so best-effort prefetches are the first dropped — and tags the
// tenant's disk requests so a QoS scheduler can order them.
func (v *VM) SetClass(c disk.Class) {
	v.class = c
	switch c {
	case disk.Silver:
		v.pfQueueMax = maxPrefetchQueue * 2 / 3
		v.pfFreeFloor = v.p.LowWater() / 2
		if v.pfFreeFloor < 4 {
			v.pfFreeFloor = 4
		}
	case disk.BestEffort:
		v.pfQueueMax = maxPrefetchQueue / 3
		v.pfFreeFloor = v.p.LowWater()
	default:
		v.pfQueueMax = maxPrefetchQueue
		v.pfFreeFloor = 2
	}
	v.file.SetTag(v.tid, c)
}

// Class returns the tenant's prefetch-priority class.
func (v *VM) Class() disk.Class { return v.class }

// BitVector returns the shared residency page (the run-time layer calls
// this at registration).
func (v *VM) BitVector() *BitVector { return v.bitvec }

// Stats returns a snapshot of the event counters, publishing them into
// the metrics registry as a side effect (so a registry snapshot taken
// after any view read is current). DaemonScans is pool-wide.
func (v *VM) Stats() Stats {
	v.n.daemonScans = v.pool.scans
	v.c.publish(&v.n)
	return v.n.stats()
}

// Times returns a snapshot of the time breakdown, with any pending user
// compute folded in. Like Stats, it publishes to the metrics registry.
func (v *VM) Times() TimeStats {
	v.n.daemonScans = v.pool.scans
	v.c.publish(&v.n)
	t := v.n.times()
	t.User += sim.Time(v.pendingUserOps) * v.p.OpTime
	return t
}

// ProfileSnapshot returns the observation tuple the profiling pass
// wraps around each instrumented access: the simulated time as the
// program sees it (the clock plus user operations accumulated since the
// last kernel crossing) and the running major-fault, minor-fault, and
// prefetched-hit classification tallies. It reads plain fields and is
// safe on the instrumented hot path.
func (v *VM) ProfileSnapshot() (now, majorFaults, minorFaults, hits int64) {
	now = int64(v.clock.Now()) + v.pendingUserOps*int64(v.p.OpTime)
	return now, v.n.prefetchedFaults + v.n.nonPrefetchedFault, v.n.minorFaults, v.n.prefetchedHits
}

// FreeFrames returns the current number of frames on the pool's free
// list.
func (v *VM) FreeFrames() int64 { return v.pool.freeCount }

// AvgFreeFrac returns the time-averaged fraction of memory on the free
// list since accounting began (Table 3). Pool-wide.
func (v *VM) AvgFreeFrac() float64 { return v.pool.AvgFreeFrac() }

// Alloc reserves a page-aligned region of the address space. Array data
// structures of the application live in these regions.
func (v *VM) Alloc(name string, bytes int64) (base int64, err error) {
	pages := v.p.PagesOf(bytes)
	if v.allocPages+pages > v.file.Pages() {
		return 0, fmt.Errorf("vm: allocating %q (%d pages) exceeds address space (%d of %d pages used)",
			name, pages, v.allocPages, v.file.Pages())
	}
	base = v.allocPages * v.p.PageSize
	v.regions = append(v.regions, Region{Name: name, Base: base, Bytes: bytes, Pages: pages})
	v.allocPages += pages
	return base, nil
}

// Regions returns the allocated regions in allocation order.
func (v *VM) Regions() []Region { return v.regions }

// AllocatedPages returns the number of pages allocated so far.
func (v *VM) AllocatedPages() int64 { return v.allocPages }

// PageOf returns the virtual page containing a byte address.
func (v *VM) PageOf(addr int64) int64 { return addr >> v.pageShift }

// AddUserOps charges n machine operations of user compute. The time is
// accumulated lazily and folded into the clock at the next kernel
// crossing, which keeps the per-element fast path cheap.
func (v *VM) AddUserOps(n int64) { v.pendingUserOps += n }

// AddUserTime charges explicit user-mode time (used by the run-time layer
// for its bit-vector checks).
func (v *VM) AddUserTime(t sim.Time) { v.pendingUserOps += int64(t) / int64(v.p.OpTime) }

// AddUserTimeN charges n repetitions of a fixed user-mode cost in one
// call. The per-repetition truncation matches n separate AddUserTime
// calls bit for bit, so batched callers stay on the same simulated
// clock as the loop they replaced.
func (v *VM) AddUserTimeN(t sim.Time, n int64) {
	v.pendingUserOps += n * (int64(t) / int64(v.p.OpTime))
}

// FlushUser folds pending user compute into the simulated clock. The
// multi-tenant scheduler calls it at every slice boundary so one
// tenant's compute lands on the shared clock before the next tenant
// runs; within a single run every kernel crossing flushes implicitly.
func (v *VM) FlushUser() { v.flushUser() }

// flushUser converts pending user ops into simulated time. Every kernel
// entry calls it first so that event ordering is correct.
func (v *VM) flushUser() {
	if v.pendingUserOps == 0 {
		return
	}
	t := sim.Time(v.pendingUserOps) * v.p.OpTime
	v.pendingUserOps = 0
	v.n.user += t
	v.trCPU.Span("user", "user", v.clock.Now(), t)
	v.clock.Advance(t)
}

// chargeSys accounts system time to a tally bucket and advances the
// clock, emitting a span named for the kernel operation.
func (v *VM) chargeSys(bucket *sim.Time, name, cat string, t sim.Time) {
	*bucket += t
	v.trCPU.Span(name, cat, v.clock.Now(), t)
	v.clock.Advance(t)
}

// waitIdle stalls until cond holds, accounting the wait as idle time and
// emitting an idle span.
func (v *VM) waitIdle(name string, cond func() bool) {
	start := v.clock.Now()
	d := v.clock.WaitFor(cond)
	v.n.idle += d
	v.trCPU.Span(name, "idle", start, d)
}

// frameWords returns the storage of frame f as 8-byte words.
func (v *VM) frameWords(f int32) []uint64 {
	off := int64(f) * v.pageWords
	return v.words[off : off+v.pageWords]
}

// framePageWords returns the frame storage currently backing a virtual
// page. It is the dst callback handed to stripefs reads: while a read
// is in flight the page's mapping cannot change (only resident pages
// are evicted), so the lookup at delivery time finds the frame the
// read was issued for.
func (v *VM) framePageWords(page int64) []uint64 {
	return v.frameWords(v.pt[page].frame)
}

// invalidate severs a page's mapping when its frame is reused.
func (v *VM) invalidate(page int64) {
	e := &v.pt[page]
	if e.dirty {
		panic(fmt.Sprintf("vm: reusing frame of dirty page %d", page))
	}
	e.state = unmapped
	e.frame = -1
	e.touched = false
	e.referenced = false
	v.bitvec.Clear(page)
}
