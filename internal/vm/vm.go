// Package vm implements the operating-system half of the paper: a paged
// virtual memory system extended with non-binding prefetch and release
// hints. The application sees a flat virtual address space backed by a
// striped file ("mapped file I/O": the data comes from disk). Demand
// faults stall the application for the full disk latency; prefetch hints
// start asynchronous reads and are dropped when no memory is free; release
// hints unmap pages (writing them back if dirty) and put their frames at
// the head of the free list; a pageout daemon with a clock (second-chance)
// hand keeps the free list stocked; and a bit-vector page shared with the
// run-time layer tracks believed residency.
package vm

import (
	"fmt"
	"math/bits"

	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stripefs"
)

// pageState is the residency state of one virtual page.
type pageState uint8

const (
	// unmapped: not in memory; a touch is a major fault.
	unmapped pageState = iota
	// inTransit: a disk read (fault or prefetch) is in flight.
	inTransit
	// resident: mapped to a frame holding valid data, but not yet
	// accessed this residency — the first touch still classifies the
	// page (prefetched hit or fault) before it becomes hot.
	resident
	// freeListed: still mapped and holding valid data, but on the free
	// list — reclaimable at any moment, rescuable by a touch or prefetch.
	freeListed
	// hot: resident and already touched. A separate state, redundant
	// with resident+touched, so that Load/Store decide "no kernel work
	// needed" with a single byte compare — the hottest branch in the
	// simulator. Invariant: state == hot ⇔ state ∈ {resident, hot} ∧
	// touched; everywhere outside Load/Store treats hot exactly like
	// resident.
	hot
)

// pte is a page-table entry. The classification flags implement the
// Figure 4(a) accounting described in stats.go.
type pte struct {
	state      pageState
	frame      int32
	dirty      bool
	referenced bool
	cleaning   bool // write-back in flight for this page's frame
	toFree     bool // after cleaning completes, move to the free list
	front      bool // ...at the head of the free list (release path)
	touched    bool // accessed since this residency began
	prefetched bool // a prefetch targeted the current/upcoming residency
}

// frameInfo describes one physical page frame.
type frameInfo struct {
	vpage  int64 // current mapping, -1 if none
	onFree bool  // currently a member of the free queue
}

// VM is one simulated address space plus the memory manager behind it.
type VM struct {
	clock *sim.Clock
	p     hw.Params
	file  *stripefs.File

	pageShift uint
	pageMask  int64
	pageWords int64 // PageSize / 8
	wordShift uint  // pageShift - 3: frame index → word index

	pt     []pte
	frames []frameInfo
	words  []uint64 // frame storage, p.Frames() × PageSize/8 words

	// Free queue: a growable ring buffer of frame indices. Entries whose
	// frame has onFree == false are stale and skipped on pop (lazy
	// deletion); the ring grows when stale entries pile up.
	freeQ     []int32
	freeHead  int
	freeTail  int
	freeSlots int   // occupied slots, live + stale
	freeCount int64 // live entries

	hand int32 // clock-algorithm hand over frames

	daemonScheduled bool
	cleaningCount   int64  // write-backs in flight
	inTransitCount  int64  // reads in flight
	ioGen           uint64 // bumped on every I/O completion

	// Lazy user-time accounting: the executor adds op counts; they are
	// converted to clock time at every kernel crossing.
	pendingUserOps int64

	bitvec *BitVector

	// Time-weighted free-frame integral for Table 3's "% memory free".
	freeIntegral    float64
	lastFreeSample  sim.Time
	accountingStart sim.Time

	// Allocation bump pointer, in pages.
	allocPages int64
	regions    []Region

	// Fault plane (nil injects nothing): synthetic memory-pressure spikes
	// that drop otherwise-acceptable prefetch hints.
	flt *fault.Injector

	// I/O callbacks bound once at construction so the hint and fault
	// paths hand stripefs the same three method values on every read —
	// a fresh closure per request would allocate.
	dstFn       func(page int64) []uint64
	arrivedFn   func(page int64)
	abandonFn   func(page int64)
	daemonRunFn func()

	// Hot-path accounting (plain fields; see tally in stats.go), the
	// registry handles it publishes to, and trace tracks. The tracks are
	// nil when tracing is off: each emission is then one nil check. Last
	// in the struct so the frequently-touched fields above keep small
	// offsets.
	n        tally
	c        counters
	trCPU    *obs.Track // kernel/user/idle spans, one per VM core
	trFaults *obs.Track // fault-classification instants
}

// Region records one named allocation in the address space.
type Region struct {
	Name  string
	Base  int64 // byte address of the first page
	Bytes int64
	Pages int64
}

// New creates a virtual memory system of p.Frames() frames over the given
// backing file. The virtual address space is the file: file page i is
// virtual page i. Accounting lands in a private metrics registry and
// tracing is off; NewObserved shares both with the rest of the system.
func New(clock *sim.Clock, p hw.Params, file *stripefs.File) *VM {
	return NewObserved(clock, p, file, nil)
}

// NewObserved is New with the run's observability sinks attached: the
// VM's counters register in o's registry and its spans and
// fault-classification instants go to tracks of o's trace process.
func NewObserved(clock *sim.Clock, p hw.Params, file *stripefs.File, o *obs.RunObs) *VM {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	nf := p.Frames()
	v := &VM{
		clock:     clock,
		p:         p,
		file:      file,
		pageShift: uint(bits.TrailingZeros64(uint64(p.PageSize))),
		pageMask:  p.PageSize - 1,
		pageWords: p.PageSize / 8,
		wordShift: uint(bits.TrailingZeros64(uint64(p.PageSize))) - 3,
		pt:        make([]pte, file.Pages()),
		frames:    make([]frameInfo, nf),
		words:     make([]uint64, nf*(p.PageSize/8)),
		freeQ:     make([]int32, nf+1),
	}
	v.dstFn = v.framePageWords
	v.arrivedFn = v.finishRead
	v.abandonFn = v.abandonPrefetch
	v.daemonRunFn = v.daemonRun
	for i := range v.pt {
		v.pt[i].frame = -1
	}
	for i := range v.frames {
		v.frames[i].vpage = -1
	}
	v.c = newCounters(o.Registry())
	v.trCPU = o.Thread("cpu")
	v.trFaults = o.Thread("faults")
	// All frames start free (with no content).
	for i := int32(0); i < int32(nf); i++ {
		v.pushFreeBack(i)
	}
	v.bitvec = newBitVector(file.Pages())
	return v
}

// SetFaults attaches a fault injector (nil detaches). The VM consults it
// for synthetic memory-pressure spikes that drop prefetch hints; hints
// are non-binding, so dropping them is always safe.
func (v *VM) SetFaults(inj *fault.Injector) { v.flt = inj }

// Params returns the hardware parameters.
func (v *VM) Params() hw.Params { return v.p }

// Clock returns the simulated clock.
func (v *VM) Clock() *sim.Clock { return v.clock }

// BitVector returns the shared residency page (the run-time layer calls
// this at registration).
func (v *VM) BitVector() *BitVector { return v.bitvec }

// Stats returns a snapshot of the event counters, publishing them into
// the metrics registry as a side effect (so a registry snapshot taken
// after any view read is current).
func (v *VM) Stats() Stats {
	v.c.publish(&v.n)
	return v.n.stats()
}

// Times returns a snapshot of the time breakdown, with any pending user
// compute folded in. Like Stats, it publishes to the metrics registry.
func (v *VM) Times() TimeStats {
	v.c.publish(&v.n)
	t := v.n.times()
	t.User += sim.Time(v.pendingUserOps) * v.p.OpTime
	return t
}

// FreeFrames returns the current number of frames on the free list.
func (v *VM) FreeFrames() int64 { return v.freeCount }

// AvgFreeFrac returns the time-averaged fraction of memory on the free
// list since accounting began (Table 3).
func (v *VM) AvgFreeFrac() float64 {
	now := v.clock.Now()
	elapsed := now - v.accountingStart
	if elapsed == 0 {
		return float64(v.freeCount) / float64(len(v.frames))
	}
	integ := v.freeIntegral + float64(v.freeCount)*float64(now-v.lastFreeSample)
	return integ / (float64(elapsed) * float64(len(v.frames)))
}

// Alloc reserves a page-aligned region of the address space. Array data
// structures of the application live in these regions.
func (v *VM) Alloc(name string, bytes int64) (base int64, err error) {
	pages := v.p.PagesOf(bytes)
	if v.allocPages+pages > v.file.Pages() {
		return 0, fmt.Errorf("vm: allocating %q (%d pages) exceeds address space (%d of %d pages used)",
			name, pages, v.allocPages, v.file.Pages())
	}
	base = v.allocPages * v.p.PageSize
	v.regions = append(v.regions, Region{Name: name, Base: base, Bytes: bytes, Pages: pages})
	v.allocPages += pages
	return base, nil
}

// Regions returns the allocated regions in allocation order.
func (v *VM) Regions() []Region { return v.regions }

// AllocatedPages returns the number of pages allocated so far.
func (v *VM) AllocatedPages() int64 { return v.allocPages }

// PageOf returns the virtual page containing a byte address.
func (v *VM) PageOf(addr int64) int64 { return addr >> v.pageShift }

// AddUserOps charges n machine operations of user compute. The time is
// accumulated lazily and folded into the clock at the next kernel
// crossing, which keeps the per-element fast path cheap.
func (v *VM) AddUserOps(n int64) { v.pendingUserOps += n }

// AddUserTime charges explicit user-mode time (used by the run-time layer
// for its bit-vector checks).
func (v *VM) AddUserTime(t sim.Time) { v.pendingUserOps += int64(t) / int64(v.p.OpTime) }

// AddUserTimeN charges n repetitions of a fixed user-mode cost in one
// call. The per-repetition truncation matches n separate AddUserTime
// calls bit for bit, so batched callers stay on the same simulated
// clock as the loop they replaced.
func (v *VM) AddUserTimeN(t sim.Time, n int64) {
	v.pendingUserOps += n * (int64(t) / int64(v.p.OpTime))
}

// flushUser converts pending user ops into simulated time. Every kernel
// entry calls it first so that event ordering is correct.
func (v *VM) flushUser() {
	if v.pendingUserOps == 0 {
		return
	}
	t := sim.Time(v.pendingUserOps) * v.p.OpTime
	v.pendingUserOps = 0
	v.n.user += t
	v.trCPU.Span("user", "user", v.clock.Now(), t)
	v.clock.Advance(t)
}

// chargeSys accounts system time to a tally bucket and advances the
// clock, emitting a span named for the kernel operation.
func (v *VM) chargeSys(bucket *sim.Time, name, cat string, t sim.Time) {
	*bucket += t
	v.trCPU.Span(name, cat, v.clock.Now(), t)
	v.clock.Advance(t)
}

// waitIdle stalls until cond holds, accounting the wait as idle time and
// emitting an idle span.
func (v *VM) waitIdle(name string, cond func() bool) {
	start := v.clock.Now()
	d := v.clock.WaitFor(cond)
	v.n.idle += d
	v.trCPU.Span(name, "idle", start, d)
}

// ---- free-queue bookkeeping -------------------------------------------

func (v *VM) sampleFree() {
	now := v.clock.Now()
	v.freeIntegral += float64(v.freeCount) * float64(now-v.lastFreeSample)
	v.lastFreeSample = now
}

func (v *VM) pushFreeBack(f int32) {
	if v.frames[f].onFree {
		return
	}
	v.sampleFree()
	v.growFreeQ()
	v.frames[f].onFree = true
	v.freeQ[v.freeTail] = f
	v.freeTail = (v.freeTail + 1) % len(v.freeQ)
	v.freeSlots++
	v.freeCount++
}

// pushFreeFront puts a frame at the head of the free queue, so it is
// reused first — this is what release does ("a good candidate for
// replacement").
func (v *VM) pushFreeFront(f int32) {
	if v.frames[f].onFree {
		return
	}
	v.sampleFree()
	v.growFreeQ()
	v.frames[f].onFree = true
	v.freeHead = (v.freeHead - 1 + len(v.freeQ)) % len(v.freeQ)
	v.freeQ[v.freeHead] = f
	v.freeSlots++
	v.freeCount++
}

// growFreeQ makes room for one more entry, compacting stale slots away
// when the ring fills.
func (v *VM) growFreeQ() {
	if v.freeSlots+1 < len(v.freeQ) {
		return
	}
	live := make([]int32, 0, v.freeCount)
	for v.freeHead != v.freeTail {
		f := v.freeQ[v.freeHead]
		v.freeHead = (v.freeHead + 1) % len(v.freeQ)
		if v.frames[f].onFree {
			live = append(live, f)
		}
	}
	if len(live)+1 >= len(v.freeQ) {
		v.freeQ = make([]int32, 2*len(v.freeQ))
	}
	copy(v.freeQ, live)
	v.freeHead = 0
	v.freeTail = len(live)
	v.freeSlots = len(live)
}

// popFree removes and returns the next free frame, skipping stale entries.
// It reports false when the free list is empty.
func (v *VM) popFree() (int32, bool) {
	for v.freeHead != v.freeTail {
		f := v.freeQ[v.freeHead]
		v.freeHead = (v.freeHead + 1) % len(v.freeQ)
		v.freeSlots--
		if v.frames[f].onFree {
			v.sampleFree()
			v.frames[f].onFree = false
			v.freeCount--
			return f, true
		}
	}
	return 0, false
}

// rescueFromFree takes a specific frame off the free queue (lazy removal).
func (v *VM) rescueFromFree(f int32) {
	if !v.frames[f].onFree {
		panic("vm: rescue of frame not on free list")
	}
	v.sampleFree()
	v.frames[f].onFree = false
	v.freeCount--
}

// frameWords returns the storage of frame f as 8-byte words.
func (v *VM) frameWords(f int32) []uint64 {
	off := int64(f) * v.pageWords
	return v.words[off : off+v.pageWords]
}

// framePageWords returns the frame storage currently backing a virtual
// page. It is the dst callback handed to stripefs reads: while a read
// is in flight the page's mapping cannot change (only resident pages
// are evicted), so the lookup at delivery time finds the frame the
// read was issued for.
func (v *VM) framePageWords(page int64) []uint64 {
	return v.frameWords(v.pt[page].frame)
}

// ---- frame allocation ---------------------------------------------------

// takeFrame obtains a free frame for vpage, evicting synchronously if the
// free list is empty (the demand-fault path). It returns false only in
// mayFail mode (the prefetch path, where the paper's OS simply drops the
// request when all memory is in use).
func (v *VM) takeFrame(vpage int64, mayFail bool) (int32, bool) {
	for {
		if f, ok := v.popFree(); ok {
			if old := v.frames[f].vpage; old >= 0 {
				v.invalidate(old)
				v.n.reclaims++
			}
			v.frames[f].vpage = vpage
			if v.freeCount < v.p.LowWater() {
				v.kickDaemon()
			}
			return f, true
		}
		if mayFail {
			return 0, false
		}
		v.syncReclaim()
	}
}

// invalidate severs a page's mapping when its frame is reused.
func (v *VM) invalidate(page int64) {
	e := &v.pt[page]
	if e.dirty {
		panic(fmt.Sprintf("vm: reusing frame of dirty page %d", page))
	}
	e.state = unmapped
	e.frame = -1
	e.touched = false
	e.referenced = false
	v.bitvec.Clear(page)
}
