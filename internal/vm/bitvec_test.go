package vm

import (
	"testing"

	"repro/internal/sim"
)

// naiveNextClear is the per-page Get loop NextClear must match.
func naiveNextClear(b *BitVector, page, end int64) int64 {
	for p := page; p < end; p++ {
		if !b.Get(p) {
			return p
		}
	}
	return end
}

func TestNextClearEmptyRange(t *testing.T) {
	b := newBitVector(256)
	if got := b.NextClear(10, 10); got != 10 {
		t.Fatalf("NextClear(10,10) = %d, want 10", got)
	}
	if got := b.NextClear(20, 10); got != 10 {
		t.Fatalf("NextClear(20,10) = %d, want end 10", got)
	}
}

func TestNextClearAllSet(t *testing.T) {
	b := newBitVector(256)
	b.SetRange(0, 256)
	if got := b.NextClear(0, 256); got != 256 {
		t.Fatalf("NextClear over all-set = %d, want end 256", got)
	}
	// A sub-range of an all-set vector likewise finds nothing.
	if got := b.NextClear(63, 130); got != 130 {
		t.Fatalf("NextClear(63,130) over all-set = %d, want 130", got)
	}
}

func TestNextClearWordBoundary(t *testing.T) {
	b := newBitVector(256)
	// Set exactly bits [60, 68): the clear run resumes past a word boundary.
	b.SetRange(60, 8)
	if got := b.NextClear(60, 256); got != 68 {
		t.Fatalf("NextClear(60,256) = %d, want 68", got)
	}
	// Starting inside the set run, in the second word.
	if got := b.NextClear(65, 256); got != 68 {
		t.Fatalf("NextClear(65,256) = %d, want 68", got)
	}
	// A clear hole at the boundary itself is found.
	b2 := newBitVector(256)
	b2.SetRange(0, 64)
	b2.SetRange(65, 191)
	if got := b2.NextClear(0, 256); got != 64 {
		t.Fatalf("NextClear with hole at 64 = %d, want 64", got)
	}
}

func TestNextClearLastWordPartial(t *testing.T) {
	// 200 pages: the last vector word covers bits 192..199 only; the
	// word's unused high bits are clear and must not leak below end.
	b := newBitVector(200)
	b.SetRange(0, 200)
	if got := b.NextClear(0, 200); got != 200 {
		t.Fatalf("NextClear over full short vector = %d, want 200", got)
	}
	b.Clear(199)
	if got := b.NextClear(190, 200); got != 199 {
		t.Fatalf("NextClear finds last partial-word bit: got %d, want 199", got)
	}
}

func TestNextClearMatchesGetLoop(t *testing.T) {
	b := newBitVector(300)
	// A deterministic ragged pattern crossing several word boundaries.
	for p := int64(0); p < 300; p++ {
		if p%7 < 4 || (p >= 120 && p < 140) {
			b.Set(p)
		}
	}
	for _, r := range [][2]int64{{0, 300}, {3, 65}, {63, 64}, {64, 200}, {120, 140}, {121, 139}, {250, 300}} {
		for p := r[0]; p <= r[1]; p++ {
			want := naiveNextClear(b, p, r[1])
			if got := b.NextClear(p, r[1]); got != want {
				t.Fatalf("NextClear(%d,%d) = %d, want %d", p, r[1], got, want)
			}
		}
	}
}

func TestNextClearCoarseGranularity(t *testing.T) {
	// Force pagesPerBit > 1: 100k pages over 32768 bits gives ppb = 4.
	b := newBitVector(100_000)
	if b.PagesPerBit() < 2 {
		t.Fatalf("pagesPerBit = %d, want coarse vector", b.PagesPerBit())
	}
	b.SetRange(0, 40) // covers bits 0..9 entirely
	for p := int64(0); p < 48; p++ {
		want := naiveNextClear(b, p, 48)
		if got := b.NextClear(p, 48); got != want {
			t.Fatalf("coarse NextClear(%d,48) = %d, want %d", p, got, want)
		}
	}
	// The answer is clamped to the query start even when the covering
	// clear bit begins earlier.
	b2 := newBitVector(100_000)
	ppb := b2.PagesPerBit()
	if got := b2.NextClear(ppb+1, 4*ppb); got != ppb+1 {
		t.Fatalf("coarse NextClear clamp = %d, want %d", got, ppb+1)
	}
}

func TestSetRangeMatchesSetLoop(t *testing.T) {
	check := func(total, page, n int64) {
		t.Helper()
		a, b := newBitVector(total), newBitVector(total)
		a.SetRange(page, n)
		for p := page; p < page+n; p++ {
			b.Set(p)
		}
		for p := int64(0); p < total; p++ {
			if a.Get(p) != b.Get(p) {
				t.Fatalf("SetRange(%d,%d) total %d: bit for page %d = %v, want %v",
					page, n, total, p, a.Get(p), b.Get(p))
			}
		}
	}
	check(256, 0, 0)    // empty range is a no-op
	check(256, 10, -1)  // negative too
	check(256, 5, 3)    // inside one word
	check(256, 60, 8)   // spans the first word boundary
	check(256, 0, 64)   // exactly one full word
	check(256, 1, 190)  // several full interior words plus ragged ends
	check(256, 64, 64)  // aligned full word, not the first
	check(200, 190, 10) // ends in the partial last word
	check(200, 0, 200)  // whole short vector
}

func TestSetRangeCoarseGranularity(t *testing.T) {
	a, b := newBitVector(100_000), newBitVector(100_000)
	if a.PagesPerBit() < 2 {
		t.Fatalf("pagesPerBit = %d, want coarse vector", a.PagesPerBit())
	}
	// An unaligned range whose ends share bits with neighboring pages.
	page, n := a.PagesPerBit()+1, 11*a.PagesPerBit()-2
	a.SetRange(page, n)
	for p := page; p < page+n; p++ {
		b.Set(p)
	}
	for p := int64(0); p < 20*a.PagesPerBit(); p++ {
		if a.Get(p) != b.Get(p) {
			t.Fatalf("coarse SetRange: bit for page %d = %v, want %v", p, a.Get(p), b.Get(p))
		}
	}
}

// TestPageSpanContract pins down the span API the executor's page-run
// fast path builds on: spans exist only for hot (resident-and-touched)
// single-page ranges, alias the frame words, and mark referenced/dirty
// exactly as per-element accesses would.
func TestPageSpanContract(t *testing.T) {
	c, v := newVM(t, 16, 64)
	ps := v.Params().PageSize
	base, _ := v.Alloc("a", 4*ps)
	pw := ps / 8

	// Unmapped page: no span.
	if _, _, ok := v.PageSpan(base, 1); ok {
		t.Fatal("PageSpan succeeded on an unmapped page")
	}
	// Prefetched-but-untouched page: still no span — the first touch
	// must go through the fault path to be classified.
	v.Prefetch(v.PageOf(base)+1, 1)
	c.Advance(100 * sim.Millisecond)
	if _, _, ok := v.PageSpan(base+ps, 1); ok {
		t.Fatal("PageSpan succeeded on a resident page never touched")
	}

	// A touched page yields a span over its words.
	v.StoreF64(base, 1.5)
	words, off, ok := v.PageSpan(base, pw)
	if !ok || off != 0 || int64(len(words)) != pw {
		t.Fatalf("PageSpan = (len %d, off %d, %v), want full page at offset 0", len(words), off, ok)
	}

	// The span aliases frame memory both ways.
	v.StoreI64(base+16, 77)
	if words[2] != 77 {
		t.Fatalf("span[2] = %d, want 77 stored via VM", words[2])
	}
	words[3] = 91
	if got := v.LoadI64(base + 24); got != 91 {
		t.Fatalf("LoadI64 = %d, want 91 written via span", got)
	}

	// Out-of-page and degenerate ranges fail.
	if _, _, ok := v.PageSpan(base+8, pw); ok {
		t.Fatal("PageSpan succeeded across a page boundary")
	}
	if _, _, ok := v.PageSpan(base, 0); ok {
		t.Fatal("PageSpan succeeded for n = 0")
	}

	// Mid-page spans report the word offset.
	if _, off, ok := v.PageSpan(base+40, 2); !ok || off != 5 {
		t.Fatalf("PageSpan(base+40) = (off %d, %v), want offset 5", off, ok)
	}

	// PageSpanW marks the page dirty, PageSpan only referenced.
	v.Finish() // flush the store's dirt; page stays hot
	pg := base >> v.pageShift
	v.pt[pg].referenced = false
	if _, _, ok := v.PageSpan(base, 1); !ok {
		t.Fatal("PageSpan failed on hot page after Finish")
	}
	if !v.pt[pg].referenced || v.pt[pg].dirty {
		t.Fatalf("after read span: referenced=%v dirty=%v, want true/false",
			v.pt[pg].referenced, v.pt[pg].dirty)
	}
	if _, _, ok := v.PageSpanW(base, 1); !ok {
		t.Fatal("PageSpanW failed on hot page")
	}
	if !v.pt[pg].dirty {
		t.Fatal("PageSpanW did not mark the page dirty")
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
