package vm

import "testing"

// TestLoadStoreFast checks that the inlinable hot probes succeed exactly
// on hot pages, mirror Load/Store's marking, and refuse everything else
// without side effects.
func TestLoadStoreFast(t *testing.T) {
	_, v := newVM(t, 16, 64)
	ps := v.Params().PageSize
	base, _ := v.Alloc("a", 4*ps)

	// Unmapped page: probe refuses, page stays unmapped.
	if _, ok := v.LoadFast(base); ok {
		t.Fatal("LoadFast succeeded on an unmapped page")
	}
	if ok := v.StoreFast(base, 1); ok {
		t.Fatal("StoreFast succeeded on an unmapped page")
	}
	if v.pt[v.PageOf(base)].state != unmapped {
		t.Fatal("a failed probe must not change page state")
	}

	// Make the page hot through the ordinary path.
	v.StoreI64(base, 42)
	pg := v.PageOf(base)
	v.pt[pg].referenced = false
	v.pt[pg].dirty = false

	w, ok := v.LoadFast(base)
	if !ok || w != 42 {
		t.Fatalf("LoadFast = (%d, %v), want (42, true)", w, ok)
	}
	if !v.pt[pg].referenced || v.pt[pg].dirty {
		t.Fatalf("after LoadFast: referenced=%v dirty=%v, want true/false",
			v.pt[pg].referenced, v.pt[pg].dirty)
	}
	if !v.StoreFast(base+8, 7) {
		t.Fatal("StoreFast failed on a hot page")
	}
	if !v.pt[pg].dirty {
		t.Fatal("StoreFast must mark the page dirty")
	}
	if got := v.LoadI64(base + 8); got != 7 {
		t.Fatalf("LoadI64 after StoreFast = %d, want 7", got)
	}
}

// TestHotRunLen checks the pure multi-page probe in both directions.
func TestHotRunLen(t *testing.T) {
	_, v := newVM(t, 16, 64)
	ps := v.Params().PageSize
	base, _ := v.Alloc("a", 8*ps)
	pg := v.PageOf(base)

	// Touch pages 0,1,2 and 4 of the region; leave 3 cold.
	for _, off := range []int64{0, 1, 2, 4} {
		v.StoreI64(base+off*ps, off)
	}

	if n := v.HotRunLen(pg, 8, false); n != 3 {
		t.Fatalf("forward run from page 0 = %d, want 3", n)
	}
	if n := v.HotRunLen(pg, 2, false); n != 2 {
		t.Fatalf("forward run capped at 2 = %d, want 2", n)
	}
	if n := v.HotRunLen(pg+3, 8, false); n != 0 {
		t.Fatalf("run starting on a cold page = %d, want 0", n)
	}
	if n := v.HotRunLen(pg+2, 8, true); n != 3 {
		t.Fatalf("backward run from page 2 = %d, want 3", n)
	}
	if n := v.HotRunLen(pg+4, 8, true); n != 1 {
		t.Fatalf("backward run from isolated page 4 = %d, want 1", n)
	}
	// The probe must not mark anything.
	v.pt[pg].referenced = false
	v.HotRunLen(pg, 1, false)
	if v.pt[pg].referenced {
		t.Fatal("HotRunLen marked a page referenced")
	}
}

// TestPageRun checks the batch acquisition: all-hot succeeds with
// per-page marking, any cold page refuses without marking anything.
func TestPageRun(t *testing.T) {
	_, v := newVM(t, 16, 64)
	ps := v.Params().PageSize
	pw := ps / 8
	base, _ := v.Alloc("a", 8*ps)
	pg := v.PageOf(base)

	for off := int64(0); off < 3; off++ {
		v.StoreI64(base+off*ps, 100+off)
	}
	for p := pg; p < pg+3; p++ {
		v.pt[p].referenced = false
		v.pt[p].dirty = false
	}

	var buf [][]uint64
	segs, ok := v.PageRun(pg, 3, false, buf[:0])
	if !ok || len(segs) != 3 {
		t.Fatalf("PageRun = (%d segs, %v), want (3, true)", len(segs), ok)
	}
	for i, seg := range segs {
		if int64(len(seg)) != pw {
			t.Fatalf("seg %d has %d words, want %d", i, len(seg), pw)
		}
		if got := int64(seg[0]); got != 100+int64(i) {
			t.Fatalf("seg %d word 0 = %d, want %d", i, got, 100+i)
		}
		if !v.pt[pg+int64(i)].referenced {
			t.Fatalf("page %d not marked referenced", i)
		}
		if v.pt[pg+int64(i)].dirty {
			t.Fatalf("read run marked page %d dirty", i)
		}
	}

	// Write run marks dirty.
	segs, ok = v.PageRun(pg, 2, true, segs[:0])
	if !ok || !v.pt[pg].dirty || !v.pt[pg+1].dirty {
		t.Fatalf("write PageRun = %v, dirty = %v/%v, want all true",
			ok, v.pt[pg].dirty, v.pt[pg+1].dirty)
	}
	// Mutations through a segment land in frame memory.
	segs[1][2] = 999
	if got := v.LoadI64(base + ps + 16); got != 999 {
		t.Fatalf("LoadI64 after segment store = %d, want 999", got)
	}

	// A cold page anywhere in the range refuses and marks nothing.
	v.pt[pg+2].referenced = false
	if _, ok := v.PageRun(pg, 4, false, nil); ok {
		t.Fatal("PageRun succeeded across a cold page")
	}
	if v.pt[pg+2].referenced {
		t.Fatal("failed PageRun marked a page")
	}
	// Degenerate and out-of-space ranges refuse.
	if _, ok := v.PageRun(pg, 0, false, nil); ok {
		t.Fatal("PageRun succeeded for npages = 0")
	}
	if _, ok := v.PageRun(int64(len(v.pt))-1, 2, false, nil); ok {
		t.Fatal("PageRun succeeded past the end of the address space")
	}
}
