package vm

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stripefs"
)

// newVM builds a VM with the given number of frames over an address space
// of spacePages pages.
func newVM(t testing.TB, frames, spacePages int64) (*sim.Clock, *VM) {
	t.Helper()
	p := hw.Default()
	p.MemoryBytes = frames * p.PageSize
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	c := sim.NewClock()
	fs := stripefs.New(c, p, nil)
	f, err := fs.Create("space", spacePages)
	if err != nil {
		t.Fatal(err)
	}
	return c, New(c, p, f)
}

func TestAllocRegions(t *testing.T) {
	_, v := newVM(t, 64, 256)
	ps := v.Params().PageSize
	a, err := v.Alloc("a", 10*ps)
	if err != nil || a != 0 {
		t.Fatalf("first alloc at %d (%v), want 0", a, err)
	}
	b, err := v.Alloc("b", ps/2)
	if err != nil || b != 10*ps {
		t.Fatalf("second alloc at %d (%v), want page-aligned %d", b, err, 10*ps)
	}
	cAddr, err := v.Alloc("c", ps)
	if err != nil || cAddr != 11*ps {
		t.Fatalf("third alloc at %d (%v): sub-page alloc must still consume a page", cAddr, err)
	}
	if _, err := v.Alloc("huge", 10000*ps); err == nil {
		t.Fatal("overcommitting the address space succeeded")
	}
	if got := len(v.Regions()); got != 3 {
		t.Fatalf("regions = %d, want 3", got)
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	_, v := newVM(t, 64, 64)
	base, _ := v.Alloc("x", 8*v.Params().PageSize)
	v.StoreF64(base, 3.25)
	v.StoreI64(base+8, -42)
	if got := v.LoadF64(base); got != 3.25 {
		t.Fatalf("LoadF64 = %v, want 3.25", got)
	}
	if got := v.LoadI64(base + 8); got != -42 {
		t.Fatalf("LoadI64 = %v, want -42", got)
	}
}

func TestDemandFaultChargesLatency(t *testing.T) {
	c, v := newVM(t, 64, 64)
	base, _ := v.Alloc("x", v.Params().PageSize)
	start := c.Now()
	_ = v.LoadF64(base)
	elapsed := c.Now() - start
	min := v.Params().FaultServiceTime
	if elapsed <= min {
		t.Fatalf("first touch took %v, want > fault service %v (plus disk)", elapsed, min)
	}
	ts := v.Times()
	if ts.SysFault < v.Params().FaultServiceTime {
		t.Fatalf("SysFault = %v, want ≥ %v", ts.SysFault, v.Params().FaultServiceTime)
	}
	if ts.Idle <= 0 {
		t.Fatal("demand fault produced no idle (stall) time")
	}
	s := v.Stats()
	if s.MajorFaults != 1 || s.NonPrefetchedFault != 1 {
		t.Fatalf("stats = %+v, want one major non-prefetched fault", s)
	}
}

func TestSecondTouchIsFree(t *testing.T) {
	c, v := newVM(t, 64, 64)
	base, _ := v.Alloc("x", v.Params().PageSize)
	_ = v.LoadF64(base)
	before := c.Now()
	for i := 0; i < 100; i++ {
		_ = v.LoadF64(base + int64(i*8))
	}
	if c.Now() != before {
		t.Fatal("resident accesses advanced the kernel clock")
	}
	if v.Stats().MajorFaults != 1 {
		t.Fatalf("major faults = %d, want 1", v.Stats().MajorFaults)
	}
}

func TestUserOpsAccumulateLazily(t *testing.T) {
	c, v := newVM(t, 64, 64)
	v.AddUserOps(1000)
	if c.Now() != 0 {
		t.Fatal("AddUserOps advanced the clock eagerly")
	}
	if got := v.Times().User; got != sim.Time(1000)*v.Params().OpTime {
		t.Fatalf("Times().User = %v, want %v", got, sim.Time(1000)*v.Params().OpTime)
	}
	base, _ := v.Alloc("x", v.Params().PageSize)
	_ = v.LoadF64(base) // kernel crossing flushes
	if c.Now() < sim.Time(1000)*v.Params().OpTime {
		t.Fatal("kernel crossing did not flush pending user time")
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	c, v := newVM(t, 64, 64)
	base, _ := v.Alloc("x", 2*v.Params().PageSize)
	page := v.PageOf(base)

	v.Prefetch(page, 1)
	// Give the prefetch time to complete before the touch.
	c.Advance(100 * sim.Millisecond)

	idleBefore := v.Times().Idle
	_ = v.LoadF64(base)
	if got := v.Times().Idle - idleBefore; got != 0 {
		t.Fatalf("touch after completed prefetch stalled %v", got)
	}
	s := v.Stats()
	if s.PrefetchedHits != 1 {
		t.Fatalf("PrefetchedHits = %d, want 1 (stats %+v)", s.PrefetchedHits, s)
	}
	if s.MajorFaults != 0 {
		t.Fatalf("MajorFaults = %d, want 0", s.MajorFaults)
	}
	if s.PrefetchIssued != 1 {
		t.Fatalf("PrefetchIssued = %d, want 1", s.PrefetchIssued)
	}
}

func TestLatePrefetchIsPrefetchedFault(t *testing.T) {
	_, v := newVM(t, 64, 64)
	base, _ := v.Alloc("x", v.Params().PageSize)
	v.Prefetch(v.PageOf(base), 1)
	// Touch immediately: the read is still in flight.
	_ = v.LoadF64(base)
	s := v.Stats()
	if s.PrefetchedFaults != 1 {
		t.Fatalf("PrefetchedFaults = %d, want 1 (stats %+v)", s.PrefetchedFaults, s)
	}
	if s.PrefetchedHits != 0 {
		t.Fatalf("PrefetchedHits = %d, want 0", s.PrefetchedHits)
	}
	if v.Times().Idle <= 0 {
		t.Fatal("late prefetch should still stall")
	}
}

func TestPrefetchOfResidentPageIsUnnecessary(t *testing.T) {
	_, v := newVM(t, 64, 64)
	base, _ := v.Alloc("x", v.Params().PageSize)
	_ = v.LoadF64(base)
	v.Prefetch(v.PageOf(base), 1)
	s := v.Stats()
	if s.PrefetchUnneeded != 1 {
		t.Fatalf("PrefetchUnneeded = %d, want 1", s.PrefetchUnneeded)
	}
	if s.PrefetchIssued != 0 {
		t.Fatalf("PrefetchIssued = %d, want 0", s.PrefetchIssued)
	}
}

func TestPrefetchDroppedWhenMemoryFull(t *testing.T) {
	c, v := newVM(t, 8, 64)
	ps := v.Params().PageSize
	base, _ := v.Alloc("x", 64*ps)
	// Ask for all 8 frames plus one more: the OS keeps a 2-frame reserve
	// for demand faults, so 6 issue and 3 drop.
	v.Prefetch(v.PageOf(base), 8)
	v.Prefetch(v.PageOf(base)+8, 1)
	s := v.Stats()
	if s.PrefetchDropped != 3 || s.PrefetchIssued != 6 {
		t.Fatalf("dropped/issued = %d/%d, want 3/6 (stats %+v)", s.PrefetchDropped, s.PrefetchIssued, s)
	}
	// The dropped page still counts as prefetched for coverage: its later
	// fault is a prefetched fault.
	c.Advance(sim.Second)
	_ = v.LoadF64(base + 8*ps)
	if got := v.Stats().PrefetchedFaults; got != 1 {
		t.Fatalf("fault after dropped prefetch classified wrong: PrefetchedFaults=%d", got)
	}
}

func TestBlockPrefetchSingleSyscall(t *testing.T) {
	_, v := newVM(t, 64, 64)
	base, _ := v.Alloc("x", 16*v.Params().PageSize)
	v.Prefetch(v.PageOf(base), 8)
	s := v.Stats()
	if s.PrefetchCalls != 1 {
		t.Fatalf("PrefetchCalls = %d, want 1", s.PrefetchCalls)
	}
	if s.PrefetchIssued != 8 {
		t.Fatalf("PrefetchIssued = %d, want 8", s.PrefetchIssued)
	}
	if got := v.Times().SysPrefetch; got != v.Params().PrefetchSyscallTime {
		t.Fatalf("SysPrefetch = %v, want exactly one syscall %v", got, v.Params().PrefetchSyscallTime)
	}
}

func TestReleaseMakesPageReclaimable(t *testing.T) {
	c, v := newVM(t, 64, 64)
	base, _ := v.Alloc("x", 4*v.Params().PageSize)
	_ = v.LoadF64(base)
	free := v.FreeFrames()
	v.Release(v.PageOf(base), 1)
	c.Advance(sim.Second)
	if got := v.FreeFrames(); got != free+1 {
		t.Fatalf("free frames after release = %d, want %d", got, free+1)
	}
	if !v.BitVector().Get(v.PageOf(base)) == false {
		t.Fatal("release did not clear the residency bit")
	}
	// Touching it again is a minor fault: the content is still there.
	v.StoreF64(base, 7)
	s := v.Stats()
	if s.MinorFaults != 1 {
		t.Fatalf("MinorFaults = %d, want 1 (rescue)", s.MinorFaults)
	}
	if v.LoadF64(base) != 7 {
		t.Fatal("rescued page lost data")
	}
}

func TestReleaseDirtyPageWritesBack(t *testing.T) {
	c, v := newVM(t, 64, 64)
	base, _ := v.Alloc("x", v.Params().PageSize)
	v.StoreF64(base, 1.5)
	v.Release(v.PageOf(base), 1)
	c.Advance(sim.Second)
	s := v.Stats()
	if s.Writebacks != 1 {
		t.Fatalf("Writebacks = %d, want 1", s.Writebacks)
	}
	if v.FreeFrames() != 64 {
		t.Fatalf("free frames = %d, want all 64 back", v.FreeFrames())
	}
}

func TestReleasedFrameIsReusedFirst(t *testing.T) {
	c, v := newVM(t, 64, 128)
	ps := v.Params().PageSize
	base, _ := v.Alloc("x", 128*ps)
	_ = v.LoadF64(base) // page 0 in some frame
	p0 := v.PageOf(base)
	v.Release(p0, 1)
	c.Advance(sim.Second)
	// Demand-fault another page: it must take page 0's frame (head of the
	// free queue) even though other frames are free.
	_ = v.LoadF64(base + 64*ps)
	if v.Resident(p0) {
		t.Fatal("released page still resident: its frame was not reused first")
	}
}

func TestPrefetchRescuesReleasedPage(t *testing.T) {
	c, v := newVM(t, 64, 64)
	base, _ := v.Alloc("x", 4*v.Params().PageSize)
	v.StoreF64(base, 9.5)
	p := v.PageOf(base)
	v.Release(p, 1)
	c.Advance(sim.Second)
	v.Prefetch(p, 1)
	s := v.Stats()
	if s.PrefetchRescues != 1 {
		t.Fatalf("PrefetchRescues = %d, want 1 (stats %+v)", s.PrefetchRescues, s)
	}
	if s.PrefetchUnneeded != 0 {
		t.Fatal("free-list rescue must not count as unnecessary (paper footnote)")
	}
	if v.LoadF64(base) != 9.5 {
		t.Fatal("rescued page lost data")
	}
	if got := v.Stats().PrefetchedHits; got != 1 {
		t.Fatalf("PrefetchedHits = %d, want 1 after rescue + touch", got)
	}
}

func TestBundledPrefetchRelease(t *testing.T) {
	c, v := newVM(t, 16, 64)
	ps := v.Params().PageSize
	base, _ := v.Alloc("x", 64*ps)
	p0 := v.PageOf(base)
	// Bring in pages 0..7, then in ONE call release them and prefetch 8..15.
	for i := int64(0); i < 8; i++ {
		_ = v.LoadF64(base + i*ps)
	}
	callsBefore := v.Stats().PrefetchCalls
	v.PrefetchRelease(p0+8, 8, p0, 8)
	c.Advance(sim.Second)
	s := v.Stats()
	if s.PrefetchCalls != callsBefore+1 {
		t.Fatalf("bundled call counted %d times", s.PrefetchCalls-callsBefore)
	}
	if s.ReleasedPages != 8 {
		t.Fatalf("ReleasedPages = %d, want 8", s.ReleasedPages)
	}
	for i := int64(8); i < 16; i++ {
		if !v.Resident(p0 + i) {
			t.Fatalf("prefetched page %d not resident", i)
		}
	}
}

func TestEvictionWritesDirtyPages(t *testing.T) {
	c, v := newVM(t, 16, 256)
	ps := v.Params().PageSize
	base, _ := v.Alloc("x", 256*ps)
	// Dirty-stream through 4× memory: the daemon must write pages back,
	// and earlier pages must survive their round trip.
	for i := int64(0); i < 64; i++ {
		v.StoreF64(base+i*ps, float64(i))
		c.Advance(10 * sim.Millisecond) // let the daemon keep up
	}
	c.Advance(sim.Second)
	s := v.Stats()
	if s.Writebacks == 0 {
		t.Fatal("streaming dirty data caused no writebacks")
	}
	for i := int64(0); i < 64; i++ {
		if got := v.LoadF64(base + i*ps); got != float64(i) {
			t.Fatalf("page %d round-tripped to %v, want %v", i, got, float64(i))
		}
	}
}

func TestWorkingSetLargerThanMemory(t *testing.T) {
	_, v := newVM(t, 16, 256)
	ps := v.Params().PageSize
	base, _ := v.Alloc("x", 256*ps)
	// Touch 3× memory worth of pages, read-only.
	for i := int64(0); i < 48; i++ {
		_ = v.LoadF64(base + i*ps)
	}
	s := v.Stats()
	if s.MajorFaults != 48 {
		t.Fatalf("MajorFaults = %d, want 48 (every page missed)", s.MajorFaults)
	}
	if v.FreeFrames() < 0 {
		t.Fatal("free count went negative")
	}
}

func TestPreloadWarmStart(t *testing.T) {
	c, v := newVM(t, 64, 64)
	ps := v.Params().PageSize
	base, _ := v.Alloc("x", 16*ps)
	n := v.Preload(v.PageOf(base), 16)
	if n != 16 {
		t.Fatalf("Preload loaded %d pages, want 16", n)
	}
	if c.Now() != 0 {
		t.Fatal("Preload consumed simulated time")
	}
	v.ResetAccounting()
	for i := int64(0); i < 16; i++ {
		_ = v.LoadF64(base + i*ps)
	}
	s := v.Stats()
	if s.MajorFaults != 0 || s.MinorFaults != 0 {
		t.Fatalf("warm-started run faulted: %+v", s)
	}
	if s.OriginalFaults() != 0 {
		t.Fatalf("warm touches miscounted as original faults: %+v", s)
	}
}

func TestFinishFlushesDirty(t *testing.T) {
	_, v := newVM(t, 64, 64)
	ps := v.Params().PageSize
	base, _ := v.Alloc("x", 8*ps)
	for i := int64(0); i < 8; i++ {
		v.StoreF64(base+i*ps, float64(i))
	}
	v.Finish()
	if got := v.Stats().Writebacks; got != 8 {
		t.Fatalf("Finish wrote %d pages, want 8", got)
	}
	// Pages stay resident after a flush.
	for i := int64(0); i < 8; i++ {
		if !v.Resident(v.PageOf(base) + i) {
			t.Fatalf("page %d evicted by Finish", i)
		}
	}
}

func TestCoverageFactor(t *testing.T) {
	s := Stats{PrefetchedHits: 75, PrefetchedFaults: 5, NonPrefetchedFault: 20}
	if got := s.CoverageFactor(); got != 0.80 {
		t.Fatalf("CoverageFactor = %v, want 0.80", got)
	}
	if got := s.OriginalFaults(); got != 100 {
		t.Fatalf("OriginalFaults = %d, want 100", got)
	}
	if (Stats{}).CoverageFactor() != 0 {
		t.Fatal("empty stats coverage not 0")
	}
}

func TestHintRangeChecked(t *testing.T) {
	_, v := newVM(t, 16, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range prefetch did not panic")
		}
	}()
	v.Prefetch(10, 10)
}

func TestFreeQueueSurvivesHeavyRescueTraffic(t *testing.T) {
	// Regression: rescues leave stale entries in the free queue's ring;
	// the ring must compact/grow rather than overflow. Exercise far more
	// release→touch cycles than there are frames.
	c, v := newVM(t, 16, 64)
	ps := v.Params().PageSize
	base, _ := v.Alloc("x", 8*ps)
	for round := 0; round < 200; round++ {
		for i := int64(0); i < 8; i++ {
			v.StoreF64(base+i*ps, float64(round))
		}
		v.Release(v.PageOf(base), 8)
		c.Advance(50 * sim.Millisecond)
	}
	for i := int64(0); i < 8; i++ {
		if got := v.LoadF64(base + i*ps); got != 199 {
			t.Fatalf("page %d lost data after rescue storm: %v", i, got)
		}
	}
}
