package vm

import "fmt"

// CheckInvariants verifies the memory manager's structural invariants:
// the pool's frame table and the page tables of every attached address
// space form a bijection over mapped frames, free-list and residency
// accounting agree with the per-frame flags, every non-zero page state
// has a frame, and in-flight I/O counts match the page table. It returns
// the first violation found, or nil.
//
// It exists so that external torture tests — in particular the
// fault-injection harness, which must show that injected disk errors,
// brownouts, and dropped prefetches never corrupt the memory manager —
// can assert the same invariants the package's own randomized tests do.
// The pool-level half (bijection, free counts, residency, quota census)
// is shared by all tenants; the per-space half below checks this
// address space's page table.
func (v *VM) CheckInvariants() error {
	if err := v.pool.CheckInvariants(); err != nil {
		return err
	}

	var transitPages int64
	for p := range v.pt {
		e := &v.pt[p]
		if e.state == inTransit {
			transitPages++
		}
		if e.state != unmapped && e.frame < 0 {
			return fmt.Errorf("vm: page %d in state %d has no frame", p, e.state)
		}
		if e.state == unmapped && e.dirty {
			return fmt.Errorf("vm: unmapped page %d is dirty", p)
		}
		if e.state != unmapped {
			fi := &v.pool.frames[e.frame]
			if fi.owner != v {
				return fmt.Errorf("vm: page %d's frame %d owned by another tenant", p, e.frame)
			}
			if fi.vpage != int64(p) {
				return fmt.Errorf("vm: page %d's frame %d maps page %d", p, e.frame, fi.vpage)
			}
			if e.state == freeListed && !fi.onFree {
				return fmt.Errorf("vm: freeListed page %d's frame not on free queue", p)
			}
			if (e.state == resident || e.state == hot) && fi.onFree {
				return fmt.Errorf("vm: resident page %d's frame on free queue", p)
			}
		}
		if e.state == hot && !e.touched {
			return fmt.Errorf("vm: hot page %d not marked touched", p)
		}
		if e.state == resident && e.touched {
			return fmt.Errorf("vm: touched page %d left in plain resident state", p)
		}
	}
	if transitPages != v.inTransitCount {
		return fmt.Errorf("vm: inTransitCount=%d but %d pages in transit", v.inTransitCount, transitPages)
	}

	// Residency bit-vector consistency, checkable only at exact (one page
	// per bit) granularity: a set bit must cover a mapped page. Every
	// transition to unmapped (frame reuse, dropped hint, abandoned
	// prefetch) clears the page's bit, and the run-time layer sets bits
	// only for pages it hands to the OS in the same call — which maps or
	// drops (re-clearing) each one before returning. The scan walks runs
	// of set bits via NextClear, so fully released spaces cost one word
	// read per 64 pages.
	if v.bitvec.PagesPerBit() == 1 {
		total := v.file.Pages()
		for p := int64(0); p < total; {
			q := v.bitvec.NextClear(p, total)
			for ; p < q; p++ {
				if v.pt[p].state == unmapped {
					return fmt.Errorf("vm: unmapped page %d has its residency bit set", p)
				}
			}
			p = q + 1
		}
	}
	return nil
}
