package vm

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stripefs"
)

// Substrate micro-benchmarks: the cost of the simulator's hot paths in
// real (host) time. These bound how fast experiments run, not simulated
// performance.

func benchVM(b *testing.B, frames, spacePages int64) (*sim.Clock, *VM) {
	b.Helper()
	p := hw.Default()
	p.MemoryBytes = frames * p.PageSize
	c := sim.NewClock()
	fs := stripefs.New(c, p, nil)
	f, err := fs.Create("space", spacePages)
	if err != nil {
		b.Fatal(err)
	}
	return c, New(c, p, f)
}

func BenchmarkResidentLoad(b *testing.B) {
	_, v := benchVM(b, 64, 64)
	base, _ := v.Alloc("x", 8*v.Params().PageSize)
	_ = v.LoadF64(base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.LoadF64(base + int64(i%4096)&^7)
	}
}

func BenchmarkResidentStore(b *testing.B) {
	_, v := benchVM(b, 64, 64)
	base, _ := v.Alloc("x", 8*v.Params().PageSize)
	v.StoreF64(base, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.StoreF64(base+int64(i%4096)&^7, float64(i))
	}
}

// benchSink keeps span-iteration results observable so the compiler
// cannot elide the loops under measurement.
var benchSink uint64

// BenchmarkPageRunLoad measures the executor fast path's per-word read
// cost: one PageSpan acquisition per page amortized over iterating the
// page's words directly. Compare against BenchmarkResidentLoad, which
// pays the full Load call per word.
func BenchmarkPageRunLoad(b *testing.B) {
	_, v := benchVM(b, 64, 64)
	base, _ := v.Alloc("x", 8*v.Params().PageSize)
	pw := v.Params().PageSize / 8
	_ = v.LoadF64(base)
	var sum uint64
	b.ResetTimer()
	for i := 0; i < b.N; i += int(pw) {
		words, off, ok := v.PageSpan(base, pw)
		if !ok {
			b.Fatal("PageSpan refused a hot page")
		}
		for _, w := range words[off:] {
			sum += w
		}
	}
	benchSink = sum
}

// BenchmarkPageRunStore is the store-side twin: PageSpanW acquisition
// amortized over direct word writes. Compare against
// BenchmarkResidentStore.
func BenchmarkPageRunStore(b *testing.B) {
	_, v := benchVM(b, 64, 64)
	base, _ := v.Alloc("x", 8*v.Params().PageSize)
	pw := v.Params().PageSize / 8
	v.StoreF64(base, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i += int(pw) {
		words, off, ok := v.PageSpanW(base, pw)
		if !ok {
			b.Fatal("PageSpanW refused a hot page")
		}
		s := words[off:]
		for j := range s {
			s[j] = uint64(i + j)
		}
	}
}

func BenchmarkDemandFaultCycle(b *testing.B) {
	c, v := benchVM(b, 16, 1024)
	ps := v.Params().PageSize
	base, _ := v.Alloc("x", 1024*ps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Touch pages in a pattern guaranteed to miss.
		_ = v.LoadF64(base + int64(i%1024)*ps)
	}
	b.StopTimer()
	c.Drain()
}

func BenchmarkPrefetchSyscall(b *testing.B) {
	c, v := benchVM(b, 256, 4096)
	ps := v.Params().PageSize
	base, _ := v.Alloc("x", 4096*ps)
	p0 := v.PageOf(base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Prefetch((p0+int64(i*4))%4092, 4)
		if i%32 == 0 {
			c.Advance(100 * sim.Millisecond)
		}
	}
	b.StopTimer()
	c.Drain()
}

func BenchmarkReleaseRescueCycle(b *testing.B) {
	c, v := benchVM(b, 64, 64)
	base, _ := v.Alloc("x", 8*v.Params().PageSize)
	_ = v.LoadF64(base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Release(v.PageOf(base), 1)
		_ = v.LoadF64(base) // minor-fault rescue
	}
	b.StopTimer()
	c.Drain()
}
