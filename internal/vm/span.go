package vm

// PageSpan returns the frame words backing the page that contains addr,
// together with addr's word offset into that page. It succeeds only when
// the n words starting at addr lie within the single page AND the page is
// resident and already touched (a hot mapping): a span never triggers a
// fault, a reclaim, or a fault classification, so the caller can fall
// back to ordinary Load/Store — which do all of those — whenever ok is
// false.
//
// On success the page is marked referenced, exactly as n individual Loads
// would mark it. Because simulated time only advances at kernel crossings
// (faults and hint system calls), batching the marking is indistinguishable
// from per-access marking as long as the caller performs no VM call while
// it uses the span.
//
// Pinning contract: the returned slice aliases frame memory. It is
// invalidated by ANY subsequent VM call that can advance simulated time or
// move pages — Load/Store (they may fault and evict), PrefetchRelease,
// Finish, Preload — and must never be held across one. Acquire, use, drop.
func (v *VM) PageSpan(addr, n int64) ([]uint64, int64, bool) {
	return v.pageSpan(addr, n, false)
}

// PageSpanW is PageSpan for stores: it additionally marks the page dirty,
// as n individual Stores would.
func (v *VM) PageSpanW(addr, n int64) ([]uint64, int64, bool) {
	return v.pageSpan(addr, n, true)
}

func (v *VM) pageSpan(addr, n int64, write bool) ([]uint64, int64, bool) {
	page := addr >> v.pageShift
	off := (addr & v.pageMask) >> 3
	if n < 1 || off+n > v.pageWords {
		return nil, 0, false
	}
	e := &v.pt[page]
	if e.state != hot {
		// Not resident, or resident but never touched (a prefetched page
		// whose first touch must still be classified): the per-element
		// path handles both.
		return nil, 0, false
	}
	e.referenced = true
	if write {
		e.dirty = true
	}
	return v.frameWords(e.frame), off, true
}
