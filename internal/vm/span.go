package vm

// PageSpan returns the frame words backing the page that contains addr,
// together with addr's word offset into that page. It succeeds only when
// the n words starting at addr lie within the single page AND the page is
// resident and already touched (a hot mapping): a span never triggers a
// fault, a reclaim, or a fault classification, so the caller can fall
// back to ordinary Load/Store — which do all of those — whenever ok is
// false.
//
// On success the page is marked referenced, exactly as n individual Loads
// would mark it. Because simulated time only advances at kernel crossings
// (faults and hint system calls), batching the marking is indistinguishable
// from per-access marking as long as the caller performs no VM call while
// it uses the span.
//
// Pinning contract: the returned slice aliases frame memory. It is
// invalidated by ANY subsequent VM call that can advance simulated time or
// move pages — Load/Store (they may fault and evict), PrefetchRelease,
// Finish, Preload — and must never be held across one. Acquire, use, drop.
func (v *VM) PageSpan(addr, n int64) ([]uint64, int64, bool) {
	return v.pageSpan(addr, n, false)
}

// PageSpanW is PageSpan for stores: it additionally marks the page dirty,
// as n individual Stores would.
func (v *VM) PageSpanW(addr, n int64) ([]uint64, int64, bool) {
	return v.pageSpan(addr, n, true)
}

// HotRunLen counts how many consecutive pages starting at page (moving
// toward higher pages when backward is false, lower when true) are hot,
// up to max. It is a pure probe: no marking, no faulting, no time — the
// executor's nest drivers use it to size a multi-page chunk before
// acquiring the spans, so a partial run never leaves half-marked pages
// behind.
func (v *VM) HotRunLen(page, max int64, backward bool) int64 {
	var n int64
	if backward {
		for n < max && page-n >= 0 && v.pt[page-n].state == hot {
			n++
		}
		return n
	}
	last := int64(len(v.pt))
	for n < max && page+n < last && v.pt[page+n].state == hot {
		n++
	}
	return n
}

// PageRun acquires npages consecutive pages starting at page as frame
// word slices, appending one slice per page (ascending page order) to
// segs and returning the extended buffer. Every page must be hot —
// callers establish that with HotRunLen and perform no VM call in
// between — and each is marked referenced (and dirty when write is
// set), exactly as per-word accesses would mark it. ok=false means some
// page was not hot; in that case NO page has been marked and the caller
// must use the per-element path.
//
// The pinning contract of PageSpan applies to every returned slice:
// they alias frame memory and are invalidated by any VM call that can
// advance simulated time or move pages. Acquire, use, drop.
func (v *VM) PageRun(page, npages int64, write bool, segs [][]uint64) ([][]uint64, bool) {
	if npages < 1 || page < 0 || page+npages > int64(len(v.pt)) {
		return segs, false
	}
	for p := page; p < page+npages; p++ {
		if v.pt[p].state != hot {
			return segs, false
		}
	}
	for p := page; p < page+npages; p++ {
		e := &v.pt[p]
		e.referenced = true
		if write {
			e.dirty = true
		}
		segs = append(segs, v.frameWords(e.frame))
	}
	return segs, true
}

func (v *VM) pageSpan(addr, n int64, write bool) ([]uint64, int64, bool) {
	page := addr >> v.pageShift
	off := (addr & v.pageMask) >> 3
	if n < 1 || off+n > v.pageWords {
		return nil, 0, false
	}
	e := &v.pt[page]
	if e.state != hot {
		// Not resident, or resident but never touched (a prefetched page
		// whose first touch must still be classified): the per-element
		// path handles both.
		return nil, 0, false
	}
	e.referenced = true
	if write {
		e.dirty = true
	}
	return v.frameWords(e.frame), off, true
}
