package vm

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// Randomized invariant testing: drive the VM with arbitrary interleavings
// of touches, stores, prefetches, releases, and time advances, and check
// the memory manager's core invariants after every step.

// checkInvariants asserts structural consistency of the VM via the
// exported checker (shared with the fault-injection harness).
func checkInvariants(t *testing.T, v *VM) {
	t.Helper()
	if err := v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomOperationInvariants(t *testing.T) {
	iters := 12
	if testing.Short() {
		iters = 3
	}
	for trial := 0; trial < iters; trial++ {
		rng := rand.New(rand.NewSource(int64(7700 + trial)))
		frames := int64(8 + rng.Intn(56))
		pages := frames * int64(2+rng.Intn(4))
		c, v := newVM(t, frames, pages)
		base, err := v.Alloc("x", pages*v.Params().PageSize)
		if err != nil {
			t.Fatal(err)
		}
		ps := v.Params().PageSize

		steps := 400
		for s := 0; s < steps; s++ {
			p := rng.Int63n(pages)
			switch rng.Intn(6) {
			case 0:
				_ = v.LoadF64(base + p*ps + rng.Int63n(ps/8)*8)
			case 1:
				v.StoreF64(base+p*ps+rng.Int63n(ps/8)*8, float64(s))
			case 2:
				n := 1 + rng.Int63n(8)
				if p+n > pages {
					n = pages - p
				}
				v.Prefetch(p, n)
			case 3:
				n := 1 + rng.Int63n(8)
				if p+n > pages {
					n = pages - p
				}
				v.Release(p, n)
			case 4:
				v.PrefetchRelease(p, 1, rng.Int63n(pages), 1)
			case 5:
				c.Advance(sim.Time(rng.Int63n(int64(40 * sim.Millisecond))))
			}
			if s%25 == 0 {
				checkInvariants(t, v)
			}
		}
		v.Finish()
		c.Advance(sim.Second)
		checkInvariants(t, v)

		// Time accounting must be consistent: buckets sum to elapsed
		// minus any untouched wall time is impossible to assert exactly,
		// but no bucket may be negative and the total may not exceed the
		// clock.
		ts := v.Times()
		if ts.User < 0 || ts.SysFault < 0 || ts.SysPrefetch < 0 || ts.Idle < 0 {
			t.Fatalf("negative time bucket: %+v", ts)
		}
		if ts.Total() > c.Now() {
			t.Fatalf("accounted time %v exceeds clock %v", ts.Total(), c.Now())
		}
	}
}

// Data integrity under the same random torture: every word the test
// writes must read back with its last written value, regardless of how
// the memory manager shuffled pages underneath.
func TestRandomOperationDataIntegrity(t *testing.T) {
	iters := 8
	if testing.Short() {
		iters = 2
	}
	for trial := 0; trial < iters; trial++ {
		rng := rand.New(rand.NewSource(int64(4200 + trial)))
		frames := int64(8 + rng.Intn(24))
		pages := frames * 3
		c, v := newVM(t, frames, pages)
		base, _ := v.Alloc("x", pages*v.Params().PageSize)
		ps := v.Params().PageSize

		shadow := map[int64]float64{}
		for s := 0; s < 600; s++ {
			addr := base + rng.Int63n(pages)*ps + rng.Int63n(ps/8)*8
			switch rng.Intn(5) {
			case 0, 1:
				val := float64(s) + 0.25
				v.StoreF64(addr, val)
				shadow[addr] = val
			case 2:
				got := v.LoadF64(addr)
				want := shadow[addr] // zero if never written
				if got != want {
					t.Fatalf("trial %d step %d: addr %#x = %v, want %v", trial, s, addr, got, want)
				}
			case 3:
				p := rng.Int63n(pages)
				n := 1 + rng.Int63n(4)
				if p+n > pages {
					n = pages - p
				}
				v.Release(p, n)
			case 4:
				c.Advance(sim.Time(rng.Int63n(int64(30 * sim.Millisecond))))
			}
		}
		// Full sweep at the end.
		for addr, want := range shadow {
			if got := v.LoadF64(addr); got != want {
				t.Fatalf("trial %d final: addr %#x = %v, want %v", trial, addr, got, want)
			}
		}
	}
}
