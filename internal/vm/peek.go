package vm

import "math"

// Peek reads the 8-byte word at addr without simulated cost, page faults,
// or statistics. It is instrumentation: result validation and workload
// seeding use it; applications never do. The value returned is the current
// one wherever it lives — frame memory if the page is mapped, otherwise
// the backing file.
func (v *VM) Peek(addr int64) uint64 {
	page := addr >> v.pageShift
	word := (addr & v.pageMask) >> 3
	e := &v.pt[page]
	switch e.state {
	case resident, hot, freeListed:
		return v.words[int64(e.frame)*v.pageWords+word]
	default:
		if src := v.file.PeekPage(page); src != nil {
			return src[word]
		}
		return 0
	}
}

// PeekF64 reads a float64 without simulated cost.
func (v *VM) PeekF64(addr int64) float64 { return math.Float64frombits(v.Peek(addr)) }

// PeekI64 reads an int64 without simulated cost.
func (v *VM) PeekI64(addr int64) int64 { return int64(v.Peek(addr)) }
