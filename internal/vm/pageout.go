package vm

import "repro/internal/sim"

// daemonDelay is how soon after a low-water crossing the pageout daemon
// runs, and its re-arm period while it waits for write-backs to finish.
const daemonDelay = 200 * sim.Microsecond

// kickDaemon schedules a pageout-daemon pass if one is not already
// pending.
func (v *VM) kickDaemon() {
	if v.daemonScheduled {
		return
	}
	v.daemonScheduled = true
	v.clock.Schedule(daemonDelay, v.daemonRunFn)
}

// daemonRun is one activation of the pageout daemon: sweep the clock hand,
// giving referenced pages a second chance, moving clean unreferenced pages
// to the free list, and starting write-backs for dirty ones, until the
// free list (plus writes already in flight) reaches the high watermark.
func (v *VM) daemonRun() {
	v.daemonScheduled = false
	v.n.daemonScans++
	target := v.p.HighWater()
	budget := 2 * len(v.frames)
	for v.freeCount+v.cleaningCount < target && budget > 0 {
		budget--
		v.evictOne()
	}
	if v.freeCount < v.p.LowWater() {
		// Still short: either writes are in flight (their completions
		// will refill the list) or everything was referenced; try again
		// shortly in both cases.
		v.kickDaemon()
	}
}

// evictOne advances the clock hand one frame, applying second chance.
func (v *VM) evictOne() {
	f := v.hand
	v.hand++
	if int(v.hand) == len(v.frames) {
		v.hand = 0
	}
	fi := &v.frames[f]
	if fi.vpage < 0 || fi.onFree {
		return
	}
	e := &v.pt[fi.vpage]
	if (e.state != resident && e.state != hot) || e.cleaning {
		return
	}
	if e.referenced {
		e.referenced = false // second chance
		return
	}
	if e.dirty {
		v.startClean(fi.vpage, true, false)
		return
	}
	e.state = freeListed
	v.bitvec.Clear(fi.vpage)
	v.pushFreeBack(e.frame)
}

// syncReclaim is the demand-fault path's last resort: the free list is
// empty, so sweep for a victim right now. If every frame is pinned by
// in-flight I/O (reads filling frames, writes cleaning them), stall until
// some I/O completes and sweep again — a just-arrived prefetched page is
// a legal victim (it simply becomes a prefetched fault later).
func (v *VM) syncReclaim() {
	for {
		for budget := 2 * len(v.frames); budget > 0 && v.freeCount == 0; budget-- {
			v.evictOne()
		}
		if v.freeCount > 0 {
			return
		}
		if v.cleaningCount == 0 && v.inTransitCount == 0 {
			panic("vm: out of memory: no evictable pages and no I/O in flight")
		}
		gen := v.ioGen
		v.waitIdle("memory-stall", func() bool {
			return v.freeCount > 0 || v.ioGen != gen
		})
		if v.freeCount > 0 {
			return
		}
	}
}

// startClean begins a write-back of a dirty page. toFree moves the page to
// the free list once the write completes (unless it was re-dirtied or, for
// daemon evictions, re-referenced in the meantime); front puts it at the
// head of the free list (the release path).
func (v *VM) startClean(page int64, toFree, front bool) {
	e := &v.pt[page]
	e.dirty = false
	e.cleaning = true
	e.toFree = toFree
	e.front = front
	v.cleaningCount++
	v.n.writebacks++
	v.file.Write(page, v.frameWords(e.frame), func() {
		v.cleaningCount--
		v.ioGen++
		e.cleaning = false
		if e.dirty || !e.toFree {
			return // re-dirtied, or a plain flush: stays resident
		}
		if e.referenced && !e.front {
			return // daemon eviction rescued by a touch during the write
		}
		e.state = freeListed
		v.bitvec.Clear(page)
		if e.front {
			v.pushFreeFront(e.frame)
		} else {
			v.pushFreeBack(e.frame)
		}
	})
}

// Finish flushes all remaining dirty pages to disk and waits for them, so
// the program's results are durably "written back out to disk" as in the
// paper's modified benchmarks. The wait is accounted as idle time.
func (v *VM) Finish() {
	v.flushUser()
	for p := int64(0); p < v.allocPages; p++ {
		e := &v.pt[p]
		if e.dirty && (e.state == resident || e.state == hot) && !e.cleaning {
			v.startClean(p, false, false)
		}
	}
	if v.cleaningCount > 0 {
		v.waitIdle("final-writeback", func() bool { return v.cleaningCount == 0 })
	}
}
