package vm

// The pageout daemon, clock-hand eviction, and synchronous reclaim live
// on the Pool (pool.go): physical memory is pool state, and fair-share
// reclaim needs the all-tenants view. What remains here is the per-page
// write-back machinery, which needs the owning address space's page
// table and backing file.

// startClean begins a write-back of a dirty page. toFree moves the page to
// the free list once the write completes (unless it was re-dirtied or, for
// daemon evictions, re-referenced in the meantime); front puts it at the
// head of the free list (the release path). The completion is cleanedFn, a
// method value bound once per VM: the page-table entry already carries the
// toFree/front disposition, so nothing needs to be closed over and the
// write path allocates nothing per page.
func (v *VM) startClean(page int64, toFree, front bool) {
	e := &v.pt[page]
	e.dirty = false
	e.cleaning = true
	e.toFree = toFree
	e.front = front
	v.cleaningCount++
	v.pool.cleaningCount++
	v.n.writebacks++
	v.file.Write(page, v.frameWords(e.frame), v.cleanedFn)
}

// cleaned is the write-back completion: it re-reads the page's
// disposition from the page table (the write may have raced with a
// touch, a re-dirty, or a release upgrade) and moves the page to the
// free list when the eviction still stands.
func (v *VM) cleaned(page int64) {
	e := &v.pt[page]
	v.cleaningCount--
	v.pool.cleaningCount--
	v.pool.ioGen++
	e.cleaning = false
	if e.dirty || !e.toFree {
		return // re-dirtied, or a plain flush: stays resident
	}
	if e.referenced && !e.front {
		return // daemon eviction rescued by a touch during the write
	}
	e.state = freeListed
	v.bitvec.Clear(page)
	if e.front {
		v.pool.pushFreeFront(e.frame)
	} else {
		v.pool.pushFreeBack(e.frame)
	}
}

// Finish flushes all remaining dirty pages to disk and waits for them, so
// the program's results are durably "written back out to disk" as in the
// paper's modified benchmarks. The wait is accounted as idle time.
func (v *VM) Finish() {
	v.flushUser()
	for p := int64(0); p < v.allocPages; p++ {
		e := &v.pt[p]
		if e.dirty && (e.state == resident || e.state == hot) && !e.cleaning {
			v.startClean(p, false, false)
		}
	}
	if v.cleaningCount > 0 {
		v.waitIdle("final-writeback", func() bool { return v.cleaningCount == 0 })
	}
}
