package vm

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stripefs"
)

// residentPages returns every page of v that is mapped to a frame not on
// the free list (hot or resident), in page order.
func residentPages(v *VM) []int64 {
	var pages []int64
	for p := range v.pt {
		if v.pt[p].state == hot || v.pt[p].state == resident {
			pages = append(pages, int64(p))
		}
	}
	return pages
}

// TestReclaimAllFramesPinnedBySpans drives reclaim against a pool whose
// every resident frame was just acquired through PageSpan. Spans mark
// their pages referenced — the strongest protection second chance
// grants — so the sweep must strip reference bits and still find
// victims rather than livelock, and the evicted pages' stores must
// survive the write-back / re-fault round trip.
func TestReclaimAllFramesPinnedBySpans(t *testing.T) {
	_, v := newVM(t, 8, 64)
	ps := v.Params().PageSize
	base, err := v.Alloc("x", 64*ps)
	if err != nil {
		t.Fatal(err)
	}

	// Dirty more pages than the pool has frames, then pin every page
	// that stayed resident with a span before each new burst of faults.
	for round := int64(0); round < 8; round++ {
		for _, p := range residentPages(v) {
			if _, _, ok := v.PageSpanW(base+p*ps, 1); !ok {
				t.Fatalf("round %d: span on resident page %d refused", round, p)
			}
		}
		for i := int64(0); i < 8; i++ {
			page := round*8 + i
			v.StoreI64(base+page*ps, page)
		}
		if err := v.Pool().CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got, want := v.ResidentFrames(), v.Pool().Frames(); got > want {
			t.Fatalf("round %d: %d resident frames in a %d-frame pool", round, got, want)
		}
	}

	// Every store — including those evicted and re-faulted — reads back.
	for page := int64(0); page < 64; page++ {
		if got := v.LoadI64(base + page*ps); got != page {
			t.Fatalf("page %d = %d after eviction round trip, want %d", page, got, page)
		}
	}
	if err := v.Pool().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQuotaZeroIsUnlimited pins the quota-of-zero contract: zero means
// unlimited, never over-quota — not a starvation quota — and moving a
// tenant between zero and a breached finite quota keeps the pool's
// over-quota census exact in both directions.
func TestQuotaZeroIsUnlimited(t *testing.T) {
	_, v := newVM(t, 16, 64)
	ps := v.Params().PageSize
	base, err := v.Alloc("x", 64*ps)
	if err != nil {
		t.Fatal(err)
	}
	v.SetQuota(0)
	for page := int64(0); page < 64; page++ {
		v.StoreI64(base+page*ps, page)
		if v.overQuota() {
			t.Fatalf("page %d: tenant with quota 0 counted over quota", page)
		}
		if v.Pool().overQuota != 0 {
			t.Fatalf("page %d: over-quota census %d with quotas disabled", page, v.Pool().overQuota)
		}
	}
	if err := v.Pool().CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Imposing a finite quota below current residency must register in
	// the census immediately; lifting it back to zero must clear it.
	if v.ResidentFrames() < 3 {
		t.Fatalf("want at least 3 resident frames, have %d", v.ResidentFrames())
	}
	v.SetQuota(2)
	if !v.overQuota() || v.Pool().overQuota != 1 {
		t.Fatalf("quota 2 under residency %d: overQuota=%v census=%d, want breach counted",
			v.ResidentFrames(), v.overQuota(), v.Pool().overQuota)
	}
	v.SetQuota(0)
	if v.overQuota() || v.Pool().overQuota != 0 {
		t.Fatalf("back to quota 0: overQuota=%v census=%d, want cleared", v.overQuota(), v.Pool().overQuota)
	}
	if err := v.Pool().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQuotaNegativePanics: a negative quota is a caller bug, not a
// policy.
func TestQuotaNegativePanics(t *testing.T) {
	_, v := newVM(t, 16, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("SetQuota(-1) did not panic")
		}
	}()
	v.SetQuota(-1)
}

// TestPoolSingleTenantTickForTick runs the same access and hint sequence
// through the private-pool constructor (New, the existing single-run
// path) and through an explicit NewPool+Attach single tenant, and
// requires tick-for-tick equality: same final clock, same memory stats,
// same time split, same memory image. The multi-tenant machinery must
// be invisible when there is one tenant and no quota.
func TestPoolSingleTenantTickForTick(t *testing.T) {
	const frames, pages = 24, 96
	drive := func(v *VM) {
		ps := v.Params().PageSize
		base, err := v.Alloc("x", pages*ps)
		if err != nil {
			t.Fatal(err)
		}
		// Two passes of a scan with prefetch-ahead and release-behind,
		// writing on the first pass — enough pressure that reclaim,
		// write-back, and the prefetch queue all engage.
		for pass := 0; pass < 2; pass++ {
			for page := int64(0); page < pages; page++ {
				if page%8 == 0 {
					pf := page + 8
					if n := min64(8, pages-pf); pf < pages && n > 0 {
						v.PrefetchRelease(pf, n, 0, 0)
					}
					if rel := page - 16; rel >= 0 {
						v.Release(rel, 8)
					}
				}
				addr := base + page*ps + (page%7)*8
				if pass == 0 {
					v.StoreI64(addr, page)
				} else if got := v.LoadI64(addr); got != page {
					t.Fatalf("pass %d page %d = %d, want %d", pass, page, got, page)
				}
				v.AddUserOps(16)
			}
		}
		v.Finish()
	}

	run := func(attach func(*sim.Clock, hw.Params, *stripefs.File) *VM) (sim.Time, Stats, TimeStats, *VM) {
		p := hw.Default()
		p.MemoryBytes = frames * p.PageSize
		c := sim.NewClock()
		fs := stripefs.New(c, p, nil)
		f, err := fs.Create("space", pages)
		if err != nil {
			t.Fatal(err)
		}
		v := attach(c, p, f)
		drive(v)
		c.Drain()
		return c.Now(), v.Stats(), v.Times(), v
	}

	soloEnd, soloStats, soloTimes, soloVM := run(New)
	poolEnd, poolStats, poolTimes, poolVM := run(func(c *sim.Clock, p hw.Params, f *stripefs.File) *VM {
		return NewPool(c, p).Attach(f, nil)
	})

	if soloEnd != poolEnd {
		t.Fatalf("final clock: solo %v, pooled %v", soloEnd, poolEnd)
	}
	if soloStats != poolStats {
		t.Fatalf("stats diverge:\nsolo   %+v\npooled %+v", soloStats, poolStats)
	}
	if soloTimes != poolTimes {
		t.Fatalf("time split diverges:\nsolo   %+v\npooled %+v", soloTimes, poolTimes)
	}
	ps := soloVM.Params().PageSize
	for page := int64(0); page < pages; page++ {
		addr := page*ps + (page%7)*8
		if a, b := soloVM.PeekI64(addr), poolVM.PeekI64(addr); a != b {
			t.Fatalf("memory image diverges at page %d: solo %d, pooled %d", page, a, b)
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
