package vm

import (
	"math"

	"repro/internal/disk"
)

// Load reads the 8-byte word at addr, faulting the page in if necessary.
// This is the application's view of memory: a plain load against unlimited
// virtual memory. Frames store words natively, so a resident hit is one
// page-table check and one indexed read — no byte decoding.
func (v *VM) Load(addr int64) uint64 {
	page := addr >> v.pageShift
	e := &v.pt[page]
	if e.state != hot {
		v.touchSlow(page)
	}
	e.referenced = true
	return v.words[int64(e.frame)<<v.wordShift+(addr&v.pageMask)>>3]
}

// Store writes the 8-byte word at addr, faulting the page in if necessary
// and marking it dirty.
func (v *VM) Store(addr int64, word uint64) {
	page := addr >> v.pageShift
	e := &v.pt[page]
	if e.state != hot {
		v.touchSlow(page)
	}
	e.referenced = true
	e.dirty = true
	v.words[int64(e.frame)<<v.wordShift+(addr&v.pageMask)>>3] = word
}

// LoadFast is the executor kernel's inlinable hot probe: it succeeds
// only when the page holding addr is hot (resident and already
// touched), in which case it performs exactly what Load would — mark
// referenced, read the word — without the fault machinery on the call
// path. ok=false means the caller must go through Load, which faults,
// classifies, and stalls as usual.
func (v *VM) LoadFast(addr int64) (uint64, bool) {
	e := &v.pt[addr>>v.pageShift]
	if e.state != hot {
		return 0, false
	}
	e.referenced = true
	return v.words[int64(e.frame)<<v.wordShift+(addr&v.pageMask)>>3], true
}

// StoreFast is LoadFast for stores: on a hot page it marks referenced
// and dirty and writes the word, exactly as Store would.
func (v *VM) StoreFast(addr int64, word uint64) bool {
	e := &v.pt[addr>>v.pageShift]
	if e.state != hot {
		return false
	}
	e.referenced = true
	e.dirty = true
	v.words[int64(e.frame)<<v.wordShift+(addr&v.pageMask)>>3] = word
	return true
}

// LoadF64 reads a float64 at addr.
func (v *VM) LoadF64(addr int64) float64 { return math.Float64frombits(v.Load(addr)) }

// StoreF64 writes a float64 at addr.
func (v *VM) StoreF64(addr int64, val float64) { v.Store(addr, math.Float64bits(val)) }

// LoadI64 reads an int64 at addr.
func (v *VM) LoadI64(addr int64) int64 { return int64(v.Load(addr)) }

// StoreI64 writes an int64 at addr.
func (v *VM) StoreI64(addr int64, val int64) { v.Store(addr, uint64(val)) }

// Resident reports whether a page is currently mapped and usable without
// a stall (used by tests and the warm-start path).
func (v *VM) Resident(page int64) bool {
	s := v.pt[page].state
	return s == resident || s == hot
}

// InTransit reports whether a read is in flight for the page — the
// condition a blocked tenant waits out before retrying with TouchResume
// (the same condition touchSlow's stall waits on).
func (v *VM) InTransit(page int64) bool { return v.pt[page].state == inTransit }

// touchSlow handles every access that is not a hot hit: first touches of
// a new residency (classification), reclaim (minor) faults, stalls on
// in-flight reads, and demand (major) faults. It loops until the page is
// resident, because servicing a fault advances simulated time, during
// which the page may arrive and even be evicted again under memory
// pressure.
func (v *VM) touchSlow(page int64) {
	e := &v.pt[page]

	// First touch of an already-resident page: if a prefetch brought it
	// in, the original fault was fully hidden.
	if e.state == resident {
		if e.prefetched {
			v.n.prefetchedHits++
			v.trFaults.InstantArg("hit", "fault-class", v.clock.Now(), "page", page)
			e.prefetched = false
		}
		e.touched = true
		e.state = hot
		return
	}

	v.flushUser()
	classified := false
	classifyFault := func() {
		// The touch turned out to be a real (major) fault: either a
		// prefetch did not do its job or there was none.
		if classified {
			return
		}
		classified = true
		if e.prefetched {
			v.n.prefetchedFaults++
			v.trFaults.InstantArg("late", "fault-class", v.clock.Now(), "page", page)
		} else {
			v.n.nonPrefetchedFault++
			v.trFaults.InstantArg("unprefetched", "fault-class", v.clock.Now(), "page", page)
		}
		e.prefetched = false
	}

	for e.state != resident {
		switch e.state {
		case freeListed:
			// Reclaim fault: the page is still in memory on the free
			// list; rescuing it costs a short kernel entry but no I/O.
			v.chargeSys(&v.n.sysFault, "minor-fault", "fault", v.p.MinorFaultTime)
			v.n.minorFaults++
			v.pool.rescueFromFree(e.frame)
			e.state = resident
			if !classified && !e.touched && e.prefetched {
				v.n.prefetchedHits++
				v.trFaults.InstantArg("hit", "fault-class", v.clock.Now(), "page", page)
				classified = true
			}
			e.prefetched = false

		case inTransit:
			// A read is in flight but did not complete early enough:
			// take the fault and stall for the remainder.
			v.chargeSys(&v.n.sysFault, "fault-service", "fault", v.p.FaultServiceTime)
			classifyFault()
			v.waitIdle("stall", func() bool { return e.state != inTransit })

		case unmapped:
			// Demand (major) fault: the full disk latency is exposed.
			v.chargeSys(&v.n.sysFault, "fault-service", "fault", v.p.FaultServiceTime)
			classifyFault()
			v.startDemandRead(page, e)
			v.waitIdle("stall", func() bool { return e.state != inTransit })
		}
	}
	e.touched = true
	e.state = hot
	e.referenced = true
	v.bitvec.Set(page)
}

// startDemandRead takes a frame for page (evicting synchronously under
// pressure) and issues the demand read that will make it resident.
func (v *VM) startDemandRead(page int64, e *pte) {
	f, _ := v.pool.takeFrame(v, page, false)
	e.frame = f
	e.state = inTransit
	v.inTransitCount++
	v.pool.inTransitCount++
	v.bitvec.Set(page)
	v.file.Read(page, 1, disk.FaultRead,
		v.dstFn, v.arrivedFn,
		nil, // demand reads never fail permanently (stripefs requeues)
		nil)
}

// TouchAsync is the non-blocking form of the access path, for the
// multi-tenant scheduler: it performs exactly the kernel work touchSlow
// would — classification, minor-fault rescue, fault-service charges,
// demand-read issue — but instead of stalling the (shared) CPU on
// in-flight I/O it returns false. The caller must then park until
// InTransit(page) turns false and retry with TouchResume; true means the
// page is hot and the access may proceed through LoadFast/StoreFast.
//
// A charge here can advance simulated time, so the method re-examines
// the page state after every charge, exactly as touchSlow's loop does.
// takeFrame may still stall inside (the demand path's synchronous
// reclaim when the free list is empty) — that models the single CPU
// sweeping for a victim, and is charged to this tenant.
func (v *VM) TouchAsync(page int64) bool { return v.touchAsync(page, true) }

// TouchResume continues a touch episode TouchAsync began: the fault was
// already charged and classified when the episode started, so the retry
// only performs the work touchSlow would after waking — completing the
// touch if the page arrived, rescuing it if it was evicted to the free
// list, or re-faulting (a fresh fault-service charge, but no second
// classification) if it was reclaimed entirely.
func (v *VM) TouchResume(page int64) bool { return v.touchAsync(page, false) }

func (v *VM) touchAsync(page int64, first bool) bool {
	e := &v.pt[page]
	if e.state == hot {
		return true
	}
	if first && e.state == resident {
		// Entry fast case, identical to touchSlow's: the subsequent
		// access marks the page referenced.
		if e.prefetched {
			v.n.prefetchedHits++
			v.trFaults.InstantArg("hit", "fault-class", v.clock.Now(), "page", page)
			e.prefetched = false
		}
		e.touched = true
		e.state = hot
		return true
	}

	v.flushUser()
	classified := !first
	for e.state != resident {
		switch e.state {
		case hot:
			return true
		case freeListed:
			v.chargeSys(&v.n.sysFault, "minor-fault", "fault", v.p.MinorFaultTime)
			v.n.minorFaults++
			v.pool.rescueFromFree(e.frame)
			e.state = resident
			if !classified && !e.touched && e.prefetched {
				v.n.prefetchedHits++
				v.trFaults.InstantArg("hit", "fault-class", v.clock.Now(), "page", page)
				classified = true
			}
			e.prefetched = false

		case inTransit:
			if !classified {
				v.chargeSys(&v.n.sysFault, "fault-service", "fault", v.p.FaultServiceTime)
				classified = true
				if e.prefetched {
					v.n.prefetchedFaults++
					v.trFaults.InstantArg("late", "fault-class", v.clock.Now(), "page", page)
				} else {
					v.n.nonPrefetchedFault++
					v.trFaults.InstantArg("unprefetched", "fault-class", v.clock.Now(), "page", page)
				}
				e.prefetched = false
				// The charge advanced the clock; the read may have landed.
				continue
			}
			return false

		case unmapped:
			v.chargeSys(&v.n.sysFault, "fault-service", "fault", v.p.FaultServiceTime)
			if !classified {
				classified = true
				if e.prefetched {
					v.n.prefetchedFaults++
					v.trFaults.InstantArg("late", "fault-class", v.clock.Now(), "page", page)
				} else {
					v.n.nonPrefetchedFault++
					v.trFaults.InstantArg("unprefetched", "fault-class", v.clock.Now(), "page", page)
				}
				e.prefetched = false
			}
			v.startDemandRead(page, e)
			return false
		}
	}
	e.touched = true
	e.state = hot
	e.referenced = true
	v.bitvec.Set(page)
	return true
}

// finishRead marks an in-flight page as resident once its data has been
// copied into its frame.
func (v *VM) finishRead(page int64) {
	e := &v.pt[page]
	if e.state == inTransit {
		e.state = resident
		v.inTransitCount--
		v.pool.inTransitCount--
		v.pool.ioGen++
	}
}
