package vm

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/sim"
)

// maxPrefetchQueue is the per-disk queue depth beyond which the OS drops
// prefetch hints rather than bury demand faults behind them (the Gold
// threshold; lower classes drop earlier — see SetClass).
const maxPrefetchQueue = 12

// PrefetchRelease is the bundled system call of Figure 2: prefetch pages
// [pfPage, pfPage+pfN) and release pages [relPage, relPage+relN) in one
// kernel crossing. Either range may be empty. Both hints are non-binding:
// prefetches are dropped when no memory is free, and releases of absent
// pages are no-ops.
func (v *VM) PrefetchRelease(pfPage, pfN, relPage, relN int64) {
	v.checkRange(pfPage, pfN)
	v.checkRange(relPage, relN)
	v.flushUser()
	cost := v.p.PrefetchSyscallTime + sim.Time(relN)*v.p.ReleasePerPageTime
	v.chargeSys(&v.n.sysPrefetch, "prefetch-release", "prefetch", cost)
	v.n.prefetchCalls++
	if relN > 0 {
		v.n.releaseCalls++
	}

	// Releases first: they may free exactly the memory the prefetches in
	// the same call need.
	for p := relPage; p < relPage+relN; p++ {
		v.releaseOne(p)
	}

	// Issue prefetch reads, coalescing contiguous runs so a block
	// prefetch becomes at most one request per disk. The callbacks are
	// the construction-time bound methods, so the whole hint path runs
	// without allocating.
	runStart := int64(-1)
	for p := pfPage; p < pfPage+pfN; p++ {
		if v.prefetchOne(p) {
			if runStart < 0 {
				runStart = p
			}
		} else if runStart >= 0 {
			v.issueRun(runStart, p)
			runStart = -1
		}
	}
	if runStart >= 0 {
		v.issueRun(runStart, pfPage+pfN)
	}
}

// issueRun starts one coalesced prefetch read of pages [start, end). The
// abandonment callback is passed only under fault injection — a
// fault-free read never fails, and stripefs skips its degradation
// machinery entirely when no injector is attached.
func (v *VM) issueRun(start, end int64) {
	failed := v.abandonFn
	if v.flt == nil {
		failed = nil
	}
	v.file.Read(start, end-start, disk.PrefetchRead, v.dstFn, v.arrivedFn, failed, nil)
}

// Prefetch is the prefetch-only form of the system call.
func (v *VM) Prefetch(page, n int64) { v.PrefetchRelease(page, n, 0, 0) }

// Release is the release-only form of the system call.
func (v *VM) Release(page, n int64) { v.PrefetchRelease(0, 0, page, n) }

func (v *VM) checkRange(page, n int64) {
	if n == 0 {
		return
	}
	if page < 0 || n < 0 || page+n > v.file.Pages() {
		panic(fmt.Sprintf("vm: hint range [%d,%d) outside address space of %d pages",
			page, page+n, v.file.Pages()))
	}
}

// prefetchOne processes a single page of a prefetch hint and reports
// whether a disk read must be started for it.
func (v *VM) prefetchOne(p int64) bool {
	e := &v.pt[p]
	switch e.state {
	case resident, hot:
		if e.cleaning && e.toFree && !e.front {
			e.toFree = false // cancel a pending daemon eviction
		}
		v.n.prefetchUnneeded++
	case inTransit:
		v.n.prefetchUnneeded++
	case freeListed:
		// The page is in memory but on the free list: reclaiming it is
		// useful work (the paper's footnote), not an unnecessary prefetch.
		v.pool.rescueFromFree(e.frame)
		e.state = resident
		e.prefetched = true
		e.touched = false
		v.n.prefetchRescues++
		v.bitvec.Set(p)
	case unmapped:
		// Hints are non-binding: the OS drops them "if there is not
		// enough physical memory to buffer prefetched data, or if the
		// disk subsystem is overloaded" (§2.2.1). A dropped page's
		// residency bit is cleared so the run-time layer does not
		// believe a stale hint. Injected pressure spikes drop hints
		// through exactly the same path as real pressure. The queue and
		// free-list thresholds are the tenant's class thresholds: lower
		// classes give up earlier, so best-effort prefetches are the
		// first dropped under pressure.
		// The nil check is out here so the fault-free path does not even
		// read the clock to build the call's arguments.
		if v.flt != nil && v.flt.DropPrefetch(v.clock.Now(), p) {
			v.dropPrefetch(e, p)
			return false
		}
		if v.file.QueueLenOf(p) > v.pfQueueMax {
			v.dropPrefetch(e, p)
			return false
		}
		if v.pool.freeCount <= v.pfFreeFloor {
			v.dropPrefetch(e, p)
			return false
		}
		f, ok := v.pool.takeFrame(v, p, true)
		if !ok {
			v.dropPrefetch(e, p)
			return false
		}
		e.frame = f
		e.state = inTransit
		v.inTransitCount++
		v.pool.inTransitCount++
		e.prefetched = true
		e.touched = false
		v.n.prefetchIssued++
		v.bitvec.Set(p)
		return true
	}
	return false
}

// abandonPrefetch reverts an in-flight prefetched page whose disk read
// was permanently abandoned by the file system (retry policy exhausted).
// Hints are non-binding, so this is safe by construction: the page goes
// back to unmapped with its (zero-content) frame returned to the free
// list, and the application's eventual touch takes a normal demand
// fault — which retries the read through the must-not-fail path. The
// pte keeps prefetched=true so that fault classifies as a late
// prefetched fault, like any other prefetch that failed to hide its
// latency. Anyone already stalled on the page wakes from waitIdle (the
// state left inTransit), observes unmapped, and demand-faults.
func (v *VM) abandonPrefetch(page int64) {
	e := &v.pt[page]
	if e.state != inTransit {
		return
	}
	f := e.frame
	e.state = unmapped
	e.frame = -1
	e.touched = false
	e.referenced = false
	// Push while the frame is still mapped so the pool's residency
	// accounting sees the transition, then sever the mapping.
	v.pool.pushFreeBack(f)
	v.pool.frames[f].vpage = -1
	v.inTransitCount--
	v.pool.inTransitCount--
	v.pool.ioGen++
	v.bitvec.Clear(page)
	v.n.prefetchAbandoned++
	v.trFaults.InstantArg("abandoned", "prefetch", v.clock.Now(), "page", page)
}

// dropPrefetch records a non-binding prefetch the OS declined.
func (v *VM) dropPrefetch(e *pte, p int64) {
	v.n.prefetchDropped++
	v.trFaults.InstantArg("dropped", "prefetch", v.clock.Now(), "page", p)
	e.prefetched = true
	v.bitvec.Clear(p)
}

// releaseOne processes a single page of a release hint: clear its
// residency bit and make its frame the next victim, writing it back first
// if dirty.
func (v *VM) releaseOne(p int64) {
	e := &v.pt[p]
	v.n.releasedPages++
	v.bitvec.Clear(p)
	if e.state != resident && e.state != hot {
		return // absent, in flight, or already free-listed: nothing to do
	}
	e.referenced = false
	if e.cleaning {
		e.toFree = true
		e.front = true
		return
	}
	if e.dirty {
		v.startClean(p, true, true)
		return
	}
	e.state = freeListed
	v.pool.pushFreeFront(e.frame)
}

// Preload installs the backing contents of pages [page, page+n) directly
// into frames with no simulated cost, for warm-started experiments. It
// reports how many pages were installed (it stops when memory fills to the
// high watermark).
func (v *VM) Preload(page, n int64) int64 {
	v.checkRange(page, n)
	var loaded int64
	for p := page; p < page+n; p++ {
		if v.pool.freeCount <= v.p.HighWater() {
			break
		}
		e := &v.pt[p]
		if e.state != unmapped {
			loaded++
			continue
		}
		f, ok := v.pool.takeFrame(v, p, true)
		if !ok {
			break
		}
		buf := v.frameWords(f)
		if src := v.file.PeekPage(p); src != nil {
			copy(buf, src)
		} else {
			for i := range buf {
				buf[i] = 0
			}
		}
		e.frame = f
		e.state = hot
		e.touched = true
		e.referenced = true
		v.bitvec.Set(p)
		loaded++
	}
	return loaded
}

// ResetAccounting zeroes the time breakdown, event counters, and the
// free-memory integral. Experiments call it after warm-up so that only the
// timed region is measured.
func (v *VM) ResetAccounting() {
	v.flushUser()
	v.n = tally{}
	v.c.publish(&v.n)
	v.pool.ResetAccounting()
}
