package vm

import (
	"fmt"
	"math/bits"

	"repro/internal/hw"
	"repro/internal/sim"
)

// Pool is the machine's physical memory: the frame table, frame storage,
// free queue, clock hand, and pageout daemon, shared by every address
// space attached to it. A single-tenant run owns a private pool (New and
// NewObserved create one implicitly), which behaves tick-for-tick like
// the pre-pool memory manager. The multi-tenant server attaches many VMs
// to one pool and gives each a residency quota; reclaim then becomes
// fair-share: while any tenant is over its quota, the clock hand passes
// over frames of tenants at or under quota, so under-quota tenants are
// protected and over-quota tenants are reclaimed first. With no quotas
// set (or a single tenant) the protected sweep never engages and the
// pool is byte-identical to the original single-run path.
type Pool struct {
	clock *sim.Clock
	p     hw.Params

	frames []frameInfo
	words  []uint64 // frame storage, Frames() × PageSize/8 words

	// Free queue: a growable ring buffer of frame indices. Entries whose
	// frame has onFree == false are stale and skipped on pop (lazy
	// deletion); the ring grows when stale entries pile up.
	freeQ     []int32
	freeHead  int
	freeTail  int
	freeSlots int   // occupied slots, live + stale
	freeCount int64 // live entries

	hand int32 // clock-algorithm hand over frames

	daemonScheduled bool
	daemonRunFn     func()
	scans           int64 // daemon activations (pool-wide)

	cleaningCount  int64  // write-backs in flight, all tenants
	inTransitCount int64  // reads in flight, all tenants
	ioGen          uint64 // bumped on every I/O completion

	// Time-weighted free-frame integral for Table 3's "% memory free".
	freeIntegral    float64
	lastFreeSample  sim.Time
	accountingStart sim.Time

	vms       []*VM // attached address spaces; index is the tenant id
	overQuota int   // tenants currently over their residency quota

	// Pageout watermarks, computed once at construction. hw.Params derives
	// them with floating-point math on every call, which is far too hot for
	// takeFrame's per-frame path.
	lowWater  int64
	highWater int64
}

// NewPool creates a frame pool of p.Frames() frames with every frame on
// the free list. Attach address spaces to it with Attach.
func NewPool(clock *sim.Clock, p hw.Params) *Pool {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	nf := p.Frames()
	pl := &Pool{
		clock:  clock,
		p:      p,
		frames: make([]frameInfo, nf),
		words:  make([]uint64, nf*(p.PageSize/8)),
		freeQ:  make([]int32, nf+1),
	}
	pl.daemonRunFn = pl.daemonRun
	pl.lowWater = p.LowWater()
	pl.highWater = p.HighWater()
	for i := range pl.frames {
		pl.frames[i].vpage = -1
	}
	for i := int32(0); i < int32(nf); i++ {
		pl.pushFreeBack(i)
	}
	return pl
}

// Clock returns the simulated clock the pool runs on.
func (pl *Pool) Clock() *sim.Clock { return pl.clock }

// Params returns the hardware parameters the pool was built with.
func (pl *Pool) Params() hw.Params { return pl.p }

// Frames returns the pool's capacity in frames.
func (pl *Pool) Frames() int64 { return int64(len(pl.frames)) }

// FreeFrames returns the current number of frames on the free list.
func (pl *Pool) FreeFrames() int64 { return pl.freeCount }

// Tenants returns the attached address spaces in attach order.
func (pl *Pool) Tenants() []*VM { return pl.vms }

// DaemonScans returns the number of pageout-daemon activations
// (pool-wide; with one tenant this is the tenant's count).
func (pl *Pool) DaemonScans() int64 { return pl.scans }

// AvgFreeFrac returns the time-averaged fraction of memory on the free
// list since accounting began (Table 3).
func (pl *Pool) AvgFreeFrac() float64 {
	now := pl.clock.Now()
	elapsed := now - pl.accountingStart
	if elapsed == 0 {
		return float64(pl.freeCount) / float64(len(pl.frames))
	}
	integ := pl.freeIntegral + float64(pl.freeCount)*float64(now-pl.lastFreeSample)
	return integ / (float64(elapsed) * float64(len(pl.frames)))
}

// ResetAccounting zeroes the pool's free-memory integral and daemon-scan
// count (the warm-start path; meaningful for single-tenant pools).
func (pl *Pool) ResetAccounting() {
	pl.freeIntegral = 0
	pl.scans = 0
	pl.lastFreeSample = pl.clock.Now()
	pl.accountingStart = pl.clock.Now()
}

// ---- residency quotas ---------------------------------------------------

// residentInc tracks a frame transitioning into v's resident set,
// maintaining the count of over-quota tenants incrementally.
func (pl *Pool) residentInc(v *VM) {
	v.resident++
	if v.quota > 0 && v.resident == v.quota+1 {
		pl.overQuota++
	}
}

// residentDec is residentInc's inverse.
func (pl *Pool) residentDec(v *VM) {
	if v.quota > 0 && v.resident == v.quota+1 {
		pl.overQuota--
	}
	v.resident--
}

// setQuota installs a tenant's residency quota (0 = unlimited),
// adjusting the over-quota census for the new boundary.
func (pl *Pool) setQuota(v *VM, quota int64) {
	if quota < 0 {
		panic(fmt.Sprintf("vm: negative residency quota %d", quota))
	}
	wasOver := v.overQuota()
	v.quota = quota
	if over := v.overQuota(); over != wasOver {
		if over {
			pl.overQuota++
		} else {
			pl.overQuota--
		}
	}
}

// ---- free-queue bookkeeping ---------------------------------------------

func (pl *Pool) sampleFree() {
	now := pl.clock.Now()
	pl.freeIntegral += float64(pl.freeCount) * float64(now-pl.lastFreeSample)
	pl.lastFreeSample = now
}

func (pl *Pool) pushFreeBack(f int32) {
	fi := &pl.frames[f]
	if fi.onFree {
		return
	}
	if fi.vpage >= 0 {
		pl.residentDec(fi.owner)
	}
	pl.sampleFree()
	pl.growFreeQ()
	fi.onFree = true
	pl.freeQ[pl.freeTail] = f
	pl.freeTail = (pl.freeTail + 1) % len(pl.freeQ)
	pl.freeSlots++
	pl.freeCount++
}

// pushFreeFront puts a frame at the head of the free queue, so it is
// reused first — this is what release does ("a good candidate for
// replacement").
func (pl *Pool) pushFreeFront(f int32) {
	fi := &pl.frames[f]
	if fi.onFree {
		return
	}
	if fi.vpage >= 0 {
		pl.residentDec(fi.owner)
	}
	pl.sampleFree()
	pl.growFreeQ()
	fi.onFree = true
	pl.freeHead = (pl.freeHead - 1 + len(pl.freeQ)) % len(pl.freeQ)
	pl.freeQ[pl.freeHead] = f
	pl.freeSlots++
	pl.freeCount++
}

// growFreeQ makes room for one more entry, compacting stale slots away
// when the ring fills.
func (pl *Pool) growFreeQ() {
	if pl.freeSlots+1 < len(pl.freeQ) {
		return
	}
	live := make([]int32, 0, pl.freeCount)
	for pl.freeHead != pl.freeTail {
		f := pl.freeQ[pl.freeHead]
		pl.freeHead = (pl.freeHead + 1) % len(pl.freeQ)
		if pl.frames[f].onFree {
			live = append(live, f)
		}
	}
	if len(live)+1 >= len(pl.freeQ) {
		pl.freeQ = make([]int32, 2*len(pl.freeQ))
	}
	copy(pl.freeQ, live)
	pl.freeHead = 0
	pl.freeTail = len(live)
	pl.freeSlots = len(live)
}

// popFree removes and returns the next free frame, skipping stale entries.
// It reports false when the free list is empty.
func (pl *Pool) popFree() (int32, bool) {
	for pl.freeHead != pl.freeTail {
		f := pl.freeQ[pl.freeHead]
		pl.freeHead = (pl.freeHead + 1) % len(pl.freeQ)
		pl.freeSlots--
		if pl.frames[f].onFree {
			pl.sampleFree()
			pl.frames[f].onFree = false
			pl.freeCount--
			return f, true
		}
	}
	return 0, false
}

// rescueFromFree takes a specific frame off the free queue (lazy removal).
func (pl *Pool) rescueFromFree(f int32) {
	fi := &pl.frames[f]
	if !fi.onFree {
		panic("vm: rescue of frame not on free list")
	}
	pl.sampleFree()
	fi.onFree = false
	pl.freeCount--
	pl.residentInc(fi.owner)
}

// ---- frame allocation ---------------------------------------------------

// takeFrame obtains a free frame mapping vpage for v, evicting
// synchronously if the free list is empty (the demand-fault path). It
// returns false only in mayFail mode (the prefetch path, where the
// paper's OS simply drops the request when all memory is in use).
func (pl *Pool) takeFrame(v *VM, vpage int64, mayFail bool) (int32, bool) {
	for {
		if f, ok := pl.popFree(); ok {
			fi := &pl.frames[f]
			if old := fi.vpage; old >= 0 {
				fi.owner.invalidate(old)
				v.n.reclaims++
			}
			fi.owner = v
			fi.vpage = vpage
			pl.residentInc(v)
			if pl.freeCount < pl.lowWater {
				pl.kickDaemon()
			}
			return f, true
		}
		if mayFail {
			return 0, false
		}
		pl.syncReclaim(v)
	}
}

// ---- pageout daemon -----------------------------------------------------

// daemonDelay is how soon after a low-water crossing the pageout daemon
// runs, and its re-arm period while it waits for write-backs to finish.
const daemonDelay = 200 * sim.Microsecond

// kickDaemon schedules a pageout-daemon pass if one is not already
// pending.
func (pl *Pool) kickDaemon() {
	if pl.daemonScheduled {
		return
	}
	pl.daemonScheduled = true
	pl.clock.Schedule(daemonDelay, pl.daemonRunFn)
}

// daemonRun is one activation of the pageout daemon: sweep the clock hand,
// giving referenced pages a second chance, moving clean unreferenced pages
// to the free list, and starting write-backs for dirty ones, until the
// free list (plus writes already in flight) reaches the high watermark.
//
// Fair share: while any tenant is over its residency quota, the first
// sweep takes victims only from over-quota tenants (frames of tenants at
// or under quota are passed over without even consuming their reference
// bit). Only if that protected sweep cannot reach the target does a
// second, unprotected sweep run — global memory pressure outranks
// quotas, so the machine never idles to protect a quota.
func (pl *Pool) daemonRun() {
	pl.daemonScheduled = false
	pl.scans++
	target := pl.highWater
	protect := pl.overQuota > 0
	budget := 2 * len(pl.frames)
	for pl.freeCount+pl.cleaningCount < target && budget > 0 {
		budget--
		pl.evictOne(protect)
	}
	if protect && pl.freeCount+pl.cleaningCount < target {
		for budget = 2 * len(pl.frames); pl.freeCount+pl.cleaningCount < target && budget > 0; budget-- {
			pl.evictOne(false)
		}
	}
	if pl.freeCount < pl.lowWater {
		// Still short: either writes are in flight (their completions
		// will refill the list) or everything was referenced; try again
		// shortly in both cases.
		pl.kickDaemon()
	}
}

// evictOne advances the clock hand one frame, applying second chance.
// With protect set, frames of tenants at or under their quota are
// skipped untouched (their reference bits survive), so only over-quota
// tenants lose pages.
func (pl *Pool) evictOne(protect bool) {
	f := pl.hand
	pl.hand++
	if int(pl.hand) == len(pl.frames) {
		pl.hand = 0
	}
	fi := &pl.frames[f]
	if fi.vpage < 0 || fi.onFree {
		return
	}
	o := fi.owner
	if protect && !o.overQuota() {
		return
	}
	e := &o.pt[fi.vpage]
	if (e.state != resident && e.state != hot) || e.cleaning {
		return
	}
	if e.referenced {
		e.referenced = false // second chance
		return
	}
	if e.dirty {
		o.startClean(fi.vpage, true, false)
		return
	}
	e.state = freeListed
	o.bitvec.Clear(fi.vpage)
	pl.pushFreeBack(e.frame)
}

// syncReclaim is the demand-fault path's last resort: the free list is
// empty, so sweep for a victim right now — protected first when quotas
// are in force, then unprotected. If every frame is pinned by in-flight
// I/O (reads filling frames, writes cleaning them), stall until some I/O
// completes and sweep again — a just-arrived prefetched page is a legal
// victim (it simply becomes a prefetched fault later). The stall is
// charged to the faulting tenant v.
func (pl *Pool) syncReclaim(v *VM) {
	for {
		protect := pl.overQuota > 0
		for budget := 2 * len(pl.frames); budget > 0 && pl.freeCount == 0; budget-- {
			pl.evictOne(protect)
		}
		if protect {
			for budget := 2 * len(pl.frames); budget > 0 && pl.freeCount == 0; budget-- {
				pl.evictOne(false)
			}
		}
		if pl.freeCount > 0 {
			return
		}
		if pl.cleaningCount == 0 && pl.inTransitCount == 0 {
			panic("vm: out of memory: no evictable pages and no I/O in flight")
		}
		gen := pl.ioGen
		v.waitIdle("memory-stall", func() bool {
			return pl.freeCount > 0 || pl.ioGen != gen
		})
		if pl.freeCount > 0 {
			return
		}
	}
}

// CheckInvariants verifies the pool-level structural invariants: the
// frame table and the owners' page tables form a bijection over mapped
// frames, free-list accounting agrees with the per-frame flags,
// per-tenant residency counts and the over-quota census match the frame
// table, and the pool's in-flight I/O counts equal the sums of the
// tenants'. It returns the first violation found, or nil.
func (pl *Pool) CheckInvariants() error {
	var onFree, mapped int64
	for fi := range pl.frames {
		f := &pl.frames[fi]
		if f.onFree {
			onFree++
		}
		if f.vpage >= 0 {
			if f.owner == nil {
				return fmt.Errorf("vm: frame %d maps page %d with no owner", fi, f.vpage)
			}
			e := &f.owner.pt[f.vpage]
			if e.frame != int32(fi) {
				return fmt.Errorf("vm: frame %d maps page %d, whose pte points to frame %d", fi, f.vpage, e.frame)
			}
			mapped++
		}
	}
	if onFree != pl.freeCount {
		return fmt.Errorf("vm: freeCount=%d but %d frames flagged onFree", pl.freeCount, onFree)
	}
	if mapped > int64(len(pl.frames)) {
		return fmt.Errorf("vm: more mapped frames (%d) than exist (%d)", mapped, len(pl.frames))
	}

	over := 0
	var transit, cleaning int64
	for _, v := range pl.vms {
		var res int64
		for fi := range pl.frames {
			f := &pl.frames[fi]
			if f.owner == v && f.vpage >= 0 && !f.onFree {
				res++
			}
		}
		if res != v.resident {
			return fmt.Errorf("vm: tenant %d resident=%d but %d frames held", v.tid, v.resident, res)
		}
		if v.overQuota() {
			over++
		}
		transit += v.inTransitCount
		cleaning += v.cleaningCount
	}
	if over != pl.overQuota {
		return fmt.Errorf("vm: overQuota census=%d but %d tenants over quota", pl.overQuota, over)
	}
	if transit != pl.inTransitCount {
		return fmt.Errorf("vm: pool inTransitCount=%d but tenants sum to %d", pl.inTransitCount, transit)
	}
	if cleaning != pl.cleaningCount {
		return fmt.Errorf("vm: pool cleaningCount=%d but tenants sum to %d", pl.cleaningCount, cleaning)
	}
	return nil
}

// wordShiftOf computes the frame-index → word-index shift for a page size.
func wordShiftOf(pageSize int64) uint {
	return uint(bits.TrailingZeros64(uint64(pageSize))) - 3
}
