package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock reads %v, want 0", c.Now())
	}
	if c.Pending() != 0 {
		t.Fatalf("new clock has %d pending events, want 0", c.Pending())
	}
}

func TestAdvanceMovesTime(t *testing.T) {
	c := NewClock()
	c.Advance(5 * Millisecond)
	if got := c.Now(); got != 5*Millisecond {
		t.Fatalf("Now() = %v, want 5ms", got)
	}
	c.Advance(0)
	if got := c.Now(); got != 5*Millisecond {
		t.Fatalf("Now() after zero advance = %v, want 5ms", got)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestScheduleFiresInOrder(t *testing.T) {
	c := NewClock()
	var order []int
	c.Schedule(3*Microsecond, func() { order = append(order, 3) })
	c.Schedule(1*Microsecond, func() { order = append(order, 1) })
	c.Schedule(2*Microsecond, func() { order = append(order, 2) })
	c.Advance(10 * Microsecond)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired in order %v, want [1 2 3]", order)
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(Millisecond, func() { order = append(order, i) })
	}
	c.Advance(Millisecond)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestEventSeesEventTime(t *testing.T) {
	c := NewClock()
	var at Time
	c.Schedule(7*Microsecond, func() { at = c.Now() })
	c.Advance(Second)
	if at != 7*Microsecond {
		t.Fatalf("event observed Now()=%v, want 7µs", at)
	}
}

func TestEventCanScheduleEvent(t *testing.T) {
	c := NewClock()
	var fired []Time
	c.Schedule(Microsecond, func() {
		fired = append(fired, c.Now())
		c.Schedule(Microsecond, func() { fired = append(fired, c.Now()) })
	})
	c.Advance(10 * Microsecond)
	if len(fired) != 2 || fired[0] != Microsecond || fired[1] != 2*Microsecond {
		t.Fatalf("chained events fired at %v, want [1µs 2µs]", fired)
	}
}

func TestAtInPastRunsNow(t *testing.T) {
	c := NewClock()
	c.Advance(Second)
	var at Time = -1
	c.At(Millisecond, func() { at = c.Now() })
	c.Advance(0)
	if at != Second {
		t.Fatalf("past event fired at %v, want current time %v", at, Second)
	}
}

func TestWaitFor(t *testing.T) {
	c := NewClock()
	done := false
	c.Schedule(42*Millisecond, func() { done = true })
	waited := c.WaitFor(func() bool { return done })
	if waited != 42*Millisecond {
		t.Fatalf("WaitFor waited %v, want 42ms", waited)
	}
	if c.Now() != 42*Millisecond {
		t.Fatalf("Now() = %v after WaitFor, want 42ms", c.Now())
	}
}

func TestWaitForImmediate(t *testing.T) {
	c := NewClock()
	if waited := c.WaitFor(func() bool { return true }); waited != 0 {
		t.Fatalf("WaitFor(true) waited %v, want 0", waited)
	}
}

func TestWaitForDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WaitFor with empty queue did not panic")
		}
	}()
	NewClock().WaitFor(func() bool { return false })
}

func TestDrain(t *testing.T) {
	c := NewClock()
	n := 0
	for i := 1; i <= 5; i++ {
		c.Schedule(Time(i)*Millisecond, func() { n++ })
	}
	c.Drain()
	if n != 5 {
		t.Fatalf("Drain ran %d events, want 5", n)
	}
	if c.Now() != 5*Millisecond {
		t.Fatalf("Now() = %v after Drain, want 5ms", c.Now())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{2500, "2.5µs"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, tc := range cases {
		if got := tc.t.String(); got != tc.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(tc.t), got, tc.want)
		}
	}
}

// Property: regardless of the (non-negative) delays chosen, events fire in
// nondecreasing timestamp order and the clock never runs backwards.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		c := NewClock()
		var fired []Time
		for _, d := range delays {
			c.Schedule(Time(d)*Microsecond, func() { fired = append(fired, c.Now()) })
		}
		c.Drain()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: advancing in arbitrary increments reaches the same total.
func TestAdvanceAdditiveProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		c := NewClock()
		var total Time
		for _, s := range steps {
			c.Advance(Time(s))
			total += Time(s)
		}
		return c.Now() == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// An interrupt raised by one event must stop the loop before the next
// event runs (one-event granularity), surfacing as an Interrupted panic
// carrying the check's error.
func TestInterruptStopsWithinOneEvent(t *testing.T) {
	errStop := errors.New("stop")
	for _, drive := range []struct {
		name string
		run  func(c *Clock)
	}{
		{"Drain", func(c *Clock) { c.Drain() }},
		{"AdvanceTo", func(c *Clock) { c.AdvanceTo(100) }},
		{"WaitFor", func(c *Clock) { c.WaitFor(func() bool { return false }) }},
	} {
		t.Run(drive.name, func(t *testing.T) {
			c := NewClock()
			var cause error
			c.SetInterrupt(func() error { return cause })
			var ran []int
			c.Schedule(10, func() { ran = append(ran, 1); cause = errStop })
			c.Schedule(20, func() { ran = append(ran, 2) })
			defer func() {
				r := recover()
				in, ok := r.(Interrupted)
				if !ok {
					t.Fatalf("recovered %v, want Interrupted", r)
				}
				if in.Err != errStop {
					t.Fatalf("Interrupted.Err = %v, want %v", in.Err, errStop)
				}
				if len(ran) != 1 {
					t.Fatalf("events run before interrupt: %v, want exactly the first", ran)
				}
			}()
			drive.run(c)
			t.Fatal("event loop kept going past a pending interrupt")
		})
	}
}

// With no interrupt set, the loop pays nothing and never panics.
func TestNoInterruptIsFree(t *testing.T) {
	c := NewClock()
	n := 0
	for i := 0; i < 10; i++ {
		c.Schedule(Time(i), func() { n++ })
	}
	c.Drain()
	if n != 10 {
		t.Fatalf("ran %d events, want 10", n)
	}
}
