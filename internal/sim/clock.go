// Package sim provides the discrete-event simulation engine that underlies
// the out-of-core prefetching system: a virtual clock measured in
// nanoseconds and an event queue with deterministic ordering.
//
// The engine is deliberately single-threaded. The simulated application
// runs as ordinary Go code that charges compute time to the clock; disk
// completions and daemon activity are events scheduled on the queue. When
// the application must wait (e.g. a page fault), it spins the event queue
// forward until the condition it is waiting for becomes true.
package sim

import "fmt"

// Time is a point in simulated time, in nanoseconds since the start of the
// run. It is a distinct type to keep simulated time from being confused
// with wall-clock durations.
type Time int64

// Common durations, expressed in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.1fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// An event is a closure scheduled to run at a given simulated time. Events
// at the same time run in the order they were scheduled (seq breaks ties),
// which keeps runs fully deterministic.
type event struct {
	when Time
	seq  uint64
	fn   func()
}

// eventHeap is a binary min-heap ordered by (when, seq). It is
// hand-rolled rather than layered on container/heap: that API moves
// every element through interface{}, which boxes each event twice (once
// on Push, once on Pop) — two heap allocations per scheduled event on
// the I/O completion path.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

func (h *eventHeap) pop() event {
	s := *h
	e := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the closure to the GC
	s = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s.less(r, l) {
			m = r
		}
		if !s.less(m, i) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	*h = s
	return e
}

// Interrupted is the value panicked out of the event loop when an
// interrupt check installed with SetInterrupt reports an error. Callers
// that drive a whole run (core.RunContext) recover it and convert it to
// an ordinary error return.
type Interrupted struct{ Err error }

// Clock is the simulated clock plus its pending event queue.
//
// The zero value is ready to use and reads time zero.
type Clock struct {
	now    Time
	seq    uint64
	events eventHeap

	interrupt func() error
	advances  uint // counts AdvanceTo calls for the periodic interrupt poll

	scheduled  int64 // events ever enqueued
	dispatched int64 // events ever run

	// DeadlockInfo, if set, is called to enrich the WaitFor deadlock
	// panic with system state.
	DeadlockInfo func() string
}

// NewClock returns a clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time.
func (c *Clock) Now() Time { return c.now }

// SetInterrupt installs a check that the event loop polls after every
// dispatched event (and periodically while time advances with no events
// due). When the check returns a non-nil error the clock aborts the run
// by panicking with Interrupted{err}; core.RunContext recovers that
// panic into an error return. This is how context cancellation and
// wall-clock timeouts reach a simulated run: the check is ctx.Err, so a
// cancelled run stops within one simulated-event granularity instead of
// draining its event queue. A nil check disables polling.
func (c *Clock) SetInterrupt(check func() error) { c.interrupt = check }

// poll runs the interrupt check, if any.
func (c *Clock) poll() {
	if c.interrupt == nil {
		return
	}
	if err := c.interrupt(); err != nil {
		panic(Interrupted{Err: err})
	}
}

// Pending reports the number of scheduled events that have not yet run.
func (c *Clock) Pending() int { return len(c.events) }

// EventsScheduled reports how many events have ever been enqueued — one
// of the clock's contributions to a run's metrics snapshot.
func (c *Clock) EventsScheduled() int64 { return c.scheduled }

// EventsDispatched reports how many events have ever run.
func (c *Clock) EventsDispatched() int64 { return c.dispatched }

// Schedule arranges for fn to run delay nanoseconds from now. A negative
// delay is treated as zero. Events never run re-entrantly: they fire only
// from Advance, AdvanceTo, or WaitFor.
func (c *Clock) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	c.At(c.now+delay, fn)
}

// At arranges for fn to run at absolute time t (or now, if t is in the
// past).
func (c *Clock) At(t Time, fn func()) {
	if t < c.now {
		t = c.now
	}
	c.seq++
	c.scheduled++
	c.events.push(event{when: t, seq: c.seq, fn: fn})
}

// Advance moves simulated time forward by d, firing any events that come
// due along the way, in timestamp order.
func (c *Clock) Advance(d Time) {
	if d < 0 {
		panic("sim: negative advance")
	}
	c.AdvanceTo(c.now + d)
}

// AdvanceTo moves simulated time forward to t, firing due events in order.
// It is a no-op if t is not in the future.
func (c *Clock) AdvanceTo(t Time) {
	if c.interrupt != nil {
		// Compute-heavy stretches can advance time many times without a
		// single event coming due; poll periodically so cancellation
		// still lands promptly there.
		c.advances++
		if c.advances&255 == 0 {
			c.poll()
		}
	}
	for len(c.events) > 0 && c.events[0].when <= t {
		e := c.events.pop()
		c.now = e.when
		c.dispatched++
		e.fn()
		c.poll()
	}
	if t > c.now {
		c.now = t
	}
}

// WaitFor runs events until cond reports true, returning the amount of
// simulated time that passed. It panics if the event queue drains with the
// condition still false, since the simulated system would then be
// deadlocked.
func (c *Clock) WaitFor(cond func() bool) Time {
	start := c.now
	for !cond() {
		if len(c.events) == 0 {
			msg := "sim: deadlock: waiting with no pending events"
			if c.DeadlockInfo != nil {
				msg += "\n" + c.DeadlockInfo()
			}
			panic(msg)
		}
		e := c.events.pop()
		c.now = e.when
		c.dispatched++
		e.fn()
		c.poll()
	}
	return c.now - start
}

// Drain runs all remaining events in order, returning when the queue is
// empty.
func (c *Clock) Drain() {
	for len(c.events) > 0 {
		e := c.events.pop()
		c.now = e.when
		c.dispatched++
		e.fn()
		c.poll()
	}
}
