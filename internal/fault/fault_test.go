package fault

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Same (profile, seed) and the same decision sequence must yield the
// same verdict sequence — the determinism everything else builds on.
func TestInjectorDeterministic(t *testing.T) {
	prof, _ := ProfileByName("chaos")
	prof.Seed = 42
	draw := func() []Verdict {
		inj := NewInjector(prof, nil, nil)
		var out []Verdict
		now := sim.Time(0)
		for k := 0; k < 500; k++ {
			out = append(out, inj.Attempt(k%7, k%3 == 0, now))
			if inj.DropPrefetch(now, int64(k)) {
				out = append(out, Verdict{Fail: true})
			}
			now += 3 * sim.Millisecond
		}
		return out
	}
	a, b := draw(), draw()
	if len(a) != len(b) {
		t.Fatalf("draw lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// Different seeds must (overwhelmingly) produce different schedules.
func TestInjectorSeedMatters(t *testing.T) {
	prof, _ := ProfileByName("flaky")
	fails := func(seed uint64) (n int) {
		p := prof
		p.Seed = seed
		inj := NewInjector(p, nil, nil)
		for k := 0; k < 2000; k++ {
			if inj.Attempt(0, false, 0).Fail {
				n++
			}
		}
		return
	}
	if fails(1) == 0 || fails(2) == 0 {
		t.Fatal("flaky profile injected nothing")
	}
	// The counts coincide with probability ~0; the exact schedules never do.
	p1, p2 := prof, prof
	p1.Seed, p2.Seed = 1, 2
	i1, i2 := NewInjector(p1, nil, nil), NewInjector(p2, nil, nil)
	same := true
	for k := 0; k < 256; k++ {
		if i1.Attempt(0, false, 0).Fail != i2.Attempt(0, false, 0).Fail {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 256-attempt schedules")
	}
}

// A nil injector injects nothing and never slows anything down.
func TestNilInjectorIsInert(t *testing.T) {
	var inj *Injector
	v := inj.Attempt(3, true, 5*sim.Second)
	if v.Fail || v.Slow != 1 {
		t.Fatalf("nil injector verdict %+v", v)
	}
	if inj.DropPrefetch(0, 9) {
		t.Fatal("nil injector dropped a prefetch")
	}
	if inj.Counts().Total() != 0 {
		t.Fatal("nil injector counted injections")
	}
	if inj.Retry() != DefaultRetryPolicy().Normalized() {
		t.Fatal("nil injector retry policy not the default")
	}
}

// Brownout windows are periodic per disk, phase-staggered by seed, and
// recover (the disk is available outside the window).
func TestBrownoutWindows(t *testing.T) {
	prof := Profile{
		Name:             "b",
		Seed:             7,
		BrownoutPeriod:   100 * sim.Millisecond,
		BrownoutDuration: 20 * sim.Millisecond,
	}
	inj := NewInjector(prof, nil, nil)
	for d := 0; d < 4; d++ {
		var down sim.Time
		for ts := sim.Time(0); ts < 100*sim.Millisecond; ts += sim.Millisecond {
			if inj.brownedOut(d, ts) {
				down += sim.Millisecond
			}
			// Periodicity: the window repeats exactly one period later.
			if inj.brownedOut(d, ts) != inj.brownedOut(d, ts+prof.BrownoutPeriod) {
				t.Fatalf("disk %d window not periodic at %v", d, ts)
			}
		}
		if down != 20*sim.Millisecond {
			t.Fatalf("disk %d down %v of each period, want 20ms", d, down)
		}
	}
	// Attempts inside a window fail and are counted.
	var hit bool
	for ts := sim.Time(0); ts < 100*sim.Millisecond; ts += sim.Millisecond {
		if inj.brownedOut(0, ts) {
			if v := inj.Attempt(0, false, ts); !v.Fail {
				t.Fatal("attempt inside brownout window did not fail")
			}
			hit = true
			break
		}
	}
	if !hit || inj.Counts().BrownoutFailures == 0 {
		t.Fatal("no brownout failure recorded")
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{BackoffBase: sim.Millisecond, BackoffMax: 4 * sim.Millisecond}.Normalized()
	want := []sim.Time{sim.Millisecond, 2 * sim.Millisecond, 4 * sim.Millisecond, 4 * sim.Millisecond}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	d := RetryPolicy{}.Normalized()
	if d != DefaultRetryPolicy() {
		t.Fatalf("zero policy normalizes to %+v, want defaults %+v", d, DefaultRetryPolicy())
	}
}

func TestParseSpec(t *testing.T) {
	for _, tc := range []struct {
		spec    string
		want    string
		seed    uint64
		wantErr bool
	}{
		{spec: "brownout", want: "brownout"},
		{spec: "profile=chaos,seed=7", want: "chaos", seed: 7},
		{spec: "seed=9,profile=flaky", want: "flaky", seed: 9},
		{spec: "", want: "none"},
		{spec: "profile=nope", wantErr: true},
		{spec: "seed=x", wantErr: true},
		{spec: "frob=1", wantErr: true},
	} {
		p, err := ParseSpec(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Fatalf("ParseSpec(%q) succeeded, want error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.spec, err)
		}
		if p.Name != tc.want || p.Seed != tc.seed {
			t.Fatalf("ParseSpec(%q) = %q seed %d, want %q seed %d", tc.spec, p.Name, p.Seed, tc.want, tc.seed)
		}
	}
}

func TestProfileValidate(t *testing.T) {
	bad := []Profile{
		{ReadErrorRate: 0.99},
		{WriteErrorRate: -0.1},
		{SlowRate: 0.5, SlowFactor: 0.5},
		{BrownoutPeriod: sim.Millisecond},
		{BrownoutPeriod: sim.Millisecond, BrownoutDuration: 2 * sim.Millisecond},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("profile %d validated: %+v", i, p)
		}
	}
	for _, name := range ProfileNames() {
		p, ok := ProfileByName(name)
		if !ok {
			t.Fatalf("named profile %q missing", name)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("named profile %q invalid: %v", name, err)
		}
		if (name == "none") == p.Enabled() {
			t.Fatalf("profile %q Enabled() = %v", name, p.Enabled())
		}
	}
}

// The injector's counters publish into the registry on Counts().
func TestInjectorPublishesCounters(t *testing.T) {
	reg := obs.NewRegistry()
	prof, _ := ProfileByName("flaky")
	inj := NewInjector(prof, reg, nil)
	for k := 0; k < 300; k++ {
		inj.Attempt(0, k%2 == 0, 0)
	}
	n := inj.Counts()
	if n.ReadErrors == 0 || n.WriteErrors == 0 {
		t.Fatalf("flaky profile injected nothing over 300 attempts: %+v", n)
	}
	snap := reg.Snapshot()
	if snap.Counters["fault.read_errors"] != n.ReadErrors ||
		snap.Counters["fault.write_errors"] != n.WriteErrors {
		t.Fatalf("registry %v does not match counts %+v", snap.Counters, n)
	}
}
