package fault_test

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fault/harness"
	"repro/internal/hw"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/nas"
	"repro/internal/sim"
)

// fuzzKernelSrc is a small out-of-core kernel (128 KB of data on a
// 64 KB machine): big enough to page, prefetch, write back, and brown
// out; small enough that one run is a few milliseconds of wall clock.
const fuzzKernelSrc = `
program fuzzkernel
param n = 1 << 13
array double a[n]
array double b[n]
scalar double s
for i = 0 .. n {
    a[i] = a[i] + b[i]
}
for i = 0 .. n {
    s = s + a[i]
}
`

var fuzzGolden struct {
	once sync.Once
	k    harness.Kernel
	sum  uint64
	err  error
}

// fuzzKernel returns the shared kernel and its fault-free golden
// fingerprint, computed once per test process.
func fuzzKernel(t *testing.T) (harness.Kernel, uint64) {
	t.Helper()
	fuzzGolden.once.Do(func() {
		build := func() *ir.Program {
			p, err := lang.Parse(fuzzKernelSrc)
			if err != nil {
				panic(err)
			}
			return p
		}
		prog := build()
		ps := hw.Default().PageSize
		if err := prog.Resolve(ps); err != nil {
			fuzzGolden.err = err
			return
		}
		cfg := core.DefaultConfig(core.MachineFor(nas.DataBytes(prog, ps), 2))
		fuzzGolden.k = harness.Kernel{Name: "fuzzkernel", Build: build, Cfg: cfg}
		_, fuzzGolden.sum, fuzzGolden.err = harness.Run(fuzzGolden.k, nil)
	})
	if fuzzGolden.err != nil {
		t.Fatal(fuzzGolden.err)
	}
	return fuzzGolden.k, fuzzGolden.sum
}

// clampRate folds an arbitrary fuzzed float into a valid fault rate.
func clampRate(x float64) float64 {
	if math.IsNaN(x) || x < 0 {
		return 0
	}
	if x > fault.MaxRate {
		return fault.MaxRate
	}
	return x
}

// FuzzFaultSchedule feeds arbitrary fault schedules — any combination of
// error rates, latency spikes, drop rates, brownout geometry, and retry
// policy — into a small kernel run, asserting the run terminates, does
// not panic, and produces byte-identical output to the fault-free run.
// Inputs are folded into the profile's valid domain (every valid
// schedule must preserve results; invalid ones are rejected by Validate,
// which has its own unit tests).
func FuzzFaultSchedule(f *testing.F) {
	f.Add(uint64(1), 0.3, 0.0, 0.0, 1.0, 0.0, int64(0), int64(0), uint8(0), uint8(0))
	f.Add(uint64(2), 0.0, 0.3, 0.0, 1.0, 0.0, int64(0), int64(0), uint8(3), uint8(10))
	f.Add(uint64(3), 0.0, 0.0, 0.5, 12.0, 0.0, int64(0), int64(0), uint8(0), uint8(0))
	f.Add(uint64(4), 0.0, 0.0, 0.0, 1.0, 0.6, int64(0), int64(0), uint8(0), uint8(0))
	f.Add(uint64(5), 0.0, 0.0, 0.0, 1.0, 0.0, int64(40*sim.Millisecond), int64(10*sim.Millisecond), uint8(2), uint8(30))
	f.Add(uint64(6), 0.9, 0.9, 0.9, 16.0, 0.9, int64(25*sim.Millisecond), int64(24*sim.Millisecond), uint8(1), uint8(1))

	f.Fuzz(func(t *testing.T, seed uint64, rerr, werr, slowR, slowF, drop float64,
		bper, bdur int64, attempts, timeoutMs uint8) {
		prof := fault.Profile{
			Name:           "fuzz",
			Seed:           seed,
			ReadErrorRate:  clampRate(rerr),
			WriteErrorRate: clampRate(werr),
			SlowRate:       clampRate(slowR),
			DropRate:       clampRate(drop),
			Retry: fault.RetryPolicy{
				MaxAttempts: int(attempts % 8),
				Timeout:     sim.Time(timeoutMs%100) * sim.Millisecond,
			},
		}
		if prof.SlowRate > 0 {
			if math.IsNaN(slowF) || slowF < 1 {
				slowF = 1
			}
			if slowF > 32 {
				slowF = 32
			}
			prof.SlowFactor = slowF
		}
		// Brownout geometry: fold the period into (0, 50ms] and the
		// duration strictly below it, or disable both.
		if bper < 0 {
			bper = -bper
		}
		if bper > 0 {
			period := sim.Time(bper)%(50*sim.Millisecond) + 1
			if bdur < 0 {
				bdur = -bdur
			}
			dur := sim.Time(bdur) % period
			if dur > 0 {
				prof.BrownoutPeriod, prof.BrownoutDuration = period, dur
			}
		}
		if err := prof.Validate(); err != nil {
			t.Fatalf("folded profile must validate: %v (%+v)", err, prof)
		}

		k, golden := fuzzKernel(t)
		if !prof.Enabled() {
			// Nothing to inject; the golden already covers this run.
			return
		}
		if _, err := harness.CheckAgainst(k, prof, nil, golden); err != nil {
			t.Fatal(err)
		}
	})
}
