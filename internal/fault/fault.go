// Package fault is the deterministic fault-injection plane of the
// simulated platform. The paper's central guarantee is that prefetch and
// release hints are *non-binding*: dropped prefetches, memory pressure,
// slow disks, and transient I/O errors may change a run's timing but
// never its results (§3.2). This package makes those failure modes
// injectable so the guarantee is an executable property instead of
// prose.
//
// Everything is deterministic. Random decisions (transient errors,
// latency spikes, prefetch drops) are drawn from seeded splitmix64
// streams — one per storage device plus one for the memory system — so a
// given (profile, seed) always produces the same fault schedule for the
// same request sequence. Brownouts are pure functions of simulated time,
// with seed-staggered phase per device. No wall-clock state is consulted
// anywhere, so faulted runs replay exactly under sim.Clock.
//
// The layers consume the injector as follows: each storage backend asks
// Attempt before servicing a request (transient error / latency
// multiplier / brownout), keyed by its device ID, and applies the
// bounded RetryPolicy on failure; stripefs decides what a permanent
// per-request failure means per request kind (requeue demand reads and
// write-backs, abandon prefetches); and the VM asks DropPrefetch to
// model synthetic memory-pressure spikes. A nil *Injector is valid
// everywhere and injects nothing at the cost of one nil check per
// decision point.
//
// The fault model is tier-oblivious, but its physical reading follows
// the backend consuming it: on the disk tier an Attempt verdict is a
// media error or a whole-disk brownout, on the far-memory tier the
// device asks once per network round trip, so error rates are link
// losses and brownout windows are network partitions failing whole
// batches.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
)

// MaxRate caps every per-attempt probability so that retries terminate:
// with failure probability strictly below one, a retried request succeeds
// in bounded expected time, and deterministically for any fixed seed.
const MaxRate = 0.95

// RetryPolicy bounds how a disk retries a failing request. All delays are
// simulated time, so retry schedules are fully deterministic.
type RetryPolicy struct {
	// MaxAttempts is the total number of service attempts per submitted
	// request (first try included); <= 0 means the default (4).
	MaxAttempts int
	// BackoffBase is the delay before the first retry; it doubles each
	// further retry. <= 0 means the default (500µs).
	BackoffBase sim.Time
	// BackoffMax caps the exponential backoff; <= 0 means the default
	// (8ms).
	BackoffMax sim.Time
	// Timeout bounds the total simulated time a request may spend in
	// service across attempts and backoffs; a retry that would start
	// after the budget instead fails the request permanently. <= 0 means
	// the default (60ms).
	Timeout sim.Time
}

// DefaultRetryPolicy returns the retry policy used when a profile leaves
// its Retry field zero.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BackoffBase: 500 * sim.Microsecond,
		BackoffMax:  8 * sim.Millisecond,
		Timeout:     60 * sim.Millisecond,
	}
}

// Normalized returns the policy with zero fields replaced by defaults.
func (p RetryPolicy) Normalized() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = d.BackoffBase
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = d.BackoffMax
	}
	if p.Timeout <= 0 {
		p.Timeout = d.Timeout
	}
	return p
}

// Backoff returns the delay before retrying after the given failed
// attempt (1-based): BackoffBase doubling per attempt, capped at
// BackoffMax.
func (p RetryPolicy) Backoff(attempt int) sim.Time {
	b := p.BackoffBase
	for i := 1; i < attempt && b < p.BackoffMax; i++ {
		b *= 2
	}
	if b > p.BackoffMax {
		b = p.BackoffMax
	}
	return b
}

// Profile describes one fault workload. The zero value injects nothing.
type Profile struct {
	// Name labels the profile in metrics and test output.
	Name string
	// Seed selects the deterministic fault schedule. Two runs of the
	// same program under the same profile and seed inject identical
	// faults.
	Seed uint64

	// ReadErrorRate and WriteErrorRate are the per-attempt probabilities
	// that a device read or write attempt fails transiently (capped at
	// MaxRate so retries terminate). On the far-memory tier an attempt is
	// one network round trip, so these are link-loss rates.
	ReadErrorRate  float64
	WriteErrorRate float64

	// SlowRate is the per-attempt probability of a latency spike, which
	// multiplies the attempt's positional service time by SlowFactor
	// (the slow-disk model).
	SlowRate   float64
	SlowFactor float64

	// DropRate is the probability that the OS drops an otherwise
	// acceptable prefetch hint — a synthetic memory-pressure spike.
	// Non-binding hints make this safe by design.
	DropRate float64

	// BrownoutPeriod/BrownoutDuration switch every device into a
	// periodic whole-device outage: each device is unavailable for
	// Duration out of every Period, with a seed-derived phase offset per
	// device so the array browns out staggered, not in lockstep. On the
	// far-memory tier a window is a network partition: every round trip
	// inside it fails. Zero disables.
	BrownoutPeriod   sim.Time
	BrownoutDuration sim.Time

	// Retry overrides the devices' retry policy; zero fields take
	// defaults.
	Retry RetryPolicy
}

// Enabled reports whether the profile injects any fault at all.
func (p Profile) Enabled() bool {
	return p.ReadErrorRate > 0 || p.WriteErrorRate > 0 ||
		p.SlowRate > 0 || p.DropRate > 0 ||
		(p.BrownoutPeriod > 0 && p.BrownoutDuration > 0)
}

// Validate checks the profile for internal consistency.
func (p Profile) Validate() error {
	checkRate := func(name string, v float64) error {
		if v < 0 || v > MaxRate {
			return fmt.Errorf("fault: %s %g outside [0, %g]", name, v, MaxRate)
		}
		return nil
	}
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"read error rate", p.ReadErrorRate},
		{"write error rate", p.WriteErrorRate},
		{"slowdown rate", p.SlowRate},
		{"prefetch drop rate", p.DropRate},
	} {
		if err := checkRate(r.name, r.v); err != nil {
			return err
		}
	}
	if p.SlowRate > 0 && p.SlowFactor < 1 {
		return fmt.Errorf("fault: slow factor %g must be >= 1", p.SlowFactor)
	}
	if p.BrownoutDuration > 0 || p.BrownoutPeriod > 0 {
		if p.BrownoutPeriod <= 0 || p.BrownoutDuration <= 0 {
			return fmt.Errorf("fault: brownout needs both period (%v) and duration (%v)", p.BrownoutPeriod, p.BrownoutDuration)
		}
		if p.BrownoutDuration >= p.BrownoutPeriod {
			return fmt.Errorf("fault: brownout duration %v must be below period %v (disks must recover)",
				p.BrownoutDuration, p.BrownoutPeriod)
		}
	}
	return nil
}

// profiles are the named fault workloads the CLI and the test harness
// use. "none" is the explicit zero profile.
var profiles = map[string]Profile{
	"none": {Name: "none"},
	"flaky": {
		Name:           "flaky",
		ReadErrorRate:  0.08,
		WriteErrorRate: 0.08,
	},
	"slow": {
		Name:       "slow",
		SlowRate:   0.25,
		SlowFactor: 8,
	},
	"pressure": {
		Name:     "pressure",
		DropRate: 0.35,
	},
	"brownout": {
		Name:             "brownout",
		BrownoutPeriod:   150 * sim.Millisecond,
		BrownoutDuration: 30 * sim.Millisecond,
	},
	"chaos": {
		Name:             "chaos",
		ReadErrorRate:    0.05,
		WriteErrorRate:   0.05,
		SlowRate:         0.10,
		SlowFactor:       6,
		DropRate:         0.15,
		BrownoutPeriod:   200 * sim.Millisecond,
		BrownoutDuration: 25 * sim.Millisecond,
	},
}

// ProfileByName returns a named fault profile (none, flaky, slow,
// pressure, brownout, chaos).
func ProfileByName(name string) (Profile, bool) {
	p, ok := profiles[name]
	return p, ok
}

// ProfileNames returns the available profile names, sorted.
func ProfileNames() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseSpec parses a CLI fault specification: comma-separated key=value
// pairs among "profile=<name>" and "seed=<N>", with a bare name accepted
// as shorthand for profile=<name> ("brownout", "profile=chaos,seed=7").
func ParseSpec(spec string) (Profile, error) {
	p := Profile{Name: "none"}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, found := strings.Cut(part, "=")
		if !found {
			key, val = "profile", key
		}
		switch key {
		case "profile":
			base, okName := ProfileByName(val)
			if !okName {
				return Profile{}, fmt.Errorf("fault: unknown profile %q (want one of %s)",
					val, strings.Join(ProfileNames(), ", "))
			}
			seed := p.Seed
			p = base
			p.Seed = seed
		case "seed":
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Profile{}, fmt.Errorf("fault: bad seed %q: %v", val, err)
			}
			p.Seed = n
		default:
			return Profile{}, fmt.Errorf("fault: unknown spec key %q (want profile or seed)", key)
		}
	}
	return p, nil
}

// Counts tallies what an injector actually injected over a run. The
// fault-free run of any profile named "none" reports all zeros.
type Counts struct {
	ReadErrors       int64 // transient read-attempt failures
	WriteErrors      int64 // transient write-attempt failures
	Slowdowns        int64 // latency-spiked attempts
	BrownoutFailures int64 // attempts failed inside a brownout window
	PrefetchDrops    int64 // prefetch hints dropped under synthetic pressure
}

// Total returns the sum of all injected-fault counts.
func (c Counts) Total() int64 {
	return c.ReadErrors + c.WriteErrors + c.Slowdowns + c.BrownoutFailures + c.PrefetchDrops
}

// counters holds the injector's metrics-registry handles ("fault.*").
// The injector is the sole writer of these names in its run's registry,
// so publish may use absolute stores.
type counters struct {
	readErrors, writeErrors, slowdowns, brownouts, drops *obs.Counter
}

func (c *counters) publish(n *Counts) {
	c.readErrors.Store(n.ReadErrors)
	c.writeErrors.Store(n.WriteErrors)
	c.slowdowns.Store(n.Slowdowns)
	c.brownouts.Store(n.BrownoutFailures)
	c.drops.Store(n.PrefetchDrops)
}

// Verdict is the injector's decision about one disk service attempt.
type Verdict struct {
	// Fail marks the attempt a transient failure: the disk consumes the
	// attempt's service time and then applies its retry policy.
	Fail bool
	// Slow multiplies the attempt's positional service time; it is 1
	// when no latency spike was injected.
	Slow float64
}

// Injector is one run's fault plane. It is driven by the run's single
// simulator goroutine, like the disks and the VM, so its accounting uses
// plain fields published to the registry on view reads. All methods are
// safe on a nil receiver and then inject nothing.
type Injector struct {
	prof  Profile
	retry RetryPolicy

	devStreams []stream // per-device decision streams, grown on demand
	vmStream   stream   // prefetch-drop decisions

	n     Counts
	c     counters
	track *obs.Track // injected-fault instants; nil when tracing is off
}

// NewInjector builds an injector for one run. Counters register in reg
// as "fault.*" (nil gets a private registry); injected faults become
// instants on track (nil disables). The profile must Validate.
func NewInjector(p Profile, reg *obs.Registry, track *obs.Track) *Injector {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Injector{
		prof:     p,
		retry:    p.Retry.Normalized(),
		vmStream: newStream(p.Seed, ^uint64(0)),
		c: counters{
			readErrors:  reg.Counter("fault.read_errors"),
			writeErrors: reg.Counter("fault.write_errors"),
			slowdowns:   reg.Counter("fault.slowdowns"),
			brownouts:   reg.Counter("fault.brownout_failures"),
			drops:       reg.Counter("fault.prefetch_drops"),
		},
		track: track,
	}
}

// Profile returns the profile the injector was built with (zero on nil).
func (i *Injector) Profile() Profile {
	if i == nil {
		return Profile{}
	}
	return i.prof
}

// Retry returns the disks' normalized retry policy. On a nil injector it
// returns the defaults, which are inert without failures to retry.
func (i *Injector) Retry() RetryPolicy {
	if i == nil {
		return DefaultRetryPolicy()
	}
	return i.retry
}

// Counts returns a snapshot of the injected-fault tallies, publishing
// them into the metrics registry as a side effect (zero on nil).
func (i *Injector) Counts() Counts {
	if i == nil {
		return Counts{}
	}
	i.c.publish(&i.n)
	return i.n
}

// devStream returns device d's decision stream, creating streams lazily.
func (i *Injector) devStream(d int) *stream {
	for len(i.devStreams) <= d {
		i.devStreams = append(i.devStreams, newStream(i.prof.Seed, uint64(len(i.devStreams))))
	}
	return &i.devStreams[d]
}

// brownedOut reports whether disk d is inside a brownout window at now.
// It is a pure function of (profile, seed, disk, time): each disk's
// window has a seed-derived phase offset within the period.
func (i *Injector) brownedOut(d int, now sim.Time) bool {
	p := i.prof
	if p.BrownoutPeriod <= 0 || p.BrownoutDuration <= 0 {
		return false
	}
	off := sim.Time(mix(p.Seed, uint64(d), 0xb12f) % uint64(p.BrownoutPeriod))
	return (now+off)%p.BrownoutPeriod < p.BrownoutDuration
}

// Attempt decides the fate of one disk service attempt: a brownout or
// transient failure (Fail), a latency spike (Slow > 1), or a clean pass.
// Decisions draw from disk d's private stream, so one disk's request
// sequence determines its fault sequence independently of its siblings.
func (i *Injector) Attempt(d int, write bool, now sim.Time) Verdict {
	if i == nil {
		return Verdict{Slow: 1}
	}
	v := Verdict{Slow: 1}
	if i.brownedOut(d, now) {
		i.n.BrownoutFailures++
		v.Fail = true
		i.track.InstantArg("brownout", "fault", now, "disk", int64(d))
		return v
	}
	s := i.devStream(d)
	rate := i.prof.ReadErrorRate
	name := "read-error"
	if write {
		rate, name = i.prof.WriteErrorRate, "write-error"
	}
	if s.chance(rate) {
		if write {
			i.n.WriteErrors++
		} else {
			i.n.ReadErrors++
		}
		v.Fail = true
		i.track.InstantArg(name, "fault", now, "disk", int64(d))
		return v
	}
	if i.prof.SlowRate > 0 && s.chance(i.prof.SlowRate) {
		i.n.Slowdowns++
		v.Slow = i.prof.SlowFactor
		i.track.InstantArg("slowdown", "fault", now, "disk", int64(d))
	}
	return v
}

// DropPrefetch decides whether a synthetic memory-pressure spike drops
// an otherwise acceptable prefetch hint for the given page.
func (i *Injector) DropPrefetch(now sim.Time, page int64) bool {
	if i == nil || i.prof.DropRate <= 0 {
		return false
	}
	if !i.vmStream.chance(i.prof.DropRate) {
		return false
	}
	i.n.PrefetchDrops++
	i.track.InstantArg("pressure-drop", "fault", now, "page", page)
	return true
}

// ---- deterministic PRNG -------------------------------------------------

// stream is a splitmix64 sequence. Distinct streams for distinct
// consumers keep one consumer's decision sequence independent of how its
// siblings interleave.
type stream struct{ s uint64 }

// newStream derives an independent stream from (seed, lane).
func newStream(seed, lane uint64) stream {
	return stream{s: mix(seed, lane, 0x5eed)}
}

// next returns the next 64-bit value of the stream.
func (r *stream) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chance reports true with probability p, consuming one draw. p <= 0
// consumes nothing (the common zero-rate fast path).
func (r *stream) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(r.next()>>11)/(1<<53) < p
}

// mix hashes a few words into one, for stream derivation and brownout
// phases.
func mix(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}
