package harness

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/nas"
	"repro/internal/stripefs"
)

// matrixProfiles are the seeded fault workloads of the property matrix,
// one per injectable fault family plus the everything-at-once profile.
var matrixProfiles = []string{"flaky", "slow", "pressure", "brownout", "chaos"}

// matrixApps picks the NAS proxies of the property matrix: six kernels
// spanning the paper's access patterns (bucket sort, sparse CG, embar,
// multigrid, the two dense solvers' representative, and FFT's
// out-of-core transpose).
func matrixApps() []*nas.App {
	pick := map[string]bool{"BUK": true, "CGM": true, "EMBAR": true,
		"MGRID": true, "APPLU": true, "FFT": true}
	var out []*nas.App
	for _, a := range nas.Apps() {
		if pick[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// TestNASMatrixByteIdentical is the property matrix of ISSUE 4: each
// kernel runs fault-free once (the golden), then once per seeded
// profile; every faulted run must fingerprint identically to the
// golden, pass the app's reference check, and leave the VM invariants
// intact. The aggressive profiles must also demonstrably inject — a
// matrix that never fires proves nothing.
func TestNASMatrixByteIdentical(t *testing.T) {
	apps := matrixApps()
	profiles := matrixProfiles
	if testing.Short() {
		apps = apps[:2]
		profiles = []string{"flaky", "chaos"}
	}
	for ai, app := range apps {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			k, err := App(app, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			clean, cleanSum, err := Run(k, nil)
			if err != nil {
				t.Fatal(err)
			}
			if n := clean.Faults.Total(); n != 0 {
				t.Fatalf("fault-free golden injected %d faults", n)
			}
			for pi, name := range profiles {
				prof, ok := fault.ProfileByName(name)
				if !ok {
					t.Fatalf("unknown profile %q", name)
				}
				prof.Seed = uint64(1 + 100*ai + pi)
				t.Run(name, func(t *testing.T) {
					rep, err := CheckAgainst(k, prof, clean, cleanSum)
					if err != nil {
						t.Fatal(err)
					}
					if rep.Faulted.Faults.Total() == 0 {
						t.Fatalf("profile %q seed %d injected nothing — vacuous pass", name, prof.Seed)
					}
				})
			}
		})
	}
}

// exampleSeed seeds the examples/kernels corpus the way the root-level
// corpus test does: deterministic float inputs, and bounded non-negative
// values for the one index array ("sample") so gathers stay in range.
func exampleSeed(prog *ir.Program, file *stripefs.File, pageSize int64) {
	f64 := map[string]func(int64) float64{
		"A": func(i int64) float64 { return float64(i%11) / 3 },
		"B": func(i int64) float64 { return float64(i%7) / 5 },
		"x": func(i int64) float64 { return float64(i % 5) },
	}
	i64 := map[string]func(int64) int64{
		"sample": func(i int64) int64 { return (i*2654435761 + 7) & ((1 << 30) - 1) },
	}
	for name, gen := range f64 {
		if a := prog.ArrayByName(name); a != nil {
			exec.SeedF64(file, pageSize, a, gen)
		}
	}
	for name, gen := range i64 {
		if a := prog.ArrayByName(name); a != nil {
			exec.SeedI64(file, pageSize, a, gen)
		}
	}
}

// TestExampleKernelsByteIdentical runs every example kernel under the
// everything-at-once chaos profile and the brownout profile, asserting
// byte-identical output versus the fault-free run ("every example
// kernel and NAS proxy", acceptance criterion 3).
func TestExampleKernelsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("example corpus covered at full length only")
	}
	files, err := filepath.Glob("../../../examples/kernels/*.loop")
	if err != nil || len(files) == 0 {
		t.Fatalf("no kernel corpus found: %v", err)
	}
	for fi, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			build := func() *ir.Program {
				p, err := lang.Parse(string(src))
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				return p
			}
			prog := build()
			ps := hw.Default().PageSize
			if err := prog.Resolve(ps); err != nil {
				t.Fatal(err)
			}
			cfg := core.DefaultConfig(core.MachineFor(nas.DataBytes(prog, ps), 2))
			cfg.Seed = exampleSeed
			k := Kernel{Name: filepath.Base(path), Build: build, Cfg: cfg}
			clean, cleanSum, err := Run(k, nil)
			if err != nil {
				t.Fatal(err)
			}
			for pi, name := range []string{"chaos", "brownout"} {
				prof, _ := fault.ProfileByName(name)
				prof.Seed = uint64(1 + 10*fi + pi)
				if _, err := CheckAgainst(k, prof, clean, cleanSum); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestFingerprintSeesEveryWord guards the harness itself: a fingerprint
// that ignored part of the address space would pass divergent runs.
func TestFingerprintSeesEveryWord(t *testing.T) {
	src := `
program tiny
param n = 1 << 10
array double a[n]
for i = 0 .. n {
    a[i] = 1
}
`
	build := func() *ir.Program {
		p, err := lang.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	prog := build()
	ps := hw.Default().PageSize
	if err := prog.Resolve(ps); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(core.MachineFor(nas.DataBytes(prog, ps), 2))
	k := Kernel{Name: "tiny", Build: build, Cfg: cfg}
	res, sum, err := Run(k, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one word anywhere in the space: the fingerprint must move.
	arr := res.Prog.Arrays[0]
	for _, i := range []int64{0, arr.Elems / 2, arr.Elems - 1} {
		res.VM.StoreF64(arr.Base+i*8, 42)
		if got := Fingerprint(res); got == sum {
			t.Fatalf("fingerprint blind to word %d", i)
		}
		res.VM.StoreF64(arr.Base+i*8, 1)
		if got := Fingerprint(res); got != sum {
			t.Fatalf("fingerprint not a pure function of contents at word %d", i)
		}
	}
}
