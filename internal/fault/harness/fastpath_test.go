package harness

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/nas"
)

// checkSameSimulation asserts that two runs of the same kernel are the
// same simulation down to the last tick: identical output fingerprint,
// elapsed time, time breakdown, memory-manager event counts, run-time
// layer counters, and injected-fault tallies. This is the executor
// fast path's contract — page-run specialization removes host-side
// interpretation overhead and nothing else.
func checkSameSimulation(t *testing.T, name string,
	fast *core.Result, fastSum uint64, slow *core.Result, slowSum uint64) {
	t.Helper()
	if fastSum != slowSum {
		t.Errorf("%s: output fingerprint diverged: fast %#x, slow %#x", name, fastSum, slowSum)
	}
	if fast.Elapsed != slow.Elapsed {
		t.Errorf("%s: elapsed diverged: fast %v, slow %v", name, fast.Elapsed, slow.Elapsed)
	}
	if fast.Times != slow.Times {
		t.Errorf("%s: time breakdown diverged:\nfast %+v\nslow %+v", name, fast.Times, slow.Times)
	}
	if fast.Mem != slow.Mem {
		t.Errorf("%s: vm stats diverged:\nfast %+v\nslow %+v", name, fast.Mem, slow.Mem)
	}
	if fast.RT != slow.RT {
		t.Errorf("%s: rt stats diverged:\nfast %+v\nslow %+v", name, fast.RT, slow.RT)
	}
	if fast.Faults != slow.Faults {
		t.Errorf("%s: fault injection diverged:\nfast %+v\nslow %+v", name, fast.Faults, slow.Faults)
	}
}

// runBoth executes the kernel with the page-run fast path on (the
// default) and off, under the same profile, and checks equivalence.
func runBoth(t *testing.T, k Kernel, prof *fault.Profile) {
	t.Helper()
	runBothOn(t, k, nil, prof)
}

// runBothOn is runBoth on an explicit storage backend (nil = the
// kernel's own machine): the executor's compiled drivers must be
// tick-identical to the oracle on every tier, not just the disk array.
func runBothOn(t *testing.T, k Kernel, spec *core.BackendSpec, prof *fault.Profile) {
	t.Helper()
	fastK := k
	fastK.Cfg.NoFastPath = false
	fast, fastSum, err := RunBackend(fastK, spec, prof)
	if err != nil {
		t.Fatal(err)
	}
	slowK := k
	slowK.Cfg.NoFastPath = true
	slow, slowSum, err := RunBackend(slowK, spec, prof)
	if err != nil {
		t.Fatal(err)
	}
	name := k.Name
	if spec != nil {
		name += "@" + spec.Tier.String()
	}
	if prof != nil {
		name += "/" + prof.Name
	}
	checkSameSimulation(t, name, fast, fastSum, slow, slowSum)
}

// TestFastPathEquivalenceNAS is the differential property of ISSUE 5,
// widened across storage tiers: for every NAS proxy in the matrix, a
// run with the compiled drivers must be tick-identical to a run on the
// closure oracle — fault-free and under every seeded fault profile, on
// the disk array, NVMe, and far memory alike.
func TestFastPathEquivalenceNAS(t *testing.T) {
	apps := matrixApps()
	profiles := matrixProfiles
	tiers := []string{"", "nvme", "farmem"}
	if testing.Short() {
		apps = apps[:2]
		profiles = []string{"chaos"}
		tiers = []string{""}
	}
	for ai, app := range apps {
		app := app
		ai := ai
		t.Run(app.Name, func(t *testing.T) {
			k, err := App(app, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			for _, tier := range tiers {
				var spec *core.BackendSpec
				label := "disk"
				if tier != "" {
					s, err := core.ParseBackendSpec(tier)
					if err != nil {
						t.Fatal(err)
					}
					spec = &s
					label = tier
				}
				t.Run(label, func(t *testing.T) {
					t.Run("clean", func(t *testing.T) { runBothOn(t, k, spec, nil) })
					for pi, name := range profiles {
						p, ok := fault.ProfileByName(name)
						if !ok {
							t.Fatalf("unknown profile %q", name)
						}
						p.Seed = uint64(31 + 100*ai + pi) // same family, fresh seeds
						prof := p
						t.Run(name, func(t *testing.T) { runBothOn(t, k, spec, &prof) })
					}
				})
			}
		})
	}
}

// TestFastPathEquivalenceExamples covers the examples corpus: every
// kernel, fault-free and under the chaos profile, fast on vs off.
func TestFastPathEquivalenceExamples(t *testing.T) {
	if testing.Short() {
		t.Skip("example corpus covered at full length only")
	}
	files, err := filepath.Glob("../../../examples/kernels/*.loop")
	if err != nil || len(files) == 0 {
		t.Fatalf("no kernel corpus found: %v", err)
	}
	for fi, path := range files {
		path := path
		fi := fi
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			build := func() *ir.Program {
				p, err := lang.Parse(string(src))
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				return p
			}
			prog := build()
			ps := hw.Default().PageSize
			if err := prog.Resolve(ps); err != nil {
				t.Fatal(err)
			}
			cfg := core.DefaultConfig(core.MachineFor(nas.DataBytes(prog, ps), 2))
			cfg.Seed = exampleSeed
			k := Kernel{Name: filepath.Base(path), Build: build, Cfg: cfg}
			runBoth(t, k, nil)
			prof, _ := fault.ProfileByName("chaos")
			prof.Seed = uint64(61 + fi)
			runBoth(t, k, &prof)
		})
	}
}
