// Package harness turns the paper's central correctness claim into an
// executable property. Prefetch and release hints are non-binding
// (§2.2.1, §3.2): dropped prefetches, transient disk errors, latency
// spikes, and brownouts may change a run's *timing*, never its
// *results*. The harness runs any kernel twice — fault-free and under a
// fault profile — and asserts the two runs' outputs are byte-identical,
// with the VM's structural invariants intact after both.
//
// "Output" means everything the program computed: every word of the
// allocated address space (read with cost-free vm.Peek, so resident
// and paged-out data are both covered) and the scalar environment.
package harness

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/ir"
	"repro/internal/nas"
)

// Kernel is anything the harness can run: a builder returning a fresh
// program (runs consume programs — the compiler rewrites them and the
// executor binds their addresses — so every run needs its own copy),
// the base configuration to run it under, and an optional extra
// validation of a finished run (e.g. a NAS proxy's reference check).
type Kernel struct {
	Name     string
	Build    func() *ir.Program
	Cfg      core.Config
	Validate func(*core.Result) error
}

// App adapts a NAS proxy application at a problem scale into a harness
// kernel, seeded and sized exactly as the experiment suite runs it and
// validated against the app's independent reference implementation.
func App(app *nas.App, scale float64) (Kernel, error) {
	prog := app.Build(scale)
	ps := hw.Default().PageSize
	if err := prog.Resolve(ps); err != nil {
		return Kernel{}, err
	}
	cfg := core.DefaultConfig(core.MachineFor(nas.DataBytes(prog, ps), app.Ratio()))
	cfg.Seed = app.Seed
	return Kernel{
		Name:  app.Name,
		Build: func() *ir.Program { return app.Build(scale) },
		Cfg:   cfg,
		Validate: func(res *core.Result) error {
			return app.Check(res.Prog, res.VM, res.Env)
		},
	}, nil
}

// Run executes the kernel once under the given fault profile (nil =
// fault-free), checks the VM invariants afterwards, runs the kernel's
// own validation if any, and returns the result with its fingerprint.
func Run(k Kernel, prof *fault.Profile) (*core.Result, uint64, error) {
	return RunBackend(k, nil, prof)
}

// RunBackend is Run on the given storage backend (nil = the kernel's own
// machine): the same kernel, validation, and fingerprint, with the
// storage tier swapped underneath.
func RunBackend(k Kernel, spec *core.BackendSpec, prof *fault.Profile) (*core.Result, uint64, error) {
	cfg := k.Cfg
	cfg.Backend = spec
	cfg.Faults = prof
	res, err := core.Run(k.Build(), cfg)
	if err != nil {
		return nil, 0, fmt.Errorf("harness: %s: %w", k.Name, err)
	}
	if err := res.VM.CheckInvariants(); err != nil {
		return nil, 0, fmt.Errorf("harness: %s: vm invariants: %w", k.Name, err)
	}
	if k.Validate != nil {
		if err := k.Validate(res); err != nil {
			return nil, 0, fmt.Errorf("harness: %s: validation: %w", k.Name, err)
		}
	}
	return res, Fingerprint(res), nil
}

// Report is the evidence from one harness comparison.
type Report struct {
	Clean, Faulted     *core.Result
	CleanSum, FaultSum uint64
}

// Check runs the kernel fault-free and under prof, and fails unless the
// faulted run's complete output is byte-identical to the fault-free
// golden. It does not require the profile to have injected anything —
// a profile that happens to fire no faults is trivially conforming.
func Check(k Kernel, prof fault.Profile) (*Report, error) {
	clean, cleanSum, err := Run(k, nil)
	if err != nil {
		return nil, err
	}
	return CheckAgainst(k, prof, clean, cleanSum)
}

// CheckAgainst is Check with the fault-free golden precomputed, so a
// test matrix can amortize one clean run across many profiles.
func CheckAgainst(k Kernel, prof fault.Profile, clean *core.Result, cleanSum uint64) (*Report, error) {
	faulted, faultSum, err := Run(k, &prof)
	if err != nil {
		return nil, err
	}
	r := &Report{Clean: clean, Faulted: faulted, CleanSum: cleanSum, FaultSum: faultSum}
	if faultSum != cleanSum {
		return r, fmt.Errorf("harness: %s: output diverged under profile %q seed %d: fault-free %#x, faulted %#x (injected: %+v)",
			k.Name, prof.Name, prof.Seed, cleanSum, faultSum, faulted.Faults)
	}
	return r, nil
}

// CheckBackendAgainst extends the property across storage tiers: the
// kernel runs on the given backend (optionally under a fault profile —
// brownouts are network partitions on the far-memory tier) and its
// complete output must be byte-identical to the clean golden, which was
// computed on the kernel's own machine. Backends only decide when
// completions fire, so any divergence is a data-path bug in the backend.
func CheckBackendAgainst(k Kernel, spec core.BackendSpec, prof *fault.Profile, clean *core.Result, cleanSum uint64) (*Report, error) {
	res, sum, err := RunBackend(k, &spec, prof)
	if err != nil {
		return nil, err
	}
	r := &Report{Clean: clean, Faulted: res, CleanSum: cleanSum, FaultSum: sum}
	if sum != cleanSum {
		profName, profSeed := "none", uint64(0)
		if prof != nil {
			profName, profSeed = prof.Name, prof.Seed
		}
		return r, fmt.Errorf("harness: %s: output diverged on tier %s (profile %q seed %d): golden %#x, got %#x",
			k.Name, spec.Tier, profName, profSeed, cleanSum, sum)
	}
	return r, nil
}

// FNV-1a 64-bit parameters.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

func fnvWord(h, w uint64) uint64 {
	for i := 0; i < 64; i += 8 {
		h = (h ^ (w >> i & 0xff)) * fnvPrime
	}
	return h
}

// Fingerprint hashes a run's complete observable output with FNV-1a:
// every 8-byte word of the allocated address space, wherever it
// currently lives (frame memory or the backing file), then the declared
// scalar environment (parameters and named scalars) in slot order.
// Loop variables are excluded: the prefetch transform strip-mines loops
// with plan-dependent temporaries, and neither their count nor their
// exit values are part of the program's observable result.
func Fingerprint(res *core.Result) uint64 {
	v := res.VM
	ps := v.Params().PageSize
	h := uint64(fnvOffset)
	for addr, end := int64(0), v.AllocatedPages()*ps; addr < end; addr += 8 {
		h = fnvWord(h, v.Peek(addr))
	}
	p := res.Prog
	slots := make([]int, 0, len(p.Params)+len(p.ScalarsI))
	for _, prm := range p.Params {
		slots = append(slots, prm.Slot)
	}
	for _, s := range p.ScalarsI {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	for _, s := range slots {
		h = fnvWord(h, uint64(res.Env.Ints[s]))
	}
	fslots := make([]int, 0, len(p.ScalarsF))
	for _, s := range p.ScalarsF {
		fslots = append(fslots, s)
	}
	sort.Ints(fslots)
	for _, s := range fslots {
		h = fnvWord(h, math.Float64bits(res.Env.Floats[s]))
	}
	return h
}
