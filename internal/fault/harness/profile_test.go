package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/nas"
	"repro/internal/profile"
)

// profileScale sizes the two-pass matrix: small enough to keep the
// 6-app × 4-mode × 3-tier sweep fast, large enough that every proxy
// actually pages (the machines are sized relative to the data).
const profileScale = 0.1

// profileRuns is one app's complete two-pass evidence: the plain
// original run, the recording pass, and the static vs profile-guided
// prefetching runs, with their fingerprints.
type profileRuns struct {
	orig, record, static, use     *core.Result
	origSum, recordSum, staticSum uint64
	useSum                        uint64
	prof                          *profile.Profile
}

// profCache amortizes the four runs per app across the property test
// and the coverage differential below (tests in this package run
// sequentially).
var profCache = map[string]*profileRuns{}

func profileRunsFor(t *testing.T, app *nas.App) *profileRuns {
	t.Helper()
	if r, ok := profCache[app.Name]; ok {
		return r
	}
	k, err := App(app, profileScale)
	if err != nil {
		t.Fatal(err)
	}

	ko := k
	ko.Cfg.Prefetch = false
	orig, origSum, err := Run(ko, nil)
	if err != nil {
		t.Fatal(err)
	}

	kr := k
	kr.Cfg.Profile = &core.ProfileSpec{Record: true}
	record, recordSum, err := Run(kr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if record.Profile == nil {
		t.Fatalf("%s: record run returned no profile", app.Name)
	}

	static, staticSum, err := Run(k, nil)
	if err != nil {
		t.Fatal(err)
	}

	ku := k
	ku.Cfg.Profile = &core.ProfileSpec{Use: record.Profile}
	use, useSum, err := Run(ku, nil)
	if err != nil {
		t.Fatal(err)
	}

	r := &profileRuns{
		orig: orig, record: record, static: static, use: use,
		origSum: origSum, recordSum: recordSum, staticSum: staticSum,
		useSum: useSum, prof: record.Profile,
	}
	profCache[app.Name] = r
	return r
}

// TestProfileModesByteIdentical is the two-pass property matrix: for
// every NAS proxy, the recording pass is tick- and byte-identical to a
// plain original run (observation costs nothing), and the static and
// profile-guided prefetching runs fingerprint identically to the
// original on every storage tier. The profile must also demonstrably
// steer the compiler on the indirect kernels, and the profile-guided
// program must survive the fast-path differential oracle — a profile
// that changes nothing, or that only works on one execution engine,
// proves nothing.
func TestProfileModesByteIdentical(t *testing.T) {
	apps := matrixApps()
	if testing.Short() {
		apps = apps[:2]
	}
	for _, app := range apps {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			r := profileRunsFor(t, app)

			// Pass 1 is a pure observation of the original program.
			if r.recordSum != r.origSum {
				t.Fatalf("record run diverged from original: %#x vs %#x", r.recordSum, r.origSum)
			}
			if r.record.Elapsed != r.orig.Elapsed {
				t.Fatalf("record run not tick-identical to original: %v vs %v",
					r.record.Elapsed, r.orig.Elapsed)
			}

			// Pass 2 (and plain static prefetching) only move hints around.
			if r.staticSum != r.origSum {
				t.Fatalf("static prefetch diverged: %#x vs %#x", r.staticSum, r.origSum)
			}
			if r.useSum != r.origSum {
				t.Fatalf("profile-guided run diverged: %#x vs %#x", r.useSum, r.origSum)
			}
			// A same-program, same-geometry profile must match every site.
			if r.use.ProfileMismatches != 0 {
				t.Fatalf("self-recorded profile reported %d site mismatches", r.use.ProfileMismatches)
			}

			// The indirect kernels are where the profile has information
			// static analysis lacks; if it never changes a decision there,
			// the whole matrix is vacuous.
			if app.Name == "BUK" || app.Name == "CGM" {
				n := 0
				for _, e := range r.use.Plan {
					if e.Profiled {
						n++
					}
				}
				if n == 0 {
					t.Fatalf("profile changed no hint decisions on %s — vacuous pass", app.Name)
				}
			}

			// The profile-guided program must be engine-independent:
			// the bytecode fast path and the closure-tree oracle agree
			// tick for tick.
			k, err := App(app, profileScale)
			if err != nil {
				t.Fatal(err)
			}
			kd := k
			kd.Cfg.Profile = &core.ProfileSpec{Use: r.prof}
			kd.Cfg.NoFastPath = true
			slow, slowSum, err := Run(kd, nil)
			if err != nil {
				t.Fatal(err)
			}
			if slowSum != r.useSum || slow.Elapsed != r.use.Elapsed {
				t.Fatalf("profile-guided run differs under NoFastPath: sum %#x vs %#x, elapsed %v vs %v",
					slowSum, r.useSum, slow.Elapsed, r.use.Elapsed)
			}

			// Same property with the storage tier swapped underneath,
			// static and profile-guided both (disk is the default above).
			if testing.Short() {
				return
			}
			ku := k
			ku.Cfg.Profile = &core.ProfileSpec{Use: r.prof}
			for _, tier := range []hw.Tier{hw.TierNVMe, hw.TierFarMemory} {
				spec := core.BackendSpec{Tier: tier}
				if _, err := CheckBackendAgainst(k, spec, nil, r.orig, r.origSum); err != nil {
					t.Fatalf("static on %v: %v", tier, err)
				}
				if _, err := CheckBackendAgainst(ku, spec, nil, r.orig, r.origSum); err != nil {
					t.Fatalf("profile-guided on %v: %v", tier, err)
				}
			}
		})
	}
}

// TestProfileCoverageDifferential is the payoff side of the two-pass
// contract: on the indirect kernels (BUK's counting gather, CGM's
// sparse x[col[...]]) the profile-guided plan must cover strictly more
// faults than static analysis manages, and on the dense proxies — where
// static analysis already sees everything — the profile must never cost
// more than a 10% elapsed regression (in practice it binds to the same
// caps and is byte-identical in time too).
func TestProfileCoverageDifferential(t *testing.T) {
	apps := matrixApps()
	if testing.Short() {
		apps = apps[:2]
	}
	for _, app := range apps {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			r := profileRunsFor(t, app)
			if app.Name == "BUK" || app.Name == "CGM" {
				if r.use.Mem.PrefetchedHits <= r.static.Mem.PrefetchedHits {
					t.Fatalf("profile-guided hits %d not above static %d",
						r.use.Mem.PrefetchedHits, r.static.Mem.PrefetchedHits)
				}
			}
			if limit := r.static.Elapsed + r.static.Elapsed/10; r.use.Elapsed > limit {
				t.Fatalf("profile-guided elapsed %v exceeds static %v by more than 10%%",
					r.use.Elapsed, r.static.Elapsed)
			}
		})
	}
}
