package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/nas"
)

// backendSpecs are the storage tiers of the cross-backend property
// matrix: the paper's disks under both schedulers, the NVMe tier, and
// the far-memory tier at its default and at a single-request batch
// (no coalescing — a different completion order on the wire).
var backendSpecs = []core.BackendSpec{
	{Tier: hw.TierDisk},
	{Tier: hw.TierDisk, Sched: "elevator"},
	{Tier: hw.TierNVMe},
	{Tier: hw.TierFarMemory},
	{Tier: hw.TierFarMemory, Batch: 1},
}

// TestNASBackendsByteIdentical is the cross-tier property of the backend
// API: the timing model under the striped file system must never change
// what a program computes. Each kernel runs once on its own machine (the
// clean golden), then once per backend spec, and every run must
// fingerprint identically to the golden while passing the app's
// reference check and the VM invariants. Prefetch distances differ per
// tier — the compiler re-derives them from the tier's AvgPageRead — so
// this also proves hint placement never leaks into results.
func TestNASBackendsByteIdentical(t *testing.T) {
	apps := matrixApps()
	if testing.Short() {
		apps = apps[:2]
	}
	for _, app := range apps {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			k, err := App(app, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			clean, cleanSum, err := Run(k, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range backendSpecs {
				spec := spec
				name := spec.Tier.String()
				if spec.Sched != "" {
					name += "-" + spec.Sched
				}
				if spec.Batch == 1 {
					name += "-unbatched"
				}
				t.Run(name, func(t *testing.T) {
					if _, err := CheckBackendAgainst(k, spec, nil, clean, cleanSum); err != nil {
						t.Fatal(err)
					}
				})
			}
		})
	}
}

// TestBackendsFaultedByteIdentical crosses the tiers with the
// everything-at-once chaos profile: on the far-memory tier its brownout
// windows are network partitions failing whole round trips, on NVMe
// flat-latency retries. Outputs must still match the clean disk golden,
// and the profile must demonstrably inject on every tier.
func TestBackendsFaultedByteIdentical(t *testing.T) {
	apps := []*nas.App{nas.ByName("CGM"), nas.ByName("FFT")}
	if testing.Short() {
		apps = apps[:1]
	}
	specs := []core.BackendSpec{
		{Tier: hw.TierNVMe},
		{Tier: hw.TierFarMemory},
	}
	for ai, app := range apps {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			k, err := App(app, 0.25)
			if err != nil {
				t.Fatal(err)
			}
			clean, cleanSum, err := Run(k, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range specs {
				spec := spec
				t.Run(spec.Tier.String(), func(t *testing.T) {
					prof, _ := fault.ProfileByName("chaos")
					prof.Seed = uint64(1 + 7*ai + int(spec.Tier))
					rep, err := CheckBackendAgainst(k, spec, &prof, clean, cleanSum)
					if err != nil {
						t.Fatal(err)
					}
					if rep.Faulted.Faults.Total() == 0 {
						t.Fatalf("chaos on tier %s injected nothing — vacuous pass", spec.Tier)
					}
				})
			}
		})
	}
}
