package disk

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sim"
)

// FarMemory is the far-memory-tier Backend: remote memory reached over
// a network, in the style of 3PO's programmed far-memory prefetching.
// Fetches are submitted asynchronously in batches — while one round
// trip is in flight, newly submitted requests accumulate in the queue
// and form the next batch — so the round-trip latency amortizes across
// up to NetBatchRequests requests. Within a batch, requests whose block
// ranges are contiguous coalesce into a single wire request, so a block
// prefetch costs one header, not one per page run.
//
// Fault injection treats the network as the device: one
// fault.Injector.Attempt verdict per round trip (a lost or browned-out
// link fails the whole batch), retried in place with exponential
// backoff under the injector's policy. When the policy is exhausted,
// requests that may fail (non-nil Failed) fail; requests that must not
// (nil Failed — demand reads) re-enter the queue with a fresh budget.
// Brownout windows model network partitions here.
type FarMemory struct {
	clock *sim.Clock
	p     hw.Params
	id    int
	cost  *FarMemCost

	busy    bool
	queue   []Request
	batch   []Request // requests in the in-flight round trip (reused)
	n       Stats
	c       counters
	track   *obs.Track // round-trip spans; nil when tracing is off
	depthHi int        // high-water queue depth, for diagnostics

	roundTripDoneFn func() // bound once: fault-free completions allocate nothing

	flt   *fault.Injector
	retry fault.RetryPolicy
}

// NewFarMemory returns an idle far-memory device. Counters register in
// reg as "disk.<id>.*" (nil gets a private registry); each round trip
// becomes a span on track (nil disables).
func NewFarMemory(clock *sim.Clock, p hw.Params, id int, reg *obs.Registry, track *obs.Track) *FarMemory {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	d := &FarMemory{clock: clock, p: p, id: id, cost: NewFarMemCost(p),
		c: newCounters(reg, id), track: track}
	d.roundTripDoneFn = d.roundTripDone
	return d
}

// ID returns the device's index within its array.
func (d *FarMemory) ID() int { return d.id }

// Model returns the device's network cost model.
func (d *FarMemory) Model() CostModel { return d.cost }

// SetFaults attaches a fault injector (nil detaches) and adopts its
// retry policy.
func (d *FarMemory) SetFaults(inj *fault.Injector) {
	d.flt = inj
	d.retry = inj.Retry()
}

// Stats returns a snapshot of the device's accumulated statistics,
// publishing them into the metrics registry as a side effect.
func (d *FarMemory) Stats() Stats {
	d.c.publish(&d.n)
	return d.n
}

// QueueLen returns the number of requests waiting for the next round
// trip (not counting those in flight).
func (d *FarMemory) QueueLen() int { return len(d.queue) }

// Busy reports whether a round trip is in flight.
func (d *FarMemory) Busy() bool { return d.busy }

// Submit enqueues a request. Completion is signalled by r.Done on the
// simulated clock; all requests of one round trip complete together
// when the batch's transfer finishes.
func (d *FarMemory) Submit(r Request) {
	if r.Pages <= 0 {
		panic(fmt.Sprintf("farmem %d: request for %d pages", d.id, r.Pages))
	}
	d.queue = append(d.queue, r)
	if len(d.queue) > d.depthHi {
		d.depthHi = len(d.queue)
	}
	if !d.busy {
		d.startNext()
	}
}

// startNext forms the next batch — up to NetBatchRequests requests off
// the queue head, FCFS — and starts its round trip.
func (d *FarMemory) startNext() {
	if len(d.queue) == 0 {
		d.busy = false
		return
	}
	n := len(d.queue)
	if max := d.p.NetBatchRequests; n > max {
		n = max
	}
	d.batch = append(d.batch[:0], d.queue[:n]...)
	d.queue = d.queue[:copy(d.queue, d.queue[n:])]
	d.busy = true
	for i := range d.batch {
		r := &d.batch[i]
		d.n.Requests[r.Kind]++
		d.n.Pages[r.Kind] += r.Pages
	}
	d.attemptBatch(1, d.clock.Now())
}

// batchShape returns the wire shape of the in-flight batch: the number
// of wire requests after coalescing contiguous block ranges, and the
// total pages moved.
func (d *FarMemory) batchShape() (wireReqs int, pages int64) {
	prevEnd := int64(-1)
	for i := range d.batch {
		r := &d.batch[i]
		if r.Block != prevEnd {
			wireReqs++
		}
		prevEnd = r.Block + r.Pages
		pages += r.Pages
	}
	return wireReqs, pages
}

// attemptBatch services one round-trip attempt of the in-flight batch.
// The whole batch shares one fault verdict — the network link, not the
// individual request, is what fails — and retries in place with
// backoff. Exhaustion splits the batch by degradation policy.
func (d *FarMemory) attemptBatch(attempt int, started sim.Time) {
	wireReqs, pages := d.batchShape()
	t := d.cost.BatchTime(wireReqs, pages)
	if d.flt == nil {
		d.n.BusyTime += t
		if d.track != nil {
			d.track.SpanArg("round-trip", "farmem", d.clock.Now(), t, "pages", pages)
		}
		d.clock.Schedule(t, d.roundTripDoneFn)
		return
	}

	write := false
	for i := range d.batch {
		if d.batch[i].Kind == Write {
			write = true
			break
		}
	}
	v := d.flt.Attempt(d.id, write, d.clock.Now())
	if v.Slow > 1 {
		t = sim.Time(float64(t) * v.Slow)
	}
	d.n.BusyTime += t
	if d.track != nil {
		d.track.SpanArg("round-trip", "farmem", d.clock.Now(), t, "pages", pages)
	}

	if !v.Fail {
		d.clock.Schedule(t, d.roundTripDoneFn)
		return
	}
	backoff := d.retry.Backoff(attempt)
	overBudget := d.retry.Timeout > 0 && d.clock.Now()+t+backoff-started > d.retry.Timeout
	if attempt >= d.retry.MaxAttempts || overBudget {
		d.clock.Schedule(t, d.batchExhausted)
		return
	}
	d.n.Retries++
	d.clock.Schedule(t+backoff, func() {
		d.attemptBatch(attempt+1, started)
	})
}

// roundTripDone completes every request of the in-flight batch, in
// batch order, then starts the next round trip. The batch slice stays
// stable during the callbacks: completions may Submit new requests, but
// the device is still busy, so they only enqueue.
func (d *FarMemory) roundTripDone() {
	for i := range d.batch {
		if done := d.batch[i].Done; done != nil {
			done()
		}
	}
	d.batch = d.batch[:0]
	d.startNext()
}

// batchExhausted applies the degradation split after a batch's retry
// policy ran out: requests that may fail permanently fail to their
// Failed handler; requests that must not fail (nil Failed) re-enter the
// queue head in order, keeping their device and getting a fresh retry
// budget with the next batch.
func (d *FarMemory) batchExhausted() {
	var requeue []Request
	for i := range d.batch {
		r := d.batch[i]
		if r.Failed != nil {
			d.n.Failures++
			r.Failed()
		} else {
			requeue = append(requeue, r)
		}
	}
	d.batch = d.batch[:0]
	if len(requeue) > 0 {
		d.queue = append(requeue, d.queue...)
	}
	d.startNext()
}

// Utilization returns the fraction of the elapsed simulated time the
// network link was busy, publishing statistics as Stats does.
func (d *FarMemory) Utilization(elapsed sim.Time) float64 {
	d.c.publish(&d.n)
	if elapsed <= 0 {
		return 0
	}
	return float64(d.n.BusyTime) / float64(elapsed)
}
