package disk

import (
	"fmt"

	"repro/internal/hw"
)

// Class is a prefetch-priority class. In multi-tenant operation every
// request carries the class of its issuing tenant; the QoS scheduler
// orders queued prefetches by class, and the OS drops best-effort
// prefetches first under memory pressure (the paper's non-binding-hint
// policy, split into service tiers). The zero value is Gold, so
// single-tenant runs — which never set a class — schedule exactly as
// before.
type Class uint8

const (
	// Gold prefetches keep the paper's original drop thresholds and are
	// serviced ahead of the other classes.
	Gold Class = iota
	// Silver prefetches are dropped at moderate pressure and queue
	// behind gold.
	Silver
	// BestEffort prefetches are the first dropped under pressure and
	// the last serviced.
	BestEffort
	numClasses
)

func (c Class) String() string {
	switch c {
	case Gold:
		return "gold"
	case Silver:
		return "silver"
	case BestEffort:
		return "best-effort"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ParseClass parses a class name ("gold", "silver", "best-effort" or the
// shorthand "be").
func ParseClass(s string) (Class, error) {
	switch s {
	case "gold":
		return Gold, nil
	case "silver":
		return Silver, nil
	case "best-effort", "besteffort", "be":
		return BestEffort, nil
	}
	return 0, fmt.Errorf("disk: unknown QoS class %q (want gold, silver or best-effort)", s)
}

// QoS is the multi-tenant scheduler: demand reads are always serviced
// before any queued prefetch (a demand fault never queues behind a
// lower-class prefetch that arrived earlier), write-backs — which
// replenish the frame pool — come next, and prefetches are ordered
// gold < silver < best-effort. Within a rank, arrival order (FCFS) is
// preserved, so the schedule is deterministic.
//
// Like the Elevator, QoS reorders only the queue; a request already in
// service is never preempted.
type QoS struct{}

// Next implements Scheduler.
func (QoS) Next(queue []Request, headCyl int64, p hw.Params) int {
	best := 0
	bestRank := qosRank(&queue[0])
	for i := 1; i < len(queue); i++ {
		if r := qosRank(&queue[i]); r < bestRank {
			best, bestRank = i, r
		}
	}
	return best
}

// Name implements Scheduler.
func (QoS) Name() string { return "qos" }

// qosRank orders requests: demand reads first, then write-backs, then
// prefetches by class.
func qosRank(r *Request) int {
	switch r.Kind {
	case FaultRead:
		return 0
	case Write:
		return 1
	default:
		return 2 + int(r.Class)
	}
}
