package disk

import (
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/sim"
)

func testParams() hw.Params { return hw.Scaled(8 << 20) }

func TestSingleRequestCompletes(t *testing.T) {
	c := sim.NewClock()
	d := New(c, testParams(), 0, nil)
	done := false
	d.Submit(Request{Block: 0, Pages: 1, Kind: FaultRead, Done: func() { done = true }})
	if !d.Busy() {
		t.Fatal("disk idle right after Submit")
	}
	c.Drain()
	if !done {
		t.Fatal("request never completed")
	}
	if d.Busy() {
		t.Fatal("disk still busy after Drain")
	}
	s := d.Stats()
	if s.Requests[FaultRead] != 1 || s.Pages[FaultRead] != 1 {
		t.Fatalf("stats = %+v, want one 1-page fault read", s)
	}
}

func TestServiceTimeComponents(t *testing.T) {
	p := testParams()
	c := sim.NewClock()
	d := New(c, p, 0, nil)

	// Same cylinder: no seek, just rotation/2 + transfer.
	same := d.ServiceTime(0, Request{Block: 1, Pages: 1})
	want := p.RotationTime/2 + p.TransferPerPage
	if same != want {
		t.Fatalf("same-cylinder service = %v, want %v", same, want)
	}

	// Far cylinder costs more than near cylinder.
	near := d.ServiceTime(0, Request{Block: p.PagesPerCyl, Pages: 1})
	far := d.ServiceTime(0, Request{Block: p.PagesPerCyl * (p.DiskCylinders - 1), Pages: 1})
	if !(near > same) {
		t.Fatalf("one-cylinder seek %v not > zero-seek %v", near, same)
	}
	if !(far > near) {
		t.Fatalf("full-stroke %v not > single-track %v", far, near)
	}
	if far > same+p.SeekMax+sim.Millisecond {
		t.Fatalf("full-stroke %v exceeds max seek bound", far)
	}
}

func TestMultiPageTransferAmortizesSeek(t *testing.T) {
	p := testParams()
	d := New(sim.NewClock(), p, 0, nil)
	one := d.ServiceTime(0, Request{Block: 100 * p.PagesPerCyl, Pages: 1})
	four := d.ServiceTime(0, Request{Block: 100 * p.PagesPerCyl, Pages: 4})
	if four-one != 3*p.TransferPerPage {
		t.Fatalf("4-page − 1-page = %v, want 3×transfer %v", four-one, 3*p.TransferPerPage)
	}
	if four >= 4*one {
		t.Fatal("batched transfer not cheaper than four separate requests")
	}
}

func TestFCFSOrder(t *testing.T) {
	c := sim.NewClock()
	d := New(c, testParams(), 0, FCFS{})
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		d.Submit(Request{Block: int64((5 - i) * 1000), Pages: 1, Kind: Write,
			Done: func() { order = append(order, i) }})
	}
	c.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("FCFS completed out of order: %v", order)
		}
	}
}

func TestElevatorReducesSeekTime(t *testing.T) {
	p := testParams()
	run := func(s Scheduler) sim.Time {
		c := sim.NewClock()
		d := New(c, p, 0, s)
		// Alternating far/near blocks: pathological for FCFS.
		blocks := []int64{0, 1900, 10, 1800, 20, 1700, 30, 1600}
		for _, b := range blocks {
			d.Submit(Request{Block: b * p.PagesPerCyl, Pages: 1, Kind: FaultRead})
		}
		c.Drain()
		return d.Stats().BusyTime
	}
	fcfs := run(FCFS{})
	elev := run(&Elevator{})
	if elev >= fcfs {
		t.Fatalf("elevator busy time %v not below FCFS %v", elev, fcfs)
	}
}

func TestUtilization(t *testing.T) {
	c := sim.NewClock()
	p := testParams()
	d := New(c, p, 0, nil)
	d.Submit(Request{Block: 0, Pages: 1, Kind: FaultRead})
	c.Drain()
	busy := d.Stats().BusyTime
	// Let the same amount of idle time pass again.
	c.Advance(busy)
	u := d.Utilization(c.Now())
	if u < 0.45 || u > 0.55 {
		t.Fatalf("utilization = %.3f, want ≈0.5", u)
	}
	if d.Utilization(0) != 0 {
		t.Fatal("utilization at elapsed=0 should be 0")
	}
}

func TestZeroPageRequestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-page request did not panic")
		}
	}()
	New(sim.NewClock(), testParams(), 0, nil).Submit(Request{Block: 0, Pages: 0})
}

func TestKindString(t *testing.T) {
	if FaultRead.String() != "fault-read" || PrefetchRead.String() != "prefetch-read" || Write.String() != "write" {
		t.Fatal("Kind.String() mismatch")
	}
}

// Property: every submitted request completes exactly once, regardless of
// block addresses and scheduler, and busy time equals the sum of the
// service times actually charged.
func TestAllRequestsCompleteProperty(t *testing.T) {
	p := testParams()
	f := func(blocks []uint16, elevator bool) bool {
		if len(blocks) == 0 {
			return true
		}
		c := sim.NewClock()
		var s Scheduler = FCFS{}
		if elevator {
			s = &Elevator{}
		}
		d := New(c, p, 0, s)
		completed := 0
		for _, b := range blocks {
			d.Submit(Request{
				Block: int64(b) % (p.DiskCylinders * p.PagesPerCyl),
				Pages: 1, Kind: PrefetchRead,
				Done: func() { completed++ },
			})
		}
		c.Drain()
		return completed == len(blocks) && d.Stats().RequestsTotal() == int64(len(blocks))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
