// Package disk models the disks of the experimental platform: a simple
// but faithful positional service-time model (distance-dependent seek,
// half-rotation latency, per-page media transfer), per-disk request
// queues, and pluggable scheduling. As in the paper, the disk scheduler
// treats prefetch reads exactly like demand (fault) reads.
package disk

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
)

// Kind classifies disk requests for the Figure 5 breakdown.
type Kind int

const (
	// FaultRead is a demand read triggered by a page fault.
	FaultRead Kind = iota
	// PrefetchRead is an asynchronous read issued for a prefetch hint.
	PrefetchRead
	// Write is a dirty-page write-back.
	Write
	numKinds
)

func (k Kind) String() string {
	switch k {
	case FaultRead:
		return "fault-read"
	case PrefetchRead:
		return "prefetch-read"
	case Write:
		return "write"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Request is one I/O operation against a single disk. Block addresses are
// disk-local page numbers; Pages contiguous pages are transferred in one
// media pass. Done, if non-nil, runs at completion time.
type Request struct {
	Block int64
	Pages int64
	Kind  Kind
	Done  func()
}

// Stats accumulates per-disk activity.
type Stats struct {
	Requests [numKinds]int64 // request count by kind
	Pages    [numKinds]int64 // pages moved by kind
	BusyTime sim.Time        // total time the arm/media was busy
}

// RequestsTotal returns the total request count across kinds.
func (s Stats) RequestsTotal() int64 {
	var n int64
	for _, v := range s.Requests {
		n += v
	}
	return n
}

// A Scheduler picks the next request to service from a non-empty queue
// given the current head (cylinder) position. It returns the index of the
// chosen request.
type Scheduler interface {
	Next(queue []Request, headCyl int64, p hw.Params) int
	Name() string
}

// FCFS services requests strictly in arrival order.
type FCFS struct{}

// Next implements Scheduler.
func (FCFS) Next(queue []Request, headCyl int64, p hw.Params) int { return 0 }

// Name implements Scheduler.
func (FCFS) Name() string { return "fcfs" }

// Elevator is a shortest-seek-in-direction (SCAN) scheduler: it services
// the nearest request at or beyond the head in the sweep direction and
// reverses when nothing remains ahead.
type Elevator struct {
	up bool // current sweep direction; zero value sweeps down first
}

// Next implements Scheduler.
func (e *Elevator) Next(queue []Request, headCyl int64, p hw.Params) int {
	best := -1
	var bestDist int64
	pick := func(dir bool) int {
		idx, dist := -1, int64(-1)
		for i, r := range queue {
			cyl := r.Block / p.PagesPerCyl
			d := cyl - headCyl
			if !dir {
				d = -d
			}
			if d < 0 {
				continue
			}
			if idx < 0 || d < dist {
				idx, dist = i, d
			}
		}
		bestDist = dist
		return idx
	}
	best = pick(e.up)
	if best < 0 {
		e.up = !e.up
		best = pick(e.up)
	}
	_ = bestDist
	if best < 0 {
		best = 0 // unreachable for a non-empty queue, but stay safe
	}
	return best
}

// Name implements Scheduler.
func (e *Elevator) Name() string { return "elevator" }

// Disk is one simulated disk: a serial server with a queue.
type Disk struct {
	clock *sim.Clock
	p     hw.Params
	id    int
	sched Scheduler

	headCyl int64
	busy    bool
	queue   []Request
	stats   Stats
	depthHi int // high-water queue depth, for diagnostics
}

// New returns an idle disk. If sched is nil, FCFS is used.
func New(clock *sim.Clock, p hw.Params, id int, sched Scheduler) *Disk {
	if sched == nil {
		sched = FCFS{}
	}
	return &Disk{clock: clock, p: p, id: id, sched: sched}
}

// ID returns the disk's index within its array.
func (d *Disk) ID() int { return d.id }

// Stats returns a snapshot of the disk's accumulated statistics.
func (d *Disk) Stats() Stats { return d.stats }

// QueueLen returns the number of requests waiting (not counting the one in
// service).
func (d *Disk) QueueLen() int { return len(d.queue) }

// Busy reports whether a request is currently being serviced.
func (d *Disk) Busy() bool { return d.busy }

// Submit enqueues a request. Completion is signalled by r.Done on the
// simulated clock.
func (d *Disk) Submit(r Request) {
	if r.Pages <= 0 {
		panic(fmt.Sprintf("disk %d: request for %d pages", d.id, r.Pages))
	}
	d.queue = append(d.queue, r)
	if len(d.queue) > d.depthHi {
		d.depthHi = len(d.queue)
	}
	if !d.busy {
		d.startNext()
	}
}

// ServiceTime returns the positional service time for a request starting
// with the head at fromCyl: seek proportional to distance, half a rotation
// of latency, and the media transfer.
func (d *Disk) ServiceTime(fromCyl int64, r Request) sim.Time {
	cyl := r.Block / d.p.PagesPerCyl
	dist := cyl - fromCyl
	if dist < 0 {
		dist = -dist
	}
	var seek sim.Time
	if dist > 0 {
		span := d.p.SeekMax - d.p.SeekMin
		seek = d.p.SeekMin + sim.Time(int64(span)*dist/d.p.DiskCylinders)
	}
	rot := d.p.RotationTime / 2
	xfer := sim.Time(int64(d.p.TransferPerPage) * r.Pages)
	return seek + rot + xfer
}

func (d *Disk) startNext() {
	if len(d.queue) == 0 {
		d.busy = false
		return
	}
	i := d.sched.Next(d.queue, d.headCyl, d.p)
	r := d.queue[i]
	d.queue = append(d.queue[:i], d.queue[i+1:]...)
	d.busy = true

	t := d.ServiceTime(d.headCyl, r)
	d.headCyl = (r.Block + r.Pages - 1) / d.p.PagesPerCyl
	d.stats.BusyTime += t
	d.stats.Requests[r.Kind]++
	d.stats.Pages[r.Kind] += r.Pages

	d.clock.Schedule(t, func() {
		if r.Done != nil {
			r.Done()
		}
		d.startNext()
	})
}

// Utilization returns the fraction of the elapsed simulated time this disk
// was busy.
func (d *Disk) Utilization(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(d.stats.BusyTime) / float64(elapsed)
}
