// Package disk models the disks of the experimental platform: a simple
// but faithful positional service-time model (distance-dependent seek,
// half-rotation latency, per-page media transfer), per-disk request
// queues, and pluggable scheduling. As in the paper, the disk scheduler
// treats prefetch reads exactly like demand (fault) reads.
package disk

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Kind classifies disk requests for the Figure 5 breakdown.
type Kind int

const (
	// FaultRead is a demand read triggered by a page fault.
	FaultRead Kind = iota
	// PrefetchRead is an asynchronous read issued for a prefetch hint.
	PrefetchRead
	// Write is a dirty-page write-back.
	Write
	numKinds
)

func (k Kind) String() string {
	switch k {
	case FaultRead:
		return "fault-read"
	case PrefetchRead:
		return "prefetch-read"
	case Write:
		return "write"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Request is one I/O operation against a single disk. Block addresses are
// disk-local page numbers; Pages contiguous pages are transferred in one
// media pass. Done, if non-nil, runs at completion time.
//
// Under fault injection a service attempt may fail transiently; the disk
// then retries in place with exponential backoff under its
// fault.RetryPolicy. When the policy is exhausted (attempt count or the
// per-request time budget), Failed, if non-nil, runs instead of Done and
// the request is over — the layer above decides what a permanent failure
// means (stripefs requeues demand reads and write-backs, abandons
// prefetches). A nil Failed means the request cannot be allowed to fail:
// the disk keeps retrying with capped backoff until the attempt
// succeeds, which terminates because injected failure rates are below
// fault.MaxRate and brownouts end.
type Request struct {
	Block  int64
	Pages  int64
	Kind   Kind
	Done   func()
	Failed func()

	// Tenant and Class tag the request with the issuing tenant and that
	// tenant's prefetch-priority class, for multi-tenant QoS scheduling
	// and per-tenant attribution. Single-tenant runs leave them zero
	// (tenant 0, Gold), which every scheduler treats exactly as before.
	Tenant int32
	Class  Class
}

// Stats accumulates per-disk activity. The service path increments the
// plain fields directly (a disk is driven by its run's single simulator
// goroutine); reading them through Disk.Stats or Disk.Utilization
// publishes them into the disk's metrics-registry counters
// ("disk.<id>.requests.<kind>", "disk.<id>.pages.<kind>",
// "disk.<id>.busy_ns"), so registry snapshots taken after a view read
// are current.
type Stats struct {
	Requests [numKinds]int64 // request count by kind (requeues count anew)
	Pages    [numKinds]int64 // pages moved by kind
	BusyTime sim.Time        // total time the arm/media was busy
	Retries  int64           // failed service attempts that were retried
	Failures int64           // requests permanently failed to their Failed handler
}

// counters holds a disk's metrics-registry handles. The disk is the sole
// writer of these names in its run's registry, so publish may use
// absolute stores.
type counters struct {
	requests [numKinds]*obs.Counter
	pages    [numKinds]*obs.Counter
	busy     *obs.Counter
	retries  *obs.Counter
	failures *obs.Counter
}

func newCounters(reg *obs.Registry, id int) counters {
	var c counters
	for k := Kind(0); k < numKinds; k++ {
		c.requests[k] = reg.Counter(fmt.Sprintf("disk.%d.requests.%s", id, k))
		c.pages[k] = reg.Counter(fmt.Sprintf("disk.%d.pages.%s", id, k))
	}
	c.busy = reg.Counter(fmt.Sprintf("disk.%d.busy_ns", id))
	c.retries = reg.Counter(fmt.Sprintf("disk.%d.retries", id))
	c.failures = reg.Counter(fmt.Sprintf("disk.%d.failures", id))
	return c
}

func (c *counters) publish(s *Stats) {
	for k := Kind(0); k < numKinds; k++ {
		c.requests[k].Store(s.Requests[k])
		c.pages[k].Store(s.Pages[k])
	}
	c.busy.Store(int64(s.BusyTime))
	c.retries.Store(s.Retries)
	c.failures.Store(s.Failures)
}

// RequestsTotal returns the total request count across kinds.
func (s Stats) RequestsTotal() int64 {
	var n int64
	for _, v := range s.Requests {
		n += v
	}
	return n
}

// A Scheduler picks the next request to service from a non-empty queue
// given the current head (cylinder) position. It returns the index of the
// chosen request.
type Scheduler interface {
	Next(queue []Request, headCyl int64, p hw.Params) int
	Name() string
}

// FCFS services requests strictly in arrival order.
type FCFS struct{}

// Next implements Scheduler.
func (FCFS) Next(queue []Request, headCyl int64, p hw.Params) int { return 0 }

// Name implements Scheduler.
func (FCFS) Name() string { return "fcfs" }

// Elevator is a shortest-seek-in-direction (SCAN) scheduler: it services
// the nearest request at or beyond the head in the sweep direction and
// reverses when nothing remains ahead.
type Elevator struct {
	up bool // current sweep direction; zero value sweeps down first
}

// Next implements Scheduler.
func (e *Elevator) Next(queue []Request, headCyl int64, p hw.Params) int {
	best := -1
	var bestDist int64
	pick := func(dir bool) int {
		idx, dist := -1, int64(-1)
		for i, r := range queue {
			cyl := r.Block / p.PagesPerCyl
			d := cyl - headCyl
			if !dir {
				d = -d
			}
			if d < 0 {
				continue
			}
			if idx < 0 || d < dist {
				idx, dist = i, d
			}
		}
		bestDist = dist
		return idx
	}
	best = pick(e.up)
	if best < 0 {
		e.up = !e.up
		best = pick(e.up)
	}
	_ = bestDist
	if best < 0 {
		best = 0 // unreachable for a non-empty queue, but stay safe
	}
	return best
}

// Name implements Scheduler.
func (e *Elevator) Name() string { return "elevator" }

// Disk is one simulated disk: a serial server with a queue. It is the
// disk-tier Backend; its positional service-time model lives in a
// DiskCost.
type Disk struct {
	clock *sim.Clock
	p     hw.Params
	id    int
	sched Scheduler
	cost  *DiskCost

	busy    bool
	queue   []Request
	n       Stats
	c       counters
	track   *obs.Track // service-time spans; nil when tracing is off
	depthHi int        // high-water queue depth, for diagnostics

	// Fault-free completion state: the disk is a serial server, so one
	// field holds the in-service request's Done and one bound method
	// value (created at construction) is scheduled for every completion —
	// a closure per serviced request would allocate.
	curDone       func()
	serviceDoneFn func()

	flt   *fault.Injector   // nil injects nothing
	retry fault.RetryPolicy // normalized; zero value only before SetFaults
}

// New returns an idle disk. If sched is nil, FCFS is used. Accounting
// lands in a private metrics registry and tracing is off; NewObserved
// shares both with the rest of the system.
func New(clock *sim.Clock, p hw.Params, id int, sched Scheduler) *Disk {
	return NewObserved(clock, p, id, sched, nil, nil)
}

// NewObserved is New with observability sinks attached: the disk's
// counters register in reg ("disk.<id>.*"; nil gets a private registry)
// and every serviced request becomes a span on track (nil disables).
func NewObserved(clock *sim.Clock, p hw.Params, id int, sched Scheduler, reg *obs.Registry, track *obs.Track) *Disk {
	if sched == nil {
		sched = FCFS{}
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	d := &Disk{clock: clock, p: p, id: id, sched: sched, cost: NewDiskCost(p),
		c: newCounters(reg, id), track: track}
	d.serviceDoneFn = d.serviceDone
	return d
}

// ID returns the disk's index within its array.
func (d *Disk) ID() int { return d.id }

// Model returns the disk's positional cost model.
func (d *Disk) Model() CostModel { return d.cost }

// SetFaults attaches a fault injector (nil detaches) and adopts its
// retry policy. Call before submitting requests; mid-run changes would
// not be wrong, just hard to reason about.
func (d *Disk) SetFaults(inj *fault.Injector) {
	d.flt = inj
	d.retry = inj.Retry()
}

// Stats returns a snapshot of the disk's accumulated statistics,
// publishing them into the metrics registry as a side effect.
func (d *Disk) Stats() Stats {
	d.c.publish(&d.n)
	return d.n
}

// QueueLen returns the number of requests waiting (not counting the one in
// service).
func (d *Disk) QueueLen() int { return len(d.queue) }

// Busy reports whether a request is currently being serviced.
func (d *Disk) Busy() bool { return d.busy }

// Submit enqueues a request. Completion is signalled by r.Done on the
// simulated clock.
func (d *Disk) Submit(r Request) {
	if r.Pages <= 0 {
		panic(fmt.Sprintf("disk %d: request for %d pages", d.id, r.Pages))
	}
	d.queue = append(d.queue, r)
	if len(d.queue) > d.depthHi {
		d.depthHi = len(d.queue)
	}
	if !d.busy {
		d.startNext()
	}
}

// ServiceTime returns the positional service time for a request starting
// with the head at fromCyl: seek proportional to distance, half a rotation
// of latency, and the media transfer. The arithmetic lives in DiskCost;
// this form does not move the arm.
func (d *Disk) ServiceTime(fromCyl int64, r Request) sim.Time {
	return d.cost.At(fromCyl, r)
}

func (d *Disk) startNext() {
	if len(d.queue) == 0 {
		d.busy = false
		return
	}
	i := d.sched.Next(d.queue, d.cost.HeadCyl(), d.p)
	r := d.queue[i]
	d.queue = append(d.queue[:i], d.queue[i+1:]...)
	d.busy = true
	d.n.Requests[r.Kind]++
	d.n.Pages[r.Kind] += r.Pages
	if d.flt == nil {
		// Fault-free fast path: service in place so the common case pays
		// nothing for the retry machinery (no attempt frame, no extra
		// clock read, no verdict). The cost model advances the arm.
		t := d.cost.ServiceTime(r, len(d.queue))
		d.n.BusyTime += t
		if d.track != nil { // guard: Kind.String is a call even when untraced
			d.track.SpanArg(r.Kind.String(), "disk", d.clock.Now(), t, "block", r.Block)
		}
		d.curDone = r.Done
		d.clock.Schedule(t, d.serviceDoneFn)
		return
	}
	d.attempt(r, 1, d.clock.Now())
}

// serviceDone completes the request in service on the fault-free path
// and starts the next one. The callback is consumed before it runs: it
// may submit new requests to this disk, which must queue behind the
// startNext below, not clobber curDone.
func (d *Disk) serviceDone() {
	done := d.curDone
	d.curDone = nil
	if done != nil {
		done()
	}
	d.startNext()
}

// attempt services one try of a request. On injected failure it retries
// in place — the request keeps the disk (a serial server) and the next
// attempt starts after the positional service time plus exponential
// backoff — until it succeeds or the retry policy is exhausted (attempt
// count, or the per-request time budget measured from the first
// attempt). Backoff delays keep the disk busy for scheduling purposes
// but are idle time, not BusyTime.
func (d *Disk) attempt(r Request, attempt int, started sim.Time) {
	t := d.cost.ServiceTime(r, len(d.queue))
	v := d.flt.Attempt(d.id, r.Kind == Write, d.clock.Now())
	if v.Slow > 1 {
		t = sim.Time(float64(t) * v.Slow)
	}
	d.n.BusyTime += t
	if d.track != nil { // guard: Kind.String is a call even when untraced
		d.track.SpanArg(r.Kind.String(), "disk", d.clock.Now(), t, "block", r.Block)
	}

	if !v.Fail {
		d.clock.Schedule(t, func() {
			if r.Done != nil {
				r.Done()
			}
			d.startNext()
		})
		return
	}
	backoff := d.retry.Backoff(attempt)
	overBudget := d.retry.Timeout > 0 && d.clock.Now()+t+backoff-started > d.retry.Timeout
	if r.Failed != nil && (attempt >= d.retry.MaxAttempts || overBudget) {
		d.n.Failures++
		d.clock.Schedule(t, func() {
			r.Failed()
			d.startNext()
		})
		return
	}
	d.n.Retries++
	d.clock.Schedule(t+backoff, func() {
		d.attempt(r, attempt+1, started)
	})
}

// Utilization returns the fraction of the elapsed simulated time this disk
// was busy, publishing the accumulated statistics as Stats does.
func (d *Disk) Utilization(elapsed sim.Time) float64 {
	d.c.publish(&d.n)
	if elapsed <= 0 {
		return 0
	}
	return float64(d.n.BusyTime) / float64(elapsed)
}
