package disk

import "testing"

import "repro/internal/sim"

func TestParseClass(t *testing.T) {
	cases := map[string]Class{
		"gold": Gold, "silver": Silver,
		"best-effort": BestEffort, "be": BestEffort, "besteffort": BestEffort,
	}
	for s, want := range cases {
		got, err := ParseClass(s)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseClass("bronze"); err == nil {
		t.Error("ParseClass(bronze) succeeded, want error")
	}
	if Gold.String() != "gold" || Silver.String() != "silver" || BestEffort.String() != "best-effort" {
		t.Errorf("class names wrong: %v %v %v", Gold, Silver, BestEffort)
	}
}

// TestQoSDemandNeverBehindLowerClassPrefetch is the scheduling property
// the tenant model promises: once a demand read is queued, it is serviced
// before every queued prefetch, including lower-class prefetches that
// arrived earlier; among prefetches, gold precedes silver precedes
// best-effort regardless of arrival order.
func TestQoSDemandNeverBehindLowerClassPrefetch(t *testing.T) {
	c := sim.NewClock()
	d := New(c, testParams(), 0, QoS{})

	var order []string
	mark := func(s string) func() { return func() { order = append(order, s) } }

	// First request starts service immediately and holds the disk; the
	// rest queue up behind it in deliberately inverted priority order.
	d.Submit(Request{Block: 0, Pages: 1, Kind: PrefetchRead, Class: BestEffort, Done: mark("in-service")})
	d.Submit(Request{Block: 1, Pages: 1, Kind: PrefetchRead, Class: BestEffort, Done: mark("pf-be")})
	d.Submit(Request{Block: 2, Pages: 1, Kind: PrefetchRead, Class: Silver, Done: mark("pf-silver")})
	d.Submit(Request{Block: 3, Pages: 1, Kind: Write, Done: mark("write")})
	d.Submit(Request{Block: 4, Pages: 1, Kind: PrefetchRead, Class: Gold, Done: mark("pf-gold")})
	d.Submit(Request{Block: 5, Pages: 1, Kind: FaultRead, Done: mark("demand")})
	c.Drain()

	want := []string{"in-service", "demand", "write", "pf-gold", "pf-silver", "pf-be"}
	if len(order) != len(want) {
		t.Fatalf("completed %d requests, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v", order, want)
		}
	}
}

// TestQoSFIFOWithinRank: equal-priority requests keep arrival order, so
// the schedule is deterministic.
func TestQoSFIFOWithinRank(t *testing.T) {
	c := sim.NewClock()
	d := New(c, testParams(), 0, QoS{})

	var order []string
	mark := func(s string) func() { return func() { order = append(order, s) } }

	d.Submit(Request{Block: 0, Pages: 1, Kind: Write, Done: mark("w0")})
	d.Submit(Request{Block: 9, Pages: 1, Kind: PrefetchRead, Class: Silver, Done: mark("s1")})
	d.Submit(Request{Block: 3, Pages: 1, Kind: PrefetchRead, Class: Silver, Done: mark("s2")})
	d.Submit(Request{Block: 7, Pages: 1, Kind: PrefetchRead, Class: Silver, Done: mark("s3")})
	c.Drain()

	want := []string{"w0", "s1", "s2", "s3"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v", order, want)
		}
	}
}
