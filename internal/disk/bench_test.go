package disk

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

// The backend benchmarks measure the host-side cost of one fault-free
// submit/service cycle per storage tier. They sit in the regression gate
// with zero-allocation baselines: every simulated I/O passes through
// this path, so an allocation here multiplies across entire runs.

func benchBackend(b *testing.B, tier hw.Tier) {
	c := sim.NewClock()
	d := NewBackend(c, hw.ScaledTier(tier, 8<<20), 0, nil, nil, nil)
	done := func() {}
	// Warm up queue, batch, and event-heap capacities so the timed loop
	// is the steady state.
	for i := int64(0); i < 32; i++ {
		d.Submit(Request{Block: i, Pages: 1, Kind: FaultRead, Done: done})
	}
	c.Drain()
	req := Request{Block: 7, Pages: 4, Kind: PrefetchRead, Done: done}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Submit(req)
		c.Drain()
	}
}

func BenchmarkBackendDisk(b *testing.B)   { benchBackend(b, hw.TierDisk) }
func BenchmarkBackendNVMe(b *testing.B)   { benchBackend(b, hw.TierNVMe) }
func BenchmarkBackendFarMem(b *testing.B) { benchBackend(b, hw.TierFarMemory) }

// BenchmarkFarMemoryBatch16 exercises the far-memory batching path: 16
// contiguous requests queued in one busy period coalesce into round
// trips, covering batch formation, wire-shape coalescing, and the
// shared completion sweep.
func BenchmarkFarMemoryBatch16(b *testing.B) {
	c := sim.NewClock()
	p := hw.ScaledTier(hw.TierFarMemory, 8<<20)
	d := NewFarMemory(c, p, 0, nil, nil)
	done := func() {}
	for i := int64(0); i < 16; i++ {
		d.Submit(Request{Block: i, Pages: 1, Kind: PrefetchRead, Done: done})
	}
	c.Drain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := int64(0); j < 16; j++ {
			d.Submit(Request{Block: j, Pages: 1, Kind: PrefetchRead, Done: done})
		}
		c.Drain()
	}
}
