package disk

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sim"
)

// NVMe is the flash-tier Backend: a flat-latency device with no
// positional state. Requests service FCFS — with no arm to schedule
// around, reordering buys nothing — under the NVMeCost model, whose
// command latency amortizes across the device's internal parallelism as
// the queue deepens. Fault injection, retries, and degradation follow
// the same contract as Disk: transient failures retry in place with
// exponential backoff under the injector's policy, and only an
// exhausted policy reaches Failed.
type NVMe struct {
	clock *sim.Clock
	p     hw.Params
	id    int
	cost  *NVMeCost

	busy    bool
	queue   []Request
	n       Stats
	c       counters
	track   *obs.Track // service-time spans; nil when tracing is off
	depthHi int        // high-water queue depth, for diagnostics

	// Fault-free completion state, exactly as in Disk: one field holds
	// the in-service request's Done and one construction-time bound
	// method is scheduled per completion, so the steady state allocates
	// nothing.
	curDone       func()
	serviceDoneFn func()

	flt   *fault.Injector
	retry fault.RetryPolicy
}

// NewNVMe returns an idle NVMe-tier device. Counters register in reg as
// "disk.<id>.*" (nil gets a private registry); serviced requests become
// spans on track (nil disables).
func NewNVMe(clock *sim.Clock, p hw.Params, id int, reg *obs.Registry, track *obs.Track) *NVMe {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	d := &NVMe{clock: clock, p: p, id: id, cost: NewNVMeCost(p),
		c: newCounters(reg, id), track: track}
	d.serviceDoneFn = d.serviceDone
	return d
}

// ID returns the device's index within its array.
func (d *NVMe) ID() int { return d.id }

// Model returns the device's flat-latency cost model.
func (d *NVMe) Model() CostModel { return d.cost }

// SetFaults attaches a fault injector (nil detaches) and adopts its
// retry policy.
func (d *NVMe) SetFaults(inj *fault.Injector) {
	d.flt = inj
	d.retry = inj.Retry()
}

// Stats returns a snapshot of the device's accumulated statistics,
// publishing them into the metrics registry as a side effect.
func (d *NVMe) Stats() Stats {
	d.c.publish(&d.n)
	return d.n
}

// QueueLen returns the number of requests waiting (not counting the one
// in service).
func (d *NVMe) QueueLen() int { return len(d.queue) }

// Busy reports whether a request is currently being serviced.
func (d *NVMe) Busy() bool { return d.busy }

// Submit enqueues a request. Completion is signalled by r.Done on the
// simulated clock.
func (d *NVMe) Submit(r Request) {
	if r.Pages <= 0 {
		panic(fmt.Sprintf("nvme %d: request for %d pages", d.id, r.Pages))
	}
	d.queue = append(d.queue, r)
	if len(d.queue) > d.depthHi {
		d.depthHi = len(d.queue)
	}
	if !d.busy {
		d.startNext()
	}
}

func (d *NVMe) startNext() {
	if len(d.queue) == 0 {
		d.busy = false
		return
	}
	r := d.queue[0]
	d.queue = d.queue[:copy(d.queue, d.queue[1:])]
	d.busy = true
	d.n.Requests[r.Kind]++
	d.n.Pages[r.Kind] += r.Pages
	if d.flt == nil {
		t := d.cost.ServiceTime(r, len(d.queue))
		d.n.BusyTime += t
		if d.track != nil { // guard: Kind.String is a call even when untraced
			d.track.SpanArg(r.Kind.String(), "nvme", d.clock.Now(), t, "block", r.Block)
		}
		d.curDone = r.Done
		d.clock.Schedule(t, d.serviceDoneFn)
		return
	}
	d.attempt(r, 1, d.clock.Now())
}

// serviceDone completes the request in service on the fault-free path
// and starts the next one; the callback is consumed before it runs so
// re-entrant submissions queue behind the startNext.
func (d *NVMe) serviceDone() {
	done := d.curDone
	d.curDone = nil
	if done != nil {
		done()
	}
	d.startNext()
}

// attempt services one try of a request, retrying in place with
// exponential backoff until success or policy exhaustion, exactly as
// the disk does.
func (d *NVMe) attempt(r Request, attempt int, started sim.Time) {
	t := d.cost.ServiceTime(r, len(d.queue))
	v := d.flt.Attempt(d.id, r.Kind == Write, d.clock.Now())
	if v.Slow > 1 {
		t = sim.Time(float64(t) * v.Slow)
	}
	d.n.BusyTime += t
	if d.track != nil {
		d.track.SpanArg(r.Kind.String(), "nvme", d.clock.Now(), t, "block", r.Block)
	}

	if !v.Fail {
		d.clock.Schedule(t, func() {
			if r.Done != nil {
				r.Done()
			}
			d.startNext()
		})
		return
	}
	backoff := d.retry.Backoff(attempt)
	overBudget := d.retry.Timeout > 0 && d.clock.Now()+t+backoff-started > d.retry.Timeout
	if r.Failed != nil && (attempt >= d.retry.MaxAttempts || overBudget) {
		d.n.Failures++
		d.clock.Schedule(t, func() {
			r.Failed()
			d.startNext()
		})
		return
	}
	d.n.Retries++
	d.clock.Schedule(t+backoff, func() {
		d.attempt(r, attempt+1, started)
	})
}

// Utilization returns the fraction of the elapsed simulated time this
// device was busy, publishing statistics as Stats does.
func (d *NVMe) Utilization(elapsed sim.Time) float64 {
	d.c.publish(&d.n)
	if elapsed <= 0 {
		return 0
	}
	return float64(d.n.BusyTime) / float64(elapsed)
}
