// Storage backends. The paper's platform is an array of rotating disks,
// but the prefetching question it studies — when do compiler-inserted
// hints pay for themselves? — re-appears on every storage tier down to
// far memory reached over a network (3PO). The Backend interface is the
// device contract the striped file system programs against; each tier
// supplies its own implementation with its own CostModel, and the layers
// above (stripefs, vm, fault injection) are tier-oblivious.
package disk

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Backend is one simulated storage device: a request queue serviced on
// the simulated clock under a tier-specific cost model. The striped file
// system holds an array of Backends and stripes file pages across them;
// everything above the interface is tier-oblivious.
//
// The contract every implementation must honor (enforced by the
// conformance suite in conformance_test.go):
//
//   - Delivery: every submitted request resolves through exactly one of
//     Done or Failed, signalled on the simulated clock, never
//     re-entrantly from Submit.
//   - Faults: with an Injector attached, each service attempt consults
//     fault.Injector.Attempt keyed by the device ID; transient failures
//     retry under the injector's RetryPolicy, and only an exhausted
//     policy reaches Failed. A nil Failed means the request must not
//     fail: the device keeps retrying until the attempt succeeds.
//     Without an injector no request ever fails.
//   - Stats: Requests/Pages/BusyTime are monotonically non-decreasing
//     and published to the metrics registry on every Stats/Utilization
//     read.
//   - Allocation: the fault-free steady-state submit/service path
//     allocates nothing.
//
// Timing models differ per tier; data movement does not. Backends only
// decide when completions fire, so a program's results are identical
// across tiers by construction — a property the fault harness checks
// end to end.
type Backend interface {
	// ID returns the device's index within its array.
	ID() int
	// Submit enqueues a request; completion is signalled via r.Done (or
	// r.Failed) on the simulated clock.
	Submit(r Request)
	// Stats snapshots the device's accumulated statistics, publishing
	// them to the metrics registry as a side effect.
	Stats() Stats
	// SetFaults attaches a fault injector (nil detaches) and adopts its
	// retry policy.
	SetFaults(inj *fault.Injector)
	// Utilization returns the busy fraction of the elapsed simulated
	// time, publishing statistics like Stats does.
	Utilization(elapsed sim.Time) float64
	// QueueLen returns the number of requests waiting (not counting
	// those in service). The OS consults it to drop prefetch hints when
	// the device is overloaded.
	QueueLen() int
	// Busy reports whether the device is currently servicing a request.
	Busy() bool
	// Model returns the device's cost model.
	Model() CostModel
}

// CostModel is a device's service-time model. It owns whatever
// positional state the tier needs (a disk arm's cylinder, nothing for
// flat-latency devices) and replaces the seek/rotation arithmetic that
// used to be hard-coded in Disk.ServiceTime.
type CostModel interface {
	// Name identifies the model ("disk", "nvme", "farmem").
	Name() string
	// ServiceTime returns the time to service r given the device's
	// queue depth at dispatch (waiting requests, in-service excluded)
	// and advances the model's positional state past r.
	ServiceTime(r Request, depth int) sim.Time
}

// NewBackend builds one storage device of p's tier: a striped-array
// disk, an NVMe-like flat-latency device, or a far-memory tier. sched is
// honored only on the disk tier (the other tiers have no positional
// state to schedule around and service FCFS). Counters register in reg
// as "disk.<id>.*" whatever the tier — the array index, not the
// technology, names the device — and serviced requests become spans on
// track (nil disables).
func NewBackend(clock *sim.Clock, p hw.Params, id int, sched Scheduler, reg *obs.Registry, track *obs.Track) Backend {
	switch p.Tier {
	case hw.TierDisk:
		return NewObserved(clock, p, id, sched, reg, track)
	case hw.TierNVMe:
		return NewNVMe(clock, p, id, reg, track)
	case hw.TierFarMemory:
		return NewFarMemory(clock, p, id, reg, track)
	}
	panic(fmt.Sprintf("disk: unknown storage tier %v", p.Tier))
}

// DiskCost is the disk tier's positional service-time model: seek
// proportional to cylinder distance, half a rotation of latency, and a
// per-page media transfer. Its positional state is the arm's cylinder.
type DiskCost struct {
	p       hw.Params
	headCyl int64
}

// NewDiskCost returns a disk cost model with the arm at cylinder 0.
func NewDiskCost(p hw.Params) *DiskCost { return &DiskCost{p: p} }

// Name implements CostModel.
func (m *DiskCost) Name() string { return "disk" }

// HeadCyl returns the arm's current cylinder (the scheduler's input).
func (m *DiskCost) HeadCyl() int64 { return m.headCyl }

// At returns the positional service time for a request starting with
// the head at fromCyl, without moving the arm.
func (m *DiskCost) At(fromCyl int64, r Request) sim.Time {
	cyl := r.Block / m.p.PagesPerCyl
	dist := cyl - fromCyl
	if dist < 0 {
		dist = -dist
	}
	var seek sim.Time
	if dist > 0 {
		span := m.p.SeekMax - m.p.SeekMin
		seek = m.p.SeekMin + sim.Time(int64(span)*dist/m.p.DiskCylinders)
	}
	rot := m.p.RotationTime / 2
	xfer := sim.Time(int64(m.p.TransferPerPage) * r.Pages)
	return seek + rot + xfer
}

// ServiceTime implements CostModel: the positional cost from the current
// head position, leaving the arm at the request's last cylinder. Queue
// depth does not matter to a serial arm.
func (m *DiskCost) ServiceTime(r Request, depth int) sim.Time {
	t := m.At(m.headCyl, r)
	m.headCyl = (r.Block + r.Pages - 1) / m.p.PagesPerCyl
	return t
}

// NVMeCost is the NVMe tier's service-time model: no positional state,
// a fixed command latency that amortizes across the device's internal
// parallelism as the queue deepens, plus a per-page media transfer.
type NVMeCost struct {
	p hw.Params
}

// NewNVMeCost returns the flat-latency cost model for p.
func NewNVMeCost(p hw.Params) *NVMeCost { return &NVMeCost{p: p} }

// Name implements CostModel.
func (m *NVMeCost) Name() string { return "nvme" }

// ServiceTime implements CostModel. A deeper queue lets the device
// overlap command handling across its internal channels, so the
// effective per-command latency shrinks with depth (down to
// latency/parallelism); the media transfer does not amortize.
func (m *NVMeCost) ServiceTime(r Request, depth int) sim.Time {
	par := depth + 1 // the request itself counts
	if par > m.p.NVMeParallelism {
		par = m.p.NVMeParallelism
	}
	if par < 1 {
		par = 1
	}
	return m.p.NVMeLatency/sim.Time(par) + sim.Time(int64(m.p.NVMeTransferPerPage)*r.Pages)
}

// FarMemCost is the far-memory tier's service-time model: every fetch
// batch is one network round trip carrying one or more coalesced wire
// requests. For a single request the cost is the full round trip plus
// one header plus the wire transfer; the FarMemory device amortizes the
// round trip by batching queued requests (BatchTime).
type FarMemCost struct {
	p hw.Params
}

// NewFarMemCost returns the network cost model for p.
func NewFarMemCost(p hw.Params) *FarMemCost { return &FarMemCost{p: p} }

// Name implements CostModel.
func (m *FarMemCost) Name() string { return "farmem" }

// ServiceTime implements CostModel: one round trip carrying one wire
// request. Queue depth does not change a single request's cost — the
// device amortizes depth through batching instead.
func (m *FarMemCost) ServiceTime(r Request, depth int) sim.Time {
	return m.p.NetRTT + m.p.NetPerRequest + sim.Time(int64(m.p.NetTransferPerPage)*r.Pages)
}

// BatchTime returns the cost of one round trip carrying wireReqs
// coalesced requests moving pages pages in total.
func (m *FarMemCost) BatchTime(wireReqs int, pages int64) sim.Time {
	return m.p.NetRTT +
		sim.Time(int64(m.p.NetPerRequest)*int64(wireReqs)) +
		sim.Time(int64(m.p.NetTransferPerPage)*pages)
}
