package disk

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/hw"
	"repro/internal/sim"
)

// The backend conformance suite: every Backend implementation must honor
// the contract documented on the interface — delivery exactly once and
// never re-entrantly from Submit, fault retries and degradation under
// the injector's policy, monotonic statistics, determinism, and a
// zero-allocation fault-free steady state. Each test runs once per
// storage tier.

var conformanceTiers = []hw.Tier{hw.TierDisk, hw.TierNVMe, hw.TierFarMemory}

func newTierBackend(c *sim.Clock, tier hw.Tier) Backend {
	return NewBackend(c, hw.ScaledTier(tier, 8<<20), 0, nil, nil, nil)
}

func forEachTier(t *testing.T, f func(t *testing.T, tier hw.Tier)) {
	for _, tier := range conformanceTiers {
		tier := tier
		t.Run(tier.String(), func(t *testing.T) { f(t, tier) })
	}
}

// Every submitted request completes exactly once, on the clock rather
// than re-entrantly from Submit, and the device drains to idle with its
// counts matching.
func TestConformanceDeliveryExactlyOnce(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier hw.Tier) {
		c := sim.NewClock()
		d := newTierBackend(c, tier)
		const n = 200
		doneCount := make([]int, n)
		var pages int64
		for i := 0; i < n; i++ {
			i := i
			pg := int64(1 + i%4)
			pages += pg
			d.Submit(Request{
				Block: int64(i * 7 % 512), Pages: pg, Kind: Kind(i % int(numKinds)),
				Done: func() { doneCount[i]++ },
			})
			if doneCount[i] != 0 {
				t.Fatal("completion fired re-entrantly from Submit")
			}
		}
		c.Drain()
		for i, v := range doneCount {
			if v != 1 {
				t.Fatalf("request %d completed %d times", i, v)
			}
		}
		if d.Busy() || d.QueueLen() != 0 {
			t.Fatalf("device not idle after Drain: busy=%v queue=%d", d.Busy(), d.QueueLen())
		}
		s := d.Stats()
		if s.RequestsTotal() != n {
			t.Fatalf("Stats.RequestsTotal = %d, want %d", s.RequestsTotal(), n)
		}
		if got := s.Pages[FaultRead] + s.Pages[PrefetchRead] + s.Pages[Write]; got != pages {
			t.Fatalf("Stats pages = %d, want %d", got, pages)
		}
		if s.BusyTime <= 0 {
			t.Fatal("no busy time accumulated")
		}
	})
}

// Requests/Pages/BusyTime never decrease across Stats reads.
func TestConformanceStatsMonotonic(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier hw.Tier) {
		c := sim.NewClock()
		d := newTierBackend(c, tier)
		prev := d.Stats()
		for wave := 0; wave < 5; wave++ {
			for i := 0; i < 10; i++ {
				d.Submit(Request{Block: int64(wave*100 + i), Pages: 1, Kind: FaultRead})
			}
			c.Drain()
			s := d.Stats()
			if s.RequestsTotal() < prev.RequestsTotal() || s.BusyTime < prev.BusyTime {
				t.Fatalf("stats went backwards: %+v after %+v", s, prev)
			}
			prev = s
		}
		if prev.RequestsTotal() != 50 {
			t.Fatalf("RequestsTotal = %d, want 50", prev.RequestsTotal())
		}
	})
}

// Transient faults retry in place until success under a generous policy:
// nothing is lost and nothing permanently fails.
func TestConformanceRetryEventuallySucceeds(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier hw.Tier) {
		c := sim.NewClock()
		d := newTierBackend(c, tier)
		d.SetFaults(fault.NewInjector(fault.Profile{
			Name: "t", Seed: 11, ReadErrorRate: 0.5, WriteErrorRate: 0.5,
			Retry: fault.RetryPolicy{MaxAttempts: 64, Timeout: 3600 * sim.Second},
		}, nil, nil))
		completed := 0
		for i := int64(0); i < 50; i++ {
			d.Submit(Request{Block: i, Pages: 1, Kind: FaultRead, Done: func() { completed++ }})
		}
		c.Drain()
		if completed != 50 {
			t.Fatalf("completed %d of 50 requests", completed)
		}
		s := d.Stats()
		if s.Retries == 0 {
			t.Fatal("50% error rate produced no retries")
		}
		if s.Failures != 0 {
			t.Fatalf("%d permanent failures despite a generous policy", s.Failures)
		}
	})
}

// An exhausted retry policy degrades by the request's contract: requests
// with a Failed handler fail permanently (counted), requests without one
// must still complete.
func TestConformanceExhaustionDegradation(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier hw.Tier) {
		c := sim.NewClock()
		d := newTierBackend(c, tier)
		d.SetFaults(fault.NewInjector(fault.Profile{
			Name: "t", Seed: 3, ReadErrorRate: fault.MaxRate, WriteErrorRate: fault.MaxRate,
			Retry: fault.RetryPolicy{MaxAttempts: 2, Timeout: 3600 * sim.Second},
		}, nil, nil))
		var done, failed int
		for i := int64(0); i < 40; i++ {
			d.Submit(Request{Block: i, Pages: 1, Kind: PrefetchRead,
				Done:   func() { done++ },
				Failed: func() { failed++ },
			})
		}
		c.Drain()
		if done+failed != 40 {
			t.Fatalf("resolved %d+%d of 40 requests", done, failed)
		}
		if failed == 0 {
			t.Fatal("no permanent failures at MaxRate error probability")
		}
		if s := d.Stats(); s.Failures != int64(failed) {
			t.Fatalf("Stats.Failures = %d, want %d", s.Failures, failed)
		}
	})
}

// A nil Failed means must-not-fail: the device keeps retrying past the
// policy until the attempt succeeds, whatever the tier's retry shape
// (per-request on disk and NVMe, per-round-trip requeue on far memory).
func TestConformanceNilFailedNeverFails(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier hw.Tier) {
		c := sim.NewClock()
		d := newTierBackend(c, tier)
		d.SetFaults(fault.NewInjector(fault.Profile{
			Name: "t", Seed: 5, ReadErrorRate: fault.MaxRate,
			Retry: fault.RetryPolicy{MaxAttempts: 2, Timeout: sim.Microsecond},
		}, nil, nil))
		completed := 0
		for i := int64(0); i < 10; i++ {
			d.Submit(Request{Block: i, Pages: 1, Kind: FaultRead, Done: func() { completed++ }})
		}
		c.Drain()
		if completed != 10 {
			t.Fatalf("completed %d of 10 must-not-fail requests", completed)
		}
		if s := d.Stats(); s.Failures != 0 {
			t.Fatalf("must-not-fail requests recorded %d failures", s.Failures)
		}
	})
}

// The same seed reproduces the same completion time and statistics:
// fault injection keeps every tier deterministic.
func TestConformanceDeterministic(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier hw.Tier) {
		run := func() (sim.Time, Stats) {
			c := sim.NewClock()
			d := newTierBackend(c, tier)
			d.SetFaults(fault.NewInjector(fault.Profile{
				Name: "t", Seed: 99, ReadErrorRate: 0.3, SlowRate: 0.2, SlowFactor: 4,
			}, nil, nil))
			for i := int64(0); i < 30; i++ {
				d.Submit(Request{Block: i * 7, Pages: 1 + i%3, Kind: Kind(i % int64(numKinds)), Failed: func() {}})
			}
			c.Drain()
			return c.Now(), d.Stats()
		}
		t1, s1 := run()
		t2, s2 := run()
		if t1 != t2 || s1 != s2 {
			t.Fatalf("faulted runs diverged: %v/%+v vs %v/%+v", t1, s1, t2, s2)
		}
	})
}

// The fault-free steady-state submit/service path allocates nothing on
// any tier.
func TestConformanceFaultFreePathAllocs(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier hw.Tier) {
		c := sim.NewClock()
		d := newTierBackend(c, tier)
		done := func() {}
		// Warm up: grow the queue, batch, and event-heap capacities.
		for i := int64(0); i < 32; i++ {
			d.Submit(Request{Block: i, Pages: 1, Kind: FaultRead, Done: done})
		}
		c.Drain()
		req := Request{Block: 5, Pages: 2, Kind: PrefetchRead, Done: done}
		allocs := testing.AllocsPerRun(200, func() {
			d.Submit(req)
			c.Drain()
		})
		if allocs != 0 {
			t.Fatalf("fault-free path allocates %.1f per request, want 0", allocs)
		}
	})
}

// Model identifies the tier and prices an uncontended page read at the
// platform's AvgPageRead on the flat tiers (the disk's positional model
// depends on the arm, which AvgPageRead averages over).
func TestConformanceCostModel(t *testing.T) {
	forEachTier(t, func(t *testing.T, tier hw.Tier) {
		c := sim.NewClock()
		p := hw.ScaledTier(tier, 8<<20)
		d := newTierBackend(c, tier)
		if got := d.Model().Name(); got != tier.String() {
			t.Fatalf("Model().Name() = %q, want %q", got, tier.String())
		}
		if tier == hw.TierDisk {
			return
		}
		got := d.Model().ServiceTime(Request{Block: 0, Pages: 1, Kind: FaultRead}, 0)
		if want := p.AvgPageRead(); got != want {
			t.Fatalf("uncontended page read = %v, want AvgPageRead %v", got, want)
		}
	})
}

// NVMe-specific: queue depth amortizes the command latency down to the
// device's internal parallelism, so a deep queue drains faster per
// request than a serial trickle.
func TestNVMeDepthAmortizesLatency(t *testing.T) {
	p := hw.ScaledTier(hw.TierNVMe, 8<<20)
	m := NewNVMeCost(p)
	shallow := m.ServiceTime(Request{Pages: 1}, 0)
	deep := m.ServiceTime(Request{Pages: 1}, p.NVMeParallelism+5)
	if deep >= shallow {
		t.Fatalf("deep-queue service %v not below shallow %v", deep, shallow)
	}
	floor := p.NVMeLatency/sim.Time(p.NVMeParallelism) + p.NVMeTransferPerPage
	if deep != floor {
		t.Fatalf("deep-queue service %v, want floor %v", deep, floor)
	}
}

// Far-memory-specific: contiguous requests coalesce into one wire
// request and a batch costs one round trip, so fetching a run of blocks
// in one busy period is far cheaper than fetching them serially.
func TestFarMemoryBatchingAmortizesRTT(t *testing.T) {
	p := hw.ScaledTier(hw.TierFarMemory, 8<<20)

	elapsedFor := func(submit func(d *FarMemory, done func())) sim.Time {
		c := sim.NewClock()
		d := NewFarMemory(c, p, 0, nil, nil)
		submit(d, func() {})
		c.Drain()
		return c.Now()
	}

	// 8 contiguous single-page requests submitted together: the first
	// forms its own round trip, the remaining 7 coalesce into one wire
	// request in the second.
	batched := elapsedFor(func(d *FarMemory, done func()) {
		for i := int64(0); i < 8; i++ {
			d.Submit(Request{Block: i, Pages: 1, Kind: PrefetchRead, Done: done})
		}
	})
	serial := 8 * (p.NetRTT + p.NetPerRequest + p.NetTransferPerPage)
	if batched >= serial {
		t.Fatalf("batched fetch %v not below serial cost %v", batched, serial)
	}
	want := 2*p.NetRTT + 2*p.NetPerRequest + 8*p.NetTransferPerPage
	if batched != want {
		t.Fatalf("batched fetch = %v, want %v", batched, want)
	}

	// Batch size is bounded: NetBatchRequests+1 queued requests need two
	// round trips even when all are contiguous.
	n := int64(p.NetBatchRequests) + 1
	over := elapsedFor(func(d *FarMemory, done func()) {
		d.Submit(Request{Block: 1 << 20, Pages: 1, Kind: FaultRead, Done: done}) // occupy the link
		for i := int64(0); i < n; i++ {
			d.Submit(Request{Block: i, Pages: 1, Kind: PrefetchRead, Done: done})
		}
	})
	if min := 3 * p.NetRTT; over < min {
		t.Fatalf("overfull queue drained in %v, want at least 3 round trips (%v)", over, min)
	}
}

// NewBackend rejects an unknown tier loudly instead of silently
// defaulting to disks.
func TestNewBackendUnknownTierPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown tier did not panic")
		}
	}()
	p := hw.Scaled(8 << 20)
	p.Tier = hw.Tier(99)
	NewBackend(sim.NewClock(), p, 0, nil, nil, nil)
}
