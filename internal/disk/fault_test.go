package disk

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// flakyDisk returns a disk with a transient-error injector attached.
func flakyDisk(t *testing.T, rate float64, pol fault.RetryPolicy, seed uint64) (*sim.Clock, *Disk) {
	t.Helper()
	c := sim.NewClock()
	d := New(c, testParams(), 0, nil)
	prof := fault.Profile{
		Name:          "t",
		Seed:          seed,
		ReadErrorRate: rate,
		Retry:         pol,
	}
	d.SetFaults(fault.NewInjector(prof, nil, nil))
	return c, d
}

// Transient errors are retried in place and the request still completes,
// with the retries accounted.
func TestRetryEventuallySucceeds(t *testing.T) {
	c, d := flakyDisk(t, 0.5, fault.RetryPolicy{MaxAttempts: 64, Timeout: 3600 * sim.Second}, 1)
	var completed int
	for i := int64(0); i < 50; i++ {
		d.Submit(Request{Block: i, Pages: 1, Kind: FaultRead, Done: func() { completed++ }})
	}
	c.Drain()
	if completed != 50 {
		t.Fatalf("completed %d of 50 requests", completed)
	}
	s := d.Stats()
	if s.Retries == 0 {
		t.Fatal("50% error rate produced no retries")
	}
	if s.Failures != 0 {
		t.Fatalf("%d permanent failures despite a generous policy", s.Failures)
	}
}

// Exhausting MaxAttempts invokes Failed instead of Done, exactly once.
func TestGiveUpInvokesFailed(t *testing.T) {
	// MaxRate-probability errors with 2 attempts: failures are near-certain
	// over many requests.
	c, d := flakyDisk(t, fault.MaxRate, fault.RetryPolicy{MaxAttempts: 2, Timeout: 3600 * sim.Second}, 3)
	var done, failed int
	for i := int64(0); i < 40; i++ {
		d.Submit(Request{Block: i, Pages: 1, Kind: FaultRead,
			Done:   func() { done++ },
			Failed: func() { failed++ },
		})
	}
	c.Drain()
	if done+failed != 40 {
		t.Fatalf("resolved %d+%d of 40 requests", done, failed)
	}
	if failed == 0 {
		t.Fatal("no permanent failures at MaxRate error probability")
	}
	s := d.Stats()
	if s.Failures != int64(failed) {
		t.Fatalf("Stats.Failures = %d, want %d", s.Failures, failed)
	}
	// With MaxAttempts=2 each failed request retried exactly once.
	if s.Retries < int64(failed) {
		t.Fatalf("Stats.Retries = %d < failures %d", s.Retries, failed)
	}
}

// A nil Failed means the request must not fail: the disk keeps retrying
// past MaxAttempts until the attempt succeeds.
func TestNilFailedRetriesForever(t *testing.T) {
	c, d := flakyDisk(t, fault.MaxRate, fault.RetryPolicy{MaxAttempts: 2, Timeout: sim.Microsecond}, 5)
	var completed int
	for i := int64(0); i < 10; i++ {
		d.Submit(Request{Block: i, Pages: 1, Kind: FaultRead, Done: func() { completed++ }})
	}
	c.Drain()
	if completed != 10 {
		t.Fatalf("completed %d of 10 must-not-fail requests", completed)
	}
	if s := d.Stats(); s.Failures != 0 {
		t.Fatalf("must-not-fail requests recorded %d failures", s.Failures)
	}
}

// The per-request time budget fails a request even when attempts remain.
func TestTimeoutBudgetFailsRequest(t *testing.T) {
	// 1ns timeout: the first failed attempt already exceeds the budget, so
	// no retry is ever scheduled despite MaxAttempts allowing many.
	c, d := flakyDisk(t, fault.MaxRate, fault.RetryPolicy{MaxAttempts: 1 << 30, Timeout: 1}, 7)
	var done, failed int
	for i := int64(0); i < 40; i++ {
		d.Submit(Request{Block: i, Pages: 1, Kind: FaultRead,
			Done:   func() { done++ },
			Failed: func() { failed++ },
		})
	}
	c.Drain()
	if done+failed != 40 {
		t.Fatalf("resolved %d+%d of 40 requests", done, failed)
	}
	if failed == 0 {
		t.Fatal("no budget-exhausted failures at MaxRate error probability")
	}
	if s := d.Stats(); s.Retries != 0 {
		t.Fatalf("%d retries scheduled past a 1ns budget", s.Retries)
	}
}

// The same seed must reproduce the same completion times and retry
// counts — fault injection keeps the simulation deterministic.
func TestFaultedDiskDeterministic(t *testing.T) {
	run := func() (sim.Time, Stats) {
		c, d := flakyDisk(t, 0.3, fault.RetryPolicy{}, 99)
		for i := int64(0); i < 30; i++ {
			d.Submit(Request{Block: i * 7, Pages: 1 + i%3, Kind: Kind(i % int64(numKinds)), Failed: func() {}})
		}
		c.Drain()
		return c.Now(), d.Stats()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("faulted runs diverged: %v/%+v vs %v/%+v", t1, s1, t2, s2)
	}
}

// Latency spikes stretch service time but never lose requests.
func TestSlowdownStretchesServiceTime(t *testing.T) {
	elapsed := func(prof fault.Profile) sim.Time {
		c := sim.NewClock()
		d := New(c, testParams(), 0, nil)
		if prof.Enabled() {
			d.SetFaults(fault.NewInjector(prof, nil, nil))
		}
		n := 0
		for i := int64(0); i < 20; i++ {
			d.Submit(Request{Block: i, Pages: 1, Kind: FaultRead, Done: func() { n++ }})
		}
		c.Drain()
		if n != 20 {
			t.Fatalf("completed %d of 20", n)
		}
		return c.Now()
	}
	base := elapsed(fault.Profile{})
	slow := elapsed(fault.Profile{Name: "s", SlowRate: fault.MaxRate, SlowFactor: 10})
	if slow <= base {
		t.Fatalf("slow-disk run %v not slower than clean run %v", slow, base)
	}
}
