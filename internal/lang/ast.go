package lang

// Untyped syntax tree. Semantic analysis types it against declared
// symbols and lowers it to IR.

type expr interface{ pos() (int, int) }

type numLit struct {
	line, col int
	isFloat   bool
	i         int64
	f         float64
}

type identExpr struct {
	line, col int
	name      string
}

type indexExpr struct {
	line, col int
	name      string
	idx       []expr
}

type callExpr struct {
	line, col int
	name      string
	args      []expr
}

type binExpr struct {
	line, col int
	op        string
	a, b      expr
}

type unExpr struct {
	line, col int
	op        string
	x         expr
}

func (e numLit) pos() (int, int)    { return e.line, e.col }
func (e identExpr) pos() (int, int) { return e.line, e.col }
func (e indexExpr) pos() (int, int) { return e.line, e.col }
func (e callExpr) pos() (int, int)  { return e.line, e.col }
func (e binExpr) pos() (int, int)   { return e.line, e.col }
func (e unExpr) pos() (int, int)    { return e.line, e.col }

type stmt interface{ stmtPos() (int, int) }

type forStmt struct {
	line, col int
	v         string
	lo, hi    expr
	step      int64
	body      []stmt
}

type ifStmt struct {
	line, col int
	cond      expr
	then, els []stmt
}

type assignStmt struct {
	line, col int
	name      string
	idx       []expr // nil for scalar assignment
	rhs       expr
}

func (s forStmt) stmtPos() (int, int)    { return s.line, s.col }
func (s ifStmt) stmtPos() (int, int)     { return s.line, s.col }
func (s assignStmt) stmtPos() (int, int) { return s.line, s.col }

type arrayDecl struct {
	line, col int
	isFloat   bool
	name      string
	dims      []expr
}

type scalarDecl struct {
	line, col int
	isFloat   bool
	name      string
}

type paramDecl struct {
	line, col int
	name      string
	val       expr
	unknown   bool
}

type file struct {
	name    string
	params  []paramDecl
	arrays  []arrayDecl
	scalars []scalarDecl
	seed    int64
	hasSeed bool
	body    []stmt
}
