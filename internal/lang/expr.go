package lang

import (
	"fmt"

	"repro/internal/ir"
)

var intrinsics = map[string]ir.Intrinsic{
	"sqrt":   ir.Sqrt,
	"fabs":   ir.Abs,
	"log":    ir.Log,
	"exp":    ir.Exp,
	"sin":    ir.Sin,
	"cos":    ir.Cos,
	"pow":    ir.Pow,
	"randlc": ir.Randlc,
}

var iBinOps = map[string]ir.IBinOp{
	"+": ir.IAdd, "-": ir.ISub, "*": ir.IMul, "/": ir.IDiv, "%": ir.IMod,
	"<<": ir.IShl, ">>": ir.IShr,
}

var fBinOps = map[string]ir.FBinOp{
	"+": ir.FAdd, "-": ir.FSub, "*": ir.FMul, "/": ir.FDiv,
}

var cmpOps = map[string]ir.CmpOp{
	"<": ir.Lt, "<=": ir.Le, ">": ir.Gt, ">=": ir.Ge, "==": ir.Eq, "!=": ir.Ne,
}

// isFloatExpr decides whether an expression is float-typed: a float
// literal, a float scalar/array, a math intrinsic, or any operator over a
// float operand.
func (s *sema) isFloatExpr(e expr) bool {
	switch x := e.(type) {
	case numLit:
		return x.isFloat
	case identExpr:
		_, ok := s.scalarF[x.name]
		return ok
	case indexExpr:
		if a, ok := s.arrays[x.name]; ok {
			return a.Kind == ir.F64
		}
		return false
	case callExpr:
		if x.name == "int" {
			return false
		}
		if x.name == "min" || x.name == "max" {
			for _, a := range x.args {
				if s.isFloatExpr(a) {
					return true
				}
			}
			return false
		}
		// All intrinsics (and float()) produce floats.
		return true
	case binExpr:
		return s.isFloatExpr(x.a) || s.isFloatExpr(x.b)
	case unExpr:
		return s.isFloatExpr(x.x)
	}
	return false
}

// intExpr lowers an expression in integer context.
func (s *sema) intExpr(e expr) (ir.IExpr, error) {
	switch x := e.(type) {
	case numLit:
		if x.isFloat {
			return nil, errAt(x, "float literal in integer context")
		}
		return ir.Int(x.i), nil
	case identExpr:
		if slot, ok := s.lookupLoop(x.name); ok {
			return slot, nil
		}
		if slot, ok := s.paramsI[x.name]; ok {
			return slot, nil
		}
		if slot, ok := s.scalarI[x.name]; ok {
			return slot, nil
		}
		if _, ok := s.scalarF[x.name]; ok {
			return nil, errAt(x, "float scalar %q in integer context", x.name)
		}
		return nil, errAt(x, "undeclared identifier %q", x.name)
	case indexExpr:
		arr, idx, err := s.subscripts(x)
		if err != nil {
			return nil, err
		}
		if arr.Kind != ir.I64 {
			return nil, errAt(x, "double array %q in integer context", x.name)
		}
		return ir.ILoad{Arr: arr, Idx: idx}, nil
	case callExpr:
		if x.name == "int" {
			if len(x.args) != 1 {
				return nil, errAt(x, "int() takes 1 argument")
			}
			fe, err := s.floatExpr(x.args[0])
			if err != nil {
				return nil, err
			}
			return ir.IFromF{X: fe}, nil
		}
		if x.name == "min" || x.name == "max" {
			if len(x.args) != 2 {
				return nil, errAt(x, "%s takes 2 arguments", x.name)
			}
			a, err := s.intExpr(x.args[0])
			if err != nil {
				return nil, err
			}
			b, err := s.intExpr(x.args[1])
			if err != nil {
				return nil, err
			}
			if x.name == "min" {
				return ir.MinI(a, b), nil
			}
			return ir.MaxI(a, b), nil
		}
		return nil, errAt(x, "call %s() in integer context", x.name)
	case binExpr:
		if _, ok := cmpOps[x.op]; ok || x.op == "&&" || x.op == "||" {
			return nil, errAt(x, "boolean expression in integer context")
		}
		op, ok := iBinOps[x.op]
		if !ok {
			return nil, errAt(x, "operator %q not valid on integers", x.op)
		}
		a, err := s.intExpr(x.a)
		if err != nil {
			return nil, err
		}
		b, err := s.intExpr(x.b)
		if err != nil {
			return nil, err
		}
		return ir.IBin{Op: op, A: a, B: b}, nil
	case unExpr:
		if x.op != "-" {
			return nil, errAt(x, "operator %q in integer context", x.op)
		}
		v, err := s.intExpr(x.x)
		if err != nil {
			return nil, err
		}
		return ir.SubI(ir.Int(0), v), nil
	}
	return nil, fmt.Errorf("lang: unknown expression %T", e)
}

// floatExpr lowers an expression in float context; integer subexpressions
// are converted.
func (s *sema) floatExpr(e expr) (ir.FExpr, error) {
	if !s.isFloatExpr(e) {
		ie, err := s.intExpr(e)
		if err != nil {
			return nil, err
		}
		return ir.FromInt{X: ie}, nil
	}
	switch x := e.(type) {
	case numLit:
		return ir.Flt(x.f), nil
	case identExpr:
		if fs, ok := s.scalarF[x.name]; ok {
			return fs, nil
		}
		return nil, errAt(x, "identifier %q is not a float scalar", x.name)
	case indexExpr:
		arr, idx, err := s.subscripts(x)
		if err != nil {
			return nil, err
		}
		if arr.Kind != ir.F64 {
			return nil, errAt(x, "long array %q in float context", x.name)
		}
		return ir.FLoad{Arr: arr, Idx: idx}, nil
	case callExpr:
		switch x.name {
		case "float":
			if len(x.args) != 1 {
				return nil, errAt(x, "float() takes 1 argument")
			}
			ie, err := s.intExpr(x.args[0])
			if err != nil {
				return nil, err
			}
			return ir.FromInt{X: ie}, nil
		case "min", "max", "fmin", "fmax":
			if len(x.args) != 2 {
				return nil, errAt(x, "%s takes 2 arguments", x.name)
			}
			a, err := s.floatExpr(x.args[0])
			if err != nil {
				return nil, err
			}
			b, err := s.floatExpr(x.args[1])
			if err != nil {
				return nil, err
			}
			op := ir.FMinOp
			if x.name == "max" || x.name == "fmax" {
				op = ir.FMaxOp
			}
			return ir.FBin{Op: op, A: a, B: b}, nil
		}
		fn, ok := intrinsics[x.name]
		if !ok {
			return nil, errAt(x, "unknown function %q", x.name)
		}
		want := 1
		if fn == ir.Pow {
			want = 2
		}
		if fn == ir.Randlc {
			want = 0
		}
		if len(x.args) != want {
			return nil, errAt(x, "%s takes %d argument(s), got %d", x.name, want, len(x.args))
		}
		args := make([]ir.FExpr, len(x.args))
		for i, a := range x.args {
			fa, err := s.floatExpr(a)
			if err != nil {
				return nil, err
			}
			args[i] = fa
		}
		return ir.FCall{Fn: fn, Args: args}, nil
	case binExpr:
		op, ok := fBinOps[x.op]
		if !ok {
			return nil, errAt(x, "operator %q not valid on floats", x.op)
		}
		a, err := s.floatExpr(x.a)
		if err != nil {
			return nil, err
		}
		b, err := s.floatExpr(x.b)
		if err != nil {
			return nil, err
		}
		return ir.FBin{Op: op, A: a, B: b}, nil
	case unExpr:
		if x.op != "-" {
			return nil, errAt(x, "operator %q in float context", x.op)
		}
		v, err := s.floatExpr(x.x)
		if err != nil {
			return nil, err
		}
		return ir.FNeg{X: v}, nil
	}
	return nil, fmt.Errorf("lang: unknown expression %T", e)
}

func (s *sema) boolExpr(e expr) (ir.BExpr, error) {
	switch x := e.(type) {
	case binExpr:
		switch x.op {
		case "&&":
			a, err := s.boolExpr(x.a)
			if err != nil {
				return nil, err
			}
			b, err := s.boolExpr(x.b)
			if err != nil {
				return nil, err
			}
			return ir.And{A: a, B: b}, nil
		case "||":
			a, err := s.boolExpr(x.a)
			if err != nil {
				return nil, err
			}
			b, err := s.boolExpr(x.b)
			if err != nil {
				return nil, err
			}
			return ir.Or{A: a, B: b}, nil
		}
		op, ok := cmpOps[x.op]
		if !ok {
			return nil, errAt(x, "expected comparison, found %q", x.op)
		}
		if s.isFloatExpr(x.a) || s.isFloatExpr(x.b) {
			a, err := s.floatExpr(x.a)
			if err != nil {
				return nil, err
			}
			b, err := s.floatExpr(x.b)
			if err != nil {
				return nil, err
			}
			return ir.CmpF{Op: op, A: a, B: b}, nil
		}
		a, err := s.intExpr(x.a)
		if err != nil {
			return nil, err
		}
		b, err := s.intExpr(x.b)
		if err != nil {
			return nil, err
		}
		return ir.CmpI{Op: op, A: a, B: b}, nil
	case unExpr:
		if x.op == "!" {
			b, err := s.boolExpr(x.x)
			if err != nil {
				return nil, err
			}
			return ir.Not{X: b}, nil
		}
	}
	return nil, errAt(e, "expected boolean expression")
}

func (s *sema) subscripts(x indexExpr) (*ir.Array, []ir.IExpr, error) {
	arr, ok := s.arrays[x.name]
	if !ok {
		return nil, nil, errAt(x, "undeclared array %q", x.name)
	}
	if len(x.idx) != len(arr.DimExprs) {
		return nil, nil, errAt(x, "array %s has %d dimensions, got %d subscripts",
			x.name, len(arr.DimExprs), len(x.idx))
	}
	idx := make([]ir.IExpr, len(x.idx))
	for i, d := range x.idx {
		ie, err := s.intExpr(d)
		if err != nil {
			return nil, nil, err
		}
		idx[i] = ie
	}
	return arr, idx, nil
}
