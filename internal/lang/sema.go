package lang

import (
	"fmt"

	"repro/internal/ir"
)

// Parse compiles source text to a loop-nest IR program.
func Parse(src string) (*ir.Program, error) {
	f, err := parse(src)
	if err != nil {
		return nil, err
	}
	s := &sema{
		prog:    ir.NewProgram(f.name),
		arrays:  map[string]*ir.Array{},
		paramsI: map[string]ir.ISlot{},
		scalarI: map[string]ir.ISlot{},
		scalarF: map[string]ir.FScalar{},
	}
	if f.hasSeed {
		s.prog.Seed = f.seed
	}
	if err := s.declare(f); err != nil {
		return nil, err
	}
	body, err := s.stmts(f.body)
	if err != nil {
		return nil, err
	}
	s.prog.Body = body
	return s.prog, nil
}

// MustParse is Parse for compiled-in kernel sources; it panics on error.
func MustParse(src string) *ir.Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type sema struct {
	prog    *ir.Program
	arrays  map[string]*ir.Array
	paramsI map[string]ir.ISlot
	scalarI map[string]ir.ISlot
	scalarF map[string]ir.FScalar
	// loop variables, innermost last (lexical scoping with shadowing)
	loops []struct {
		name string
		slot ir.ISlot
	}
}

func errAt(e interface{ pos() (int, int) }, format string, args ...interface{}) error {
	l, c := e.pos()
	return &Error{Line: l, Col: c, Msg: fmt.Sprintf(format, args...)}
}

func (s *sema) declare(f *file) error {
	taken := map[string]string{}
	claim := func(name, what string, line, col int) error {
		if prev, ok := taken[name]; ok {
			return &Error{Line: line, Col: col, Msg: fmt.Sprintf("%s %q redeclares %s", what, name, prev)}
		}
		taken[name] = what
		return nil
	}
	for _, pd := range f.params {
		if err := claim(pd.name, "param", pd.line, pd.col); err != nil {
			return err
		}
		// Parameter values may reference earlier parameters.
		ie, err := s.intExpr(pd.val)
		if err != nil {
			return err
		}
		env := map[int]int64{}
		for _, prm := range s.prog.Params {
			env[prm.Slot] = prm.Val
		}
		v, ok := ir.ConstEval(ie, env)
		if !ok {
			return &Error{Line: pd.line, Col: pd.col, Msg: fmt.Sprintf("param %s: value must be constant", pd.name)}
		}
		s.paramsI[pd.name] = s.prog.NewParam(pd.name, v, !pd.unknown)
	}
	for _, ad := range f.arrays {
		if err := claim(ad.name, "array", ad.line, ad.col); err != nil {
			return err
		}
		dims := make([]ir.IExpr, len(ad.dims))
		for i, d := range ad.dims {
			ie, err := s.intExpr(d)
			if err != nil {
				return err
			}
			dims[i] = ie
		}
		if ad.isFloat {
			s.arrays[ad.name] = s.prog.NewArrayF(ad.name, dims...)
		} else {
			s.arrays[ad.name] = s.prog.NewArrayI(ad.name, dims...)
		}
	}
	for _, sd := range f.scalars {
		if err := claim(sd.name, "scalar", sd.line, sd.col); err != nil {
			return err
		}
		if sd.isFloat {
			s.scalarF[sd.name] = s.prog.NewScalarF(sd.name)
		} else {
			s.scalarI[sd.name] = s.prog.NewScalarI(sd.name)
		}
	}
	return nil
}

func (s *sema) lookupLoop(name string) (ir.ISlot, bool) {
	for i := len(s.loops) - 1; i >= 0; i-- {
		if s.loops[i].name == name {
			return s.loops[i].slot, true
		}
	}
	return ir.ISlot{}, false
}

func (s *sema) stmts(in []stmt) ([]ir.Stmt, error) {
	var out []ir.Stmt
	for _, st := range in {
		lowered, err := s.stmt(st)
		if err != nil {
			return nil, err
		}
		out = append(out, lowered)
	}
	return out, nil
}

func (s *sema) stmt(st stmt) (ir.Stmt, error) {
	switch x := st.(type) {
	case forStmt:
		lo, err := s.intExpr(x.lo)
		if err != nil {
			return nil, err
		}
		hi, err := s.intExpr(x.hi)
		if err != nil {
			return nil, err
		}
		if x.step <= 0 {
			return nil, &Error{Line: x.line, Col: x.col, Msg: "loop step must be positive"}
		}
		v := s.prog.NewLoopVar(x.v)
		s.loops = append(s.loops, struct {
			name string
			slot ir.ISlot
		}{x.v, v})
		body, err := s.stmts(x.body)
		s.loops = s.loops[:len(s.loops)-1]
		if err != nil {
			return nil, err
		}
		return ir.For(v, lo, hi, x.step, body...), nil

	case ifStmt:
		cond, err := s.boolExpr(x.cond)
		if err != nil {
			return nil, err
		}
		then, err := s.stmts(x.then)
		if err != nil {
			return nil, err
		}
		els, err := s.stmts(x.els)
		if err != nil {
			return nil, err
		}
		return ir.If{Cond: cond, Then: then, Else: els}, nil

	case assignStmt:
		if x.idx == nil {
			if fs, ok := s.scalarF[x.name]; ok {
				rhs, err := s.floatExpr(x.rhs)
				if err != nil {
					return nil, err
				}
				return ir.SetF(fs, rhs), nil
			}
			if is, ok := s.scalarI[x.name]; ok {
				rhs, err := s.intExpr(x.rhs)
				if err != nil {
					return nil, err
				}
				return ir.SetI(is, rhs), nil
			}
			return nil, &Error{Line: x.line, Col: x.col, Msg: fmt.Sprintf("assignment to undeclared scalar %q", x.name)}
		}
		arr, ok := s.arrays[x.name]
		if !ok {
			return nil, &Error{Line: x.line, Col: x.col, Msg: fmt.Sprintf("store to undeclared array %q", x.name)}
		}
		if len(x.idx) != len(arr.DimExprs) {
			return nil, &Error{Line: x.line, Col: x.col,
				Msg: fmt.Sprintf("array %s has %d dimensions, got %d subscripts", x.name, len(arr.DimExprs), len(x.idx))}
		}
		idx := make([]ir.IExpr, len(x.idx))
		for i, d := range x.idx {
			ie, err := s.intExpr(d)
			if err != nil {
				return nil, err
			}
			idx[i] = ie
		}
		if arr.Kind == ir.F64 {
			rhs, err := s.floatExpr(x.rhs)
			if err != nil {
				return nil, err
			}
			return ir.StoreF(arr, idx, rhs), nil
		}
		rhs, err := s.intExpr(x.rhs)
		if err != nil {
			return nil, err
		}
		return ir.StoreI(arr, idx, rhs), nil
	}
	return nil, fmt.Errorf("lang: unknown statement %T", st)
}
