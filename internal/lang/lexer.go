// Package lang is the front end of the prefetching compiler: a small
// Fortran-flavoured loop language (counted loops, multi-dimensional
// arrays of double/long, scalars, conditionals, math intrinsics) with a
// lexer, recursive-descent parser, and semantic analysis that lowers
// source text to the loop-nest IR the compiler pass operates on.
//
// Grammar sketch:
//
//	program  = "program" ident decl* stmt*
//	decl     = "param" ident "=" expr ["unknown"]
//	         | "array" ("double"|"long") ident dims ("," ident dims)*
//	         | "scalar" ("double"|"long") ident ("," ident)*
//	         | "seed" intlit
//	stmt     = "for" ident "=" expr ".." expr ["step" intlit] block
//	         | "if" expr block ["else" block]
//	         | ident "=" expr                  (scalar assign)
//	         | ident dims "=" expr             (array store)
//	block    = "{" stmt* "}"
//
// Expressions use C syntax and precedence: || && == != < <= > >= + -
// * / % << >> unary- ! calls and subscripts. Intrinsics: sqrt, fabs,
// log, exp, sin, cos, pow, randlc(), float(), min, max, fmin, fmax.
package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tFloat
	tPunct // operators and punctuation, in text
)

type token struct {
	kind tokKind
	text string
	ival int64
	fval float64
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// Error is a front-end diagnostic with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

var punct2 = []string{"<<", ">>", "<=", ">=", "==", "!=", "&&", "||", ".."}

func lex(src string) ([]token, error) {
	lx := &lexer{src: src, line: 1, col: 1}
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tEOF {
			return toks, nil
		}
	}
}

func (l *lexer) errorf(format string, args ...interface{}) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.advance()
			l.advance()
			for l.pos+1 < len(l.src) && !(l.peekByte() == '*' && l.src[l.pos+1] == '/') {
				l.advance()
			}
			if l.pos+1 >= len(l.src) {
				return token{}, l.errorf("unterminated block comment")
			}
			l.advance()
			l.advance()
		default:
			goto content
		}
	}
content:
	if l.pos >= len(l.src) {
		return token{kind: tEOF, line: l.line, col: l.col}, nil
	}
	line, col := l.line, l.col
	c := l.peekByte()

	if unicode.IsLetter(rune(c)) || c == '_' {
		start := l.pos
		for l.pos < len(l.src) {
			c := l.peekByte()
			if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
				l.advance()
			} else {
				break
			}
		}
		return token{kind: tIdent, text: l.src[start:l.pos], line: line, col: col}, nil
	}

	if unicode.IsDigit(rune(c)) {
		start := l.pos
		isFloat := false
		for l.pos < len(l.src) {
			c := l.peekByte()
			switch {
			case unicode.IsDigit(rune(c)):
				l.advance()
			case c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '.':
				// ".." range operator, not a decimal point
				goto done
			case c == '.':
				isFloat = true
				l.advance()
			case c == 'e' || c == 'E':
				isFloat = true
				l.advance()
				if b := l.peekByte(); b == '+' || b == '-' {
					l.advance()
				}
			default:
				goto done
			}
		}
	done:
		text := l.src[start:l.pos]
		if isFloat {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return token{}, l.errorf("bad float literal %q", text)
			}
			return token{kind: tFloat, text: text, fval: f, line: line, col: col}, nil
		}
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return token{}, l.errorf("bad integer literal %q", text)
		}
		return token{kind: tInt, text: text, ival: v, line: line, col: col}, nil
	}

	for _, p := range punct2 {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.advance()
			l.advance()
			return token{kind: tPunct, text: p, line: line, col: col}, nil
		}
	}
	switch c {
	case '+', '-', '*', '/', '%', '(', ')', '[', ']', '{', '}', '=', '<', '>', ',', '!':
		l.advance()
		return token{kind: tPunct, text: string(c), line: line, col: col}, nil
	}
	return token{}, l.errorf("unexpected character %q", string(c))
}
