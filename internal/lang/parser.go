package lang

import "fmt"

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) errorf(t token, format string, args ...interface{}) error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) accept(text string) bool {
	if p.cur().kind == tPunct && p.cur().text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKw(kw string) bool {
	if p.cur().kind == tIdent && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if p.accept(text) {
		return nil
	}
	return p.errorf(p.cur(), "expected %q, found %s", text, p.cur())
}

func (p *parser) expectIdent() (token, error) {
	t := p.cur()
	if t.kind != tIdent {
		return t, p.errorf(t, "expected identifier, found %s", t)
	}
	p.pos++
	return t, nil
}

func parse(src string) (*file, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &file{}

	if !p.acceptKw("program") {
		return nil, p.errorf(p.cur(), "file must start with 'program <name>'")
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	f.name = name.text

	// Declarations.
	for {
		t := p.cur()
		switch {
		case p.acceptKw("param"):
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expect("="); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			unknown := p.acceptKw("unknown")
			f.params = append(f.params, paramDecl{line: t.line, col: t.col, name: id.text, val: val, unknown: unknown})
		case p.acceptKw("array"):
			isFloat, err := p.parseElemKind()
			if err != nil {
				return nil, err
			}
			for {
				id, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				var dims []expr
				for p.accept("[") {
					d, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					if err := p.expect("]"); err != nil {
						return nil, err
					}
					dims = append(dims, d)
				}
				if len(dims) == 0 {
					return nil, p.errorf(id, "array %s needs at least one dimension", id.text)
				}
				f.arrays = append(f.arrays, arrayDecl{line: id.line, col: id.col, isFloat: isFloat, name: id.text, dims: dims})
				if !p.accept(",") {
					break
				}
			}
		case p.acceptKw("scalar"):
			isFloat, err := p.parseElemKind()
			if err != nil {
				return nil, err
			}
			for {
				id, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				f.scalars = append(f.scalars, scalarDecl{line: id.line, col: id.col, isFloat: isFloat, name: id.text})
				if !p.accept(",") {
					break
				}
			}
		case p.acceptKw("seed"):
			if p.cur().kind != tInt {
				return nil, p.errorf(p.cur(), "seed needs an integer literal")
			}
			f.seed = p.cur().ival
			f.hasSeed = true
			p.pos++
		default:
			goto body
		}
	}

body:
	for p.cur().kind != tEOF {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		f.body = append(f.body, s)
	}
	return f, nil
}

func (p *parser) parseElemKind() (bool, error) {
	switch {
	case p.acceptKw("double"):
		return true, nil
	case p.acceptKw("long"):
		return false, nil
	}
	return false, p.errorf(p.cur(), "expected 'double' or 'long'")
}

func (p *parser) parseBlock() ([]stmt, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []stmt
	for !p.accept("}") {
		if p.cur().kind == tEOF {
			return nil, p.errorf(p.cur(), "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) parseStmt() (stmt, error) {
	t := p.cur()
	switch {
	case p.acceptKw("for"):
		v, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(".."); err != nil {
			return nil, err
		}
		hi, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		step := int64(1)
		if p.acceptKw("step") {
			if p.cur().kind != tInt {
				return nil, p.errorf(p.cur(), "step needs an integer literal")
			}
			step = p.cur().ival
			p.pos++
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return forStmt{line: t.line, col: t.col, v: v.text, lo: lo, hi: hi, step: step, body: body}, nil

	case p.acceptKw("if"):
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []stmt
		if p.acceptKw("else") {
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
		return ifStmt{line: t.line, col: t.col, cond: cond, then: then, els: els}, nil

	case t.kind == tIdent:
		id, _ := p.expectIdent()
		var idx []expr
		for p.accept("[") {
			d, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			idx = append(idx, d)
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return assignStmt{line: t.line, col: t.col, name: id.text, idx: idx, rhs: rhs}, nil
	}
	return nil, p.errorf(t, "expected statement, found %s", t)
}

// Expression parsing: precedence climbing.

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"+": 4, "-": 4,
	"*": 5, "/": 5, "%": 5, "<<": 5, ">>": 5,
}

func (p *parser) parseExpr() (expr, error) { return p.parseBin(1) }

func (p *parser) parseBin(minPrec int) (expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = binExpr{line: t.line, col: t.col, op: t.text, a: lhs, b: rhs}
	}
}

func (p *parser) parseUnary() (expr, error) {
	t := p.cur()
	if t.kind == tPunct && (t.text == "-" || t.text == "!") {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unExpr{line: t.line, col: t.col, op: t.text, x: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tInt:
		p.pos++
		return numLit{line: t.line, col: t.col, i: t.ival}, nil
	case t.kind == tFloat:
		p.pos++
		return numLit{line: t.line, col: t.col, isFloat: true, f: t.fval}, nil
	case t.kind == tPunct && t.text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	case t.kind == tIdent:
		p.pos++
		// Call?
		if p.accept("(") {
			var args []expr
			if !p.accept(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.accept(")") {
						break
					}
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
			}
			return callExpr{line: t.line, col: t.col, name: t.text, args: args}, nil
		}
		// Subscripts?
		var idx []expr
		for p.accept("[") {
			d, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			idx = append(idx, d)
		}
		if len(idx) > 0 {
			return indexExpr{line: t.line, col: t.col, name: t.text, idx: idx}, nil
		}
		return identExpr{line: t.line, col: t.col, name: t.text}, nil
	}
	return nil, p.errorf(t, "expected expression, found %s", t)
}
