package lang

import (
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/hw"
	"repro/internal/ir"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

// runSrc parses, compiles, and executes a source program on a small
// simulated machine, returning the VM and final environment.
func runSrc(t *testing.T, src string) (*vm.VM, *exec.Env) {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p := hw.Default()
	p.MemoryBytes = 256 * p.PageSize
	c := sim.NewClock()
	fs := stripefs.New(c, p, nil)
	if err := prog.Resolve(p.PageSize); err != nil {
		t.Fatal(err)
	}
	pages := prog.TotalBytes(p.PageSize) / p.PageSize
	if pages == 0 {
		pages = 1
	}
	file, err := fs.Create(prog.Name, pages)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(c, p, file)
	m, err := exec.New(prog, v, rt.Register(v, true))
	if err != nil {
		t.Fatal(err)
	}
	env := m.Run()
	v.Finish()
	return v, env
}

func TestParseAndRunSum(t *testing.T) {
	_, env := runSrc(t, `
program sum
param n = 1000
array double a[n]
scalar double s
for i = 0 .. n {
    a[i] = 2.0
}
for i = 0 .. n {
    s = s + a[i]
}
`)
	if got := env.Floats[0]; got != 2000 {
		t.Fatalf("sum = %v, want 2000", got)
	}
}

func TestParamExpressionsAndShifts(t *testing.T) {
	prog, err := Parse(`
program p
param k = 10
param n = 1 << k
array double a[n]
`)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := prog.ParamValue("n"); v != 1024 {
		t.Fatalf("n = %d, want 1024", v)
	}
}

func TestUnknownParam(t *testing.T) {
	prog, err := Parse(`
program p
param bm = 5 unknown
param n = 100
array double a[n]
scalar double s
for i = 0 .. bm {
    s = s + a[i]
}
`)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, prm := range prog.Params {
		if prm.Name == "bm" {
			found = true
			if prm.Known {
				t.Fatal("bm should be unknown to the compiler")
			}
			if prm.Val != 5 {
				t.Fatalf("bm = %d, want 5", prm.Val)
			}
		}
	}
	if !found {
		t.Fatal("param bm missing")
	}
}

func TestIndirectAndConditionals(t *testing.T) {
	_, env := runSrc(t, `
program buk_mini
param n = 512
array long key[n]
array long count[n]
scalar long hits
for i = 0 .. n {
    key[i] = (i * 7) % n
}
for i = 0 .. n {
    count[key[i]] = count[key[i]] + 1
}
for i = 0 .. n {
    if count[i] == 1 {
        hits = hits + 1
    }
}
`)
	// 7 and 512 are coprime, so key is a permutation: every count is 1.
	if got := env.Ints[1]; got != 512 { // slot 1: "hits" (after param n)
		t.Fatalf("hits = %d, want 512", got)
	}
}

func TestScalarsAndIntrinsics(t *testing.T) {
	_, env := runSrc(t, `
program intr
scalar double a, b
a = sqrt(16.0)
b = pow(2.0, 10.0) + fabs(-1.0) + fmin(3.0, 4.0)
`)
	if env.Floats[0] != 4 {
		t.Fatalf("sqrt = %v", env.Floats[0])
	}
	if env.Floats[1] != 1024+1+3 {
		t.Fatalf("b = %v, want 1028", env.Floats[1])
	}
}

func TestRandlcInSource(t *testing.T) {
	_, env := runSrc(t, `
program rng
seed 271828183
scalar double s
for i = 0 .. 1000 {
    s = s + randlc()
}
`)
	got := env.Floats[0]
	if got < 400 || got > 600 {
		t.Fatalf("sum of 1000 uniforms = %v, want ≈500", got)
	}
}

func TestMultiDimStore(t *testing.T) {
	_, env := runSrc(t, `
program md
param ni = 8
param nj = 8
array double g[ni][nj]
scalar double s
for i = 0 .. ni {
    for j = 0 .. nj {
        g[i][j] = float(i * 10 + j)
    }
}
s = g[3][4]
`)
	if env.Floats[0] != 34 {
		t.Fatalf("g[3][4] = %v, want 34", env.Floats[0])
	}
}

func TestStepLoops(t *testing.T) {
	_, env := runSrc(t, `
program st
scalar long k
for i = 0 .. 100 step 7 {
    k = k + 1
}
`)
	if got := env.Ints[0]; got != 15 { // slot 0: "k"
		t.Fatalf("iterations = %d, want 15", got)
	}
}

func TestLoopVarShadowing(t *testing.T) {
	_, env := runSrc(t, `
program sh
scalar long k
for i = 0 .. 3 {
    for i = 0 .. 5 {
        k = k + 1
    }
}
`)
	if got := env.Ints[0]; got != 15 { // slot 0: "k"
		t.Fatalf("k = %d, want 15 (3×5)", got)
	}
}

func TestComments(t *testing.T) {
	if _, err := Parse(`
program c // trailing comment
/* block
   comment */
scalar double s
s = 1.0 // done
`); err != nil {
		t.Fatal(err)
	}
}

func TestErrorMessages(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`x`, "program"},
		{`program p stray = 1.0`, "undeclared scalar"},
		{`program p array double`, "identifier"},
		{`program p array double a`, "dimension"},
		{`program p scalar double s s = q`, "undeclared identifier"},
		{`program p scalar long k k = 1.5`, "float literal in integer context"},
		{`program p array long a[10] scalar double s s = a[0][1]`, "dimensions"},
		{`program p scalar double s for i = 0 .. 10 step 0 { s = 1.0 }`, "step"},
		{`program p scalar double s s = nosuch(1.0)`, "unknown function"},
		{`program p param n = m`, "undeclared"},
		{`program p scalar double s if 1 + 2 { s = 1.0 }`, "comparison"},
		{`program p scalar double s { }`, "statement"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestErrorsHavePositions(t *testing.T) {
	_, err := Parse("program p\nscalar double s\ns = q\n")
	if err == nil {
		t.Fatal("expected error")
	}
	le, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if le.Line != 3 {
		t.Fatalf("error line %d, want 3", le.Line)
	}
}

func TestParsedProgramIsCompilable(t *testing.T) {
	// End-to-end smoke: source → IR → printable, with classification
	// intact (b[i] dense, a[b[i]] indirect).
	prog, err := Parse(`
program fig2
param n = 100000
array double a[n]
array long b[n]
scalar double s
for i = 0 .. n {
    a[b[i]] = a[b[i]] + 1.0
    s = s + a[i]
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Resolve(4096); err != nil {
		t.Fatal(err)
	}
	out := ir.Print(prog)
	if !strings.Contains(out, "a[b[i]]") {
		t.Fatalf("printed program missing indirect ref:\n%s", out)
	}
}
