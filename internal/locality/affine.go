package locality

import "repro/internal/ir"

// affineForm is the result of decomposing one integer expression:
// sum(coeffs[slot]·slot) + konst, plus flags for what could not be
// captured.
type affineForm struct {
	coeffs        map[int]int64
	konst         int64
	indirect      bool         // contains an array load
	residual      bool         // contains non-affine terms
	indirectSlots map[int]bool // loop slots driving indirect loads
}

func newForm() affineForm {
	return affineForm{coeffs: map[int]int64{}}
}

func (f *affineForm) absorbFlags(g affineForm) {
	f.indirect = f.indirect || g.indirect
	f.residual = f.residual || g.residual
	if len(g.indirectSlots) > 0 {
		if f.indirectSlots == nil {
			f.indirectSlots = map[int]bool{}
		}
		for s := range g.indirectSlots {
			f.indirectSlots[s] = true
		}
	}
}

// decompose linearizes a reference's subscripts against the array's
// resolved strides and records the affine form on the ref. Strides along
// dimensions whose extent was not compile-time-known make the affected
// terms residual, exactly as a real compiler loses information when a
// matrix's leading dimensions are symbolic.
func (a *Analysis) decompose(r *Ref) {
	loopSlots := map[int]bool{}
	for _, l := range r.Path {
		loopSlots[l.Slot] = true
	}

	// Which strides does the compiler actually know? The innermost
	// dimension's stride is always 1; outer strides require the inner
	// extents to be known.
	knownStride := make([]bool, len(r.Arr.Strides))
	prod := true
	for d := len(r.Arr.DimExprs) - 1; d >= 0; d-- {
		knownStride[d] = prod
		if _, ok := ir.ConstEval(r.Arr.DimExprs[d], a.Known); !ok {
			prod = false
		}
	}

	total := newForm()
	for d, ix := range r.Idx {
		f := a.affine(ix, loopSlots)
		total.absorbFlags(f)
		if !knownStride[d] {
			// The compiler cannot scale this dimension's contribution;
			// treat any variation in it as residual.
			if len(f.coeffs) > 0 || f.konst != 0 {
				total.residual = true
			}
			continue
		}
		stride := r.Arr.Strides[d]
		for s, c := range f.coeffs {
			total.coeffs[s] += c * stride
		}
		total.konst += f.konst * stride
	}
	for s, c := range total.coeffs {
		if c != 0 {
			r.Coeffs[s] = c
		}
	}
	r.Const = total.konst
	for s := range total.indirectSlots {
		r.IndirectSlots[s] = true
	}
	switch {
	case total.indirect:
		r.Kind = Indirect
	case total.residual:
		r.Kind = Opaque
	default:
		r.Kind = Dense
	}
}

// affine decomposes one subscript expression over the given loop slots.
func (a *Analysis) affine(e ir.IExpr, loopSlots map[int]bool) affineForm {
	// A fully known expression is a constant, whatever its shape.
	if v, ok := ir.ConstEval(e, a.Known); ok {
		f := newForm()
		f.konst = v
		return f
	}
	switch x := e.(type) {
	case ir.ISlot:
		f := newForm()
		if loopSlots[x.Slot] {
			f.coeffs[x.Slot] = 1
			return f
		}
		// Unknown parameter or mutable scalar: not analyzable.
		f.residual = true
		return f
	case ir.ILoad:
		f := newForm()
		f.indirect = true
		f.indirectSlots = map[int]bool{}
		for _, ix := range x.Idx {
			inner := a.affine(ix, loopSlots)
			for s := range inner.coeffs {
				f.indirectSlots[s] = true
			}
			for s := range inner.indirectSlots {
				f.indirectSlots[s] = true
			}
		}
		return f
	case ir.IBin:
		switch x.Op {
		case ir.IAdd, ir.ISub:
			fa := a.affine(x.A, loopSlots)
			fb := a.affine(x.B, loopSlots)
			out := newForm()
			out.absorbFlags(fa)
			out.absorbFlags(fb)
			for s, c := range fa.coeffs {
				out.coeffs[s] += c
			}
			sign := int64(1)
			if x.Op == ir.ISub {
				sign = -1
			}
			for s, c := range fb.coeffs {
				out.coeffs[s] += sign * c
			}
			out.konst = fa.konst + sign*fb.konst
			return out
		case ir.IMul:
			// Affine only if one side is a known constant.
			if v, ok := ir.ConstEval(x.A, a.Known); ok {
				return a.affine(x.B, loopSlots).scaled(v)
			}
			if v, ok := ir.ConstEval(x.B, a.Known); ok {
				return a.affine(x.A, loopSlots).scaled(v)
			}
		case ir.IShl:
			if v, ok := ir.ConstEval(x.B, a.Known); ok && v >= 0 && v < 62 {
				return a.affine(x.A, loopSlots).scaled(int64(1) << uint(v))
			}
		}
	}
	// Division, modulo, variable shifts, products of variables: residual.
	f := newForm()
	f.residual = true
	collectIndirectSlots(e, &f, loopSlots)
	return f
}

// collectIndirectSlots records indirect loads (and their driving loops)
// buried inside otherwise non-affine expressions.
func collectIndirectSlots(e ir.IExpr, f *affineForm, loopSlots map[int]bool) {
	switch x := e.(type) {
	case ir.ILoad:
		f.indirect = true
		if f.indirectSlots == nil {
			f.indirectSlots = map[int]bool{}
		}
		for _, ix := range x.Idx {
			collectSlots(ix, f.indirectSlots, loopSlots)
		}
	case ir.IBin:
		collectIndirectSlots(x.A, f, loopSlots)
		collectIndirectSlots(x.B, f, loopSlots)
	}
}

func collectSlots(e ir.IExpr, out map[int]bool, loopSlots map[int]bool) {
	switch x := e.(type) {
	case ir.ISlot:
		if loopSlots[x.Slot] {
			out[x.Slot] = true
		}
	case ir.IBin:
		collectSlots(x.A, out, loopSlots)
		collectSlots(x.B, out, loopSlots)
	case ir.ILoad:
		for _, ix := range x.Idx {
			collectSlots(ix, out, loopSlots)
		}
	}
}

func (f affineForm) scaled(v int64) affineForm {
	out := newForm()
	out.konst = f.konst * v
	out.indirect = f.indirect
	out.residual = f.residual
	out.indirectSlots = f.indirectSlots
	for s, c := range f.coeffs {
		out.coeffs[s] = c * v
	}
	return out
}

// TripCount returns the compile-time trip count of a loop, or
// (DefaultEstTrip, false) when the bounds are unknown. Bounds that are
// affine in outer loop variables with matching coefficients — the
// (i+1)*w .. i*w pattern of blocked codes — are handled by symbolic
// differencing. Loops may override the default estimate via EstTrip.
func (a *Analysis) TripCount(l *ir.Loop) (int64, bool) {
	lo, ok1 := ir.ConstEval(l.Lo, a.Known)
	hi, ok2 := ir.ConstEval(l.Hi, a.Known)
	if ok1 && ok2 {
		n := (hi - lo + l.Step - 1) / l.Step
		if n < 0 {
			n = 0
		}
		return n, true
	}
	// Symbolic differencing: treat every slot as a symbol and subtract.
	allSlots := allSlotsIn(l.Lo, allSlotsIn(l.Hi, map[int]bool{}))
	for s := range a.Known {
		delete(allSlots, s) // known params evaluate, they are not symbols
	}
	flo := a.affine(l.Lo, allSlots)
	fhi := a.affine(l.Hi, allSlots)
	if !flo.residual && !fhi.residual && !flo.indirect && !fhi.indirect {
		same := len(flo.coeffs) == len(fhi.coeffs)
		for s, c := range flo.coeffs {
			if fhi.coeffs[s] != c {
				same = false
				break
			}
		}
		if same {
			n := (fhi.konst - flo.konst + l.Step - 1) / l.Step
			if n < 0 {
				n = 0
			}
			return n, true
		}
	}
	if l.EstTrip > 0 {
		return l.EstTrip, false
	}
	return a.DefaultEstTrip, false
}

// allSlotsIn collects every slot read by an expression.
func allSlotsIn(e ir.IExpr, out map[int]bool) map[int]bool {
	switch x := e.(type) {
	case ir.ISlot:
		out[x.Slot] = true
	case ir.IBin:
		allSlotsIn(x.A, out)
		allSlotsIn(x.B, out)
	case ir.ILoad:
		for _, ix := range x.Idx {
			allSlotsIn(ix, out)
		}
	}
	return out
}
