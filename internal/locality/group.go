package locality

import (
	"sort"

	"repro/internal/ir"
)

// group clusters dense references with group locality. References belong
// to the same group when they name the same array from the same loop nest
// with identical coefficients and constants within two pages of each
// other (a stencil's a[i-1], a[i], a[i+1] cluster; unrelated slices do
// not). Indirect and opaque references form singleton groups.
func (a *Analysis) group() {
	type key struct {
		arr   *ir.Array
		inner *ir.Loop
		sig   string
	}
	buckets := map[key][]*Ref{}
	var order []key
	for _, r := range a.Refs {
		k := key{arr: r.Arr, inner: r.Innermost(), sig: coeffSig(r)}
		if r.Kind != Dense {
			// Singleton: use the ref's identity to keep it alone.
			a.Groups = append(a.Groups, &Group{Arr: r.Arr, Members: []*Ref{r}, Leader: r, Trailer: r})
			continue
		}
		if _, seen := buckets[k]; !seen {
			order = append(order, k)
		}
		buckets[k] = append(buckets[k], r)
	}
	window := 2 * a.PageSize / ir.ElemSize
	for _, k := range order {
		refs := buckets[k]
		sort.SliceStable(refs, func(i, j int) bool { return refs[i].Const < refs[j].Const })
		start := 0
		for i := 1; i <= len(refs); i++ {
			if i == len(refs) || refs[i].Const-refs[i-1].Const > window {
				a.Groups = append(a.Groups, makeGroup(refs[start:i]))
				start = i
			}
		}
	}
}

func makeGroup(members []*Ref) *Group {
	g := &Group{Arr: members[0].Arr, Members: members}
	// members are sorted by Const ascending. With a positive stride the
	// largest constant touches new data first (the leading reference);
	// the smallest constant is the last to touch it (the trailing
	// reference, the address to release). Negative strides flip this;
	// our kernels' strides are positive (backward sweeps are expressed
	// with reversed index arithmetic), so positive orientation is used.
	g.Trailer = members[0]
	g.Leader = members[len(members)-1]
	return g
}

// coeffSig builds a canonical signature of a ref's coefficients.
func coeffSig(r *Ref) string {
	slots := make([]int, 0, len(r.Coeffs))
	for s := range r.Coeffs {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	sig := make([]byte, 0, len(slots)*10)
	for _, s := range slots {
		sig = appendInt(sig, int64(s))
		sig = append(sig, ':')
		sig = appendInt(sig, r.Coeffs[s])
		sig = append(sig, ';')
	}
	return string(sig)
}

func appendInt(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

// StrideBytes returns a ref's byte stride per iteration of loop l (may be
// negative or zero).
func (r *Ref) StrideBytes(l *ir.Loop) int64 {
	return r.Coeffs[l.Slot] * l.Step * ir.ElemSize
}

// FootprintUpTo returns the number of distinct bytes the ref touches
// during one complete execution of loop l (and everything inside it),
// using compile-time trip counts and the default estimate for unknown
// bounds.
func (a *Analysis) FootprintUpTo(r *Ref, l *ir.Loop) int64 {
	fp := int64(ir.ElemSize)
	for i := len(r.Path) - 1; i >= 0; i-- {
		cur := r.Path[i]
		trip, _ := a.TripCount(cur)
		s := r.StrideBytes(cur)
		if s < 0 {
			s = -s
		}
		if s > 0 {
			if f := s * trip; f > fp {
				fp = f
			}
		}
		if cur == l {
			break
		}
	}
	return fp
}

// PipelineLoop picks the loop along which prefetches for a dense or
// opaque ref should be software-pipelined: the innermost enclosing loop
// whose full execution touches more than a page of the array (§2.3). For
// opaque refs only loops with a whole-page affine stride qualify (the
// residual is assumed bounded by that stride). It returns nil when no
// loop qualifies — the reference is not worth prefetching.
func (a *Analysis) PipelineLoop(r *Ref) *ir.Loop {
	switch r.Kind {
	case Dense, Opaque:
		// Opaque refs are handled through their known affine part: the
		// residual (bit-twiddled inner indices, unknown outer dimensions)
		// is assumed bounded by the affine strides. For an FFT row this
		// picks the row loop; for a matrix with unknown leading
		// dimensions it picks the innermost stride-1 loop — which is
		// exactly the paper's documented mistake when that loop's real
		// trip count turns out to be small.
		for i := len(r.Path) - 1; i >= 0; i-- {
			l := r.Path[i]
			if a.FootprintUpTo(r, l) > a.PageSize {
				// The qualifying loop must itself advance through the
				// array; footprints only grow at loops with non-zero
				// stride, so scan outward to the first such loop.
				for j := i; j >= 0; j-- {
					if r.Coeffs[r.Path[j].Slot] != 0 {
						return r.Path[j]
					}
				}
				return nil
			}
		}
	case Indirect:
		// Prefetches are driven per-iteration of the innermost loop that
		// feeds the indirect subscript.
		for i := len(r.Path) - 1; i >= 0; i-- {
			if r.IndirectSlots[r.Path[i].Slot] {
				return r.Path[i]
			}
		}
	}
	return nil
}

// EstimateIterOps estimates the machine operations executed by one
// iteration of loop l, the quantity the scheduler divides into the fault
// latency to choose a prefetch distance. Inner loops multiply by their
// (estimated) trip counts.
func (a *Analysis) EstimateIterOps(l *ir.Loop) int64 {
	ops := a.estimateStmts(l.Body)
	if ops < 1 {
		ops = 1
	}
	return ops
}

func (a *Analysis) estimateStmts(stmts []ir.Stmt) int64 {
	var ops int64
	for _, s := range stmts {
		switch x := s.(type) {
		case *ir.Loop:
			trip, _ := a.TripCount(x)
			ops += trip * (a.estimateStmts(x.Body) + 2)
		case ir.AssignF:
			ops += exprOpsF(x.RHS) + int64(len(x.Idx))*2 + 2
		case ir.AssignI:
			ops += exprOpsI(x.RHS) + int64(len(x.Idx))*2 + 2
		case ir.SetScalarF:
			ops += exprOpsF(x.RHS) + 1
		case ir.SetScalarI:
			ops += exprOpsI(x.RHS) + 1
		case ir.If:
			t := a.estimateStmts(x.Then)
			e := a.estimateStmts(x.Else)
			if e > t {
				t = e
			}
			ops += t + 2
		case ir.Prefetch, ir.Release, ir.PrefetchRelease:
			ops += 8
		}
	}
	return ops
}

func exprOpsF(e ir.FExpr) int64 {
	switch x := e.(type) {
	case ir.FConst:
		return 0
	case ir.FScalar:
		return 1
	case ir.FLoad:
		return int64(len(x.Idx))*2 + 2
	case ir.FBin:
		return exprOpsF(x.A) + exprOpsF(x.B) + 1
	case ir.FNeg:
		return exprOpsF(x.X) + 1
	case ir.FromInt:
		return exprOpsI(x.X) + 1
	case ir.FCall:
		var n int64 = 20
		for _, a := range x.Args {
			n += exprOpsF(a)
		}
		return n
	}
	return 1
}

func exprOpsI(e ir.IExpr) int64 {
	switch x := e.(type) {
	case ir.IConst:
		return 0
	case ir.ISlot:
		return 1
	case ir.IBin:
		return exprOpsI(x.A) + exprOpsI(x.B) + 1
	case ir.ILoad:
		return int64(len(x.Idx))*2 + 2
	}
	return 1
}
