package locality

import (
	"testing"

	"repro/internal/ir"
)

const pageSize = 4096

// figure2 builds the paper's Figure 2(a) nest:
//
//	for i = 0..999 { for j = 0..N-1 { t += c[i][j] }  a[b[i]] += 1 }
//
// with N known (64) by default.
func figure2(nKnown bool) (*ir.Program, *ir.Loop, *ir.Loop) {
	p := ir.NewProgram("fig2")
	n := p.NewParam("N", 64, nKnown)
	a := p.NewArrayF("a", ir.Int(1<<20))
	b := p.NewArrayI("b", ir.Int(1<<20))
	cc := p.NewArrayF("c", ir.Int(1000), n)
	i := p.NewLoopVar("i")
	j := p.NewLoopVar("j")
	t := p.NewScalarF("t")
	inner := ir.For(j, ir.Int(0), n, 1,
		ir.SetF(t, ir.AddF(ir.FScalar{Slot: t.Slot, Name: "t"}, ir.LoadF(cc, i, j))),
	)
	outer := ir.For(i, ir.Int(0), ir.Int(1000), 1,
		inner,
		ir.StoreF(a, []ir.IExpr{ir.LoadI(b, i)},
			ir.AddF(ir.LoadF(a, ir.LoadI(b, i)), ir.Flt(1))),
	)
	p.Body = []ir.Stmt{outer}
	if err := p.Resolve(pageSize); err != nil {
		panic(err)
	}
	return p, outer, inner
}

func findRef(a *Analysis, arr string, write bool) *Ref {
	for _, r := range a.Refs {
		if r.Arr.Name == arr && r.IsWrite == write {
			return r
		}
	}
	return nil
}

func TestClassification(t *testing.T) {
	p, _, _ := figure2(true)
	a := Analyze(p, pageSize, 0)

	if r := findRef(a, "c", false); r == nil || r.Kind != Dense {
		t.Fatalf("c[i][j] classified %v, want dense", r)
	}
	if r := findRef(a, "b", false); r == nil || r.Kind != Dense {
		t.Fatalf("b[i] classified %v, want dense", r)
	}
	if r := findRef(a, "a", true); r == nil || r.Kind != Indirect {
		t.Fatalf("a[b[i]] classified %v, want indirect", r)
	}
}

func TestCoefficients(t *testing.T) {
	p, outer, inner := figure2(true)
	a := Analyze(p, pageSize, 0)
	c := findRef(a, "c", false)
	if c.Coeffs[outer.Slot] != 64 {
		t.Fatalf("c coeff along i = %d, want 64 (row length)", c.Coeffs[outer.Slot])
	}
	if c.Coeffs[inner.Slot] != 1 {
		t.Fatalf("c coeff along j = %d, want 1", c.Coeffs[inner.Slot])
	}
	b := findRef(a, "b", false)
	if b.Coeffs[outer.Slot] != 1 || b.Coeffs[inner.Slot] != 0 {
		t.Fatalf("b coeffs wrong: %v", b.Coeffs)
	}
}

func TestPipelineLoopChoice(t *testing.T) {
	// The crux of §2.3: with N=64 known, one row of c is 512 B < page, so
	// prefetches for c[i][j] must pipeline along i, not j.
	p, outer, _ := figure2(true)
	a := Analyze(p, pageSize, 0)
	c := findRef(a, "c", false)
	if got := a.PipelineLoop(c); got != outer {
		t.Fatalf("c pipelined at %v, want outer i loop", got.Var)
	}
	b := findRef(a, "b", false)
	if got := a.PipelineLoop(b); got != outer {
		t.Fatalf("b pipelined at %v, want outer i loop", got.Var)
	}
	ind := findRef(a, "a", true)
	if got := a.PipelineLoop(ind); got != outer {
		t.Fatalf("a[b[i]] driven by %v, want i loop", got.Var)
	}
}

func TestSymbolicBoundMispipelines(t *testing.T) {
	// With N unknown, the compiler assumes a large trip count and
	// wrongly pipelines c[i][j] along j — the paper's APPBT failure.
	p, _, inner := figure2(false)
	a := Analyze(p, pageSize, 0)
	c := findRef(a, "c", false)
	if got := a.PipelineLoop(c); got != inner {
		t.Fatalf("with unknown N, c pipelined at %v; the modeled mistake requires j", got.Var)
	}
}

func TestFootprint(t *testing.T) {
	p, outer, inner := figure2(true)
	a := Analyze(p, pageSize, 0)
	c := findRef(a, "c", false)
	if fp := a.FootprintUpTo(c, inner); fp != 64*8 {
		t.Fatalf("c footprint within j = %d, want 512", fp)
	}
	if fp := a.FootprintUpTo(c, outer); fp != 1000*64*8 {
		t.Fatalf("c footprint within i = %d, want %d", fp, 1000*64*8)
	}
}

func TestGroupLocalityStencil(t *testing.T) {
	// u[i-1], u[i], u[i+1] must form one group with leader u[i+1] and
	// trailer u[i-1].
	p := ir.NewProgram("stencil")
	n := p.NewParam("n", 100000, true)
	u := p.NewArrayF("u", n)
	w := p.NewArrayF("w", n)
	i := p.NewLoopVar("i")
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(1), ir.SubI(n, ir.Int(1)), 1,
			ir.StoreF(w, []ir.IExpr{i},
				ir.AddF(ir.LoadF(u, ir.SubI(i, ir.Int(1))),
					ir.AddF(ir.LoadF(u, i), ir.LoadF(u, ir.AddI(i, ir.Int(1)))))),
		),
	}
	if err := p.Resolve(pageSize); err != nil {
		t.Fatal(err)
	}
	a := Analyze(p, pageSize, 0)

	var ug *Group
	for _, g := range a.Groups {
		if g.Arr == u {
			if ug != nil {
				t.Fatal("u refs split into multiple groups")
			}
			ug = g
		}
	}
	if ug == nil || len(ug.Members) != 3 {
		t.Fatalf("u group = %+v, want 3 members", ug)
	}
	if ug.Leader.Const != 1 || ug.Trailer.Const != -1 {
		t.Fatalf("leader const %d / trailer const %d, want +1 / -1", ug.Leader.Const, ug.Trailer.Const)
	}
}

func TestDistantRefsSeparateGroups(t *testing.T) {
	// u[i] and u[i + bigOffset] must not share a group.
	p := ir.NewProgram("split")
	n := p.NewParam("n", 1<<20, true)
	u := p.NewArrayF("u", n)
	w := p.NewArrayF("w", n)
	i := p.NewLoopVar("i")
	half := int64(1 << 19)
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), ir.Int(half), 1,
			ir.StoreF(w, []ir.IExpr{i},
				ir.AddF(ir.LoadF(u, i), ir.LoadF(u, ir.AddI(i, ir.Int(half))))),
		),
	}
	if err := p.Resolve(pageSize); err != nil {
		t.Fatal(err)
	}
	a := Analyze(p, pageSize, 0)
	var groups int
	for _, g := range a.Groups {
		if g.Arr == u {
			groups++
		}
	}
	if groups != 2 {
		t.Fatalf("u refs in %d groups, want 2", groups)
	}
}

func TestOpaqueButterflyUsableAtRowLoop(t *testing.T) {
	// re[row*len + butterfly(j,s)] — nonaffine inner index, affine row
	// term with a whole-page stride: PipelineLoop must pick the row loop.
	p := ir.NewProgram("fft")
	nrows := p.NewParam("nrows", 256, true)
	rowLen := p.NewParam("len", 1024, true) // 8 KB per row
	re := p.NewArrayF("re", ir.MulI(nrows, rowLen))
	row := p.NewLoopVar("row")
	j := p.NewLoopVar("j")
	// Index: row*len + ((j*2) % len) — the modulo defeats affine analysis.
	idx := ir.AddI(ir.MulI(row, rowLen), ir.ModI(ir.MulI(j, ir.Int(2)), rowLen))
	rowLoop := ir.For(row, ir.Int(0), nrows, 1,
		ir.For(j, ir.Int(0), rowLen, 1,
			ir.StoreF(re, []ir.IExpr{idx}, ir.Flt(1)),
		),
	)
	p.Body = []ir.Stmt{rowLoop}
	if err := p.Resolve(pageSize); err != nil {
		t.Fatal(err)
	}
	a := Analyze(p, pageSize, 0)
	r := findRef(a, "re", true)
	if r.Kind != Opaque {
		t.Fatalf("butterfly ref classified %v, want opaque", r.Kind)
	}
	if got := a.PipelineLoop(r); got != rowLoop {
		t.Fatalf("opaque ref pipelined at %v, want row loop", got)
	}
	if r.Coeffs[rowLoop.Slot] != 1024 {
		t.Fatalf("row coefficient %d, want 1024", r.Coeffs[rowLoop.Slot])
	}
}

func TestTinyLoopNotPrefetched(t *testing.T) {
	// A loop over < 1 page of data should get no pipeline loop at all.
	p := ir.NewProgram("tiny")
	u := p.NewArrayF("u", ir.Int(64)) // 512 B
	i := p.NewLoopVar("i")
	s := p.NewScalarF("s")
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), ir.Int(64), 1,
			ir.SetF(s, ir.AddF(ir.FScalar{Slot: s.Slot, Name: "s"}, ir.LoadF(u, i))),
		),
	}
	if err := p.Resolve(pageSize); err != nil {
		t.Fatal(err)
	}
	a := Analyze(p, pageSize, 0)
	r := findRef(a, "u", false)
	if got := a.PipelineLoop(r); got != nil {
		t.Fatalf("tiny ref got pipeline loop %v, want none", got.Var)
	}
}

func TestTripCount(t *testing.T) {
	p := ir.NewProgram("t")
	known := p.NewParam("k", 100, true)
	unknown := p.NewParam("u", 5, false)
	i := p.NewLoopVar("i")
	lk := ir.For(i, ir.Int(0), known, 2)
	lu := ir.For(i, ir.Int(0), unknown, 1)
	le := ir.For(i, ir.Int(0), unknown, 1)
	le.EstTrip = 7
	a := Analyze(p, pageSize, 0)
	if n, ok := a.TripCount(lk); !ok || n != 50 {
		t.Fatalf("known trip = %d,%v, want 50,true", n, ok)
	}
	if n, ok := a.TripCount(lu); ok || n != 1024 {
		t.Fatalf("unknown trip = %d,%v, want default 1024,false", n, ok)
	}
	if n, ok := a.TripCount(le); ok || n != 7 {
		t.Fatalf("estimated trip = %d,%v, want 7,false", n, ok)
	}
}

func TestEstimateIterOps(t *testing.T) {
	p, outer, inner := figure2(true)
	a := Analyze(p, pageSize, 0)
	innerOps := a.EstimateIterOps(inner)
	outerOps := a.EstimateIterOps(outer)
	if innerOps <= 0 {
		t.Fatal("inner iteration ops not positive")
	}
	// The outer iteration contains the whole 64-trip inner loop.
	if outerOps < 64*innerOps {
		t.Fatalf("outer ops %d < 64×inner %d", outerOps, innerOps)
	}
}
