// Package locality implements the compiler's locality analysis: the part
// of Mowry's prefetching algorithm that was retargeted in the paper from
// cache lines and cache capacity to pages and main-memory capacity. Given
// a loop nest it collects the array references, decomposes their
// subscripts into affine form over the enclosing loop variables, clusters
// references with group locality (same array, same coefficients, nearby
// constants), and for each group leader decides along which loop
// prefetches should be software-pipelined — the innermost enclosing loop
// whose full execution touches more than a page of the array.
package locality

import (
	"repro/internal/ir"
)

// RefKind classifies a reference for prefetch planning.
type RefKind uint8

const (
	// Dense: the linearized subscript is affine in enclosing loop
	// variables and compile-time constants.
	Dense RefKind = iota
	// Indirect: the subscript contains an array load (a[b[i]]).
	Indirect
	// Opaque: the subscript has non-affine residual terms (e.g. the
	// bit-twiddled indices of an FFT butterfly). The affine part, if any,
	// is still usable: the residual is assumed bounded by the smallest
	// affine stride, which holds for blocked codes like FFT rows.
	Opaque
)

func (k RefKind) String() string {
	switch k {
	case Dense:
		return "dense"
	case Indirect:
		return "indirect"
	default:
		return "opaque"
	}
}

// Ref is one array reference with its analysis results.
type Ref struct {
	Arr     *ir.Array
	Idx     []ir.IExpr
	IsWrite bool
	Path    []*ir.Loop // enclosing loops, outermost first
	Kind    RefKind

	// Affine decomposition of the linearized subscript, in elements.
	Coeffs map[int]int64 // loop slot → coefficient
	Const  int64         // known constant part (0 if unknown)

	// For Indirect refs: the loop slots the indirect load itself varies
	// with (the i of b[i]), used to pick the prefetch-driving loop.
	IndirectSlots map[int]bool
}

// Innermost returns the innermost enclosing loop, or nil.
func (r *Ref) Innermost() *ir.Loop {
	if len(r.Path) == 0 {
		return nil
	}
	return r.Path[len(r.Path)-1]
}

// Analysis is the result of analyzing a program.
type Analysis struct {
	Prog   *ir.Program
	Known  map[int]int64 // compile-time-known parameter bindings
	Refs   []*Ref
	Groups []*Group

	// PageSize is the memory-model page size (the paper's analogue of
	// the cache line size in the original algorithm).
	PageSize int64

	// DefaultEstTrip is assumed for loops whose trip count is not known
	// at compile time ("the compiler assumes large bounds").
	DefaultEstTrip int64
}

// Group is a set of references with group locality: same array, same
// coefficients, constants within a page of each other. The Leader is the
// first reference to touch new data (largest constant for a positive
// stride); the Trailer is the last (smallest constant) and is the address
// to release.
type Group struct {
	Arr     *ir.Array
	Members []*Ref
	Leader  *Ref
	Trailer *Ref
}

// Analyze runs the analysis over a program's body. The program must be
// resolved (array layouts fixed). defaultEstTrip controls the assumed
// trip count of loops with unknown bounds; pass 0 for the standard 1024.
func Analyze(p *ir.Program, pageSize, defaultEstTrip int64) *Analysis {
	if defaultEstTrip <= 0 {
		defaultEstTrip = 1024
	}
	a := &Analysis{
		Prog:           p,
		Known:          knownParams(p),
		PageSize:       pageSize,
		DefaultEstTrip: defaultEstTrip,
	}
	a.collect(p.Body, nil)
	a.group()
	return a
}

func knownParams(p *ir.Program) map[int]int64 {
	m := make(map[int]int64)
	for _, prm := range p.Params {
		if prm.Known {
			m[prm.Slot] = prm.Val
		}
	}
	return m
}

// collect walks statements gathering array references.
func (a *Analysis) collect(stmts []ir.Stmt, path []*ir.Loop) {
	for _, s := range stmts {
		switch x := s.(type) {
		case *ir.Loop:
			sub := append(append([]*ir.Loop{}, path...), x)
			a.collect(x.Body, sub)
		case ir.AssignF:
			a.addRef(x.Arr, x.Idx, true, path)
			a.collectF(x.RHS, path)
			a.collectIdx(x.Idx, path)
		case ir.AssignI:
			a.addRef(x.Arr, x.Idx, true, path)
			a.collectI(x.RHS, path)
			a.collectIdx(x.Idx, path)
		case ir.SetScalarF:
			a.collectF(x.RHS, path)
		case ir.SetScalarI:
			a.collectI(x.RHS, path)
		case ir.If:
			a.collectB(x.Cond, path)
			a.collect(x.Then, path)
			a.collect(x.Else, path)
		}
		// Prefetch/Release statements are compiler output, not input refs.
	}
}

func (a *Analysis) collectIdx(idx []ir.IExpr, path []*ir.Loop) {
	for _, e := range idx {
		a.collectI(e, path)
	}
}

func (a *Analysis) collectF(e ir.FExpr, path []*ir.Loop) {
	switch x := e.(type) {
	case ir.FLoad:
		a.addRef(x.Arr, x.Idx, false, path)
		a.collectIdx(x.Idx, path)
	case ir.FBin:
		a.collectF(x.A, path)
		a.collectF(x.B, path)
	case ir.FNeg:
		a.collectF(x.X, path)
	case ir.FromInt:
		a.collectI(x.X, path)
	case ir.FCall:
		for _, arg := range x.Args {
			a.collectF(arg, path)
		}
	}
}

func (a *Analysis) collectI(e ir.IExpr, path []*ir.Loop) {
	switch x := e.(type) {
	case ir.ILoad:
		a.addRef(x.Arr, x.Idx, false, path)
		a.collectIdx(x.Idx, path)
	case ir.IBin:
		a.collectI(x.A, path)
		a.collectI(x.B, path)
	}
}

func (a *Analysis) collectB(e ir.BExpr, path []*ir.Loop) {
	switch x := e.(type) {
	case ir.CmpI:
		a.collectI(x.A, path)
		a.collectI(x.B, path)
	case ir.CmpF:
		a.collectF(x.A, path)
		a.collectF(x.B, path)
	case ir.And:
		a.collectB(x.A, path)
		a.collectB(x.B, path)
	case ir.Or:
		a.collectB(x.A, path)
		a.collectB(x.B, path)
	case ir.Not:
		a.collectB(x.X, path)
	}
}

func (a *Analysis) addRef(arr *ir.Array, idx []ir.IExpr, isWrite bool, path []*ir.Loop) {
	r := &Ref{
		Arr:           arr,
		Idx:           idx,
		IsWrite:       isWrite,
		Path:          append([]*ir.Loop{}, path...),
		Coeffs:        map[int]int64{},
		IndirectSlots: map[int]bool{},
	}
	a.decompose(r)
	a.Refs = append(a.Refs, r)
}
