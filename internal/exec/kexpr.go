// Expression lowering, hint lowering, and final assembly for the nest
// compiler (kcompile.go).
package exec

import (
	"repro/internal/ir"
)

// ---- integer expressions -------------------------------------------------

func (kc *kcompiler) iexpr(x ir.IExpr) uint16 {
	if kc.oc.err != nil || kc.overflow {
		return 0
	}
	switch e := x.(type) {
	case ir.IConst:
		return kc.iconstReg(e.Val)
	case ir.ISlot:
		if r, ok := kc.bind[e.Slot]; ok {
			return r
		}
		r := kc.iReg()
		kc.emit(kinstr{op: opISlot, dst: r, imm: int64(e.Slot)})
		kc.bind[e.Slot] = r
		return r
	case ir.IBin:
		if v, ok := ir.ConstFold(e); ok {
			return kc.iconstReg(v)
		}
		if ir.PureIExpr(e) {
			k := keyI(e)
			if r, ok := kc.lookupCse(k, e); ok {
				return r
			}
			if r, ok := kc.tryHoist(e, k); ok {
				return r
			}
			r := kc.compileIBin(e)
			kc.cse[k] = cseEnt{e: e, r: r}
			kc.cseDep[k] = slotsOf(e)
			return r
		}
		return kc.compileIBin(e)
	case ir.ILoad:
		return kc.loadI(e.Arr, e.Idx)
	case ir.IFromF:
		f := kc.fexpr(e.X)
		r := kc.iReg()
		kc.emit(kinstr{op: opIFromF, dst: r, a: f})
		return r
	}
	// the oracle's cost pass has already recorded the failure
	return 0
}

// lookupCse checks the local table, then hoisted invariants of every
// enclosing loop (their code dominates the current position).
func (kc *kcompiler) lookupCse(k uint64, e ir.IExpr) (uint16, bool) {
	if ent, ok := kc.cse[k]; ok && sameI(ent.e, e) {
		return ent.r, true
	}
	for i := len(kc.loops) - 1; i >= 0; i-- {
		if ent, ok := kc.loops[i].hoistCse[k]; ok && sameI(ent.e, e) {
			return ent.r, true
		}
	}
	return 0, false
}

// tryHoist moves a pure, trap-free expression that no written slot feeds
// into the innermost enclosing loop's preamble. Hoisted code runs even
// for zero-trip loops, which is unobservable: it is pure ALU into fresh
// registers and carries no charge.
func (kc *kcompiler) tryHoist(e ir.IBin, k uint64) (uint16, bool) {
	if len(kc.loops) == 0 || ir.MayTrapIExpr(e) {
		return 0, false
	}
	ctx := kc.loops[len(kc.loops)-1]
	dep := false
	ir.IExprSlots(e, func(s int) {
		if s == ctx.slot || ctx.written[s] {
			dep = true
		}
	})
	if dep {
		return 0, false
	}
	if ent, ok := ctx.hoistCse[k]; ok && sameI(ent.e, e) {
		return ent.r, true
	}
	r := kc.compileHoisted(e, ctx)
	ctx.hoistCse[k] = cseEnt{e: e, r: r}
	return r, true
}

// compileHoisted emits a pure expression into ctx.hoist using only the
// constant pool and ctx's own table — never body-context bindings, which
// the preamble would execute before.
func (kc *kcompiler) compileHoisted(x ir.IExpr, ctx *kloop) uint16 {
	switch e := x.(type) {
	case ir.IConst:
		return kc.iconstReg(e.Val)
	case ir.ISlot:
		k := keyI(e)
		if ent, ok := ctx.hoistCse[k]; ok && sameI(ent.e, e) {
			return ent.r
		}
		r := kc.iReg()
		ctx.hoist = append(ctx.hoist, kinstr{op: opISlot, dst: r, imm: int64(e.Slot)})
		ctx.hoistCse[k] = cseEnt{e: e, r: r}
		return r
	case ir.IBin:
		if v, ok := ir.ConstFold(e); ok {
			return kc.iconstReg(v)
		}
		k := keyI(e)
		if ent, ok := ctx.hoistCse[k]; ok && sameI(ent.e, e) {
			return ent.r
		}
		a := kc.compileHoisted(e.A, ctx)
		b := kc.compileHoisted(e.B, ctx)
		r := kc.iReg()
		op, ok := ibinOp(e.Op)
		if !ok {
			return 0
		}
		ctx.hoist = append(ctx.hoist, kinstr{op: op, dst: r, a: a, b: b})
		ctx.hoistCse[k] = cseEnt{e: e, r: r}
		return r
	}
	return 0 // unreachable: callers check PureIExpr
}

func ibinOp(op ir.IBinOp) (kop, bool) {
	switch op {
	case ir.IAdd:
		return opIAdd, true
	case ir.ISub:
		return opISub, true
	case ir.IMul:
		return opIMul, true
	case ir.IDiv:
		return opIDiv, true
	case ir.IMod:
		return opIMod, true
	case ir.IShl:
		return opIShl, true
	case ir.IShr:
		return opIShr, true
	case ir.IMin:
		return opIMin, true
	case ir.IMax:
		return opIMax, true
	}
	return opNop, false
}

func (kc *kcompiler) compileIBin(e ir.IBin) uint16 {
	// Immediate forms. Folding a constant operand is exact: constants
	// have no evaluation effects, so operand order is preserved for the
	// remaining side.
	if e.Op == ir.IAdd || e.Op == ir.ISub || e.Op == ir.IMul {
		if vb, ok := ir.ConstFold(e.B); ok {
			a := kc.iexpr(e.A)
			r := kc.iReg()
			switch e.Op {
			case ir.IAdd:
				kc.emit(kinstr{op: opIAddImm, dst: r, a: a, imm: vb})
			case ir.ISub:
				kc.emit(kinstr{op: opIAddImm, dst: r, a: a, imm: -vb})
			case ir.IMul:
				kc.emit(kinstr{op: opIMulImm, dst: r, a: a, imm: vb})
			}
			return r
		}
		if va, ok := ir.ConstFold(e.A); ok && e.Op != ir.ISub {
			b := kc.iexpr(e.B)
			r := kc.iReg()
			if e.Op == ir.IAdd {
				kc.emit(kinstr{op: opIAddImm, dst: r, a: b, imm: va})
			} else {
				kc.emit(kinstr{op: opIMulImm, dst: r, a: b, imm: va})
			}
			return r
		}
	}
	a := kc.iexpr(e.A)
	b := kc.iexpr(e.B)
	op, ok := ibinOp(e.Op)
	if !ok {
		return 0 // oracle already failed compilation
	}
	r := kc.iReg()
	kc.emit(kinstr{op: op, dst: r, a: a, b: b})
	return r
}

// ---- float expressions ---------------------------------------------------

func (kc *kcompiler) fexpr(x ir.FExpr) uint16 {
	if kc.oc.err != nil || kc.overflow {
		return 0
	}
	switch e := x.(type) {
	case ir.FConst:
		return kc.fconstReg(e.Val)
	case ir.FScalar:
		if r, ok := kc.fbind[e.Slot]; ok {
			return r
		}
		r := kc.fReg()
		kc.emit(kinstr{op: opFSlot, dst: r, imm: int64(e.Slot)})
		kc.fbind[e.Slot] = r
		return r
	case ir.FLoad:
		return kc.loadF(e.Arr, e.Idx)
	case ir.FBin:
		a := kc.fexpr(e.A)
		b := kc.fexpr(e.B)
		var op kop
		switch e.Op {
		case ir.FAdd:
			op = opFAdd
		case ir.FSub:
			op = opFSub
		case ir.FMul:
			op = opFMul
		case ir.FDiv:
			op = opFDiv
		case ir.FMinOp:
			op = opFMin
		case ir.FMaxOp:
			op = opFMax
		default:
			return 0
		}
		r := kc.fReg()
		kc.emit(kinstr{op: op, dst: r, a: a, b: b})
		return r
	case ir.FNeg:
		a := kc.fexpr(e.X)
		r := kc.fReg()
		kc.emit(kinstr{op: opFNeg, dst: r, a: a})
		return r
	case ir.FromInt:
		a := kc.iexpr(e.X)
		r := kc.fReg()
		kc.emit(kinstr{op: opFromI, dst: r, a: a})
		return r
	case ir.FCall:
		return kc.fcall(e)
	}
	return 0
}

func (kc *kcompiler) fcall(e ir.FCall) uint16 {
	args := make([]uint16, len(e.Args))
	for i, a := range e.Args {
		args[i] = kc.fexpr(a)
	}
	var op kop
	want := 1
	switch e.Fn {
	case ir.Sqrt:
		op = opSqrt
	case ir.Abs:
		op = opAbs
	case ir.Log:
		op = opLog
	case ir.Exp:
		op = opExp
	case ir.Sin:
		op = opSin
	case ir.Cos:
		op = opCos
	case ir.Pow:
		op, want = opPow, 2
	case ir.Randlc:
		op, want = opRandlc, 0
	default:
		return 0
	}
	if len(args) != want {
		return 0 // arity error already recorded by the oracle pass
	}
	in := kinstr{op: op, dst: kc.fReg()}
	if want >= 1 {
		in.a = args[0]
	}
	if want == 2 {
		in.b = args[1]
	}
	kc.emit(in)
	return in.dst
}

// ---- memory --------------------------------------------------------------

// linIndexChecked emits the oracle's per-dim evaluate/check/accumulate
// sequence into one linear-index register.
func (kc *kcompiler) linIndexChecked(arr *ir.Array, idx []ir.IExpr) uint16 {
	li := kc.iReg()
	for d, ix := range idx {
		r := kc.iexpr(ix)
		op := opIdxAcc
		if d == 0 {
			op = opIdx0
		}
		kc.emit(kinstr{op: op, dst: li, a: r, b: uint16(kc.auxFor(arr, d)),
			imm: arr.Strides[d], imm2: arr.Dims[d]})
	}
	return li
}

func (kc *kcompiler) loadF(arr *ir.Array, idx []ir.IExpr) uint16 {
	if len(idx) == 1 && len(arr.Strides) == 1 {
		ix := kc.iexpr(idx[0])
		kc.flush()
		r := kc.fReg()
		kc.emit(kinstr{op: opLoadF1, dst: r, a: ix, b: uint16(kc.auxFor(arr, 0)),
			imm: arr.Base, imm2: arr.Dims[0]})
		return r
	}
	li := kc.linIndexChecked(arr, idx)
	kc.flush()
	r := kc.fReg()
	kc.emit(kinstr{op: opLoadFA, dst: r, a: li, imm: arr.Base})
	return r
}

func (kc *kcompiler) loadI(arr *ir.Array, idx []ir.IExpr) uint16 {
	if len(idx) == 1 && len(arr.Strides) == 1 {
		ix := kc.iexpr(idx[0])
		kc.flush()
		r := kc.iReg()
		kc.emit(kinstr{op: opLoadI1, dst: r, a: ix, b: uint16(kc.auxFor(arr, 0)),
			imm: arr.Base, imm2: arr.Dims[0]})
		return r
	}
	li := kc.linIndexChecked(arr, idx)
	kc.flush()
	r := kc.iReg()
	kc.emit(kinstr{op: opLoadIA, dst: r, a: li, imm: arr.Base})
	return r
}

func (kc *kcompiler) storeF(arr *ir.Array, idx []ir.IExpr, val uint16) {
	if len(idx) == 1 && len(arr.Strides) == 1 {
		ix := kc.iexpr(idx[0])
		kc.flush()
		kc.emit(kinstr{op: opStoreF1, dst: val, a: ix, b: uint16(kc.auxFor(arr, 0)),
			imm: arr.Base, imm2: arr.Dims[0]})
		return
	}
	li := kc.linIndexChecked(arr, idx)
	kc.flush()
	kc.emit(kinstr{op: opStoreFA, dst: val, a: li, imm: arr.Base})
}

func (kc *kcompiler) storeI(arr *ir.Array, idx []ir.IExpr, val uint16) {
	if len(idx) == 1 && len(arr.Strides) == 1 {
		ix := kc.iexpr(idx[0])
		kc.flush()
		kc.emit(kinstr{op: opStoreI1, dst: val, a: ix, b: uint16(kc.auxFor(arr, 0)),
			imm: arr.Base, imm2: arr.Dims[0]})
		return
	}
	li := kc.linIndexChecked(arr, idx)
	kc.flush()
	kc.emit(kinstr{op: opStoreIA, dst: val, a: li, imm: arr.Base})
}

// ---- conditions ----------------------------------------------------------

// condJump emits a short-circuit jump chain: control transfers to target
// exactly when x evaluates to sense, with operand evaluation order and
// short-circuiting identical to the oracle's && / ||.
func (kc *kcompiler) condJump(x ir.BExpr, target int, sense bool) {
	if kc.oc.err != nil || kc.overflow {
		return
	}
	switch e := x.(type) {
	case ir.CmpI:
		a := kc.iexpr(e.A)
		b := kc.iexpr(e.B)
		kc.flush()
		kc.emit(kinstr{op: opJCmpI, dst: cmpSense(e.Op, sense), a: a, b: b, imm: int64(target)})
	case ir.CmpF:
		a := kc.fexpr(e.A)
		b := kc.fexpr(e.B)
		kc.flush()
		kc.emit(kinstr{op: opJCmpF, dst: cmpSense(e.Op, sense), a: a, b: b, imm: int64(target)})
	case ir.And:
		if sense {
			skip := kc.newLabel()
			kc.condJump(e.A, skip, false)
			kc.condJump(e.B, target, true)
			kc.mark(skip)
		} else {
			kc.condJump(e.A, target, false)
			kc.condJump(e.B, target, false)
		}
	case ir.Or:
		if sense {
			kc.condJump(e.A, target, true)
			kc.condJump(e.B, target, true)
		} else {
			skip := kc.newLabel()
			kc.condJump(e.A, skip, true)
			kc.condJump(e.B, target, false)
			kc.mark(skip)
		}
	case ir.Not:
		kc.condJump(e.X, target, !sense)
	}
	// unknown BExpr: the oracle's cost pass recorded the failure
}

// ---- hints ---------------------------------------------------------------

// hintSideSafe reports whether evaluating one hint side's linear index a
// single time is provably indistinguishable from the oracle's double
// evaluation: the pages expression must be pure (no crossing between the
// two index evaluations) and the index may contain at most one load —
// whose second execution then hits the page the first just touched, with
// pure subscripts so it reads the same address. Randlc and float state
// (IFromF) are never safe to elide.
//
// This is a template-selection heuristic, not a correctness gate: a side
// that fails it is lowered by hintExact, which replays the oracle's
// double evaluation in bytecode instead of eliding the second one.
func hintSideSafe(idx []ir.IExpr, pages ir.IExpr) bool {
	if !ir.PureIExpr(pages) {
		return false
	}
	loads := 0
	ok := true
	var scan func(x ir.IExpr)
	scan = func(x ir.IExpr) {
		switch e := x.(type) {
		case ir.IConst, ir.ISlot:
		case ir.IBin:
			scan(e.A)
			scan(e.B)
		case ir.ILoad:
			loads++
			for _, ix := range e.Idx {
				if !ir.PureIExpr(ix) {
					ok = false
				}
			}
		default:
			ok = false
		}
	}
	for _, ix := range idx {
		scan(ix)
	}
	return ok && loads <= 1
}

func (kc *kcompiler) hint(pfArr *ir.Array, pfIdx []ir.IExpr, pfPages ir.IExpr,
	relArr *ir.Array, relIdx []ir.IExpr, relPages ir.IExpr) {

	oc := kc.oc
	cost := int64(costArith)
	if pfArr != nil {
		_, _, k := oc.hintRange(pfArr, pfIdx, pfPages)
		cost += k
	}
	if relArr != nil {
		_, _, k := oc.hintRange(relArr, relIdx, relPages)
		cost += k
	}
	if oc.err != nil {
		return
	}
	if n := len(kc.loops); n > 0 {
		kc.loops[n-1].hints++
	}
	kc.charge(cost)
	if (pfArr != nil && !hintSideSafe(pfIdx, pfPages)) ||
		(relArr != nil && !hintSideSafe(relIdx, relPages)) {
		// Single evaluation not provably exact: replay the oracle's double
		// evaluation in bytecode. Hint code writes no scalar slots, so
		// register facts survive.
		kc.hintExact(pfArr, pfIdx, pfPages, relArr, relIdx, relPages)
		return
	}

	// Fused template: constant-page indirect prefetch (a[col[k]] shape),
	// no release side — one instruction per hint.
	if relArr == nil && pfArr != nil && len(pfIdx) == 1 && len(pfArr.Strides) == 1 {
		if n, ok := ir.ConstFold(pfPages); ok && n >= 1 {
			if ld, isLd := pfIdx[0].(ir.ILoad); isLd && len(ld.Idx) == 1 &&
				len(ld.Arr.Strides) == 1 && ir.PureIExpr(ld.Idx[0]) {
				ix := kc.iexpr(ld.Idx[0])
				h := hintAux{
					cBase: ld.Arr.Base, cDim: ld.Arr.Dims[0], cRef: kc.auxFor(ld.Arr, 0),
					xBase: pfArr.Base, xDim: pfArr.Elems,
					lastPage: (pfArr.Base + pfArr.Elems*ir.ElemSize - 1) >> kc.shift,
					pages:    n,
				}
				kc.emit(kinstr{op: opHintLoad1, a: ix, b: kc.hauxAdd(h), imm: kc.takePending()})
				return
			}
		}
	}

	// General path: per side, linear index -> clamped page -> clamped
	// count, then the oracle's dispatch. A clamped single-page prefetch
	// with no release needs no count register at all: the clamp cannot
	// shrink a one-page range whose start is already within the array.
	var rpp, rpn uint16
	if pfArr != nil {
		rpp = kc.hintPage(pfArr, pfIdx)
		if n, ok := ir.ConstFold(pfPages); ok && n == 1 && relArr == nil {
			kc.flush()
			kc.emit(kinstr{op: opHint1, a: rpp})
			return
		}
		rpn = kc.hintCount(pfArr, pfPages, rpp)
	}
	var rrp, rrn uint16
	if relArr != nil {
		rrp = kc.hintPage(relArr, relIdx)
		rrn = kc.hintCount(relArr, relPages, rrp)
	}
	kc.flush()
	kc.emit(kinstr{op: opHint, a: rpp, b: rpn, dst: rrp, imm: int64(rrn)})
}

// hintPage emits the unchecked linear index (hint addresses are clamped,
// never bounds-checked) and the clamp-to-array page computation.
func (kc *kcompiler) hintPage(arr *ir.Array, idx []ir.IExpr) uint16 {
	var li uint16
	for d, ix := range idx {
		r := kc.iexpr(ix)
		if arr.Strides[d] != 1 {
			rm := kc.iReg()
			kc.emit(kinstr{op: opIMulImm, dst: rm, a: r, imm: arr.Strides[d]})
			r = rm
		}
		if d == 0 {
			li = r
		} else {
			rs := kc.iReg()
			kc.emit(kinstr{op: opIAdd, dst: rs, a: li, b: r})
			li = rs
		}
	}
	rp := kc.iReg()
	kc.emit(kinstr{op: opHintPage, dst: rp, a: li, imm: arr.Base, imm2: arr.Elems})
	return rp
}

func (kc *kcompiler) hintCount(arr *ir.Array, pages ir.IExpr, rp uint16) uint16 {
	rn0 := kc.iexpr(pages)
	rn := kc.iReg()
	lastPage := (arr.Base + arr.Elems*ir.ElemSize - 1) >> kc.shift
	kc.emit(kinstr{op: opHintN, dst: rn, a: rn0, b: rp, imm: lastPage})
	return rn
}

// hintExact lowers a hint some side of which is not provably safe to
// evaluate once, by replaying the oracle's exact evaluation order in
// bytecode. Per side: the linear index is evaluated for the dispatch
// page, the pages expression is evaluated, and the index is evaluated a
// second time for the count clamp — so every load (and any generator
// call) in the subscripts executes exactly as many times, in exactly
// the order, the closure oracle's hintRange would, with identical page
// touches. Pure subexpressions may still CSE across the two
// evaluations: re-running them is unobservable.
func (kc *kcompiler) hintExact(pfArr *ir.Array, pfIdx []ir.IExpr, pfPages ir.IExpr,
	relArr *ir.Array, relIdx []ir.IExpr, relPages ir.IExpr) {
	var rpp, rpn uint16
	if pfArr != nil {
		rpp = kc.hintPage(pfArr, pfIdx)
		rpn = kc.hintCountExact(pfArr, pfPages, pfIdx)
	}
	var rrp, rrn uint16
	if relArr != nil {
		rrp = kc.hintPage(relArr, relIdx)
		rrn = kc.hintCountExact(relArr, relPages, relIdx)
	}
	kc.flush()
	kc.emit(kinstr{op: opHint, a: rpp, b: rpn, dst: rrp, imm: int64(rrn)})
}

// hintCountExact emits the pages expression, then the second index
// evaluation, then the clamp of the count against that second page —
// the oracle's npages order.
func (kc *kcompiler) hintCountExact(arr *ir.Array, pages ir.IExpr, idx []ir.IExpr) uint16 {
	rn0 := kc.iexpr(pages)
	rp2 := kc.hintPage(arr, idx)
	rn := kc.iReg()
	lastPage := (arr.Base + arr.Elems*ir.ElemSize - 1) >> kc.shift
	kc.emit(kinstr{op: opHintN, dst: rn, a: rn0, b: rp2, imm: lastPage})
	return rn
}
