package exec

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/ir"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

// build compiles prog onto a fresh simulated system with the given number
// of frames and returns everything needed by a test.
func build(t testing.TB, prog *ir.Program, frames int64) (*sim.Clock, *vm.VM, *stripefs.File, *Machine) {
	t.Helper()
	p := hw.Default()
	p.MemoryBytes = frames * p.PageSize
	c := sim.NewClock()
	fs := stripefs.New(c, p, nil)
	if err := prog.Resolve(p.PageSize); err != nil {
		t.Fatal(err)
	}
	pages := prog.TotalBytes(p.PageSize) / p.PageSize
	if pages == 0 {
		pages = 1
	}
	file, err := fs.Create(prog.Name, pages)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(c, p, file)
	layer := rt.Register(v, true)
	m, err := New(prog, v, layer)
	if err != nil {
		t.Fatal(err)
	}
	return c, v, file, m
}

// sumProgram builds: for i in [0,n): s += a[i], with a[i] seeded to i.
func sumProgram(n int64) (*ir.Program, ir.FScalar) {
	p := ir.NewProgram("sum")
	np := p.NewParam("n", n, true)
	a := p.NewArrayF("a", np)
	s := p.NewScalarF("s")
	i := p.NewLoopVar("i")
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), np, 1,
			ir.SetF(s, ir.AddF(ir.FScalar{Slot: s.Slot, Name: s.Name}, ir.LoadF(a, i))),
		),
	}
	return p, s
}

func TestSumLoop(t *testing.T) {
	const n = 2000
	prog, s := sumProgram(n)
	_, _, file, m := build(t, prog, 64)
	SeedF64(file, hw.Default().PageSize, prog.Arrays[0], func(i int64) float64 { return float64(i) })
	env := m.Run()
	want := float64(n*(n-1)) / 2
	if got := env.Floats[s.Slot]; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestComputationChargesUserTime(t *testing.T) {
	prog, _ := sumProgram(1000)
	_, v, file, m := build(t, prog, 64)
	SeedF64(file, hw.Default().PageSize, prog.Arrays[0], func(int64) float64 { return 1 })
	m.Run()
	ts := v.Times()
	// ~1000 iterations × a handful of ops × 50ns each.
	if ts.User < 100*sim.Microsecond || ts.User > 10*sim.Millisecond {
		t.Fatalf("user time %v outside plausible range", ts.User)
	}
	if ts.SysFault == 0 {
		t.Fatal("cold run should have faulted")
	}
}

func TestIndirectAccess(t *testing.T) {
	// rank[key[i]] += 1 over a permutation: every rank must end at 1.
	const n = 1024
	p := ir.NewProgram("indirect")
	np := p.NewParam("n", n, true)
	key := p.NewArrayI("key", np)
	rank := p.NewArrayF("rank", np)
	i := p.NewLoopVar("i")
	idx := []ir.IExpr{ir.LoadI(key, i)}
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), np, 1,
			ir.StoreF(rank, idx, ir.AddF(ir.LoadF(rank, idx[0]), ir.Flt(1))),
		),
	}
	_, v, file, m := build(t, p, 64)
	SeedI64(file, hw.Default().PageSize, key, func(i int64) int64 { return (i*7 + 3) % n })
	m.Run()
	for k := int64(0); k < n; k++ {
		if got := v.PeekF64(rank.Base + k*ir.ElemSize); got != 1 {
			t.Fatalf("rank[%d] = %v, want 1 (permutation property)", k, got)
		}
	}
}

func TestIfAndScalars(t *testing.T) {
	// Count elements above 0.5.
	const n = 512
	p := ir.NewProgram("count")
	np := p.NewParam("n", n, true)
	a := p.NewArrayF("a", np)
	cnt := p.NewScalarI("cnt")
	i := p.NewLoopVar("i")
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), np, 1,
			ir.If{
				Cond: ir.CmpF{Op: ir.Gt, A: ir.LoadF(a, i), B: ir.Flt(0.5)},
				Then: []ir.Stmt{ir.SetI(cnt, ir.AddI(cnt, ir.Int(1)))},
			},
		),
	}
	_, _, file, m := build(t, p, 64)
	SeedF64(file, hw.Default().PageSize, a, func(i int64) float64 {
		if i%4 == 0 {
			return 0.9
		}
		return 0.1
	})
	env := m.Run()
	if got := env.Ints[cnt.Slot]; got != n/4 {
		t.Fatalf("count = %d, want %d", got, n/4)
	}
}

func TestPrefetchStatementReachesOS(t *testing.T) {
	// A block prefetch ahead of a streaming loop must turn faults into
	// prefetched hits.
	const n = 4096 // 8 pages of float64
	p := ir.NewProgram("pf")
	np := p.NewParam("n", n, true)
	a := p.NewArrayF("a", np)
	s := p.NewScalarF("s")
	i := p.NewLoopVar("i")
	p.Body = []ir.Stmt{
		ir.Prefetch{Arr: a, Idx: []ir.IExpr{ir.Int(0)}, Pages: ir.Int(8)},
		ir.For(i, ir.Int(0), np, 1,
			ir.SetF(s, ir.AddF(ir.FScalar{Slot: s.Slot, Name: s.Name}, ir.LoadF(a, i))),
		),
	}
	_, v, file, m := build(t, p, 64)
	SeedF64(file, hw.Default().PageSize, a, func(int64) float64 { return 1 })
	env := m.Run()
	if env.Floats[s.Slot] != n {
		t.Fatalf("sum wrong: %v", env.Floats[s.Slot])
	}
	st := v.Stats()
	if st.PrefetchIssued != 8 {
		t.Fatalf("PrefetchIssued = %d, want 8", st.PrefetchIssued)
	}
	if st.NonPrefetchedFault != 0 {
		t.Fatalf("NonPrefetchedFault = %d, want 0 (everything was prefetched)", st.NonPrefetchedFault)
	}
	if st.PrefetchedHits+st.PrefetchedFaults != 8 {
		t.Fatalf("classified faults = %d, want 8", st.PrefetchedHits+st.PrefetchedFaults)
	}
}

func TestHintClampingPastArrayEnd(t *testing.T) {
	// Prefetching beyond the array's last page must clamp, not panic.
	const n = 512 // one page
	p := ir.NewProgram("clamp")
	np := p.NewParam("n", n, true)
	a := p.NewArrayF("a", np)
	i := p.NewLoopVar("i")
	s := p.NewScalarF("s")
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), np, 1,
			// Wildly out-of-range prefetch every iteration.
			ir.Prefetch{Arr: a, Idx: []ir.IExpr{ir.AddI(i, ir.Int(100000))}, Pages: ir.Int(4)},
			ir.SetF(s, ir.LoadF(a, i)),
		),
	}
	_, _, file, m := build(t, p, 64)
	SeedF64(file, hw.Default().PageSize, a, func(int64) float64 { return 2 })
	m.Run() // must not panic
}

func TestReleaseStatementFreesMemory(t *testing.T) {
	const n = 4096 // 8 pages
	p := ir.NewProgram("rel")
	np := p.NewParam("n", n, true)
	a := p.NewArrayF("a", np)
	s := p.NewScalarF("s")
	i := p.NewLoopVar("i")
	perPage := int64(512)
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), np, 1,
			ir.SetF(s, ir.AddF(ir.FScalar{Slot: s.Slot, Name: s.Name}, ir.LoadF(a, i))),
		),
		// Release the whole array afterwards.
		ir.Release{Arr: a, Idx: []ir.IExpr{ir.Int(0)}, Pages: ir.DivI(np, ir.Int(perPage))},
	}
	_, v, file, m := build(t, p, 64)
	SeedF64(file, hw.Default().PageSize, a, func(int64) float64 { return 1 })
	m.Run()
	if got := v.Stats().ReleasedPages; got != 8 {
		t.Fatalf("ReleasedPages = %d, want 8", got)
	}
}

func TestBoundsCheckedApplicationAccess(t *testing.T) {
	p := ir.NewProgram("oob")
	np := p.NewParam("n", 16, true)
	a := p.NewArrayF("a", np)
	i := p.NewLoopVar("i")
	s := p.NewScalarF("s")
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), ir.Int(32), 1, // runs past the array
			ir.SetF(s, ir.LoadF(a, i)),
		),
	}
	_, _, _, m := build(t, p, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds application access did not panic")
		}
	}()
	m.Run()
}

func TestRandlcMatchesNASReference(t *testing.T) {
	// The NAS EP generator with seed 314159265 and a = 5^13 has a
	// well-defined stream; check basic properties and determinism.
	e1 := &Env{}
	e1.SetSeed(314159265)
	e2 := &Env{}
	e2.SetSeed(314159265)
	var prev float64
	for i := 0; i < 1000; i++ {
		a, b := e1.randlc(), e2.randlc()
		if a != b {
			t.Fatal("randlc not deterministic")
		}
		if a <= 0 || a >= 1 {
			t.Fatalf("randlc out of (0,1): %v", a)
		}
		if i > 0 && a == prev {
			t.Fatal("randlc repeated immediately")
		}
		prev = a
	}
	// Mean of uniforms should be near 0.5.
	e1.SetSeed(314159265)
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += e1.randlc()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("randlc mean %v, want ≈0.5", mean)
	}
}

func TestMultiDimensionalArrays(t *testing.T) {
	// c[i][j] = i*10 + j round-trip through a 2-D array.
	p := ir.NewProgram("md")
	ni := p.NewParam("ni", 20, true)
	nj := p.NewParam("nj", 30, true)
	cArr := p.NewArrayF("c", ni, nj)
	i := p.NewLoopVar("i")
	j := p.NewLoopVar("j")
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), ni, 1,
			ir.For(j, ir.Int(0), nj, 1,
				ir.StoreF(cArr, []ir.IExpr{i, j},
					ir.AddF(ir.MulF(ir.FromInt{X: i}, ir.Flt(10)), ir.FromInt{X: j})),
			),
		),
	}
	_, v, _, m := build(t, p, 64)
	m.Run()
	for ii := int64(0); ii < 20; ii++ {
		for jj := int64(0); jj < 30; jj++ {
			addr := cArr.Base + (ii*30+jj)*ir.ElemSize
			if got := v.PeekF64(addr); got != float64(ii*10+jj) {
				t.Fatalf("c[%d][%d] = %v, want %v", ii, jj, got, float64(ii*10+jj))
			}
		}
	}
}

func TestIntrinsics(t *testing.T) {
	p := ir.NewProgram("intr")
	s := p.NewScalarF("s")
	p.Body = []ir.Stmt{
		ir.SetF(s, ir.Call(ir.Sqrt, ir.Flt(9))),
	}
	_, _, _, m := build(t, p, 64)
	env := m.Run()
	if env.Floats[s.Slot] != 3 {
		t.Fatalf("sqrt(9) = %v", env.Floats[s.Slot])
	}
}

func TestOutOfCoreStreamFaultsPerPage(t *testing.T) {
	// Streaming 4× memory with 512 float64 per page: exactly one major
	// fault per page, no more.
	const frames = 16
	const pages = 64
	prog, _ := sumProgram(pages * 512)
	_, v, file, m := build(t, prog, frames)
	SeedF64(file, hw.Default().PageSize, prog.Arrays[0], func(int64) float64 { return 1 })
	m.Run()
	if got := v.Stats().MajorFaults; got != pages {
		t.Fatalf("major faults = %d, want %d (one per page)", got, pages)
	}
}

func TestLoopBoundsWithParamExprs(t *testing.T) {
	// for i in [0, n/2): touch a[2*i] — stride-2 access.
	p := ir.NewProgram("stride")
	np := p.NewParam("n", 1000, true)
	a := p.NewArrayF("a", np)
	s := p.NewScalarF("s")
	i := p.NewLoopVar("i")
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), ir.DivI(np, ir.Int(2)), 1,
			ir.SetF(s, ir.AddF(ir.FScalar{Slot: s.Slot, Name: s.Name}, ir.LoadF(a, ir.MulI(i, ir.Int(2))))),
		),
	}
	_, _, file, m := build(t, p, 64)
	SeedF64(file, hw.Default().PageSize, a, func(i int64) float64 {
		if i%2 == 0 {
			return 1
		}
		return 100
	})
	env := m.Run()
	if got := env.Floats[s.Slot]; got != 500 {
		t.Fatalf("sum of even elements = %v, want 500", got)
	}
}
