// The nest compiler: lowers a whole program body — outer loops included —
// to the flat kernel bytecode of kernel.go. Where the page-run fast path
// (fastpath.go) specializes an innermost loop, the nest compiler calls it
// and embeds the resulting span driver behind an opCall; everything else
// becomes linear instructions, so steady-state iterations make zero
// closure calls per element.
//
// Exactness discipline (see kernel.go's package comment): compile-time
// operation charges accumulate in kc.pending and are materialized as one
// opCharge before any instruction that can fault or cross into the
// kernel, and before control flow splits. Pure integer expressions may be
// CSE'd, folded, or hoisted out of a loop only when they are trap-free
// and depend on no slot the loop writes; values bound to registers are
// dropped at every join point whose dominating instructions might not
// have executed (loop exits, branch joins, after drivers that write
// slots). The closure oracle (exec.go) remains the reference semantics.
package exec

import (
	"fmt"
	"math"
	"os"

	"repro/internal/ir"
)

// kloop is the compile-time context of one bytecode loop being built.
type kloop struct {
	slot     int
	written  map[int]bool // int slots the body writes (incl. nested vars)
	fwritten map[int]bool // float slots the body writes
	hoist    []kinstr     // loop-invariant code, spliced before the guard
	hoistCse map[uint64]cseEnt
	hints    int // hint statements in the direct body lowered to bytecode
}

// cseEnt is one value-numbering fact: register r holds expression e. The
// expression is kept so a hash collision degrades to a CSE miss instead
// of a wrong reuse (lookups verify structural equality).
type cseEnt struct {
	e ir.IExpr
	r uint16
}

// kmaps is a snapshot of the value-numbering state.
type kmaps struct {
	cse    map[uint64]cseEnt
	cseDep map[uint64][]int
	bind   map[int]uint16
	fbind  map[int]uint16
}

type kcompiler struct {
	oc    *compiler
	shift int64 // page shift, for compile-time page arithmetic

	code    []kinstr
	buf     *[]kinstr // current emission target (body buffers swap in)
	prelude []kinstr  // constant-pool loads, prepended at assembly
	labels  int
	pending int64 // operation charges not yet materialized

	nRI, nRF int
	overflow bool // ran out of registers (or call/aux slots)

	cse    map[uint64]cseEnt // pure int expr -> register holding it
	cseDep map[uint64][]int  // its slot dependencies, for invalidation
	bind   map[int]uint16    // int slot -> register mirroring it
	fbind  map[int]uint16    // float slot -> register mirroring it
	iconst map[int64]uint16
	fconst map[uint64]uint16

	calls  []stmtFn
	aux    []auxDim
	auxIdx map[string]int
	haux   []hintAux

	loops     []*kloop
	reports   []LoopReport
	lastHints int // hint count of the most recently compiled loop body
}

func newKcompiler(oc *compiler, shift int64) *kcompiler {
	kc := &kcompiler{
		oc: oc, shift: shift,
		nRI: 1, nRF: 1, // ri[0]/rf[0] are permanent zeros
		cse:    map[uint64]cseEnt{},
		cseDep: map[uint64][]int{},
		bind:   map[int]uint16{},
		fbind:  map[int]uint16{},
		iconst: map[int64]uint16{},
		fconst: map[uint64]uint16{},
		auxIdx: map[string]int{},
	}
	kc.buf = &kc.code
	return kc
}

// compile lowers body; false means the program exceeded the bytecode's
// register/table limits and the caller should fall back to closures.
func (kc *kcompiler) compile(body []ir.Stmt) bool {
	kc.stmts(body)
	kc.flush()
	if kc.oc.err != nil || kc.overflow {
		return false
	}
	code := make([]kinstr, 0, len(kc.prelude)+len(kc.code))
	code = append(code, kc.prelude...)
	code = append(code, kc.code...)
	// Two passes: the second fuses across products of the first
	// (opIdx3 feeding opHintLoad1 becomes a single opHintIdx3).
	code = peephole(peephole(code, kc.nRI, kc.nRF, kc.haux), kc.nRI, kc.nRF, kc.haux)
	kc.code = assemble(code, kc.labels)
	fuseDotLoop(kc.code)
	return true
}

func (kc *kcompiler) install(m *Artifact) {
	m.code = kc.code
	m.calls = kc.calls
	m.aux = kc.aux
	m.haux = kc.haux
	m.nRI = kc.nRI
	m.nRF = kc.nRF
	m.pageShift = kc.shift
	m.reports = kc.reports
	if os.Getenv("OOC_KDUMP") != "" {
		h := map[kop]int{}
		for _, in := range m.code {
			h[in.op]++
		}
		fmt.Fprintf(os.Stderr, "kdump: len=%d histo=%v\n", len(m.code), h)
		for i, in := range m.code {
			fmt.Fprintf(os.Stderr, "  %3d op=%d dst=%d a=%d b=%d imm=%d imm2=%d\n",
				i, in.op, in.dst, in.a, in.b, in.imm, in.imm2)
		}
	}
}

// ---- emission helpers ----------------------------------------------------

func (kc *kcompiler) emit(in kinstr) { *kc.buf = append(*kc.buf, in) }

func (kc *kcompiler) iReg() uint16 {
	if kc.nRI > 0xFFFF {
		kc.overflow = true
		return 0
	}
	r := uint16(kc.nRI)
	kc.nRI++
	return r
}

func (kc *kcompiler) fReg() uint16 {
	if kc.nRF > 0xFFFF {
		kc.overflow = true
		return 0
	}
	r := uint16(kc.nRF)
	kc.nRF++
	return r
}

func (kc *kcompiler) charge(n int64) { kc.pending += n }

// flush materializes pending charges. Call before any instruction that
// can fault or cross into the kernel, and before control flow.
func (kc *kcompiler) flush() {
	if kc.pending != 0 {
		kc.emit(kinstr{op: opCharge, imm: kc.pending})
		kc.pending = 0
	}
}

// takePending hands the pending charge to a fused instruction that
// performs its own AddUserOps before anything can fault.
func (kc *kcompiler) takePending() int64 {
	p := kc.pending
	kc.pending = 0
	return p
}

func (kc *kcompiler) newLabel() int {
	kc.labels++
	return kc.labels - 1
}

func (kc *kcompiler) mark(l int) { kc.emit(kinstr{op: opLabel, imm: int64(l)}) }

func (kc *kcompiler) addCall(fn stmtFn) uint16 {
	if len(kc.calls) > 0xFFFF {
		kc.overflow = true
		return 0
	}
	kc.calls = append(kc.calls, fn)
	return uint16(len(kc.calls) - 1)
}

func (kc *kcompiler) auxFor(arr *ir.Array, d int) int {
	key := fmt.Sprintf("%s/%d", arr.Name, d)
	if i, ok := kc.auxIdx[key]; ok {
		return i
	}
	if len(kc.aux) > 0xFFFF {
		kc.overflow = true
		return 0
	}
	kc.aux = append(kc.aux, auxDim{name: arr.Name, dim: arr.Dims[d], d: d})
	kc.auxIdx[key] = len(kc.aux) - 1
	return len(kc.aux) - 1
}

func (kc *kcompiler) hauxAdd(h hintAux) uint16 {
	if len(kc.haux) > 0xFFFF {
		kc.overflow = true
		return 0
	}
	kc.haux = append(kc.haux, h)
	return uint16(len(kc.haux) - 1)
}

func (kc *kcompiler) iconstReg(v int64) uint16 {
	if v == 0 {
		return 0 // ri[0] is the zero register
	}
	if r, ok := kc.iconst[v]; ok {
		return r
	}
	r := kc.iReg()
	kc.prelude = append(kc.prelude, kinstr{op: opIConst, dst: r, imm: v})
	kc.iconst[v] = r
	return r
}

func (kc *kcompiler) fconstReg(v float64) uint16 {
	b := math.Float64bits(v)
	if r, ok := kc.fconst[b]; ok {
		return r
	}
	r := kc.fReg()
	kc.prelude = append(kc.prelude, kinstr{op: opFConst, dst: r, imm: int64(b)})
	kc.fconst[b] = r
	return r
}

// ---- value numbering -----------------------------------------------------

// keyI builds a structural hash for a pure integer expression (FNV-style
// word mixing; no per-node garbage). Collisions are tolerated: every
// consumer re-checks sameI before trusting a table hit.
func keyI(x ir.IExpr) uint64 {
	const prime = 1099511628211
	switch e := x.(type) {
	case ir.IConst:
		return (0x9e3779b97f4a7c15 ^ uint64(e.Val)) * prime
	case ir.ISlot:
		return (0xc2b2ae3d27d4eb4f ^ uint64(e.Slot)) * prime
	case ir.IBin:
		h := (0x165667b19e3779f9 ^ uint64(e.Op)) * prime
		h = (h ^ keyI(e.A)) * prime
		h = (h ^ keyI(e.B)) * prime
		return h
	}
	return 0
}

// sameI reports structural equality of two expressions over the pure
// IConst/ISlot/IBin domain keyI covers; any other node compares unequal.
func sameI(a, b ir.IExpr) bool {
	switch x := a.(type) {
	case ir.IConst:
		y, ok := b.(ir.IConst)
		return ok && x.Val == y.Val
	case ir.ISlot:
		y, ok := b.(ir.ISlot)
		return ok && x.Slot == y.Slot
	case ir.IBin:
		y, ok := b.(ir.IBin)
		return ok && x.Op == y.Op && sameI(x.A, y.A) && sameI(x.B, y.B)
	}
	return false
}

func slotsOf(x ir.IExpr) []int {
	var deps []int
	seen := map[int]bool{}
	ir.IExprSlots(x, func(s int) {
		if !seen[s] {
			seen[s] = true
			deps = append(deps, s)
		}
	})
	return deps
}

// invalidateSlot drops every register fact that depended on int slot s.
func (kc *kcompiler) invalidateSlot(s int) {
	delete(kc.bind, s)
	for k, deps := range kc.cseDep {
		for _, d := range deps {
			if d == s {
				delete(kc.cse, k)
				delete(kc.cseDep, k)
				break
			}
		}
	}
}

func cloneIU(m map[int]uint16) map[int]uint16 {
	out := make(map[int]uint16, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneSU(m map[uint64]cseEnt) map[uint64]cseEnt {
	out := make(map[uint64]cseEnt, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func cloneSD(m map[uint64][]int) map[uint64][]int {
	out := make(map[uint64][]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (kc *kcompiler) snapshot() kmaps {
	return kmaps{cse: cloneSU(kc.cse), cseDep: cloneSD(kc.cseDep),
		bind: cloneIU(kc.bind), fbind: cloneIU(kc.fbind)}
}

// restore installs fresh clones so one snapshot can seed several paths.
func (kc *kcompiler) restore(m kmaps) {
	kc.cse = cloneSU(m.cse)
	kc.cseDep = cloneSD(m.cseDep)
	kc.bind = cloneIU(m.bind)
	kc.fbind = cloneIU(m.fbind)
}

// writtenFSlots is WrittenSlots for float scalars.
func writtenFSlots(body []ir.Stmt, dst map[int]bool) map[int]bool {
	if dst == nil {
		dst = map[int]bool{}
	}
	for _, s := range body {
		switch x := s.(type) {
		case ir.SetScalarF:
			dst[x.Slot] = true
		case *ir.Loop:
			writtenFSlots(x.Body, dst)
		case ir.If:
			writtenFSlots(x.Then, dst)
			writtenFSlots(x.Else, dst)
		}
	}
	return dst
}

// ---- statements ----------------------------------------------------------

func (kc *kcompiler) stmts(list []ir.Stmt) {
	for _, s := range list {
		if kc.oc.err != nil || kc.overflow {
			return
		}
		kc.stmt(s)
	}
}

func (kc *kcompiler) stmt(s ir.Stmt) {
	oc := kc.oc
	switch x := s.(type) {
	case *ir.Loop:
		kc.loop(x)
	case ir.AssignF:
		_, acost := oc.addr(x.Arr, x.Idx)
		_, rcost := oc.fexpr(x.RHS)
		if oc.err != nil {
			return
		}
		kc.charge(acost + rcost + costStore)
		rv := kc.fexpr(x.RHS) // RHS first, exactly like the oracle
		kc.storeF(x.Arr, x.Idx, rv)
	case ir.AssignI:
		_, acost := oc.addr(x.Arr, x.Idx)
		_, rcost := oc.iexpr(x.RHS)
		if oc.err != nil {
			return
		}
		kc.charge(acost + rcost + costStore)
		rv := kc.iexpr(x.RHS)
		kc.storeI(x.Arr, x.Idx, rv)
	case ir.SetScalarF:
		kc.setScalarF(x)
	case ir.SetScalarI:
		_, rcost := oc.iexpr(x.RHS)
		if oc.err != nil {
			return
		}
		kc.charge(rcost + costArith)
		r := kc.iexpr(x.RHS)
		kc.emit(kinstr{op: opSetSlot, a: r, imm: int64(x.Slot)})
		kc.invalidateSlot(x.Slot)
		kc.bind[x.Slot] = r
	case ir.If:
		kc.ifStmt(x)
	case ir.Prefetch:
		kc.hint(x.Arr, x.Idx, x.Pages, nil, nil, nil)
	case ir.Release:
		kc.hint(nil, nil, nil, x.Arr, x.Idx, x.Pages)
	case ir.PrefetchRelease:
		kc.hint(x.PfArr, x.PfIdx, x.PfPages, x.RelArr, x.RelIdx, x.RelPages)
	default:
		oc.fail("unknown statement %T", s)
	}
}

func (kc *kcompiler) ifStmt(x ir.If) {
	_, ccost := kc.oc.bexpr(x.Cond)
	if kc.oc.err != nil {
		return
	}
	kc.charge(ccost + costArith)
	lEnd := kc.newLabel()
	if len(x.Else) == 0 {
		kc.condJump(x.Cond, lEnd, false)
		condSnap := kc.snapshot() // valid at both successors
		kc.stmts(x.Then)
		kc.flush()
		kc.mark(lEnd)
		kc.restore(condSnap)
	} else {
		lElse := kc.newLabel()
		kc.condJump(x.Cond, lElse, false)
		condSnap := kc.snapshot()
		kc.stmts(x.Then)
		kc.flush()
		kc.emit(kinstr{op: opJump, imm: int64(lEnd)})
		kc.mark(lElse)
		kc.restore(condSnap)
		kc.stmts(x.Else)
		kc.flush()
		kc.mark(lEnd)
		kc.restore(condSnap)
	}
	// At the join only facts that survived BOTH paths hold: drop anything
	// either branch may have written.
	wr := ir.WrittenSlots(x.Then, nil)
	wr = ir.WrittenSlots(x.Else, wr)
	for s := range wr {
		kc.invalidateSlot(s)
	}
	fw := writtenFSlots(x.Then, nil)
	fw = writtenFSlots(x.Else, fw)
	for s := range fw {
		delete(kc.fbind, s)
	}
}

func (kc *kcompiler) setScalarF(x ir.SetScalarF) {
	oc := kc.oc
	_, rcost := oc.fexpr(x.RHS)
	if oc.err != nil {
		return
	}
	kc.charge(rcost + costArith)
	slot := x.Slot
	if add, ok := x.RHS.(ir.FBin); ok && add.Op == ir.FAdd {
		if sc, ok := add.A.(ir.FScalar); ok && sc.Slot == slot {
			// s = s + ... : the scalar read moves from before the addend's
			// evaluation to after it, which is exact — float expressions
			// cannot write float slots.
			if mul, ok := add.B.(ir.FBin); ok && mul.Op == ir.FMul {
				if kc.tryFAccDot(slot, mul) {
					return
				}
				p := kc.fexpr(mul.A)
				q := kc.fexpr(mul.B)
				kc.emit(kinstr{op: opFAccM, a: p, b: q, imm: int64(slot)})
				delete(kc.fbind, slot)
				return
			}
			r := kc.fexpr(add.B)
			kc.emit(kinstr{op: opFAcc, a: r, imm: int64(slot)})
			delete(kc.fbind, slot)
			return
		}
	}
	r := kc.fexpr(x.RHS)
	kc.emit(kinstr{op: opSetF, a: r, imm: int64(slot)})
	kc.fbind[slot] = r
}

// tryFAccDot recognizes s = s + A[t] * X[C[t]] over 1-D arrays with a
// pure shared subscript — the sparse dot-product step — and emits the
// fused kernel. The subscript is evaluated once instead of twice, which
// is exact because it is pure.
func (kc *kcompiler) tryFAccDot(slot int, mul ir.FBin) bool {
	la, isA := mul.A.(ir.FLoad)
	lx, isX := mul.B.(ir.FLoad)
	if !isA || !isX || len(la.Idx) != 1 || len(lx.Idx) != 1 ||
		len(la.Arr.Strides) != 1 || len(lx.Arr.Strides) != 1 {
		return false
	}
	ld, isLd := lx.Idx[0].(ir.ILoad)
	if !isLd || len(ld.Idx) != 1 || len(ld.Arr.Strides) != 1 {
		return false
	}
	if !ir.PureIExpr(la.Idx[0]) || !sameI(la.Idx[0], ld.Idx[0]) {
		return false
	}
	t := kc.iexpr(la.Idx[0])
	h := hintAux{
		aBase: la.Arr.Base, aDim: la.Arr.Dims[0], aRef: kc.auxFor(la.Arr, 0),
		cBase: ld.Arr.Base, cDim: ld.Arr.Dims[0], cRef: kc.auxFor(ld.Arr, 0),
		xBase: lx.Arr.Base, xDim: lx.Arr.Dims[0], xRef: kc.auxFor(lx.Arr, 0),
	}
	kc.emit(kinstr{op: opFAccDot, dst: uint16(slot), a: t, b: kc.hauxAdd(h), imm: kc.takePending()})
	delete(kc.fbind, slot)
	return true
}

// ---- loops ---------------------------------------------------------------

// spanMinTrip is the trip count below which a page-run-eligible loop's
// guarded dual lowering takes the plain bytecode branch instead of the
// span driver. Short invocations cannot amortize the driver's entry
// work (bound evaluation, lazy subscript seeding, chunk sizing) and
// mostly land in its per-element slow path anyway; strip-mined nests
// like the FFT butterflies run the same loop at trips from 1 to
// thousands, so the choice has to be made at run time. Both branches
// charge and fault identically — the guard only moves host time.
const spanMinTrip = 8

func (kc *kcompiler) loop(l *ir.Loop) {
	oc := kc.oc
	if l.Step <= 0 {
		oc.fail("loop %s has non-positive step %d", l.Var, l.Step)
		return
	}
	lo, locost := oc.iexpr(l.Lo)
	hi, hicost := oc.iexpr(l.Hi)
	head := locost + hicost
	if oc.err != nil {
		return
	}
	depth := len(kc.loops)
	before := oc.nSites
	if fn, ok := oc.fastLoop(l, lo, hi, head); ok {
		// Page-run span driver: embed it whole. It charges its own head
		// and per-iteration costs and writes slots directly. When the
		// bounds are pure, guard it with a runtime trip-count check that
		// routes short invocations to an inline bytecode copy of the loop.
		kc.flush()
		call := kc.addCall(fn)
		if ir.PureIExpr(l.Lo) && ir.PureIExpr(l.Hi) {
			// Pure bounds: evaluating them ahead of the driver (which
			// re-evaluates internally) is unobservable and charge-free.
			rh := kc.iexpr(l.Hi)
			rlo := kc.iexpr(l.Lo)
			rd := kc.iReg()
			kc.emit(kinstr{op: opISub, dst: rd, a: rh, b: rlo})
			rT := kc.iconstReg(spanMinTrip * l.Step)
			lByte, lEnd := kc.newLabel(), kc.newLabel()
			snap := kc.snapshot()
			kc.emit(kinstr{op: opJCmpI, dst: cmpSense(ir.Lt, true), a: rd, b: rT, imm: int64(lByte)})
			kc.emit(kinstr{op: opCall, b: call})
			kc.emit(kinstr{op: opJump, imm: int64(lEnd)})
			kc.mark(lByte)
			kc.restore(snap)
			kc.kernelLoop(l, depth, head, true, rh, rlo)
			kc.flush()
			kc.mark(lEnd)
			kc.restore(snap)
		} else {
			kc.emit(kinstr{op: opCall, b: call})
		}
		for s := range ir.WrittenSlots(l.Body, map[int]bool{l.Slot: true}) {
			kc.invalidateSlot(s)
		}
		for s := range writtenFSlots(l.Body, nil) {
			delete(kc.fbind, s)
		}
		kc.reports = append(kc.reports, LoopReport{
			Var: l.Var, Depth: depth, Driver: "page-run", Sites: oc.nSites - before})
		return
	}
	ri := len(kc.reports)
	kc.reports = append(kc.reports, LoopReport{
		Var: l.Var, Depth: depth, Driver: "kernel",
		Reason: classifyLoop(l, oc.pageWords)})

	kc.charge(head)
	rh := kc.iexpr(l.Hi) // runtime order: hi before lo, like the oracle
	rlo := kc.iexpr(l.Lo)
	kc.kernelLoop(l, depth, head, false, rh, rlo)
	kc.reports[ri].Hints = kc.lastHints
}

// kernelLoop emits the plain bytecode lowering of l with its bounds
// already in registers rh/rlo. On the standalone kernel path the caller
// has charged head; the guarded dual path passes chargeHead because the
// driver branch charges its own head, so the bytecode branch must carry
// the charge itself — moving it below the pure bound evaluation is
// exact, since nothing in between can fault. The direct body's hint
// count is left in kc.lastHints.
func (kc *kcompiler) kernelLoop(l *ir.Loop, depth int, head int64, chargeHead bool, rh, rlo uint16) {
	if chargeHead {
		kc.charge(head)
	}
	rv := kc.iReg()
	kc.emit(kinstr{op: opIMove, dst: rv, a: rlo})
	kc.flush()

	ctx := &kloop{
		slot:     l.Slot,
		written:  ir.WrittenSlots(l.Body, nil),
		fwritten: writtenFSlots(l.Body, nil),
		hoistCse: map[uint64]cseEnt{},
	}
	snap := kc.snapshot()
	for s := range ctx.written {
		kc.invalidateSlot(s)
	}
	kc.invalidateSlot(l.Slot)
	for s := range ctx.fwritten {
		delete(kc.fbind, s)
	}
	kc.bind[l.Slot] = rv
	kc.loops = append(kc.loops, ctx)

	var bodyBuf []kinstr
	saved := kc.buf
	kc.buf = &bodyBuf
	kc.pending = costLoop
	kc.stmts(l.Body)
	kc.flush()
	kc.buf = saved
	kc.loops = kc.loops[:depth]
	kc.lastHints = ctx.hints

	// Layout: the preheader stores the first induction value; the back
	// edge (opLoopEndS) stores every subsequent one, so the loop top
	// costs zero extra dispatches per iteration. A pure-scalar body gets
	// the promoted layout of kscalar.go: hoisted reads after the guard,
	// deferred stores and the batched charge on the fall-through exit,
	// both skipped by the zero-trip jump exactly as the oracle's untaken
	// loop touches nothing.
	promo := promoteScalarLoop(bodyBuf, rv)
	lTop, lEnd := kc.newLabel(), kc.newLabel()
	*kc.buf = append(*kc.buf, ctx.hoist...)
	kc.emit(kinstr{op: opJumpGeI, a: rv, b: rh, imm: int64(lEnd)})
	if promo != nil {
		bodyBuf = promo.body
		*kc.buf = append(*kc.buf, promo.pre...)
	}
	kc.emit(kinstr{op: opSetSlot, a: rv, imm: int64(l.Slot)})
	kc.mark(lTop)
	*kc.buf = append(*kc.buf, bodyBuf...)
	kc.emit(kinstr{op: opLoopEndS, dst: rv, a: uint16(l.Slot), b: rh, imm: l.Step, imm2: int64(lTop)})
	if promo != nil {
		*kc.buf = append(*kc.buf, promo.post...)
		if promo.perIter != 0 {
			kc.emit(kinstr{op: opChargeTrips, a: rv, b: rlo, imm: promo.perIter, imm2: l.Step})
		}
	}
	kc.mark(lEnd)

	kc.restore(snap)
	for s := range ctx.written {
		kc.invalidateSlot(s)
	}
	kc.invalidateSlot(l.Slot)
	for s := range ctx.fwritten {
		delete(kc.fbind, s)
	}
}
