// Per-loop compilation reports: which driver each loop of the nest got
// (page-run span driver, linearized kernel bytecode, or the closure
// oracle) and, when the page-run fast path was not used, why. The
// harness surfaces these through core.Result and `oocbench
// -explain-fastpath` so a missing specialization is diagnosable instead
// of a silent slowdown.
package exec

import (
	"fmt"

	"repro/internal/ir"
)

// FallbackReason says why a loop was not compiled to the page-run span
// driver. ReasonSpecialized marks the loops that were.
type FallbackReason uint8

const (
	// ReasonSpecialized: the loop runs as a page-run span driver.
	ReasonSpecialized FallbackReason = iota
	// ReasonOuterLoop: the loop contains nested loops; only its innermost
	// descendants are span candidates. It runs as kernel bytecode.
	ReasonOuterLoop
	// ReasonHintInBody: the body issues prefetch/release hints, a
	// potential kernel crossing per iteration.
	ReasonHintInBody
	// ReasonControlFlow: the body branches.
	ReasonControlFlow
	// ReasonInductionWrite: the body assigns the loop's own induction
	// variable.
	ReasonInductionWrite
	// ReasonIndirectIndex: a subscript goes through memory (a[col[k]]) or
	// a float conversion, so its page behavior is data-dependent.
	ReasonIndirectIndex
	// ReasonNonAffineIndex: a subscript is not coeff·var + invariant.
	ReasonNonAffineIndex
	// ReasonPageStride: the per-iteration address delta of some access
	// reaches a full page, so a span never covers two iterations.
	ReasonPageStride
	// ReasonScalarOnly: the body touches no arrays; there is nothing for
	// a span driver to batch.
	ReasonScalarOnly
	// ReasonUnsupportedBody: some statement or expression shape outside
	// the span driver's straight-line subset.
	ReasonUnsupportedBody
)

var reasonNames = [...]string{
	ReasonSpecialized:     "specialized",
	ReasonOuterLoop:       "outer-loop",
	ReasonHintInBody:      "hint-in-body",
	ReasonControlFlow:     "control-flow",
	ReasonInductionWrite:  "induction-write",
	ReasonIndirectIndex:   "indirect-index",
	ReasonNonAffineIndex:  "non-affine-index",
	ReasonPageStride:      "page-stride",
	ReasonScalarOnly:      "scalar-only",
	ReasonUnsupportedBody: "unsupported-body",
}

func (r FallbackReason) String() string {
	if int(r) < len(reasonNames) {
		return reasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// LoopReport describes how one loop of the program was compiled.
type LoopReport struct {
	Var    string         // induction variable name
	Depth  int            // 0 = top level
	Driver string         // "page-run", "kernel", or "closure"
	Reason FallbackReason // why not page-run, when Driver != "page-run"
	Sites  int            // span-specialized access sites (page-run only)

	// Hints counts the prefetch/release statements in the loop's direct
	// body (nested loops report their own) lowered to kernel bytecode.
	// The nest compiler lowers every hint it reaches — side-safe shapes
	// to single-evaluation templates, the rest to the exact
	// double-evaluation sequence — so on the kernel path this equals the
	// hint statement count and no hint runs as a closure call.
	Hints int
}

func (r LoopReport) String() string {
	pad := ""
	for i := 0; i < r.Depth; i++ {
		pad += "  "
	}
	if r.Driver == "page-run" {
		return fmt.Sprintf("%sloop %-8s page-run (%d sites)", pad, r.Var, r.Sites)
	}
	s := fmt.Sprintf("%sloop %-8s %-8s %s", pad, r.Var, r.Driver, r.Reason)
	if r.Hints > 0 {
		s += fmt.Sprintf(" (%d hints lowered)", r.Hints)
	}
	return s
}

// Reports returns the per-loop compilation reports in program order.
// A NoFastPath machine reports nothing: every loop is the oracle.
func (m *Machine) Reports() []LoopReport {
	return m.reports
}

// classifyLoop explains why the page-run driver refused l, mirroring
// fastpath.go's eligibility checks as diagnoses. It is best-effort: a
// reason is a human answer, not a second eligibility oracle.
func classifyLoop(l *ir.Loop, pageWords int64) FallbackReason {
	s := ir.Summarize(l)
	switch {
	case !s.Innermost:
		return ReasonOuterLoop
	case s.HasHint:
		return ReasonHintInBody
	case s.HasIf:
		return ReasonControlFlow
	case s.WritesInductionVar:
		return ReasonInductionWrite
	}
	invariant := func(slot int) bool { return slot != l.Slot && !s.Written[slot] }
	var refs []arrayRef
	for _, st := range l.Body {
		switch x := st.(type) {
		case ir.AssignF:
			refs = collectRefsF(x.RHS, refs)
			refs = append(refs, arrayRef{x.Arr, x.Idx})
		case ir.AssignI:
			refs = collectRefsI(x.RHS, refs)
			refs = append(refs, arrayRef{x.Arr, x.Idx})
		case ir.SetScalarF:
			refs = collectRefsF(x.RHS, refs)
		case ir.SetScalarI:
			refs = collectRefsI(x.RHS, refs)
		default:
			return ReasonUnsupportedBody
		}
	}
	if len(refs) == 0 {
		return ReasonScalarOnly
	}
	for _, r := range refs {
		var delta int64
		for d, ix := range r.idx {
			if hasIndirect(ix) {
				return ReasonIndirectIndex
			}
			coeff, ok := ir.AffineCoeff(ix, l.Slot, invariant)
			if !ok {
				return ReasonNonAffineIndex
			}
			if d < len(r.arr.Strides) {
				delta += coeff * r.arr.Strides[d]
			}
		}
		delta *= l.Step
		if delta >= pageWords || -delta >= pageWords {
			return ReasonPageStride
		}
	}
	return ReasonUnsupportedBody
}

type arrayRef struct {
	arr *ir.Array
	idx []ir.IExpr
}

func collectRefsI(x ir.IExpr, refs []arrayRef) []arrayRef {
	switch e := x.(type) {
	case ir.IBin:
		refs = collectRefsI(e.A, refs)
		refs = collectRefsI(e.B, refs)
	case ir.ILoad:
		for _, ix := range e.Idx {
			refs = collectRefsI(ix, refs)
		}
		refs = append(refs, arrayRef{e.Arr, e.Idx})
	case ir.IFromF:
		refs = collectRefsF(e.X, refs)
	}
	return refs
}

func collectRefsF(x ir.FExpr, refs []arrayRef) []arrayRef {
	switch e := x.(type) {
	case ir.FLoad:
		for _, ix := range e.Idx {
			refs = collectRefsI(ix, refs)
		}
		refs = append(refs, arrayRef{e.Arr, e.Idx})
	case ir.FBin:
		refs = collectRefsF(e.A, refs)
		refs = collectRefsF(e.B, refs)
	case ir.FNeg:
		refs = collectRefsF(e.X, refs)
	case ir.FromInt:
		refs = collectRefsI(e.X, refs)
	case ir.FCall:
		for _, a := range e.Args {
			refs = collectRefsF(a, refs)
		}
	}
	return refs
}

// hasIndirect reports whether a subscript expression goes through
// memory or a float conversion anywhere.
func hasIndirect(x ir.IExpr) bool {
	switch e := x.(type) {
	case ir.IBin:
		return hasIndirect(e.A) || hasIndirect(e.B)
	case ir.ILoad, ir.IFromF:
		return true
	}
	return false
}
