// Scalar-loop promotion: a kernel loop whose compiled body is pure ALU
// over registers and scalar slots — no memory accesses, no calls, no
// hints, no control flow — contains no kernel crossings, so nothing
// inside one iteration (or the whole loop) is observable from the
// simulation. That licenses two exact rewrites that cut the interpreter
// dispatch count of the hottest scalar loops (the FFT bit-reversal
// inner loop runs about a million such iterations per transform):
//
//   - Charge deferral: the per-iteration opCharge is dropped and the
//     loop charges perIter·trips once on the exit path instead. The
//     accumulated AddUserOps sum the next crossing observes is the same
//     either way, because no crossing happens between loop entry and
//     the first instruction after the loop.
//
//   - Scalar register promotion: integer slot stores are deferred to
//     the exit path and loop-carried slot reads become registers, with
//     an opIMove on the back edge playing the φ. Intermediate Ints[]
//     states are unobservable for the same reason; the exit stores
//     reproduce the oracle's final state, and the zero-trip path skips
//     them exactly as the oracle's untaken loop writes nothing.
//
// The analysis leans on two properties of the body compiler: every ALU
// destination is a fresh register (so a register is written at most
// once per iteration, except the induction register and the φ moves
// added here), and slot reads bind, so a body holds at most one opISlot
// per slot and always before any opSetSlot to it.
package exec

// scalarPromo is the rewritten layout of one promoted loop body.
type scalarPromo struct {
	pre     []kinstr // hoisted slot reads, emitted once after the trip guard
	body    []kinstr // transformed body: charges and deferred stores removed
	post    []kinstr // deferred final stores, on the ≥1-trip exit path
	perIter int64    // per-iteration charge, applied once as perIter·trips
}

// promoteScalarLoop analyzes the compiled body of one kernel loop and
// returns its promoted form, or nil when the body is not pure scalar
// straight-line code or the rewrite would remove no dispatch. rv is the
// loop's induction register: its value at loop exit differs from its
// value inside the final iteration, so a slot whose final store would
// source it — or a register the back-edge φ moves overwrite — keeps its
// in-body stores instead of deferring them.
func promoteScalarLoop(body []kinstr, rv uint16) *scalarPromo {
	var perIter int64
	var sets, reads []int // instruction indices of opSetSlot / opISlot
	nCharge := 0
	for i := range body {
		switch body[i].op {
		case opCharge:
			perIter += body[i].imm
			nCharge++
		case opSetSlot:
			sets = append(sets, i)
		case opISlot:
			reads = append(reads, i)
		case opIMove, opIAdd, opISub, opIMul, opIDiv, opIMod, opIShl, opIShr,
			opIMin, opIMax, opIAddImm, opIMulImm, opIFromF, opIdx3,
			opFSlot, opSetF, opFAcc, opFAccM, opFAdd, opFSub, opFMul, opFDiv,
			opFMin, opFMax, opFNeg, opFromI, opSqrt, opAbs, opLog, opExp,
			opSin, opCos, opPow, opRandlc:
			// Register-pure, or side effects (float slots, the RNG) that
			// cannot fault: charges and integer slot state move across
			// these freely. Float slot stores stay in place — only the
			// integer side is promoted.
		default:
			return nil
		}
	}
	if len(sets) == 0 && nCharge == 0 {
		return nil
	}

	// Last store per slot, remembering first-set order for determinism.
	lastSet := map[int64]int{}
	var slotOrder []int64
	for _, i := range sets {
		s := body[i].imm
		if _, ok := lastSet[s]; !ok {
			slotOrder = append(slotOrder, s)
		}
		lastSet[s] = i
	}

	// A deferred store sources its register at loop exit, after the final
	// back edge. The φ moves overwrite the registers holding loop-carried
	// reads, and opLoopEnd advances rv past the last body value, so a
	// store sourcing either keeps running in the body. (moved is computed
	// as if every carried slot were promoted; a slot this conservatism
	// keeps in the body only costs its dispatch, never correctness.)
	moved := map[uint16]bool{}
	for _, i := range reads {
		if _, carried := lastSet[body[i].imm]; carried {
			moved[body[i].dst] = true
		}
	}
	deferred := map[int64]bool{}
	for s, i := range lastSet {
		if r := body[i].a; r != rv && !moved[r] {
			deferred[s] = true
		}
	}

	removed := nCharge
	pre := make([]kinstr, 0, len(reads))
	var phis, post []kinstr
	hoistRead := map[int]bool{}
	for _, i := range reads {
		s := body[i].imm
		if li, carried := lastSet[s]; carried {
			if !deferred[s] {
				continue // read stays in the body with its store
			}
			if src := body[li].a; src != body[i].dst {
				phis = append(phis, kinstr{op: opIMove, dst: body[i].dst, a: src})
			}
		}
		// Carried-and-deferred reads become φ registers; reads of slots
		// the loop never writes are invariant and hoist as-is.
		pre = append(pre, body[i])
		hoistRead[i] = true
		removed++
	}
	removed -= len(phis)
	for _, s := range slotOrder {
		if deferred[s] {
			post = append(post, kinstr{op: opSetSlot, a: body[lastSet[s]].a, imm: s})
		}
	}
	nb := make([]kinstr, 0, len(body))
	for i := range body {
		in := body[i]
		switch in.op {
		case opCharge:
			continue
		case opSetSlot:
			if deferred[in.imm] {
				removed++
				continue
			}
		case opISlot:
			if hoistRead[i] {
				continue
			}
		}
		nb = append(nb, in)
	}
	if removed <= 0 {
		return nil
	}
	nb = append(nb, phis...)
	return &scalarPromo{pre: pre, body: nb, post: post, perIter: perIter}
}
