// The kernel machine: a flat bytecode interpreter for whole loop nests.
//
// The nest compiler (kcompile.go) lowers the entire program body — outer
// loops included — into one linear instruction slice. The steady-state
// cost of an iteration is then a handful of switch dispatches over
// 32-byte instructions instead of a closure call per IR node, and array
// accesses go through the VM's inlinable hot probes (LoadFast/StoreFast)
// with the ordinary faulting path only on the miss branch.
//
// Tick-exactness is the design constraint, not a best effort: simulated
// time advances only at kernel crossings (faults and hint system calls),
// and user-op charges are a plain pending sum folded in at the next
// crossing. The compiler may therefore merge static charges and move
// them across instructions that cannot fault, but never across one that
// can — the pending sum every crossing observes must equal the closure
// interpreter's. The closure tree (exec.go) is kept byte-for-byte as the
// differential oracle behind Options.NoFastPath, and the harness
// equivalence suite holds the two executions to identical fingerprints,
// tick counts, and fault statistics.
package exec

import (
	"fmt"
	"math"

	"repro/internal/ir"
)

// irCmpOp extracts the comparison operator packed by cmpSense.
func irCmpOp(d uint16) ir.CmpOp { return ir.CmpOp(d & 0xff) }

// kop is a kernel opcode.
type kop uint8

const (
	opNop kop = iota

	// accounting / control
	opCharge   // vm.AddUserOps(imm)
	opJump     // pc = imm
	opJumpGeI  // if ri[a] >= ri[b]: pc = imm   (loop entry guard)
	opLoopEnd  // ri[dst] += imm; if ri[dst] < ri[b]: pc = imm2
	opLoopEndS // opLoopEnd that also stores Ints[a] = ri[dst] on the back edge
	opJCmpI    // if cmpI(op(dst), ri[a], ri[b]) == sense(dst): pc = imm
	opJCmpF    // same over rf
	opCall     // m.calls[b](e)   (closure fallback / page-run driver)
	opSetSlot  // Ints[imm] = ri[a]
	opSetSlotC // Ints[imm] = ri[a]; vm.AddUserOps(imm2)
	// opChargeTrips charges a promoted scalar loop's deferred
	// per-iteration costs in one dispatch on the exit path:
	// vm.AddUserOps(imm * (ri[a]-ri[b])/imm2) with a = the induction
	// register after the loop, b = the initial bound, imm2 = the step,
	// so the multiplier is exactly the executed trip count.
	opChargeTrips

	// integer ALU
	opIMove // ri[dst] = ri[a]
	opIConst
	opISlot // ri[dst] = Ints[imm]
	opIAdd
	opISub
	opIMul
	opIDiv
	opIMod
	opIShl
	opIShr
	opIMin
	opIMax
	opIAddImm // ri[dst] = ri[a] + imm
	opIMulImm // ri[dst] = ri[a] * imm
	opIFromF  // ri[dst] = int64(rf[a])
	opIdx3    // ri[dst] = ri[imm2] + min(ri[a]+imm, ri[b])  (fused hint subscript)

	// float ALU
	opFConst // rf[dst] = frombits(imm)
	opFSlot  // rf[dst] = Floats[imm]
	opSetF   // Floats[imm] = rf[a]
	opFAcc   // Floats[imm] += rf[a]
	opFAccM  // Floats[imm] += rf[a] * rf[b]
	opFAdd
	opFSub
	opFMul
	opFDiv
	opFMin
	opFMax
	opFNeg
	opFromI // rf[dst] = float64(ri[a])
	opSqrt
	opAbs
	opLog
	opExp
	opSin
	opCos
	opPow
	opRandlc
	// peephole-fused float pairs (kasm.go): the FromInt feeding a
	// product or quotient, and the multiply feeding an add/subtract,
	// collapse into one dispatch when the temporary is dead.
	opFMulI // rf[dst] = rf[a] * float64(ri[b])
	opFDivI // rf[dst] = rf[a] / float64(ri[b])
	opFMAdd // rf[dst] = rf[a] + rf[b]*rf[imm]
	opFMSub // rf[dst] = rf[a] - rf[b]*rf[imm]
	// store-fused variants: identical result, plus Floats[imm2] = rf[dst]
	// (the scalar-set that followed; the register stays live).
	opFAddS
	opFSubS
	opFMAddS
	opFMSubS
	opCosS
	opSinS

	// memory: 1-D fused address+check+access (imm = array base,
	// imm2 = dim extent, a = index reg, b = auxDim for the panic path)
	opLoadF1
	opLoadI1
	opStoreF1 // value in rf[dst]
	opStoreI1 // value in ri[dst]
	// memory: N-D — per-dim checked accumulation into a linear index
	// reg, then access at base+li*8
	opIdx0   // ri[dst] = check(ri[a]) * imm      (first dim; imm = stride)
	opIdxAcc // ri[dst] += check(ri[a]) * imm
	opLoadFA // rf[dst] = load(imm + ri[a]<<3)
	opLoadIA
	opStoreFA // store(imm + ri[a]<<3, rf[dst])
	opStoreIA

	// hints
	opHintPage // ri[dst] = (imm + clamp(ri[a], [0,imm2))<<3) >> pageShift
	opHintN    // n=ri[a], p=ri[b]; if p+n-1 > imm: n = imm-p+1; ri[dst]=n
	opHint     // pp=ri[a] pn=ri[b] rp=ri[dst] rn=ri[imm]: oracle dispatch
	opHint1    // rt.Prefetch1(ri[a])

	// fused template kernels (haux[b] describes the arrays)
	opHintLoad1 // charge imm; li = addrArr[ri[a]] (checked); clamped single/short prefetch
	opFAccDot   // charge imm; Floats[dst] += A[ri[a]] * X[C[ri[a]]] (all checked)
	opFAccDot2  // opFAccDot with a two-register subscript ri[a] + ri[imm2]
	opHintIdx3  // opHintLoad1 with subscript ri[dst] + min(ri[a]+h.dist, ri[imm2])
	opDotLoop   // whole [opHintIdx3][opFAccDot2][opLoopEndS] loop as one dispatch

	// opLabel is a compile-time jump-target marker (imm = label id). It
	// survives buffer splicing — positions are only fixed when assemble
	// strips the markers and patches the jumps — and never reaches runK.
	opLabel
)

// kinstr is one kernel instruction. Jump targets hold label ids until
// kcompiler.assemble patches them to absolute pcs.
type kinstr struct {
	op        kop
	dst, a, b uint16
	imm, imm2 int64
}

// auxDim carries the cold-path context for one (array, dimension) bounds
// check: everything needed to reproduce the oracle's panic text.
type auxDim struct {
	name string
	dim  int64
	d    int
}

// hintAux describes the arrays of a fused template kernel. For
// opHintLoad1, c* is the 1-D address array and x* the prefetched array;
// for opFAccDot, a* is the dense operand, c* the index array, x* the
// indirectly loaded operand.
type hintAux struct {
	aBase, aDim int64
	aRef        int
	cBase, cDim int64
	cRef        int
	xBase, xDim int64
	xRef        int
	lastPage    int64 // last page of x, for the n>1 prefetch clamp
	pages       int64 // compile-time page count of the prefetch
	dist        int64 // opHintIdx3's fused subscript displacement
}

func (m *Machine) panicIdx(ref int, v int64) {
	a := &m.aux[ref]
	panic(fmt.Sprintf("exec: %s subscript %d out of range [0,%d) in dim %d", a.name, v, a.dim, a.d))
}

// cmpSense packs a CmpOp and a jump sense into a kinstr dst field.
func cmpSense(op ir.CmpOp, jumpIfTrue bool) uint16 {
	s := uint16(op)
	if jumpIfTrue {
		s |= 1 << 8
	}
	return s
}

// runK executes the machine's kernel code against e. The interpreter is
// one flat loop; every case stays small enough that the hot ops compile
// to a load, a switch, and a few machine instructions.
func (m *Machine) runK(e *Env) {
	code := m.code
	v := e.vm
	ints := e.Ints
	floats := e.Floats
	ri := e.ri
	rf := e.rf
	shift := m.pageShift
	for pc := 0; pc < len(code); {
		in := &code[pc]
		pc++
		switch in.op {
		case opCharge:
			v.AddUserOps(in.imm)
		case opJump:
			pc = int(in.imm)
		case opJumpGeI:
			if ri[in.a] >= ri[in.b] {
				pc = int(in.imm)
			}
		case opLoopEnd:
			x := ri[in.dst] + in.imm
			ri[in.dst] = x
			if x < ri[in.b] {
				pc = int(in.imm2)
			}
		case opLoopEndS:
			// The induction-slot store rides the back edge (the preheader
			// stored the first value): between the back edge and the next
			// body instruction nothing executes, so the slot is updated at
			// an indistinguishable point.
			x := ri[in.dst] + in.imm
			ri[in.dst] = x
			if x < ri[in.b] {
				ints[in.a] = x
				pc = int(in.imm2)
			}
		case opJCmpI:
			if cmpI(irCmpOp(in.dst), ri[in.a], ri[in.b]) == (in.dst&(1<<8) != 0) {
				pc = int(in.imm)
			}
		case opJCmpF:
			if cmpF(irCmpOp(in.dst), rf[in.a], rf[in.b]) == (in.dst&(1<<8) != 0) {
				pc = int(in.imm)
			}
		case opCall:
			m.calls[in.b](e)
		case opSetSlot:
			ints[in.imm] = ri[in.a]
		case opSetSlotC:
			ints[in.imm] = ri[in.a]
			v.AddUserOps(in.imm2)
		case opChargeTrips:
			v.AddUserOps(in.imm * ((ri[in.a] - ri[in.b]) / in.imm2))

		case opIMove:
			ri[in.dst] = ri[in.a]
		case opIConst:
			ri[in.dst] = in.imm
		case opISlot:
			ri[in.dst] = ints[in.imm]
		case opIAdd:
			ri[in.dst] = ri[in.a] + ri[in.b]
		case opISub:
			ri[in.dst] = ri[in.a] - ri[in.b]
		case opIMul:
			ri[in.dst] = ri[in.a] * ri[in.b]
		case opIDiv:
			ri[in.dst] = ri[in.a] / ri[in.b]
		case opIMod:
			ri[in.dst] = ri[in.a] % ri[in.b]
		case opIShl:
			ri[in.dst] = ri[in.a] << uint(ri[in.b])
		case opIShr:
			ri[in.dst] = ri[in.a] >> uint(ri[in.b])
		case opIMin:
			x, y := ri[in.a], ri[in.b]
			if y < x {
				x = y
			}
			ri[in.dst] = x
		case opIMax:
			x, y := ri[in.a], ri[in.b]
			if y > x {
				x = y
			}
			ri[in.dst] = x
		case opIAddImm:
			ri[in.dst] = ri[in.a] + in.imm
		case opIMulImm:
			ri[in.dst] = ri[in.a] * in.imm
		case opIFromF:
			ri[in.dst] = int64(rf[in.a])
		case opIdx3:
			x := ri[in.a] + in.imm
			if y := ri[in.b]; y < x {
				x = y
			}
			ri[in.dst] = ri[in.imm2] + x

		case opFConst:
			rf[in.dst] = math.Float64frombits(uint64(in.imm))
		case opFSlot:
			rf[in.dst] = floats[in.imm]
		case opSetF:
			floats[in.imm] = rf[in.a]
		case opFAcc:
			floats[in.imm] += rf[in.a]
		case opFAccM:
			floats[in.imm] += rf[in.a] * rf[in.b]
		case opFAdd:
			rf[in.dst] = rf[in.a] + rf[in.b]
		case opFSub:
			rf[in.dst] = rf[in.a] - rf[in.b]
		case opFMul:
			rf[in.dst] = rf[in.a] * rf[in.b]
		case opFDiv:
			rf[in.dst] = rf[in.a] / rf[in.b]
		case opFMin:
			// Mirror the oracle's `x < y ? x : y` exactly, NaN included:
			// when the comparison is false the RIGHT operand is the result.
			x, y := rf[in.a], rf[in.b]
			if !(x < y) {
				x = y
			}
			rf[in.dst] = x
		case opFMax:
			x, y := rf[in.a], rf[in.b]
			if !(x > y) {
				x = y
			}
			rf[in.dst] = x
		case opFNeg:
			rf[in.dst] = -rf[in.a]
		case opFromI:
			rf[in.dst] = float64(ri[in.a])
		case opSqrt:
			rf[in.dst] = math.Sqrt(rf[in.a])
		case opAbs:
			rf[in.dst] = math.Abs(rf[in.a])
		case opLog:
			rf[in.dst] = math.Log(rf[in.a])
		case opExp:
			rf[in.dst] = math.Exp(rf[in.a])
		case opSin:
			rf[in.dst] = math.Sin(rf[in.a])
		case opCos:
			rf[in.dst] = math.Cos(rf[in.a])
		case opPow:
			rf[in.dst] = math.Pow(rf[in.a], rf[in.b])
		case opRandlc:
			rf[in.dst] = e.randlc()
		case opFMulI:
			rf[in.dst] = rf[in.a] * float64(ri[in.b])
		case opFDivI:
			rf[in.dst] = rf[in.a] / float64(ri[in.b])
		case opFMAdd:
			rf[in.dst] = rf[in.a] + rf[in.b]*rf[in.imm]
		case opFMSub:
			rf[in.dst] = rf[in.a] - rf[in.b]*rf[in.imm]
		case opFAddS:
			x := rf[in.a] + rf[in.b]
			rf[in.dst] = x
			floats[in.imm2] = x
		case opFSubS:
			x := rf[in.a] - rf[in.b]
			rf[in.dst] = x
			floats[in.imm2] = x
		case opFMAddS:
			x := rf[in.a] + rf[in.b]*rf[in.imm]
			rf[in.dst] = x
			floats[in.imm2] = x
		case opFMSubS:
			x := rf[in.a] - rf[in.b]*rf[in.imm]
			rf[in.dst] = x
			floats[in.imm2] = x
		case opCosS:
			x := math.Cos(rf[in.a])
			rf[in.dst] = x
			floats[in.imm2] = x
		case opSinS:
			x := math.Sin(rf[in.a])
			rf[in.dst] = x
			floats[in.imm2] = x

		case opLoadF1:
			ix := ri[in.a]
			if ix < 0 || ix >= in.imm2 {
				m.panicIdx(int(in.b), ix)
			}
			addr := in.imm + ix<<3
			w, ok := v.LoadFast(addr)
			if !ok {
				w = v.Load(addr)
			}
			rf[in.dst] = math.Float64frombits(w)
		case opLoadI1:
			ix := ri[in.a]
			if ix < 0 || ix >= in.imm2 {
				m.panicIdx(int(in.b), ix)
			}
			addr := in.imm + ix<<3
			w, ok := v.LoadFast(addr)
			if !ok {
				w = v.Load(addr)
			}
			ri[in.dst] = int64(w)
		case opStoreF1:
			ix := ri[in.a]
			if ix < 0 || ix >= in.imm2 {
				m.panicIdx(int(in.b), ix)
			}
			addr := in.imm + ix<<3
			if !v.StoreFast(addr, math.Float64bits(rf[in.dst])) {
				v.Store(addr, math.Float64bits(rf[in.dst]))
			}
		case opStoreI1:
			ix := ri[in.a]
			if ix < 0 || ix >= in.imm2 {
				m.panicIdx(int(in.b), ix)
			}
			addr := in.imm + ix<<3
			if !v.StoreFast(addr, uint64(ri[in.dst])) {
				v.Store(addr, uint64(ri[in.dst]))
			}

		case opIdx0:
			x := ri[in.a]
			if x < 0 || x >= in.imm2 {
				m.panicIdx(int(in.b), x)
			}
			ri[in.dst] = x * in.imm
		case opIdxAcc:
			x := ri[in.a]
			if x < 0 || x >= in.imm2 {
				m.panicIdx(int(in.b), x)
			}
			ri[in.dst] += x * in.imm
		case opLoadFA:
			addr := in.imm + ri[in.a]<<3
			w, ok := v.LoadFast(addr)
			if !ok {
				w = v.Load(addr)
			}
			rf[in.dst] = math.Float64frombits(w)
		case opLoadIA:
			addr := in.imm + ri[in.a]<<3
			w, ok := v.LoadFast(addr)
			if !ok {
				w = v.Load(addr)
			}
			ri[in.dst] = int64(w)
		case opStoreFA:
			addr := in.imm + ri[in.a]<<3
			if !v.StoreFast(addr, math.Float64bits(rf[in.dst])) {
				v.Store(addr, math.Float64bits(rf[in.dst]))
			}
		case opStoreIA:
			addr := in.imm + ri[in.a]<<3
			if !v.StoreFast(addr, uint64(ri[in.dst])) {
				v.Store(addr, uint64(ri[in.dst]))
			}

		case opHintPage:
			li := ri[in.a]
			if li < 0 {
				li = 0
			}
			if li >= in.imm2 {
				li = in.imm2 - 1
			}
			ri[in.dst] = (in.imm + li<<3) >> shift
		case opHintN:
			n := ri[in.a]
			if p := ri[in.b]; p+n-1 > in.imm {
				n = in.imm - p + 1
			}
			ri[in.dst] = n
		case opHint:
			pp, pn := ri[in.a], ri[in.b]
			rp, rn := ri[in.dst], ri[in.imm]
			switch {
			case pn > 0 && rn > 0:
				e.rt.PrefetchRelease(pp, pn, rp, rn)
			case pn > 0:
				e.rt.Prefetch(pp, pn)
			case rn > 0:
				e.rt.Release(rp, rn)
			}
		case opHint1:
			e.rt.Prefetch1(ri[in.a])

		case opDotLoop:
			// The fused sparse-dot loop: fuseDotLoop proved the loop body
			// is exactly this instruction (an opHintIdx3) followed by an
			// opFAccDot2 and the opLoopEndS back edge, with no other jump
			// into the body and every operand register except the
			// induction register loop-invariant. The per-iteration
			// sequence below replays the three cases verbatim, in order,
			// with the invariant decodes hoisted out of the loop.
			in2 := &code[pc]
			in3 := &code[pc+1]
			pc += 2
			h := &m.haux[in.b]
			h2 := &m.haux[in2.b]
			rt := e.rt
			kr := in3.dst
			base := ri[in.dst]
			capv := ri[uint16(in.imm2)]
			rowOff := ri[in2.a]
			if in2.a == kr {
				rowOff = ri[uint16(in2.imm2)]
			}
			fs := in2.dst
			acc := floats[fs]
			k := ri[kr]
			hiK := ri[in3.b]
			step := in3.imm
			slot := in3.a
			hc, dc := in.imm, in2.imm
			for {
				// ---- opHintIdx3 ----
				v.AddUserOps(hc)
				x := k + h.dist
				if capv < x {
					x = capv
				}
				ix := base + x
				if ix < 0 || ix >= h.cDim {
					m.panicIdx(h.cRef, ix)
				}
				addr := h.cBase + ix<<3
				w, ok := v.LoadFast(addr)
				if !ok {
					w = v.Load(addr)
				}
				li := int64(w)
				if li < 0 {
					li = 0
				}
				if li >= h.xDim {
					li = h.xDim - 1
				}
				page := (h.xBase + li<<3) >> shift
				n := h.pages
				if page+n-1 > h.lastPage {
					n = h.lastPage - page + 1
				}
				if n == 1 {
					rt.Prefetch1(page)
				} else {
					rt.Prefetch(page, n)
				}
				// ---- opFAccDot2 ----
				v.AddUserOps(dc)
				ix = rowOff + k
				if ix < 0 || ix >= h2.aDim {
					m.panicIdx(h2.aRef, ix)
				}
				addr = h2.aBase + ix<<3
				wa, oka := v.LoadFast(addr)
				if !oka {
					wa = v.Load(addr)
				}
				if ix >= h2.cDim {
					m.panicIdx(h2.cRef, ix)
				}
				addr = h2.cBase + ix<<3
				wc, okc := v.LoadFast(addr)
				if !okc {
					wc = v.Load(addr)
				}
				li = int64(wc)
				if li < 0 || li >= h2.xDim {
					m.panicIdx(h2.xRef, li)
				}
				addr = h2.xBase + li<<3
				wx, okx := v.LoadFast(addr)
				if !okx {
					wx = v.Load(addr)
				}
				acc += math.Float64frombits(wa) * math.Float64frombits(wx)
				floats[fs] = acc
				// ---- opLoopEndS ----
				k += step
				if k >= hiK {
					break
				}
				ints[slot] = k
			}
			ri[kr] = k
		case opHintLoad1, opHintIdx3:
			h := &m.haux[in.b]
			v.AddUserOps(in.imm)
			ix := ri[in.a]
			if in.op == opHintIdx3 {
				x := ix + h.dist
				if y := ri[uint16(in.imm2)]; y < x {
					x = y
				}
				ix = ri[in.dst] + x
			}
			if ix < 0 || ix >= h.cDim {
				m.panicIdx(h.cRef, ix)
			}
			addr := h.cBase + ix<<3
			w, ok := v.LoadFast(addr)
			if !ok {
				w = v.Load(addr)
			}
			li := int64(w)
			if li < 0 {
				li = 0
			}
			if li >= h.xDim {
				li = h.xDim - 1
			}
			page := (h.xBase + li<<3) >> shift
			n := h.pages
			if page+n-1 > h.lastPage {
				n = h.lastPage - page + 1
			}
			if n == 1 {
				e.rt.Prefetch1(page)
			} else {
				e.rt.Prefetch(page, n)
			}
		case opFAccDot, opFAccDot2:
			h := &m.haux[in.b]
			v.AddUserOps(in.imm)
			ix := ri[in.a]
			if in.op == opFAccDot2 {
				ix += ri[uint16(in.imm2)]
			}
			if ix < 0 || ix >= h.aDim {
				m.panicIdx(h.aRef, ix)
			}
			addr := h.aBase + ix<<3
			wa, ok := v.LoadFast(addr)
			if !ok {
				wa = v.Load(addr)
			}
			if ix >= h.cDim {
				m.panicIdx(h.cRef, ix)
			}
			addr = h.cBase + ix<<3
			wc, ok2 := v.LoadFast(addr)
			if !ok2 {
				wc = v.Load(addr)
			}
			li := int64(wc)
			if li < 0 || li >= h.xDim {
				m.panicIdx(h.xRef, li)
			}
			addr = h.xBase + li<<3
			wx, ok3 := v.LoadFast(addr)
			if !ok3 {
				wx = v.Load(addr)
			}
			floats[in.dst] += math.Float64frombits(wa) * math.Float64frombits(wx)
		}
	}
}
