package exec

import (
	"math"

	"repro/internal/ir"
)

// randlcA is the NAS multiplier 5^13 for the 46-bit linear congruential
// generator x_{k+1} = a·x_k mod 2^46.
const randlcA uint64 = 1220703125

const randlcMask = (uint64(1) << 46) - 1

// randlc advances the environment's generator and returns a uniform
// deviate in (0, 1), exactly as the NAS Parallel Benchmarks specify.
func (e *Env) randlc() float64 {
	// 46-bit modular multiply, split into halves to avoid overflow.
	const half = uint64(1) << 23
	x := e.rngX
	lo := (x & (half - 1)) * randlcA
	hi := (x >> 23) * randlcA
	x = (lo + (hi&(half-1))<<23) & randlcMask
	e.rngX = x
	return float64(x) * (1.0 / float64(uint64(1)<<46))
}

// SetSeed reseeds the environment's generator (tests use it).
func (e *Env) SetSeed(seed int64) { e.rngX = uint64(seed) & randlcMask }

func (c *compiler) call(e ir.FCall) (fFn, int64) {
	return c.callWith(e, c.fexpr)
}

// callWith compiles an intrinsic call with fx compiling its arguments, so
// the page-run fast path (fastpath.go) shares the lowering and cost
// accounting while substituting span-indexed loads.
func (c *compiler) callWith(e ir.FCall, fx func(ir.FExpr) (fFn, int64)) (fFn, int64) {
	cost := intrinsicCost(e.Fn)
	want := 1
	if e.Fn == ir.Pow {
		want = 2
	}
	if e.Fn == ir.Randlc {
		want = 0
	}
	if len(e.Args) != want {
		c.fail("intrinsic %s takes %d args, got %d", e.Fn.Name(), want, len(e.Args))
		return func(*Env) float64 { return 0 }, 0
	}
	var args []fFn
	for _, a := range e.Args {
		f, k := fx(a)
		args = append(args, f)
		cost += k
	}
	switch e.Fn {
	case ir.Sqrt:
		return func(e *Env) float64 { return math.Sqrt(args[0](e)) }, cost
	case ir.Abs:
		return func(e *Env) float64 { return math.Abs(args[0](e)) }, cost
	case ir.Log:
		return func(e *Env) float64 { return math.Log(args[0](e)) }, cost
	case ir.Exp:
		return func(e *Env) float64 { return math.Exp(args[0](e)) }, cost
	case ir.Sin:
		return func(e *Env) float64 { return math.Sin(args[0](e)) }, cost
	case ir.Cos:
		return func(e *Env) float64 { return math.Cos(args[0](e)) }, cost
	case ir.Pow:
		return func(e *Env) float64 { return math.Pow(args[0](e), args[1](e)) }, cost
	case ir.Randlc:
		return func(e *Env) float64 { return e.randlc() }, cost
	}
	c.fail("unknown intrinsic %d", e.Fn)
	return func(*Env) float64 { return 0 }, 0
}
