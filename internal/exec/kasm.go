// Peephole fusion and final assembly for the kernel bytecode.
package exec

// intReads calls f for each integer register the instruction reads.
// The enumeration must stay exhaustive: the peephole pass relies on it
// to prove a temporary register dead before eliminating its writer.
func intReads(in kinstr, f func(r uint16)) {
	switch in.op {
	case opJumpGeI, opJCmpI, opHintN, opChargeTrips:
		f(in.a)
		f(in.b)
	case opLoopEnd, opLoopEndS:
		f(in.dst)
		f(in.b)
	case opSetSlot, opSetSlotC, opIMove, opIAddImm, opIMulImm, opFromI,
		opLoadF1, opLoadI1, opStoreF1, opIdx0, opLoadFA, opLoadIA, opStoreFA,
		opHintPage, opHint1, opHintLoad1, opFAccDot:
		f(in.a)
	case opIAdd, opISub, opIMul, opIDiv, opIMod, opIShl, opIShr, opIMin, opIMax:
		f(in.a)
		f(in.b)
	case opIdx3:
		f(in.a)
		f(in.b)
		f(uint16(in.imm2))
	case opFAccDot2:
		f(in.a)
		f(uint16(in.imm2))
	case opHintIdx3:
		f(in.a)
		f(in.dst)
		f(uint16(in.imm2))
	case opIdxAcc:
		f(in.dst)
		f(in.a)
	case opStoreI1, opStoreIA:
		f(in.a)
		f(in.dst)
	case opFMulI, opFDivI:
		f(in.b)
	case opHint:
		f(in.a)
		f(in.b)
		f(in.dst)
		f(uint16(in.imm))
	}
}

// intWrite returns the integer register the instruction writes, if any.
func intWrite(in kinstr) (uint16, bool) {
	switch in.op {
	case opIMove, opIConst, opISlot,
		opIAdd, opISub, opIMul, opIDiv, opIMod, opIShl, opIShr, opIMin, opIMax,
		opIAddImm, opIMulImm, opIFromF, opIdx3,
		opLoadI1, opIdx0, opIdxAcc, opLoadIA, opHintPage, opHintN,
		opLoopEnd, opLoopEndS:
		return in.dst, true
	}
	return 0, false
}

// fltReads calls f for each float register the instruction reads. Like
// intReads, the enumeration must stay exhaustive: the peephole pass
// relies on it to prove a float temporary dead before eliminating its
// writer.
func fltReads(in kinstr, f func(r uint16)) {
	switch in.op {
	case opJCmpF, opFAccM, opFAdd, opFSub, opFMul, opFDiv, opFMin, opFMax,
		opPow, opFAddS, opFSubS:
		f(in.a)
		f(in.b)
	case opSetF, opFAcc, opFNeg, opSqrt, opAbs, opLog, opExp, opSin, opCos,
		opIFromF, opFMulI, opFDivI, opCosS, opSinS:
		f(in.a)
	case opStoreF1, opStoreFA:
		f(in.dst)
	case opFMAdd, opFMSub, opFMAddS, opFMSubS:
		f(in.a)
		f(in.b)
		f(uint16(in.imm))
	}
}

// fltWrite returns the float register the instruction writes, if any.
func fltWrite(in kinstr) (uint16, bool) {
	switch in.op {
	case opFConst, opFSlot, opFAdd, opFSub, opFMul, opFDiv, opFMin, opFMax,
		opFNeg, opFromI, opSqrt, opAbs, opLog, opExp, opSin, opCos, opPow,
		opRandlc, opLoadF1, opLoadFA,
		opFMulI, opFDivI, opFMAdd, opFMSub,
		opFAddS, opFSubS, opFMAddS, opFMSubS, opCosS, opSinS:
		return in.dst, true
	}
	return 0, false
}

// setFused maps a float producer to its store-fused variant, for fusing
// the opSetF that consumes its result. Only opcodes whose imm2 field is
// free can carry the slot.
func setFused(op kop) (kop, bool) {
	switch op {
	case opFAdd:
		return opFAddS, true
	case opFSub:
		return opFSubS, true
	case opFMAdd:
		return opFMAddS, true
	case opFMSub:
		return opFMSubS, true
	case opCos:
		return opCosS, true
	case opSin:
		return opSinS, true
	}
	return 0, false
}

// peephole fuses adjacent instruction patterns. It runs before assembly,
// while jump targets are still opLabel markers, so removing instructions
// cannot skew a target. Temporaries are only eliminated when a whole-code
// census proves they are written once and read once, by the fused pair.
func peephole(code []kinstr, nRI, nRF int, haux []hintAux) []kinstr {
	reads := make([]int32, nRI)
	writes := make([]int32, nRI)
	freads := make([]int32, nRF)
	fwrites := make([]int32, nRF)
	for _, in := range code {
		intReads(in, func(r uint16) { reads[r]++ })
		if w, ok := intWrite(in); ok {
			writes[w]++
		}
		fltReads(in, func(r uint16) { freads[r]++ })
		if w, ok := fltWrite(in); ok {
			fwrites[w]++
		}
	}
	dead1 := func(r uint16) bool { return reads[r] == 1 && writes[r] == 1 }
	fdead1 := func(r uint16) bool { return freads[r] == 1 && fwrites[r] == 1 }

	out := make([]kinstr, 0, len(code))
	for i := 0; i < len(code); i++ {
		// t = a + imm; m = min(t, cap); d = base + m   -->   d = idx3
		// (the clamped-subscript shape hint planting produces per
		// iteration: base + min(k + dist, last)).
		if i+2 < len(code) &&
			code[i].op == opIAddImm && code[i+1].op == opIMin && code[i+2].op == opIAdd {
			t, m := code[i].dst, code[i+1].dst
			cap, okm := otherOperand(code[i+1], t)
			base, okd := otherOperand(code[i+2], m)
			if okm && okd && t != m && cap != t && base != t && base != m &&
				dead1(t) && dead1(m) {
				out = append(out, kinstr{op: opIdx3, dst: code[i+2].dst,
					a: code[i].a, b: cap, imm: code[i].imm, imm2: int64(base)})
				i += 2
				continue
			}
		}
		// d = idx3; HintLoad1(d)   -->   HintIdx3. The clamped subscript
		// folds into the hint dispatch itself; the displacement rides in
		// the hint's (per-instruction) aux entry. Matches only on the
		// second peephole pass, once P1 above has produced the opIdx3.
		if i+1 < len(code) && code[i].op == opIdx3 && code[i+1].op == opHintLoad1 &&
			code[i+1].a == code[i].dst && dead1(code[i].dst) {
			h := code[i+1]
			haux[h.b].dist = code[i].imm
			out = append(out, kinstr{op: opHintIdx3, dst: uint16(code[i].imm2),
				a: code[i].a, b: h.b, imm: h.imm, imm2: int64(code[i].b)})
			i++
			continue
		}
		// t = p + q; FAccDot(t)   -->   FAccDot2(p, q)
		if i+1 < len(code) && code[i].op == opIAdd && code[i+1].op == opFAccDot &&
			code[i+1].a == code[i].dst && dead1(code[i].dst) {
			fused := code[i+1]
			fused.op = opFAccDot2
			fused.a = code[i].a
			fused.imm2 = int64(code[i].b)
			out = append(out, fused)
			i++
			continue
		}
		// Ints[s] = r; charge   -->   one dispatch. Moving the charge past
		// a slot store is exact: neither can fault.
		if i+1 < len(code) && code[i].op == opSetSlot && code[i+1].op == opCharge {
			out = append(out, kinstr{op: opSetSlotC, a: code[i].a,
				imm: code[i].imm, imm2: code[i+1].imm})
			i++
			continue
		}
		// t = float(ri); d = x·t or x/t   -->   one dispatch. The float
		// conversion folds into its single consumer (the FFT twiddle
		// argument c·float(j)/float(1<<s) is two of these).
		if i+1 < len(code) && code[i].op == opFromI && fdead1(code[i].dst) {
			t := code[i].dst
			n := code[i+1]
			if n.op == opFMul {
				if x, ok := otherOperand(n, t); ok && x != t {
					out = append(out, kinstr{op: opFMulI, dst: n.dst, a: x, b: code[i].a})
					i++
					continue
				}
			}
			if n.op == opFDiv && n.b == t && n.a != t {
				out = append(out, kinstr{op: opFDivI, dst: n.dst, a: n.a, b: code[i].a})
				i++
				continue
			}
		}
		// t = b·c; d = x ± t   -->   fused multiply-add/subtract (the
		// butterfly's wre·re ± wim·im pairs). Float arithmetic order is
		// preserved exactly: the product is still computed first and
		// rounded once, then added or subtracted.
		if i+1 < len(code) && code[i].op == opFMul && fdead1(code[i].dst) {
			t := code[i].dst
			n := code[i+1]
			if n.op == opFAdd {
				if x, ok := otherOperand(n, t); ok && x != t {
					out = append(out, kinstr{op: opFMAdd, dst: n.dst, a: x,
						b: code[i].a, imm: int64(code[i].b)})
					i++
					continue
				}
			}
			if n.op == opFSub && n.b == t && n.a != t {
				out = append(out, kinstr{op: opFMSub, dst: n.dst, a: n.a,
					b: code[i].a, imm: int64(code[i].b)})
				i++
				continue
			}
		}
		// d = alu(...); Floats[s] = d   -->   store-fused variant. d stays
		// written, so no deadness proof is needed; the pair is simply one
		// dispatch. Matches products of the fusions above on the second
		// peephole pass.
		if i+1 < len(code) && code[i+1].op == opSetF && code[i+1].a == code[i].dst {
			if sop, ok := setFused(code[i].op); ok {
				in := code[i]
				in.op = sop
				in.imm2 = code[i+1].imm
				out = append(out, in)
				i++
				continue
			}
		}
		out = append(out, code[i])
	}
	return out
}

// otherOperand returns the operand of a two-register instruction that is
// not r (min and add commute over int64).
func otherOperand(in kinstr, r uint16) (uint16, bool) {
	if in.a == r {
		return in.b, true
	}
	if in.b == r {
		return in.a, true
	}
	return 0, false
}

// fuseDotLoop rewrites a whole [opHintIdx3][opFAccDot2][opLoopEndS] loop
// into a single opDotLoop dispatch. It runs after assembly (targets are
// absolute pcs) and requires: the back edge targets the opHintIdx3, no
// other jump lands inside the body, the hint and dot subscripts use the
// induction register, and every other operand register is loop-invariant
// (registers are written at most once outside the back edge, so any
// register other than the induction register cannot change inside a body
// consisting of exactly these three instructions).
func fuseDotLoop(code []kinstr) {
	targets := make(map[int]bool)
	for _, in := range code {
		switch in.op {
		case opJump, opJumpGeI, opJCmpI, opJCmpF:
			targets[int(in.imm)] = true
		case opLoopEnd, opLoopEndS:
			targets[int(in.imm2)] = true
		}
	}
	for i := 0; i+2 < len(code); i++ {
		if code[i].op != opHintIdx3 || code[i+1].op != opFAccDot2 ||
			code[i+2].op != opLoopEndS {
			continue
		}
		l := code[i+2]
		if int(l.imm2) != i || targets[i+1] || targets[i+2] {
			continue
		}
		kr := l.dst
		if code[i].a != kr || code[i].dst == kr ||
			uint16(code[i].imm2) == kr || l.b == kr {
			continue
		}
		d := code[i+1]
		if (d.a == kr) == (uint16(d.imm2) == kr) { // exactly one k operand
			continue
		}
		code[i].op = opDotLoop
	}
}

// assemble strips opLabel markers and patches every jump's label id to
// its absolute pc.
func assemble(code []kinstr, nLabels int) []kinstr {
	pos := make([]int, nLabels)
	n := 0
	for _, in := range code {
		if in.op == opLabel {
			pos[in.imm] = n
		} else {
			n++
		}
	}
	out := make([]kinstr, 0, n)
	for _, in := range code {
		if in.op == opLabel {
			continue
		}
		switch in.op {
		case opJump, opJumpGeI, opJCmpI, opJCmpF:
			in.imm = int64(pos[in.imm])
		case opLoopEnd, opLoopEndS:
			in.imm2 = int64(pos[in.imm2])
		}
		out = append(out, in)
	}
	return out
}
