// Peephole fusion and final assembly for the kernel bytecode.
package exec

// intReads calls f for each integer register the instruction reads.
// The enumeration must stay exhaustive: the peephole pass relies on it
// to prove a temporary register dead before eliminating its writer.
func intReads(in kinstr, f func(r uint16)) {
	switch in.op {
	case opJumpGeI, opJCmpI, opHintN:
		f(in.a)
		f(in.b)
	case opLoopEnd, opLoopEndS:
		f(in.dst)
		f(in.b)
	case opSetSlot, opSetSlotC, opIMove, opIAddImm, opIMulImm, opFromI,
		opLoadF1, opLoadI1, opStoreF1, opIdx0, opLoadFA, opLoadIA, opStoreFA,
		opHintPage, opHint1, opHintLoad1, opFAccDot:
		f(in.a)
	case opIAdd, opISub, opIMul, opIDiv, opIMod, opIShl, opIShr, opIMin, opIMax:
		f(in.a)
		f(in.b)
	case opIdx3:
		f(in.a)
		f(in.b)
		f(uint16(in.imm2))
	case opFAccDot2:
		f(in.a)
		f(uint16(in.imm2))
	case opHintIdx3:
		f(in.a)
		f(in.dst)
		f(uint16(in.imm2))
	case opIdxAcc:
		f(in.dst)
		f(in.a)
	case opStoreI1, opStoreIA:
		f(in.a)
		f(in.dst)
	case opHint:
		f(in.a)
		f(in.b)
		f(in.dst)
		f(uint16(in.imm))
	}
}

// intWrite returns the integer register the instruction writes, if any.
func intWrite(in kinstr) (uint16, bool) {
	switch in.op {
	case opIMove, opIConst, opISlot,
		opIAdd, opISub, opIMul, opIDiv, opIMod, opIShl, opIShr, opIMin, opIMax,
		opIAddImm, opIMulImm, opIFromF, opIdx3,
		opLoadI1, opIdx0, opIdxAcc, opLoadIA, opHintPage, opHintN,
		opLoopEnd, opLoopEndS:
		return in.dst, true
	}
	return 0, false
}

// peephole fuses adjacent instruction patterns. It runs before assembly,
// while jump targets are still opLabel markers, so removing instructions
// cannot skew a target. Temporaries are only eliminated when a whole-code
// census proves they are written once and read once, by the fused pair.
func peephole(code []kinstr, nRI int, haux []hintAux) []kinstr {
	reads := make([]int32, nRI)
	writes := make([]int32, nRI)
	for _, in := range code {
		intReads(in, func(r uint16) { reads[r]++ })
		if w, ok := intWrite(in); ok {
			writes[w]++
		}
	}
	dead1 := func(r uint16) bool { return reads[r] == 1 && writes[r] == 1 }

	out := make([]kinstr, 0, len(code))
	for i := 0; i < len(code); i++ {
		// t = a + imm; m = min(t, cap); d = base + m   -->   d = idx3
		// (the clamped-subscript shape hint planting produces per
		// iteration: base + min(k + dist, last)).
		if i+2 < len(code) &&
			code[i].op == opIAddImm && code[i+1].op == opIMin && code[i+2].op == opIAdd {
			t, m := code[i].dst, code[i+1].dst
			cap, okm := otherOperand(code[i+1], t)
			base, okd := otherOperand(code[i+2], m)
			if okm && okd && t != m && cap != t && base != t && base != m &&
				dead1(t) && dead1(m) {
				out = append(out, kinstr{op: opIdx3, dst: code[i+2].dst,
					a: code[i].a, b: cap, imm: code[i].imm, imm2: int64(base)})
				i += 2
				continue
			}
		}
		// d = idx3; HintLoad1(d)   -->   HintIdx3. The clamped subscript
		// folds into the hint dispatch itself; the displacement rides in
		// the hint's (per-instruction) aux entry. Matches only on the
		// second peephole pass, once P1 above has produced the opIdx3.
		if i+1 < len(code) && code[i].op == opIdx3 && code[i+1].op == opHintLoad1 &&
			code[i+1].a == code[i].dst && dead1(code[i].dst) {
			h := code[i+1]
			haux[h.b].dist = code[i].imm
			out = append(out, kinstr{op: opHintIdx3, dst: uint16(code[i].imm2),
				a: code[i].a, b: h.b, imm: h.imm, imm2: int64(code[i].b)})
			i++
			continue
		}
		// t = p + q; FAccDot(t)   -->   FAccDot2(p, q)
		if i+1 < len(code) && code[i].op == opIAdd && code[i+1].op == opFAccDot &&
			code[i+1].a == code[i].dst && dead1(code[i].dst) {
			fused := code[i+1]
			fused.op = opFAccDot2
			fused.a = code[i].a
			fused.imm2 = int64(code[i].b)
			out = append(out, fused)
			i++
			continue
		}
		// Ints[s] = r; charge   -->   one dispatch. Moving the charge past
		// a slot store is exact: neither can fault.
		if i+1 < len(code) && code[i].op == opSetSlot && code[i+1].op == opCharge {
			out = append(out, kinstr{op: opSetSlotC, a: code[i].a,
				imm: code[i].imm, imm2: code[i+1].imm})
			i++
			continue
		}
		out = append(out, code[i])
	}
	return out
}

// otherOperand returns the operand of a two-register instruction that is
// not r (min and add commute over int64).
func otherOperand(in kinstr, r uint16) (uint16, bool) {
	if in.a == r {
		return in.b, true
	}
	if in.b == r {
		return in.a, true
	}
	return 0, false
}

// fuseDotLoop rewrites a whole [opHintIdx3][opFAccDot2][opLoopEndS] loop
// into a single opDotLoop dispatch. It runs after assembly (targets are
// absolute pcs) and requires: the back edge targets the opHintIdx3, no
// other jump lands inside the body, the hint and dot subscripts use the
// induction register, and every other operand register is loop-invariant
// (registers are written at most once outside the back edge, so any
// register other than the induction register cannot change inside a body
// consisting of exactly these three instructions).
func fuseDotLoop(code []kinstr) {
	targets := make(map[int]bool)
	for _, in := range code {
		switch in.op {
		case opJump, opJumpGeI, opJCmpI, opJCmpF:
			targets[int(in.imm)] = true
		case opLoopEnd, opLoopEndS:
			targets[int(in.imm2)] = true
		}
	}
	for i := 0; i+2 < len(code); i++ {
		if code[i].op != opHintIdx3 || code[i+1].op != opFAccDot2 ||
			code[i+2].op != opLoopEndS {
			continue
		}
		l := code[i+2]
		if int(l.imm2) != i || targets[i+1] || targets[i+2] {
			continue
		}
		kr := l.dst
		if code[i].a != kr || code[i].dst == kr ||
			uint16(code[i].imm2) == kr || l.b == kr {
			continue
		}
		d := code[i+1]
		if (d.a == kr) == (uint16(d.imm2) == kr) { // exactly one k operand
			continue
		}
		code[i].op = opDotLoop
	}
}

// assemble strips opLabel markers and patches every jump's label id to
// its absolute pc.
func assemble(code []kinstr, nLabels int) []kinstr {
	pos := make([]int, nLabels)
	n := 0
	for _, in := range code {
		if in.op == opLabel {
			pos[in.imm] = n
		} else {
			n++
		}
	}
	out := make([]kinstr, 0, n)
	for _, in := range code {
		if in.op == opLabel {
			continue
		}
		switch in.op {
		case opJump, opJumpGeI, opJCmpI, opJCmpF:
			in.imm = int64(pos[in.imm])
		case opLoopEnd, opLoopEndS:
			in.imm2 = int64(pos[in.imm2])
		}
		out = append(out, in)
	}
	return out
}
