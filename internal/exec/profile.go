package exec

import (
	"repro/internal/ir"
	"repro/internal/profile"
)

// profRec wires a profile.Recorder into the closure compiler. Each array
// reference the compiler visits is matched to the recorder's canonical
// site enumeration by the identity of its subscript slice — both were
// built from the same *ir.Program, so every reference node appears in
// both exactly once. References the enumeration does not know (it
// mirrors the locality analysis, blind spots included) simply run
// uninstrumented.
type profRec struct {
	rec   *profile.Recorder
	byIdx map[*ir.IExpr][]int // &idx[0] → site IDs, enumeration order
}

func newProfRec(rec *profile.Recorder) *profRec {
	pr := &profRec{rec: rec, byIdx: map[*ir.IExpr][]int{}}
	for _, s := range rec.Sites() {
		if len(s.Idx) == 0 {
			continue
		}
		k := &s.Idx[0]
		pr.byIdx[k] = append(pr.byIdx[k], s.ID)
	}
	return pr
}

// siteFor consumes the site ID for one compiled reference. Structurally
// identical references sharing one subscript node drain the same queue;
// their order within it is immaterial because their keys coincide.
func (pr *profRec) siteFor(idx []ir.IExpr) (int, bool) {
	if len(idx) == 0 {
		return 0, false
	}
	q := pr.byIdx[&idx[0]]
	if len(q) == 0 {
		return 0, false
	}
	pr.byIdx[&idx[0]] = q[1:]
	return q[0], true
}

// The wrappers below snapshot the VM's user-time clock and fault-class
// tallies around the access and hand the deltas to the recorder. They
// charge no user operations of their own, so an instrumented run is
// tick-identical to an uninstrumented one. Subscript evaluation happens
// inside addr(e), before the first snapshot, so nested instrumented
// loads (a[b[i]]) attribute their own faults to their own sites.

func (pr *profRec) loadF(arr *ir.Array, idx []ir.IExpr, addr iFn) (fFn, bool) {
	id, ok := pr.siteFor(idx)
	if !ok {
		return nil, false
	}
	rec := pr.rec
	base := arr.Base
	return func(e *Env) float64 {
		a := addr(e)
		t0, f0, m0, h0 := e.vm.ProfileSnapshot()
		v := e.vm.LoadF64(a)
		t1, f1, m1, h1 := e.vm.ProfileSnapshot()
		rec.Access(id, (a-base)/ir.ElemSize, t0, t1, f1-f0, m1-m0, h1-h0)
		return v
	}, true
}

func (pr *profRec) loadI(arr *ir.Array, idx []ir.IExpr, addr iFn) (iFn, bool) {
	id, ok := pr.siteFor(idx)
	if !ok {
		return nil, false
	}
	rec := pr.rec
	base := arr.Base
	return func(e *Env) int64 {
		a := addr(e)
		t0, f0, m0, h0 := e.vm.ProfileSnapshot()
		v := e.vm.LoadI64(a)
		t1, f1, m1, h1 := e.vm.ProfileSnapshot()
		rec.Access(id, (a-base)/ir.ElemSize, t0, t1, f1-f0, m1-m0, h1-h0)
		return v
	}, true
}

func (pr *profRec) storeF(arr *ir.Array, idx []ir.IExpr, addr iFn, rhs fFn, cost int64) (stmtFn, bool) {
	id, ok := pr.siteFor(idx)
	if !ok {
		return nil, false
	}
	rec := pr.rec
	base := arr.Base
	return func(e *Env) {
		e.vm.AddUserOps(cost)
		v := rhs(e)
		a := addr(e)
		t0, f0, m0, h0 := e.vm.ProfileSnapshot()
		e.vm.StoreF64(a, v)
		t1, f1, m1, h1 := e.vm.ProfileSnapshot()
		rec.Access(id, (a-base)/ir.ElemSize, t0, t1, f1-f0, m1-m0, h1-h0)
	}, true
}

func (pr *profRec) storeI(arr *ir.Array, idx []ir.IExpr, addr iFn, rhs iFn, cost int64) (stmtFn, bool) {
	id, ok := pr.siteFor(idx)
	if !ok {
		return nil, false
	}
	rec := pr.rec
	base := arr.Base
	return func(e *Env) {
		e.vm.AddUserOps(cost)
		v := rhs(e)
		a := addr(e)
		t0, f0, m0, h0 := e.vm.ProfileSnapshot()
		e.vm.StoreI64(a, v)
		t1, f1, m1, h1 := e.vm.ProfileSnapshot()
		rec.Access(id, (a-base)/ir.ElemSize, t0, t1, f1-f0, m1-m0, h1-h0)
	}, true
}
