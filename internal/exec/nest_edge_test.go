package exec

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/ir"
	"repro/internal/stripefs"
)

// Nest-level edge cases for the kernel compiler, each run differentially
// against the closure oracle: zero-trip and single-iteration loops,
// bounds that clamp mid-page-run, reduction initial values, branch
// joins, NaN min/max semantics, and the register-overflow fallback.

func scalarRef(s ir.FScalar) ir.FExpr { return ir.FScalar{Slot: s.Slot, Name: s.Name} }

func TestNestZeroTrip(t *testing.T) {
	// Three shapes of empty loop — equal bounds, inverted bounds, and a
	// dynamically-empty inner loop — next to one loop that actually runs,
	// so the machine image is not trivially untouched. The kernel's
	// preheader guard must skip the induction-slot store entirely.
	const n = 2048
	mk := func() *ir.Program {
		p := ir.NewProgram("zerotrip")
		np := p.NewParam("n", n, true)
		a := p.NewArrayF("a", np)
		s := p.NewScalarF("s")
		i := p.NewLoopVar("i")
		j := p.NewLoopVar("j")
		k := p.NewLoopVar("k")
		p.Body = []ir.Stmt{
			ir.For(i, ir.Int(7), ir.Int(7), 1, // equal bounds: zero trips
				ir.StoreF(a, []ir.IExpr{i}, ir.Flt(-1))),
			ir.For(j, ir.Int(9), ir.Int(3), 1, // inverted bounds
				ir.StoreF(a, []ir.IExpr{j}, ir.Flt(-2))),
			ir.For(i, ir.Int(0), np, 1,
				ir.SetF(s, ir.AddF(scalarRef(s), ir.LoadF(a, i)))),
			ir.For(i, ir.Int(0), ir.Int(4), 1, // inner loop empty per outer trip
				ir.For(k, i, ir.MinI(i, ir.Int(2)), 1,
					ir.StoreF(a, []ir.IExpr{k}, ir.Flt(-3)))),
		}
		return p
	}
	seed := func(f *stripefs.File, p *ir.Program) {
		SeedF64(f, hw.Default().PageSize, p.Arrays[0], func(i int64) float64 { return float64(i % 31) })
	}
	runDifferentialSites(t, mk, 8, seed, true)
}

func TestNestSingleIteration(t *testing.T) {
	// One-trip loops: the back edge is never taken, so the preheader's
	// slot store is the only one, and reductions fold exactly one term.
	mk := func() *ir.Program {
		p := ir.NewProgram("onetrip")
		np := p.NewParam("n", 512, true)
		a := p.NewArrayF("a", np)
		s := p.NewScalarF("s")
		i := p.NewLoopVar("i")
		j := p.NewLoopVar("j")
		p.Body = []ir.Stmt{
			ir.For(i, ir.Int(3), ir.Int(4), 1,
				ir.For(j, i, ir.AddI(i, ir.Int(1)), 1,
					ir.SetF(s, ir.AddF(scalarRef(s), ir.LoadF(a, ir.AddI(i, j)))),
					ir.StoreF(a, []ir.IExpr{j}, ir.MulF(scalarRef(s), ir.Flt(2))))),
		}
		return p
	}
	seed := func(f *stripefs.File, p *ir.Program) {
		SeedF64(f, hw.Default().PageSize, p.Arrays[0], func(i int64) float64 { return float64(i) / 3 })
	}
	env, _ := runDifferentialSites(t, mk, 8, seed, false)
	want := 6.0 / 3 // a[i+j] = a[6], one trip with i=j=3
	found := false
	for _, f := range env.Floats {
		if f == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("reduction %v not found in float slots %v", want, env.Floats)
	}
}

func TestNestBoundClampMidPageRun(t *testing.T) {
	// The loop bound lands partway through a page (min(n, m) with m not
	// page-aligned): the span driver must clamp its last run exactly
	// where the oracle stops.
	pageElems := hw.Default().PageSize / ir.ElemSize
	n := 16 * pageElems
	m := 11*pageElems + pageElems/3
	mk := func() *ir.Program {
		p := ir.NewProgram("clamp")
		np := p.NewParam("n", n, true)
		mp := p.NewParam("m", m, true)
		a := p.NewArrayF("a", np)
		s := p.NewScalarF("s")
		i := p.NewLoopVar("i")
		p.Body = []ir.Stmt{
			ir.For(i, ir.Int(0), ir.MinI(np, mp), 1,
				ir.SetF(s, ir.AddF(scalarRef(s), ir.LoadF(a, i))),
				ir.StoreF(a, []ir.IExpr{i}, ir.AddF(ir.LoadF(a, i), ir.Flt(1)))),
		}
		return p
	}
	seed := func(f *stripefs.File, p *ir.Program) {
		SeedF64(f, hw.Default().PageSize, p.Arrays[0], func(i int64) float64 { return float64(i % 17) })
	}
	runDifferential(t, mk, 8, seed)
}

func TestNestReductionInitialValue(t *testing.T) {
	// The accumulator starts from a computed non-zero value, and a second
	// reduction chains off the first's result.
	const n = 4096
	mk := func() *ir.Program {
		p := ir.NewProgram("redinit")
		np := p.NewParam("n", n, true)
		a := p.NewArrayF("a", np)
		s := p.NewScalarF("s")
		q := p.NewScalarF("q")
		i := p.NewLoopVar("i")
		p.Body = []ir.Stmt{
			ir.SetF(s, ir.Flt(2.25)),
			ir.For(i, ir.Int(0), np, 1,
				ir.SetF(s, ir.AddF(scalarRef(s), ir.LoadF(a, i)))),
			ir.SetF(q, ir.MulF(scalarRef(s), ir.Flt(0.5))),
			ir.For(i, ir.Int(0), np, 1,
				ir.SetF(q, ir.AddF(scalarRef(q), ir.MulF(ir.LoadF(a, i), ir.Flt(3))))),
		}
		return p
	}
	seed := func(f *stripefs.File, p *ir.Program) {
		SeedF64(f, hw.Default().PageSize, p.Arrays[0], func(i int64) float64 { return 1 })
	}
	env, _ := runDifferential(t, mk, 8, seed)
	wantS := 2.25 + n
	wantQ := wantS/2 + 3*n
	okS, okQ := false, false
	for _, f := range env.Floats {
		if f == wantS {
			okS = true
		}
		if f == wantQ {
			okQ = true
		}
	}
	if !okS || !okQ {
		t.Fatalf("want s=%v q=%v somewhere in float slots %v", wantS, wantQ, env.Floats)
	}
}

func TestNestIfElseJoin(t *testing.T) {
	// Both branch arms write scalars and memory; after the join the loop
	// keeps using them, so the compiler's register invalidation at the
	// join must be exact.
	const n = 2048
	mk := func() *ir.Program {
		p := ir.NewProgram("branchy")
		np := p.NewParam("n", n, true)
		a := p.NewArrayF("a", np)
		s := p.NewScalarF("s")
		cnt := p.NewScalarI("cnt")
		i := p.NewLoopVar("i")
		p.Body = []ir.Stmt{
			ir.For(i, ir.Int(0), np, 1,
				ir.If{
					Cond: ir.CmpF{Op: ir.Gt, A: ir.LoadF(a, i), B: ir.Flt(0.5)},
					Then: []ir.Stmt{
						ir.SetI(cnt, ir.AddI(cnt, ir.Int(1))),
						ir.SetF(s, ir.AddF(scalarRef(s), ir.LoadF(a, i))),
					},
					Else: []ir.Stmt{
						ir.StoreF(a, []ir.IExpr{i}, ir.SubF(ir.Flt(1), ir.LoadF(a, i))),
					},
				},
				ir.SetF(s, ir.AddF(scalarRef(s), ir.MulF(ir.LoadF(a, i), ir.Flt(0.25))))),
		}
		return p
	}
	seed := func(f *stripefs.File, p *ir.Program) {
		SeedF64(f, hw.Default().PageSize, p.Arrays[0], func(i int64) float64 { return float64(i%7) / 6 })
	}
	runDifferentialSites(t, mk, 8, seed, false)
}

func TestNestFMinNaN(t *testing.T) {
	// The oracle's fmin is `x < y ? x : y`: a NaN on the LEFT loses (the
	// comparison is false, the right operand wins), so a NaN seeded
	// mid-array must wash out rather than stick. The kernel's opFMin has
	// to reproduce that asymmetry bit-for-bit.
	const n = 1024
	mk := func() *ir.Program {
		p := ir.NewProgram("fminnan")
		np := p.NewParam("n", n, true)
		a := p.NewArrayF("a", np)
		lo := p.NewScalarF("lo")
		hi := p.NewScalarF("hi")
		i := p.NewLoopVar("i")
		p.Body = []ir.Stmt{
			ir.SetF(lo, ir.Flt(math.Inf(1))),
			ir.SetF(hi, ir.Flt(math.Inf(-1))),
			ir.For(i, ir.Int(0), np, 1,
				ir.SetF(lo, ir.FBin{Op: ir.FMinOp, A: scalarRef(lo), B: ir.LoadF(a, i)}),
				ir.SetF(hi, ir.FBin{Op: ir.FMaxOp, A: scalarRef(hi), B: ir.LoadF(a, i)})),
		}
		return p
	}
	seed := func(f *stripefs.File, p *ir.Program) {
		SeedF64(f, hw.Default().PageSize, p.Arrays[0], func(i int64) float64 {
			if i == 300 {
				return math.NaN()
			}
			return float64((i*37)%101) - 50
		})
	}
	env, _ := runDifferentialSites(t, mk, 8, seed, false)
	okLo, okHi := false, false
	for _, f := range env.Floats {
		if f == -50 {
			okLo = true
		}
		if f == 50 {
			okHi = true
		}
	}
	if !okLo || !okHi {
		t.Fatalf("NaN stuck in a reduction: float slots %v", env.Floats)
	}
}

func TestNestRegisterOverflowFallback(t *testing.T) {
	// A body large enough to exhaust the 16-bit register file: NewWith
	// must fall back to the closure tree (no bytecode installed) and the
	// program must still run identically to the NoFastPath oracle.
	const n = 70000 // distinct float constants > the 65535-register file
	mk := func() *ir.Program {
		p := ir.NewProgram("regflood")
		s := p.NewScalarF("s")
		body := make([]ir.Stmt, 0, n)
		for c := 0; c < n; c++ {
			body = append(body, ir.SetF(s, ir.AddF(scalarRef(s), ir.Flt(float64(c)))))
		}
		p.Body = body
		return p
	}
	_, _, _, m := buildWith(t, mk(), 8, Options{})
	if m.code != nil {
		t.Fatal("register overflow did not fall back to the closure tree")
	}
	runDifferentialSites(t, mk, 8, nil, false)
}

func TestNestReports(t *testing.T) {
	// The per-loop reports must name the driver each loop actually got
	// and a sensible fallback reason for the ones that missed page-run.
	pageElems := hw.Default().PageSize / ir.ElemSize
	p := ir.NewProgram("reportful")
	np := p.NewParam("n", 4*pageElems, true)
	a := p.NewArrayF("a", np)
	key := p.NewArrayI("key", np)
	s := p.NewScalarF("s")
	it := p.NewLoopVar("it")
	i := p.NewLoopVar("i")
	j := p.NewLoopVar("j")
	p.Body = []ir.Stmt{
		ir.For(it, ir.Int(0), ir.Int(2), 1,
			ir.For(i, ir.Int(0), np, 1,
				ir.SetF(s, ir.AddF(scalarRef(s), ir.LoadF(a, i))))),
		ir.For(j, ir.Int(0), np, 1,
			ir.SetF(s, ir.AddF(scalarRef(s), ir.LoadF(a, ir.LoadI(key, j))))),
	}
	_, _, _, m := buildWith(t, p, 64, Options{})
	got := m.Reports()
	want := []struct {
		v      string
		depth  int
		driver string
		reason FallbackReason
	}{
		{"it", 0, "kernel", ReasonOuterLoop},
		{"i", 1, "page-run", ReasonSpecialized},
		{"j", 0, "kernel", ReasonIndirectIndex},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d reports, want %d: %v", len(got), len(want), got)
	}
	for k, w := range want {
		r := got[k]
		if r.Var != w.v || r.Depth != w.depth || r.Driver != w.driver || r.Reason != w.reason {
			t.Errorf("report %d = %+v, want %s depth=%d %s/%s", k, r, w.v, w.depth, w.driver, w.reason)
		}
		if r.Driver == "page-run" && r.Sites == 0 {
			t.Errorf("page-run report %d has zero sites", k)
		}
	}
	for _, r := range got {
		if r.String() == "" {
			t.Errorf("empty String() for %+v", r)
		}
	}

	// NoFastPath: the whole program is the oracle, nothing to report.
	p2 := ir.NewProgram("quiet")
	np2 := p2.NewParam("n", 256, true)
	a2 := p2.NewArrayF("a", np2)
	k2 := p2.NewLoopVar("k")
	p2.Body = []ir.Stmt{ir.For(k2, ir.Int(0), np2, 1,
		ir.StoreF(a2, []ir.IExpr{k2}, ir.Flt(1)))}
	_, _, _, m2 := buildWith(t, p2, 64, Options{NoFastPath: true})
	if n := len(m2.Reports()); n != 0 {
		t.Fatalf("NoFastPath machine has %d reports, want 0", n)
	}
}

func TestFallbackReasonStrings(t *testing.T) {
	for r := ReasonSpecialized; r <= ReasonUnsupportedBody; r++ {
		if s := r.String(); s == "" || s[0] == 'r' && s != "reason(255)" && len(s) > 7 && s[:7] == "reason(" {
			t.Errorf("reason %d has no name: %q", r, s)
		}
	}
	if got := FallbackReason(255).String(); got != fmt.Sprintf("reason(%d)", 255) {
		t.Errorf("out-of-range reason prints %q", got)
	}
}
