// Differential tests for the exact (double-evaluation) hint lowering:
// hint shapes that fail hintSideSafe — multi-load indices, impure pages
// expressions — must run as kernel bytecode via hintExact, tick-identical
// to the closure oracle, with no opCall fallback.
package exec

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/ir"
	"repro/internal/stripefs"
)

// twoLoadHintProgram builds the FFT-butterfly-shaped hint: the prefetch
// index sums two loads from an index array, so a single evaluation is
// not provably exact (the second load may land on a different page than
// the first just touched) and the hint must take the hintExact path.
func twoLoadHintProgram() *ir.Program {
	const n = 4096 // 8 pages of float64 + 8 pages of int64
	p := ir.NewProgram("hint2load")
	np := p.NewParam("n", n, true)
	a := p.NewArrayF("a", np)
	c := p.NewArrayI("c", np)
	s := p.NewScalarF("s")
	i := p.NewLoopVar("i")
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), ir.SubI(np, ir.Int(1)), 1,
			ir.Prefetch{
				Arr:   a,
				Idx:   []ir.IExpr{ir.AddI(ir.LoadI(c, i), ir.LoadI(c, ir.AddI(i, ir.Int(1))))},
				Pages: ir.Int(2),
			},
			ir.SetF(s, ir.AddF(scalarRef(s), ir.LoadF(a, i))),
		),
	}
	return p
}

func seedTwoLoad(f *stripefs.File, p *ir.Program) {
	ps := hw.Default().PageSize
	SeedF64(f, ps, p.ArrayByName("a"), func(i int64) float64 { return float64(i%97) * 0.5 })
	// Index pairs that hop around the array, so consecutive hint sides
	// land on different pages.
	SeedI64(f, ps, p.ArrayByName("c"), func(i int64) int64 { return (i * 709) % 2048 })
}

func TestHintExactTwoLoadIndex(t *testing.T) {
	// The loop's only array traffic besides the hint is a streaming sum;
	// the hint makes the loop a kernel (not span) candidate, so no
	// specialized sites are required for the test to be meaningful.
	env, _ := runDifferentialSites(t, twoLoadHintProgram, 8, seedTwoLoad, false)
	if env.Floats[0] == 0 {
		t.Fatal("sum is zero — the loop body never ran")
	}
}

// impurePagesProgram builds a 2-D strided release whose page count is
// itself loaded from memory: the pages expression is impure, so the
// oracle evaluates the index, then the pages (which may fault), then the
// index again — a sequence only hintExact reproduces.
func impurePagesProgram() *ir.Program {
	const rows, cols = 32, 512 // 32 pages of float64
	p := ir.NewProgram("hintimpure")
	pr := p.NewParam("r", rows, true)
	pc := p.NewParam("c", cols, true)
	a := p.NewArrayF("a", pr, pc)
	pg := p.NewArrayI("pg", pr)
	s := p.NewScalarF("s")
	i := p.NewLoopVar("i")
	j := p.NewLoopVar("j")
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), pr, 1,
			ir.For(j, ir.Int(0), pc, 1,
				ir.SetF(s, ir.AddF(scalarRef(s), ir.LoadF(a, i, j))),
			),
			ir.Release{
				Arr:   a,
				Idx:   []ir.IExpr{i, ir.Int(0)},
				Pages: ir.LoadI(pg, i),
			},
		),
	}
	return p
}

func seedImpurePages(f *stripefs.File, p *ir.Program) {
	ps := hw.Default().PageSize
	SeedF64(f, ps, p.ArrayByName("a"), func(i int64) float64 { return float64(i % 13) })
	SeedI64(f, ps, p.ArrayByName("pg"), func(i int64) int64 { return 1 + i%2 })
}

func TestHintExactImpurePages(t *testing.T) {
	// The inner sum loop must still get the span driver (requireSites):
	// the exact hint lowering lives in the outer kernel loop around it.
	runDifferentialSites(t, impurePagesProgram, 16, seedImpurePages, true)
}

// mixedHintProgram bundles a side-safe prefetch with an impure-pages
// release in one PrefetchRelease. One unsafe side routes the whole
// bundled hint through hintExact — the two sides share a dispatch, so
// they cannot split between templates.
func mixedHintProgram() *ir.Program {
	const n = 4096
	p := ir.NewProgram("hintmixed")
	np := p.NewParam("n", n, true)
	a := p.NewArrayF("a", np)
	c := p.NewArrayI("c", np)
	s := p.NewScalarF("s")
	i := p.NewLoopVar("i")
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), np, 1,
			ir.PrefetchRelease{
				PfArr: a, PfIdx: []ir.IExpr{ir.AddI(i, ir.Int(512))}, PfPages: ir.Int(4),
				RelArr: a, RelIdx: []ir.IExpr{i}, RelPages: ir.LoadI(c, i),
			},
			ir.SetF(s, ir.AddF(scalarRef(s), ir.LoadF(a, i))),
		),
	}
	return p
}

func seedMixed(f *stripefs.File, p *ir.Program) {
	ps := hw.Default().PageSize
	SeedF64(f, ps, p.ArrayByName("a"), func(i int64) float64 { return float64(i) })
	SeedI64(f, ps, p.ArrayByName("c"), func(i int64) int64 { return i % 3 })
}

func TestHintExactMixedPrefetchRelease(t *testing.T) {
	runDifferentialSites(t, mixedHintProgram, 8, seedMixed, false)
}

// TestHintLoweringNoClosureFallback proves the structural claim behind
// the differentials: every hint statement is lowered to bytecode (the
// enclosing loop reports the kernel driver and counts its hints), and
// the bytecode's only closure-call slots are page-run span drivers —
// exactly one per page-run loop report, so hint sites contribute none.
func TestHintLoweringNoClosureFallback(t *testing.T) {
	cases := []struct {
		name string
		mk   func() *ir.Program
	}{
		{"two-load-index", twoLoadHintProgram},
		{"impure-pages", impurePagesProgram},
		{"mixed-bundle", mixedHintProgram},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, m := buildWith(t, tc.mk(), 16, Options{})
			hints, kernels, pageRuns := 0, 0, 0
			for _, r := range m.Reports() {
				hints += r.Hints
				switch r.Driver {
				case "kernel":
					kernels++
				case "page-run":
					pageRuns++
				case "closure":
					t.Errorf("loop %s fell back to the closure driver (%s)", r.Var, r.Reason)
				}
			}
			if hints != 1 {
				t.Errorf("lowered hints = %d, want 1 (reports: %v)", hints, m.Reports())
			}
			if kernels == 0 {
				t.Error("no loop reports the kernel driver — hint lowering never engaged")
			}
			if got := m.CallSites(); got != pageRuns {
				t.Errorf("CallSites = %d, want %d (one per page-run loop, none for hints)",
					got, pageRuns)
			}
		})
	}
}
