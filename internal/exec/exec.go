// Package exec runs loop-nest IR programs against the simulated virtual
// memory system. Programs are compiled to closure trees once (a standard
// fast-interpreter technique), so per-element dispatch is a function call,
// not a tree walk. Every array access goes through the VM — faulting,
// prefetching, and releasing exactly as a compiled-to-native program
// would — and every statement charges its operation count to the
// simulated CPU.
package exec

import (
	"fmt"
	"math/bits"

	"repro/internal/ir"
	"repro/internal/profile"
	"repro/internal/rt"
	"repro/internal/vm"
)

// Env is the run-time state of one program execution.
type Env struct {
	Ints   []int64
	Floats []float64
	vm     *vm.VM
	rt     *rt.Layer
	rngX   uint64 // Randlc stream state (x_k, 46-bit)

	// sites is the page-run fast path's per-access-site state: one entry
	// per specialized array reference in the program, live only while a
	// chunk of iterations executes (see fastpath.go).
	sites []runSite

	// subs holds the page-run driver's incrementally-maintained
	// per-dimension subscript values, indexed by each site's subBase.
	subs []int64

	// ri/rf are the kernel interpreter's register files (kernel.go);
	// index 0 of each is a permanent zero.
	ri []int64
	rf []float64
}

type stmtFn func(*Env)
type iFn func(*Env) int64
type fFn func(*Env) float64
type bFn func(*Env) bool

// Machine is a compiled, runnable program bound to a VM and run-time
// layer. The default compilation lowers the whole nest to kernel
// bytecode (code != nil, run by runK); Options.NoFastPath and the
// register-overflow fallback keep the closure tree in body instead.
type Machine struct {
	prog   *ir.Program
	vm     *vm.VM
	rt     *rt.Layer
	body   stmtFn
	nSites int
	nSubs  int

	// kernel bytecode state (kcompile.go / kernel.go)
	code      []kinstr
	calls     []stmtFn
	aux       []auxDim
	haux      []hintAux
	nRI, nRF  int
	pageShift int64
	reports   []LoopReport
}

// Artifact is a compiled program not yet bound to any VM. Everything in
// it — the closure tree, the kernel bytecode, the call table — reads
// run-time state exclusively through the *Env passed at execution, so
// one Artifact can be Bound to any number of VMs (sequentially or
// concurrently) as long as each VM has the same page size the program
// was compiled against. This is what makes a compile-once plan cache
// sound: compilation happens once, binding is a handful of address-space
// allocations per run.
type Artifact struct {
	prog     *ir.Program
	pageSize int64
	body     stmtFn
	nSites   int
	nSubs    int

	code      []kinstr
	calls     []stmtFn
	aux       []auxDim
	haux      []hintAux
	nRI, nRF  int
	pageShift int64
	reports   []LoopReport
}

// Reports returns the per-loop compilation reports in program order,
// available before any VM binding.
func (a *Artifact) Reports() []LoopReport { return a.reports }

// CallSites returns how many closure-call slots the kernel bytecode
// carries. On the kernel path the only opCall emitters are embedded
// page-run span drivers — exactly one per page-run loop report — so
// tests assert CallSites equals the page-run loop count to prove no
// hint (or any other statement) fell back to a closure. Zero for
// closure-tree artifacts, which have no bytecode at all.
func (a *Artifact) CallSites() int { return len(a.calls) }

// Options tunes compilation.
type Options struct {
	// NoFastPath disables page-run loop specialization, forcing every
	// array access through the per-element Load/Store path. The fast path
	// only removes host-side interpretation overhead — simulated results,
	// times, and statistics are identical either way — so this exists for
	// differential testing and debugging, not as a semantic switch.
	NoFastPath bool

	// Profile, if non-nil, runs the program with observation-only
	// profiling instrumentation (pass 1 of the two-pass profile-guided
	// mode). The recorder must have been built from the same *ir.Program.
	// Instrumentation wraps every array access through the closure-tree
	// oracle — the bytecode and page-run drivers are bypassed, which by
	// the differential contract changes nothing simulated — and charges
	// no operations, so results, times, and statistics are identical to
	// an unprofiled run.
	Profile *profile.Recorder
}

// New compiles prog for execution on v, with compiler-inserted hints
// routed through layer. The program must already be Resolved; its arrays
// are allocated in v's address space (which must be fresh: allocation
// order defines addresses).
func New(prog *ir.Program, v *vm.VM, layer *rt.Layer) (*Machine, error) {
	return NewWith(prog, v, layer, Options{})
}

// NewWith is New with explicit compilation options.
func NewWith(prog *ir.Program, v *vm.VM, layer *rt.Layer, opts Options) (*Machine, error) {
	a, err := Compile(prog, v.Params().PageSize, opts)
	if err != nil {
		return nil, err
	}
	return a.Bind(v, layer)
}

// Compile lowers prog to a VM-independent Artifact for the given page
// size. The program is Resolved against pageSize if it has not been
// already; the Artifact holds a reference to prog (not a copy), so the
// program must not be structurally mutated while the Artifact is live.
func Compile(prog *ir.Program, pageSize int64, opts Options) (*Artifact, error) {
	if !prog.Resolved() {
		if err := prog.Resolve(pageSize); err != nil {
			return nil, err
		}
	}
	c := &compiler{
		noFast:    opts.NoFastPath,
		pageWords: pageSize / ir.ElemSize,
	}
	a := &Artifact{prog: prog, pageSize: pageSize}
	if opts.Profile != nil {
		// Profiling pass: per-element closure tree with observation
		// wrappers around every array access. The closures capture the
		// recorder, so a profiling Artifact is one-shot — never cache it.
		c.noFast = true
		c.prof = newProfRec(opts.Profile)
		a.body = c.stmts(prog.Body)
		if c.err != nil {
			return nil, c.err
		}
		a.nSites, a.nSubs = c.nSites, c.nSubs
		return a, nil
	}
	if opts.NoFastPath {
		// Differential oracle: the pure closure tree, byte-for-byte the
		// reference semantics.
		a.body = c.stmts(prog.Body)
		if c.err != nil {
			return nil, c.err
		}
		a.nSites, a.nSubs = c.nSites, c.nSubs
		return a, nil
	}
	shift := int64(bits.TrailingZeros64(uint64(pageSize)))
	kc := newKcompiler(c, shift)
	if kc.compile(prog.Body) {
		a.nSites, a.nSubs = c.nSites, c.nSubs
		kc.install(a)
		return a, nil
	}
	if c.err != nil {
		return nil, c.err
	}
	// Register/table pressure exceeded the bytecode's limits: fall back to
	// the closure interpreter with page-run specialization (a fresh
	// compiler, since kc consumed site numbering on the shared one).
	c2 := &compiler{pageWords: c.pageWords}
	a.body = c2.stmts(prog.Body)
	if c2.err != nil {
		return nil, c2.err
	}
	a.nSites, a.nSubs = c2.nSites, c2.nSubs
	return a, nil
}

// Bind attaches the compiled artifact to a fresh VM, allocating the
// program's arrays in its address space. Allocation order defines
// addresses, so the VM must have no prior allocations and the bases must
// land exactly where Resolve placed them.
func (a *Artifact) Bind(v *vm.VM, layer *rt.Layer) (*Machine, error) {
	if ps := v.Params().PageSize; ps != a.pageSize {
		return nil, fmt.Errorf("exec: artifact compiled for page size %d, VM has %d", a.pageSize, ps)
	}
	if v.AllocatedPages() != 0 {
		return nil, fmt.Errorf("exec: VM address space already has allocations")
	}
	for _, arr := range a.prog.Arrays {
		base, err := v.Alloc(arr.Name, arr.Bytes())
		if err != nil {
			return nil, err
		}
		if base != arr.Base {
			return nil, fmt.Errorf("exec: array %s resolved at %#x but allocated at %#x", arr.Name, arr.Base, base)
		}
	}
	return &Machine{
		prog: a.prog, vm: v, rt: layer,
		body: a.body, nSites: a.nSites, nSubs: a.nSubs,
		code: a.code, calls: a.calls, aux: a.aux, haux: a.haux,
		nRI: a.nRI, nRF: a.nRF, pageShift: a.pageShift,
		reports: a.reports,
	}, nil
}

// Run executes the program once. The returned Env exposes final scalar
// values.
func (m *Machine) Run() *Env {
	e := &Env{
		Ints:   make([]int64, m.prog.NInt),
		Floats: make([]float64, m.prog.NFloat),
		vm:     m.vm,
		rt:     m.rt,
		rngX:   uint64(m.prog.Seed) & ((1 << 46) - 1),
		sites:  make([]runSite, m.nSites),
		subs:   make([]int64, m.nSubs),
	}
	for _, p := range m.prog.Params {
		e.Ints[p.Slot] = p.Val
	}
	if m.code != nil {
		e.ri = make([]int64, m.nRI)
		e.rf = make([]float64, m.nRF)
		m.runK(e)
	} else {
		m.body(e)
	}
	return e
}

// VM returns the machine's VM.
func (m *Machine) VM() *vm.VM { return m.vm }

// SpecializedSites returns how many array access sites were compiled to
// the page-run fast path (zero when Options.NoFastPath was set or no loop
// qualified). Tests use it to prove specialization actually engaged.
func (m *Machine) SpecializedSites() int { return m.nSites }

// CallSites returns how many closure-call slots the machine's kernel
// bytecode carries; see Artifact.CallSites for what tests prove with it.
func (m *Machine) CallSites() int { return len(m.calls) }

// ---- compilation ---------------------------------------------------------

// compiler lowers IR to closures, tallying a static operation count per
// statement which the closure charges once per execution. Loads, stores
// and intrinsics carry extra weight; see opCost.
type compiler struct {
	err       error
	noFast    bool
	pageWords int64    // words per page, for page-run chunk sizing
	nSites    int      // specialized access sites assigned so far
	nSubs     int      // maintained-subscript slots assigned so far
	prof      *profRec // non-nil in the profiling pass (profile.go)
}

func (c *compiler) fail(format string, args ...interface{}) {
	if c.err == nil {
		c.err = fmt.Errorf("exec: "+format, args...)
	}
}

// Costs, in machine operations (×hw.OpTime each).
const (
	costArith  = 1
	costLoad   = 2 // address + access
	costStore  = 2
	costLoop   = 2 // increment + branch, charged per iteration
	costSqrt   = 15
	costAbs    = 2
	costLog    = 25
	costExp    = 25
	costTrig   = 30
	costPow    = 40
	costRandlc = 12
)

func intrinsicCost(fn ir.Intrinsic) int64 {
	switch fn {
	case ir.Sqrt:
		return costSqrt
	case ir.Abs:
		return costAbs
	case ir.Log:
		return costLog
	case ir.Exp:
		return costExp
	case ir.Sin, ir.Cos:
		return costTrig
	case ir.Pow:
		return costPow
	case ir.Randlc:
		return costRandlc
	}
	return costArith
}

func (c *compiler) stmts(list []ir.Stmt) stmtFn {
	fns := make([]stmtFn, len(list))
	for i, s := range list {
		fns[i] = c.stmt(s)
	}
	if len(fns) == 1 {
		return fns[0]
	}
	return func(e *Env) {
		for _, f := range fns {
			f(e)
		}
	}
}

func (c *compiler) stmt(s ir.Stmt) stmtFn {
	switch x := s.(type) {
	case *ir.Loop:
		return c.loop(x)
	case ir.AssignF:
		addr, acost := c.addr(x.Arr, x.Idx)
		rhs, rcost := c.fexpr(x.RHS)
		cost := acost + rcost + costStore
		if c.prof != nil {
			if fn, ok := c.prof.storeF(x.Arr, x.Idx, addr, rhs, cost); ok {
				return fn
			}
		}
		return func(e *Env) {
			e.vm.AddUserOps(cost)
			v := rhs(e)
			e.vm.StoreF64(addr(e), v)
		}
	case ir.AssignI:
		addr, acost := c.addr(x.Arr, x.Idx)
		rhs, rcost := c.iexpr(x.RHS)
		cost := acost + rcost + costStore
		if c.prof != nil {
			if fn, ok := c.prof.storeI(x.Arr, x.Idx, addr, rhs, cost); ok {
				return fn
			}
		}
		return func(e *Env) {
			e.vm.AddUserOps(cost)
			v := rhs(e)
			e.vm.StoreI64(addr(e), v)
		}
	case ir.SetScalarF:
		rhs, rcost := c.fexpr(x.RHS)
		slot := x.Slot
		cost := rcost + costArith
		return func(e *Env) {
			e.vm.AddUserOps(cost)
			e.Floats[slot] = rhs(e)
		}
	case ir.SetScalarI:
		rhs, rcost := c.iexpr(x.RHS)
		slot := x.Slot
		cost := rcost + costArith
		return func(e *Env) {
			e.vm.AddUserOps(cost)
			e.Ints[slot] = rhs(e)
		}
	case ir.If:
		cond, ccost := c.bexpr(x.Cond)
		then := c.stmts(x.Then)
		var els stmtFn
		if len(x.Else) > 0 {
			els = c.stmts(x.Else)
		}
		return func(e *Env) {
			e.vm.AddUserOps(ccost + costArith)
			if cond(e) {
				then(e)
			} else if els != nil {
				els(e)
			}
		}
	case ir.Prefetch:
		return c.hint(x.Arr, x.Idx, x.Pages, nil, nil, nil)
	case ir.Release:
		return c.hint(nil, nil, nil, x.Arr, x.Idx, x.Pages)
	case ir.PrefetchRelease:
		return c.hint(x.PfArr, x.PfIdx, x.PfPages, x.RelArr, x.RelIdx, x.RelPages)
	default:
		c.fail("unknown statement %T", s)
		return func(*Env) {}
	}
}

func (c *compiler) loop(l *ir.Loop) stmtFn {
	if l.Step <= 0 {
		c.fail("loop %s has non-positive step %d", l.Var, l.Step)
		return func(*Env) {}
	}
	lo, locost := c.iexpr(l.Lo)
	hi, hicost := c.iexpr(l.Hi)
	head := locost + hicost
	if !c.noFast {
		if fn, ok := c.fastLoop(l, lo, hi, head); ok {
			return fn
		}
	}
	body := c.stmts(l.Body)
	slot, step := l.Slot, l.Step
	return func(e *Env) {
		e.vm.AddUserOps(head)
		h := hi(e)
		for v := lo(e); v < h; v += step {
			e.Ints[slot] = v
			e.vm.AddUserOps(costLoop)
			body(e)
		}
	}
}

// hint compiles a prefetch and/or release statement into a run-time-layer
// call. Hint addresses are clamped, never bounds-checked: non-binding
// hints must be safe to issue speculatively past the end of an array.
func (c *compiler) hint(pfArr *ir.Array, pfIdx []ir.IExpr, pfPages ir.IExpr,
	relArr *ir.Array, relIdx []ir.IExpr, relPages ir.IExpr) stmtFn {

	var cost int64 = costArith
	var pfPage func(*Env) (int64, int64) // returns (page, npages)
	if pfArr != nil {
		f, n, k := c.hintRange(pfArr, pfIdx, pfPages)
		cost += k
		pfPage = func(e *Env) (int64, int64) { return f(e), n(e) }
	}
	var relPage func(*Env) (int64, int64)
	if relArr != nil {
		f, n, k := c.hintRange(relArr, relIdx, relPages)
		cost += k
		relPage = func(e *Env) (int64, int64) { return f(e), n(e) }
	}
	return func(e *Env) {
		e.vm.AddUserOps(cost)
		var pp, pn, rp, rn int64
		if pfPage != nil {
			pp, pn = pfPage(e)
		}
		if relPage != nil {
			rp, rn = relPage(e)
		}
		switch {
		case pn > 0 && rn > 0:
			e.rt.PrefetchRelease(pp, pn, rp, rn)
		case pn > 0:
			e.rt.Prefetch(pp, pn)
		case rn > 0:
			e.rt.Release(rp, rn)
		}
	}
}

// hintRange compiles an (array, indices, pages) triple into closures
// producing a clamped page number and a clamped page count.
func (c *compiler) hintRange(arr *ir.Array, idx []ir.IExpr, pages ir.IExpr) (func(*Env) int64, func(*Env) int64, int64) {
	lin, lcost := c.linearIndex(arr, idx)
	pagesFn, pcost := c.iexpr(pages)
	base := arr.Base
	elems := arr.Elems
	firstPage := func(e *Env) int64 {
		li := lin(e)
		if li < 0 {
			li = 0
		}
		if li >= elems {
			li = elems - 1
		}
		return e.vm.PageOf(base + li*ir.ElemSize)
	}
	npages := func(e *Env) int64 {
		lastPage := e.vm.PageOf(base + elems*ir.ElemSize - 1)
		n := pagesFn(e)
		p := firstPage(e)
		if p+n-1 > lastPage {
			n = lastPage - p + 1
		}
		return n
	}
	return firstPage, npages, lcost + pcost + 2*costArith
}

// linearIndex compiles a multi-dimensional subscript to a linear element
// index, without bounds checks (hint path only).
func (c *compiler) linearIndex(arr *ir.Array, idx []ir.IExpr) (iFn, int64) {
	if len(idx) != len(arr.Strides) {
		c.fail("array %s: %d subscripts for %d dims", arr.Name, len(idx), len(arr.Strides))
		return func(*Env) int64 { return 0 }, 0
	}
	fns := make([]iFn, len(idx))
	var cost int64
	for i, ix := range idx {
		f, k := c.iexpr(ix)
		fns[i] = f
		cost += k + costArith
	}
	strides := arr.Strides
	return func(e *Env) int64 {
		var li int64
		for i, f := range fns {
			li += f(e) * strides[i]
		}
		return li
	}, cost
}

// addr compiles a bounds-checked element address (the application path).
func (c *compiler) addr(arr *ir.Array, idx []ir.IExpr) (iFn, int64) {
	if len(idx) != len(arr.Strides) {
		c.fail("array %s: %d subscripts for %d dims", arr.Name, len(idx), len(arr.Strides))
		return func(*Env) int64 { return 0 }, 0
	}
	fns := make([]iFn, len(idx))
	var cost int64
	for i, ix := range idx {
		f, k := c.iexpr(ix)
		fns[i] = f
		cost += k + costArith
	}
	name := arr.Name
	dims := arr.Dims
	strides := arr.Strides
	base := arr.Base
	return func(e *Env) int64 {
		var li int64
		for i, f := range fns {
			v := f(e)
			if v < 0 || v >= dims[i] {
				panic(fmt.Sprintf("exec: %s subscript %d out of range [0,%d) in dim %d", name, v, dims[i], i))
			}
			li += v * strides[i]
		}
		return base + li*ir.ElemSize
	}, cost
}

func (c *compiler) iexpr(x ir.IExpr) (iFn, int64) {
	switch e := x.(type) {
	case ir.IConst:
		v := e.Val
		return func(*Env) int64 { return v }, 0
	case ir.ISlot:
		s := e.Slot
		return func(e *Env) int64 { return e.Ints[s] }, costArith
	case ir.IBin:
		a, ac := c.iexpr(e.A)
		b, bc := c.iexpr(e.B)
		cost := ac + bc + costArith
		switch e.Op {
		case ir.IAdd:
			return func(e *Env) int64 { return a(e) + b(e) }, cost
		case ir.ISub:
			return func(e *Env) int64 { return a(e) - b(e) }, cost
		case ir.IMul:
			return func(e *Env) int64 { return a(e) * b(e) }, cost
		case ir.IDiv:
			return func(e *Env) int64 { return a(e) / b(e) }, cost
		case ir.IMod:
			return func(e *Env) int64 { return a(e) % b(e) }, cost
		case ir.IShl:
			return func(e *Env) int64 { return a(e) << uint(b(e)) }, cost
		case ir.IShr:
			return func(e *Env) int64 { return a(e) >> uint(b(e)) }, cost
		case ir.IMin:
			return func(e *Env) int64 {
				x, y := a(e), b(e)
				if x < y {
					return x
				}
				return y
			}, cost
		case ir.IMax:
			return func(e *Env) int64 {
				x, y := a(e), b(e)
				if x > y {
					return x
				}
				return y
			}, cost
		}
		c.fail("unknown int op %d", e.Op)
	case ir.ILoad:
		addr, acost := c.addr(e.Arr, e.Idx)
		if c.prof != nil {
			if fn, ok := c.prof.loadI(e.Arr, e.Idx, addr); ok {
				return fn, acost + costLoad
			}
		}
		return func(e *Env) int64 { return e.vm.LoadI64(addr(e)) }, acost + costLoad
	case ir.IFromF:
		f, fc := c.fexpr(e.X)
		return func(e *Env) int64 { return int64(f(e)) }, fc + costArith
	}
	c.fail("unknown int expr %T", x)
	return func(*Env) int64 { return 0 }, 0
}

func (c *compiler) fexpr(x ir.FExpr) (fFn, int64) {
	switch e := x.(type) {
	case ir.FConst:
		v := e.Val
		return func(*Env) float64 { return v }, 0
	case ir.FScalar:
		s := e.Slot
		return func(e *Env) float64 { return e.Floats[s] }, costArith
	case ir.FLoad:
		addr, acost := c.addr(e.Arr, e.Idx)
		if c.prof != nil {
			if fn, ok := c.prof.loadF(e.Arr, e.Idx, addr); ok {
				return fn, acost + costLoad
			}
		}
		return func(e *Env) float64 { return e.vm.LoadF64(addr(e)) }, acost + costLoad
	case ir.FBin:
		a, ac := c.fexpr(e.A)
		b, bc := c.fexpr(e.B)
		cost := ac + bc + costArith
		switch e.Op {
		case ir.FAdd:
			return func(e *Env) float64 { return a(e) + b(e) }, cost
		case ir.FSub:
			return func(e *Env) float64 { return a(e) - b(e) }, cost
		case ir.FMul:
			return func(e *Env) float64 { return a(e) * b(e) }, cost
		case ir.FDiv:
			return func(e *Env) float64 { return a(e) / b(e) }, cost
		case ir.FMinOp:
			return func(e *Env) float64 {
				x, y := a(e), b(e)
				if x < y {
					return x
				}
				return y
			}, cost
		case ir.FMaxOp:
			return func(e *Env) float64 {
				x, y := a(e), b(e)
				if x > y {
					return x
				}
				return y
			}, cost
		}
		c.fail("unknown float op %d", e.Op)
	case ir.FNeg:
		a, ac := c.fexpr(e.X)
		return func(e *Env) float64 { return -a(e) }, ac + costArith
	case ir.FromInt:
		a, ac := c.iexpr(e.X)
		return func(e *Env) float64 { return float64(a(e)) }, ac + costArith
	case ir.FCall:
		return c.call(e)
	}
	c.fail("unknown float expr %T", x)
	return func(*Env) float64 { return 0 }, 0
}

func (c *compiler) bexpr(x ir.BExpr) (bFn, int64) {
	switch e := x.(type) {
	case ir.CmpI:
		a, ac := c.iexpr(e.A)
		b, bc := c.iexpr(e.B)
		op := e.Op
		return func(e *Env) bool { return cmpI(op, a(e), b(e)) }, ac + bc + costArith
	case ir.CmpF:
		a, ac := c.fexpr(e.A)
		b, bc := c.fexpr(e.B)
		op := e.Op
		return func(e *Env) bool { return cmpF(op, a(e), b(e)) }, ac + bc + costArith
	case ir.And:
		a, ac := c.bexpr(e.A)
		b, bc := c.bexpr(e.B)
		return func(e *Env) bool { return a(e) && b(e) }, ac + bc + costArith
	case ir.Or:
		a, ac := c.bexpr(e.A)
		b, bc := c.bexpr(e.B)
		return func(e *Env) bool { return a(e) || b(e) }, ac + bc + costArith
	case ir.Not:
		a, ac := c.bexpr(e.X)
		return func(e *Env) bool { return !a(e) }, ac + costArith
	}
	c.fail("unknown bool expr %T", x)
	return func(*Env) bool { return false }, 0
}

func cmpI(op ir.CmpOp, a, b int64) bool {
	switch op {
	case ir.Lt:
		return a < b
	case ir.Le:
		return a <= b
	case ir.Gt:
		return a > b
	case ir.Ge:
		return a >= b
	case ir.Eq:
		return a == b
	default:
		return a != b
	}
}

func cmpF(op ir.CmpOp, a, b float64) bool {
	switch op {
	case ir.Lt:
		return a < b
	case ir.Le:
		return a <= b
	case ir.Gt:
		return a > b
	case ir.Ge:
		return a >= b
	case ir.Eq:
		return a == b
	default:
		return a != b
	}
}
