// Page-run loop specialization: the executor's host-side fast path.
//
// An innermost loop whose body is straight-line assignments with affine,
// constant-stride subscripts touches each array through runs of
// consecutive (or constant-stride) words on the same page. The slow path
// pays a VM Load/Store call per element; the fast path pays one residency
// check per page run and iterates raw frame-word slices in between.
//
// Equivalence with the per-element path is exact, not approximate, and
// rests on one property of the simulator: simulated time only advances at
// kernel crossings (faults and hint system calls), and eligible bodies
// contain no hints. The driver therefore executes the FIRST iteration of
// every chunk through the ordinary compiled body — faults, fault
// classification, and charge points land exactly where they always did —
// and only the remaining iterations, which by construction hit pages the
// first iteration just proved hot, run on spans. Their referenced/dirty
// marking is batched through vm.PageSpan (indistinguishable from
// per-access marking, since nothing can observe page state between
// crossings) and their user-op charges are batched through one AddUserOps
// call (pending ops are a plain sum). If any page turns out not to be hot
// — evicted by a fault earlier in the same iteration — the chunk aborts
// and the per-element path takes over, faulting exactly where the slow
// path would. Span acquisition follows the body's first-touch order so an
// abort leaves precisely the marks the slow path's next iteration would
// have made before its first fault.
package exec

import (
	"math"

	"repro/internal/ir"
)

// runSite is the per-execution state of one specialized array access: the
// frame words of the page the current chunk stays on, the word index of
// the current iteration's element, its per-iteration advance, and the
// incrementally-maintained element byte address the driver sizes chunks
// from.
type runSite struct {
	span  []uint64
	pos   int64
	delta int64
	addr  int64
}

// fastSite is the compile-time description of one access site, in the
// body's first-touch order. Subscripts are affine in the loop variable
// with loop-invariant remainder (site() rejects anything else), so the
// driver evaluates idxFns once per entry into the specialized region and
// afterwards maintains each dimension's subscript value incrementally in
// e.subs — bounds checks and chunk-exit checks become integer compares
// on maintained state instead of closure-tree evaluations.
type fastSite struct {
	id      int
	subBase int // first slot of this site's subscripts in Env.subs
	write   bool
	delta   int64   // word advance per iteration: Σ coeff_d·stride_d · step
	base    int64   // array base byte address
	strides []int64 // element strides per dimension
	cds     []int64 // per-dimension subscript advance: coeff_d · step
	idxFns  []iFn   // per-dimension subscript values; side-effect free
	dims    []int64
}

// fastLoop tries to compile l as a page-run specialized loop. It returns
// ok=false — leaving the compiler free to lower l normally — when the body
// contains control flow, hints, indirect or non-affine subscripts, an
// assignment to the loop variable, or a stride of a page or more.
func (c *compiler) fastLoop(l *ir.Loop, lo, hi iFn, head int64) (stmtFn, bool) {
	banned := make(map[int]bool)
	for _, s := range l.Body {
		switch x := s.(type) {
		case ir.AssignF, ir.AssignI, ir.SetScalarF:
		case ir.SetScalarI:
			if x.Slot == l.Slot {
				return nil, false // body rewrites the induction variable
			}
			banned[x.Slot] = true
		default:
			return nil, false // control flow or hints: per-element only
		}
	}

	rc := &runCompiler{c: c, slot: l.Slot, step: l.Step, banned: banned, ok: true}
	siteLo := c.nSites
	subLo := c.nSubs
	runFns := make([]stmtFn, 0, len(l.Body))
	perIter := int64(costLoop)
	for _, s := range l.Body {
		fn, cost := rc.stmt(s)
		if !rc.ok {
			c.nSites, c.nSubs = siteLo, subLo
			return nil, false
		}
		runFns = append(runFns, fn)
		perIter += cost
	}
	if len(rc.sites) == 0 {
		c.nSites, c.nSubs = siteLo, subLo // pure scalar loop: nothing to specialize
		return nil, false
	}

	sites := rc.sites
	slowBody := c.stmts(l.Body)
	slot, step := l.Slot, l.Step
	pageWords := c.pageWords
	byteMask := pageWords*ir.ElemSize - 1
	siteHi := c.nSites
	runBody := runFns[0]
	if len(runFns) > 1 {
		fns := runFns
		runBody = func(e *Env) {
			for _, f := range fns {
				f(e)
			}
		}
	}

	return func(e *Env) {
		e.vm.AddUserOps(head)
		h := hi(e)
		// Per-site element addresses and per-dimension subscript values,
		// maintained incrementally: each is affine in the loop variable
		// (every other subscript input is loop-invariant by eligibility),
		// so after one evaluation of the subscript closures the driver
		// advances plain integers per iteration and every bounds check is
		// a compare on maintained state — no closure-tree evaluation on
		// the steady-state path.
		addrsValid := false
		for v := lo(e); v < h; v += step {
			e.Ints[slot] = v
			e.vm.AddUserOps(costLoop)
			k := (h - v + step - 1) / step
			if k < 2 {
				slowBody(e)
				continue
			}

			if !addrsValid {
				for _, sp := range sites {
					var li int64
					for d, fn := range sp.idxFns {
						ix := fn(e)
						e.subs[sp.subBase+d] = ix
						li += ix * sp.strides[d]
					}
					e.sites[sp.id].addr = sp.base + li*ir.ElemSize
				}
				addrsValid = true
			}

			// Bounds at this iteration. A failure means the body itself
			// will fault on this iteration's subscripts: the per-element
			// path runs and panics at its exact site with the body's
			// partial effects in place. (The maintained address is only
			// meaningful while subscripts are in bounds, hence the
			// re-seed flag.)
			ok := true
		boundsV:
			for _, sp := range sites {
				for d, dim := range sp.dims {
					if ix := e.subs[sp.subBase+d]; ix < 0 || ix >= dim {
						ok = false
						break boundsV
					}
				}
			}
			if !ok {
				addrsValid = false
				slowBody(e)
				continue
			}

			// Size the chunk: iterations until any site leaves its page,
			// capped by the iterations left (including this one).
			for _, sp := range sites {
				off := (e.sites[sp.id].addr & byteMask) >> 3
				switch {
				case sp.delta > 0:
					if kk := (pageWords-1-off)/sp.delta + 1; kk < k {
						k = kk
					}
				case sp.delta < 0:
					if kk := off/(-sp.delta) + 1; kk < k {
						k = kk
					}
				}
			}
			if k < 2 {
				slowBody(e)
				advanceSites(e, sites, 1)
				continue
			}

			// Chunk-exit bounds: affine subscripts are monotone in v, so
			// with this iteration checked above, checking the chunk's
			// last iteration covers every iteration in between.
		bounds:
			for _, sp := range sites {
				for d, dim := range sp.dims {
					if ix := e.subs[sp.subBase+d] + sp.cds[d]*(k-1); ix < 0 || ix >= dim {
						ok = false
						break bounds
					}
				}
			}
			if !ok {
				slowBody(e)
				advanceSites(e, sites, 1)
				continue
			}

			// Acquire spans in first-touch order. A span acquires only a
			// hot page and applies exactly the page marks the chunk's
			// accesses would (referenced, plus dirty for writes), so on
			// success the whole chunk — first iteration included — runs
			// on spans: a hot-page access has no effect beyond those
			// marks. On failure at site i the sites before i carry
			// exactly the marks the slow path applies before faulting at
			// site i (page-granular and idempotent), and the per-element
			// body runs this iteration to fault, classify, and charge
			// precisely as the slow path does.
			for _, sp := range sites {
				addr := e.sites[sp.id].addr
				first := (addr & byteMask) >> 3
				loW, n := first, sp.delta*(k-1)+1
				if sp.delta < 0 {
					loW, n = first+sp.delta*(k-1), -sp.delta*(k-1)+1
				}
				base := addr &^ byteMask
				var span []uint64
				if sp.write {
					span, _, ok = e.vm.PageSpanW(base+loW*ir.ElemSize, n)
				} else {
					span, _, ok = e.vm.PageSpan(base+loW*ir.ElemSize, n)
				}
				if !ok {
					break
				}
				st := &e.sites[sp.id]
				st.span, st.pos, st.delta = span, first-sp.delta, sp.delta
			}
			if !ok {
				slowBody(e)
				advanceSites(e, sites, 1)
				continue
			}

			// Commit: charge the whole chunk in one batch (costLoop for
			// this iteration is already charged; the pending-ops sum a
			// crossing observes is what matters, and no crossing can
			// occur inside the chunk) and run every iteration on spans.
			e.vm.AddUserOps(k*perIter - costLoop)
			for j := int64(1); ; j++ {
				for i := siteLo; i < siteHi; i++ {
					st := &e.sites[i]
					st.pos += st.delta
				}
				runBody(e)
				if j == k {
					break
				}
				v += step
				e.Ints[slot] = v
			}
			for i := siteLo; i < siteHi; i++ {
				e.sites[i].span = nil // spans die with the chunk
			}
			advanceSites(e, sites, k)
		}
	}, true
}

// advanceSites moves every site's maintained address and per-dimension
// subscript values forward by n iterations.
func advanceSites(e *Env, sites []*fastSite, n int64) {
	for _, sp := range sites {
		e.sites[sp.id].addr += sp.delta * ir.ElemSize * n
		for d, c := range sp.cds {
			e.subs[sp.subBase+d] += c * n
		}
	}
}

// runCompiler lowers an eligible loop body to span-indexed closures,
// registering an access site for every array reference in evaluation
// order and mirroring the slow path's cost accounting exactly (the
// formulas must match compiler.stmt / fexpr / iexpr).
type runCompiler struct {
	c      *compiler
	slot   int
	step   int64
	banned map[int]bool // int slots the body assigns
	ok     bool
	sites  []*fastSite
}

func (rc *runCompiler) reject() {
	rc.ok = false
}

// site registers an access site for arr[idx...], or rejects the loop if
// the subscripts are not affine in the loop variable with loop-invariant
// remainder, or the stride reaches a full page.
func (rc *runCompiler) site(arr *ir.Array, idx []ir.IExpr, write bool) *fastSite {
	if len(idx) != len(arr.Strides) {
		rc.reject() // the slow compile reports the arity error
		return nil
	}
	var elemCoeff int64
	idxFns := make([]iFn, len(idx))
	cds := make([]int64, len(idx))
	for d, ix := range idx {
		coeff, ok := rc.affineCoeff(ix)
		if !ok {
			rc.reject()
			return nil
		}
		elemCoeff += coeff * arr.Strides[d]
		cds[d] = coeff * rc.step
		idxFns[d], _ = rc.c.iexpr(ix)
	}
	delta := elemCoeff * rc.step
	if delta >= rc.c.pageWords || -delta >= rc.c.pageWords {
		rc.reject() // every chunk would be a single iteration
		return nil
	}
	s := &fastSite{
		id:      rc.c.nSites,
		subBase: rc.c.nSubs,
		write:   write,
		delta:   delta,
		base:    arr.Base,
		strides: arr.Strides,
		cds:     cds,
		idxFns:  idxFns,
		dims:    arr.Dims,
	}
	rc.c.nSites++
	rc.c.nSubs += len(idx)
	rc.sites = append(rc.sites, s)
	return s
}

// affineCoeff reports whether x = coeff·var + rest with rest invariant
// across the loop, and returns the compile-time coefficient. Indirect
// (ILoad) and float-derived (IFromF) subscripts are never affine; slots
// the body assigns are not invariant.
func (rc *runCompiler) affineCoeff(x ir.IExpr) (int64, bool) {
	switch e := x.(type) {
	case ir.IConst:
		return 0, true
	case ir.ISlot:
		if e.Slot == rc.slot {
			return 1, true
		}
		if rc.banned[e.Slot] {
			return 0, false
		}
		return 0, true
	case ir.IBin:
		ca, oka := rc.affineCoeff(e.A)
		cb, okb := rc.affineCoeff(e.B)
		if !oka || !okb {
			return 0, false
		}
		switch e.Op {
		case ir.IAdd:
			return ca + cb, true
		case ir.ISub:
			return ca - cb, true
		case ir.IMul:
			if va, ok := constVal(e.A); ok {
				return va * cb, true
			}
			if vb, ok := constVal(e.B); ok {
				return ca * vb, true
			}
			return 0, ca == 0 && cb == 0
		default:
			// Division, modulus, shifts, min/max preserve affine form
			// only when both sides are loop-invariant.
			return 0, ca == 0 && cb == 0
		}
	}
	return 0, false
}

// constVal folds compile-time integer constants (for stride extraction).
func constVal(x ir.IExpr) (int64, bool) {
	switch e := x.(type) {
	case ir.IConst:
		return e.Val, true
	case ir.IBin:
		va, oka := constVal(e.A)
		vb, okb := constVal(e.B)
		if !oka || !okb {
			return 0, false
		}
		switch e.Op {
		case ir.IAdd:
			return va + vb, true
		case ir.ISub:
			return va - vb, true
		case ir.IMul:
			return va * vb, true
		}
	}
	return 0, false
}

// stmt lowers one eligible statement. Costs mirror compiler.stmt.
func (rc *runCompiler) stmt(s ir.Stmt) (stmtFn, int64) {
	switch x := s.(type) {
	case ir.AssignF:
		rhs, rcost := rc.fexpr(x.RHS) // RHS sites first: evaluation order
		_, acost := rc.c.addr(x.Arr, x.Idx)
		st := rc.site(x.Arr, x.Idx, true)
		if !rc.ok {
			return nil, 0
		}
		id := st.id
		return func(e *Env) {
			v := rhs(e)
			s := &e.sites[id]
			s.span[s.pos] = math.Float64bits(v)
		}, acost + rcost + costStore
	case ir.AssignI:
		rhs, rcost := rc.iexpr(x.RHS)
		_, acost := rc.c.addr(x.Arr, x.Idx)
		st := rc.site(x.Arr, x.Idx, true)
		if !rc.ok {
			return nil, 0
		}
		id := st.id
		return func(e *Env) {
			v := rhs(e)
			s := &e.sites[id]
			s.span[s.pos] = uint64(v)
		}, acost + rcost + costStore
	case ir.SetScalarF:
		rhs, rcost := rc.fexpr(x.RHS)
		if !rc.ok {
			return nil, 0
		}
		slot := x.Slot
		return func(e *Env) { e.Floats[slot] = rhs(e) }, rcost + costArith
	case ir.SetScalarI:
		rhs, rcost := rc.iexpr(x.RHS)
		if !rc.ok {
			return nil, 0
		}
		slot := x.Slot
		return func(e *Env) { e.Ints[slot] = rhs(e) }, rcost + costArith
	}
	rc.reject()
	return nil, 0
}

var zeroF fFn = func(*Env) float64 { return 0 }
var zeroI iFn = func(*Env) int64 { return 0 }

// fexpr mirrors compiler.fexpr with array loads routed through spans.
// Leaves that cannot contain loads delegate to the slow compiler.
func (rc *runCompiler) fexpr(x ir.FExpr) (fFn, int64) {
	switch e := x.(type) {
	case ir.FConst, ir.FScalar:
		return rc.c.fexpr(x)
	case ir.FLoad:
		_, acost := rc.c.addr(e.Arr, e.Idx)
		st := rc.site(e.Arr, e.Idx, false)
		if !rc.ok {
			return zeroF, 0
		}
		id := st.id
		return func(e *Env) float64 {
			s := &e.sites[id]
			return math.Float64frombits(s.span[s.pos])
		}, acost + costLoad
	case ir.FBin:
		a, ac := rc.fexpr(e.A)
		b, bc := rc.fexpr(e.B)
		cost := ac + bc + costArith
		switch e.Op {
		case ir.FAdd:
			return func(e *Env) float64 { return a(e) + b(e) }, cost
		case ir.FSub:
			return func(e *Env) float64 { return a(e) - b(e) }, cost
		case ir.FMul:
			return func(e *Env) float64 { return a(e) * b(e) }, cost
		case ir.FDiv:
			return func(e *Env) float64 { return a(e) / b(e) }, cost
		case ir.FMinOp:
			return func(e *Env) float64 {
				x, y := a(e), b(e)
				if x < y {
					return x
				}
				return y
			}, cost
		case ir.FMaxOp:
			return func(e *Env) float64 {
				x, y := a(e), b(e)
				if x > y {
					return x
				}
				return y
			}, cost
		}
		rc.reject()
	case ir.FNeg:
		a, ac := rc.fexpr(e.X)
		return func(e *Env) float64 { return -a(e) }, ac + costArith
	case ir.FromInt:
		a, ac := rc.iexpr(e.X)
		return func(e *Env) float64 { return float64(a(e)) }, ac + costArith
	case ir.FCall:
		return rc.c.callWith(e, rc.fexpr)
	}
	rc.reject()
	return zeroF, 0
}

// iexpr mirrors compiler.iexpr with array loads routed through spans.
func (rc *runCompiler) iexpr(x ir.IExpr) (iFn, int64) {
	switch e := x.(type) {
	case ir.IConst, ir.ISlot:
		return rc.c.iexpr(x)
	case ir.ILoad:
		_, acost := rc.c.addr(e.Arr, e.Idx)
		st := rc.site(e.Arr, e.Idx, false)
		if !rc.ok {
			return zeroI, 0
		}
		id := st.id
		return func(e *Env) int64 {
			s := &e.sites[id]
			return int64(s.span[s.pos])
		}, acost + costLoad
	case ir.IBin:
		a, ac := rc.iexpr(e.A)
		b, bc := rc.iexpr(e.B)
		cost := ac + bc + costArith
		switch e.Op {
		case ir.IAdd:
			return func(e *Env) int64 { return a(e) + b(e) }, cost
		case ir.ISub:
			return func(e *Env) int64 { return a(e) - b(e) }, cost
		case ir.IMul:
			return func(e *Env) int64 { return a(e) * b(e) }, cost
		case ir.IDiv:
			return func(e *Env) int64 { return a(e) / b(e) }, cost
		case ir.IMod:
			return func(e *Env) int64 { return a(e) % b(e) }, cost
		case ir.IShl:
			return func(e *Env) int64 { return a(e) << uint(b(e)) }, cost
		case ir.IShr:
			return func(e *Env) int64 { return a(e) >> uint(b(e)) }, cost
		case ir.IMin:
			return func(e *Env) int64 {
				x, y := a(e), b(e)
				if x < y {
					return x
				}
				return y
			}, cost
		case ir.IMax:
			return func(e *Env) int64 {
				x, y := a(e), b(e)
				if x > y {
					return x
				}
				return y
			}, cost
		}
		rc.reject()
	case ir.IFromF:
		f, fc := rc.fexpr(e.X)
		return func(e *Env) int64 { return int64(f(e)) }, fc + costArith
	}
	rc.reject()
	return zeroI, 0
}
