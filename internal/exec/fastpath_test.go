package exec

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/ir"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

// buildWith is build with explicit compilation options.
func buildWith(t testing.TB, prog *ir.Program, frames int64, opts Options) (*sim.Clock, *vm.VM, *stripefs.File, *Machine) {
	t.Helper()
	p := hw.Default()
	p.MemoryBytes = frames * p.PageSize
	c := sim.NewClock()
	fs := stripefs.New(c, p, nil)
	if err := prog.Resolve(p.PageSize); err != nil {
		t.Fatal(err)
	}
	pages := prog.TotalBytes(p.PageSize) / p.PageSize
	if pages == 0 {
		pages = 1
	}
	file, err := fs.Create(prog.Name, pages)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(c, p, file)
	layer := rt.Register(v, true)
	m, err := NewWith(prog, v, layer, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, v, file, m
}

// runDifferential executes prog twice on fresh systems — fast path on and
// off — with identical seeding, and asserts the two simulations are
// tick-identical: same scalars, same memory image, same time breakdown,
// same event counts.
func runDifferential(t *testing.T, mk func() *ir.Program, frames int64,
	seed func(*stripefs.File, *ir.Program)) (*Env, *vm.VM) {
	t.Helper()
	return runDifferentialSites(t, mk, frames, seed, true)
}

// runDifferentialSites is runDifferential with the vacuity check made
// optional, for nests (zero-trip, control flow, scalar-only) where the
// interesting path is the kernel bytecode rather than a span driver.
func runDifferentialSites(t *testing.T, mk func() *ir.Program, frames int64,
	seed func(*stripefs.File, *ir.Program), requireSites bool) (*Env, *vm.VM) {
	t.Helper()
	progFast, progSlow := mk(), mk()
	_, vFast, fileFast, mFast := buildWith(t, progFast, frames, Options{})
	_, vSlow, fileSlow, mSlow := buildWith(t, progSlow, frames, Options{NoFastPath: true})
	if requireSites && mFast.SpecializedSites() == 0 {
		t.Fatal("fast machine specialized nothing — differential test is vacuous")
	}
	if mSlow.SpecializedSites() != 0 {
		t.Fatal("NoFastPath machine has specialized sites")
	}
	if seed != nil {
		seed(fileFast, progFast)
		seed(fileSlow, progSlow)
	}
	envFast := mFast.Run()
	vFast.Finish()
	envSlow := mSlow.Run()
	vSlow.Finish()

	for i, x := range envFast.Ints {
		if envSlow.Ints[i] != x {
			t.Errorf("int slot %d diverged: fast %d, slow %d", i, x, envSlow.Ints[i])
		}
	}
	for i, f := range envFast.Floats {
		if envSlow.Floats[i] != f {
			t.Errorf("float slot %d diverged: fast %v, slow %v", i, f, envSlow.Floats[i])
		}
	}
	ps := hw.Default().PageSize
	for addr, end := int64(0), vFast.AllocatedPages()*ps; addr < end; addr += 8 {
		if a, b := vFast.Peek(addr), vSlow.Peek(addr); a != b {
			t.Fatalf("memory diverged at %#x: fast %#x, slow %#x", addr, a, b)
		}
	}
	if a, b := vFast.Times(), vSlow.Times(); a != b {
		t.Errorf("time breakdown diverged:\nfast %+v\nslow %+v", a, b)
	}
	if a, b := vFast.Stats(), vSlow.Stats(); a != b {
		t.Errorf("vm stats diverged:\nfast %+v\nslow %+v", a, b)
	}
	if err := vFast.CheckInvariants(); err != nil {
		t.Errorf("fast run invariants: %v", err)
	}
	return envFast, vFast
}

func TestFastPathForwardSum(t *testing.T) {
	const n = 8192 // 16 pages, out of core at 8 frames
	mk := func() *ir.Program {
		p, _ := sumProgram(n)
		return p
	}
	seed := func(f *stripefs.File, p *ir.Program) {
		SeedF64(f, hw.Default().PageSize, p.Arrays[0], func(i int64) float64 { return float64(i) })
	}
	env, _ := runDifferential(t, mk, 8, seed)
	want := float64(n*(n-1)) / 2
	found := false
	for _, f := range env.Floats {
		if f == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("sum %v not found in float slots %v", want, env.Floats)
	}
}

func TestFastPathNegativeStride(t *testing.T) {
	// s += a[n-1-i]: the access walks backwards through pages.
	const n = 4096
	mk := func() *ir.Program {
		p := ir.NewProgram("revsum")
		np := p.NewParam("n", n, true)
		a := p.NewArrayF("a", np)
		s := p.NewScalarF("s")
		i := p.NewLoopVar("i")
		p.Body = []ir.Stmt{
			ir.For(i, ir.Int(0), np, 1,
				ir.SetF(s, ir.AddF(ir.FScalar{Slot: s.Slot, Name: s.Name},
					ir.LoadF(a, ir.SubI(ir.SubI(np, ir.Int(1)), i)))),
			),
		}
		return p
	}
	seed := func(f *stripefs.File, p *ir.Program) {
		SeedF64(f, hw.Default().PageSize, p.Arrays[0], func(i int64) float64 { return float64(i % 97) })
	}
	runDifferential(t, mk, 8, seed)
}

func TestFastPathStridedAndMultiStatement(t *testing.T) {
	// b[2*i] = a[2*i] + a[2*i+1]; s += b[2*i]. Strided loads and a store
	// in one body, with an inter-statement dependency through memory.
	const n = 4096
	mk := func() *ir.Program {
		p := ir.NewProgram("strided")
		np := p.NewParam("n", n, true)
		a := p.NewArrayF("a", np)
		b := p.NewArrayF("b", np)
		s := p.NewScalarF("s")
		i := p.NewLoopVar("i")
		two := func(x ir.IExpr) ir.IExpr { return ir.MulI(x, ir.Int(2)) }
		p.Body = []ir.Stmt{
			ir.For(i, ir.Int(0), ir.DivI(np, ir.Int(2)), 1,
				ir.StoreF(b, []ir.IExpr{two(i)},
					ir.AddF(ir.LoadF(a, two(i)), ir.LoadF(a, ir.AddI(two(i), ir.Int(1))))),
				ir.SetF(s, ir.AddF(ir.FScalar{Slot: s.Slot, Name: s.Name},
					ir.LoadF(b, two(i)))),
			),
		}
		return p
	}
	seed := func(f *stripefs.File, p *ir.Program) {
		SeedF64(f, hw.Default().PageSize, p.Arrays[0], func(i int64) float64 { return float64(i%13) / 7 })
	}
	runDifferential(t, mk, 8, seed)
}

func TestFastPathCrossIterationDependency(t *testing.T) {
	// a[i+1] = a[i]: each iteration reads the previous one's store, so the
	// seed value must propagate through the whole array — including across
	// chunk boundaries, where the read and write sites split pages.
	const n = 2048 // 4 pages
	mk := func() *ir.Program {
		p := ir.NewProgram("chain")
		np := p.NewParam("n", n, true)
		a := p.NewArrayF("a", np)
		i := p.NewLoopVar("i")
		p.Body = []ir.Stmt{
			ir.For(i, ir.Int(0), ir.SubI(np, ir.Int(1)), 1,
				ir.StoreF(a, []ir.IExpr{ir.AddI(i, ir.Int(1))}, ir.LoadF(a, i)),
			),
		}
		return p
	}
	seed := func(f *stripefs.File, p *ir.Program) {
		SeedF64(f, hw.Default().PageSize, p.Arrays[0], func(i int64) float64 {
			if i == 0 {
				return 7
			}
			return float64(-i)
		})
	}
	_, v := runDifferential(t, mk, 8, seed)
	ref := mk()
	if err := ref.Resolve(hw.Default().PageSize); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int64{1, 511, 512, 1024, n - 1} {
		if got := v.PeekF64(ref.Arrays[0].Base + i*ir.ElemSize); got != 7 {
			t.Fatalf("a[%d] = %v, want 7 (store-to-load chain broken)", i, got)
		}
	}
}

func TestFastPathTwoDimensional(t *testing.T) {
	// Row-major traversal of a 2-D array: subscripts affine in the inner
	// variable with an outer-loop-invariant row term.
	mk := func() *ir.Program {
		p := ir.NewProgram("md2")
		ni := p.NewParam("ni", 64, true)
		nj := p.NewParam("nj", 96, true)
		cArr := p.NewArrayF("c", ni, nj)
		i := p.NewLoopVar("i")
		j := p.NewLoopVar("j")
		p.Body = []ir.Stmt{
			ir.For(i, ir.Int(0), ni, 1,
				ir.For(j, ir.Int(0), nj, 1,
					ir.StoreF(cArr, []ir.IExpr{i, j},
						ir.AddF(ir.MulF(ir.FromInt{X: i}, ir.Flt(10)), ir.FromInt{X: j})),
				),
			),
		}
		return p
	}
	_, v := runDifferential(t, mk, 8, nil)
	arr := mk()
	if err := arr.Resolve(hw.Default().PageSize); err != nil {
		t.Fatal(err)
	}
	cArr := arr.Arrays[0]
	for _, ij := range [][2]int64{{0, 0}, {13, 57}, {63, 95}} {
		addr := cArr.Base + (ij[0]*96+ij[1])*ir.ElemSize
		if got, want := v.PeekF64(addr), float64(ij[0]*10+ij[1]); got != want {
			t.Fatalf("c[%d][%d] = %v, want %v", ij[0], ij[1], got, want)
		}
	}
}

func TestFastPathFallbacks(t *testing.T) {
	// Loops the specializer must refuse: indirect subscripts, control
	// flow in the body, induction-variable assignment, and page-or-larger
	// strides. Each program's only loop is ineligible, so the machine must
	// report zero specialized sites — and still run correctly.
	pageElems := hw.Default().PageSize / ir.ElemSize

	cases := []struct {
		name string
		mk   func() *ir.Program
	}{
		{"indirect", func() *ir.Program {
			p := ir.NewProgram("ind")
			np := p.NewParam("n", 512, true)
			key := p.NewArrayI("key", np)
			a := p.NewArrayF("a", np)
			s := p.NewScalarF("s")
			i := p.NewLoopVar("i")
			p.Body = []ir.Stmt{
				ir.For(i, ir.Int(0), np, 1,
					ir.SetF(s, ir.AddF(ir.FScalar{Slot: s.Slot, Name: s.Name},
						ir.LoadF(a, ir.LoadI(key, i)))),
				),
			}
			return p
		}},
		{"control-flow", func() *ir.Program {
			p := ir.NewProgram("ctl")
			np := p.NewParam("n", 512, true)
			a := p.NewArrayF("a", np)
			cnt := p.NewScalarI("cnt")
			i := p.NewLoopVar("i")
			p.Body = []ir.Stmt{
				ir.For(i, ir.Int(0), np, 1,
					ir.If{
						Cond: ir.CmpF{Op: ir.Gt, A: ir.LoadF(a, i), B: ir.Flt(0.5)},
						Then: []ir.Stmt{ir.SetI(cnt, ir.AddI(cnt, ir.Int(1)))},
					},
				),
			}
			return p
		}},
		{"page-stride", func() *ir.Program {
			p := ir.NewProgram("pgstride")
			np := p.NewParam("n", 4*pageElems, true)
			a := p.NewArrayF("a", np)
			s := p.NewScalarF("s")
			i := p.NewLoopVar("i")
			p.Body = []ir.Stmt{
				ir.For(i, ir.Int(0), ir.Int(4), 1,
					ir.SetF(s, ir.LoadF(a, ir.MulI(i, ir.Int(pageElems)))),
				),
			}
			return p
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, file, m := buildWith(t, tc.mk(), 64, Options{})
			if n := m.SpecializedSites(); n != 0 {
				t.Fatalf("ineligible loop specialized %d sites", n)
			}
			if tc.name == "indirect" {
				SeedI64(file, hw.Default().PageSize, m.prog.Arrays[0], func(i int64) int64 { return i % 512 })
			}
			m.Run() // must still execute correctly via the per-element path
		})
	}
}

func TestFastPathEngages(t *testing.T) {
	prog, _ := sumProgram(2000)
	_, _, _, m := build(t, prog, 64)
	if m.SpecializedSites() == 0 {
		t.Fatal("streaming sum loop did not specialize")
	}
	prog2, _ := sumProgram(2000)
	_, _, _, m2 := buildWith(t, prog2, 64, Options{NoFastPath: true})
	if m2.SpecializedSites() != 0 {
		t.Fatal("NoFastPath machine specialized sites")
	}
}

func TestFastPathBoundsPanicMidChunk(t *testing.T) {
	// The subscript leaves the array partway through what would be a
	// single page run: the violation must still panic (via the bounds
	// pre-check falling back to the per-element path).
	p := ir.NewProgram("oob2")
	np := p.NewParam("n", 100, true)
	a := p.NewArrayF("a", np)
	s := p.NewScalarF("s")
	i := p.NewLoopVar("i")
	p.Body = []ir.Stmt{
		ir.For(i, ir.Int(0), ir.Int(150), 1, // overruns a 100-element array in page 0
			ir.SetF(s, ir.LoadF(a, i)),
		),
	}
	_, _, _, m := buildWith(t, p, 64, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("mid-chunk out-of-bounds access did not panic")
		}
	}()
	m.Run()
}
