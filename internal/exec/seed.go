package exec

import (
	"math"

	"repro/internal/ir"
	"repro/internal/stripefs"
)

// SeedF64 pre-initializes a float64 array's backing file contents, page by
// page, with no simulated cost: the experiments run against
// "pre-initialized data sets" read from disk, as in the paper's modified
// benchmarks. gen receives the linear element index.
func SeedF64(file *stripefs.File, pageSize int64, arr *ir.Array, gen func(i int64) float64) {
	seed(file, pageSize, arr, func(i int64) uint64 { return math.Float64bits(gen(i)) })
}

// SeedI64 pre-initializes an int64 array's backing file contents.
func SeedI64(file *stripefs.File, pageSize int64, arr *ir.Array, gen func(i int64) int64) {
	seed(file, pageSize, arr, func(i int64) uint64 { return uint64(gen(i)) })
}

func seed(file *stripefs.File, pageSize int64, arr *ir.Array, gen func(i int64) uint64) {
	perPage := pageSize / ir.ElemSize
	buf := make([]uint64, perPage)
	firstPage := arr.Base / pageSize
	nPages := (arr.Elems*ir.ElemSize + pageSize - 1) / pageSize
	for p := int64(0); p < nPages; p++ {
		for k := int64(0); k < perPage; k++ {
			i := p*perPage + k
			var w uint64
			if i < arr.Elems {
				w = gen(i)
			}
			buf[k] = w
		}
		file.SetPageWords(firstPage+p, buf)
	}
}
