package nas

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/ir"
)

// smallScale keeps unit-test kernels quick; correctness is scale-free.
const smallScale = 0.05

// runApp executes an app at a scale under a config and validates it.
func runApp(t *testing.T, app *App, scale float64, cfg func(dataBytes int64) core.Config) *core.Result {
	t.Helper()
	prog := app.Build(scale)
	ps := hw.Default().PageSize
	if err := prog.Resolve(ps); err != nil {
		t.Fatalf("%s: resolve: %v", app.Name, err)
	}
	c := cfg(DataBytes(prog, ps))
	c.Seed = app.Seed
	res, err := core.Run(prog, c)
	if err != nil {
		t.Fatalf("%s: run: %v", app.Name, err)
	}
	if err := app.Check(prog, res.VM, res.Env); err != nil {
		t.Fatalf("%s: validation failed: %v", app.Name, err)
	}
	return res
}

// inCore gives the app far more memory than data: no paging pressure.
func inCore(dataBytes int64) core.Config {
	cfg := core.DefaultConfig(core.MachineFor(dataBytes, 0.25))
	cfg.Prefetch = false
	return cfg
}

// outOfCorePaged: data = 2× memory, plain paged VM.
func outOfCorePaged(dataBytes int64) core.Config {
	cfg := core.DefaultConfig(core.MachineFor(dataBytes, 2))
	cfg.Prefetch = false
	return cfg
}

// outOfCorePrefetch: data = 2× memory, compiler-inserted prefetching.
func outOfCorePrefetch(dataBytes int64) core.Config {
	return core.DefaultConfig(core.MachineFor(dataBytes, 2))
}

func TestSuiteHasEightApps(t *testing.T) {
	apps := Apps()
	if len(apps) != 8 {
		t.Fatalf("suite has %d apps, want 8", len(apps))
	}
	want := []string{"BUK", "CGM", "EMBAR", "FFT", "MGRID", "APPLU", "APPSP", "APPBT"}
	for i, name := range want {
		if apps[i].Name != name {
			t.Fatalf("app %d is %s, want %s", i, apps[i].Name, name)
		}
		if apps[i].Desc == "" {
			t.Fatalf("%s has no description", name)
		}
	}
	if ByName("CGM") == nil || ByName("nope") != nil {
		t.Fatal("ByName lookup broken")
	}
	if len(Names()) != 8 {
		t.Fatal("Names() wrong length")
	}
}

// Every kernel must validate in-core (fast, exercises pure semantics).
func TestAllAppsValidateInCore(t *testing.T) {
	for _, app := range Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			runApp(t, app, smallScale, inCore)
		})
	}
}

// The central correctness property of non-binding prefetching: original
// paged execution and compiler-transformed prefetching execution produce
// identical results out of core.
func TestAllAppsValidateOutOfCorePagedAndPrefetched(t *testing.T) {
	if testing.Short() {
		t.Skip("out-of-core validation is not short")
	}
	for _, app := range Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			runApp(t, app, smallScale, outOfCorePaged)
			runApp(t, app, smallScale, outOfCorePrefetch)
		})
	}
}

// Scaling must actually change the data-set size monotonically.
func TestBuildScalesData(t *testing.T) {
	ps := hw.Default().PageSize
	for _, app := range Apps() {
		small := app.Build(0.05)
		big := app.Build(0.8)
		if err := small.Resolve(ps); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if err := big.Resolve(ps); err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if DataBytes(big, ps) <= DataBytes(small, ps) {
			t.Errorf("%s: scale 0.8 (%d B) not larger than scale 0.05 (%d B)",
				app.Name, DataBytes(big, ps), DataBytes(small, ps))
		}
	}
}

// The FFT reference must be a true DFT: compare against the naive
// transform on a tiny grid. The kernel's final layout is (y, x, z) with z
// contiguous after the two transposes.
func TestFFTReferenceIsAnActualDFT(t *testing.T) {
	const n1, n2, n3 = 4, 4, 4
	gotRe, gotIm := fftReference(n1, n2, n3)

	in := make([]complex128, n1*n2*n3)
	for i := range in {
		in[i] = complex(fftInRe(int64(i)), fftInIm(int64(i)))
	}
	// naive 3-D DFT over original layout (z,y,x), x contiguous
	dft := make([]complex128, n1*n2*n3)
	for kz := int64(0); kz < n3; kz++ {
		for ky := int64(0); ky < n2; ky++ {
			for kx := int64(0); kx < n1; kx++ {
				var sum complex128
				for z := int64(0); z < n3; z++ {
					for y := int64(0); y < n2; y++ {
						for x := int64(0); x < n1; x++ {
							ang := -2 * math.Pi * (float64(kx*x)/float64(n1) +
								float64(ky*y)/float64(n2) + float64(kz*z)/float64(n3))
							sum += in[(z*n2+y)*n1+x] * cmplx.Exp(complex(0, ang))
						}
					}
				}
				dft[(kz*n2+ky)*n1+kx] = sum
			}
		}
	}
	for kz := int64(0); kz < n3; kz++ {
		for ky := int64(0); ky < n2; ky++ {
			for kx := int64(0); kx < n1; kx++ {
				want := dft[(kz*n2+ky)*n1+kx]
				// Kernel layout after transposes: (ky, kx, kz), z contiguous.
				got := complex(gotRe[(ky*n1+kx)*n3+kz], gotIm[(ky*n1+kx)*n3+kz])
				if cmplx.Abs(got-want) > 1e-9*(1+cmplx.Abs(want)) {
					t.Fatalf("DFT mismatch at (%d,%d,%d): got %v want %v", kx, ky, kz, got, want)
				}
			}
		}
	}
}

// EMBAR's tabulated counts must total the accepted pairs and the sums
// must be plausibly gaussian (near zero mean).
func TestEMBARStatistics(t *testing.T) {
	res := runApp(t, EMBAR(), 0.1, inCore)
	prog := res.Prog
	var total float64
	for l := int64(0); l < 16; l++ {
		total += peekF(prog, res.VM, "q", l)
	}
	n, _ := prog.ParamValue("n")
	accept := total / float64(n/2)
	// π/4 ≈ 0.785 acceptance for the polar method.
	if accept < 0.7 || accept > 0.87 {
		t.Fatalf("acceptance rate %.3f, want ≈0.785", accept)
	}
}

// BUK ranks must be consistent with sorted order: for a sample of key
// pairs, a smaller key must get a smaller rank.
func TestBUKRankOrdering(t *testing.T) {
	res := runApp(t, BUK(), 0.02, inCore)
	prog := res.Prog
	n, _ := prog.ParamValue("n")
	for i := int64(0); i+1 < n && i < 2000; i += 2 {
		k1, k2 := bukKey(i), bukKey(i+1)
		r1 := peekI(prog, res.VM, "rank", i)
		r2 := peekI(prog, res.VM, "rank", i+1)
		if k1 < k2 && r1 >= r2 {
			t.Fatalf("rank ordering violated: key %d→rank %d, key %d→rank %d", k1, r1, k2, r2)
		}
		if k1 == k2 && r1 != r2 {
			t.Fatalf("equal keys got different ranks")
		}
	}
}

// The unknown block dimension must reach the compiler as unknown in
// APPBT and as known in APPLU — the pair that explains Figure 4(a).
func TestSymbolicBoundContrast(t *testing.T) {
	bt := APPBT().Build(smallScale)
	var btUnknown bool
	for _, p := range bt.Params {
		if p.Name == "bm" && !p.Known {
			btUnknown = true
		}
	}
	if !btUnknown {
		t.Fatal("APPBT's bm should be unknown at compile time")
	}
	lu := APPLU().Build(smallScale)
	for _, p := range lu.Params {
		if !p.Known {
			t.Fatalf("APPLU param %s unexpectedly unknown", p.Name)
		}
	}
	_ = ir.Print(bt) // printable without panic
}
