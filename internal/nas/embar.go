package nas

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/ir"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

const embarSeed = 271828183

const embarSrc = `
program embar
seed %d
param n = %d
array double x[n]
array double q[16]
scalar double t1, t2, r, fac, y1, y2, sx, sy
scalar long l

// Generate the batch of uniform deviates (the out-of-core stream). The
// paper's EMBAR regenerates its random data every iteration, so there is
// no pre-initialized input to read.
for i = 0 .. n {
    x[i] = randlc()
}
// Consume pairs: Marsaglia polar method, tabulating |max| in q and
// accumulating the sums of the accepted gaussian deviates.
for i = 0 .. n / 2 {
    t1 = 2.0 * x[2 * i] - 1.0
    t2 = 2.0 * x[2 * i + 1] - 1.0
    r = t1 * t1 + t2 * t2
    if r <= 1.0 && r > 0.0 {
        fac = sqrt(-2.0 * log(r) / r)
        y1 = t1 * fac
        y2 = t2 * fac
        l = int(fmax(fabs(y1), fabs(y2)))
        q[l] = q[l] + 1.0
        sx = sx + y1
        sy = sy + y2
    }
}
`

// EMBAR is the NAS embarrassingly-parallel kernel: generate gaussian
// deviates and tabulate them. It is the suite's pure streaming case — the
// compiler's analysis is exact, so (as in Figure 4(b)) essentially none
// of its prefetches are unnecessary, and releases keep most of memory
// free (Table 3).
func EMBAR() *App {
	return &App{
		Name: "EMBAR",
		Desc: "embarrassingly parallel: gaussian deviates via the polar method, tabulated",
		Build: func(scale float64) *ir.Program {
			n := scaleInt(1<<20, scale, 1<<12) &^ 1 // even
			return mustParse(fmt.Sprintf(embarSrc, int64(embarSeed), n))
		},
		Seed: func(prog *ir.Program, file *stripefs.File, pageSize int64) {
			// Nothing to seed: EMBAR generates its own data.
		},
		Check: func(prog *ir.Program, v *vm.VM, env *exec.Env) error {
			n, _ := prog.ParamValue("n")
			rng := newRandlc(embarSeed)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.next()
			}
			var q [16]float64
			var sx, sy float64
			for i := int64(0); i < n/2; i++ {
				t1 := 2*xs[2*i] - 1
				t2 := 2*xs[2*i+1] - 1
				r := t1*t1 + t2*t2
				if r <= 1 && r > 0 {
					fac := math.Sqrt(-2 * math.Log(r) / r)
					y1, y2 := t1*fac, t2*fac
					l := int64(math.Max(math.Abs(y1), math.Abs(y2)))
					q[l]++
					sx += y1
					sy += y2
				}
			}
			gotSx, err := floatScalar(prog, env, "sx")
			if err != nil {
				return err
			}
			gotSy, err := floatScalar(prog, env, "sy")
			if err != nil {
				return err
			}
			if !approxEq(gotSx, sx, 1e-9) || !approxEq(gotSy, sy, 1e-9) {
				return fmt.Errorf("EMBAR: sums (%g, %g), want (%g, %g)", gotSx, gotSy, sx, sy)
			}
			for l := int64(0); l < 16; l++ {
				if got := peekF(prog, v, "q", l); got != q[l] {
					return fmt.Errorf("EMBAR: q[%d] = %g, want %g", l, got, q[l])
				}
			}
			return nil
		},
	}
}
