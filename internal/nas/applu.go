package nas

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/ir"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

const appluIters = 2

// The 5-wide component dimension is a compile-time literal here (the
// paper's APPLU analyzed fine); contrast with APPBT, where the block
// dimension is only known at run time.
const appluSrc = `
program applu
param n = %d
param iters = %d
array double u[n][n][n][5]
array double rsd[n][n][n][5]
scalar double rnorm

for it = 0 .. iters {
    // Lower-triangular (forward) SSOR sweep.
    for i = 1 .. n {
        for j = 1 .. n {
            for k = 1 .. n {
                for m = 0 .. 5 {
                    rsd[i][j][k][m] = 0.8 * rsd[i][j][k][m]
                        + 0.05 * (rsd[i - 1][j][k][m] + rsd[i][j - 1][k][m] + rsd[i][j][k - 1][m])
                        + 0.05 * u[i][j][k][m]
                }
            }
        }
    }
    // Upper-triangular (backward) sweep, written with reversed indices.
    for i2 = 1 .. n {
        for j2 = 1 .. n {
            for k2 = 1 .. n {
                for m = 0 .. 5 {
                    rsd[n - 1 - i2][n - 1 - j2][n - 1 - k2][m] =
                        0.8 * rsd[n - 1 - i2][n - 1 - j2][n - 1 - k2][m]
                        + 0.05 * (rsd[n - i2][n - 1 - j2][n - 1 - k2][m]
                                + rsd[n - 1 - i2][n - j2][n - 1 - k2][m]
                                + rsd[n - 1 - i2][n - 1 - j2][n - k2][m])
                        + 0.05 * u[n - 1 - i2][n - 1 - j2][n - 1 - k2][m]
                }
            }
        }
    }
}
rnorm = 0.0
for i = 0 .. n {
    for j = 0 .. n {
        for k = 0 .. n {
            for m = 0 .. 5 {
                rnorm = rnorm + rsd[i][j][k][m] * rsd[i][j][k][m]
            }
        }
    }
}
`

func appluInit(idx int64) float64 { return 1.0 + float64(idx%13)/13.0 }
func appluRsd0(idx int64) float64 { return float64(idx%7) / 7.0 }

// APPLU is the NAS LU solver: symmetric successive over-relaxation with
// forward and backward triangular sweeps over a 5-component 3-D grid.
// The backward sweep exercises negative-stride prefetching.
func APPLU() *App {
	return &App{
		Name: "APPLU",
		Desc: "LU/SSOR: forward and backward triangular sweeps over a 5-component 3-D grid",
		Build: func(scale float64) *ir.Program {
			n := scaleInt(32, cbrtScale(scale), 8)
			return mustParse(fmt.Sprintf(appluSrc, n, int64(appluIters)))
		},
		Seed: func(prog *ir.Program, file *stripefs.File, pageSize int64) {
			exec.SeedF64(file, pageSize, prog.ArrayByName("u"), appluInit)
			exec.SeedF64(file, pageSize, prog.ArrayByName("rsd"), appluRsd0)
		},
		Check: func(prog *ir.Program, v *vm.VM, env *exec.Env) error {
			n, _ := prog.ParamValue("n")
			total := n * n * n * 5
			u := make([]float64, total)
			rsd := make([]float64, total)
			for i := int64(0); i < total; i++ {
				u[i] = appluInit(i)
				rsd[i] = appluRsd0(i)
			}
			at := func(i, j, k, m int64) int64 { return ((i*n+j)*n+k)*5 + m }
			for it := 0; it < appluIters; it++ {
				for i := int64(1); i < n; i++ {
					for j := int64(1); j < n; j++ {
						for k := int64(1); k < n; k++ {
							for m := int64(0); m < 5; m++ {
								rsd[at(i, j, k, m)] = 0.8*rsd[at(i, j, k, m)] +
									0.05*(rsd[at(i-1, j, k, m)]+rsd[at(i, j-1, k, m)]+rsd[at(i, j, k-1, m)]) +
									0.05*u[at(i, j, k, m)]
							}
						}
					}
				}
				for i2 := int64(1); i2 < n; i2++ {
					for j2 := int64(1); j2 < n; j2++ {
						for k2 := int64(1); k2 < n; k2++ {
							for m := int64(0); m < 5; m++ {
								i, j, k := n-1-i2, n-1-j2, n-1-k2
								rsd[at(i, j, k, m)] = 0.8*rsd[at(i, j, k, m)] +
									0.05*(rsd[at(i+1, j, k, m)]+rsd[at(i, j+1, k, m)]+rsd[at(i, j, k+1, m)]) +
									0.05*u[at(i, j, k, m)]
							}
						}
					}
				}
			}
			var rnorm float64
			for i := int64(0); i < total; i++ {
				rnorm += rsd[i] * rsd[i]
			}
			got, err := floatScalar(prog, env, "rnorm")
			if err != nil {
				return err
			}
			if !approxEq(got, rnorm, 1e-9) {
				return fmt.Errorf("APPLU: rnorm = %g, want %g", got, rnorm)
			}
			return nil
		},
	}
}

// cbrtScale converts a data-size scale factor into a per-edge factor for
// 3-D grids (data grows with the cube of the edge).
func cbrtScale(scale float64) float64 {
	if scale <= 0 {
		return 1
	}
	// Newton iteration is overkill; a few steps of bisection suffice.
	lo, hi := 0.05, 20.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if mid*mid*mid < scale {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
