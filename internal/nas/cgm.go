package nas

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/ir"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

// cgmNzRow is the fixed number of nonzeros per matrix row.
const cgmNzRow = 32

// cgmIters is the number of matrix-vector iterations.
const cgmIters = 3

const cgmSrc = `
program cgm
param rows = %d
param nzrow = %d
param iters = %d
param nnz = rows * nzrow
array double a[nnz]
array long col[nnz]
array double x[rows]
array double q[rows]
scalar double sum, rho

for it = 0 .. iters {
    // q = A x  (sparse matrix-vector product; x[col[k]] is the indirect
    // reference that makes CGM the paper's hardest prefetch-address case)
    for i = 0 .. rows {
        sum = 0.0
        for k = 0 .. nzrow {
            sum = sum + a[i * nzrow + k] * x[col[i * nzrow + k]]
        }
        q[i] = sum
    }
    // rho = q . q
    rho = 0.0
    for i = 0 .. rows {
        rho = rho + q[i] * q[i]
    }
    // x = x + q / (rho + 1)  (keeps the iteration bounded and x moving)
    for i = 0 .. rows {
        x[i] = x[i] + q[i] / (rho + 1.0)
    }
}
`

// cgmA and cgmCol define the sparse matrix deterministically.
func cgmA(k int64) float64         { return 0.5 + float64(k%97)/97.0 }
func cgmColAt(k, rows int64) int64 { return permute64(k, rows) }

// CGM is the NAS conjugate-gradient kernel: repeated sparse
// matrix-vector products with indirect column accesses. Generating
// prefetch addresses for x[col[k]] requires loading col ahead of time,
// which is why CGM shows the largest user-time overhead in Figure 3(a).
func CGM() *App {
	return &App{
		Name: "CGM",
		Desc: "conjugate gradient: sparse matrix-vector products with indirect column references",
		Build: func(scale float64) *ir.Program {
			rows := scaleInt(12*1024, scale, 512)
			return mustParse(fmt.Sprintf(cgmSrc, rows, int64(cgmNzRow), int64(cgmIters)))
		},
		Seed: func(prog *ir.Program, file *stripefs.File, pageSize int64) {
			rows, _ := prog.ParamValue("rows")
			exec.SeedF64(file, pageSize, prog.ArrayByName("a"), cgmA)
			exec.SeedI64(file, pageSize, prog.ArrayByName("col"), func(k int64) int64 {
				return cgmColAt(k, rows)
			})
			exec.SeedF64(file, pageSize, prog.ArrayByName("x"), func(i int64) float64 {
				return 1.0 / float64(i+1)
			})
		},
		Check: func(prog *ir.Program, v *vm.VM, env *exec.Env) error {
			rows, _ := prog.ParamValue("rows")
			x := make([]float64, rows)
			q := make([]float64, rows)
			for i := range x {
				x[i] = 1.0 / float64(i+1)
			}
			var rho float64
			for it := 0; it < cgmIters; it++ {
				for i := int64(0); i < rows; i++ {
					var sum float64
					for k := i * cgmNzRow; k < (i+1)*cgmNzRow; k++ {
						sum = sum + cgmA(k)*x[cgmColAt(k, rows)]
					}
					q[i] = sum
				}
				rho = 0
				for i := int64(0); i < rows; i++ {
					rho = rho + q[i]*q[i]
				}
				for i := int64(0); i < rows; i++ {
					x[i] = x[i] + q[i]/(rho+1)
				}
			}
			gotRho, err := floatScalar(prog, env, "rho")
			if err != nil {
				return err
			}
			if !approxEq(gotRho, rho, 1e-9) {
				return fmt.Errorf("CGM: rho = %g, want %g", gotRho, rho)
			}
			for _, i := range []int64{0, rows / 3, rows - 1} {
				if got := peekF(prog, v, "x", i); !approxEq(got, x[i], 1e-9) {
					return fmt.Errorf("CGM: x[%d] = %g, want %g", i, got, x[i])
				}
			}
			return nil
		},
	}
}
