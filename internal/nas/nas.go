// Package nas contains out-of-core versions of the eight NAS Parallel
// benchmarks the paper evaluates (Table 2): EMBAR, MGRID, CGM, FFT,
// BUK (integer sort), APPLU, APPSP, and APPBT. Each kernel is written in
// the front-end loop language exactly as an application programmer would
// write the in-core algorithm — no explicit I/O, no hand-inserted hints —
// and is scaled so its data set stands in a chosen ratio to the simulated
// machine's memory, as the paper's experiments do. Every kernel carries a
// seeding function (the pre-initialized input data set read from disk)
// and a validation function checked against an independent Go
// reimplementation of the same computation.
package nas

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/exec"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

// App is one benchmark.
type App struct {
	// Name is the paper's name for the application (Table 2).
	Name string
	// Desc is a one-line description in the style of Table 2.
	Desc string

	// Build constructs the program at a problem scale. scale = 1 is the
	// standard out-of-core size; the harness derives memory from the
	// data size and the experiment's data:memory ratio. Scales are
	// quantized as each kernel requires (powers of two for FFT/MGRID).
	Build func(scale float64) *ir.Program

	// Seed pre-initializes the program's input arrays in the backing
	// file, with no simulated cost.
	Seed func(prog *ir.Program, file *stripefs.File, pageSize int64)

	// Check validates the finished run against an independent
	// reimplementation, using cost-free Peek reads.
	Check func(prog *ir.Program, v *vm.VM, env *exec.Env) error

	// StdRatio is the data:memory ratio of the paper's standard
	// out-of-core run for this application; 0 means the usual 2×.
	// (MGRID's standard problem was only 20% larger than memory, §4.3.2.)
	StdRatio float64
}

// Ratio returns the app's standard out-of-core data:memory ratio.
func (a *App) Ratio() float64 {
	if a.StdRatio > 0 {
		return a.StdRatio
	}
	return 2.0
}

// DataBytes returns the resolved data-set size of a built program.
func DataBytes(prog *ir.Program, pageSize int64) int64 {
	return prog.TotalBytes(pageSize)
}

// Apps returns the full suite in the paper's presentation order.
func Apps() []*App {
	return []*App{BUK(), CGM(), EMBAR(), FFT(), MGRID(), APPLU(), APPSP(), APPBT()}
}

// ByName returns the named app (case-sensitive) or nil.
func ByName(name string) *App {
	for _, a := range Apps() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Names returns the suite's names in order.
func Names() []string {
	var out []string
	for _, a := range Apps() {
		out = append(out, a.Name)
	}
	return out
}

// ---- shared helpers ------------------------------------------------------

// mustParse parses a kernel source, panicking on error (kernel sources are
// compiled into the binary and covered by tests).
//
// Parses are memoized by source text: Build is called once per benchmark
// iteration, and front-end parsing plus semantic analysis dominated the
// remaining per-run allocations once compilation itself was cached. The
// cached template is never handed out — every call returns a deep
// ir.Program.Clone, so callers keep the fresh-program contract (SetParam
// and Resolve on one build never affect another).
func mustParse(src string) *ir.Program {
	parseMu.Lock()
	tpl, ok := parseCache[src]
	if !ok {
		tpl = lang.MustParse(src)
		parseCache[src] = tpl
	}
	parseMu.Unlock()
	return tpl.Clone()
}

var (
	parseMu    sync.Mutex
	parseCache = map[string]*ir.Program{}
)

// scaleInt quantizes scale × base to at least min.
func scaleInt(base int64, scale float64, min int64) int64 {
	n := int64(float64(base) * scale)
	if n < min {
		n = min
	}
	return n
}

// scalePow2 returns the power of two nearest to base × scale, at least min.
func scalePow2(base int64, scale float64, min int64) int64 {
	target := float64(base) * scale
	p := int64(min)
	for float64(p*2) <= target*1.42 && p < 1<<30 {
		p *= 2
	}
	return p
}

// floatScalar reads a named float scalar from a finished environment.
func floatScalar(prog *ir.Program, env *exec.Env, name string) (float64, error) {
	slot, ok := prog.ScalarsF[name]
	if !ok {
		return 0, fmt.Errorf("nas: program %s has no float scalar %q", prog.Name, name)
	}
	return env.Floats[slot], nil
}

// intScalar reads a named integer scalar.
func intScalar(prog *ir.Program, env *exec.Env, name string) (int64, error) {
	slot, ok := prog.ScalarsI[name]
	if !ok {
		return 0, fmt.Errorf("nas: program %s has no int scalar %q", prog.Name, name)
	}
	return env.Ints[slot], nil
}

// peekF reads element i of a named array with no simulated cost.
func peekF(prog *ir.Program, v *vm.VM, arr string, i int64) float64 {
	a := prog.ArrayByName(arr)
	return v.PeekF64(a.Base + i*ir.ElemSize)
}

// peekI reads an int64 element.
func peekI(prog *ir.Program, v *vm.VM, arr string, i int64) int64 {
	a := prog.ArrayByName(arr)
	return v.PeekI64(a.Base + i*ir.ElemSize)
}

// approxEq checks relative equality with tolerance eps.
func approxEq(a, b, eps float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= eps*math.Max(m, 1)
}

// randlcStream is the Go-side twin of the executor's NAS generator, for
// independent validation.
type randlcStream struct{ x uint64 }

func newRandlc(seed int64) *randlcStream {
	return &randlcStream{x: uint64(seed) & ((1 << 46) - 1)}
}

func (r *randlcStream) next() float64 {
	const a = 1220703125
	const half = uint64(1) << 23
	lo := (r.x & (half - 1)) * a
	hi := (r.x >> 23) * a
	r.x = (lo + (hi&(half-1))<<23) & ((1 << 46) - 1)
	return float64(r.x) * (1.0 / float64(uint64(1)<<46))
}

// permute64 is a cheap deterministic value scatterer used to seed keys and
// sparse structures.
func permute64(i, n int64) int64 {
	x := uint64(i)*2654435761 + 12345
	x ^= x >> 16
	x *= 2246822519
	x ^= x >> 13
	return int64(x % uint64(n))
}
