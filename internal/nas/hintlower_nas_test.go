package nas_test

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/exec"
	"repro/internal/hw"
	"repro/internal/nas"
)

// TestNASHintSitesEmitNoClosureCalls compiles every NAS proxy through
// the full prefetching pipeline and asserts the no-fallback property of
// the hint lowering: the kernel bytecode's only closure-call slots are
// page-run span drivers (exactly one per page-run loop report), so
// every compiler-inserted prefetch/release statement runs as bytecode
// and none costs an opCall dispatch.
func TestNASHintSitesEmitNoClosureCalls(t *testing.T) {
	machine := hw.Default()
	for _, app := range nas.Apps() {
		t.Run(app.Name, func(t *testing.T) {
			res, err := compiler.Compile(app.Build(0.05), machine, compiler.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			art, err := exec.Compile(res.Prog, machine.PageSize, exec.Options{})
			if err != nil {
				t.Fatal(err)
			}
			hints, pageRuns, compiled := 0, 0, 0
			for _, r := range art.Reports() {
				hints += r.Hints
				switch r.Driver {
				case "page-run":
					pageRuns++
					compiled++
				case "kernel":
					compiled++
				case "closure":
					t.Errorf("loop %s fell back to the closure driver (%s)", r.Var, r.Reason)
				}
			}
			if compiled == 0 {
				t.Fatal("no loop compiled to bytecode — assertion is vacuous")
			}
			if hints == 0 {
				t.Fatal("prefetching compile lowered no hints — assertion is vacuous")
			}
			if got := art.CallSites(); got != pageRuns {
				t.Errorf("CallSites = %d, want %d (one per page-run loop; %d hints must add none)",
					got, pageRuns, hints)
			}
		})
	}
}
