package nas

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/ir"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

const appspIters = 2

// Scalar pentadiagonal: ADI-style line solves along each of the three
// dimensions — a forward elimination then a backward substitution per
// line, per dimension. The recurrences give each sweep a different
// dominant stride, so every pass stresses a different striping pattern.
const appspSrc = `
program appsp
param n = %d
param iters = %d
array double u[n][n][n][5]
array double rhs[n][n][n][5]
scalar double rnorm

for it = 0 .. iters {
    // Build the right-hand side from u.
    for i = 0 .. n {
        for j = 0 .. n {
            for k = 0 .. n {
                for m = 0 .. 5 {
                    rhs[i][j][k][m] = 0.9 * rhs[i][j][k][m] + 0.1 * u[i][j][k][m]
                }
            }
        }
    }
    // x-direction line solve: forward then backward along k.
    for i = 0 .. n {
        for j = 0 .. n {
            for k = 2 .. n {
                for m = 0 .. 5 {
                    rhs[i][j][k][m] = rhs[i][j][k][m]
                        - 0.3 * rhs[i][j][k - 1][m] - 0.1 * rhs[i][j][k - 2][m]
                }
            }
            for k2 = 2 .. n {
                for m = 0 .. 5 {
                    rhs[i][j][n - 1 - k2][m] = rhs[i][j][n - 1 - k2][m]
                        - 0.3 * rhs[i][j][n - k2][m] - 0.1 * rhs[i][j][n + 1 - k2][m]
                }
            }
        }
    }
    // y-direction line solve (stride n·5 recurrence).
    for i = 0 .. n {
        for j = 2 .. n {
            for k = 0 .. n {
                for m = 0 .. 5 {
                    rhs[i][j][k][m] = rhs[i][j][k][m]
                        - 0.3 * rhs[i][j - 1][k][m] - 0.1 * rhs[i][j - 2][k][m]
                }
            }
        }
    }
    // z-direction line solve (plane-stride recurrence).
    for i = 2 .. n {
        for j = 0 .. n {
            for k = 0 .. n {
                for m = 0 .. 5 {
                    rhs[i][j][k][m] = rhs[i][j][k][m]
                        - 0.3 * rhs[i - 1][j][k][m] - 0.1 * rhs[i - 2][j][k][m]
                }
            }
        }
    }
    // Update the solution.
    for i = 0 .. n {
        for j = 0 .. n {
            for k = 0 .. n {
                for m = 0 .. 5 {
                    u[i][j][k][m] = u[i][j][k][m] + 0.05 * rhs[i][j][k][m]
                }
            }
        }
    }
}
rnorm = 0.0
for i = 0 .. n {
    for j = 0 .. n {
        for k = 0 .. n {
            for m = 0 .. 5 {
                rnorm = rnorm + rhs[i][j][k][m] * rhs[i][j][k][m]
            }
        }
    }
}
`

func appspU0(idx int64) float64   { return 1.0 + float64(idx%11)/11.0 }
func appspRhs0(idx int64) float64 { return float64(idx%5) / 5.0 }

// APPSP is the NAS scalar-pentadiagonal solver: ADI line solves along all
// three grid dimensions.
func APPSP() *App {
	return &App{
		Name: "APPSP",
		Desc: "scalar pentadiagonal: ADI line solves along all three dimensions of a 3-D grid",
		Build: func(scale float64) *ir.Program {
			n := scaleInt(32, cbrtScale(scale), 8)
			return mustParse(fmt.Sprintf(appspSrc, n, int64(appspIters)))
		},
		Seed: func(prog *ir.Program, file *stripefs.File, pageSize int64) {
			exec.SeedF64(file, pageSize, prog.ArrayByName("u"), appspU0)
			exec.SeedF64(file, pageSize, prog.ArrayByName("rhs"), appspRhs0)
		},
		Check: func(prog *ir.Program, v *vm.VM, env *exec.Env) error {
			n, _ := prog.ParamValue("n")
			total := n * n * n * 5
			u := make([]float64, total)
			rhs := make([]float64, total)
			for i := int64(0); i < total; i++ {
				u[i] = appspU0(i)
				rhs[i] = appspRhs0(i)
			}
			at := func(i, j, k, m int64) int64 { return ((i*n+j)*n+k)*5 + m }
			for it := 0; it < appspIters; it++ {
				for i := int64(0); i < n; i++ {
					for j := int64(0); j < n; j++ {
						for k := int64(0); k < n; k++ {
							for m := int64(0); m < 5; m++ {
								rhs[at(i, j, k, m)] = 0.9*rhs[at(i, j, k, m)] + 0.1*u[at(i, j, k, m)]
							}
						}
					}
				}
				for i := int64(0); i < n; i++ {
					for j := int64(0); j < n; j++ {
						for k := int64(2); k < n; k++ {
							for m := int64(0); m < 5; m++ {
								rhs[at(i, j, k, m)] -= 0.3*rhs[at(i, j, k-1, m)] + 0.1*rhs[at(i, j, k-2, m)]
							}
						}
						for k2 := int64(2); k2 < n; k2++ {
							for m := int64(0); m < 5; m++ {
								rhs[at(i, j, n-1-k2, m)] -= 0.3*rhs[at(i, j, n-k2, m)] + 0.1*rhs[at(i, j, n+1-k2, m)]
							}
						}
					}
				}
				for i := int64(0); i < n; i++ {
					for j := int64(2); j < n; j++ {
						for k := int64(0); k < n; k++ {
							for m := int64(0); m < 5; m++ {
								rhs[at(i, j, k, m)] -= 0.3*rhs[at(i, j-1, k, m)] + 0.1*rhs[at(i, j-2, k, m)]
							}
						}
					}
				}
				for i := int64(2); i < n; i++ {
					for j := int64(0); j < n; j++ {
						for k := int64(0); k < n; k++ {
							for m := int64(0); m < 5; m++ {
								rhs[at(i, j, k, m)] -= 0.3*rhs[at(i-1, j, k, m)] + 0.1*rhs[at(i-2, j, k, m)]
							}
						}
					}
				}
				for i := int64(0); i < total; i++ {
					u[i] += 0.05 * rhs[i]
				}
			}
			var rnorm float64
			for i := int64(0); i < total; i++ {
				rnorm += rhs[i] * rhs[i]
			}
			got, err := floatScalar(prog, env, "rnorm")
			if err != nil {
				return err
			}
			if !approxEq(got, rnorm, 1e-9) {
				return fmt.Errorf("APPSP: rnorm = %g, want %g", got, rnorm)
			}
			return nil
		},
	}
}
