package nas

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/ir"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

// bukMaxKey is the key range (the in-core counting table; the key and
// rank streams are what go out of core).
const bukMaxKey = 1 << 15

const bukSrc = `
program buk
param n = %d
param maxkey = %d
array long key[n]
array long rank[n]
array long count[maxkey]

// Histogram the keys.
for i = 0 .. n {
    count[key[i]] = count[key[i]] + 1
}
// Cumulative counts.
for j = 1 .. maxkey {
    count[j] = count[j] + count[j - 1]
}
// Rank every key: position of its last occurrence in sorted order.
for i = 0 .. n {
    rank[i] = count[key[i]] - 1
}
`

// bukKey is the deterministic pseudo-random key stream.
func bukKey(i int64) int64 { return permute64(i, bukMaxKey) }

// BUK is the NAS integer (bucket) sort: it ranks a large stream of
// integer keys via counting sort. The key accesses are the paper's
// motivating indirect references, and the sequential key/rank streams are
// where its release operations pay off.
func BUK() *App {
	return &App{
		Name: "BUK",
		Desc: "integer bucket sort: ranks random keys with a counting sort (indirect references)",
		Build: func(scale float64) *ir.Program {
			n := scaleInt(768*1024, scale, 1<<12)
			return mustParse(fmt.Sprintf(bukSrc, n, int64(bukMaxKey)))
		},
		Seed: func(prog *ir.Program, file *stripefs.File, pageSize int64) {
			exec.SeedI64(file, pageSize, prog.ArrayByName("key"), bukKey)
		},
		Check: func(prog *ir.Program, v *vm.VM, env *exec.Env) error {
			n, _ := prog.ParamValue("n")
			// Independent reference: counting sort in Go.
			count := make([]int64, bukMaxKey)
			for i := int64(0); i < n; i++ {
				count[bukKey(i)]++
			}
			for j := int64(1); j < bukMaxKey; j++ {
				count[j] += count[j-1]
			}
			// Spot-check a spread of ranks plus a full checksum.
			var sum, wantSum int64
			for i := int64(0); i < n; i++ {
				want := count[bukKey(i)] - 1
				wantSum += want
				got := peekI(prog, v, "rank", i)
				sum += got
				if i%(n/97+1) == 0 && got != want {
					return fmt.Errorf("BUK: rank[%d] = %d, want %d", i, got, want)
				}
			}
			if sum != wantSum {
				return fmt.Errorf("BUK: rank checksum %d, want %d", sum, wantSum)
			}
			return nil
		},
	}
}
