package nas

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/ir"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

const (
	appbtIters = 2
	appbtBM    = 5 // the run-time value of the symbolic block dimension
)

// APPBT's defining feature, per §4.1.1 of the paper: the 5×5 block
// dimension of its block-tridiagonal systems reaches the compiler as a
// symbolic bound ("unknown"), so the compiler assumes a large trip count,
// tries to software-pipeline across the tiny block loops, finds the
// pipeline can never start, and misses the prefetches for the dominant
// block array — which is why APPBT is the one application whose coverage
// falls below 75% and whose speedup is smallest.
const appbtSrc = `
program appbt
param n = %d
param bm = %d unknown
param iters = %d
array double u[n][n][n][5]
array double rhs[n][n][n][5]
array double blk[n][n][n][bm][bm]
scalar double acc, rnorm

for it = 0 .. iters {
    // Build the right-hand side from u (analyzable, like APPLU).
    for i = 0 .. n {
        for j = 0 .. n {
            for k = 0 .. n {
                for m = 0 .. 5 {
                    rhs[i][j][k][m] = 0.9 * rhs[i][j][k][m] + 0.1 * u[i][j][k][m]
                }
            }
        }
    }
    // Block lower solve: rhs[cell] -= blk[cell] * rhs[previous cell].
    // The m/q loops run to the symbolic bound bm.
    for i = 1 .. n {
        for j = 0 .. n {
            for k = 0 .. n {
                for m = 0 .. bm {
                    acc = 0.0
                    for q = 0 .. bm {
                        acc = acc + blk[i][j][k][m][q] * rhs[i - 1][j][k][q]
                    }
                    rhs[i][j][k][m] = rhs[i][j][k][m] - 0.1 * acc
                }
            }
        }
    }
    // Update the solution.
    for i = 0 .. n {
        for j = 0 .. n {
            for k = 0 .. n {
                for m = 0 .. 5 {
                    u[i][j][k][m] = u[i][j][k][m] + 0.05 * rhs[i][j][k][m]
                }
            }
        }
    }
}
rnorm = 0.0
for i = 0 .. n {
    for j = 0 .. n {
        for k = 0 .. n {
            for m = 0 .. 5 {
                rnorm = rnorm + rhs[i][j][k][m] * rhs[i][j][k][m]
            }
        }
    }
}
`

func appbtU0(idx int64) float64   { return 1.0 + float64(idx%9)/9.0 }
func appbtRhs0(idx int64) float64 { return float64(idx%6) / 6.0 }
func appbtBlk(idx int64) float64  { return 0.1 + float64(idx%17)/170.0 }

// APPBT is the NAS block-tridiagonal solver: 5×5 block systems along
// grid lines, with the block dimension symbolic at compile time.
func APPBT() *App {
	return &App{
		Name: "APPBT",
		Desc: "block tridiagonal: 5×5 block solves; block dimension symbolic at compile time",
		Build: func(scale float64) *ir.Program {
			n := scaleInt(24, cbrtScale(scale), 8)
			return mustParse(fmt.Sprintf(appbtSrc, n, int64(appbtBM), int64(appbtIters)))
		},
		Seed: func(prog *ir.Program, file *stripefs.File, pageSize int64) {
			exec.SeedF64(file, pageSize, prog.ArrayByName("u"), appbtU0)
			exec.SeedF64(file, pageSize, prog.ArrayByName("rhs"), appbtRhs0)
			exec.SeedF64(file, pageSize, prog.ArrayByName("blk"), appbtBlk)
		},
		Check: func(prog *ir.Program, v *vm.VM, env *exec.Env) error {
			n, _ := prog.ParamValue("n")
			total := n * n * n * 5
			u := make([]float64, total)
			rhs := make([]float64, total)
			blk := make([]float64, n*n*n*appbtBM*appbtBM)
			for i := int64(0); i < total; i++ {
				u[i] = appbtU0(i)
				rhs[i] = appbtRhs0(i)
			}
			for i := range blk {
				blk[i] = appbtBlk(int64(i))
			}
			at := func(i, j, k, m int64) int64 { return ((i*n+j)*n+k)*5 + m }
			bat := func(i, j, k, m, q int64) int64 { return (((i*n+j)*n+k)*appbtBM+m)*appbtBM + q }
			for it := 0; it < appbtIters; it++ {
				for i := int64(0); i < n; i++ {
					for j := int64(0); j < n; j++ {
						for k := int64(0); k < n; k++ {
							for m := int64(0); m < 5; m++ {
								rhs[at(i, j, k, m)] = 0.9*rhs[at(i, j, k, m)] + 0.1*u[at(i, j, k, m)]
							}
						}
					}
				}
				for i := int64(1); i < n; i++ {
					for j := int64(0); j < n; j++ {
						for k := int64(0); k < n; k++ {
							for m := int64(0); m < appbtBM; m++ {
								var acc float64
								for q := int64(0); q < appbtBM; q++ {
									acc += blk[bat(i, j, k, m, q)] * rhs[at(i-1, j, k, q)]
								}
								rhs[at(i, j, k, m)] -= 0.1 * acc
							}
						}
					}
				}
				for i := int64(0); i < total; i++ {
					u[i] += 0.05 * rhs[i]
				}
			}
			var rnorm float64
			for i := int64(0); i < total; i++ {
				rnorm += rhs[i] * rhs[i]
			}
			got, err := floatScalar(prog, env, "rnorm")
			if err != nil {
				return err
			}
			if !approxEq(got, rnorm, 1e-9) {
				return fmt.Errorf("APPBT: rnorm = %g, want %g", got, rnorm)
			}
			return nil
		},
	}
}
