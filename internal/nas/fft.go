package nas

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/exec"
	"repro/internal/ir"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

// FFT is the NAS 3-D FFT kernel, structured the way out-of-core FFTs are:
// a radix-2 Cooley-Tukey pass along the contiguous dimension (bit-reversal
// permutation, then in-place butterflies), a transpose to bring the next
// dimension into contiguous order, and so on through all three dimensions.
// The transposes are the paper-perfect strided out-of-core access
// patterns; the butterfly subscripts are non-affine ("opaque") and
// exercise the analysis fallback that prefetches whole rows.

// fftPass emits the language source of one FFT pass: bit-reversal
// permutation from (sr,si) into (dr,di), then in-place butterflies on
// (dr,di). rows/length/bits are parameter names; length must be a power
// of two.
func fftPass(rows, length, bits, sr, si, dr, di string) string {
	r := strings.NewReplacer(
		"ROWS", rows, "LEN", length, "LB", bits,
		"SR", sr, "SI", si, "DR", dr, "DI", di,
	)
	return r.Replace(`
// ---- FFT pass along LEN ----
for r = 0 .. ROWS {
    for idx = 0 .. LEN {
        tmp = idx
        rev = 0
        for b = 0 .. LB {
            rev = rev * 2 + tmp % 2
            tmp = tmp / 2
        }
        DR[r * LEN + rev] = SR[r * LEN + idx]
        DI[r * LEN + rev] = SI[r * LEN + idx]
    }
}
for r = 0 .. ROWS {
    for s = 1 .. LB + 1 {
        for g = 0 .. LEN >> s {
            for j = 0 .. (1 << s) / 2 {
                wre = cos(-6.283185307179586 * float(j) / float(1 << s))
                wim = sin(-6.283185307179586 * float(j) / float(1 << s))
                tre = wre * DR[r * LEN + g * (1 << s) + j + (1 << s) / 2] - wim * DI[r * LEN + g * (1 << s) + j + (1 << s) / 2]
                tim = wre * DI[r * LEN + g * (1 << s) + j + (1 << s) / 2] + wim * DR[r * LEN + g * (1 << s) + j + (1 << s) / 2]
                ure = DR[r * LEN + g * (1 << s) + j]
                uim = DI[r * LEN + g * (1 << s) + j]
                DR[r * LEN + g * (1 << s) + j] = ure + tre
                DI[r * LEN + g * (1 << s) + j] = uim + tim
                DR[r * LEN + g * (1 << s) + j + (1 << s) / 2] = ure - tre
                DI[r * LEN + g * (1 << s) + j + (1 << s) / 2] = uim - tim
            }
        }
    }
}
`)
}

func fftSrc(n1, n2, n3, l1, l2, l3 int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, `
program fft
param n1 = %d
param n2 = %d
param n3 = %d
param l1 = %d
param l2 = %d
param l3 = %d
param rows1 = n2 * n3
param rows2 = n1 * n3
param rows3 = n1 * n2
array double re[n1 * n2 * n3], im[n1 * n2 * n3]
array double re2[n1 * n2 * n3], im2[n1 * n2 * n3]
scalar long tmp, rev
scalar double wre, wim, tre, tim, ure, uim, energy
`, n1, n2, n3, l1, l2, l3)

	// Pass 1: FFT along x (re,im → re2,im2); layout (z,y,x).
	b.WriteString(fftPass("rows1", "n1", "l1", "re", "im", "re2", "im2"))
	// Transpose x↔y: (z,y,x) → (z,x,y); re2,im2 → re,im.
	b.WriteString(`
// ---- transpose x<->y ----
for z = 0 .. n3 {
    for y = 0 .. n2 {
        for x = 0 .. n1 {
            re[(z * n1 + x) * n2 + y] = re2[(z * n2 + y) * n1 + x]
            im[(z * n1 + x) * n2 + y] = im2[(z * n2 + y) * n1 + x]
        }
    }
}
`)
	// Pass 2: FFT along y (now contiguous, length n2); re,im → re2,im2.
	b.WriteString(fftPass("rows2", "n2", "l2", "re", "im", "re2", "im2"))
	// Transpose z↔y: (z,x,y) → (y,x,z); re2,im2 → re,im.
	b.WriteString(`
// ---- transpose z<->y ----
for z = 0 .. n3 {
    for x = 0 .. n1 {
        for y = 0 .. n2 {
            re[(y * n1 + x) * n3 + z] = re2[(z * n1 + x) * n2 + y]
            im[(y * n1 + x) * n3 + z] = im2[(z * n1 + x) * n2 + y]
        }
    }
}
`)
	// Pass 3: FFT along z (contiguous, length n3); re,im → re2,im2.
	b.WriteString(fftPass("rows3", "n3", "l3", "re", "im", "re2", "im2"))
	// Checksum: total energy of the spectrum.
	b.WriteString(`
energy = 0.0
for i = 0 .. n1 * n2 * n3 {
    energy = energy + re2[i] * re2[i] + im2[i] * im2[i]
}
`)
	return b.String()
}

func fftInRe(i int64) float64 { return float64(i%31)/31.0 - 0.5 }
func fftInIm(i int64) float64 { return float64(i%17)/17.0 - 0.5 }

func log2of(n int64) int64 {
	var l int64
	for 1<<uint(l) < n {
		l++
	}
	return l
}

// fftReference runs the same pass/transpose sequence in pure Go.
func fftReference(n1, n2, n3 int64) (re, im []float64) {
	n := n1 * n2 * n3
	re = make([]float64, n)
	im = make([]float64, n)
	for i := int64(0); i < n; i++ {
		re[i], im[i] = fftInRe(i), fftInIm(i)
	}
	re2 := make([]float64, n)
	im2 := make([]float64, n)

	pass := func(rows, L int64, sr, si, dr, di []float64) {
		lb := log2of(L)
		for r := int64(0); r < rows; r++ {
			for idx := int64(0); idx < L; idx++ {
				tmp, rev := idx, int64(0)
				for b := int64(0); b < lb; b++ {
					rev = rev*2 + tmp%2
					tmp /= 2
				}
				dr[r*L+rev] = sr[r*L+idx]
				di[r*L+rev] = si[r*L+idx]
			}
		}
		for r := int64(0); r < rows; r++ {
			for s := int64(1); s <= lb; s++ {
				m := int64(1) << uint(s)
				for g := int64(0); g < L>>uint(s); g++ {
					for j := int64(0); j < m/2; j++ {
						ang := -2 * math.Pi * float64(j) / float64(m)
						wre, wim := math.Cos(ang), math.Sin(ang)
						k := r*L + g*m + j
						h := m / 2
						tre := wre*dr[k+h] - wim*di[k+h]
						tim := wre*di[k+h] + wim*dr[k+h]
						ure, uim := dr[k], di[k]
						dr[k], di[k] = ure+tre, uim+tim
						dr[k+h], di[k+h] = ure-tre, uim-tim
					}
				}
			}
		}
	}

	pass(n2*n3, n1, re, im, re2, im2)
	for z := int64(0); z < n3; z++ {
		for y := int64(0); y < n2; y++ {
			for x := int64(0); x < n1; x++ {
				re[(z*n1+x)*n2+y] = re2[(z*n2+y)*n1+x]
				im[(z*n1+x)*n2+y] = im2[(z*n2+y)*n1+x]
			}
		}
	}
	pass(n1*n3, n2, re, im, re2, im2)
	for z := int64(0); z < n3; z++ {
		for x := int64(0); x < n1; x++ {
			for y := int64(0); y < n2; y++ {
				re[(y*n1+x)*n3+z] = re2[(z*n1+x)*n2+y]
				im[(y*n1+x)*n3+z] = im2[(z*n1+x)*n2+y]
			}
		}
	}
	pass(n1*n2, n3, re, im, re2, im2)
	return re2, im2
}

// FFT builds the suite's 3-D FFT application.
func FFT() *App {
	return &App{
		Name: "FFT",
		Desc: "3-D FFT: per-row Cooley-Tukey passes with out-of-core transposes between dimensions",
		Build: func(scale float64) *ir.Program {
			edge := scalePow2(32, cbrtScale(scale), 8)
			n1, n2, n3 := 2*edge, edge, edge
			return mustParse(fftSrc(n1, n2, n3, log2of(n1), log2of(n2), log2of(n3)))
		},
		Seed: func(prog *ir.Program, file *stripefs.File, pageSize int64) {
			exec.SeedF64(file, pageSize, prog.ArrayByName("re"), fftInRe)
			exec.SeedF64(file, pageSize, prog.ArrayByName("im"), fftInIm)
		},
		Check: func(prog *ir.Program, v *vm.VM, env *exec.Env) error {
			n1, _ := prog.ParamValue("n1")
			n2, _ := prog.ParamValue("n2")
			n3, _ := prog.ParamValue("n3")
			wre, wim := fftReference(n1, n2, n3)
			var wantEnergy float64
			for i := range wre {
				wantEnergy += wre[i]*wre[i] + wim[i]*wim[i]
			}
			got, err := floatScalar(prog, env, "energy")
			if err != nil {
				return err
			}
			if !approxEq(got, wantEnergy, 1e-9) {
				return fmt.Errorf("FFT: spectrum energy %g, want %g", got, wantEnergy)
			}
			n := n1 * n2 * n3
			for _, i := range []int64{0, 1, n / 2, n - 1} {
				if gr := peekF(prog, v, "re2", i); !approxEq(gr, wre[i], 1e-9) {
					return fmt.Errorf("FFT: re2[%d] = %g, want %g", i, gr, wre[i])
				}
				if gi := peekF(prog, v, "im2", i); !approxEq(gi, wim[i], 1e-9) {
					return fmt.Errorf("FFT: im2[%d] = %g, want %g", i, gi, wim[i])
				}
			}
			return nil
		},
	}
}
