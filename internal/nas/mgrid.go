package nas

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/ir"
	"repro/internal/stripefs"
	"repro/internal/vm"
)

const mgridIters = 2

const mgridSrc = `
program mgrid
param n = %d
param iters = %d
array double u[n][n][n]
array double v[n][n][n]
array double r[n][n][n]
scalar double rnorm

for it = 0 .. iters {
    // Residual: r = v - A u (7-point discrete Laplacian).
    for i = 1 .. n - 1 {
        for j = 1 .. n - 1 {
            for k = 1 .. n - 1 {
                r[i][j][k] = v[i][j][k] - 6.0 * u[i][j][k]
                    + u[i - 1][j][k] + u[i + 1][j][k]
                    + u[i][j - 1][k] + u[i][j + 1][k]
                    + u[i][j][k - 1] + u[i][j][k + 1]
            }
        }
    }
    // Smoother: u = u + w (M r), a weighted 7-point average of r.
    for i = 1 .. n - 1 {
        for j = 1 .. n - 1 {
            for k = 1 .. n - 1 {
                u[i][j][k] = u[i][j][k] + 0.125 * (2.0 * r[i][j][k]
                    + r[i - 1][j][k] + r[i + 1][j][k]
                    + r[i][j - 1][k] + r[i][j + 1][k]
                    + r[i][j][k - 1] + r[i][j][k + 1]) / 8.0
            }
        }
    }
}
// Residual norm (unnormalized sum of squares of the last residual).
rnorm = 0.0
for i = 0 .. n {
    for j = 0 .. n {
        for k = 0 .. n {
            rnorm = rnorm + r[i][j][k] * r[i][j][k]
        }
    }
}
`

func mgridV(n int64) func(int64) float64 {
	return func(idx int64) float64 {
		// A few point charges, like the NAS benchmark's ±1 sources.
		switch idx % (n * n * n / 7) {
		case 0:
			return 1
		case 3:
			return -1
		}
		return 0
	}
}

// MGRID is the NAS multigrid kernel, represented by its dominant
// fine-grid work: residual and smoothing sweeps over 3-D grids, whose
// ±plane stencil references exercise group locality across pages.
func MGRID() *App {
	return &App{
		Name:     "MGRID",
		Desc:     "multigrid: 3-D Laplacian residual/smoothing sweeps (plane-stencil group locality)",
		StdRatio: 1.2,
		Build: func(scale float64) *ir.Program {
			n := scalePow2(48, cbrtScale(scale), 8)
			return mustParse(fmt.Sprintf(mgridSrc, n, int64(mgridIters)))
		},
		Seed: func(prog *ir.Program, file *stripefs.File, pageSize int64) {
			n, _ := prog.ParamValue("n")
			exec.SeedF64(file, pageSize, prog.ArrayByName("v"), mgridV(n))
		},
		Check: func(prog *ir.Program, v *vm.VM, env *exec.Env) error {
			n, _ := prog.ParamValue("n")
			nn := n * n * n
			u := make([]float64, nn)
			vv := make([]float64, nn)
			r := make([]float64, nn)
			src := mgridV(n)
			for i := int64(0); i < nn; i++ {
				vv[i] = src(i)
			}
			at := func(a []float64, i, j, k int64) float64 { return a[(i*n+j)*n+k] }
			for it := 0; it < mgridIters; it++ {
				for i := int64(1); i < n-1; i++ {
					for j := int64(1); j < n-1; j++ {
						for k := int64(1); k < n-1; k++ {
							r[(i*n+j)*n+k] = at(vv, i, j, k) - 6*at(u, i, j, k) +
								at(u, i-1, j, k) + at(u, i+1, j, k) +
								at(u, i, j-1, k) + at(u, i, j+1, k) +
								at(u, i, j, k-1) + at(u, i, j, k+1)
						}
					}
				}
				for i := int64(1); i < n-1; i++ {
					for j := int64(1); j < n-1; j++ {
						for k := int64(1); k < n-1; k++ {
							u[(i*n+j)*n+k] += 0.125 * (2*at(r, i, j, k) +
								at(r, i-1, j, k) + at(r, i+1, j, k) +
								at(r, i, j-1, k) + at(r, i, j+1, k) +
								at(r, i, j, k-1) + at(r, i, j, k+1)) / 8.0
						}
					}
				}
			}
			var rnorm float64
			for i := int64(0); i < nn; i++ {
				rnorm += r[i] * r[i]
			}
			got, err := floatScalar(prog, env, "rnorm")
			if err != nil {
				return err
			}
			if !approxEq(got, rnorm, 1e-9) {
				return fmt.Errorf("MGRID: rnorm = %g, want %g", got, rnorm)
			}
			mid := ((n/2)*n+n/2)*n + n/2
			if gotU := peekF(prog, v, "u", mid); !approxEq(gotU, u[mid], 1e-9) {
				return fmt.Errorf("MGRID: u[center] = %g, want %g", gotU, u[mid])
			}
			return nil
		},
	}
}
